package erms_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"erms"
	"erms/internal/federation"
	"erms/internal/invariant"
	"erms/internal/sweep"
)

// pathInShard probes numbered paths until one hashes to the wanted shard;
// the router is pinned, so these probes are stable across runs.
func pathInShard(r federation.Router, shard int, prefix string) string {
	for i := 0; ; i++ {
		p := fmt.Sprintf("%s%d", prefix, i)
		if r.Shard(p) == shard {
			return p
		}
	}
}

// fedViolations runs the cross-shard ownership oracle against a live
// federated system.
func fedViolations(sys *erms.System, expected map[string]bool) []string {
	r := sys.Router()
	shards := make([]invariant.Lister, sys.Shards())
	for i := range shards {
		shards[i] = sys.Shard(i).HDFS()
	}
	return invariant.CheckFederation(invariant.FederationTarget{
		Shards:   shards,
		Owner:    r.Shard,
		Exempt:   func(p string) bool { return strings.HasPrefix(p, erms.MoveStagePrefix+"/") },
		Expected: expected,
	})
}

// driveEquivalenceWorkload runs an identical deterministic mix — creates,
// a hot-read burst the judge reacts to, a delete, a rename, cool-down —
// on any system.
func driveEquivalenceWorkload(t *testing.T, sys *erms.System) {
	t.Helper()
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/eq/f%02d", i)
		if err := sys.CreateFileOn(p, (64+16*float64(i))*erms.MB, 3, i%5); err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
	}
	for wave := 0; wave < 8; wave++ {
		wave := wave
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for c := 0; c < 10; c++ {
				sys.Read(c, "/eq/f03", nil)
			}
		})
	}
	sys.RunFor(12 * time.Minute)
	if err := sys.Delete("/eq/f07"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Rename("/eq/f08", "/eq/r08"); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(30 * time.Minute)
}

// TestShardOneEquivalence is the shards=1 contract: a one-shard
// federation must be indistinguishable from the classic single-namenode
// system — same digest, same checkpoint bytes, same journal, same
// metrics, decisions, and energy — so every pre-federation experiment and
// figure regenerates byte-identically through the facade.
func TestShardOneEquivalence(t *testing.T) {
	classic := erms.NewSystem(erms.Options{EnableJournal: true})
	fed := erms.NewSystem(erms.Options{EnableJournal: true, Shards: 1})
	if classic.Shards() != 1 || fed.Shards() != 1 {
		t.Fatalf("Shards() = %d classic, %d federated; want 1, 1", classic.Shards(), fed.Shards())
	}
	driveEquivalenceWorkload(t, classic)
	driveEquivalenceWorkload(t, fed)
	defer classic.Stop()
	defer fed.Stop()

	if c, f := classic.StateDigest(), fed.StateDigest(); c != f {
		t.Errorf("StateDigest: classic %#x, shards=1 %#x", c, f)
	}
	var cb, fb bytes.Buffer
	if err := classic.Checkpoint(&cb); err != nil {
		t.Fatal(err)
	}
	if err := fed.Checkpoint(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb.Bytes(), fb.Bytes()) {
		t.Errorf("checkpoint bytes differ: %d vs %d bytes", cb.Len(), fb.Len())
	}
	if c, f := classic.Metrics(), fed.Metrics(); c != f {
		t.Errorf("metrics:\n classic %+v\n shards=1 %+v", c, f)
	}
	if c, f := classic.StorageUsed(), fed.StorageUsed(); c != f {
		t.Errorf("storage: %v vs %v", c, f)
	}
	if c, f := classic.Energy(), fed.Energy(); c != f {
		t.Errorf("energy: %+v vs %+v", c, f)
	}
	if c, f := fmt.Sprint(classic.Decisions()), fmt.Sprint(fed.Decisions()); c != f {
		t.Errorf("decisions diverge:\n classic %s\n shards=1 %s", c, f)
	}
	ce, fe := classic.Journal().Entries(), fed.Journal().Entries()
	if len(ce) != len(fe) {
		t.Fatalf("journal length: %d vs %d", len(ce), len(fe))
	}
	for i := range ce {
		if ce[i] != fe[i] {
			t.Fatalf("journal entry %d: %+v vs %+v", i, ce[i], fe[i])
		}
	}
}

// TestFederatedRoutingAndAggregation covers the facade's routing and the
// cluster-wide views: every file lives in exactly its router-assigned
// shard, reads route there, metrics/storage aggregate across block pools,
// and node lifecycle fans out globally while ERMS repairs per shard.
func TestFederatedRoutingAndAggregation(t *testing.T) {
	sys := erms.NewSystem(erms.Options{Shards: 4, EnableJournal: true})
	defer sys.Stop()
	r := sys.Router()
	if r.Shards() != 4 || sys.Shards() != 4 {
		t.Fatalf("router %d shards, system %d; want 4", r.Shards(), sys.Shards())
	}
	model := map[string]bool{}
	var total float64
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("/agg/f%02d", i)
		if err := sys.CreateFile(p, 96*erms.MB); err != nil {
			t.Fatal(err)
		}
		model[p] = true
		total += 3 * 96 * erms.MB
	}
	if v := fedViolations(sys, model); v != nil {
		t.Fatalf("ownership after creates: %v", v)
	}
	done := 0
	for p := range model {
		sys.Read(1, p, func(res *erms.ReadResult) {
			if res.Err == nil {
				done++
			}
		})
	}
	sys.RunFor(5 * time.Minute)
	if done != len(model) {
		t.Errorf("reads completed = %d of %d", done, len(model))
	}
	if got := sys.Metrics().ReadsCompleted; got < len(model) {
		t.Errorf("aggregated ReadsCompleted = %d, want >= %d", got, len(model))
	}
	if got := sys.StorageUsed(); got < total {
		t.Errorf("aggregated storage = %v, want >= %v", got, total)
	}
	// Kill a datanode globally: every shard loses its block pool on that
	// machine at once; each shard's manager repairs its own pool.
	sys.KillNode(2)
	sys.RunFor(10 * time.Minute)
	sys.RestartNode(2)
	sys.RunFor(5 * time.Minute)
	for i := 0; i < sys.Shards(); i++ {
		if errs := invariant.Check(invariant.Target{Cluster: sys.Shard(i).HDFS()}); errs != nil {
			t.Errorf("shard %d after kill/restart: %v", i, errs)
		}
	}
	if v := fedViolations(sys, model); v != nil {
		t.Errorf("ownership after kill/restart: %v", v)
	}
}

func newMoveSystem(shards int) *erms.System {
	return erms.NewSystem(erms.Options{
		Shards: shards, Nodes: 9, StandbyNodes: -1,
		EnableJournal: true, DisableERMS: true,
	})
}

func TestCrossShardMoveRun(t *testing.T) {
	sys := newMoveSystem(3)
	r := sys.Router()
	src := pathInShard(r, 0, "/mv/src")
	dst := pathInShard(r, 1, "/mv/dst")
	if err := sys.CreateFileOn(src, 96*erms.MB, 2, -1); err != nil {
		t.Fatal(err)
	}

	// Guard rails before the protocol runs.
	if _, err := sys.StartMove(src, pathInShard(r, 0, "/mv/same")); err == nil {
		t.Error("same-shard move accepted")
	}
	if _, err := sys.StartMove("/mv/missing", dst); err == nil {
		t.Error("move of missing file accepted")
	}
	classic := erms.NewSystem(erms.Options{Nodes: 9, StandbyNodes: -1, DisableERMS: true})
	if _, err := classic.StartMove(src, dst); err == nil {
		t.Error("StartMove on a non-federated system accepted")
	}

	mv, err := sys.StartMove(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Step(); err != nil { // journal the intent
		t.Fatal(err)
	}
	// The journaled intent is what guards against a duplicate move.
	if _, err := sys.StartMove(src, pathInShard(r, 2, "/mv/other")); err == nil {
		t.Error("second in-flight move of the same source accepted")
	}
	if err := mv.Run(); err != nil {
		t.Fatal(err)
	}
	if !mv.Done() {
		t.Error("Run left the move unfinished")
	}
	if err := mv.Step(); err == nil {
		t.Error("Step past completion accepted")
	}
	if sys.Shard(0).HDFS().File(src) != nil {
		t.Error("source survived the move")
	}
	if sys.Shard(1).HDFS().File(dst) == nil {
		t.Error("destination missing after the move")
	}
	if got := sys.Replication(dst); got != 2 {
		t.Errorf("moved file replication = %d, want 2", got)
	}
	for i := 0; i < sys.Shards(); i++ {
		if pm := sys.Shard(i).HDFS().PendingMoves(); pm != nil {
			t.Errorf("shard %d still has pending moves: %+v", i, pm)
		}
	}
	if v := fedViolations(sys, map[string]bool{src: false, dst: true}); v != nil {
		t.Errorf("oracle after move: %v", v)
	}

	// The facade Rename runs the same protocol when paths cross shards.
	src2 := pathInShard(r, 2, "/mv/r src")
	dst2 := pathInShard(r, 0, "/mv/rdst")
	if err := sys.CreateFile(src2, 64*erms.MB); err != nil {
		t.Fatal(err)
	}
	if err := sys.Rename(src2, dst2); err != nil {
		t.Fatal(err)
	}
	if sys.Shard(0).HDFS().File(dst2) == nil || sys.Shard(2).HDFS().File(src2) != nil {
		t.Error("facade cross-shard Rename did not relocate the file")
	}
}

// TestMoveCrashRecoveryAtEveryStep crashes either protocol participant
// between every pair of protocol steps and asserts the recovery contract:
// before the commit marker the move rolls back (source keeps the file),
// from the commit on it rolls forward (destination gets it) — and in
// every case exactly one shard owns exactly one copy.
func TestMoveCrashRecoveryAtEveryStep(t *testing.T) {
	for k := 0; k <= 4; k++ {
		for _, failDst := range []bool{false, true} {
			name := fmt.Sprintf("steps=%d/fail=src", k)
			if failDst {
				name = fmt.Sprintf("steps=%d/fail=dst", k)
			}
			t.Run(name, func(t *testing.T) {
				sys := newMoveSystem(2)
				r := sys.Router()
				src := pathInShard(r, 0, "/cr/s")
				dst := pathInShard(r, 1, "/cr/d")
				if err := sys.CreateFileOn(src, 64*erms.MB, 3, -1); err != nil {
					t.Fatal(err)
				}
				if err := sys.SnapshotShards(); err != nil {
					t.Fatal(err)
				}
				mv, err := sys.StartMove(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k; i++ {
					if err := mv.Step(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}
				idx := 0
				if failDst {
					idx = 1
				}
				if err := sys.FailoverShard(idx); err != nil {
					t.Fatalf("failover shard %d: %v", idx, err)
				}
				committed := k >= 3
				srcF := sys.Shard(0).HDFS().File(src)
				dstF := sys.Shard(1).HDFS().File(dst)
				if committed && (srcF != nil || dstF == nil) {
					t.Errorf("committed move: src=%v dst=%v, want rolled forward", srcF != nil, dstF != nil)
				}
				if !committed && (srcF == nil || dstF != nil) {
					t.Errorf("uncommitted move: src=%v dst=%v, want rolled back", srcF != nil, dstF != nil)
				}
				for i := 0; i < sys.Shards(); i++ {
					if pm := sys.Shard(i).HDFS().PendingMoves(); pm != nil {
						t.Errorf("shard %d pending after recovery: %+v", i, pm)
					}
				}
				if v := fedViolations(sys, map[string]bool{src: !committed, dst: committed}); v != nil {
					t.Errorf("oracle: %v", v)
				}
			})
		}
	}
}

// TestResolveMovesBranches pins the three recovery branches FailoverShard
// cannot reach when the journal tail is complete: rollback that must
// delete a live staging copy, roll-forward that must re-copy from the
// source because the destination lost the staging file, and orphaned
// staging files whose move record predates the retained journal.
func TestResolveMovesBranches(t *testing.T) {
	sys := newMoveSystem(2)
	r := sys.Router()

	// Rollback with the staging copy present (crash between copy and commit).
	src := pathInShard(r, 0, "/rb/s")
	dst := pathInShard(r, 1, "/rb/d")
	if err := sys.CreateFileOn(src, 64*erms.MB, 2, -1); err != nil {
		t.Fatal(err)
	}
	mv, err := sys.StartMove(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // intent + copy
		if err := mv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := sys.ResolveMoves(); err != nil || n != 1 {
		t.Fatalf("rollback resolve = %d, %v; want 1, nil", n, err)
	}
	if sys.Shard(0).HDFS().File(src) == nil || sys.Shard(1).HDFS().File(dst) != nil ||
		sys.Shard(1).HDFS().File(erms.MoveStagePrefix+dst) != nil {
		t.Error("rollback left the wrong copies")
	}

	// Roll-forward re-copy: committed, but the destination lost the staging
	// file (its checkpoint predated the copy and the tail was truncated).
	mv, err = sys.StartMove(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // intent + copy + commit
		if err := mv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Shard(1).HDFS().DeleteFile(erms.MoveStagePrefix + dst); err != nil {
		t.Fatal(err)
	}
	if n, err := sys.ResolveMoves(); err != nil || n != 1 {
		t.Fatalf("re-copy resolve = %d, %v; want 1, nil", n, err)
	}
	if sys.Shard(0).HDFS().File(src) != nil || sys.Shard(1).HDFS().File(dst) == nil {
		t.Error("re-copy did not roll the move forward")
	}
	if got := sys.Replication(dst); got != 2 {
		t.Errorf("re-copied replication = %d, want 2", got)
	}

	// Orphaned staging file: no pending record anywhere names it.
	if _, err := sys.Shard(0).HDFS().CreateFile(erms.MoveStagePrefix+"/orphan", 32*erms.MB, 2, -1); err != nil {
		t.Fatal(err)
	}
	if n, err := sys.ResolveMoves(); err != nil || n != 1 {
		t.Fatalf("orphan resolve = %d, %v; want 1, nil", n, err)
	}
	if sys.Shard(0).HDFS().File(erms.MoveStagePrefix+"/orphan") != nil {
		t.Error("orphaned staging file survived")
	}
	// Idempotent at quiescence.
	if n, err := sys.ResolveMoves(); err != nil || n != 0 {
		t.Fatalf("quiescent resolve = %d, %v; want 0, nil", n, err)
	}
}

func TestFederatedCheckpointRoundTrip(t *testing.T) {
	opts := erms.Options{Shards: 3, Nodes: 9, StandbyNodes: -1, EnableJournal: true, DisableERMS: true}
	sys := erms.NewSystem(opts)
	for i := 0; i < 9; i++ {
		if err := sys.CreateFile(fmt.Sprintf("/ck/f%d", i), 64*erms.MB); err != nil {
			t.Fatal(err)
		}
	}
	sys.RunFor(2 * time.Minute)
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := erms.NewSystem(opts)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.StateDigest() != sys.StateDigest() {
		t.Error("digest mismatch after federated round trip")
	}
	// The restored system re-encodes the envelope byte-identically — the
	// journal realignment keeps sequence numbering continuous.
	var again bytes.Buffer
	if err := restored.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-checkpoint is not byte-identical")
	}

	// Corruption anywhere in the envelope is rejected before any shard is
	// touched.
	for _, off := range []int{0, 5, len(fedCkptProbe(buf.Bytes())), buf.Len() / 2, buf.Len() - 1} {
		mut := append([]byte(nil), buf.Bytes()...)
		mut[off] ^= 0x40
		if err := erms.NewSystem(opts).Restore(bytes.NewReader(mut)); err == nil {
			t.Errorf("corrupt byte at %d accepted", off)
		}
	}
	if err := erms.NewSystem(opts).Restore(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated envelope accepted")
	}
	// Shard-count mismatch: a 3-shard envelope cannot restore a 2-shard
	// system.
	mis := opts
	mis.Shards = 2
	if err := erms.NewSystem(mis).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("3-shard envelope restored into a 2-shard system")
	}
}

// fedCkptProbe returns the offset of the first shard blob, so the
// corruption loop hits the envelope header, a blob, and the trailer.
func fedCkptProbe(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

// TestFederatedSweepDeterminism runs shards∈{2,4} cells — workload, a
// cross-shard move, a failover — on the sweep engine at worker counts 1
// and 8: per-cell digests and the merged report must be identical
// (DESIGN.md §11 worker-count invariance), which is what lets judge
// passes parallelize shard-per-worker without changing results.
func TestFederatedSweepDeterminism(t *testing.T) {
	type cell struct {
		shards int
		seed   int64
	}
	var cells []cell
	for _, n := range []int{2, 4} {
		for s := int64(1); s <= 3; s++ {
			cells = append(cells, cell{n, s})
		}
	}
	run := func(parallel int) (string, []uint64) {
		digests := make([]uint64, len(cells))
		tasks := make([]sweep.Task, len(cells))
		for i, c := range cells {
			i, c := i, c
			tasks[i] = sweep.Task{
				Name: fmt.Sprintf("shards=%d/seed=%d", c.shards, c.seed),
				Run: func(ctx context.Context) (string, error) {
					d, err := runFedCell(c.shards, c.seed)
					if err != nil {
						return "", err
					}
					digests[i] = d
					return fmt.Sprintf("shards=%d seed=%d digest=%016x\n", c.shards, c.seed, d), nil
				},
			}
		}
		results, err := sweep.Run(context.Background(), sweep.Options{Parallel: parallel}, tasks)
		if err != nil {
			t.Fatalf("sweep (parallel=%d): %v", parallel, err)
		}
		return sweep.Merged(results), digests
	}
	serial, d1 := run(1)
	wide, d8 := run(8)
	if serial != wide {
		t.Errorf("merged reports differ between 1 and 8 workers:\n%s\nvs\n%s", serial, wide)
	}
	for i := range d1 {
		if d1[i] != d8[i] {
			t.Errorf("cell %s digest %016x (1 worker) != %016x (8 workers)",
				fmt.Sprintf("shards=%d/seed=%d", cells[i].shards, cells[i].seed), d1[i], d8[i])
		}
	}
}

// runFedCell is one deterministic federated simulation: seed-varied
// creates and reads, a cross-shard move, a failover mid-run.
func runFedCell(shards int, seed int64) (uint64, error) {
	sys := erms.NewSystem(erms.Options{Shards: shards, EnableJournal: true})
	defer sys.Stop()
	r := sys.Router()
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/cell/s%d/f%d", seed, i)
		if err := sys.CreateFile(p, (32+float64((seed+int64(i))%5)*16)*erms.MB); err != nil {
			return 0, err
		}
		sys.Read(int(seed+int64(i))%9, p, nil)
	}
	if err := sys.SnapshotShards(); err != nil {
		return 0, err
	}
	src := pathInShard(r, 0, fmt.Sprintf("/cell/s%d/mv", seed))
	dst := pathInShard(r, shards-1, fmt.Sprintf("/cell/s%d/mvdst", seed))
	if err := sys.CreateFile(src, 64*erms.MB); err != nil {
		return 0, err
	}
	mv, err := sys.StartMove(src, dst)
	if err != nil {
		return 0, err
	}
	for i := 0; i < int(seed)%4; i++ { // crash the move at a seed-varied step
		if err := mv.Step(); err != nil {
			return 0, err
		}
	}
	if err := sys.FailoverShard(int(seed) % shards); err != nil {
		return 0, err
	}
	sys.RunFor(10 * time.Minute)
	return sys.StateDigest(), nil
}

// FuzzDecodeFederatedCheckpoint feeds mutated federated envelopes to
// Restore: malformed input must error, never panic, and never partially
// apply.
func FuzzDecodeFederatedCheckpoint(f *testing.F) {
	opts := erms.Options{Shards: 2, Nodes: 6, StandbyNodes: -1, DisableERMS: true}
	seedSys := erms.NewSystem(opts)
	if err := seedSys.CreateFile("/fz/a", 32*erms.MB); err != nil {
		f.Fatal(err)
	}
	if err := seedSys.CreateFile("/fz/b", 64*erms.MB); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seedSys.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ERMSFEDC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sys := erms.NewSystem(opts)
		if err := sys.Restore(bytes.NewReader(data)); err == nil {
			// Accepted input must leave a coherent system.
			_ = sys.StateDigest()
			for i := 0; i < sys.Shards(); i++ {
				if errs := sys.Shard(i).HDFS().ConsistencyErrors(); errs != nil {
					t.Fatalf("accepted envelope left shard %d inconsistent: %v", i, errs)
				}
			}
		}
	})
}
