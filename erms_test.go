package erms_test

import (
	"testing"
	"time"

	"erms"
	"erms/internal/hdfs"
)

func TestSystemDefaultsMatchPaperTestbed(t *testing.T) {
	sys := erms.NewSystem(erms.Options{})
	if got := sys.HDFS().NumDatanodes(); got != 18 {
		t.Fatalf("datanodes = %d, want 18", got)
	}
	if got := len(sys.HDFS().Standby()); got != 8 {
		t.Fatalf("standby = %d, want 8", got)
	}
	if sys.Manager() == nil {
		t.Fatal("ERMS manager missing")
	}
	if sys.HDFS().Config().BlockSize != 64*erms.MB {
		t.Fatal("block size default")
	}
	if sys.HDFS().Config().DefaultReplication != 3 {
		t.Fatal("replication default")
	}
}

func TestVanillaModeHasNoManager(t *testing.T) {
	sys := erms.NewSystem(erms.Options{DisableERMS: true})
	if sys.Manager() != nil {
		t.Fatal("vanilla system has a manager")
	}
	if len(sys.HDFS().Standby()) != 0 {
		t.Fatal("vanilla system has standby nodes")
	}
	if sys.Decisions() != nil {
		t.Fatal("vanilla Decisions should be nil")
	}
	if sys.Energy() != (erms.EnergyReport{}) {
		t.Fatal("vanilla Energy should be zero")
	}
}

func TestCreateReadLifecycle(t *testing.T) {
	sys := erms.NewSystem(erms.Options{})
	if err := sys.CreateFile("/a", 128*erms.MB); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateFile("/a", erms.MB); err == nil {
		t.Fatal("duplicate create accepted")
	}
	var res *erms.ReadResult
	sys.Read(4, "/a", func(r *erms.ReadResult) { res = r })
	sys.RunFor(time.Minute)
	if res == nil || res.Err != nil {
		t.Fatalf("read: %+v", res)
	}
	if sys.StorageUsed() != 3*128*erms.MB {
		t.Fatalf("storage = %v", sys.StorageUsed())
	}
	if sys.Metrics().ReadsCompleted != 1 {
		t.Fatal("metrics")
	}
	if sys.Now() != time.Minute {
		t.Fatalf("Now = %v", sys.Now())
	}
}

func TestElasticReplicationThroughPublicAPI(t *testing.T) {
	sys := erms.NewSystem(erms.Options{})
	if err := sys.CreateFileOn("/hot", 256*erms.MB, 3, 2); err != nil {
		t.Fatal(err)
	}
	for wave := 0; wave < 8; wave++ {
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for c := 0; c < 10; c++ {
				sys.Read(c, "/hot", nil)
			}
		})
	}
	sys.RunFor(12 * time.Minute)
	if got := sys.Replication("/hot"); got <= 3 {
		t.Fatalf("replication = %d, want > 3 after hot burst", got)
	}
	if len(sys.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
	// Cool-down shrinks and powers the pool off.
	sys.RunFor(40 * time.Minute)
	if got := sys.Replication("/hot"); got != 3 {
		t.Fatalf("replication = %d after cooldown, want 3", got)
	}
	e := sys.Energy()
	if e.PoolNodes != 8 || e.SavedNodeHours <= 0 {
		t.Fatalf("energy = %+v", e)
	}
	sys.Stop()
}

func TestWorkloadReplayThroughPublicAPI(t *testing.T) {
	trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed: 2, Duration: 20 * time.Minute, NumFiles: 6,
		MeanInterarrival: 30 * time.Second, MaxFileSize: 128 * erms.MB,
	})
	sys := erms.NewSystem(erms.Options{Scheduler: "fair"})
	sys.Preload(trace)
	done := 0
	sys.ReplayJobs(trace, func(j *erms.Job) {
		if j.Err == nil {
			done++
		}
	})
	sys.RunUntil(trace.Horizon(time.Hour))
	if done != len(trace.Jobs) {
		t.Fatalf("jobs done = %d of %d", done, len(trace.Jobs))
	}
	if sys.MapReduce().Scheduler().Name() != "Fair" {
		t.Fatal("scheduler option ignored")
	}
}

func TestReplayDirectReadsThroughPublicAPI(t *testing.T) {
	trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed: 5, Duration: 15 * time.Minute, NumFiles: 4,
		MeanInterarrival: time.Minute, MaxFileSize: 128 * erms.MB,
	})
	sys := erms.NewSystem(erms.Options{})
	sys.Preload(trace)
	reads := 0
	sys.ReplayReads(trace, func(r *erms.ReadResult) {
		if r.Err == nil {
			reads++
		}
	})
	sys.RunUntil(trace.Horizon(30 * time.Minute))
	if reads != len(trace.Jobs) {
		t.Fatalf("reads = %d of %d", reads, len(trace.Jobs))
	}
}

func TestStandbyPoolSizingEdgeCases(t *testing.T) {
	// -1 disables the pool; oversized pools are clamped.
	sys := erms.NewSystem(erms.Options{StandbyNodes: -1})
	if len(sys.HDFS().Standby()) != 0 {
		t.Fatal("StandbyNodes=-1 should disable the pool")
	}
	sys2 := erms.NewSystem(erms.Options{Nodes: 6, StandbyNodes: 10})
	if got := len(sys2.HDFS().Standby()); got != 3 {
		t.Fatalf("oversized pool clamped to %d, want 3", got)
	}
}

func TestFailureRepairThroughPublicAPI(t *testing.T) {
	sys := erms.NewSystem(erms.Options{})
	if err := sys.CreateFile("/f", 192*erms.MB); err != nil {
		t.Fatal(err)
	}
	f := sys.HDFS().File("/f")
	victim := sys.HDFS().Replicas(f.Blocks[0])[0]
	sys.HDFS().Kill(hdfs.DatanodeID(victim))
	sys.RunFor(10 * time.Minute)
	if n := len(sys.HDFS().UnderReplicated()); n != 0 {
		t.Fatalf("%d blocks still under-replicated after repair", n)
	}
	if got := len(sys.HDFS().Replicas(f.Blocks[0])); got != 3 {
		t.Fatalf("block has %d replicas after repair, want 3", got)
	}
}

func TestDefaultThresholdsExported(t *testing.T) {
	th := erms.DefaultThresholds()
	if th.TauM != 8 || th.EncodeK != 10 || th.EncodeM != 4 {
		t.Fatalf("thresholds = %+v", th)
	}
}

// TestDeterminism: two identical runs produce byte-identical decision
// histories and metrics — the property every experiment in this repository
// leans on.
func TestDeterminism(t *testing.T) {
	run := func() ([]string, erms.HDFSMetrics) {
		trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
			Seed: 4, Duration: 40 * time.Minute, NumFiles: 10,
			MeanInterarrival: 10 * time.Second, MaxFileSize: 256 * erms.MB,
		})
		th := erms.DefaultThresholds()
		th.TauM = 4
		sys := erms.NewSystem(erms.Options{Thresholds: th, JudgePeriod: 5 * time.Minute})
		sys.Preload(trace)
		sys.ReplayReads(trace, nil)
		sys.RunUntil(trace.Horizon(30 * time.Minute))
		sys.Stop()
		var decisions []string
		for _, d := range sys.Decisions() {
			decisions = append(decisions, d.String())
		}
		return decisions, sys.Metrics()
	}
	d1, m1 := run()
	d2, m2 := run()
	if len(d1) == 0 {
		t.Fatal("no decisions; scenario too quiet to test determinism")
	}
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs:\n%s\n%s", i, d1[i], d2[i])
		}
	}
	if m1 != m2 {
		t.Fatalf("metrics differ:\n%+v\n%+v", m1, m2)
	}
}
