package erms_test

import (
	"fmt"
	"time"

	"erms"
)

// The canonical flow: build the paper's testbed, create a file, drive
// sustained demand, and watch the Data Judge raise the replication factor.
func Example() {
	sys := erms.NewSystem(erms.Options{})
	if err := sys.CreateFile("/data/logs", 640*erms.MB); err != nil {
		panic(err)
	}
	for wave := 0; wave < 8; wave++ {
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for client := 0; client < 10; client++ {
				sys.Read(client, "/data/logs", nil)
			}
		})
	}
	sys.RunFor(10 * time.Minute)
	fmt.Println("replication:", sys.Replication("/data/logs"))
	// Output:
	// replication: 10
}

// Cold data is erasure-coded automatically after ColdAge of silence,
// reclaiming most of its storage.
func Example_coldData() {
	th := erms.DefaultThresholds()
	th.ColdAge = time.Hour
	sys := erms.NewSystem(erms.Options{Thresholds: th})
	if err := sys.CreateFile("/archive", 640*erms.MB); err != nil {
		panic(err)
	}
	before := sys.StorageUsed()
	sys.RunFor(3 * time.Hour)
	after := sys.StorageUsed()
	fmt.Printf("encoded: %v\n", sys.HDFS().File("/archive").Encoded)
	fmt.Printf("storage: %.0f%% of the triplicated footprint\n", after/before*100)
	// Output:
	// encoded: true
	// storage: 47% of the triplicated footprint
}

// Replaying a synthetic SWIM-style trace through the MapReduce runtime.
func Example_workload() {
	trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed:             1,
		Duration:         20 * time.Minute,
		NumFiles:         5,
		MeanInterarrival: time.Minute,
		MaxFileSize:      128 * erms.MB,
	})
	sys := erms.NewSystem(erms.Options{Scheduler: "fair"})
	sys.Preload(trace)
	done := 0
	sys.ReplayJobs(trace, func(j *erms.Job) { done++ })
	sys.RunUntil(trace.Horizon(time.Hour))
	fmt.Printf("ran %d of %d jobs\n", done, len(trace.Jobs))
	// Output:
	// ran 22 of 22 jobs
}
