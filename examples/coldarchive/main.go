// Coldarchive: the cold-data lifecycle — files nobody reads are
// Reed–Solomon encoded (one replica + four parities), reclaiming ~55% of
// their storage without losing fault tolerance; a node failure afterwards
// is repaired by stripe reconstruction; and a renewed burst of accesses
// decodes the file back to full triplication.
package main

import (
	"fmt"
	"time"

	"erms"
)

func main() {
	th := erms.DefaultThresholds()
	th.ColdAge = time.Hour // archive after an hour of silence (demo scale)
	sys := erms.NewSystem(erms.Options{Thresholds: th})

	// A warehouse directory: five 640 MB datasets, triplicated.
	for i := 0; i < 5; i++ {
		if err := sys.CreateFile(fmt.Sprintf("/warehouse/part-%d", i), 640*erms.MB); err != nil {
			panic(err)
		}
	}
	before := sys.StorageUsed()
	fmt.Printf("ingested 5 datasets: %.1f GB stored (3x replication)\n", before/erms.GB)

	// Nothing touches them; ERMS encodes them once they age past ColdAge.
	sys.RunFor(3 * time.Hour)
	after := sys.StorageUsed()
	fmt.Printf("after the cold sweep: %.1f GB stored (%.0f%% reclaimed)\n",
		after/erms.GB, (1-after/before)*100)
	for i := 0; i < 5; i++ {
		f := sys.HDFS().File(fmt.Sprintf("/warehouse/part-%d", i))
		fmt.Printf("  %s encoded=%v parity=%d data-replicas=%d\n",
			f.Path, f.Encoded, len(f.Parity), sys.Replication(f.Path))
	}

	// Kill a datanode: each encoded block it held had only one replica,
	// but ERMS reconstructs every lost block from its stripe survivors
	// automatically (repair jobs run through Condor, immediately).
	f := sys.HDFS().File("/warehouse/part-0")
	victimBlock := f.Blocks[0]
	victim := sys.HDFS().Replicas(victimBlock)[0]
	lostBlocks := sys.HDFS().Datanode(victim).NumBlocks()
	sys.HDFS().Kill(victim)
	fmt.Printf("\nkilled %s (held %d single-replica blocks)\n",
		sys.HDFS().Datanode(victim).Name, lostBlocks)
	sys.RunFor(10 * time.Minute)
	fmt.Printf("lost blocks after the repair sweep: %d (repairs run: %d)\n",
		len(sys.HDFS().UnderReplicated()), sys.Manager().Stats().Repairs)
	fmt.Printf("block %d lives again on %v\n", victimBlock, sys.HDFS().Replicas(victimBlock))

	// Renewed interest: reads arrive, ERMS decodes immediately.
	for i := 0; i < 6; i++ {
		sys.Read(i, "/warehouse/part-1", nil)
	}
	sys.RunFor(20 * time.Minute)
	p1 := sys.HDFS().File("/warehouse/part-1")
	fmt.Printf("\nafter re-access, part-1: encoded=%v replication=%d\n",
		p1.Encoded, sys.Replication("/warehouse/part-1"))
	fmt.Printf("\nmanager stats: %+v\n", sys.Manager().Stats())
}
