// Auditreplay: the paper's log-parser → CEP pipeline, standalone. A
// cluster run dumps its namenode audit log in the real HDFS format; the
// example then re-parses that file (tolerating interleaved non-audit
// lines, as a real log4j log would have) and pushes the records through
// the CEP engine to rank the hottest files per window — exactly the
// analysis the ERMS Data Judge performs online.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"erms"
	"erms/internal/auditlog"
	"erms/internal/cep"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

func main() {
	log.SetFlags(0)
	path := filepath.Join(os.TempDir(), "hdfs-audit.log")
	if err := generateAuditLog(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", path)
	if err := analyze(path); err != nil {
		log.Fatal(err)
	}
}

// generateAuditLog runs a short workload and dumps the audit trail.
func generateAuditLog(path string) error {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo, KeepAuditRecords: true})
	for i := 0; i < 6; i++ {
		if _, err := h.CreateFile(fmt.Sprintf("/data/part-%d", i), 128*erms.MB, 3,
			topology.NodeID(i)); err != nil {
			return err
		}
	}
	// Skewed access: part-0 hot, part-1 warm, the rest cold.
	for minute := 0; minute < 30; minute++ {
		at := time.Duration(minute) * time.Minute
		e.At(at, func() {
			for i := 0; i < 6; i++ {
				h.ReadFile(topology.NodeID(i), "/data/part-0", nil)
			}
			h.ReadFile(3, "/data/part-1", nil)
		})
	}
	e.RunUntil(31 * time.Minute)
	// Interleave a non-audit log4j line, as real namenode logs do.
	dump := "2012-07-05 10:00:00,000 INFO namenode.NameNode: STARTUP_MSG\n" +
		h.Audit().Dump()
	return os.WriteFile(path, []byte(dump), 0o644)
}

// analyze re-parses the file and ranks file heat per 10-minute window.
func analyze(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	clock := time.Duration(0)
	engine := cep.New(func() time.Duration { return clock })
	stmt := engine.MustCompile(
		"select path, count(*) as cnt from Access.win:time(600 s) " +
			"where cmd = 'open' group by path")
	// Typed schema events: replaying a large log allocates nothing per line.
	access := cep.NewSchema("Access", "path", "cmd")

	window := 10 * time.Minute
	nextReport := window
	report := func() {
		rows := stmt.MustRows()
		sort.Slice(rows, func(i, j int) bool { return rows[i].Num("cnt") > rows[j].Num("cnt") })
		fmt.Printf("window ending %v:\n", nextReport)
		for i, r := range rows {
			if i == 3 {
				break
			}
			heat := "normal"
			if r.Num("cnt") >= 24 { // τ_M=8 × r=3
				heat = "HOT"
			}
			fmt.Printf("  %-16s %3.0f opens  %s\n", r.Str("path"), r.Num("cnt"), heat)
		}
	}

	parsed, skipped, err := auditlog.ParseStream(f, func(rec auditlog.Record) {
		for rec.Time >= nextReport {
			clock = nextReport
			report()
			nextReport += window
		}
		clock = rec.Time
		ev := access.Event(rec.Time)
		ev.SetStr(0, rec.Src)
		ev.SetStr(1, string(rec.Cmd))
		engine.Insert(ev)
	})
	if err != nil {
		return err
	}
	clock = nextReport
	report()
	fmt.Printf("\nparsed %d audit records (%d foreign lines skipped)\n", parsed, skipped)
	return nil
}
