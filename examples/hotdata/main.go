// Hotdata: the paper's motivating scenario — a skewed MapReduce workload
// where a few inputs receive most of the traffic. The example replays the
// same SWIM-style trace against a vanilla triplicating cluster and against
// ERMS, and compares read throughput and data locality (Figure 3's
// experiment through the public API).
package main

import (
	"fmt"
	"time"

	"erms"
)

func run(disableERMS bool, trace *erms.Trace) (throughput, locality float64) {
	th := erms.DefaultThresholds()
	th.TauM = 4 // aggressive elasticity, the paper's best-performing setting
	sys := erms.NewSystem(erms.Options{
		DisableERMS:  disableERMS,
		StandbyNodes: -1, // all nodes active: isolate the replication policy
		Thresholds:   th,
		Scheduler:    "fifo",
		JudgePeriod:  time.Minute, // react within a burst, not after it
	})
	sys.Preload(trace)

	var jobs, localTasks, totalTasks int
	var tpSum float64
	sys.ReplayJobs(trace, func(j *erms.Job) {
		if j.Err != nil {
			return
		}
		jobs++
		tpSum += j.ReadThroughputMBps()
		localTasks += j.NodeLocalTasks
		totalTasks += j.Tasks()
	})
	sys.RunUntil(trace.Horizon(time.Hour))
	sys.Stop()
	if jobs == 0 || totalTasks == 0 {
		return 0, 0
	}
	return tpSum / float64(jobs), float64(localTasks) / float64(totalTasks)
}

func main() {
	trace := erms.SynthesizeWorkload(erms.WorkloadConfig{
		Seed:             1,
		Duration:         45 * time.Minute,
		NumFiles:         16,
		MeanInterarrival: 4 * time.Second,
		MaxFileSize:      1 * erms.GB,
	})
	fmt.Printf("trace: %d jobs over %d files, access skew (gini) %.2f\n\n",
		len(trace.Jobs), len(trace.Files), trace.GiniSkew())

	vanTP, vanLoc := run(true, trace)
	ermsTP, ermsLoc := run(false, trace)

	fmt.Printf("%-22s %12s %12s\n", "", "vanilla", "ERMS τM=4")
	fmt.Printf("%-22s %9.1f MB/s %9.1f MB/s\n", "avg read throughput", vanTP, ermsTP)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "node-local tasks", vanLoc*100, ermsLoc*100)
	fmt.Printf("\nERMS improves throughput by %.0f%% and locality by %.1fx on this trace.\n",
		(ermsTP/vanTP-1)*100, ermsLoc/vanLoc)
}
