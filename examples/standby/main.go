// Standby: the Active/Standby storage model — ERMS commissions powered-off
// standby nodes to absorb a hot file's extra replicas, places them with
// Algorithm 1, and powers the nodes back down after the data cools,
// keeping the energy bill proportional to demand.
package main

import (
	"fmt"
	"time"

	"erms"
	"erms/internal/hdfs"
)

func states(sys *erms.System) (active, standby int) {
	for _, d := range sys.HDFS().Datanodes() {
		switch d.State {
		case hdfs.StateActive:
			active++
		case hdfs.StateStandby:
			standby++
		}
	}
	return
}

func main() {
	sys := erms.NewSystem(erms.Options{StandbyNodes: 8})
	a, s := states(sys)
	fmt.Printf("cluster: %d active, %d standby datanodes\n", a, s)

	if err := sys.CreateFile("/data/hotset", 512*erms.MB); err != nil {
		panic(err)
	}

	// Sustained demand: 12 concurrent readers every minute for 10 minutes.
	for wave := 0; wave < 10; wave++ {
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for c := 0; c < 12; c++ {
				sys.Read(c, "/data/hotset", nil)
			}
		})
	}
	sys.RunFor(8 * time.Minute)

	a, s = states(sys)
	fmt.Printf("\nmid-burst: replication=%d, %d active / %d standby\n",
		sys.Replication("/data/hotset"), a, s)
	onPool := 0
	for _, bid := range sys.HDFS().File("/data/hotset").Blocks {
		for _, r := range sys.HDFS().Replicas(bid) {
			if sys.Manager().InStandbyPool(r) {
				onPool++
			}
		}
	}
	fmt.Printf("replicas hosted on commissioned pool nodes: %d\n", onPool)

	// The burst ends; ERMS shrinks the file and powers the pool back down.
	sys.RunFor(45 * time.Minute)
	a, s = states(sys)
	fmt.Printf("\nafter cool-down: replication=%d, %d active / %d standby\n",
		sys.Replication("/data/hotset"), a, s)

	e := sys.Energy()
	fmt.Printf("\nenergy: pool of %d nodes was up %.2f node-hours total;\n",
		e.PoolNodes, e.PoolActiveTime.Hours())
	fmt.Printf("an always-on pool would have burned %.2f node-hours (saved %.1f)\n",
		e.AllActiveTime.Hours(), e.SavedNodeHours)

	st := sys.Manager().Stats()
	fmt.Printf("\ncommissions: %d, shutdowns: %d, management jobs failed: %d\n",
		st.Commissions, st.Shutdowns, st.FailedJobs)
}
