// Quickstart: build the paper's 18-node testbed, create a file, make it
// hot, and watch ERMS raise its replication elastically.
package main

import (
	"fmt"
	"time"

	"erms"
)

func main() {
	// The zero options reproduce the paper's cluster: 18 datanodes in 3
	// racks (8 of them ERMS's standby pool), 64 MB blocks, 3x default
	// replication, paper-calibrated judge thresholds.
	sys := erms.NewSystem(erms.Options{})

	if err := sys.CreateFile("/data/clickstream", 640*erms.MB); err != nil {
		panic(err)
	}
	fmt.Printf("created /data/clickstream, replication = %d\n",
		sys.Replication("/data/clickstream"))

	// Sustained concurrent demand from many client nodes makes it hot.
	for wave := 0; wave < 8; wave++ {
		sys.Engine().Schedule(time.Duration(wave)*time.Minute, func() {
			for client := 0; client < 10; client++ {
				sys.Read(client, "/data/clickstream", nil)
			}
		})
	}
	sys.RunFor(10 * time.Minute)

	fmt.Printf("after the hot burst, replication = %d\n",
		sys.Replication("/data/clickstream"))
	for _, d := range sys.Decisions() {
		fmt.Println("  judge:", d)
	}

	// Silence cools it back down; ERMS reclaims the extra replicas when
	// the cluster is idle and powers the standby nodes off again.
	sys.RunFor(30 * time.Minute)
	fmt.Printf("after cooling down, replication = %d\n",
		sys.Replication("/data/clickstream"))
	fmt.Printf("energy saved: %.1f node-hours across %d pooled nodes\n",
		sys.Energy().SavedNodeHours, sys.Energy().PoolNodes)
}
