package experiments

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/invariant"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
)

// ScaleConfig drives the scale demonstration: how large a cluster sweep
// to run and how much work to put through each size.
type ScaleConfig struct {
	// Seed drives the Zipf file popularity and client choice.
	Seed int64
	// Sizes are the datanode counts to sweep; default {18, 102, 1000}.
	Sizes []int
	// FilesPerNode scales the namespace with the cluster; default 1000
	// (so the 1,000-node point carries 1,000,000 files).
	FilesPerNode int
	// Reads is the number of Zipf-distributed file reads per size;
	// default 20,000.
	Reads int
	// Horizon is the virtual time the read workload spans; default 10m.
	Horizon time.Duration
	// CacheDir, when non-empty, caches each size's freshly built namespace
	// as a checkpoint keyed on (format version, nodes, FilesPerNode). A hit
	// restores in well under a second instead of rebuilding (~7.5 s of
	// wall clock at the 1,000-node / 1M-file point); a miss builds, proves
	// the encoded bytes restore to the same state digest, then publishes
	// the file atomically (temp + rename). Restored runs are digest-checked
	// against built runs by ScaleDemo's same-seed double run, so a corrupt
	// or stale cache can never silently change results.
	CacheDir string
}

func (c *ScaleConfig) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{18, 102, 1000}
	}
	if c.FilesPerNode <= 0 {
		c.FilesPerNode = 1000
	}
	if c.Reads <= 0 {
		c.Reads = 20000
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Minute
	}
}

// ScaleRow reports one cluster size of the sweep. Each size is run twice
// with the same seed; Deterministic records whether the two runs produced
// byte-identical end state (digest over fired events, metrics, and
// per-node storage), and the timings are from the second run.
type ScaleRow struct {
	Nodes      int
	Files      int
	Blocks     int
	BuildSec   float64 // wall seconds to create (or restore) the namespace
	RunSec     float64 // wall seconds to run the read workload
	Events     uint64  // simulator events fired
	EventsSec  float64 // events per wall second during the run
	HeapMB     float64 // live heap after the run
	ReadMBps   float64 // mean per-read throughput (virtual time, deterministic)
	Violations int     // invariant oracle failures (must be 0)
	Loaded     bool    // namespace restored from the checkpoint cache
	Digest     uint64
	Det        bool
}

// ScaleDemo sweeps cluster sizes up to 1,000 datanodes / 1M files and
// measures wall time, event rate, and memory — the evidence that the
// indexed namenode structures, batched event queue, and per-link flow sets
// hold their budgets. Every run ends with a full invariant sweep, and
// every size runs twice to prove same-seed determinism survives the scale
// machinery. With CacheDir set and cold, the first run builds and caches
// the namespace while the second restores it, so the Det column doubles
// as a restore-equivalence proof at full scale.
func ScaleDemo(cfg ScaleConfig) []ScaleRow {
	cfg.applyDefaults()
	rows := make([]ScaleRow, 0, len(cfg.Sizes))
	for _, nodes := range cfg.Sizes {
		first := runScale(cfg, nodes)
		second := runScale(cfg, nodes)
		second.Det = first.Digest == second.Digest
		rows = append(rows, second)
	}
	return rows
}

// runScale builds one cluster, creates FilesPerNode files per node, runs
// the Zipf read workload, and measures everything.
func runScale(cfg ScaleConfig, nodes int) ScaleRow {
	racks := nodes / 6
	if racks < 3 {
		racks = 3
	}
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: racks, NodeCount: nodes})
	c := hdfs.New(e, hdfs.Config{Topology: topo})

	nFiles := nodes * cfg.FilesPerNode
	bs := c.Config().BlockSize

	buildStart := time.Now()
	loaded := loadScaleCache(cfg, nodes, c)
	if !loaded {
		for i := 0; i < nFiles; i++ {
			path := fmt.Sprintf("/scale/d%03d/f%06d", i%512, i)
			if _, err := c.CreateFile(path, bs, 3, -1); err != nil {
				panic(fmt.Sprintf("scale: create %s on %d nodes: %v", path, nodes, err))
			}
		}
		writeScaleCache(cfg, nodes, racks, c)
	}
	buildSec := time.Since(buildStart).Seconds()
	// The manager attaches after the namespace exists in both paths —
	// exactly as a standby commissions after a restore — so judge behavior
	// cannot depend on whether the namespace was built or loaded.
	m := core.New(c, core.Config{JudgePeriod: cfg.Horizon})

	// Zipf-popular reads from random clients, bulk-scheduled in one batch
	// insert (the AtBatch fast path this PR adds).
	rng := sim.NewRand(cfg.Seed)
	zipf := sim.NewZipf(rng, 1.1, nFiles)
	items := make([]sim.Timed, 0, cfg.Reads)
	var readSec float64
	var readBytes float64
	reads := 0
	for i := 0; i < cfg.Reads; i++ {
		fi := zipf.Draw()
		path := fmt.Sprintf("/scale/d%03d/f%06d", fi%512, fi)
		client := topology.NodeID(rng.Intn(nodes))
		at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		items = append(items, sim.Timed{At: at, Fn: func() {
			c.ReadFile(client, path, func(r *hdfs.ReadResult) {
				if r.Err == nil {
					reads++
					readSec += r.Duration().Seconds()
					readBytes += r.Bytes
				}
			})
		}})
	}
	e.AtBatch(items)

	runStart := time.Now()
	e.RunUntil(cfg.Horizon + time.Hour) // drain every read, however slow
	runSec := time.Since(runStart).Seconds()
	m.Stop()

	viols := invariant.Check(invariant.Target{Cluster: c, Manager: m})

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)

	row := ScaleRow{
		Nodes:      nodes,
		Files:      c.Files(),
		Blocks:     c.LiveBlocks(),
		BuildSec:   buildSec,
		RunSec:     runSec,
		Events:     e.Fired(),
		HeapMB:     float64(ms.HeapAlloc) / (1 << 20),
		Violations: len(viols),
		Loaded:     loaded,
		Digest:     scaleDigest(e, c),
	}
	if runSec > 0 {
		row.EventsSec = float64(e.Fired()) / runSec
	}
	if readSec > 0 {
		row.ReadMBps = readBytes / MB / readSec
	}
	_ = reads
	return row
}

// scaleDigest folds the run's observable end state — events fired, read
// and storage counters, and every node's block count and usage — into one
// FNV-1a value. Two same-seed runs must agree exactly.
func scaleDigest(e *sim.Engine, c *hdfs.Cluster) uint64 {
	h := fnv.New64a()
	put := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(e.Fired())
	put(uint64(e.Now()))
	mt := c.Metrics()
	put(uint64(mt.ReadsStarted))
	put(uint64(mt.ReadsCompleted))
	put(uint64(mt.ReadsFailed))
	put(uint64(mt.BlockReads))
	put(uint64(mt.NodeLocalReads))
	put(uint64(mt.RackLocalReads))
	put(uint64(mt.RemoteReads))
	put(math.Float64bits(c.TotalUsed()))
	for _, d := range c.Datanodes() {
		put(uint64(d.NumBlocks()))
		put(math.Float64bits(d.Used))
	}
	return h.Sum64()
}

// scaleCachePath keys the cache on everything that shapes the namespace:
// checkpoint format version, node count, and files per node.
func scaleCachePath(cfg ScaleConfig, nodes int) string {
	return filepath.Join(cfg.CacheDir,
		fmt.Sprintf("scale_v%d_n%d_f%d.ckpt", hdfs.CheckpointVersion, nodes, cfg.FilesPerNode))
}

// loadScaleCache restores the cached namespace into the pristine cluster.
// Any failure — missing file, version skew, corruption — falls back to a
// fresh build; the checkpoint checksum makes a partial restore impossible.
func loadScaleCache(cfg ScaleConfig, nodes int, c *hdfs.Cluster) bool {
	if cfg.CacheDir == "" {
		return false
	}
	data, err := os.ReadFile(scaleCachePath(cfg, nodes))
	if err != nil {
		return false
	}
	return c.RestoreCheckpoint(bytes.NewReader(data)) == nil
}

// writeScaleCache checkpoints the freshly built namespace and publishes it
// atomically — but only after proving the bytes restore into a shadow
// cluster with the identical state digest. A cache that fails the proof is
// simply not written; the sweep still runs from the built namespace.
func writeScaleCache(cfg ScaleConfig, nodes, racks int, c *hdfs.Cluster) {
	if cfg.CacheDir == "" {
		return
	}
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		return
	}
	shadow := hdfs.New(sim.NewEngine(), hdfs.Config{
		Topology: topology.New(topology.Config{Racks: racks, NodeCount: nodes}),
	})
	if err := shadow.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		return
	}
	if shadow.StateDigest() != c.StateDigest() {
		return
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(cfg.CacheDir, "scale_*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), scaleCachePath(cfg, nodes)); err != nil {
		os.Remove(tmp.Name())
	}
}

// ScaleTable renders the deterministic half of the sweep: identical bytes
// on every machine, worker count, and cache state, so it can ride in the
// byte-stable `figures` output stream.
func ScaleTable(rows []ScaleRow) *metrics.Table {
	t := &metrics.Table{
		Title: "Scale: namespace, event, and read totals vs cluster size (same-seed determinism checked)",
		Columns: []string{"nodes", "files", "blocks",
			"events", "read_MBps", "violations", "deterministic"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Nodes, r.Files, r.Blocks,
			r.Events, r.ReadMBps, r.Violations, r.Det)
	}
	return t
}

// ScaleTimingTable renders the wall-clock half — build/restore and run
// times, event rate, and heap. Not byte-stable (it measures this machine),
// so callers keep it out of determinism-checked streams.
func ScaleTimingTable(rows []ScaleRow) *metrics.Table {
	t := &metrics.Table{
		Title: "Scale timing: wall clock and memory (cached=namespace restored from checkpoint)",
		Columns: []string{"nodes", "build_s", "run_s",
			"events_per_s", "heap_MB", "cached"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Nodes, r.BuildSec, r.RunSec,
			r.EventsSec, r.HeapMB, r.Loaded)
	}
	return t
}
