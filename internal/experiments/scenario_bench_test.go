package experiments

import (
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/workload"
)

// BenchmarkScenarioTenantMix pins the cost of synthesizing the multi-tenant
// Zipf trace — the generator every scenario cell, storm backdrop, and CSV
// export pays before the simulation starts.
func BenchmarkScenarioTenantMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := workload.SynthesizeMultiTenant(workload.TenantConfig{Seed: 1, Duration: 30 * time.Minute})
		if len(tr.Jobs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkScenarioRangedRead pins the pread hot path: range→block
// mapping, partial flow streaming, per-block accounting, and the audit
// fan-out. Each op is the same deterministic batch of 200 ranged reads —
// the rng reseeds per iteration — so every measurement does identical
// virtual work regardless of b.N.
func BenchmarkScenarioRangedRead(b *testing.B) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: 18})
	c := hdfs.New(e, hdfs.Config{Topology: topo})
	if _, err := c.CreateFile("/bench/shard", GB, 3, -1); err != nil {
		b.Fatal(err)
	}
	size := GB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := sim.NewRand(1)
		for k := 0; k < 200; k++ {
			off := float64(rng.Intn(60)) * 16 * MB
			if off >= size {
				off = 0
			}
			c.ReadRange(topology.NodeID(rng.Intn(18)), "/bench/shard", off, 16*MB, nil)
		}
		e.Run()
	}
}
