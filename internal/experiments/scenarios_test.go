package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func scenarioTestConfig(parallel int) ScenarioConfig {
	return ScenarioConfig{Seed: 1, Duration: 30 * time.Minute, Parallel: parallel}
}

// TestScenarioGridShape: the grid's qualitative claims — every scenario
// runs clean under both systems, the flash-crowd judge reacts, the partial
// scenario drives the block-level axes (formulas 2 and 3) that whole-file
// workloads cannot, and the diurnal cell exercises the commission cycle.
func TestScenarioGridShape(t *testing.T) {
	rows, _, err := Scenarios(context.Background(), scenarioTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 scenarios x 2 systems)", len(rows))
	}
	byCell := map[string]ScenarioRow{}
	for _, r := range rows {
		if r.Jobs == 0 {
			t.Fatalf("cell %s/%s completed no jobs", r.Scenario, r.System)
		}
		if r.Failed > 0 {
			t.Fatalf("cell %s/%s failed %d reads", r.Scenario, r.System, r.Failed)
		}
		byCell[r.Scenario+"/"+r.System] = r
	}
	if r := byCell["flashcrowd/ERMS"]; r.ReactS <= 0 {
		t.Fatalf("flash crowd: judge never reacted (react_s = %v)", r.ReactS)
	}
	if r := byCell["partial/ERMS"]; r.F2 == 0 || r.F3 == 0 {
		t.Fatalf("partial reads must fire both block axes: f2=%d f3=%d", r.F2, r.F3)
	}
	if r := byCell["partial/ERMS"]; r.F1 != 0 {
		t.Fatalf("partial reads are preads, formula 1 must stay silent: f1=%d", r.F1)
	}
	if r := byCell["diurnal/ERMS"]; r.Commissions == 0 {
		t.Fatal("diurnal cycle never commissioned a standby node")
	}
	if r := byCell["tenant/ERMS"]; r.Fairness <= 0 || r.Fairness > 1 {
		t.Fatalf("tenant fairness out of range: %v", r.Fairness)
	}
	for _, sys := range []string{"vanilla", "ERMS"} {
		if r := byCell["tenant/"+sys]; r.Fairness < 0.5 {
			t.Fatalf("tenant %s: fairness %v means a tenant starved", sys, r.Fairness)
		}
	}
}

// TestScenarioDeterminism: the same config rendered twice must be
// byte-identical — the property `figures -fig scenarios` reruns rely on.
func TestScenarioDeterminism(t *testing.T) {
	render := func() string {
		cfg := scenarioTestConfig(0)
		rows, _, err := Scenarios(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ScenarioTable(cfg, rows).String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("scenario grid not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestScenarioWorkerInvariance: the merged table must be byte-identical at
// any worker count (the make sweep gate).
func TestScenarioWorkerInvariance(t *testing.T) {
	render := func(parallel int) string {
		cfg := scenarioTestConfig(parallel)
		rows, _, err := Scenarios(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ScenarioTable(cfg, rows).String()
	}
	serial := render(1)
	for _, p := range []int{2, 8} {
		if got := render(p); got != serial {
			t.Fatalf("parallel=%d diverges from serial:\n%s\nvs\n%s", p, got, serial)
		}
	}
}

// TestScenarioTableWinners: the rendered table carries one winner footer
// per scenario.
func TestScenarioTableWinners(t *testing.T) {
	cfg := scenarioTestConfig(0)
	rows, _, err := Scenarios(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := ScenarioTable(cfg, rows).String()
	for _, name := range []string{"winner:tenant", "winner:diurnal", "winner:flashcrowd", "winner:partial"} {
		if !strings.Contains(tbl, name) {
			t.Fatalf("table missing %q footer:\n%s", name, tbl)
		}
	}
	if w, ok := ScenarioWinner(rows, "flashcrowd"); !ok || w.System != "ERMS" {
		t.Fatalf("flash crowd winner should be ERMS (it reacts), got %+v", w)
	}
}
