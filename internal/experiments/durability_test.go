package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestDurabilityQuick: a shrunken storm still exercises every fault kind
// and the headline numbers hold — no data loss, nothing left
// under-replicated, every injected corruption found and fixed.
func TestDurabilityQuick(t *testing.T) {
	res := Durability(DurabilityConfig{
		Seed:        1,
		Duration:    time.Hour,
		Files:       8,
		Crashes:     3,
		Partitions:  1,
		Corruptions: 4,
	})
	if res.FaultsApplied == 0 {
		t.Fatal("storm applied no faults")
	}
	for _, k := range []string{"crash", "partition", "corrupt"} {
		if res.PerKind[k] == 0 {
			t.Errorf("no %s faults applied: %+v", k, res.PerKind)
		}
	}
	if res.DataLoss != 0 {
		t.Fatalf("DataLoss = %d, want 0", res.DataLoss)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("UnderReplicated = %d, want 0", res.UnderReplicated)
	}
	if res.Repairs == 0 {
		t.Error("no repair jobs ran despite crashes outlasting the dead timeout")
	}
	if res.CorruptFound == 0 || res.CorruptFixed < res.CorruptFound {
		t.Errorf("corrupt found/fixed = %d/%d", res.CorruptFound, res.CorruptFixed)
	}
	if res.ReadsCompleted == 0 {
		t.Error("no reads completed")
	}
	// Same config, same result — the scenario is fully seeded.
	again := Durability(DurabilityConfig{
		Seed: 1, Duration: time.Hour, Files: 8, Crashes: 3, Partitions: 1, Corruptions: 4,
	})
	if !reflect.DeepEqual(again, res) {
		t.Fatalf("rerun diverged:\n  %+v\n  %+v", again, res)
	}
}
