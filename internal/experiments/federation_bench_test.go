package experiments

import (
	"fmt"
	"testing"
	"time"

	"erms"
)

// BenchmarkShardedJudgePass is the federated twin of core's
// BenchmarkJudgePass: one full judging pass over every shard of a 4-way
// federation with a populated window. Each shard owns its own judge and
// CEP pipeline, so the pass should cost roughly what four quarter-size
// single-namenode passes cost — and, like the single-judge hot path, it
// must stay allocation-stable (cmd/benchdiff fails the gate if allocs/op
// grow on any *JudgePass* benchmark).
func BenchmarkShardedJudgePass(b *testing.B) {
	sys := erms.NewSystem(erms.Options{
		Shards:      4,
		JudgePeriod: time.Hour, // drive judging manually
	})
	e := sys.Engine()
	const nFiles = 48
	for i := 0; i < nFiles; i++ {
		if err := sys.CreateFile(fmt.Sprintf("/bench/f%03d", i), 192*erms.MB); err != nil {
			b.Fatal(err)
		}
	}
	// Spread reads across files (hotter toward low indices) inside the
	// judging window so every shard's statements have populated groups.
	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("/bench/f%03d", (i*i)%nFiles)
		e.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			sys.Read(2, path, nil)
		})
	}
	e.RunUntil(5 * time.Minute) // all reads issued and streamed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for s := 0; s < sys.Shards(); s++ {
			total += len(sys.Shard(s).Manager().Judge().Evaluate())
		}
		if total == 0 {
			b.Fatal("expected decisions from a hot window")
		}
	}
}
