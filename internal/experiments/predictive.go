package experiments

import (
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/mapred"
	"erms/internal/metrics"
)

// AblationPredictiveRow compares the published reactive judge with the
// trend predictor (the paper's future-work item) on a ramping hot spot.
type AblationPredictiveRow struct {
	Mode        string  // "reactive" or "predictive"
	ReactionMin float64 // minutes from ramp start to the first increase decision
	AvgReadSec  float64 // mean read time across the whole ramp
	Increases   int
}

// AblationPredictive drives a linearly ramping read load against one file
// and measures how quickly each judge reacts and what the readers
// experienced. Earlier replication means the ramp's later (heavier)
// minutes are served by more disks.
func AblationPredictive() []AblationPredictiveRow {
	run := func(predictive bool) AblationPredictiveRow {
		tb := NewVanilla(18)
		th := core.Thresholds{
			TauM:    4,
			Window:  5 * time.Minute,
			ColdAge: 24 * time.Hour,
		}
		th.Predictive = predictive
		m := core.New(tb.Cluster, core.Config{Thresholds: th, JudgePeriod: th.Window})
		if _, err := tb.Cluster.CreateFile("/ramp", 1*GB, 3, -1); err != nil {
			panic(err)
		}
		var reads metrics.Mean
		// Per-minute reader counts: the 5-minute window sums are 4, 12, 20,
		// 28, 36 … so demand sits exactly at the reactive threshold
		// (τ_M·r = 12) for one window before clearly exceeding it. The
		// reactive rule (strictly greater) waits for the third window; the
		// predictor sees the rising trend and fires on the second.
		ramp := []int{
			1, 1, 1, 1, 0,
			2, 2, 2, 3, 3,
			4, 4, 4, 4, 4,
			5, 5, 6, 6, 6,
			7, 7, 7, 8, 8,
			9, 9, 9, 10, 10,
		}
		for minute := 0; minute < len(ramp); minute++ {
			readers := ramp[minute]
			// One second past the minute mark so a judge tick on the mark
			// never races the batch landing at the same instant.
			at := time.Duration(minute)*time.Minute + time.Second
			tb.Engine.At(at, func() {
				for i := 0; i < readers; i++ {
					start := tb.Engine.Now()
					tb.Cluster.ReadFileAt(hdfs.ExternalClient, "/ramp", i,
						func(r *hdfs.ReadResult) {
							if r.Err == nil {
								reads.Add((tb.Engine.Now() - start).Seconds())
							}
						})
				}
			})
		}
		tb.Engine.RunUntil(40 * time.Minute)
		m.Stop()
		row := AblationPredictiveRow{Mode: "reactive", ReactionMin: -1}
		if predictive {
			row.Mode = "predictive"
		}
		for _, d := range m.History() {
			if d.Action == core.ActionIncrease {
				row.ReactionMin = d.Time.Minutes()
				break
			}
		}
		row.AvgReadSec = reads.Value()
		row.Increases = m.Stats().Increases
		return row
	}
	return []AblationPredictiveRow{run(false), run(true)}
}

// AblationPredictiveTable renders the comparison.
func AblationPredictiveTable(rows []AblationPredictiveRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: reactive vs predictive judge on a ramping hot spot",
		Columns: []string{"mode", "first_increase_min", "avg_read_s", "increase_jobs"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Mode, r.ReactionMin, r.AvgReadSec, r.Increases)
	}
	return t
}

// AblationSpeculationRow compares a job's makespan on a partially degraded
// cluster with and without speculative execution.
type AblationSpeculationRow struct {
	Mode        string
	MakespanSec float64
	Backups     int
	BackupsWon  int
}

// AblationSpeculation throttles two datanodes' disks mid-job (a common
// production pathology: a sick disk) and measures how Hadoop-style
// speculative execution contains the damage.
func AblationSpeculation() []AblationSpeculationRow {
	run := func(speculative bool) AblationSpeculationRow {
		tb := NewVanilla(18)
		if _, err := tb.Cluster.CreateFile("/in", 512*MB, 3, -1); err != nil {
			panic(err)
		}
		mr := mapred.New(tb.Cluster, 2, mapred.NewFIFO())
		j := &mapred.Job{Name: "job", File: "/in", Speculative: speculative}
		if err := mr.Submit(j); err != nil {
			panic(err)
		}
		tb.Engine.Schedule(200*time.Millisecond, func() {
			tb.Cluster.StartDiskLoad(0, 8, 10*MB)
			tb.Cluster.StartDiskLoad(1, 8, 10*MB)
		})
		tb.Engine.RunUntil(15 * time.Minute)
		mode := "no-speculation"
		if speculative {
			mode = "speculative"
		}
		return AblationSpeculationRow{
			Mode:        mode,
			MakespanSec: j.Duration().Seconds(),
			Backups:     j.SpeculativeLaunched,
			BackupsWon:  j.SpeculativeWon,
		}
	}
	return []AblationSpeculationRow{run(false), run(true)}
}

// AblationSpeculationTable renders the comparison.
func AblationSpeculationTable(rows []AblationSpeculationRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: speculative execution vs a sick disk (512 MB job)",
		Columns: []string{"mode", "makespan_s", "backups", "backups_won"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Mode, r.MakespanSec, r.Backups, r.BackupsWon)
	}
	return t
}
