package experiments

import (
	"testing"
	"time"
)

func TestAblationPlacementStandbyFirstDeletion(t *testing.T) {
	rows := AblationPlacement()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var def, erms AblationPlacementRow
	for _, r := range rows {
		if r.Policy == "default" {
			def = r
		} else {
			erms = r
		}
	}
	// Both remove the same number of replicas total (8 blocks x 5 extras).
	if def.RemovalsFromActive+def.RemovalsFromPool != erms.RemovalsFromActive+erms.RemovalsFromPool {
		t.Fatalf("total removals differ: %+v vs %+v", def, erms)
	}
	// ERMS deletions land on the pool; the baseline (no pool) disturbs
	// always-on nodes for every removal.
	if erms.RemovalsFromActive != 0 {
		t.Errorf("ERMS removed %d replicas from always-on nodes, want 0", erms.RemovalsFromActive)
	}
	if def.RemovalsFromActive == 0 {
		t.Error("baseline should disturb active nodes")
	}
	if tb := AblationPlacementTable(rows); len(tb.Rows) != 2 {
		t.Fatal("table")
	}
}

func TestAblationIdleSchedulingProtectsReads(t *testing.T) {
	rows := AblationIdleScheduling()
	var imm, idle AblationIdleRow
	for _, r := range rows {
		if r.Scheduling == "immediate" {
			imm = r
		} else {
			idle = r
		}
	}
	if imm.AvgReadSec <= idle.AvgReadSec {
		t.Errorf("immediate encodes should slow reads: immediate %.2fs vs deferred %.2fs",
			imm.AvgReadSec, idle.AvgReadSec)
	}
	// Deferred encodes still complete once the cluster goes idle.
	if idle.EncodesDone == 0 {
		t.Error("deferred encodes never ran")
	}
	if imm.EncodesDone == 0 {
		t.Error("immediate encodes never ran")
	}
	if tb := AblationIdleTable(rows); len(tb.Rows) != 2 {
		t.Fatal("table")
	}
}

func TestReliabilityShape(t *testing.T) {
	rows := Reliability(800, []int{1, 3, 5}, 11)
	get := func(scheme string, fail int) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.NodesFailed == fail {
				return r.LossProb
			}
		}
		t.Fatalf("missing %s/%d", scheme, fail)
		return 0
	}
	// Single replication loses data almost immediately.
	if get("replication-1", 1) < 0.3 {
		t.Errorf("replication-1 at f=1 too safe: %v", get("replication-1", 1))
	}
	// Triplication survives up to 2 failures by construction.
	if get("replication-3", 1) != 0 {
		t.Errorf("replication-3 lost data with one failure: %v", get("replication-3", 1))
	}
	// RS(10,4) with one replica per block tolerates any 4 node failures
	// only if stripe members sit on distinct nodes; at minimum it must
	// dominate single replication everywhere and not be catastrophically
	// worse than triplication at low failure counts.
	for _, f := range []int{1, 3, 5} {
		if get("rs(10,4)", f) > get("replication-1", f) {
			t.Errorf("RS worse than single replication at f=%d", f)
		}
	}
	if get("rs(10,4)", 1) != 0 {
		t.Errorf("RS(10,4) lost data with one failure: %v", get("rs(10,4)", 1))
	}
	// Stripe-aware keeper placement: the code's full tolerance (any 3 node
	// failures with near-distinct shard placement) is preserved.
	if get("rs(10,4)", 3) != 0 {
		t.Errorf("RS(10,4) lost data with three failures: %v", get("rs(10,4)", 3))
	}
	// Monotone in failures for each scheme.
	for _, s := range []string{"replication-1", "replication-3", "rs(10,4)"} {
		if get(s, 1) > get(s, 3) || get(s, 3) > get(s, 5) {
			t.Errorf("%s: loss probability not monotone", s)
		}
	}
	if tb := ReliabilityTable(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table")
	}
}

func TestAblationThresholdsTradeoff(t *testing.T) {
	rows := AblationThresholds(1, 40*time.Minute, []float64{12, 4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	conservative, aggressive := rows[0], rows[1]
	if conservative.TauM != 12 || aggressive.TauM != 4 {
		t.Fatalf("order: %+v", rows)
	}
	// Lower τ_M means more replication activity and more bytes moved (the
	// "high overhead cost" of low thresholds the paper warns about).
	if aggressive.Increases <= conservative.Increases {
		t.Errorf("increases: τ4=%d should exceed τ12=%d",
			aggressive.Increases, conservative.Increases)
	}
	if aggressive.ReplicaMB <= conservative.ReplicaMB {
		t.Errorf("replication traffic: τ4=%.0f MB should exceed τ12=%.0f MB",
			aggressive.ReplicaMB, conservative.ReplicaMB)
	}
	if tb := AblationThresholdsTable(rows); len(tb.Rows) != 2 {
		t.Fatal("table")
	}
}

func TestAblationPredictiveReactsEarlier(t *testing.T) {
	rows := AblationPredictive()
	var reactive, predictive AblationPredictiveRow
	for _, r := range rows {
		if r.Mode == "reactive" {
			reactive = r
		} else {
			predictive = r
		}
	}
	if reactive.ReactionMin < 0 || predictive.ReactionMin < 0 {
		t.Fatalf("a judge never reacted: %+v %+v", reactive, predictive)
	}
	if predictive.ReactionMin > reactive.ReactionMin {
		t.Errorf("predictive reacted at %.0f min, later than reactive %.0f min",
			predictive.ReactionMin, reactive.ReactionMin)
	}
	// Earlier replication should not make reads slower overall.
	if predictive.AvgReadSec > reactive.AvgReadSec*1.05 {
		t.Errorf("predictive reads slower: %.2fs vs %.2fs",
			predictive.AvgReadSec, reactive.AvgReadSec)
	}
	if tb := AblationPredictiveTable(rows); len(tb.Rows) != 2 {
		t.Fatal("table")
	}
}

func TestAblationSpeculationContainsStragglers(t *testing.T) {
	rows := AblationSpeculation()
	var plain, spec AblationSpeculationRow
	for _, r := range rows {
		if r.Mode == "speculative" {
			spec = r
		} else {
			plain = r
		}
	}
	if spec.Backups == 0 || spec.BackupsWon == 0 {
		t.Fatalf("speculation inactive: %+v", spec)
	}
	if spec.MakespanSec >= plain.MakespanSec {
		t.Errorf("speculation did not help: %.1fs vs %.1fs",
			spec.MakespanSec, plain.MakespanSec)
	}
	if tb := AblationSpeculationTable(rows); len(tb.Rows) != 2 {
		t.Fatal("table")
	}
}
