package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFailoverDemo runs the failover study at reduced scale and checks
// the property the figure exists to demonstrate: every crash recovers a
// standby whose state matches the live namenode bit for bit, with zero
// recoverable blocks lost, and the replayed tail grows with crash time.
func TestFailoverDemo(t *testing.T) {
	cfg := FailoverConfig{
		Seed:     7,
		Nodes:    18,
		Files:    12,
		Duration: 24 * time.Minute,
		Crashes:  3,
	}
	rows := FailoverDemo(cfg)
	if len(rows) != cfg.Crashes {
		t.Fatalf("got %d rows, want %d", len(rows), cfg.Crashes)
	}
	for i, r := range rows {
		if !r.DigestMatch {
			t.Errorf("crash %d at %.1fm: standby digest != live", i, r.AtMin)
		}
		if !r.Consistent {
			t.Errorf("crash %d at %.1fm: standby inconsistent", i, r.AtMin)
		}
		if r.Lost != 0 {
			t.Errorf("crash %d at %.1fm: lost %d recoverable blocks", i, r.AtMin, r.Lost)
		}
		if r.CheckpointKB <= 0 || r.Files <= 0 || r.Blocks <= 0 {
			t.Errorf("crash %d: empty row %+v", i, r)
		}
		if i > 0 && r.TailEntries < rows[i-1].TailEntries {
			t.Errorf("tail shrank between crashes: %d then %d (single baseline should grow monotonically)",
				rows[i-1].TailEntries, r.TailEntries)
		}
	}
	// The later crashes must actually replay a longer journal, or the
	// recover-time-vs-tail-length figure is measuring nothing.
	if last := rows[len(rows)-1]; last.TailEntries <= rows[0].TailEntries {
		t.Errorf("journal tail did not grow: first crash %d entries, last %d",
			rows[0].TailEntries, last.TailEntries)
	}

	det := FailoverTable(rows).String()
	for _, want := range []string{"tail_entries", "digest_match", "true"} {
		if !strings.Contains(det, want) {
			t.Errorf("failover table missing %q:\n%s", want, det)
		}
	}
	if strings.Contains(det, "restore_ms") {
		t.Error("wall-clock column leaked into the deterministic table")
	}
	timing := FailoverTimingTable(rows).String()
	if !strings.Contains(timing, "restore_ms") {
		t.Errorf("timing table missing restore_ms:\n%s", timing)
	}

	// Byte stability: the deterministic table must not depend on the host.
	again := FailoverTable(FailoverDemo(cfg)).String()
	if again != det {
		t.Errorf("failover table not deterministic across runs:\n%s\nvs\n%s", det, again)
	}
}
