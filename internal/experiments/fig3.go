package experiments

import (
	"fmt"
	"time"

	"erms/internal/core"
	"erms/internal/mapred"
	"erms/internal/metrics"
	"erms/internal/workload"
)

// Fig3Config sizes the Figure 3 experiment (reading performance and data
// locality of SWIM-synthesized MapReduce jobs under FIFO and Fair
// schedulers, vanilla vs ERMS at three τ_M settings).
type Fig3Config struct {
	Seed     int64
	Duration time.Duration // trace length; default 90 min
	Files    int           // catalog size; default 30
	// TauMs are the ERMS thresholds swept as the paper's series
	// (ERMS_τM=8, 6, 4). Default {8, 6, 4}.
	TauMs []float64
}

func (c *Fig3Config) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 90 * time.Minute
	}
	if c.Files <= 0 {
		c.Files = 30
	}
	if len(c.TauMs) == 0 {
		c.TauMs = []float64{8, 6, 4}
	}
}

// Fig3Row is one bar of Figure 3(a)/(b).
type Fig3Row struct {
	Scheduler  string  // "FIFO" or "Fair"
	System     string  // "vanilla" or "ERMS_tauM=N"
	Throughput float64 // average per-job read throughput, MB/s (Fig 3a)
	Locality   float64 // fraction of node-local map tasks (Fig 3b)
	Jobs       int
}

// Fig3 runs every scheduler × system variant over the same trace.
//
// Both variants run all nodes active (the Active/Standby contrast is
// Figures 8/9); here ERMS's benefit is elastic replication: hot inputs
// gain replicas, raising locality and read bandwidth.
func Fig3(cfg Fig3Config) []Fig3Row {
	cfg.applyDefaults()
	trace := synthesizeFig3Trace(cfg)
	var rows []Fig3Row
	for _, schedName := range []string{"FIFO", "Fair"} {
		variants := []struct {
			name string
			tauM float64 // 0 = vanilla
		}{{"vanilla", 0}}
		for _, tm := range cfg.TauMs {
			variants = append(variants, struct {
				name string
				tauM float64
			}{fmt.Sprintf("ERMS_tauM=%g", tm), tm})
		}
		for _, v := range variants {
			rows = append(rows, runFig3Variant(trace, schedName, v.name, v.tauM))
		}
	}
	return rows
}

// synthesizeFig3Trace builds the Figure-3 workload. Intensity matters: the
// judge's window counts must be able to exceed τ_M·r for hot files, so the
// trace submits a job every ~4 s on average (the paper replays a
// 3000-machine production trace onto 18 nodes, which is similarly dense).
func synthesizeFig3Trace(cfg Fig3Config) *workload.Trace {
	cfg.applyDefaults()
	return workload.Synthesize(workload.Config{
		Seed:             cfg.Seed,
		Duration:         cfg.Duration,
		NumFiles:         cfg.Files,
		MeanInterarrival: 4 * time.Second,
		MaxFileSize:      1 * GB,
	})
}

// runTraceFIFO replays a trace through a FIFO MapReduce runtime on tb and
// returns the mean per-job read throughput (used by the τ_M ablation).
func runTraceFIFO(tb *Testbed, trace *workload.Trace) float64 {
	mr := mapred.New(tb.Cluster, 2, mapred.NewFIFO())
	workload.Preload(tb.Engine, tb.Cluster, trace)
	var tp metrics.Mean
	workload.ReplayMapReduce(tb.Engine, mr, trace, func(j *mapred.Job) {
		if j.Err == nil {
			tp.Add(j.ReadThroughputMBps())
		}
	})
	tb.Engine.RunUntil(trace.Horizon(time.Hour))
	if tb.Manager != nil {
		tb.Manager.Stop()
	}
	return tp.Value()
}

func runFig3Variant(trace *workload.Trace, schedName, sysName string, tauM float64) Fig3Row {
	var tb *Testbed
	if tauM == 0 {
		tb = NewVanilla(18)
	} else {
		// Only τ_M is pinned; the dependent bounds (M_M, M_m, τ_DN) scale
		// from it so the whole hot-rule family moves with the series.
		th := core.Thresholds{
			TauM:    tauM,
			Window:  5 * time.Minute,
			ColdAge: 24 * time.Hour, // keep Fig 3 about replication, not coding
		}
		tb = NewERMS(18, 0, th, time.Minute)
	}
	var sched mapred.Scheduler
	if schedName == "FIFO" {
		sched = mapred.NewFIFO()
	} else {
		sched = mapred.NewFair()
	}
	mr := mapred.New(tb.Cluster, 2, sched)
	workload.Preload(tb.Engine, tb.Cluster, trace)
	var tp metrics.Mean
	var localTasks, totalTasks int
	workload.ReplayMapReduce(tb.Engine, mr, trace, func(j *mapred.Job) {
		if j.Err != nil {
			return
		}
		tp.Add(j.ReadThroughputMBps())
		localTasks += j.NodeLocalTasks
		totalTasks += j.Tasks()
	})
	tb.Engine.RunUntil(trace.Horizon(time.Hour))
	if tb.Manager != nil {
		tb.Manager.Stop()
	}
	loc := 0.0
	if totalTasks > 0 {
		loc = float64(localTasks) / float64(totalTasks)
	}
	return Fig3Row{
		Scheduler:  schedName,
		System:     sysName,
		Throughput: tp.Value(),
		Locality:   loc,
		Jobs:       tp.N(),
	}
}

// Fig3Table renders the rows.
func Fig3Table(rows []Fig3Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 3: reading throughput (a) and data locality (b) by scheduler and system",
		Columns: []string{"scheduler", "system", "throughput_MBps", "locality", "jobs"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Scheduler, r.System, r.Throughput, r.Locality, r.Jobs)
	}
	return t
}
