package experiments

import (
	"fmt"
	"time"

	"erms/internal/auditlog"
	"erms/internal/chaos"
	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
)

// FailoverConfig drives the namenode-failover study: how long a standby
// takes to catch up as the journal tail it must replay grows.
type FailoverConfig struct {
	// Seed drives the workload and the datanode fault storm.
	Seed int64
	// Nodes is the cluster size; default 24.
	Nodes int
	// Files is the initial namespace size; default 24.
	Files int
	// Duration is the run length; default 40 minutes.
	Duration time.Duration
	// Crashes is how many evenly spaced namenode crashes to measure;
	// default 4. The rolling checkpoint is taken once at the start, so the
	// tail replayed by crash k is k/Crashes of the run's journal — the
	// x-axis of the time-to-recover curve.
	Crashes int
}

func (c *FailoverConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.Files <= 0 {
		c.Files = 24
	}
	if c.Duration <= 0 {
		c.Duration = 40 * time.Minute
	}
	if c.Crashes <= 0 {
		c.Crashes = 4
	}
}

// FailoverRow reports one namenode crash. Everything except RestoreMs is
// deterministic; RestoreMs measures this machine's wall clock.
type FailoverRow struct {
	AtMin        float64 // virtual crash time
	TailEntries  int     // journal entries replayed on top of the checkpoint
	CheckpointKB float64
	Files        int // namespace size at the crash
	Blocks       int
	DigestMatch  bool
	Consistent   bool
	Lost         int     // recoverable blocks lost (must be 0)
	RestoreMs    float64 // wall time to restore + replay (timing table only)
}

// FailoverDemo runs a journaled ERMS deployment through a read workload
// and a datanode fault storm, failing the namenode over at evenly spaced
// points. Each crash commissions a standby from the run-start checkpoint
// plus the journal tail, so the rows trace time-to-recover as a function
// of journal length — the knob a real deployment tunes with its
// checkpoint cadence.
func FailoverDemo(cfg FailoverConfig) []FailoverRow {
	cfg.applyDefaults()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: cfg.Nodes})
	c := hdfs.New(e, hdfs.Config{
		Topology: topo,
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:     true,
			DeadTimeout: 2 * time.Minute,
		},
	})
	c.SetJournal(auditlog.NewJournal())

	bs := c.Config().BlockSize
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("/fo/f%03d", i)
		if _, err := c.CreateFile(path, 3*bs, 3, -1); err != nil {
			panic(fmt.Sprintf("failover: create %s: %v", path, err))
		}
	}
	m := core.New(c, core.Config{})

	fo, err := chaos.NewFailover(chaos.FailoverConfig{
		Engine:  e,
		Cluster: c,
		// One checkpoint for the whole run: crash k replays k/Crashes of
		// the journal, giving the recover-time-vs-tail-length curve.
		Interval: 2 * cfg.Duration,
		NewStandby: func(e2 *sim.Engine) *hdfs.Cluster {
			return hdfs.New(e2, hdfs.Config{
				Topology: topology.New(topology.Config{Racks: 3, NodeCount: cfg.Nodes}),
			})
		},
	})
	if err != nil {
		panic("failover: " + err.Error())
	}

	// Zipf-popular reads keep the judge deciding (replication changes are
	// the bulk of the journal) and keep transfers in flight at every crash.
	rng := sim.NewRand(cfg.Seed)
	zipf := sim.NewZipf(rng, 1.1, cfg.Files)
	items := make([]sim.Timed, 0, 2000)
	for i := 0; i < 2000; i++ {
		path := fmt.Sprintf("/fo/f%03d", zipf.Draw())
		client := topology.NodeID(rng.Intn(cfg.Nodes))
		at := time.Duration(rng.Int63n(int64(cfg.Duration)))
		items = append(items, sim.Timed{At: at, Fn: func() {
			c.ReadFile(client, path, nil)
		}})
	}
	e.AtBatch(items)

	// Namespace churn keeps the journal growing for the whole run — one
	// short-lived file per virtual minute, deleted ten minutes later — so
	// the tail replayed at crash k genuinely scales with k.
	churn := 0
	var tick func()
	tick = func() {
		path := fmt.Sprintf("/fo/tmp%04d", churn)
		churn++
		if _, err := c.CreateFile(path, bs, 2, -1); err == nil {
			e.Schedule(10*time.Minute, func() { _ = c.DeleteFile(path) })
		}
		if e.Now() < cfg.Duration {
			e.Schedule(time.Minute, tick)
		}
	}
	e.Schedule(time.Minute, tick)

	// Datanode faults ride alongside so crashes land mid-churn.
	plan := chaos.Storm(chaos.StormConfig{
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
		Nodes:    stormNodes(cfg.Nodes),
		Racks:    []int{1, 2},
		Crashes:  3,
		Downtime: 3 * time.Minute,
	})
	plan.Failover = fo
	plan.Schedule(e, c)

	rows := make([]FailoverRow, 0, cfg.Crashes)
	for k := 1; k <= cfg.Crashes; k++ {
		at := cfg.Duration * time.Duration(k) / time.Duration(cfg.Crashes+1)
		e.Schedule(at, func() {
			res := fo.Crash()
			if res.Err != nil {
				panic("failover: " + res.Err.Error())
			}
			rows = append(rows, FailoverRow{
				AtMin:        res.At.Minutes(),
				TailEntries:  res.TailEntries,
				CheckpointKB: float64(res.CheckpointBytes) / 1024,
				Files:        c.Files(),
				Blocks:       c.LiveBlocks(),
				DigestMatch:  res.DigestMatch,
				Consistent:   res.ConsistencyOK,
				Lost:         res.RecoverableLost,
				RestoreMs:    res.RestoreWall.Seconds() * 1000,
			})
		})
	}

	e.RunUntil(cfg.Duration + 10*time.Minute)
	m.Stop()
	fo.Stop()
	return rows
}

// stormNodes selects the first half of the cluster as storm victims,
// keeping the rest stable so reads always have somewhere to go.
func stormNodes(n int) []hdfs.DatanodeID {
	ids := make([]hdfs.DatanodeID, 0, n/2)
	for i := 0; i < n/2; i++ {
		ids = append(ids, hdfs.DatanodeID(i))
	}
	return ids
}

// FailoverTable renders the deterministic half of the study — identical
// bytes on every machine, so it rides in the byte-stable figures stream.
func FailoverTable(rows []FailoverRow) *metrics.Table {
	t := &metrics.Table{
		Title: "Failover: standby rebuilt from checkpoint + journal tail at each crash (mid-storm)",
		Columns: []string{"crash_min", "tail_entries", "ckpt_KB",
			"files", "blocks", "digest_match", "consistent", "lost"},
	}
	for _, r := range rows {
		t.AddRowValues(r.AtMin, r.TailEntries, r.CheckpointKB,
			r.Files, r.Blocks, r.DigestMatch, r.Consistent, r.Lost)
	}
	return t
}

// FailoverTimingTable renders the wall-clock half: time-to-recover vs
// journal length on this machine. Not byte-stable.
func FailoverTimingTable(rows []FailoverRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Failover timing: wall-clock restore + replay vs journal tail length",
		Columns: []string{"crash_min", "tail_entries", "restore_ms"},
	}
	for _, r := range rows {
		t.AddRowValues(r.AtMin, r.TailEntries, r.RestoreMs)
	}
	return t
}
