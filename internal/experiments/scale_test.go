package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestScaleDemoSmall runs the scale sweep machinery at toy size: every
// row must be deterministic, violation-free, and carry the requested
// namespace; the table must render every row.
func TestScaleDemoSmall(t *testing.T) {
	cfg := ScaleConfig{
		Seed:         3,
		Sizes:        []int{6, 12},
		FilesPerNode: 4,
		Reads:        300,
		Horizon:      5 * time.Minute,
	}
	rows := ScaleDemo(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Files != r.Nodes*cfg.FilesPerNode {
			t.Errorf("%d nodes: %d files, want %d", r.Nodes, r.Files, r.Nodes*cfg.FilesPerNode)
		}
		if r.Blocks < r.Files {
			t.Errorf("%d nodes: %d blocks for %d files", r.Nodes, r.Blocks, r.Files)
		}
		if r.Violations != 0 {
			t.Errorf("%d nodes: %d invariant violations", r.Nodes, r.Violations)
		}
		if !r.Det {
			t.Errorf("%d nodes: same-seed runs diverged (digest %x)", r.Nodes, r.Digest)
		}
		if r.Events == 0 || r.Digest == 0 {
			t.Errorf("%d nodes: empty run (events=%d digest=%x)", r.Nodes, r.Events, r.Digest)
		}
	}
	out := ScaleTable(rows).String()
	if !strings.Contains(out, "12") || !strings.Contains(out, "true") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}
