package experiments

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestScaleDemoSmall runs the scale sweep machinery at toy size: every
// row must be deterministic, violation-free, and carry the requested
// namespace; the table must render every row.
func TestScaleDemoSmall(t *testing.T) {
	cfg := ScaleConfig{
		Seed:         3,
		Sizes:        []int{6, 12},
		FilesPerNode: 4,
		Reads:        300,
		Horizon:      5 * time.Minute,
	}
	rows := ScaleDemo(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Files != r.Nodes*cfg.FilesPerNode {
			t.Errorf("%d nodes: %d files, want %d", r.Nodes, r.Files, r.Nodes*cfg.FilesPerNode)
		}
		if r.Blocks < r.Files {
			t.Errorf("%d nodes: %d blocks for %d files", r.Nodes, r.Blocks, r.Files)
		}
		if r.Violations != 0 {
			t.Errorf("%d nodes: %d invariant violations", r.Nodes, r.Violations)
		}
		if !r.Det {
			t.Errorf("%d nodes: same-seed runs diverged (digest %x)", r.Nodes, r.Digest)
		}
		if r.Events == 0 || r.Digest == 0 {
			t.Errorf("%d nodes: empty run (events=%d digest=%x)", r.Nodes, r.Events, r.Digest)
		}
	}
	out := ScaleTable(rows).String()
	if !strings.Contains(out, "12") || !strings.Contains(out, "true") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}

// TestScaleDemoCheckpointCache: with a cache dir, the first same-seed run
// builds and publishes a checkpoint, the second restores it, and the two
// must agree on the digest — restore equivalence proven by the sweep's own
// determinism check. Corruption falls back to a fresh build silently.
func TestScaleDemoCheckpointCache(t *testing.T) {
	cfg := ScaleConfig{
		Seed:         3,
		Sizes:        []int{6},
		FilesPerNode: 4,
		Reads:        200,
		Horizon:      5 * time.Minute,
		CacheDir:     t.TempDir(),
	}
	rows := ScaleDemo(cfg)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	first := rows[0]
	if !first.Loaded {
		t.Fatal("second same-seed run did not restore from the cache the first wrote")
	}
	if !first.Det {
		t.Fatal("restored run diverged from built run")
	}
	path := scaleCachePath(cfg, 6)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not published: %v", err)
	}

	// A warm cache serves both runs and reproduces the same digest.
	warm := ScaleDemo(cfg)[0]
	if !warm.Loaded || !warm.Det || warm.Digest != first.Digest {
		t.Fatalf("warm cache run: loaded=%t det=%t digest %x vs %x",
			warm.Loaded, warm.Det, warm.Digest, first.Digest)
	}

	// A corrupted cache is rejected by the checksum, rebuilt, and republished.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	healed := ScaleDemo(cfg)[0]
	if !healed.Det || healed.Digest != first.Digest {
		t.Fatalf("corrupt cache changed results: det=%t digest %x vs %x",
			healed.Det, healed.Digest, first.Digest)
	}
	if !healed.Loaded {
		t.Fatal("rebuilt cache was not republished for the second run")
	}

	timing := ScaleTimingTable(rows).String()
	if !strings.Contains(timing, "cached") || !strings.Contains(timing, "true") {
		t.Fatalf("timing table missing cache column:\n%s", timing)
	}
}
