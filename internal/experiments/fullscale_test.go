package experiments

import (
	"os"
	"testing"
	"time"
)

// TestPaperScaleFigures validates the figure shapes at the paper's full
// parameters (1 GB files, 70 readers, replication up to 8, multi-hour
// traces). It takes minutes, so it only runs when ERMS_FULL is set:
//
//	ERMS_FULL=1 go test -run TestPaperScale ./internal/experiments/
func TestPaperScaleFigures(t *testing.T) {
	if os.Getenv("ERMS_FULL") == "" {
		t.Skip("set ERMS_FULL=1 to run paper-scale validation")
	}

	t.Run("Fig3", func(t *testing.T) {
		rows := Fig3(Fig3Config{Seed: 1, Duration: 2 * time.Hour, Files: 30})
		van := find3(rows, "FIFO", "vanilla")
		best := find3(rows, "FIFO", "ERMS_tauM=4")
		if best.Throughput <= van.Throughput || best.Locality <= van.Locality {
			t.Errorf("full-scale FIFO: vanilla %.1f/%.3f vs ERMS %.1f/%.3f",
				van.Throughput, van.Locality, best.Throughput, best.Locality)
		}
	})

	t.Run("Fig6", func(t *testing.T) {
		rows := Fig6(Fig6Config{}) // 1 GB, r=1..6, threads 7..35
		get := func(threads, repl int) float64 {
			for _, r := range rows {
				if r.Threads == threads && r.Replication == repl {
					return r.AvgExecSec
				}
			}
			return 0
		}
		if !(get(35, 1) > get(35, 6)) || !(get(7, 3) < get(35, 3)) {
			t.Error("full-scale Fig6 ordering broken")
		}
	})

	t.Run("Fig7", func(t *testing.T) {
		for _, r := range Fig7(Fig7Config{}) { // 64 MB .. 8 GB
			if r.WholeSec >= r.ByOneSec {
				t.Errorf("size %s: whole %.1f >= one-by-one %.1f",
					sizeLabel(r.Size), r.WholeSec, r.ByOneSec)
			}
		}
	})

	t.Run("Fig8", func(t *testing.T) {
		rows := Fig8(Fig89Config{}, []int{1, 2, 4, 6, 8}) // 1 GB file
		get := func(m StorageModel, repl int) int {
			for _, r := range rows {
				if r.Model == m && r.Replication == repl {
					return r.MaxClients
				}
			}
			return 0
		}
		// τ_M calibration: one replica holds ~8-12 concurrent readers.
		if got := get(AllActive, 1); got < 6 || got > 14 {
			t.Errorf("per-replica capacity = %d, want ~8-12", got)
		}
		if get(ActiveStandby, 8) < get(AllActive, 8)-2 {
			t.Errorf("active/standby fell behind at r=8: %d vs %d",
				get(ActiveStandby, 8), get(AllActive, 8))
		}
	})

	t.Run("Fig9", func(t *testing.T) {
		rows := Fig9(Fig89Config{}, 70, []int{2, 4, 6, 8})
		for _, m := range []StorageModel{AllActive, ActiveStandby} {
			var prev float64
			for _, repl := range []int{2, 4, 6, 8} {
				for _, r := range rows {
					if r.Model == m && r.Replication == repl {
						if r.Throughput < prev*0.95 {
							t.Errorf("%v: throughput regressed at r=%d", m, repl)
						}
						prev = r.Throughput
					}
				}
			}
		}
	})
}
