package experiments

import (
	"bytes"
	"testing"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// BenchmarkCheckpoint / BenchmarkRestore pin the failover budget: how
// fast the namenode can serialize its durable state and how fast a
// standby can load it. They use the same 300-node / 10,000-file cluster
// as the BenchmarkScale* suite, so regressions show up in the same
// BENCH baseline diff.

// BenchmarkCheckpoint measures the full checkpoint encode — namespace,
// block map, replica lists, node states, checksum trailer — reusing the
// buffer so allocation reflects the encoder, not the destination.
func BenchmarkCheckpoint(b *testing.B) {
	_, c := benchScaleCluster(b, 10000)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := c.WriteCheckpoint(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkRestore measures what a standby pays per commission: decode,
// verify the checksum, rebuild every derived index, and fast-forward the
// clock. Each iteration restores into a fresh cluster because restore
// requires a pristine target — that construction cost is part of the
// real commissioning path anyway.
func BenchmarkRestore(b *testing.B) {
	_, c := benchScaleCluster(b, 10000)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		fresh := hdfs.New(e, hdfs.Config{
			Topology: topology.New(topology.Config{Racks: benchNodes / 6, NodeCount: benchNodes}),
		})
		if err := fresh.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
