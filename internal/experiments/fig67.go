package experiments

import (
	"fmt"
	"time"

	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/topology"
)

// Fig6Config sizes the TestDFSIO-style experiment: average read execution
// time under different replication factors and concurrent thread counts.
type Fig6Config struct {
	FileSize     float64 // default 1 GB
	Replications []int   // default 1..6
	Threads      []int   // default 7,14,21,28,35 ("from 7 to 35")
}

func (c *Fig6Config) applyDefaults() {
	if c.FileSize <= 0 {
		c.FileSize = 1 * GB
	}
	if len(c.Replications) == 0 {
		c.Replications = []int{1, 2, 3, 4, 5, 6}
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{7, 14, 21, 28, 35}
	}
}

// Fig6Row is one cell of Figure 6.
type Fig6Row struct {
	Threads     int
	Replication int
	AvgExecSec  float64
}

// Fig6 measures DFSIO-style concurrent whole-file reads: high concurrency
// slows reads down, higher replication speeds them up.
func Fig6(cfg Fig6Config) []Fig6Row {
	cfg.applyDefaults()
	var rows []Fig6Row
	for _, threads := range cfg.Threads {
		for _, repl := range cfg.Replications {
			tb := NewVanilla(18)
			if _, err := tb.Cluster.CreateFile("/dfsio", cfg.FileSize, repl, 0); err != nil {
				panic(err)
			}
			var exec metrics.Mean
			n := tb.Cluster.NumDatanodes()
			for i := 0; i < threads; i++ {
				client := topology.NodeID(i % n)
				tb.Cluster.ReadFile(client, "/dfsio", func(r *hdfs.ReadResult) {
					if r.Err == nil {
						exec.Add(r.Duration().Seconds())
					}
				})
			}
			tb.Engine.Run()
			rows = append(rows, Fig6Row{
				Threads: threads, Replication: repl, AvgExecSec: exec.Value(),
			})
		}
	}
	return rows
}

// Fig6Table renders the grid, one row per (threads, replication).
func Fig6Table(rows []Fig6Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 6: TestDFSIO read — average execution time (s)",
		Columns: []string{"threads", "replication", "avg_exec_s"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Threads, r.Replication, r.AvgExecSec)
	}
	return t
}

// Fig7Config sizes the replica-increase comparison.
type Fig7Config struct {
	// Sizes of the file whose replication is raised; default the paper's
	// 64 MB … 8 GB series.
	Sizes []float64
	// FromRepl/ToRepl bound the increase; default 3 -> 6.
	FromRepl, ToRepl int
}

func (c *Fig7Config) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []float64{64 * MB, 128 * MB, 256 * MB, 512 * MB,
			1 * GB, 2 * GB, 4 * GB, 8 * GB}
	}
	if c.FromRepl <= 0 {
		c.FromRepl = 3
	}
	if c.ToRepl <= c.FromRepl {
		c.ToRepl = c.FromRepl + 3
	}
}

// Fig7Row compares the two increase strategies for one file size.
type Fig7Row struct {
	Size     float64
	WholeSec float64 // increase directly to the target factor
	ByOneSec float64 // raise one step at a time
}

// Fig7 measures the time to raise a file's replication by both strategies:
// "increasing the replica directly to the optimal one is a better choice."
func Fig7(cfg Fig7Config) []Fig7Row {
	cfg.applyDefaults()
	run := func(size float64, mode hdfs.ReplicationMode) float64 {
		tb := NewVanilla(18)
		// Writer -1: the file's first replicas spread across the cluster
		// (it was produced by a distributed job), avoiding a synthetic
		// single-source hotspot.
		if _, err := tb.Cluster.CreateFile("/data", size, cfg.FromRepl, -1); err != nil {
			panic(err)
		}
		start := tb.Engine.Now()
		var took time.Duration
		tb.Cluster.SetReplication("/data", cfg.ToRepl, mode, func(err error) {
			if err != nil {
				panic(err)
			}
			took = tb.Engine.Now() - start
		})
		tb.Engine.Run()
		return took.Seconds()
	}
	var rows []Fig7Row
	for _, size := range cfg.Sizes {
		rows = append(rows, Fig7Row{
			Size:     size,
			WholeSec: run(size, hdfs.WholeAtOnce),
			ByOneSec: run(size, hdfs.OneByOne),
		})
	}
	return rows
}

// Fig7Table renders the comparison.
func Fig7Table(rows []Fig7Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 7: time to increase replication, whole-at-once vs one-by-one (s)",
		Columns: []string{"file_size", "whole_s", "one_by_one_s"},
	}
	for _, r := range rows {
		t.AddRowValues(sizeLabel(r.Size), r.WholeSec, r.ByOneSec)
	}
	return t
}

func sizeLabel(size float64) string {
	if size >= GB {
		return fmt.Sprintf("%gGB", size/GB)
	}
	return fmt.Sprintf("%gMB", size/MB)
}
