// Package experiments regenerates every figure of the ERMS paper's
// evaluation (Figures 3–9; the paper has no numbered tables) plus the
// ablations called out in DESIGN.md. Each harness builds a fresh
// deterministic simulation, runs the paper's workload shape, and returns
// both typed rows (for tests and benchmarks to assert the qualitative
// shape) and a rendered table (for cmd/figures).
package experiments

import (
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// MB mirrors topology.MB for brevity.
const MB = float64(topology.MB)

// GB mirrors topology.GB.
const GB = float64(topology.GB)

// Testbed mirrors the paper's cluster: 18 datanodes, 3 racks, Gigabit
// network, 64 MB blocks, default replication 3.
type Testbed struct {
	Engine  *sim.Engine
	Cluster *hdfs.Cluster
	Manager *core.Manager // nil for vanilla
}

// NewVanilla builds the baseline: every node active, stock placement, no
// ERMS.
func NewVanilla(nodes int) *Testbed {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: nodes})
	c := hdfs.New(e, hdfs.Config{Topology: topo})
	return &Testbed{Engine: e, Cluster: c}
}

// NewERMS builds an ERMS deployment with active+standby nodes and the
// given thresholds (zero-valued fields take defaults). Standby nodes are
// taken from the tail of each rack in turn — the paper: "the active nodes
// and standby nodes are both distributed in different racks".
func NewERMS(active, standby int, th core.Thresholds, judgePeriod time.Duration) *Testbed {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: active + standby})
	pool := SpreadStandby(topo, standby)
	c := hdfs.New(e, hdfs.Config{Topology: topo, StandbyNodes: pool})
	m := core.New(c, core.Config{Thresholds: th, JudgePeriod: judgePeriod})
	return &Testbed{Engine: e, Cluster: c, Manager: m}
}

// SpreadStandby picks `standby` datanodes balanced across racks (from the
// tail of each rack, round-robin).
func SpreadStandby(topo *topology.Topology, standby int) []hdfs.DatanodeID {
	perRack := make([][]topology.NodeID, topo.NumRacks())
	for r := 0; r < topo.NumRacks(); r++ {
		perRack[r] = topo.NodesInRack(r)
	}
	var pool []hdfs.DatanodeID
	for len(pool) < standby {
		progress := false
		for r := 0; r < topo.NumRacks() && len(pool) < standby; r++ {
			nodes := perRack[r]
			if len(nodes) <= 1 { // keep at least one active node per rack
				continue
			}
			last := nodes[len(nodes)-1]
			perRack[r] = nodes[:len(nodes)-1]
			pool = append(pool, hdfs.DatanodeID(last))
			progress = true
		}
		if !progress {
			break
		}
	}
	return pool
}

// BackgroundLoad is a handle over per-node foreground disk load.
type BackgroundLoad struct {
	stops []func()
}

// BackgroundStreamRate is the per-stream cap on foreground disk work
// (15 MB/s — a MapReduce task scanning local data).
const BackgroundStreamRate = 15 * MB

// StartBackgroundLoad puts `perNode` capped foreground read streams on
// every listed datanode's disk (nil means the currently-active set),
// modeling the cluster's ordinary work. Foreground streams consume disk
// bandwidth and session slots but no network, so the experiment's own
// traffic patterns stay interpretable.
func StartBackgroundLoad(tb *Testbed, perNode int, nodes []hdfs.DatanodeID) *BackgroundLoad {
	b := &BackgroundLoad{}
	active := nodes
	if active == nil {
		active = tb.Cluster.Active()
	}
	for _, id := range active {
		b.stops = append(b.stops, tb.Cluster.StartDiskLoad(id, perNode, BackgroundStreamRate))
	}
	return b
}

// Stop ends the background load.
func (b *BackgroundLoad) Stop() {
	for _, s := range b.stops {
		s()
	}
	b.stops = nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	if neg {
		return "-" + string(buf)
	}
	return string(buf)
}
