package experiments

import (
	"context"
	"fmt"
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/invariant"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/sweep"
	"erms/internal/workload"
)

// ScenarioConfig sizes the production-shaped scenario grid: every scenario
// from workload.ScenarioNames() runs once vanilla and once under ERMS, on
// the sweep engine, and the merged table is byte-identical at any -parallel
// value. The grid is the evaluation substrate the ROADMAP calls for beyond
// SWIM batch replay: tenant contention, diurnal commission/drain cycles,
// a flash crowd with judge reaction time, and pread-only traffic that only
// the block-level judge axes can see.
type ScenarioConfig struct {
	Seed     int64
	Duration time.Duration // trace length per cell (default 30 min)
	// Lambda prices replication traffic when scoring vanilla vs ERMS:
	// score = throughput_MBps − Lambda · replication_GB. Default 0.1.
	Lambda   float64
	Parallel int  // sweep workers (<= 0: one per CPU)
	FailFast bool // stop the grid on the first cell error
}

func (c *ScenarioConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Minute
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.1
	}
}

// ScenarioRow is one (scenario, system) cell's outcome.
type ScenarioRow struct {
	Scenario   string
	System     string  // "vanilla" or "ERMS"
	Jobs       int     // completed reads
	Failed     int     // failed reads
	Throughput float64 // mean per-read throughput MB/s
	ReplicaGB  float64 // replication traffic
	Fairness   float64 // Jain index over per-tenant bytes (1 when untenanted)
	// ReactS is the flash-crowd judge reaction time in seconds (first viral
	// read → replica-add completion); -1 when not applicable or no reaction.
	ReactS         float64
	Commissions    int
	F1, F2, F3, F4 int     // judge decisions acted on, by formula
	Score          float64 // Throughput − Lambda·ReplicaGB
}

// Scenarios runs the scenario × system grid on the sweep engine and returns
// one row per cell in canonical order (scenario-major, vanilla before ERMS)
// regardless of worker count, plus the per-cell sweep results for timing
// reports.
func Scenarios(ctx context.Context, cfg ScenarioConfig) ([]ScenarioRow, []sweep.Result, error) {
	cfg.applyDefaults()
	systems := []string{"vanilla", "ERMS"}
	names := workload.ScenarioNames()
	rows := make([]ScenarioRow, len(names)*len(systems))
	tasks := make([]sweep.Task, 0, len(rows))
	for si, name := range names {
		for yi, system := range systems {
			i, name, system := si*len(systems)+yi, name, system
			tasks = append(tasks, sweep.Task{
				Name: fmt.Sprintf("scenario=%s system=%s", name, system),
				Run: func(ctx context.Context) (string, error) {
					row, err := runScenarioCell(cfg, name, system)
					if err != nil {
						return "", err
					}
					rows[i] = row
					return "", nil
				},
			})
		}
	}
	results, err := sweep.Run(ctx, sweep.Options{Parallel: cfg.Parallel, FailFast: cfg.FailFast}, tasks)
	return rows, results, err
}

// runScenarioCell runs one scenario on one system — a single-threaded,
// fully self-contained simulation, the unit of parallelism.
func runScenarioCell(cfg ScenarioConfig, name, system string) (ScenarioRow, error) {
	trace, err := workload.SynthesizeScenario(name, cfg.Seed, cfg.Duration)
	if err != nil {
		return ScenarioRow{}, err
	}
	var tb *Testbed
	if system == "vanilla" {
		tb = NewVanilla(18)
	} else {
		th := core.Thresholds{ColdAge: 24 * time.Hour} // replication, not coding
		if name == "diurnal" {
			// The diurnal cell is about the commission/drain cycle: give the
			// deployment a standby pool to breathe with.
			tb = NewERMS(12, 6, th, time.Minute)
		} else {
			tb = NewERMS(18, 0, th, time.Minute)
		}
	}
	row := ScenarioRow{Scenario: name, System: system, ReactS: -1}

	iso := invariant.NewTenantIsolation()
	var rx invariant.Reaction
	var tp metrics.Mean
	workload.Preload(tb.Engine, tb.Cluster, trace)
	for _, js := range trace.Jobs {
		iso.ObserveSubmit(js)
	}
	workload.ReplayScenario(tb.Engine, tb.Cluster, trace, func(js workload.JobSpec, r *hdfs.ReadResult) {
		iso.ObserveDone(js, r)
		if r.Err != nil {
			row.Failed++
			return
		}
		row.Jobs++
		tp.Add(r.ThroughputMBps())
		if name == "flashcrowd" && js.File == workload.ViralPath {
			rx.ObserveRead(r.Start)
		}
	})
	if name == "flashcrowd" {
		// Watch the viral file's first block: the moment its live replica
		// set grows past the default factor, the judge's reaction landed.
		viral := tb.Cluster.File(workload.ViralPath)
		if viral == nil || len(viral.Blocks) == 0 {
			return ScenarioRow{}, fmt.Errorf("scenario %s: viral file missing after preload", name)
		}
		b0 := viral.Blocks[0]
		base := len(tb.Cluster.Replicas(b0))
		sim.NewTicker(tb.Engine, time.Second, func(now time.Duration) {
			if !rx.Reacted() && len(tb.Cluster.Replicas(b0)) > base {
				rx.ObserveReplicaAdd(now)
			}
		})
	}
	tb.Engine.RunUntil(trace.Horizon(time.Hour))
	if tb.Manager != nil {
		tb.Manager.Stop()
		st := tb.Manager.Stats()
		row.Commissions = st.Commissions
		for _, d := range tb.Manager.History() {
			switch d.Formula {
			case 1:
				row.F1++
			case 2:
				row.F2++
			case 3:
				row.F3++
			case 4:
				row.F4++
			}
		}
	}
	row.Throughput = tp.Value()
	row.ReplicaGB = tb.Cluster.Metrics().ReplicationMB * MB / GB
	row.Fairness = iso.Fairness()
	if name == "flashcrowd" && rx.Reacted() {
		row.ReactS = rx.Time().Seconds()
	}
	row.Score = row.Throughput - cfg.Lambda*row.ReplicaGB
	return row, nil
}

// ScenarioWinner picks the better system for one scenario by score; ties
// keep the earlier row in canonical order, so the winner is deterministic.
func ScenarioWinner(rows []ScenarioRow, scenario string) (ScenarioRow, bool) {
	var best ScenarioRow
	found := false
	for _, r := range rows {
		if r.Scenario != scenario {
			continue
		}
		if !found || r.Score > best.Score {
			best, found = r, true
		}
	}
	return best, found
}

// ScenarioTable renders the grid with a per-scenario winner footer.
func ScenarioTable(cfg ScenarioConfig, rows []ScenarioRow) *metrics.Table {
	cfg.applyDefaults()
	t := &metrics.Table{
		Title: fmt.Sprintf("Scenario suite: vanilla vs ERMS, score = throughput_MBps - %g*replication_GB",
			cfg.Lambda),
		Columns: []string{"scenario", "system", "jobs", "failed", "throughput_MBps",
			"replication_GB", "fairness", "react_s", "commissions", "f1", "f2", "f3", "f4", "score"},
	}
	react := func(s float64) string {
		if s < 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", s)
	}
	for _, r := range rows {
		t.AddRowValues(r.Scenario, r.System, r.Jobs, r.Failed, r.Throughput,
			r.ReplicaGB, r.Fairness, react(r.ReactS), r.Commissions, r.F1, r.F2, r.F3, r.F4, r.Score)
	}
	for _, name := range workload.ScenarioNames() {
		if w, ok := ScenarioWinner(rows, name); ok {
			t.AddRowValues("winner:"+name, w.System, "", "", "", "", "", react(w.ReactS),
				"", "", "", "", "", fmt.Sprintf("%.1f", w.Score))
		}
	}
	return t
}
