package experiments

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/netsim"
	"erms/internal/sim"
	"erms/internal/topology"
)

// The BenchmarkScale* suite pins the cost of the operations the 1,000-node
// sweep leans on: namespace creation (placement index), the read path at a
// large node count (per-link flow sets), under-replication queries
// (underSet), and bulk event scheduling (AtBatch). They run on a 300-node
// cluster — big enough that a linear scan would dominate, small enough for
// `make bench`.

const benchNodes = 300

func benchScaleCluster(b *testing.B, files int) (*sim.Engine, *hdfs.Cluster) {
	b.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: benchNodes / 6, NodeCount: benchNodes})
	c := hdfs.New(e, hdfs.Config{Topology: topo})
	bs := c.Config().BlockSize
	for i := 0; i < files; i++ {
		if _, err := c.CreateFile(fmt.Sprintf("/bench/f%06d", i), bs, 3, -1); err != nil {
			b.Fatal(err)
		}
	}
	return e, c
}

// BenchmarkScaleCreateFile measures per-file namespace churn on an
// already-populated large cluster: placement choice, block registration,
// index maintenance, and teardown. Each file is deleted again so the
// cluster never runs out of capacity at large b.N.
func BenchmarkScaleCreateFile(b *testing.B) {
	_, c := benchScaleCluster(b, 10000)
	bs := c.Config().BlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/new/f%09d", i)
		if _, err := c.CreateFile(path, bs, 3, -1); err != nil {
			b.Fatal(err)
		}
		if err := c.DeleteFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleRead measures the full read path (replica choice, flow
// simulation, completion) on a large populated cluster. Each op is the
// same deterministic batch of 200 reads — the rng reseeds per iteration —
// so every measurement does identical virtual work regardless of b.N.
func BenchmarkScaleRead(b *testing.B) {
	e, c := benchScaleCluster(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := sim.NewRand(1)
		for k := 0; k < 200; k++ {
			path := fmt.Sprintf("/bench/f%06d", rng.Intn(10000))
			client := topology.NodeID(rng.Intn(benchNodes))
			c.ReadFile(client, path, nil)
		}
		e.Run()
	}
}

// BenchmarkScaleUnderReplicated measures the under-replication query with
// a small deficit hiding in a large healthy namespace — the case the
// underSet index exists for.
func BenchmarkScaleUnderReplicated(b *testing.B) {
	_, c := benchScaleCluster(b, 10000)
	c.Kill(hdfs.DatanodeID(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.UnderReplicated(); len(got) == 0 {
			b.Fatal("expected a deficit after the kill")
		}
	}
}

// BenchmarkScaleEngineBatch measures bulk scheduling plus the drain: one
// AtBatch insert of 10,000 events, then running them down.
func BenchmarkScaleEngineBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		items := make([]sim.Timed, 10000)
		for k := range items {
			items[k] = sim.Timed{At: time.Duration(k) * time.Millisecond, Fn: func() {}}
		}
		e.AtBatch(items)
		e.Run()
	}
}

// BenchmarkScaleFabric measures flow admission and max-min reallocation on
// a 300-node fabric — the network side of the 1,000-node sweep.
func BenchmarkScaleFabric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{Racks: benchNodes / 6, NodeCount: benchNodes})
		fb := netsim.New(e, topo)
		for k := 0; k < 500; k++ {
			src := topology.NodeID(k % benchNodes)
			dst := topology.NodeID((k*7 + 1) % benchNodes)
			if src == dst {
				dst = topology.NodeID((int(dst) + 1) % benchNodes)
			}
			fb.StartFlow(topo.ReadPath(src, dst), 4*float64(topology.MB), 0, nil)
		}
		e.Run()
	}
}
