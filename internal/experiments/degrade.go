package experiments

import (
	"fmt"
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
)

// DegradeConfig drives the graceful-degradation study: how much foreground
// read throughput survives a correlated rack outage as the repair
// pipeline's stream cap varies, with and without the safe-mode guard.
type DegradeConfig struct {
	// Seed drives the read workload.
	Seed int64
	// Nodes is the cluster size; default 18 (3 racks of 6).
	Nodes int
	// Files is the namespace size; default 24 (3 blocks each).
	Files int
	// Caps is the repair MaxStreams grid; -1 means unlimited (the flat
	// pre-pipeline behaviour). Default [-1, 16, 8, 4].
	Caps []int
}

func (c *DegradeConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 18
	}
	if c.Files <= 0 {
		c.Files = 36
	}
	if len(c.Caps) == 0 {
		c.Caps = []int{-1, 16, 8, 4}
	}
}

// DegradeRow reports one (repair cap, safe mode) variant. Everything is
// deterministic.
type DegradeRow struct {
	Cap          int     // repair MaxStreams (-1 = unlimited)
	SafeMode     bool    // guard enabled
	ReadMBps     float64 // foreground read throughput while the rack is dead
	ReadsDone    int     // reads completed inside the outage window
	RepairedMin  float64 // first time (minutes) with no under-replicated blocks after the mass death; 0 = not within the horizon
	Deferred     int     // repairs deferred by safe mode
	Throttled    int     // repair candidates past the stream cap
	SafeModeIn   int     // safe-mode entries
	UnderReplEnd int     // blocks still under-replicated at the horizon
	Lost         int     // unrecoverable blocks at the horizon (must be 0)
}

// DegradeDemo runs the same correlated failure against a grid of repair
// configurations. The timeline is fixed: a steady client read load runs
// for 30 minutes; rack 2 is partitioned at 10m, its nodes age to dead at
// 12m (releasing ~a third of all replicas at once), the rack heals at 20m
// and its nodes restart — with empty disks — at 20m30s. The row metric is
// foreground read throughput inside the 12m–20m window, when repair
// traffic competes with clients for the fabric.
//
// Two effects should be visible: capping repair streams returns fabric
// bandwidth to clients (ReadMBps rises as Cap falls), and the safe-mode
// guard defers the repair storm entirely while the cluster is below its
// node threshold (Deferred > 0, and ReadMBps is insensitive to Cap).
func DegradeDemo(cfg DegradeConfig) []DegradeRow {
	cfg.applyDefaults()
	rows := make([]DegradeRow, 0, 2*len(cfg.Caps))
	for _, safeMode := range []bool{false, true} {
		for _, cap := range cfg.Caps {
			rows = append(rows, degradeRun(cfg, cap, safeMode))
		}
	}
	return rows
}

const (
	degradeHorizon     = 35 * time.Minute
	degradeOutageStart = 10 * time.Minute
	degradeDeadAt      = 12 * time.Minute // outage start + DeadTimeout
	degradeHeal        = 20 * time.Minute
	// The metric window brackets the repair burst right after the mass
	// death: an unthrottled pipeline fires every re-replication at once
	// here, so this is where fabric contention hits foreground reads.
	degradeWinEnd = degradeDeadAt + 2*time.Minute
)

func degradeRun(cfg DegradeConfig, cap int, safeMode bool) DegradeRow {
	e := sim.NewEngine()
	// An oversubscribed commodity fabric (3:1 rack uplinks, disk-bound
	// nodes): recovery traffic and clients genuinely fight over the same
	// links, as on the hardware the paper targets. The stock testbed fabric
	// is fast enough to absorb this cluster's whole repair storm unnoticed,
	// which would make every variant read identically.
	topo := topology.New(topology.Config{
		Racks: 3, NodeCount: cfg.Nodes,
		DiskBW:       40 * topology.MB,
		NICBW:        60 * topology.MB,
		RackUplinkBW: 120 * topology.MB,
	})
	c := hdfs.New(e, hdfs.Config{
		Topology: topo,
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:     true,
			DeadTimeout: degradeDeadAt - degradeOutageStart,
		},
		SafeMode: hdfs.SafeModeConfig{
			Enabled:       safeMode,
			NodeThreshold: 0.75, // trips when a full rack (6/18) goes dark
			Dwell:         time.Minute,
		},
	})
	bs := c.Config().BlockSize
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("/deg/f%03d", i)
		if _, err := c.CreateFile(path, 3*bs, 3, -1); err != nil {
			panic(fmt.Sprintf("degrade: create %s: %v", path, err))
		}
	}
	perNode := 2
	if cap < 0 {
		perNode = -1 // the unthrottled baseline lifts both caps
	}
	m := core.New(c, core.Config{
		JudgePeriod: 24 * time.Hour, // keep the judge quiet; this is a repair study
		Repair:      core.RepairConfig{MaxStreams: cap, MaxStreamsPerNode: perNode},
	})

	// Steady foreground load: one whole-file read per second from clients
	// in the two surviving racks, round-robin over the namespace. The
	// window metric only counts reads that finish inside the post-death
	// burst.
	var winBytes float64
	winReads := 0
	rng := sim.NewRand(cfg.Seed)
	survivors := 2 * cfg.Nodes / 3 // nodes in racks 0 and 1
	for at := time.Duration(0); at < degradeHorizon; at += time.Second {
		at := at
		client := topology.NodeID(rng.Intn(survivors))
		path := fmt.Sprintf("/deg/f%03d", rng.Intn(cfg.Files))
		e.At(at, func() {
			c.ReadFile(client, path, func(r *hdfs.ReadResult) {
				if r.Err != nil {
					return
				}
				if r.End >= degradeDeadAt && r.End < degradeWinEnd {
					winBytes += r.Bytes
					winReads++
				}
			})
		})
	}

	// Recovery-time probe: the first 15s sample after the mass death with
	// nothing left under-replicated. Probing starts half a minute past the
	// dead timeout so a not-yet-fired heartbeat tick can't read as "all
	// repaired".
	repairedAt := time.Duration(0)
	for at := degradeDeadAt + 30*time.Second; at < degradeHorizon; at += 15 * time.Second {
		at := at
		e.At(at, func() {
			if repairedAt == 0 && len(c.UnderReplicated()) == 0 {
				repairedAt = at
			}
		})
	}

	rack := 2
	e.At(degradeOutageStart, func() { c.PartitionRack(rack) })
	e.At(degradeHeal, func() { c.HealRack(rack) })
	e.At(degradeHeal+30*time.Second, func() {
		for _, d := range c.Datanodes() {
			if topo.Rack(topology.NodeID(d.ID)) == rack &&
				(d.State == hdfs.StateDown || d.Crashed()) {
				c.Restart(d.ID)
			}
		}
	})

	e.RunUntil(degradeHorizon)
	m.Stop()

	st := m.Stats()
	return DegradeRow{
		Cap:          cap,
		SafeMode:     safeMode,
		ReadMBps:     winBytes / topology.MB / (degradeWinEnd - degradeDeadAt).Seconds(),
		ReadsDone:    winReads,
		RepairedMin:  repairedAt.Minutes(),
		Deferred:     st.RepairsDeferred,
		Throttled:    st.RepairsThrottled,
		SafeModeIn:   c.Metrics().SafeModeEntries,
		UnderReplEnd: len(c.UnderReplicated()),
		Lost:         len(c.UnrecoverableBlocks()),
	}
}

// DegradeTable renders the study; byte-identical on every machine.
func DegradeTable(rows []DegradeRow) *metrics.Table {
	t := &metrics.Table{
		Title: "Degrade: foreground read MB/s during the post-outage repair burst vs repair stream cap (12m-14m window)",
		Columns: []string{"cap", "safemode", "read_MBps", "reads", "repaired_min",
			"deferred", "throttled", "sm_entries", "under_repl_end", "lost"},
	}
	for _, r := range rows {
		cap := fmt.Sprintf("%d", r.Cap)
		if r.Cap < 0 {
			cap = "unlimited"
		}
		t.AddRowValues(cap, r.SafeMode, r.ReadMBps, r.ReadsDone, r.RepairedMin,
			r.Deferred, r.Throttled, r.SafeModeIn, r.UnderReplEnd, r.Lost)
	}
	return t
}
