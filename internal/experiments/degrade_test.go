package experiments

import (
	"testing"
	"time"
)

// quickDegrade keeps CI fast: the default namespace (the repair backlog
// must be big enough to contend with clients) but a two-point cap grid.
func quickDegrade() DegradeConfig {
	return DegradeConfig{Seed: 1, Caps: []int{-1, 4}}
}

// TestDegradeDeterminism renders the study twice in-process; the byte
// streams must match (the `make degrade` gate runs this under -race).
func TestDegradeDeterminism(t *testing.T) {
	a := DegradeTable(DegradeDemo(quickDegrade())).String()
	b := DegradeTable(DegradeDemo(quickDegrade())).String()
	if a != b {
		t.Fatalf("degrade study not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestDegradeShape pins the study's headline claims: capping repair
// streams gives foreground reads strictly more throughput than the
// unthrottled baseline, safe mode defers the storm, and no variant loses
// data.
func TestDegradeShape(t *testing.T) {
	rows := DegradeDemo(quickDegrade())
	byKey := map[[2]int]DegradeRow{}
	for _, r := range rows {
		sm := 0
		if r.SafeMode {
			sm = 1
		}
		byKey[[2]int{r.Cap, sm}] = r
	}

	unthrottled, ok := byKey[[2]int{-1, 0}]
	if !ok {
		t.Fatal("missing unthrottled row")
	}
	capped, ok := byKey[[2]int{4, 0}]
	if !ok {
		t.Fatal("missing cap4 row")
	}
	if capped.ReadMBps <= unthrottled.ReadMBps {
		t.Errorf("throttled repair should leave clients more bandwidth: cap4 %.2f MB/s vs unlimited %.2f MB/s",
			capped.ReadMBps, unthrottled.ReadMBps)
	}
	if capped.Throttled == 0 {
		t.Error("cap4 run never throttled a repair candidate")
	}
	if unthrottled.Deferred != 0 || unthrottled.SafeModeIn != 0 {
		t.Errorf("guard-off run touched safe mode: deferred=%d entries=%d",
			unthrottled.Deferred, unthrottled.SafeModeIn)
	}

	for _, sm := range []int{0, 1} {
		for _, c := range quickDegrade().Caps {
			r, ok := byKey[[2]int{c, sm}]
			if !ok {
				t.Fatalf("missing row cap=%d safemode=%d", c, sm)
			}
			if r.Lost != 0 {
				t.Errorf("cap=%d safemode=%d lost %d blocks", c, sm, r.Lost)
			}
			if r.ReadsDone == 0 {
				t.Errorf("cap=%d safemode=%d completed no reads in the outage window", c, sm)
			}
			if sm == 1 {
				if r.SafeModeIn == 0 {
					t.Errorf("cap=%d guard-on run never entered safe mode", c)
				}
				if r.Deferred == 0 {
					t.Errorf("cap=%d guard-on run never deferred a repair", c)
				}
			}
		}
	}

	// The guard must have exited in time for deferred repairs to run:
	// under-replication at the horizon should be no worse than the repair
	// backlog a capped run carries.
	smRow := byKey[[2]int{4, 1}]
	if smRow.UnderReplEnd > 0 && smRow.UnderReplEnd >= 3*36 {
		t.Errorf("guard-on run never repaired anything: %d blocks still under-replicated", smRow.UnderReplEnd)
	}
	_ = time.Minute
}
