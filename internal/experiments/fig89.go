package experiments

import (
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
)

// StorageModel selects the cluster arrangement contrasted by Figures 8/9.
type StorageModel int

const (
	// AllActive keeps all 18 nodes active; the hot file's replicas share
	// nodes with the cluster's ordinary foreground work.
	AllActive StorageModel = iota
	// ActiveStandby keeps 10 active + 8 standby; extra replicas beyond the
	// default factor live on commissioned standby nodes that carry no
	// foreground work ("standby nodes might be better than active nodes
	// when the active nodes are heavily used").
	ActiveStandby
)

// String names the storage model for table headers.
func (m StorageModel) String() string {
	if m == AllActive {
		return "all-active"
	}
	return "active/standby"
}

// Fig89Config sizes the system-metric experiments (direct HDFS reads, no
// MapReduce, per the paper).
type Fig89Config struct {
	FileSize float64 // default 1 GB (the paper's file)
	// BackgroundPerNode is foreground sessions per active node; default 2.
	BackgroundPerNode int
	// MinClientRate is the per-client rate floor defining "could hold";
	// default 8 MB/s.
	MinClientRate float64
	// MaxClients bounds the search; default 150.
	MaxClients int
}

func (c *Fig89Config) applyDefaults() {
	if c.FileSize <= 0 {
		c.FileSize = 1 * GB
	}
	if c.BackgroundPerNode <= 0 {
		c.BackgroundPerNode = 2
	}
	if c.MinClientRate <= 0 {
		c.MinClientRate = 8 * MB
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 150
	}
}

// buildFig89 creates the cluster for one model with the hot file at the
// given replication and the background load running. Foreground work runs
// on the always-active nodes only (18 for AllActive, the 10 active for
// ActiveStandby) — commissioned standby nodes are dedicated to hot data.
func buildFig89(model StorageModel, repl int, cfg Fig89Config) (*Testbed, *BackgroundLoad) {
	var tb *Testbed
	var fgNodes []hdfs.DatanodeID
	switch model {
	case AllActive:
		tb = NewVanilla(18)
		fgNodes = tb.Cluster.Active()
		if _, err := tb.Cluster.CreateFile("/hot", cfg.FileSize, repl, 0); err != nil {
			panic(err)
		}
	case ActiveStandby:
		th := core.DefaultThresholds()
		tb = NewERMS(10, 8, th, time.Hour /* judge manual */)
		fgNodes = tb.Cluster.Active() // the 10 always-on nodes
		def := tb.Cluster.Config().DefaultReplication
		base := repl
		if base > def {
			base = def
		}
		if _, err := tb.Cluster.CreateFile("/hot", cfg.FileSize, base, 0); err != nil {
			panic(err)
		}
		if repl > base {
			// ERMS commissions standby nodes and places the extras there
			// (Algorithm 1).
			for _, id := range tb.Cluster.Standby() {
				tb.Cluster.Commission(id)
			}
			done := false
			tb.Cluster.SetReplication("/hot", repl, hdfs.WholeAtOnce, func(err error) {
				if err != nil {
					panic(err)
				}
				done = true
			})
			for !done {
				if !tb.Engine.Step() {
					panic("experiments: replication never completed")
				}
			}
		}
	}
	bg := StartBackgroundLoad(tb, cfg.BackgroundPerNode, fgNodes)
	return tb, bg
}

// measureConcurrent runs n concurrent whole-file readers of /hot and
// returns the minimum and mean per-client throughput (MB/s) and the mean
// execution time (s). Readers are external application servers (as in the
// paper's system-metric experiments), so replica choice is purely
// load-balanced.
func measureConcurrent(tb *Testbed, n int, fileSize float64) (minTP, meanTP, meanExec float64) {
	var exec metrics.Mean
	var tps []float64
	doneCount := 0
	for i := 0; i < n; i++ {
		tb.Cluster.ReadFileAt(hdfs.ExternalClient, "/hot", i, func(r *hdfs.ReadResult) {
			doneCount++
			if r.Err != nil {
				return
			}
			exec.Add(r.Duration().Seconds())
			tps = append(tps, r.ThroughputMBps())
		})
	}
	// Run until all the hot-file readers finish (background load keeps the
	// event queue alive indefinitely, so run in bounded slices).
	for doneCount < n {
		tb.Engine.RunFor(5 * time.Second)
	}
	minTP = 1e18
	sum := 0.0
	for _, tp := range tps {
		if tp < minTP {
			minTP = tp
		}
		sum += tp
	}
	if len(tps) == 0 {
		return 0, 0, 0
	}
	return minTP, sum / float64(len(tps)), exec.Value()
}

// Fig8Row is one point of Figure 8: the maximum concurrent access count
// the replicas could hold.
type Fig8Row struct {
	Replication int
	Model       StorageModel
	MaxClients  int
}

// Fig8 finds, for each replication factor and storage model, the largest
// client count for which every client still achieves MinClientRate.
func Fig8(cfg Fig89Config, replications []int) []Fig8Row {
	cfg.applyDefaults()
	if len(replications) == 0 {
		replications = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	var rows []Fig8Row
	for _, model := range []StorageModel{AllActive, ActiveStandby} {
		for _, r := range replications {
			rows = append(rows, Fig8Row{
				Replication: r,
				Model:       model,
				MaxClients:  maxSustainable(model, r, cfg),
			})
		}
	}
	return rows
}

// maxSustainable binary-searches the largest sustainable client count.
// Every probe builds a fresh deterministic cluster.
func maxSustainable(model StorageModel, repl int, cfg Fig89Config) int {
	sustainable := func(n int) bool {
		tb, bg := buildFig89(model, repl, cfg)
		minTP, _, _ := measureConcurrent(tb, n, cfg.FileSize)
		bg.Stop()
		if tb.Manager != nil {
			tb.Manager.Stop()
		}
		return minTP*MB >= cfg.MinClientRate*0.999
	}
	lo, hi := 0, cfg.MaxClients
	if !sustainable(1) {
		return 0
	}
	lo = 1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sustainable(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Fig8Table renders the sweep.
func Fig8Table(rows []Fig8Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 8: max concurrent accesses the replicas could hold (1 GB file)",
		Columns: []string{"replication", "model", "max_clients"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Replication, r.Model.String(), r.MaxClients)
	}
	return t
}

// Fig9Row is one point of Figure 9 (fixed 70 concurrent clients).
type Fig9Row struct {
	Replication int
	Model       StorageModel
	Throughput  float64 // mean per-client MB/s (Fig 9a)
	AvgExecSec  float64 // mean execution time (Fig 9b)
}

// Fig9 measures reading throughput and execution time at a fixed
// concurrency (the paper uses 70) across replication factors and models.
func Fig9(cfg Fig89Config, clients int, replications []int) []Fig9Row {
	cfg.applyDefaults()
	if clients <= 0 {
		clients = 70
	}
	if len(replications) == 0 {
		replications = []int{2, 3, 4, 5, 6, 7, 8}
	}
	var rows []Fig9Row
	for _, model := range []StorageModel{AllActive, ActiveStandby} {
		for _, r := range replications {
			tb, bg := buildFig89(model, r, cfg)
			_, mean, execSec := measureConcurrent(tb, clients, cfg.FileSize)
			bg.Stop()
			if tb.Manager != nil {
				tb.Manager.Stop()
			}
			rows = append(rows, Fig9Row{
				Replication: r, Model: model, Throughput: mean, AvgExecSec: execSec,
			})
		}
	}
	return rows
}

// Fig9Table renders the sweep.
func Fig9Table(rows []Fig9Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 9: throughput (a) and execution time (b) at 70 concurrent readers",
		Columns: []string{"replication", "model", "throughput_MBps", "avg_exec_s"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Replication, r.Model.String(), r.Throughput, r.AvgExecSec)
	}
	return t
}
