package experiments

import (
	"time"

	"erms/internal/chaos"
	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/workload"
)

// DurabilityConfig sizes the durability-under-chaos scenario: a full ERMS
// deployment with heartbeat failure detection and background scrubbing
// runs a heavy-tailed workload while a seeded fault storm crashes nodes,
// partitions racks, and corrupts replicas.
type DurabilityConfig struct {
	Seed int64
	// Duration is the storm + workload window; default 2h.
	Duration time.Duration
	// Files in the workload catalog; default 16.
	Files int
	// Crashes / Partitions / Corruptions size the storm; defaults 6/2/10.
	Crashes     int
	Partitions  int
	Corruptions int
	// Downtime is mean crashed-node downtime; default 12m (past the
	// 5m dead timeout, so crashes trigger real re-replication).
	Downtime time.Duration
}

func (c *DurabilityConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.Files <= 0 {
		c.Files = 16
	}
	if c.Crashes <= 0 {
		c.Crashes = 6
	}
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.Corruptions <= 0 {
		c.Corruptions = 10
	}
	if c.Downtime <= 0 {
		c.Downtime = 12 * time.Minute
	}
}

// DurabilityResult reports what the storm did and how the system held up.
type DurabilityResult struct {
	FaultsApplied int
	FaultsSkipped int
	PerKind       map[string]int

	ReadsCompleted int
	ReadsFailed    int

	Repairs        int
	RepairsRetried int
	TTRP50         float64 // seconds, damage detected → block healthy
	TTRP99         float64
	CorruptFound   int
	CorruptFixed   int

	// DataLoss counts blocks with no clean replica and no erasure path at
	// quiescence — the headline durability number (0 is a pass).
	DataLoss int
	// UnderReplicated counts blocks still short of target at quiescence.
	UnderReplicated int
}

// Durability runs the scenario. Everything is seeded: the same config
// yields the same storm, the same workload, and the same result.
func Durability(cfg DurabilityConfig) DurabilityResult {
	cfg.applyDefaults()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	var pool []hdfs.DatanodeID
	for id := 10; id < 18; id++ {
		pool = append(pool, hdfs.DatanodeID(id))
	}
	h := hdfs.New(e, hdfs.Config{
		Topology:     topo,
		StandbyNodes: pool,
		Heartbeat: hdfs.HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  5 * time.Minute,
		},
	})
	m := core.New(h, core.Config{
		Thresholds:  core.Thresholds{TauM: 6, Window: 5 * time.Minute, ColdAge: 90 * time.Minute},
		JudgePeriod: 5 * time.Minute,
		Scrub:       hdfs.ScrubConfig{Period: 20 * time.Second, BlocksPerScan: 100},
	})

	trace := workload.Synthesize(workload.Config{
		Seed:             cfg.Seed,
		Duration:         cfg.Duration,
		NumFiles:         cfg.Files,
		MeanInterarrival: 10 * time.Second,
		MaxFileSize:      512 * MB,
	})
	workload.Preload(e, h, trace)
	var res DurabilityResult
	workload.ReplayReads(e, h, trace, func(r *hdfs.ReadResult) {
		if r.Err != nil {
			res.ReadsFailed++
		} else {
			res.ReadsCompleted++
		}
	})

	// The storm hits always-active nodes only (crashing a powered-down
	// standby node is a no-op) and partitions any rack. Partitions heal in
	// ~2m — inside the 5m dead timeout, so they must cost no repair
	// traffic; crashes last ~12m, so they must trigger full repair.
	var victims []hdfs.DatanodeID
	for id := 0; id < 10; id++ {
		victims = append(victims, hdfs.DatanodeID(id))
	}
	plan := chaos.Storm(chaos.StormConfig{
		Seed:        cfg.Seed,
		Duration:    cfg.Duration,
		Nodes:       victims,
		Racks:       []int{0, 1, 2},
		Crashes:     cfg.Crashes,
		Downtime:    cfg.Downtime,
		Partitions:  cfg.Partitions,
		Corruptions: cfg.Corruptions,
	})
	rep := plan.Schedule(e, h)

	e.RunUntil(cfg.Duration)
	// Quiescence: let in-flight repairs, retries, and scrub passes drain.
	e.RunFor(45 * time.Minute)
	m.Stop()

	st := m.Stats()
	res.FaultsApplied = rep.Applied
	res.FaultsSkipped = rep.Skipped
	res.PerKind = rep.PerKind
	res.Repairs = st.Repairs
	res.RepairsRetried = st.RepairsRetried
	res.TTRP50 = st.TimeToRepairP50
	res.TTRP99 = st.TimeToRepairP99
	res.CorruptFound = st.CorruptFound
	res.CorruptFixed = st.CorruptFixed
	res.DataLoss = len(h.UnrecoverableBlocks())
	res.UnderReplicated = len(h.UnderReplicated())
	return res
}

// DurabilityTable renders the scenario result.
func DurabilityTable(r DurabilityResult) *metrics.Table {
	t := &metrics.Table{
		Title:   "Durability under chaos: heartbeat detection + scrubbing + Condor retry",
		Columns: []string{"metric", "value"},
	}
	t.AddRowValues("faults applied", r.FaultsApplied)
	t.AddRowValues("faults skipped", r.FaultsSkipped)
	t.AddRowValues("reads completed", r.ReadsCompleted)
	t.AddRowValues("reads failed", r.ReadsFailed)
	t.AddRowValues("repair jobs", r.Repairs)
	t.AddRowValues("repair attempts retried", r.RepairsRetried)
	t.AddRowValues("time-to-repair p50 (s)", r.TTRP50)
	t.AddRowValues("time-to-repair p99 (s)", r.TTRP99)
	t.AddRowValues("corrupt replicas found", r.CorruptFound)
	t.AddRowValues("corrupt replicas fixed", r.CorruptFixed)
	t.AddRowValues("blocks lost (unrecoverable)", r.DataLoss)
	t.AddRowValues("blocks under-replicated", r.UnderReplicated)
	return t
}
