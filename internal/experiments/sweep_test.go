package experiments

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"erms/internal/sweep"
)

// tinySweep is a fast grid for tests: 2 seeds × 2 τ_M × 1 ε over a short
// trace — real simulations, small enough for -race.
func tinySweep(parallel int) ThresholdSweepConfig {
	return ThresholdSweepConfig{
		Seeds:      []int64{1, 2},
		Duration:   12 * time.Minute,
		Files:      8,
		TauMs:      []float64{8, 4},
		WindowsMin: []float64{5},
		Epsilons:   []float64{0.5},
		Parallel:   parallel,
	}
}

// TestThresholdSweepWorkerInvariance is the repo's cross-core determinism
// gate (run under -race by `make sweep`): the same grid at -parallel 1 and
// -parallel 8 must render a byte-identical merged table.
func TestThresholdSweepWorkerInvariance(t *testing.T) {
	var tables []string
	for _, par := range []int{1, 8} {
		cfg := tinySweep(par)
		rows, results, err := ThresholdSweep(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if len(results) != 4 {
			t.Fatalf("parallel=%d: %d cells, want 4", par, len(results))
		}
		for _, r := range results {
			if r.Wall <= 0 || r.HeapBytes == 0 {
				t.Errorf("parallel=%d: cell %s missing measurements: %+v", par, r.Name, r)
			}
		}
		tables = append(tables, ThresholdSweepTable(cfg, rows).String())
	}
	if tables[0] != tables[1] {
		t.Errorf("threshold sweep diverges across worker counts:\n--- parallel=1:\n%s\n--- parallel=8:\n%s",
			tables[0], tables[1])
	}
}

// TestThresholdSweepShape sanity-checks the grid outcome: canonical row
// order, every cell populated by a real run, and a deterministic winner
// present in the rendered table.
func TestThresholdSweepShape(t *testing.T) {
	cfg := tinySweep(0)
	rows, _, err := ThresholdSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		seed int64
		tauM float64
	}{{1, 8}, {1, 4}, {2, 8}, {2, 4}}
	for i, r := range rows {
		if r.Seed != want[i].seed || r.TauM != want[i].tauM {
			t.Errorf("row %d = seed %d tau_M %g, want seed %d tau_M %g",
				i, r.Seed, r.TauM, want[i].seed, want[i].tauM)
		}
		if r.Throughput <= 0 || r.PeakGB <= 0 {
			t.Errorf("row %d looks unrun: %+v", i, r)
		}
		if r.MM != 1.5*r.TauM {
			t.Errorf("row %d M_M = %g, want %g", i, r.MM, 1.5*r.TauM)
		}
	}
	winner, seeds := ThresholdSweepWinner(rows)
	if seeds != 2 {
		t.Errorf("winner aggregated over %d seeds, want 2", seeds)
	}
	out := ThresholdSweepTable(cfg, rows).String()
	if !strings.Contains(out, "winner") || !strings.Contains(out, "mean over 2 seed(s)") {
		t.Errorf("table missing winner footer:\n%s", out)
	}
	// The winner's mean score really is the max over configs.
	means := map[float64]float64{}
	for _, r := range rows {
		means[r.TauM] += r.Score / 2
	}
	for tm, mean := range means {
		wMean := means[winner.TauM]
		if mean > wMean {
			t.Errorf("winner tau_M=%g (mean %.2f) beaten by tau_M=%g (mean %.2f)",
				winner.TauM, wMean, tm, mean)
		}
	}
}

// TestThresholdSweepCancellation: a canceled context stops the grid at
// cell granularity and surfaces the cause.
func TestThresholdSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, results, err := ThresholdSweep(ctx, tinySweep(2))
	if err == nil {
		t.Fatal("canceled sweep reported success")
	}
	for _, r := range results {
		if !r.Skipped {
			t.Errorf("cell %s ran after cancellation", r.Name)
		}
	}
}

// BenchmarkSweep measures the sweep engine on a small real grid, serial vs
// parallel — the speedup headline for the benchdiff baseline. On a 1-core
// runner the two converge; on N cores parallel approaches the critical
// path (slowest cell).
func BenchmarkSweep(b *testing.B) {
	cfg := ThresholdSweepConfig{
		Seeds:      []int64{1},
		Duration:   10 * time.Minute,
		Files:      8,
		TauMs:      []float64{8, 4},
		WindowsMin: []float64{2.5, 5},
	}
	run := func(b *testing.B, parallel int) {
		c := cfg
		c.Parallel = parallel
		for i := 0; i < b.N; i++ {
			if _, _, err := ThresholdSweep(context.Background(), c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, runtime.NumCPU()) })
}

// TestGridTasksFromExperiments keeps the generic Grid.Tasks path
// exercised from this package too (figures uses it for the figure
// fan-out).
func TestGridTasksFromExperiments(t *testing.T) {
	g := sweep.Grid{Seeds: []int64{1, 2}}
	results, err := sweep.Run(context.Background(), sweep.Options{Parallel: 2},
		g.Tasks(func(ctx context.Context, p sweep.Point) (string, error) {
			return g.Label(p) + "\n", nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.Merged(results); got != "seed=1\nseed=2\n" {
		t.Errorf("merged = %q", got)
	}
}
