package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"erms/internal/trace"
)

// chain reports whether sp's ancestry, walking parent links upward,
// passes through the given span names in order (nearest first).
func chain(tr *trace.Tracer, sp trace.Span, names ...string) bool {
	cur := sp
	for _, want := range names {
		found := false
		for cur.Parent != 0 {
			parent, ok := tr.Span(cur.Parent)
			if !ok {
				return false
			}
			cur = parent
			if cur.Name == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestTraceDemoEndToEnd is the tentpole acceptance test: one hot file's
// journey must appear as a single linked span tree — audit burst →
// judge verdict → Condor job → per-replica transfer — and the exported
// Chrome trace must be byte-identical across runs.
func TestTraceDemoEndToEnd(t *testing.T) {
	res := TraceDemo()
	tr := res.Tracer

	byName := map[string][]trace.Span{}
	for _, sp := range tr.Spans() {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{
		"hdfs.read", "hdfs.block_read", "net.flow",
		"judge.pass", "judge.decision", "condor.job", "condor.attempt",
		"hdfs.set_replication", "hdfs.replica_add",
		"hdfs.commission", "hdfs.standby", "cep.eval",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("no %s spans recorded", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The judge's verdict on the hot file must be recorded with the path
	// and link up to its judge pass.
	var verdict *trace.Span
	for i := range byName["judge.decision"] {
		sp := byName["judge.decision"][i]
		if sp.Attr("path") == res.HotPath && sp.Attr("action") == "increase" {
			verdict = &sp
			break
		}
	}
	if verdict == nil {
		t.Fatalf("no increase verdict for %s among %d decisions", res.HotPath, len(byName["judge.decision"]))
	}
	if !chain(tr, *verdict, "judge.pass") {
		t.Fatal("judge.decision not parented under judge.pass")
	}

	// A replica copy's network flow must link flow → replica_add →
	// set_replication → condor attempt → condor job → the verdict above →
	// judge.pass: the full control loop in one ancestry walk.
	linked := false
	for _, flow := range byName["net.flow"] {
		if chain(tr, flow, "hdfs.replica_add", "hdfs.set_replication",
			"condor.attempt", "condor.job", "judge.decision", "judge.pass") {
			linked = true
			break
		}
	}
	if !linked {
		t.Fatal("no net.flow linked through replica_add/set_replication/condor to a judge pass")
	}

	// The access burst must be visible: reads of the hot path whose block
	// transfers link under them.
	readLinked := false
	for _, rd := range byName["hdfs.read"] {
		if rd.Attr("path") != res.HotPath {
			continue
		}
		for _, flow := range byName["net.flow"] {
			if chain(tr, flow, "hdfs.block_read", "hdfs.read") {
				readLinked = true
				break
			}
		}
		break
	}
	if !readLinked {
		t.Fatal("no read flow linked under an hdfs.read span for the hot path")
	}

	// Export is valid JSON and byte-identical across a fresh run.
	var buf1 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf1); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf1.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty export")
	}
	var buf2 bytes.Buffer
	if err := TraceDemo().Tracer.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("trace export not byte-identical across runs (%d vs %d bytes)", buf1.Len(), buf2.Len())
	}
}

// TestTraceDemoMetricsSnapshot checks the registry the demo populated
// renders a Prometheus snapshot whose counters reflect the run.
func TestTraceDemoMetricsSnapshot(t *testing.T) {
	res := TraceDemo()
	var b strings.Builder
	if err := res.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE erms_decisions_total counter",
		"# TYPE hdfs_reads_completed_total gauge",
		"# TYPE condor_jobs_submitted_total gauge",
		"# TYPE net_bytes_moved_total gauge",
		"cep_events_inserted_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	if strings.Contains(out, " 0\nerms_decisions_total") {
		t.Error("decisions counter should be nonzero")
	}
	dec := res.Registry.Counter("erms_decisions_total")
	if dec.Int() == 0 {
		t.Error("no decisions recorded in registry")
	}
}
