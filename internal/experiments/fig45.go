package experiments

import (
	"time"

	"erms/internal/core"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/workload"
)

// Fig4Row is one point of the access-time CDF (Figure 4).
type Fig4Row struct {
	Hours float64
	CDF   float64
}

// Fig4 returns the cumulative distribution of access times for the
// standard trace — the workload-characterization figure.
func Fig4(seed int64, duration time.Duration) []Fig4Row {
	if duration <= 0 {
		duration = 6 * time.Hour
	}
	trace := workload.Synthesize(workload.Config{Seed: seed, Duration: duration})
	xs, ps := trace.AccessCDF()
	rows := make([]Fig4Row, len(xs))
	for i := range xs {
		rows[i] = Fig4Row{Hours: xs[i], CDF: ps[i]}
	}
	return rows
}

// Fig4Table renders the CDF (decimated to at most 40 rows for readability).
func Fig4Table(rows []Fig4Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 4: CDF of data access times",
		Columns: []string{"time_h", "cdf"},
	}
	step := 1
	if len(rows) > 40 {
		step = len(rows) / 40
	}
	for i := 0; i < len(rows); i += step {
		t.AddRowValues(rows[i].Hours, rows[i].CDF)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		t.AddRowValues(last.Hours, last.CDF)
	}
	return t
}

// Fig5Config sizes the storage-utilization-over-time experiment.
type Fig5Config struct {
	Seed     int64
	Duration time.Duration // default 4h
	Files    int           // default 24
	// SamplePeriod between storage samples; default 10 min.
	SamplePeriod time.Duration
}

func (c *Fig5Config) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 4 * time.Hour
	}
	if c.Files <= 0 {
		c.Files = 24
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 10 * time.Minute
	}
}

// Fig5Row is one sample of Figure 5.
type Fig5Row struct {
	Hours     float64
	VanillaGB float64
	ERMSGB    float64
}

// Fig5 replays the same trace on a vanilla cluster and on ERMS, sampling
// total storage. ERMS rides above vanilla while data is hot (extra
// replicas) and sinks below it once cold data is erasure-coded.
func Fig5(cfg Fig5Config) []Fig5Row {
	cfg.applyDefaults()
	wcfg := workload.Config{
		Seed:               cfg.Seed,
		Duration:           cfg.Duration / 2, // access activity in the first half; second half cools
		NumFiles:           cfg.Files,
		MeanInterarrival:   6 * time.Second,
		PopularityHalfLife: 25 * time.Minute,
		MaxFileSize:        1 * GB,
	}
	trace := workload.Synthesize(wcfg)

	sample := func(tb *Testbed, out *metrics.TimeSeries) {
		sim.NewTicker(tb.Engine, cfg.SamplePeriod, func(now time.Duration) {
			out.Add(now, tb.Cluster.TotalUsed())
		})
	}

	runOne := func(erms bool) *metrics.TimeSeries {
		var tb *Testbed
		if erms {
			th := core.Thresholds{
				TauM:    4,
				ColdAge: 45 * time.Minute,
				Window:  5 * time.Minute,
			}
			tb = NewERMS(10, 8, th, 5*time.Minute)
		} else {
			tb = NewVanilla(18)
		}
		var ts metrics.TimeSeries
		sample(tb, &ts)
		workload.Preload(tb.Engine, tb.Cluster, trace)
		workload.ReplayReads(tb.Engine, tb.Cluster, trace, nil)
		tb.Engine.RunUntil(cfg.Duration)
		if tb.Manager != nil {
			tb.Manager.Stop()
		}
		return &ts
	}
	van := runOne(false)
	er := runOne(true)
	var rows []Fig5Row
	for t := cfg.SamplePeriod; t <= cfg.Duration; t += cfg.SamplePeriod {
		rows = append(rows, Fig5Row{
			Hours:     t.Hours(),
			VanillaGB: van.At(t) / GB,
			ERMSGB:    er.At(t) / GB,
		})
	}
	return rows
}

// Fig5Table renders the samples.
func Fig5Table(rows []Fig5Row) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 5: storage space utilization over time (GB)",
		Columns: []string{"time_h", "vanilla_GB", "erms_GB"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Hours, r.VanillaGB, r.ERMSGB)
	}
	return t
}
