package experiments

import (
	"sort"
	"testing"
	"time"
)

// find returns the Fig3 row for (scheduler, system).
func find3(rows []Fig3Row, sched, sys string) Fig3Row {
	for _, r := range rows {
		if r.Scheduler == sched && r.System == sys {
			return r
		}
	}
	return Fig3Row{}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(Fig3Config{
		Seed:     1,
		Duration: 45 * time.Minute,
		Files:    16,
		TauMs:    []float64{8, 4},
	})
	if len(rows) != 6 { // 2 schedulers x (vanilla + 2 tauM)
		t.Fatalf("rows = %d", len(rows))
	}
	for _, sched := range []string{"FIFO", "Fair"} {
		van := find3(rows, sched, "vanilla")
		aggressive := find3(rows, sched, "ERMS_tauM=4")
		if van.Jobs == 0 || aggressive.Jobs == 0 {
			t.Fatalf("%s: no completed jobs (van=%d erms=%d)", sched, van.Jobs, aggressive.Jobs)
		}
		// The paper: ERMS improves reading throughput and locality for
		// both schedulers; the lowest τ_M is the most aggressive.
		if aggressive.Throughput <= van.Throughput {
			t.Errorf("%s: ERMS τM=4 throughput %.1f <= vanilla %.1f",
				sched, aggressive.Throughput, van.Throughput)
		}
		if aggressive.Locality <= van.Locality {
			t.Errorf("%s: ERMS τM=4 locality %.3f <= vanilla %.3f",
				sched, aggressive.Locality, van.Locality)
		}
	}
	if tb := Fig3Table(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4(7, 2*time.Hour)
	if len(rows) < 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Hours < rows[i-1].Hours || rows[i].CDF < rows[i-1].CDF {
			t.Fatal("CDF not monotone")
		}
	}
	if last := rows[len(rows)-1]; last.CDF != 1 {
		t.Fatalf("CDF ends at %v", last.CDF)
	}
	if tb := Fig4Table(rows); len(tb.Rows) == 0 {
		t.Fatal("table empty")
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5(Fig5Config{
		Seed:         3,
		Duration:     3 * time.Hour,
		Files:        16,
		SamplePeriod: 10 * time.Minute,
	})
	if len(rows) < 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Mid-trace (hot phase): ERMS stores more than vanilla somewhere.
	hotAbove := false
	for _, r := range rows[:len(rows)/2] {
		if r.ERMSGB > r.VanillaGB {
			hotAbove = true
			break
		}
	}
	if !hotAbove {
		t.Error("ERMS never exceeded vanilla storage during the hot phase")
	}
	// End of trace (cold phase): erasure coding pushes ERMS below vanilla.
	last := rows[len(rows)-1]
	if last.ERMSGB >= last.VanillaGB {
		t.Errorf("final storage: ERMS %.1f GB >= vanilla %.1f GB", last.ERMSGB, last.VanillaGB)
	}
	if tb := Fig5Table(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(Fig6Config{
		FileSize:     512 * MB,
		Replications: []int{1, 3, 6},
		Threads:      []int{7, 21, 35},
	})
	get := func(threads, repl int) float64 {
		for _, r := range rows {
			if r.Threads == threads && r.Replication == repl {
				return r.AvgExecSec
			}
		}
		t.Fatalf("missing row %d/%d", threads, repl)
		return 0
	}
	// More threads -> slower (at fixed replication).
	if !(get(7, 3) < get(21, 3) && get(21, 3) < get(35, 3)) {
		t.Errorf("execution time not increasing with threads: %v %v %v",
			get(7, 3), get(21, 3), get(35, 3))
	}
	// More replicas -> faster (at fixed concurrency).
	if !(get(35, 1) > get(35, 3) && get(35, 3) > get(35, 6)) {
		t.Errorf("execution time not decreasing with replication: %v %v %v",
			get(35, 1), get(35, 3), get(35, 6))
	}
	if tb := Fig6Table(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(Fig7Config{
		Sizes:    []float64{64 * MB, 512 * MB, 2 * GB},
		FromRepl: 3,
		ToRepl:   6,
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WholeSec >= r.ByOneSec {
			t.Errorf("size %s: whole %.1fs >= one-by-one %.1fs",
				sizeLabel(r.Size), r.WholeSec, r.ByOneSec)
		}
	}
	// Both strategies take longer on bigger files.
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].WholeSec < rows[j].WholeSec }) {
		t.Error("whole-at-once time not increasing with size")
	}
	if tb := Fig7Table(rows); len(tb.Rows) != 3 {
		t.Fatal("table rows")
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := Fig89Config{FileSize: 512 * MB, MaxClients: 120}
	rows := Fig8(cfg, []int{2, 4, 6})
	get := func(model StorageModel, repl int) int {
		for _, r := range rows {
			if r.Model == model && r.Replication == repl {
				return r.MaxClients
			}
		}
		t.Fatalf("missing row %v/%d", model, repl)
		return 0
	}
	// Capacity grows with replication under both models.
	for _, m := range []StorageModel{AllActive, ActiveStandby} {
		if !(get(m, 2) < get(m, 4) && get(m, 4) < get(m, 6)) {
			t.Errorf("%v: capacity not increasing: %d %d %d",
				m, get(m, 2), get(m, 4), get(m, 6))
		}
	}
	// Beyond the default factor, Active/Standby holds more concurrency
	// because its extras live on nodes without foreground work.
	if get(ActiveStandby, 6) <= get(AllActive, 6) {
		t.Errorf("active/standby (%d) should beat all-active (%d) at r=6",
			get(ActiveStandby, 6), get(AllActive, 6))
	}
	if tb := Fig8Table(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := Fig89Config{FileSize: 512 * MB}
	rows := Fig9(cfg, 40, []int{3, 6})
	get := func(model StorageModel, repl int) Fig9Row {
		for _, r := range rows {
			if r.Model == model && r.Replication == repl {
				return r
			}
		}
		t.Fatalf("missing row %v/%d", model, repl)
		return Fig9Row{}
	}
	for _, m := range []StorageModel{AllActive, ActiveStandby} {
		lo, hi := get(m, 3), get(m, 6)
		if hi.Throughput <= lo.Throughput {
			t.Errorf("%v: throughput not increasing with replication: %.1f -> %.1f",
				m, lo.Throughput, hi.Throughput)
		}
		if hi.AvgExecSec >= lo.AvgExecSec {
			t.Errorf("%v: exec time not decreasing with replication: %.1f -> %.1f",
				m, lo.AvgExecSec, hi.AvgExecSec)
		}
	}
	// The Active/Standby model wins at high replication.
	if get(ActiveStandby, 6).Throughput <= get(AllActive, 6).Throughput {
		t.Errorf("active/standby should beat all-active at r=6: %.1f vs %.1f",
			get(ActiveStandby, 6).Throughput, get(AllActive, 6).Throughput)
	}
	if tb := Fig9Table(rows); len(tb.Rows) != len(rows) {
		t.Fatal("table rows")
	}
}

func TestStorageModelString(t *testing.T) {
	if AllActive.String() != "all-active" || ActiveStandby.String() != "active/standby" {
		t.Fatal("model strings")
	}
}
