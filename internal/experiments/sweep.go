package experiments

import (
	"context"
	"fmt"
	"time"

	"erms/internal/core"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/sweep"
)

// ThresholdSweepConfig spans the Data Judge tuning grid the paper
// hand-tunes in Section IV (τ_M from the per-replica capacity measurement,
// the window, M_M and ε from experience). Run as `figures -fig sweep`, it
// turns that tuning into one command: every grid cell runs the Figure-3
// FIFO workload in its own deployment, cells execute concurrently on the
// sweep engine, and the merged table is byte-identical at any -parallel
// value.
//
// The default grid sweeps τ_M × window — the two knobs with a real
// gradient under this workload. M_M and ε are sweepable too, but under
// the default whole-file trace per-block access counts track per-file
// counts, so the block-level hot rules (Formulas 2–3) fire exactly when
// the file-level rule (Formula 1) does and those axes have no independent
// gradient here. The partial-read scenario (workload.SynthesizeScenario
// "partial", DESIGN.md §14) is what drives them independently — its
// ranged reads audit as pread, invisible to Formula (1), while the block
// events still feed (2) and (3).
type ThresholdSweepConfig struct {
	Seeds      []int64       // workload seeds (default {1})
	Duration   time.Duration // trace length per cell (default 30 min)
	Files      int           // catalog size per cell (default 12)
	TauMs      []float64     // τ_M axis (default {12, 8, 6, 4})
	WindowsMin []float64     // CEP window axis, minutes (default {2.5, 5, 10})
	Epsilons   []float64     // ε axis (default {0.5})
	MMScales   []float64     // M_M = scale·τ_M axis (default {1.5})
	// Lambda prices the management overhead when scoring: score =
	// throughput_MBps − Lambda · replication_GB. Default 0.1.
	Lambda   float64
	Parallel int  // sweep workers (<= 0: one per CPU)
	FailFast bool // stop the grid on the first cell error
}

func (c *ThresholdSweepConfig) applyDefaults() {
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1}
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Minute
	}
	if c.Files <= 0 {
		c.Files = 12
	}
	if len(c.TauMs) == 0 {
		c.TauMs = []float64{12, 8, 6, 4}
	}
	if len(c.WindowsMin) == 0 {
		c.WindowsMin = []float64{2.5, 5, 10}
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.5}
	}
	if len(c.MMScales) == 0 {
		c.MMScales = []float64{1.5}
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.1
	}
}

// Grid expands the config into the sweep grid (canonical cell order:
// seed-major, then τ_M, window, ε, M_M-scale with the last axis fastest).
func (c ThresholdSweepConfig) Grid() sweep.Grid {
	c.applyDefaults()
	return sweep.Grid{
		Seeds: c.Seeds,
		Axes: []sweep.Axis{
			{Name: "tau_M", Values: c.TauMs},
			{Name: "win_min", Values: c.WindowsMin},
			{Name: "eps", Values: c.Epsilons},
			{Name: "mm_scale", Values: c.MMScales},
		},
	}
}

// ThresholdSweepRow is one grid cell's outcome.
type ThresholdSweepRow struct {
	Seed       int64
	TauM       float64
	WindowMin  float64 // CEP window, minutes
	Epsilon    float64
	MM         float64 // resolved M_M (scale · τ_M)
	Throughput float64 // avg per-job read throughput MB/s
	PeakGB     float64 // peak storage (per-minute samples)
	ReplicaGB  float64 // replication traffic: the cost of elasticity
	Increases  int
	Score      float64 // Throughput − Lambda·ReplicaGB
}

// ThresholdSweep runs the grid on the sweep engine and returns one row per
// cell in canonical grid order (regardless of worker count or scheduling)
// plus the per-cell sweep results for timing reports. Cancelling ctx stops
// the grid at cell granularity.
func ThresholdSweep(ctx context.Context, cfg ThresholdSweepConfig) ([]ThresholdSweepRow, []sweep.Result, error) {
	cfg.applyDefaults()
	grid := cfg.Grid()
	points := grid.Points()
	// Each cell writes its own row slot: disjoint indexes, so the merged
	// rows are in canonical grid order with no post-run sorting.
	rows := make([]ThresholdSweepRow, len(points))
	tasks := make([]sweep.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = sweep.Task{
			Name: grid.Label(p),
			Run: func(ctx context.Context) (string, error) {
				rows[i] = runThresholdSweepCell(cfg, p)
				return "", nil
			},
		}
	}
	results, err := sweep.Run(ctx, sweep.Options{Parallel: cfg.Parallel, FailFast: cfg.FailFast}, tasks)
	return rows, results, err
}

// runThresholdSweepCell runs one (seed, τ_M, window, ε, M_M) deployment
// over the Fig-3 FIFO workload — a single-threaded, fully self-contained
// simulation, the unit of parallelism.
func runThresholdSweepCell(cfg ThresholdSweepConfig, p sweep.Point) ThresholdSweepRow {
	tauM, winMin, eps, mmScale := p.Values[0], p.Values[1], p.Values[2], p.Values[3]
	th := core.Thresholds{
		TauM:    tauM,
		MM:      mmScale * tauM,
		Epsilon: eps,
		Window:  time.Duration(winMin * float64(time.Minute)),
		ColdAge: 24 * time.Hour, // keep the sweep about replication, not coding
	}
	tb := NewERMS(18, 0, th, time.Minute)
	trace := synthesizeFig3Trace(Fig3Config{Seed: p.Seed, Duration: cfg.Duration, Files: cfg.Files})
	peak := 0.0
	sim.NewTicker(tb.Engine, time.Minute, func(time.Duration) {
		if u := tb.Cluster.TotalUsed(); u > peak {
			peak = u
		}
	})
	row := ThresholdSweepRow{Seed: p.Seed, TauM: tauM, WindowMin: winMin, Epsilon: eps, MM: th.MM}
	row.Throughput = runTraceFIFO(tb, trace)
	row.PeakGB = peak / GB
	row.ReplicaGB = tb.Cluster.Metrics().ReplicationMB * MB / GB
	row.Increases = tb.Manager.Stats().Increases
	row.Score = row.Throughput - cfg.Lambda*row.ReplicaGB
	return row
}

// ThresholdSweepWinner picks the threshold setting with the best mean
// score across seeds. Ties keep the earliest cell in grid order, so the
// winner is deterministic.
func ThresholdSweepWinner(rows []ThresholdSweepRow) (ThresholdSweepRow, int) {
	type key struct{ tauM, win, eps, mm float64 }
	order := []key{}
	sum := map[key]float64{}
	n := map[key]int{}
	for _, r := range rows {
		k := key{r.TauM, r.WindowMin, r.Epsilon, r.MM}
		if n[k] == 0 {
			order = append(order, k)
		}
		sum[k] += r.Score
		n[k]++
	}
	var best key
	bestMean := 0.0
	for i, k := range order {
		mean := sum[k] / float64(n[k])
		if i == 0 || mean > bestMean {
			best, bestMean = k, mean
		}
	}
	for _, r := range rows {
		if (key{r.TauM, r.WindowMin, r.Epsilon, r.MM}) == best {
			return r, n[best]
		}
	}
	return ThresholdSweepRow{}, 0
}

// ThresholdSweepTable renders the grid plus a winner footer.
func ThresholdSweepTable(cfg ThresholdSweepConfig, rows []ThresholdSweepRow) *metrics.Table {
	cfg.applyDefaults()
	t := &metrics.Table{
		Title: fmt.Sprintf("Threshold sweep: judge tuning grid, score = throughput_MBps - %g*replication_GB",
			cfg.Lambda),
		Columns: []string{"seed", "tau_M", "win_min", "eps", "M_M", "throughput_MBps", "peak_GB", "replication_GB", "increases", "score"},
	}
	for _, r := range rows {
		t.AddRowValues(int(r.Seed), r.TauM, r.WindowMin, r.Epsilon, r.MM, r.Throughput, r.PeakGB, r.ReplicaGB, r.Increases, r.Score)
	}
	if w, seeds := ThresholdSweepWinner(rows); seeds > 0 {
		t.AddRowValues("winner", w.TauM, w.WindowMin, w.Epsilon, w.MM, "", "", "", "",
			fmt.Sprintf("mean over %d seed(s)", seeds))
	}
	return t
}
