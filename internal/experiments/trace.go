package experiments

import (
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/trace"
)

// TraceDemoResult bundles the traced deployment TraceDemo drove.
type TraceDemoResult struct {
	Testbed  *Testbed
	Tracer   *trace.Tracer
	Registry *metrics.Registry
	// HotPath is the file whose journey the trace follows end to end.
	HotPath string
}

// TraceDemo builds a small traced ERMS deployment and pushes one hot
// file through the full control loop — access burst, judge verdict,
// Condor job, per-replica transfers, cool-down, standby drain — so the
// recorded span tree exercises every instrumented hop. It is the
// workload behind `figures -fig trace`, `ermsctl trace`, and the
// golden-trace regression test; everything it does is scheduled on the
// deterministic engine, so two runs produce byte-identical exports.
func TraceDemo() *TraceDemoResult {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: 12})
	pool := SpreadStandby(topo, 3)
	c := hdfs.New(e, hdfs.Config{Topology: topo, StandbyNodes: pool})
	tr := trace.New(e.Now)
	c.SetTracer(tr)
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	// τ_M = 4 with a 1-minute judge period makes the burst below cross the
	// hot threshold on the second pass; ColdAge is pushed out so the demo
	// stays about replication, not erasure coding.
	th := core.Thresholds{TauM: 4, Window: 5 * time.Minute, ColdAge: 24 * time.Hour}
	m := core.New(c, core.Config{Thresholds: th, JudgePeriod: time.Minute, Registry: reg})
	tb := &Testbed{Engine: e, Cluster: c, Manager: m}

	const hot = "/data/hot-part-00000"
	c.CreateFile(hot, 128*MB, 0, 0)
	for i := 0; i < 4; i++ {
		c.CreateFile("/data/cold-"+itoa(i), 256*MB, 0, topology.NodeID(i))
	}
	// Access burst: 36 whole-file reads over the first three minutes from
	// rotating clients. At r = 3 the per-replica rate passes τ_M after two
	// judge ticks, triggering a replication increase (and a standby
	// commission, since the nine active nodes already hold three replicas).
	for i := 0; i < 36; i++ {
		client := topology.NodeID(i % 9)
		e.Schedule(time.Duration(i)*5*time.Second, func() {
			c.ReadFile(client, hot, nil)
		})
	}
	// The burst ends at 3 min; by ~9 min the 5-minute window has drained
	// and two consecutive cooled passes reclaim the extra replicas, letting
	// shutdownDrained push the commissioned nodes back to standby.
	e.RunUntil(20 * time.Minute)
	m.Stop()
	e.Run()
	return &TraceDemoResult{Testbed: tb, Tracer: tr, Registry: reg, HotPath: hot}
}
