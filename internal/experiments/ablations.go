package experiments

import (
	"math/rand"
	"time"

	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/metrics"
	"erms/internal/sim"
)

// AblationPlacementRow compares replica-deletion behaviour of the ERMS
// placement (Algorithm 1) against the stock policy when a hot file cools
// down. The paper's claim: with extras on standby nodes, shrinking "does
// not need to re-balance" — the always-on nodes' data never moves.
type AblationPlacementRow struct {
	Policy string
	// RemovalsFromPool counts deletions that hit standby-pool nodes
	// (harmless: the node powers down anyway).
	RemovalsFromPool int
	// RemovalsFromActive counts deletions on always-on nodes (each one
	// disturbs a node that keeps serving, i.e. would trigger balancer
	// work in real HDFS).
	RemovalsFromActive int
	// BalancerMB is the traffic the HDFS balancer then moves to even the
	// always-on nodes back out. Note this is usually ~0 for both policies
	// at test scale — the interesting cost of the default policy is the 40
	// deletions hitting serving nodes, not residual imbalance — but the
	// column keeps the claim falsifiable.
	BalancerMB float64
}

// AblationPlacement grows a file from 3 to 8 replicas and shrinks it back,
// under (a) ERMS placement with a standby pool and (b) the default policy,
// counting where the shrink deletions landed.
func AblationPlacement() []AblationPlacementRow {
	run := func(erms bool) AblationPlacementRow {
		var tb *Testbed
		poolSet := map[hdfs.DatanodeID]bool{}
		if erms {
			tb = NewERMS(10, 8, core.DefaultThresholds(), time.Hour)
			for _, id := range tb.Cluster.Standby() {
				poolSet[id] = true
				tb.Cluster.Commission(id)
			}
		} else {
			tb = NewVanilla(18)
		}
		// Writer -1 spreads the base replicas so both variants start from
		// a balanced cluster; any post-shrink imbalance is the policy's.
		if _, err := tb.Cluster.CreateFile("/f", 512*MB, 3, -1); err != nil {
			panic(err)
		}
		step := func(target int) {
			done := false
			tb.Cluster.SetReplication("/f", target, hdfs.WholeAtOnce, func(err error) {
				if err != nil {
					panic(err)
				}
				done = true
			})
			for !done {
				if !tb.Engine.Step() {
					panic("replication stalled")
				}
			}
		}
		step(8)
		// Snapshot replica homes, then shrink and diff.
		f := tb.Cluster.File("/f")
		before := map[hdfs.BlockID]map[hdfs.DatanodeID]bool{}
		for _, bid := range f.Blocks {
			m := map[hdfs.DatanodeID]bool{}
			for _, r := range tb.Cluster.Replicas(bid) {
				m[r] = true
			}
			before[bid] = m
		}
		step(3)
		row := AblationPlacementRow{Policy: "default"}
		if erms {
			row.Policy = "erms-algorithm1"
		}
		for _, bid := range f.Blocks {
			after := map[hdfs.DatanodeID]bool{}
			for _, r := range tb.Cluster.Replicas(bid) {
				after[r] = true
			}
			for dn := range before[bid] {
				if !after[dn] {
					if poolSet[dn] {
						row.RemovalsFromPool++
					} else {
						row.RemovalsFromActive++
					}
				}
			}
		}
		// Quantify the rebalancing debt left behind: power drained pool
		// nodes back down (as the manager would), then run the balancer
		// over the remaining active nodes with a half-block tolerance and
		// count the bytes it has to shuffle.
		for id := range poolSet {
			if tb.Cluster.Datanode(id).NumBlocks() == 0 {
				tb.Cluster.ToStandby(id)
			}
		}
		halfBlock := 32 * MB / tb.Cluster.Datanode(0).Capacity
		var bal hdfs.BalancerReport
		tb.Cluster.Balance(halfBlock, 4, func(r hdfs.BalancerReport) { bal = r })
		horizon := tb.Engine.Now() + time.Hour
		tb.Engine.RunUntil(horizon)
		row.BalancerMB = bal.BytesMoved / MB
		if tb.Manager != nil {
			tb.Manager.Stop()
		}
		return row
	}
	return []AblationPlacementRow{run(false), run(true)}
}

// AblationPlacementTable renders the comparison.
func AblationPlacementTable(rows []AblationPlacementRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: where cool-down deletions land (grow 3->8->3, 512 MB file)",
		Columns: []string{"policy", "removed_from_pool", "removed_from_active", "balancer_MB"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Policy, r.RemovalsFromPool, r.RemovalsFromActive, r.BalancerMB)
	}
	return t
}

// AblationIdleRow measures foreground interference from management work.
type AblationIdleRow struct {
	Scheduling  string  // "idle-deferred" or "immediate"
	AvgReadSec  float64 // mean foreground read time while encodes pend
	EncodesDone int
}

// AblationIdleScheduling compares running erasure-encode jobs immediately
// versus deferring them until the cluster is idle, measuring what the
// encodes do to foreground read latency — the design reason ERMS runs
// space-reclaiming work through Condor's idle class.
func AblationIdleScheduling() []AblationIdleRow {
	run := func(immediate bool) AblationIdleRow {
		tb := NewVanilla(18)
		e := tb.Engine
		// Ten cold files to encode, one hot file being read.
		for i := 0; i < 10; i++ {
			if _, err := tb.Cluster.CreateFile("/cold"+itoa(i), 640*MB, 3, -1); err != nil {
				panic(err)
			}
		}
		if _, err := tb.Cluster.CreateFile("/hot", 256*MB, 3, -1); err != nil {
			panic(err)
		}
		sched := condorLike(tb, immediate)
		for i := 0; i < 10; i++ {
			path := "/cold" + itoa(i)
			sched.submit(func(done func(error)) {
				tb.Cluster.EncodeFile(path, 10, 4, done)
			})
		}
		// Foreground: sequential hot reads for 10 minutes.
		var reads metrics.Mean
		stop := false
		var pump func()
		pump = func() {
			if stop {
				return
			}
			start := e.Now()
			tb.Cluster.ReadFile(hdfs.ExternalClient, "/hot", func(r *hdfs.ReadResult) {
				if r.Err == nil {
					reads.Add((e.Now() - start).Seconds())
				}
				pump()
			})
		}
		for i := 0; i < 8; i++ {
			pump()
		}
		e.RunUntil(10 * time.Minute)
		stop = true
		e.RunUntil(40 * time.Minute) // idle window: deferred encodes run
		name := "idle-deferred"
		if immediate {
			name = "immediate"
		}
		return AblationIdleRow{
			Scheduling:  name,
			AvgReadSec:  reads.Value(),
			EncodesDone: sched.completed,
		}
	}
	return []AblationIdleRow{run(true), run(false)}
}

// condorLike is a minimal idle-aware job runner for the ablation (the full
// Condor scheduler is exercised elsewhere; this keeps the ablation about
// scheduling class only).
type ablationSched struct {
	tb        *Testbed
	immediate bool
	queue     []func(done func(error))
	running   bool
	completed int
}

func condorLike(tb *Testbed, immediate bool) *ablationSched {
	s := &ablationSched{tb: tb, immediate: immediate}
	sim.NewTicker(tb.Engine, 5*time.Second, func(time.Duration) { s.kick() })
	return s
}

func (s *ablationSched) submit(run func(done func(error))) {
	s.queue = append(s.queue, run)
	s.kick()
}

func (s *ablationSched) kick() {
	if s.running || len(s.queue) == 0 {
		return
	}
	if !s.immediate && s.tb.Cluster.ActiveReads() > 0 {
		return
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.running = true
	job(func(error) {
		s.running = false
		s.completed++
		s.kick()
	})
}

// AblationIdleTable renders the comparison.
func AblationIdleTable(rows []AblationIdleRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: encode scheduling class vs foreground read latency",
		Columns: []string{"scheduling", "avg_read_s", "encodes_done"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Scheduling, r.AvgReadSec, r.EncodesDone)
	}
	return t
}

// ReliabilityRow is one Monte Carlo data-loss estimate.
type ReliabilityRow struct {
	Scheme      string // "replication-1", "replication-3", "rs(10,4)"
	NodesFailed int
	LossProb    float64
}

// Reliability estimates the probability that a 640 MB file loses data when
// f random datanodes fail simultaneously, for single replication, paper
// triplication, and the cold-data RS(10,4) layout — supporting the claim
// that erasure coding "doesn't hurt data reliability" while cutting
// storage threefold.
func Reliability(trials int, failures []int, seed int64) []ReliabilityRow {
	if trials <= 0 {
		trials = 2000
	}
	if len(failures) == 0 {
		failures = []int{1, 2, 3, 4, 5}
	}
	type scheme struct {
		name  string
		build func() (*Testbed, *hdfs.INode)
	}
	schemes := []scheme{
		{"replication-1", func() (*Testbed, *hdfs.INode) {
			tb := NewVanilla(18)
			f, err := tb.Cluster.CreateFile("/f", 640*MB, 1, -1)
			if err != nil {
				panic(err)
			}
			return tb, f
		}},
		{"replication-3", func() (*Testbed, *hdfs.INode) {
			tb := NewVanilla(18)
			f, err := tb.Cluster.CreateFile("/f", 640*MB, 3, -1)
			if err != nil {
				panic(err)
			}
			return tb, f
		}},
		{"rs(10,4)", func() (*Testbed, *hdfs.INode) {
			tb := NewVanilla(18)
			tb.Cluster.SetPlacementPolicy(core.NewPlacement(nil))
			f, err := tb.Cluster.CreateFile("/f", 640*MB, 3, -1)
			if err != nil {
				panic(err)
			}
			done := false
			tb.Cluster.EncodeFile("/f", 10, 4, func(err error) {
				if err != nil {
					panic(err)
				}
				done = true
			})
			for !done {
				if !tb.Engine.Step() {
					panic("encode stalled")
				}
			}
			return tb, f
		}},
	}
	var rows []ReliabilityRow
	for _, sc := range schemes {
		tb, f := sc.build()
		// Collect each block's replica homes and the file's stripe layout.
		holders := map[hdfs.BlockID][]hdfs.DatanodeID{}
		for _, ids := range [][]hdfs.BlockID{f.Blocks, f.Parity} {
			for _, bid := range ids {
				holders[bid] = append([]hdfs.DatanodeID(nil), tb.Cluster.Replicas(bid)...)
			}
		}
		n := tb.Cluster.NumDatanodes()
		for _, fail := range failures {
			rng := rand.New(rand.NewSource(seed + int64(fail)))
			lost := 0
			for trial := 0; trial < trials; trial++ {
				dead := map[hdfs.DatanodeID]bool{}
				for _, idx := range rng.Perm(n)[:fail] {
					dead[hdfs.DatanodeID(idx)] = true
				}
				if fileLost(tb.Cluster, f, holders, dead) {
					lost++
				}
			}
			rows = append(rows, ReliabilityRow{
				Scheme:      sc.name,
				NodesFailed: fail,
				LossProb:    float64(lost) / float64(trials),
			})
		}
	}
	return rows
}

// fileLost reports whether the file is unrecoverable with the dead set:
// a plain file loses data when any block has no surviving replica; an
// encoded file loses data when a stripe has fewer than k surviving members.
func fileLost(c *hdfs.Cluster, f *hdfs.INode, holders map[hdfs.BlockID][]hdfs.DatanodeID, dead map[hdfs.DatanodeID]bool) bool {
	alive := func(bid hdfs.BlockID) bool {
		for _, dn := range holders[bid] {
			if !dead[dn] {
				return true
			}
		}
		return false
	}
	if !f.Encoded {
		for _, bid := range f.Blocks {
			if !alive(bid) {
				return true
			}
		}
		return false
	}
	k := f.EncodeK
	stripes := (len(f.Blocks) + k - 1) / k
	for s := 0; s < stripes; s++ {
		lo, hi := s*k, (s+1)*k
		if hi > len(f.Blocks) {
			hi = len(f.Blocks)
		}
		surviving := 0
		for _, bid := range f.Blocks[lo:hi] {
			if alive(bid) {
				surviving++
			}
		}
		for _, pid := range f.Parity {
			if c.Block(pid).Group == s && alive(pid) {
				surviving++
			}
		}
		need := hi - lo
		if surviving < need {
			return true
		}
	}
	return false
}

// ReliabilityTable renders the Monte Carlo estimates.
func ReliabilityTable(rows []ReliabilityRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Reliability: P(data loss) under simultaneous node failures (640 MB file)",
		Columns: []string{"scheme", "nodes_failed", "loss_prob"},
	}
	for _, r := range rows {
		t.AddRowValues(r.Scheme, r.NodesFailed, r.LossProb)
	}
	return t
}

// AblationThresholdRow sweeps τ_M: the performance/storage trade-off the
// paper notes ("We can get high performance with a high overhead cost if
// these thresholds are low").
type AblationThresholdRow struct {
	TauM        float64
	Throughput  float64 // avg per-job read throughput MB/s
	PeakStorage float64 // GB (sampled per minute; short spikes may fall between samples)
	ReplicaMB   float64 // replication traffic: the management cost of elasticity
	Increases   int
}

// AblationThresholds reruns the Fig-3 FIFO workload at several τ_M values.
func AblationThresholds(seed int64, duration time.Duration, tauMs []float64) []AblationThresholdRow {
	if duration <= 0 {
		duration = 45 * time.Minute
	}
	if len(tauMs) == 0 {
		tauMs = []float64{12, 8, 6, 4, 2}
	}
	var rows []AblationThresholdRow
	for _, tm := range tauMs {
		row := runThresholdVariant(seed, duration, tm)
		rows = append(rows, row)
	}
	return rows
}

func runThresholdVariant(seed int64, duration time.Duration, tauM float64) AblationThresholdRow {
	fig3 := Fig3Config{Seed: seed, Duration: duration, Files: 16, TauMs: []float64{tauM}}
	fig3.applyDefaults()
	// Reuse the fig3 machinery for one variant, adding storage tracking.
	th := core.Thresholds{
		TauM:    tauM,
		Window:  5 * time.Minute,
		ColdAge: 24 * time.Hour,
	}
	tb := NewERMS(18, 0, th, time.Minute)
	trace := synthesizeFig3Trace(fig3)
	peak := 0.0
	sim.NewTicker(tb.Engine, time.Minute, func(time.Duration) {
		if u := tb.Cluster.TotalUsed(); u > peak {
			peak = u
		}
	})
	row := AblationThresholdRow{TauM: tauM}
	tp := runTraceFIFO(tb, trace)
	row.Throughput = tp
	row.PeakStorage = peak / GB
	row.ReplicaMB = tb.Cluster.Metrics().ReplicationMB
	row.Increases = tb.Manager.Stats().Increases
	return row
}

// AblationThresholdsTable renders the sweep.
func AblationThresholdsTable(rows []AblationThresholdRow) *metrics.Table {
	t := &metrics.Table{
		Title:   "Ablation: tau_M sweep — performance vs management overhead",
		Columns: []string{"tau_M", "throughput_MBps", "peak_storage_GB", "replication_MB", "increase_jobs"},
	}
	for _, r := range rows {
		t.AddRowValues(r.TauM, r.Throughput, r.PeakStorage, r.ReplicaMB, r.Increases)
	}
	return t
}
