package cep

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

type testClock struct{ now time.Duration }

func (c *testClock) clock() time.Duration { return c.now }

func access(t time.Duration, path string, dn string) Event {
	return Event{
		Time: t,
		Type: "Access",
		Fields: map[string]any{
			"path": path, "cmd": "open", "datanode": dn, "bytes": 64.0,
		},
	}
}

func TestSelectRowPerEvent(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path from Access")
	e.Insert(access(1*time.Second, "/a", "dn1"))
	e.Insert(access(2*time.Second, "/b", "dn2"))
	rows := st.MustRows()
	if len(rows) != 2 || rows[0].Str("path") != "/a" || rows[1].Str("path") != "/b" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWhereFilters(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path from Access where cmd = 'open' and path != '/skip'")
	e.Insert(access(time.Second, "/keep", "dn1"))
	e.Insert(access(time.Second, "/skip", "dn1"))
	ev := access(time.Second, "/write", "dn1")
	ev.Fields["cmd"] = "create"
	e.Insert(ev)
	rows := st.MustRows()
	if len(rows) != 1 || rows[0].Str("path") != "/keep" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGroupByCountHaving(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile(
		"select path, count(*) as cnt from Access group by path having cnt >= 2")
	for i := 0; i < 3; i++ {
		e.Insert(access(time.Duration(i)*time.Second, "/hot", "dn1"))
	}
	e.Insert(access(time.Second, "/cold", "dn2"))
	rows := st.MustRows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Str("path") != "/hot" || rows[0].Num("cnt") != 3 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestTimeWindowExpiry(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select count(*) as cnt from Access.win:time(10s)")
	e.Insert(access(1*time.Second, "/a", "dn1"))
	e.Insert(access(5*time.Second, "/a", "dn1"))
	c.now = 8 * time.Second
	if got := st.MustRows()[0].Num("cnt"); got != 2 {
		t.Fatalf("cnt at 8s = %v, want 2", got)
	}
	c.now = 12 * time.Second // event at 1s has aged out (1 <= 12-10? 1 <= 2 yes)
	if got := st.MustRows()[0].Num("cnt"); got != 1 {
		t.Fatalf("cnt at 12s = %v, want 1", got)
	}
	c.now = 30 * time.Second
	rows := st.MustRows()
	if rows != nil {
		t.Fatalf("expected no rows for empty ungrouped aggregate, got %v", rows)
	}
	if st.WindowSize() != 0 {
		t.Fatalf("window size = %d, want 0", st.WindowSize())
	}
}

func TestLengthWindow(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select count(*) as cnt from Access.win:length(3)")
	for i := 0; i < 5; i++ {
		e.Insert(access(time.Duration(i)*time.Second, "/a", "dn1"))
	}
	if got := st.MustRows()[0].Num("cnt"); got != 3 {
		t.Fatalf("cnt = %v, want 3 (length window)", got)
	}
}

func TestAggregates(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile(
		"select sum(bytes) as s, avg(bytes) as a, min(bytes) as lo, max(bytes) as hi, " +
			"count(bytes) as n, first(path) as f, last(path) as l from Access")
	for i, p := range []string{"/x", "/y", "/z"} {
		ev := access(time.Duration(i)*time.Second, p, "dn1")
		ev.Fields["bytes"] = float64((i + 1) * 10)
		e.Insert(ev)
	}
	row := st.MustRows()[0]
	if row.Num("s") != 60 || row.Num("a") != 20 || row.Num("lo") != 10 || row.Num("hi") != 30 {
		t.Fatalf("row = %v", row)
	}
	if row.Num("n") != 3 || row.Str("f") != "/x" || row.Str("l") != "/z" {
		t.Fatalf("row = %v", row)
	}
}

func TestBuiltinTimeField(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path, max(__time) as lastAccess from Access group by path")
	e.Insert(access(10*time.Second, "/a", "dn1"))
	e.Insert(access(25*time.Second, "/a", "dn1"))
	row := st.MustRows()[0]
	if row.Num("lastAccess") != 25 {
		t.Fatalf("lastAccess = %v, want 25", row.Num("lastAccess"))
	}
}

func TestArithmeticInSelectAndHaving(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	// Per-replica access intensity: count/replicas > 2.
	st := e.MustCompile(
		"select path, count(*) / replicas as perReplica from Access group by path having count(*) / replicas > 2")
	for i := 0; i < 9; i++ {
		ev := access(time.Duration(i)*time.Second, "/hot", "dn1")
		ev.Fields["replicas"] = 3.0
		e.Insert(ev)
	}
	for i := 0; i < 5; i++ {
		ev := access(time.Duration(i)*time.Second, "/warm", "dn1")
		ev.Fields["replicas"] = 3.0
		e.Insert(ev)
	}
	rows := st.MustRows()
	if len(rows) != 1 || rows[0].Str("path") != "/hot" || rows[0].Num("perReplica") != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMultipleStatementsSameStream(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	a := e.MustCompile("select count(*) as cnt from Access")
	b := e.MustCompile("select count(*) as cnt from Access where path = '/a'")
	other := e.MustCompile("select count(*) as cnt from Heartbeat")
	e.Insert(access(0, "/a", "dn1"))
	e.Insert(access(0, "/b", "dn1"))
	if a.MustRows()[0].Num("cnt") != 2 {
		t.Fatal("statement a")
	}
	if b.MustRows()[0].Num("cnt") != 1 {
		t.Fatal("statement b")
	}
	if rows := other.MustRows(); rows != nil {
		t.Fatalf("statement on other stream got events: %v", rows)
	}
	if e.Inserted() != 2 {
		t.Fatalf("Inserted = %d", e.Inserted())
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path, datanode, count(*) as cnt from Access group by path, datanode")
	e.Insert(access(0, "/a", "dn1"))
	e.Insert(access(0, "/a", "dn2"))
	e.Insert(access(0, "/a", "dn1"))
	rows := st.MustRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Str("datanode") != "dn1" || rows[0].Num("cnt") != 2 {
		t.Fatalf("first group = %v (insertion order expected)", rows[0])
	}
}

func TestParseErrors(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	for _, epl := range []string{
		"",
		"select",
		"select x",
		"select x from",
		"select x from S.win:bogus(3)",
		"select x from S.win:time(abc)",
		"select x from S.win:length(0)",
		"select x from S where count(*) > 1",     // aggregate in where
		"select x from S group by count(*)",      // aggregate in group by
		"select count(sum(x)) from S",            // nested aggregate
		"select x from S trailing",               // trailing tokens
		"select 'unterminated from S",            // bad string
		"select x from S where x ~ 3",            // bad char
		"select x from S.win:time(60s) group by", // missing group expr
		"select x as from S",                     // missing alias ident
	} {
		if _, err := e.Compile(epl); err == nil {
			t.Fatalf("Compile(%q) succeeded", epl)
		}
	}
}

func TestParseDurationsAndUnits(t *testing.T) {
	for epl, want := range map[string]time.Duration{
		"select x from S.win:time(500 ms)": 500 * time.Millisecond,
		"select x from S.win:time(60s)":    time.Minute,
		"select x from S.win:time(5 min)":  5 * time.Minute,
		"select x from S.win:time(2 h)":    2 * time.Hour,
		"select x from S.win:time(90)":     90 * time.Second,
		"select x from S.win:time(1.5 s)":  1500 * time.Millisecond,
	} {
		q, err := ParseQuery(epl)
		if err != nil {
			t.Fatalf("%q: %v", epl, err)
		}
		if q.Window.Kind != WindowTime || q.Window.Dur != want {
			t.Fatalf("%q: window = %+v, want %v", epl, q.Window, want)
		}
	}
}

func TestKeepAllWindowExplicit(t *testing.T) {
	q, err := ParseQuery("select x from S.win:keepall")
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Kind != WindowKeepAll {
		t.Fatalf("window = %+v", q.Window)
	}
	if q.Source() == "" {
		t.Fatal("source lost")
	}
}

func TestEvalErrors(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	// Division by zero surfaces as an error from Rows.
	st := e.MustCompile("select bytes / zero as x from Access")
	ev := access(0, "/a", "dn1")
	ev.Fields["zero"] = 0.0
	e.Insert(ev)
	if _, err := st.Rows(); err == nil {
		t.Fatal("division by zero not reported")
	}
	// Arithmetic on strings.
	st2 := e.MustCompile("select path + 1 as x from Access")
	e.Insert(access(0, "/a", "dn1"))
	if _, err := st2.Rows(); err == nil {
		t.Fatal("string arithmetic not reported")
	}
	// Missing field is null, not an error, and count skips it.
	st3 := e.MustCompile("select count(nosuch) as n from Access")
	e.Insert(access(0, "/a", "dn1"))
	if st3.MustRows()[0].Num("n") != 0 {
		t.Fatal("count over missing field should be 0")
	}
}

func TestBooleanOperators(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile(
		"select path from Access where (cmd = 'open' or cmd = 'create') and not (path = '/no')")
	e.Insert(access(0, "/yes", "dn1"))
	e.Insert(access(0, "/no", "dn1"))
	rows := st.MustRows()
	if len(rows) != 1 || rows[0].Str("path") != "/yes" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestComparisonOperators(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path from Access where bytes >= 64 and bytes <= 64 and bytes < 65 and bytes > 63 and path >= '/a'")
	e.Insert(access(0, "/a", "dn1"))
	if len(st.MustRows()) != 1 {
		t.Fatal("comparison chain failed")
	}
}

func TestUnaryMinus(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select -bytes as neg from Access")
	e.Insert(access(0, "/a", "dn1"))
	if st.MustRows()[0].Num("neg") != -64 {
		t.Fatal("unary minus")
	}
}

// Property: a grouped count over a keepall window equals the number of
// inserted events per group key.
func TestQuickGroupedCount(t *testing.T) {
	f := func(keys []uint8) bool {
		c := &testClock{}
		e := New(c.clock)
		st := e.MustCompile("select k, count(*) as cnt from S group by k")
		want := map[string]int{}
		for _, k := range keys {
			key := string(rune('a' + int(k%5)))
			want[key]++
			e.Insert(Event{Type: "S", Fields: map[string]any{"k": key}})
		}
		rows, err := st.Rows()
		if err != nil {
			return false
		}
		if len(rows) != len(want) {
			return false
		}
		for _, r := range rows {
			if int(r.Num("cnt")) != want[r.Str("k")] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: time window retention matches a direct filter over insert times.
func TestQuickTimeWindow(t *testing.T) {
	f := func(offsets []uint16, windowSec uint8, nowSec uint16) bool {
		c := &testClock{}
		e := New(c.clock)
		w := time.Duration(int(windowSec)+1) * time.Second
		st, err := e.Compile(fmt.Sprintf(
			"select count(*) as cnt from S.win:time(%d s)", int(windowSec)+1))
		if err != nil {
			return false
		}
		var times []time.Duration
		last := time.Duration(0)
		for _, o := range offsets {
			last += time.Duration(o%1000) * time.Millisecond
			times = append(times, last)
			e.Insert(Event{Time: last, Type: "S", Fields: map[string]any{}})
		}
		c.now = last + time.Duration(nowSec)*time.Millisecond
		wantCount := 0
		for _, tm := range times {
			if tm >= c.now-w { // trailing edge is inclusive
				wantCount++
			}
		}
		rows, err := st.Rows()
		if err != nil {
			return false
		}
		got := 0
		if len(rows) == 1 {
			got = int(rows[0].Num("cnt"))
		}
		return got == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatementClose(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	a := e.MustCompile("select count(*) as cnt from S")
	b := e.MustCompile("select count(*) as cnt from S")
	e.Insert(Event{Type: "S", Fields: map[string]any{}})
	a.Close()
	e.Insert(Event{Type: "S", Fields: map[string]any{}})
	if !a.Closed() || a.WindowSize() != 0 {
		t.Fatal("closed statement retained state")
	}
	if got := b.MustRows()[0].Num("cnt"); got != 2 {
		t.Fatalf("sibling statement cnt = %v, want 2", got)
	}
	a.Close() // idempotent
	if rows := a.MustRows(); rows != nil {
		t.Fatalf("closed statement produced rows: %v", rows)
	}
}

func TestRowHelpersAndCoercions(t *testing.T) {
	r := Row{"s": "text", "n": 4.0, "i": 7, "i64": int64(8), "b": true, "x": struct{}{}}
	if r.Num("n") != 4 || r.Num("i") != 7 || r.Num("i64") != 8 || r.Num("b") != 1 {
		t.Fatal("numeric coercions")
	}
	if r.Num("missing") != 0 || r.Num("s") != 0 || r.Num("x") != 0 {
		t.Fatal("non-numeric should be 0")
	}
	if r.Str("s") != "text" || r.Str("missing") != "" {
		t.Fatal("string access")
	}
	if r.Str("n") == "" { // non-strings render via Sprint
		t.Fatal("fallback rendering")
	}
}

func TestEqualityAcrossTypes(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	// Numeric equality coerces bools and ints; string/number mismatch is
	// inequality, not an error.
	st := e.MustCompile("select path from Access where flag = 1 and path != 5")
	ev := access(0, "/a", "dn1")
	ev.Fields["flag"] = true
	e.Insert(ev)
	rows := st.MustRows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestStatementQueryAccessor(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path from Access.win:length(5)")
	q := st.Query()
	if q.From != "Access" || q.Window.Kind != WindowLength || q.Window.N != 5 {
		t.Fatalf("query = %+v", q)
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil)
}

func TestMustCompilePanicsOnBadEPL(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.MustCompile("not epl")
}

func TestOrderedStringComparisonErrors(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	// The where clause runs at insert time, so a type error surfaces from
	// Insert itself.
	e.MustCompile("select path from Access where path > 3")
	if err := e.Insert(access(0, "/a", "dn1")); err == nil {
		t.Fatal("string/number comparison accepted")
	}
	// 'not' on a non-boolean is an error too.
	e2 := New(c.clock)
	e2.MustCompile("select path from Access where not path")
	if err := e2.Insert(access(0, "/b", "dn1")); err == nil {
		t.Fatal("not on string accepted")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile(
		"select path, count(*) as cnt from Access group by path order by cnt desc, path limit 2")
	for path, n := range map[string]int{"/c": 3, "/a": 5, "/b": 3, "/d": 1} {
		for i := 0; i < n; i++ {
			e.Insert(access(0, path, "dn1"))
		}
	}
	rows := st.MustRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Str("path") != "/a" || rows[0].Num("cnt") != 5 {
		t.Fatalf("top row = %v", rows[0])
	}
	// Tie between /b and /c broken by the ascending path key.
	if rows[1].Str("path") != "/b" {
		t.Fatalf("second row = %v", rows[1])
	}
}

func TestOrderByRowPerEvent(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path, bytes from Access order by bytes desc")
	for i, p := range []string{"/a", "/b", "/c"} {
		ev := access(0, p, "dn1")
		ev.Fields["bytes"] = float64((i + 1) * 10)
		e.Insert(ev)
	}
	rows := st.MustRows()
	if rows[0].Str("path") != "/c" || rows[2].Str("path") != "/a" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByParseErrors(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	for _, epl := range []string{
		"select x from S order x",
		"select x from S order by",
		"select x from S limit 0",
		"select x from S limit x",
		"select x from S limit 2.5",
	} {
		if _, err := e.Compile(epl); err == nil {
			t.Fatalf("Compile(%q) succeeded", epl)
		}
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path from Access limit 1")
	e.Insert(access(0, "/a", "dn1"))
	e.Insert(access(0, "/b", "dn1"))
	if rows := st.MustRows(); len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}
