package cep

import (
	"fmt"
	"strconv"
)

// valKind discriminates the compact Val representation.
type valKind uint8

const (
	kindNull valKind = iota
	kindNum
	kindStr
	kindBool
	// kindOpaque covers map-event field values outside the engine's scalar
	// set (float64/string/bool/int/int64). They degrade to their printed
	// form: usable as group keys and equality operands, an error inside
	// numeric aggregates — the same places the generic evaluator rejects
	// them.
	kindOpaque
)

// Val is a compact typed field value: a float64, string, bool, or null,
// without the per-value heap boxing of `any`. The incremental pipeline and
// EachRow use it end to end so the hot path never allocates.
type Val struct {
	k   valKind
	num float64
	str string
}

// NumVal wraps a float64.
func NumVal(f float64) Val { return Val{k: kindNum, num: f} }

// StrVal wraps a string.
func StrVal(s string) Val { return Val{k: kindStr, str: s} }

// BoolVal wraps a bool.
func BoolVal(b bool) Val {
	v := Val{k: kindBool}
	if b {
		v.num = 1
	}
	return v
}

// NullVal is the missing-field value (also the zero Val).
func NullVal() Val { return Val{} }

// IsNull reports whether the value is null (field absent).
func (v Val) IsNull() bool { return v.k == kindNull }

// Num returns the value as a float64 with the engine's usual coercions
// (bool becomes 0/1); non-numeric values yield 0, mirroring Row.Num.
func (v Val) Num() float64 {
	switch v.k {
	case kindNum, kindBool:
		return v.num
	}
	return 0
}

// Str returns the value as a string, rendering non-strings via their
// printed form, mirroring Row.Str ("" for null).
func (v Val) Str() string {
	switch v.k {
	case kindStr, kindOpaque:
		return v.str
	case kindNum:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case kindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// Bool returns the value as a bool (false unless a true bool).
func (v Val) Bool() bool { return v.k == kindBool && v.num != 0 }

// numeric reports the float64 form and whether the value coerces to a
// number, mirroring toFloat (numbers and bools do; strings do not).
func (v Val) numeric() (float64, bool) {
	switch v.k {
	case kindNum, kindBool:
		return v.num, true
	}
	return 0, false
}

// box converts to the `any` representation the generic evaluator and Row
// maps use. Only called on cold paths (row projection, error formatting).
func (v Val) box() any {
	switch v.k {
	case kindNum:
		return v.num
	case kindStr, kindOpaque:
		return v.str
	case kindBool:
		return v.num != 0
	}
	return nil
}

// valOf converts a boxed field value to a Val. Scalar kinds map losslessly;
// anything else degrades to its printed form (kindOpaque).
func valOf(x any) Val {
	switch t := x.(type) {
	case nil:
		return Val{}
	case float64:
		return NumVal(t)
	case string:
		return StrVal(t)
	case bool:
		return BoolVal(t)
	case int:
		return NumVal(float64(t))
	case int64:
		return NumVal(float64(t))
	}
	return Val{k: kindOpaque, str: fmt.Sprint(x)}
}

// valLooseEqual mirrors looseEqual over Vals: numeric coercion first, then
// string equality, then strict kind+value identity.
func valLooseEqual(a, b Val) bool {
	if af, ok := a.numeric(); ok {
		if bf, ok2 := b.numeric(); ok2 {
			return af == bf
		}
		return false
	}
	if a.k == kindStr && b.k == kindStr {
		return a.str == b.str
	}
	return a == b
}

// valCompare mirrors compare over Vals for the ordering operators.
func valCompare(op string, a, b Val) (bool, error) {
	var cmp float64
	if af, ok := a.numeric(); ok {
		bf, ok2 := b.numeric()
		if !ok2 {
			return false, fmt.Errorf("cep: comparing number with %T", b.box())
		}
		cmp = af - bf
	} else if a.k == kindStr {
		if b.k != kindStr {
			return false, fmt.Errorf("cep: comparing string with %T", b.box())
		}
		switch {
		case a.str < b.str:
			cmp = -1
		case a.str > b.str:
			cmp = 1
		}
	} else {
		return false, fmt.Errorf("cep: unorderable type %T", a.box())
	}
	switch op {
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("cep: unknown comparison %q", op)
}
