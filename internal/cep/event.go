// Package cep is a complex event processing engine in the style the ERMS
// paper uses (Esper): typed event streams, sliding time and length windows,
// group-by aggregation, and an SQL-like continuous query language, e.g.
//
//	select path, count(*) as cnt
//	from Access.win:time(60s)
//	where cmd = 'open'
//	group by path
//	having cnt > 10
//
// Statements are compiled once and evaluated against their window on
// demand; the ERMS Data Judge polls them every judging period. The engine
// reads virtual time from a clock function so it runs inside the
// discrete-event simulation, but nothing in the package depends on the
// simulator.
package cep

import (
	"fmt"
	"time"
)

// Event is one occurrence in a stream: a type name, a timestamp, and a flat
// set of fields. Field values are float64, string, or bool. The engine
// injects the builtin field "__time" (seconds since simulation start) so
// queries can aggregate over timestamps, e.g. max(__time) for the last
// access time.
type Event struct {
	Time   time.Duration
	Type   string
	Fields map[string]any
}

// Field returns the named field, with the builtin __time synthesized.
func (e *Event) Field(name string) (any, bool) {
	if name == "__time" {
		return e.Time.Seconds(), true
	}
	v, ok := e.Fields[name]
	return v, ok
}

// Row is one output row of a statement evaluation, keyed by the select
// list's aliases (or expression text when no alias is given).
type Row map[string]any

// Num extracts a numeric column from a row; it returns 0 for missing or
// non-numeric values, which keeps judge code terse.
func (r Row) Num(col string) float64 {
	v, ok := r[col]
	if !ok {
		return 0
	}
	f, ok := toFloat(v)
	if !ok {
		return 0
	}
	return f
}

// Str extracts a string column from a row ("" when missing).
func (r Row) Str(col string) string {
	v, ok := r[col]
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Sprint(v)
	}
	return s
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
