// Package cep is a complex event processing engine in the style the ERMS
// paper uses (Esper): typed event streams, sliding time and length windows,
// group-by aggregation, and an SQL-like continuous query language, e.g.
//
//	select path, count(*) as cnt
//	from Access.win:time(60s)
//	where cmd = 'open'
//	group by path
//	having cnt > 10
//
// Statements are compiled once and evaluated against their window on
// demand; the ERMS Data Judge polls them every judging period. The engine
// reads virtual time from a clock function so it runs inside the
// discrete-event simulation, but nothing in the package depends on the
// simulator.
//
// Events come in two representations. The map form (Fields) is the
// flexible constructor for tests and ad-hoc tooling. High-rate producers
// declare a Schema once and emit fixed-slot events through it, which
// avoids the per-event map and boxing allocations entirely; see Schema.
package cep

import (
	"fmt"
	"time"
)

// MaxSchemaFields caps the fixed-slot representation; schemas needing more
// fields should use the map form.
const MaxSchemaFields = 8

// Schema declares an event type's field layout once, so producers can emit
// events into interned fixed slots instead of building a map per event.
// Field order is the slot order used by SetNum/SetStr/SetBool.
type Schema struct {
	typ   string
	names []string
	idx   map[string]int
}

// NewSchema interns a field layout for an event type. It panics on more
// than MaxSchemaFields fields or duplicate names — schemas are static
// declarations, so these are programming errors.
func NewSchema(eventType string, fields ...string) *Schema {
	if len(fields) > MaxSchemaFields {
		panic(fmt.Sprintf("cep: schema %s has %d fields, max %d", eventType, len(fields), MaxSchemaFields))
	}
	s := &Schema{typ: eventType, names: fields, idx: make(map[string]int, len(fields))}
	for i, f := range fields {
		if _, dup := s.idx[f]; dup {
			panic(fmt.Sprintf("cep: schema %s duplicates field %q", eventType, f))
		}
		s.idx[f] = i
	}
	return s
}

// Type returns the event type the schema describes.
func (s *Schema) Type() string { return s.typ }

// Index returns the slot index of a field, or -1 if the schema lacks it.
func (s *Schema) Index(name string) int {
	if i, ok := s.idx[name]; ok {
		return i
	}
	return -1
}

// Event starts a typed event at the given virtual time. Fill slots with
// SetNum/SetStr/SetBool and pass the value to Engine.Insert; the whole
// construction is allocation-free.
func (s *Schema) Event(t time.Duration) Event {
	return Event{Time: t, Type: s.typ, schema: s}
}

// Event is one occurrence in a stream: a type name, a timestamp, and a flat
// set of fields. Field values are float64, string, or bool. The engine
// injects the builtin field "__time" (seconds since simulation start) so
// queries can aggregate over timestamps, e.g. max(__time) for the last
// access time.
//
// Events built through a Schema carry their fields in fixed slots; events
// built literally carry them in the Fields map. The two forms behave
// identically in queries.
type Event struct {
	Time   time.Duration
	Type   string
	Fields map[string]any

	schema *Schema
	slots  [MaxSchemaFields]Val
}

// SetNum stores a numeric field into slot i of a schema event.
func (e *Event) SetNum(i int, v float64) { e.checkSlot(i); e.slots[i] = NumVal(v) }

// SetStr stores a string field into slot i of a schema event.
func (e *Event) SetStr(i int, v string) { e.checkSlot(i); e.slots[i] = StrVal(v) }

// SetBool stores a boolean field into slot i of a schema event.
func (e *Event) SetBool(i int, v bool) { e.checkSlot(i); e.slots[i] = BoolVal(v) }

func (e *Event) checkSlot(i int) {
	if e.schema == nil {
		panic("cep: Set on an event without a schema")
	}
	if i < 0 || i >= len(e.schema.names) {
		panic(fmt.Sprintf("cep: slot %d out of range for schema %s", i, e.schema.typ))
	}
}

// Field returns the named field, with the builtin __time synthesized.
func (e *Event) Field(name string) (any, bool) {
	if name == "__time" {
		return e.Time.Seconds(), true
	}
	if e.schema != nil {
		if i, ok := e.schema.idx[name]; ok {
			return e.slots[i].box(), true
		}
		return nil, false
	}
	v, ok := e.Fields[name]
	return v, ok
}

// fieldVal is the typed, non-boxing field fetch the incremental pipeline
// uses. Missing fields are null.
func (e *Event) fieldVal(name string) Val {
	if name == "__time" {
		return NumVal(e.Time.Seconds())
	}
	if e.schema != nil {
		if i, ok := e.schema.idx[name]; ok {
			return e.slots[i]
		}
		return Val{}
	}
	return valOf(e.Fields[name])
}

// Row is one output row of a statement evaluation, keyed by the select
// list's aliases (or expression text when no alias is given).
type Row map[string]any

// Num extracts a numeric column from a row; it returns 0 for missing or
// non-numeric values, which keeps judge code terse.
func (r Row) Num(col string) float64 {
	v, ok := r[col]
	if !ok {
		return 0
	}
	f, ok := toFloat(v)
	if !ok {
		return 0
	}
	return f
}

// Str extracts a string column from a row ("" when missing).
func (r Row) Str(col string) string {
	v, ok := r[col]
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Sprint(v)
	}
	return s
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
