package cep

// Typed where-clause predicates. For schema-built events the generic
// expression evaluator would box every field read; compilePred lowers the
// common where shapes (comparisons between fields and literals combined
// with and/or/not) into predNodes that read Vals directly. Anything it
// can't lower — arithmetic, unknown operators — keeps the generic
// per-event evaluation, so semantics never change, only cost.

type predNode interface {
	test(ev *Event) (bool, error)
}

type litPred struct{ v bool }

func (p litPred) test(*Event) (bool, error) { return p.v, nil }

type notPred struct{ sub predNode }

func (p notPred) test(ev *Event) (bool, error) {
	v, err := p.sub.test(ev)
	return !v, err
}

type andPred struct{ l, r predNode }

func (p andPred) test(ev *Event) (bool, error) {
	v, err := p.l.test(ev)
	if err != nil || !v {
		// Short-circuit, like the generic evaluator: the right side's
		// errors are not surfaced when the left side is false.
		return false, err
	}
	return p.r.test(ev)
}

type orPred struct{ l, r predNode }

func (p orPred) test(ev *Event) (bool, error) {
	v, err := p.l.test(ev)
	if err != nil || v {
		return v, err
	}
	return p.r.test(ev)
}

// predOperand is a field reference or a literal.
type predOperand struct {
	field   string
	lit     Val
	isField bool
}

func (o *predOperand) val(ev *Event) Val {
	if o.isField {
		return ev.fieldVal(o.field)
	}
	return o.lit
}

type cmpPred struct {
	op   string
	l, r predOperand
}

func (p cmpPred) test(ev *Event) (bool, error) {
	a, b := p.l.val(ev), p.r.val(ev)
	switch p.op {
	case "=":
		return valLooseEqual(a, b), nil
	case "!=":
		return !valLooseEqual(a, b), nil
	}
	return valCompare(p.op, a, b)
}

// compilePred lowers a where expression to a predNode, or nil when the
// shape is unsupported.
func compilePred(e Expr) predNode {
	switch x := e.(type) {
	case *litExpr:
		if b, ok := x.val.(bool); ok {
			return litPred{b}
		}
	case *unaryExpr:
		if x.op == "not" {
			if sub := compilePred(x.sub); sub != nil {
				return notPred{sub}
			}
		}
	case *binaryExpr:
		switch x.op {
		case "and", "or":
			l, r := compilePred(x.left), compilePred(x.right)
			if l == nil || r == nil {
				return nil
			}
			if x.op == "and" {
				return andPred{l, r}
			}
			return orPred{l, r}
		case "=", "!=", "<", "<=", ">", ">=":
			l, ok := predOperandOf(x.left)
			if !ok {
				return nil
			}
			r, ok := predOperandOf(x.right)
			if !ok {
				return nil
			}
			return cmpPred{op: x.op, l: l, r: r}
		}
	}
	return nil
}

func predOperandOf(e Expr) (predOperand, bool) {
	switch x := e.(type) {
	case *fieldExpr:
		return predOperand{field: x.name, isField: true}, true
	case *litExpr:
		return predOperand{lit: valOf(x.val)}, true
	}
	return predOperand{}, false
}
