package cep

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"erms/internal/metrics"
	"erms/internal/trace"
)

// Engine routes inserted events to compiled statements. It reads the
// current virtual time from the clock function when pruning time windows.
type Engine struct {
	clock      func() time.Duration
	statements map[string][]*Statement // by event type
	inserted   uint64
	tracer     *trace.Tracer // nil: tracing disabled

	scratch     *Event // reused dispatch copy, so Insert's argument never escapes
	dispatching int
	needCompact bool // a statement closed itself mid-dispatch
}

// SetTracer installs a span tracer: every statement evaluation through
// EachRow records a "cep.eval" span under the ambient span, labelled with
// the statement's SetLabel name. A nil tracer (the default) disables
// tracing with zero overhead.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// RegisterMetrics registers the engine's counters into a metrics
// registry: cep_events_inserted_total tracks the audit→CEP feed volume.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("cep_events_inserted_total", func() float64 { return float64(e.inserted) })
	r.GaugeFunc("cep_statements", func() float64 {
		n := 0
		for _, regs := range e.statements {
			for _, s := range regs {
				if !s.closed {
					n++
				}
			}
		}
		return float64(n)
	})
}

// New creates an engine. clock supplies the current (virtual) time.
func New(clock func() time.Duration) *Engine {
	if clock == nil {
		panic("cep: nil clock")
	}
	return &Engine{clock: clock, statements: make(map[string][]*Statement)}
}

// Inserted returns the number of events accepted so far.
func (e *Engine) Inserted() uint64 { return e.inserted }

// Compile parses an EPL statement and registers it with the engine.
func (e *Engine) Compile(epl string) (*Statement, error) {
	q, err := ParseQuery(epl)
	if err != nil {
		return nil, err
	}
	s := &Statement{engine: e, query: q}
	s.inc = planIncremental(s)
	e.statements[q.From] = append(e.statements[q.From], s)
	return s, nil
}

// MustCompile is Compile for statically known statements; it panics on
// parse errors.
func (e *Engine) MustCompile(epl string) *Statement {
	s, err := e.Compile(epl)
	if err != nil {
		panic(err)
	}
	return s
}

// Insert dispatches an event to every statement reading its type. Events
// failing a statement's where clause are not retained by that statement.
//
// The event is copied into an engine-owned scratch slot before dispatch, so
// the argument never escapes: inserting into incremental statements does not
// allocate. Statements on the generic fallback retain events, so those get
// one shared heap copy per dispatch, allocated lazily.
func (e *Engine) Insert(ev Event) error {
	e.inserted++
	regs := e.statements[ev.Type]
	if len(regs) == 0 {
		return nil
	}
	p := e.scratch
	if p == nil || e.dispatching > 0 {
		// First use, or a reentrant Insert (e.g. from a clock callback):
		// don't clobber the outer dispatch's event.
		p = new(Event)
		if e.dispatching == 0 {
			e.scratch = p
		}
	}
	*p = ev
	e.dispatching++
	var kept *Event
	var firstErr error
	for _, s := range regs {
		if s.closed {
			continue
		}
		var err error
		if s.inc != nil {
			err = s.inc.insert(p)
		} else {
			if kept == nil {
				kept = new(Event)
				*kept = *p
			}
			err = s.insert(kept)
		}
		if err != nil {
			firstErr = err
			break
		}
	}
	e.dispatching--
	if e.dispatching == 0 && e.needCompact {
		e.needCompact = false
		e.compact()
	}
	return firstErr
}

// compact removes closed statements deferred by a mid-dispatch Close.
func (e *Engine) compact() {
	for typ, regs := range e.statements {
		out := regs[:0]
		for _, s := range regs {
			if !s.closed {
				out = append(out, s)
			}
		}
		e.statements[typ] = out
	}
}

// Statement is a registered continuous query plus its retained state:
// either the incremental per-group aggregates (fast path, chosen at compile
// time) or the generic evaluator's event window.
type Statement struct {
	engine *Engine
	query  *Query
	window []*Event
	inc    *incState // nil: generic fallback
	closed bool
	label  string // trace label, e.g. "files"; set via SetLabel
}

// SetLabel names the statement for trace spans ("files", "blocks", ...).
// It returns the statement so compile-and-label chains stay one line.
func (s *Statement) SetLabel(label string) *Statement {
	s.label = label
	return s
}

// Incremental reports whether the statement evaluates on the incremental
// fast path (exported for tests and benchmarks).
func (s *Statement) Incremental() bool { return s.inc != nil }

// Close deregisters the statement: it stops receiving events and releases
// its retained state. Closing twice is a no-op. Close is safe to call while
// the engine is dispatching an event (e.g. from a clock callback): the
// statement stops matching immediately and is unregistered once the
// dispatch finishes.
func (s *Statement) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.window = nil
	if s.inc != nil {
		s.inc.reset()
	}
	e := s.engine
	if e.dispatching > 0 {
		e.needCompact = true
		return
	}
	regs := e.statements[s.query.From]
	for i, st := range regs {
		if st == s {
			e.statements[s.query.From] = append(regs[:i], regs[i+1:]...)
			break
		}
	}
}

// Closed reports whether Close was called.
func (s *Statement) Closed() bool { return s.closed }

// Query returns the parsed form of the statement.
func (s *Statement) Query() *Query { return s.query }

// WindowSize returns the number of currently retained events (after pruning
// expired ones).
func (s *Statement) WindowSize() int {
	if s.inc != nil {
		return s.inc.windowSize()
	}
	s.prune()
	return len(s.window)
}

func (s *Statement) insert(ev *Event) error {
	if s.query.Where != nil {
		v, err := s.query.Where.eval(ev, nil)
		if err != nil {
			return fmt.Errorf("cep: where clause: %w", err)
		}
		keep, ok := v.(bool)
		if !ok {
			return fmt.Errorf("cep: where clause is not boolean")
		}
		if !keep {
			return nil
		}
	}
	s.window = append(s.window, ev)
	if s.query.Window.Kind == WindowLength && len(s.window) > s.query.Window.N {
		// Drop oldest; copy to avoid retaining the backing array head.
		copy(s.window, s.window[len(s.window)-s.query.Window.N:])
		s.window = s.window[:s.query.Window.N]
	}
	return nil
}

func (s *Statement) prune() {
	if s.query.Window.Kind != WindowTime {
		return
	}
	// The window is inclusive at its trailing edge: an event aged exactly
	// Dur is still visible, so a periodic evaluator with period == window
	// never loses the events of the instant it last ran.
	cutoff := s.engine.clock() - s.query.Window.Dur
	i := 0
	for i < len(s.window) && s.window[i].Time < cutoff {
		i++
	}
	if i > 0 {
		copy(s.window, s.window[i:])
		s.window = s.window[:len(s.window)-i]
	}
}

// Rows evaluates the statement now and returns one row per surviving group
// (or a single row for ungrouped aggregates, or one row per event for
// non-aggregated selects). Group order is the order groups first appeared,
// so output is deterministic.
func (s *Statement) Rows() ([]Row, error) {
	if s.inc != nil {
		return s.inc.rows()
	}
	s.prune()
	q := s.query
	grouped := len(q.GroupBy) > 0
	hasAgg := q.Having != nil
	for _, it := range q.Select {
		if it.Expr.hasAggregate() {
			hasAgg = true
		}
	}

	if !grouped && !hasAgg {
		// Row per event.
		rows := make([]Row, 0, len(s.window))
		var scopes []rowScope
		for _, ev := range s.window {
			row, err := s.project(ev, nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			scopes = append(scopes, rowScope{rep: ev})
		}
		return s.orderAndLimit(rows, scopes)
	}

	// Build groups. Ungrouped aggregate queries form a single group over
	// the whole window.
	type groupState struct {
		key    string
		events []*Event
	}
	var order []string
	groups := map[string]*groupState{}
	if !grouped {
		if len(s.window) == 0 {
			return nil, nil
		}
		groups[""] = &groupState{events: s.window}
		order = []string{""}
	} else {
		for _, ev := range s.window {
			key, err := s.groupKey(ev)
			if err != nil {
				return nil, err
			}
			g := groups[key]
			if g == nil {
				g = &groupState{key: key}
				groups[key] = g
				order = append(order, key)
			}
			g.events = append(g.events, ev)
		}
	}

	var rows []Row
	var scopes []rowScope
	for _, key := range order {
		g := groups[key]
		rep := g.events[len(g.events)-1] // representative for field refs
		if q.Having != nil {
			v, err := s.evalAliased(q.Having, rep, g.events)
			if err != nil {
				return nil, fmt.Errorf("cep: having clause: %w", err)
			}
			pass, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("cep: having clause is not boolean")
			}
			if !pass {
				continue
			}
		}
		row, err := s.project(rep, g.events)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		scopes = append(scopes, rowScope{rep: rep, group: g.events})
	}
	return s.orderAndLimit(rows, scopes)
}

// rowScope carries the evaluation context a row was produced from, so
// order-by keys can be computed against it.
type rowScope struct {
	rep   *Event
	group []*Event
}

// orderAndLimit applies the statement's order-by keys (alias-aware, like
// having) and the limit clause.
func (s *Statement) orderAndLimit(rows []Row, scopes []rowScope) ([]Row, error) {
	q := s.query
	if len(q.OrderBy) > 0 && len(rows) > 1 {
		type keyed struct {
			row  Row
			keys []any
		}
		ks := make([]keyed, len(rows))
		for i := range rows {
			ks[i] = keyed{row: rows[i]}
			for _, spec := range q.OrderBy {
				v, err := s.evalAliased(spec.Expr, scopes[i].rep, scopes[i].group)
				if err != nil {
					return nil, fmt.Errorf("cep: order by: %w", err)
				}
				ks[i].keys = append(ks[i].keys, v)
			}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for k, spec := range q.OrderBy {
				cmp := compareValues(ks[a].keys[k], ks[b].keys[k])
				if cmp == 0 {
					continue
				}
				if spec.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		for i := range ks {
			rows[i] = ks[i].row
		}
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows, nil
}

// compareValues orders two order-by keys: numbers numerically, strings
// lexically, mixed/null via their printed form.
func compareValues(a, b any) int {
	if af, ok := toFloat(a); ok {
		if bf, ok2 := toFloat(b); ok2 {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if !aok || !bok {
		as, bs = fmt.Sprint(a), fmt.Sprint(b)
	}
	return strings.Compare(as, bs)
}

// MustRows is Rows but panics on evaluation errors; statements used by the
// Data Judge are validated at compile time, so errors indicate bugs.
func (s *Statement) MustRows() []Row {
	rows, err := s.Rows()
	if err != nil {
		panic(err)
	}
	return rows
}

// EachRow evaluates the statement and streams each output row to fn as
// typed columns in select-list order. Row order, having, and limit behave
// exactly like Rows. On the incremental fast path the cols slice is an
// internal scratch buffer refilled per row — copy values out, do not retain
// the slice. The generic fallback adapts Rows() output, so EachRow is
// always available.
func (s *Statement) EachRow(fn func(cols []Val)) error {
	if tr := s.engine.tracer; tr.Enabled() {
		sp := tr.Begin("cep.eval", tr.Current())
		if s.label != "" {
			tr.SetAttr(sp, "stmt", s.label)
		}
		rows := 0
		inner := fn
		fn = func(cols []Val) { rows++; inner(cols) }
		defer func() {
			tr.SetAttrInt(sp, "rows", int64(rows))
			tr.End(sp)
		}()
	}
	if s.inc != nil {
		return s.inc.each(fn)
	}
	rows, err := s.Rows()
	if err != nil {
		return err
	}
	cols := make([]Val, len(s.query.Select))
	for _, row := range rows {
		for i, it := range s.query.Select {
			cols[i] = valOf(row[it.Alias])
		}
		fn(cols)
	}
	return nil
}

// MustEachRow is EachRow but panics on evaluation errors.
func (s *Statement) MustEachRow(fn func(cols []Val)) {
	if err := s.EachRow(fn); err != nil {
		panic(err)
	}
}

func (s *Statement) project(rep *Event, group []*Event) (Row, error) {
	row := make(Row, len(s.query.Select))
	for _, it := range s.query.Select {
		v, err := it.Expr.eval(rep, group)
		if err != nil {
			return nil, err
		}
		row[it.Alias] = v
	}
	return row, nil
}

// evalAliased evaluates an expression, first substituting select aliases:
// "having cnt > 10" refers to "count(*) as cnt".
func (s *Statement) evalAliased(e Expr, rep *Event, group []*Event) (any, error) {
	if f, ok := e.(*fieldExpr); ok {
		for _, it := range s.query.Select {
			if it.Alias == f.name {
				return it.Expr.eval(rep, group)
			}
		}
	}
	switch x := e.(type) {
	case *binaryExpr:
		l, err := s.evalAliased(x.left, rep, group)
		if err != nil {
			return nil, err
		}
		// Rebuild a literal-left binary node to reuse operator logic.
		tmp := &binaryExpr{op: x.op, left: &litExpr{val: l}, right: aliasThunk{s, x.right, rep, group}}
		return tmp.eval(rep, group)
	case *unaryExpr:
		tmp := &unaryExpr{op: x.op, sub: aliasThunk{s, x.sub, rep, group}}
		return tmp.eval(rep, group)
	default:
		return e.eval(rep, group)
	}
}

// aliasThunk defers alias-aware evaluation of a subtree.
type aliasThunk struct {
	s     *Statement
	sub   Expr
	rep   *Event
	group []*Event
}

func (a aliasThunk) eval(*Event, []*Event) (any, error) {
	return a.s.evalAliased(a.sub, a.rep, a.group)
}
func (a aliasThunk) hasAggregate() bool { return a.sub.hasAggregate() }
func (a aliasThunk) text() string       { return a.sub.text() }

func (s *Statement) groupKey(ev *Event) (string, error) {
	var b strings.Builder
	for i, g := range s.query.GroupBy {
		if i > 0 {
			b.WriteByte('\x00')
		}
		v, err := g.eval(ev, nil)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%v", v)
	}
	return b.String(), nil
}
