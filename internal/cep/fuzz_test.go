package cep

import (
	"testing"
	"time"
)

// FuzzParseQuery: the EPL parser must never panic, and any accepted query
// must be executable against a few events without panicking.
func FuzzParseQuery(f *testing.F) {
	f.Add("select path, count(*) as cnt from Access.win:time(60 s) where cmd = 'open' group by path having cnt > 10 order by cnt desc limit 3")
	f.Add("select x from S")
	f.Add("select count(*) from S.win:length(5)")
	f.Add("select a + b * -c from S where not (a = 1 or b != 2)")
	f.Add("select 'str' from S.win:keepall limit 1")
	f.Add("")
	f.Add("select from where")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		eng := New(func() time.Duration { return 0 })
		st := &Statement{engine: eng, query: q}
		eng.statements[q.From] = append(eng.statements[q.From], st)
		for i := 0; i < 3; i++ {
			// Insert/eval errors are fine; panics are not.
			_ = eng.Insert(Event{Type: q.From, Fields: map[string]any{
				"a": float64(i), "b": "s", "c": true,
			}})
		}
		_, _ = st.Rows()
	})
}
