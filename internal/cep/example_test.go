package cep_test

import (
	"fmt"
	"time"

	"erms/internal/cep"
)

// The judge's central query: per-file access counts over a sliding time
// window, hottest first.
func Example() {
	now := 10 * time.Minute
	engine := cep.New(func() time.Duration { return now })
	stmt := engine.MustCompile(
		"select path, count(*) as cnt from Access.win:time(600 s) " +
			"where cmd = 'open' group by path order by cnt desc limit 2")

	for i, path := range []string{"/hot", "/hot", "/hot", "/warm", "/cold", "/warm", "/hot"} {
		engine.Insert(cep.Event{
			Time: time.Duration(i) * time.Minute,
			Type: "Access",
			Fields: map[string]any{
				"path": path, "cmd": "open",
			},
		})
	}
	for _, row := range stmt.MustRows() {
		fmt.Printf("%s accessed %.0f times\n", row.Str("path"), row.Num("cnt"))
	}
	// Output:
	// /hot accessed 4 times
	// /warm accessed 2 times
}
