package cep

import (
	"testing"
	"time"
)

// TestTimeWindowTrailingEdgeInclusive pins the window's boundary semantics
// on both evaluation paths: an event aged exactly Dur is still visible, so
// a periodic evaluator with period == window never loses the events of the
// instant it last ran. One tick past Dur, the event is gone.
func TestTimeWindowTrailingEdgeInclusive(t *testing.T) {
	var now time.Duration
	e := New(func() time.Duration { return now })
	inc := e.MustCompile("select count(*) as cnt from S.win:time(60 s)")
	// order by forces the generic fallback; same query otherwise.
	gen := e.MustCompile("select count(*) as cnt from S.win:time(60 s) order by cnt")
	if !inc.Incremental() {
		t.Fatal("aggregate time-window query should take the incremental path")
	}
	if gen.Incremental() {
		t.Fatal("order-by query must fall back to the generic evaluator")
	}

	if err := e.Insert(Event{Time: 0, Type: "S", Fields: map[string]any{"x": 1.0}}); err != nil {
		t.Fatal(err)
	}

	now = 60 * time.Second // aged exactly Dur: still in the window
	for name, s := range map[string]*Statement{"incremental": inc, "generic": gen} {
		rows := s.MustRows()
		if len(rows) != 1 || rows[0].Num("cnt") != 1 {
			t.Fatalf("%s at exactly Dur: rows = %v, want one row with cnt 1", name, rows)
		}
		if ws := s.WindowSize(); ws != 1 {
			t.Fatalf("%s at exactly Dur: WindowSize = %d, want 1", name, ws)
		}
	}

	now = 60*time.Second + time.Nanosecond // one tick past: expired
	for name, s := range map[string]*Statement{"incremental": inc, "generic": gen} {
		if rows := s.MustRows(); rows != nil {
			t.Fatalf("%s past Dur: rows = %v, want nil", name, rows)
		}
		if ws := s.WindowSize(); ws != 0 {
			t.Fatalf("%s past Dur: WindowSize = %d, want 0", name, ws)
		}
	}
}

// TestCloseDuringDispatch closes a statement while the engine is mid-Insert
// (from the clock callback a sibling statement's time-window prune makes).
// The closed statement must not receive the in-flight event, must report
// empty results, and the engine must keep delivering to the survivor.
func TestCloseDuringDispatch(t *testing.T) {
	var now time.Duration
	var victim *Statement
	closeNow := false
	e := New(func() time.Duration {
		if closeNow && victim != nil {
			victim.Close()
		}
		return now
	})
	// Compiled first, so it dispatches first and its prune triggers the
	// clock callback before the victim sees the event.
	survivor := e.MustCompile("select path, count(*) as cnt from S.win:time(60 s) group by path")
	victim = e.MustCompile("select path, count(*) as cnt from S.win:time(60 s) group by path")

	mustInsert := func(ts time.Duration) {
		t.Helper()
		ev := Event{Time: ts, Type: "S", Fields: map[string]any{"path": "/a"}}
		if err := e.Insert(ev); err != nil {
			t.Fatal(err)
		}
	}

	mustInsert(0)
	mustInsert(1 * time.Second)
	if got := victim.MustRows()[0].Num("cnt"); got != 2 {
		t.Fatalf("victim cnt before close = %v, want 2", got)
	}

	closeNow = true
	mustInsert(2 * time.Second) // victim closes mid-dispatch, misses this event
	closeNow = false

	if !victim.Closed() {
		t.Fatal("victim not closed")
	}
	if rows := victim.MustRows(); rows != nil {
		t.Fatalf("closed statement rows = %v, want nil", rows)
	}
	if ws := victim.WindowSize(); ws != 0 {
		t.Fatalf("closed statement WindowSize = %d, want 0", ws)
	}
	victim.Close() // double close stays a no-op

	mustInsert(3 * time.Second) // post-compaction dispatch still works
	if got := survivor.MustRows()[0].Num("cnt"); got != 4 {
		t.Fatalf("survivor cnt = %v, want 4", got)
	}
	if regs := e.statements["S"]; len(regs) != 1 || regs[0] != survivor {
		t.Fatalf("statement registry not compacted: %d entries", len(regs))
	}
}
