package cep

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	num  float64
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos]})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			// Scientific notation: 1e9, 2.5E-3.
			if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				mark := l.pos
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
						l.pos++
					}
				} else {
					l.pos = mark // bare 'e': a unit or identifier follows
				}
			}
			num, err := strconv.ParseFloat(l.src[start:l.pos], 64)
			if err != nil {
				return nil, fmt.Errorf("cep: bad number %q", l.src[start:l.pos])
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], num: num})
		case c == '\'':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("cep: unterminated string literal")
			}
			l.toks = append(l.toks, token{kind: tokString, text: l.src[start:l.pos]})
			l.pos++
		default:
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "!=", "<=", ">=":
				l.toks = append(l.toks, token{kind: tokOp, text: two})
				l.pos += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ':':
				l.toks = append(l.toks, token{kind: tokOp, text: string(c)})
				l.pos++
			default:
				return nil, fmt.Errorf("cep: unexpected character %q", string(c))
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

// Identifiers are ASCII-only: the lexer walks bytes, so multi-byte UTF-8
// letters would be mis-tokenized.
func isIdentStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}

// --- parser ---

// WindowKind selects the statement's retention policy.
type WindowKind int

const (
	// WindowKeepAll retains every inserted event.
	WindowKeepAll WindowKind = iota
	// WindowTime retains events newer than now minus the duration.
	WindowTime
	// WindowLength retains the last N events.
	WindowLength
)

// WindowSpec describes a statement's window.
type WindowSpec struct {
	Kind WindowKind
	Dur  time.Duration // for WindowTime
	N    int           // for WindowLength
}

// SelectItem is one column of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderSpec is one "order by" key.
type OrderSpec struct {
	Expr Expr
	Desc bool
}

// Query is a parsed EPL statement.
type Query struct {
	Select  []SelectItem
	From    string // event type
	Window  WindowSpec
	Where   Expr // nil when absent; must not contain aggregates
	GroupBy []Expr
	Having  Expr // nil when absent
	OrderBy []OrderSpec
	Limit   int // 0 = unlimited
	src     string
}

// Source returns the original EPL text.
func (q *Query) Source() string { return q.src }

type parser struct {
	toks []token
	pos  int
}

// ParseQuery parses an EPL statement.
func ParseQuery(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{src: src}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e, Alias: e.text()}
		if p.acceptKeyword("as") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Alias = alias
		}
		q.Select = append(q.Select, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.From = from
	q.Window = WindowSpec{Kind: WindowKeepAll}
	if p.accept(".") {
		if err := p.expectKeyword("win"); err != nil {
			return nil, err
		}
		if !p.accept(":") {
			return nil, fmt.Errorf("cep: expected ':' after win")
		}
		kind, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kind {
		case "time":
			if !p.accept("(") {
				return nil, fmt.Errorf("cep: expected '(' after win:time")
			}
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("cep: expected ')' after window duration")
			}
			q.Window = WindowSpec{Kind: WindowTime, Dur: d}
		case "length":
			if !p.accept("(") {
				return nil, fmt.Errorf("cep: expected '(' after win:length")
			}
			tok := p.next()
			if tok.kind != tokNumber || tok.num != float64(int(tok.num)) || tok.num <= 0 {
				return nil, fmt.Errorf("cep: win:length needs a positive integer")
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("cep: expected ')' after window length")
			}
			q.Window = WindowSpec{Kind: WindowLength, N: int(tok.num)}
		case "keepall":
			q.Window = WindowSpec{Kind: WindowKeepAll}
		default:
			return nil, fmt.Errorf("cep: unknown window %q", kind)
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if e.hasAggregate() {
			return nil, fmt.Errorf("cep: where clause cannot contain aggregates (use having)")
		}
		q.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if e.hasAggregate() {
				return nil, fmt.Errorf("cep: group by cannot contain aggregates")
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Expr: e}
			if p.acceptKeyword("desc") {
				spec.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, spec)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		tok := p.next()
		if tok.kind != tokNumber || tok.num != float64(int(tok.num)) || tok.num <= 0 {
			return nil, fmt.Errorf("cep: limit needs a positive integer")
		}
		q.Limit = int(tok.num)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("cep: trailing input at %q", p.peek().text)
	}
	return q, nil
}

// parseDuration accepts forms like 60s, 500 ms, 5 min, 2h, or a bare number
// of seconds.
func (p *parser) parseDuration() (time.Duration, error) {
	tok := p.next()
	if tok.kind != tokNumber {
		return 0, fmt.Errorf("cep: expected duration, got %q", tok.text)
	}
	unit := time.Second
	if p.peek().kind == tokIdent {
		u := strings.ToLower(p.next().text)
		switch u {
		case "ms", "msec":
			unit = time.Millisecond
		case "s", "sec", "seconds":
			unit = time.Second
		case "min", "minutes":
			unit = time.Minute
		case "h", "hours":
			unit = time.Hour
		default:
			return 0, fmt.Errorf("cep: unknown time unit %q", u)
		}
	}
	return time.Duration(tok.num * float64(unit)), nil
}

// Expression grammar (precedence climbing):
//
//	or-expr   := and-expr (OR and-expr)*
//	and-expr  := not-expr (AND not-expr)*
//	not-expr  := NOT not-expr | cmp-expr
//	cmp-expr  := add-expr ((=|!=|<|<=|>|>=) add-expr)?
//	add-expr  := mul-expr ((+|-) mul-expr)*
//	mul-expr  := unary ((*|/) unary)*
//	unary     := - unary | primary
//	primary   := literal | aggregate | ident | ( or-expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		sub, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "not", sub: sub}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binaryExpr{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", sub: sub}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true,
	"min": true, "max": true, "first": true, "last": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch tok.kind {
	case tokNumber:
		p.next()
		return &litExpr{val: tok.num, src: tok.text}, nil
	case tokString:
		p.next()
		return &litExpr{val: tok.text, src: "'" + tok.text + "'"}, nil
	case tokIdent:
		name := strings.ToLower(tok.text)
		if name == "true" || name == "false" {
			p.next()
			return &litExpr{val: name == "true", src: name}, nil
		}
		if aggFuncs[name] && p.peekAt(1).text == "(" {
			p.next() // fn
			p.next() // (
			if name == "count" && p.accept("*") {
				if !p.accept(")") {
					return nil, fmt.Errorf("cep: expected ')' after count(*")
				}
				return &aggExpr{fn: "count", star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if arg.hasAggregate() {
				return nil, fmt.Errorf("cep: nested aggregates are not supported")
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("cep: expected ')' after %s(...", name)
			}
			return &aggExpr{fn: name, arg: arg}, nil
		}
		p.next()
		return &fieldExpr{name: tok.text}, nil
	case tokOp:
		if tok.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("cep: expected ')'")
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("cep: unexpected token %q", tok.text)
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return token{kind: tokEOF}
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(op string) bool {
	if p.peek().kind == tokOp && p.peek().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("cep: expected %q, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", fmt.Errorf("cep: expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}
