package cep

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a compiled expression node. Row-level evaluation resolves field
// references against a single event; group-level evaluation additionally
// resolves aggregate nodes against the group's event set.
type Expr interface {
	// eval computes the expression. ev is the representative event for
	// field references (the group's last event during grouped evaluation).
	// group is nil during row-level (where-clause) evaluation; aggregates
	// are then illegal.
	eval(ev *Event, group []*Event) (any, error)
	// hasAggregate reports whether the subtree contains an aggregate call.
	hasAggregate() bool
	// text returns the canonical source form (used as a default alias).
	text() string
}

type litExpr struct {
	val any
	src string
}

func (l *litExpr) eval(*Event, []*Event) (any, error) { return l.val, nil }
func (l *litExpr) hasAggregate() bool                 { return false }
func (l *litExpr) text() string                       { return l.src }

type fieldExpr struct{ name string }

func (f *fieldExpr) eval(ev *Event, _ []*Event) (any, error) {
	if ev == nil {
		return nil, fmt.Errorf("cep: field %q referenced with no event in scope", f.name)
	}
	v, ok := ev.Field(f.name)
	if !ok {
		return nil, nil // missing field evaluates to null
	}
	return v, nil
}
func (f *fieldExpr) hasAggregate() bool { return false }
func (f *fieldExpr) text() string       { return f.name }

type unaryExpr struct {
	op  string // "not" or "-"
	sub Expr
}

func (u *unaryExpr) eval(ev *Event, g []*Event) (any, error) {
	v, err := u.sub.eval(ev, g)
	if err != nil {
		return nil, err
	}
	switch u.op {
	case "not":
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("cep: not applied to non-boolean %T", v)
		}
		return !b, nil
	case "-":
		f, ok := toFloat(v)
		if !ok {
			return nil, fmt.Errorf("cep: unary minus on non-number %T", v)
		}
		return -f, nil
	}
	return nil, fmt.Errorf("cep: unknown unary op %q", u.op)
}
func (u *unaryExpr) hasAggregate() bool { return u.sub.hasAggregate() }
func (u *unaryExpr) text() string       { return u.op + " " + u.sub.text() }

type binaryExpr struct {
	op          string
	left, right Expr
}

func (b *binaryExpr) eval(ev *Event, g []*Event) (any, error) {
	l, err := b.left.eval(ev, g)
	if err != nil {
		return nil, err
	}
	// Short-circuit booleans.
	switch b.op {
	case "and":
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("cep: 'and' on non-boolean %T", l)
		}
		if !lb {
			return false, nil
		}
		r, err := b.right.eval(ev, g)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("cep: 'and' on non-boolean %T", r)
		}
		return rb, nil
	case "or":
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("cep: 'or' on non-boolean %T", l)
		}
		if lb {
			return true, nil
		}
		r, err := b.right.eval(ev, g)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("cep: 'or' on non-boolean %T", r)
		}
		return rb, nil
	}
	r, err := b.right.eval(ev, g)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case "=", "!=":
		eq := looseEqual(l, r)
		if b.op == "=" {
			return eq, nil
		}
		return !eq, nil
	case "<", "<=", ">", ">=":
		return compare(b.op, l, r)
	case "+", "-", "*", "/":
		lf, ok1 := toFloat(l)
		rf, ok2 := toFloat(r)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("cep: arithmetic on non-numbers %T %s %T", l, b.op, r)
		}
		switch b.op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("cep: division by zero")
			}
			return lf / rf, nil
		}
	}
	return nil, fmt.Errorf("cep: unknown operator %q", b.op)
}

func (b *binaryExpr) hasAggregate() bool {
	return b.left.hasAggregate() || b.right.hasAggregate()
}
func (b *binaryExpr) text() string {
	return fmt.Sprintf("(%s %s %s)", b.left.text(), b.op, b.right.text())
}

func looseEqual(l, r any) bool {
	if lf, ok := toFloat(l); ok {
		if rf, ok2 := toFloat(r); ok2 {
			return lf == rf
		}
		return false
	}
	ls, lok := l.(string)
	rs, rok := r.(string)
	if lok && rok {
		return ls == rs
	}
	return l == r
}

func compare(op string, l, r any) (any, error) {
	var cmp float64
	if lf, ok := toFloat(l); ok {
		rf, ok2 := toFloat(r)
		if !ok2 {
			return nil, fmt.Errorf("cep: comparing number with %T", r)
		}
		cmp = lf - rf
	} else if ls, ok := l.(string); ok {
		rs, ok2 := r.(string)
		if !ok2 {
			return nil, fmt.Errorf("cep: comparing string with %T", r)
		}
		cmp = float64(strings.Compare(ls, rs))
	} else {
		return nil, fmt.Errorf("cep: unorderable type %T", l)
	}
	switch op {
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("cep: unknown comparison %q", op)
}

// aggExpr is an aggregate call: count(*), count(f), sum(f), avg(f), min(f),
// max(f), first(f), last(f).
type aggExpr struct {
	fn   string
	arg  Expr // nil for count(*)
	star bool
}

func (a *aggExpr) hasAggregate() bool { return true }

func (a *aggExpr) text() string {
	if a.star {
		return a.fn + "(*)"
	}
	return a.fn + "(" + a.arg.text() + ")"
}

func (a *aggExpr) eval(_ *Event, group []*Event) (any, error) {
	if group == nil {
		return nil, fmt.Errorf("cep: aggregate %s outside grouped evaluation", a.text())
	}
	if a.fn == "count" && a.star {
		return float64(len(group)), nil
	}
	switch a.fn {
	case "first", "last":
		if len(group) == 0 {
			return nil, nil
		}
		ev := group[0]
		if a.fn == "last" {
			ev = group[len(group)-1]
		}
		return a.arg.eval(ev, nil)
	}
	var (
		n   int
		sum float64
		min = math.Inf(1)
		max = math.Inf(-1)
	)
	for _, ev := range group {
		v, err := a.arg.eval(ev, nil)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		f, ok := toFloat(v)
		if !ok {
			return nil, fmt.Errorf("cep: %s over non-numeric field", a.fn)
		}
		n++
		sum += f
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	switch a.fn {
	case "count":
		return float64(n), nil
	case "sum":
		return sum, nil
	case "avg":
		if n == 0 {
			return nil, nil
		}
		return sum / float64(n), nil
	case "min":
		if n == 0 {
			return nil, nil
		}
		return min, nil
	case "max":
		if n == 0 {
			return nil, nil
		}
		return max, nil
	}
	return nil, fmt.Errorf("cep: unknown aggregate %q", a.fn)
}
