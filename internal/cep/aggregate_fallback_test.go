package cep

import (
	"strings"
	"testing"
	"time"
)

// These tests pin the generic (non-incremental) aggregate evaluator — the
// reference semantics the incremental fast path must match. Expression
// arguments and last() are not incrementalizable, so each statement here
// must take the fallback path.

func TestGenericAggregatesOverExpressions(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path, count(bytes + 0) as cb, sum(bytes + 0) as s, " +
		"avg(bytes + 0) as a, min(bytes + 0) as mn, max(bytes + 0) as mx, " +
		"first(datanode) as fd, last(datanode) as ld, count(*) as n " +
		"from Access group by path")
	if st.Incremental() {
		t.Fatal("expression-argument aggregates should not incrementalize")
	}
	for i, dn := range []string{"dn1", "dn2", "dn3"} {
		ev := access(time.Duration(i)*time.Second, "/hot", dn)
		ev.Fields["bytes"] = float64(32 * (i + 1))
		e.Insert(ev)
	}
	rows := st.MustRows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r.Num("cb") != 3 || r.Num("s") != 192 || r.Num("a") != 64 ||
		r.Num("mn") != 32 || r.Num("mx") != 96 || r.Num("n") != 3 {
		t.Fatalf("aggregates wrong: %v", r)
	}
	if r.Str("fd") != "dn1" || r.Str("ld") != "dn3" {
		t.Fatalf("first/last wrong: %v", r)
	}
}

func TestGenericAggregatesSkipMissingFields(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	// order by forces the generic path; the aggregates read the raw field
	// so a missing value skips the event instead of failing arithmetic.
	st := e.MustCompile("select path, avg(bytes) as a, min(bytes) as mn, " +
		"max(bytes) as mx, count(bytes) as cb from Access group by path order by path")
	if st.Incremental() {
		t.Fatal("order by should not incrementalize")
	}
	ev := access(time.Second, "/gap", "dn1")
	delete(ev.Fields, "bytes")
	e.Insert(ev)
	rows := st.MustRows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// All bytes values were missing: counts are zero and the mean/extrema
	// are null, not zero or infinity.
	r := rows[0]
	if r.Num("cb") != 0 {
		t.Fatalf("count over missing field = %v", r.Num("cb"))
	}
	for _, col := range []string{"a", "mn", "mx"} {
		if v, ok := r[col]; !ok || v != nil {
			t.Fatalf("%s over empty group = %v, want nil", col, v)
		}
	}
}

func TestGenericHavingComparisons(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)
	st := e.MustCompile("select path, max(bytes + 0) as mx, min(bytes + 0) as mn " +
		"from Access group by path " +
		"having mx >= 64 and mn <= 32 and mx > 63 and mn < 33")
	for i, path := range []string{"/in", "/in", "/out"} {
		ev := access(time.Duration(i)*time.Second, path, "dn1")
		if path == "/in" && i == 1 {
			ev.Fields["bytes"] = 32.0
		}
		e.Insert(ev)
	}
	rows := st.MustRows()
	if len(rows) != 1 || rows[0].Str("path") != "/in" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGenericAggregateErrors(t *testing.T) {
	c := &testClock{}
	e := New(c.clock)

	// Aggregating a non-numeric field is an evaluation error, not a panic
	// or a silent zero (last() keeps the statement on the generic path).
	st := e.MustCompile("select last(datanode) as ld, sum(datanode) as s from Access group by path")
	e.Insert(access(time.Second, "/x", "dn1"))
	if _, err := st.Rows(); err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("sum over strings: %v", err)
	}

	// An aggregate in a plain per-event statement has no group to fold.
	agg := &aggExpr{fn: "sum", arg: &fieldExpr{name: "bytes"}}
	if _, err := agg.eval(&Event{}, nil); err == nil {
		t.Fatal("aggregate outside grouped evaluation succeeded")
	}
}
