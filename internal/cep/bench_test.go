package cep

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkInsertGroupedTimeWindow measures the judge-shaped hot path: a
// typed event through a where filter into a grouped time window. On the
// incremental path with a schema event this is allocation-free.
func BenchmarkInsertGroupedTimeWindow(b *testing.B) {
	now := time.Duration(0)
	e := New(func() time.Duration { return now })
	st := e.MustCompile("select path, count(*) as cnt from Access.win:time(300 s) " +
		"where cmd = 'open' group by path")
	if !st.Incremental() {
		b.Fatal("expected incremental path")
	}
	schema := NewSchema("Access", "path", "cmd")
	paths := []string{"/a", "/b", "/c", "/d", "/e"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = time.Duration(i) * time.Millisecond
		ev := schema.Event(now)
		ev.SetStr(0, paths[i%len(paths)])
		ev.SetStr(1, "open")
		e.Insert(ev)
	}
}

// BenchmarkInsertGroupedTimeWindowMapFields is the same workload through
// the legacy map constructor, kept as the before/after contrast.
func BenchmarkInsertGroupedTimeWindowMapFields(b *testing.B) {
	now := time.Duration(0)
	e := New(func() time.Duration { return now })
	e.MustCompile("select path, count(*) as cnt from Access.win:time(300 s) " +
		"where cmd = 'open' group by path")
	paths := []string{"/a", "/b", "/c", "/d", "/e"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = time.Duration(i) * time.Millisecond
		e.Insert(Event{
			Time: now, Type: "Access",
			Fields: map[string]any{"path": paths[i%len(paths)], "cmd": "open"},
		})
	}
}

// fillWindow loads n events spread over 20 groups, all inside the window.
func fillWindow(b *testing.B, e *Engine, n int) {
	b.Helper()
	schema := NewSchema("Access", "path", "cmd")
	for i := 0; i < n; i++ {
		ev := schema.Event(time.Hour - time.Duration(n-i)*time.Microsecond)
		ev.SetStr(0, "/f"+string(rune('a'+i%20)))
		ev.SetStr(1, "open")
		if err := e.Insert(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowsEvaluation measures Rows() against windows of increasing
// event count. On the incremental path the cost tracks the group count (20
// here), not the window size, so the sub-benchmarks should be flat.
func BenchmarkRowsEvaluation(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			now := time.Hour
			e := New(func() time.Duration { return now })
			st := e.MustCompile("select path, count(*) as cnt, max(__time) as last " +
				"from Access.win:time(3600 s) group by path having cnt > 5")
			if !st.Incremental() {
				b.Fatal("expected incremental path")
			}
			fillWindow(b, e, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Rows(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRowsEvaluationGeneric pins the fallback evaluator's cost on the
// same query (order by forces the full-window rescan).
func BenchmarkRowsEvaluationGeneric(b *testing.B) {
	now := time.Hour
	e := New(func() time.Duration { return now })
	st := e.MustCompile("select path, count(*) as cnt, max(__time) as last " +
		"from Access.win:time(3600 s) group by path having cnt > 5 order by path")
	if st.Incremental() {
		b.Fatal("expected generic fallback")
	}
	fillWindow(b, e, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Rows(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEachRowEvaluation measures the typed streaming consumer the
// judge uses: no Row maps, columns read as Vals.
func BenchmarkEachRowEvaluation(b *testing.B) {
	now := time.Hour
	e := New(func() time.Duration { return now })
	st := e.MustCompile("select path, count(*) as cnt from Access.win:time(3600 s) " +
		"group by path having cnt > 5")
	fillWindow(b, e, 10000)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.EachRow(func(cols []Val) { sink += cols[1].Num() }); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}

func BenchmarkParseQuery(b *testing.B) {
	const q = "select path, count(*) as cnt, avg(bytes) as ab from Access.win:time(60 s) " +
		"where cmd = 'open' and path != '/tmp' group by path having cnt > 10"
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}
