package cep

import (
	"testing"
	"time"
)

func BenchmarkInsertGroupedTimeWindow(b *testing.B) {
	now := time.Duration(0)
	e := New(func() time.Duration { return now })
	e.MustCompile("select path, count(*) as cnt from Access.win:time(300 s) " +
		"where cmd = 'open' group by path")
	paths := []string{"/a", "/b", "/c", "/d", "/e"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = time.Duration(i) * time.Millisecond
		e.Insert(Event{
			Time: now, Type: "Access",
			Fields: map[string]any{"path": paths[i%len(paths)], "cmd": "open"},
		})
	}
}

func BenchmarkRowsEvaluation(b *testing.B) {
	now := time.Hour
	e := New(func() time.Duration { return now })
	st := e.MustCompile("select path, count(*) as cnt, max(__time) as last " +
		"from Access.win:time(3600 s) group by path having cnt > 5")
	for i := 0; i < 10000; i++ {
		e.Insert(Event{
			Time: time.Duration(i) * 300 * time.Millisecond, Type: "Access",
			Fields: map[string]any{"path": "/f" + string(rune('a'+i%20)), "cmd": "open"},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Rows(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	const q = "select path, count(*) as cnt, avg(bytes) as ab from Access.win:time(60 s) " +
		"where cmd = 'open' and path != '/tmp' group by path having cnt > 10"
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}
