package cep

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the incremental aggregation fast path. At Compile
// time the planner inspects the parsed query; when every clause fits the
// supported shapes it builds an incState that maintains per-group running
// aggregates on insert and on window expiry, so Rows() costs O(groups)
// instead of rescanning the retained window (O(events)).
//
// Fast-path requirements (anything else falls back to the generic
// evaluator, chosen automatically):
//
//   - the query aggregates (group by, aggregate calls, or a having clause);
//     plain row-per-event selects stay generic since they must retain rows
//   - no order-by clause
//   - group-by keys are plain field references, at most 3 of them
//   - every aggregate call is count(*)/count(f)/sum(f)/avg(f)/min(f)/
//     max(f)/first(f)/last(f) over a plain field reference (including the
//     builtin __time)
//
// Select and having expressions may combine those aggregates, field
// references, and literals with any operators: the planner rewrites the
// expression tree in place, replacing aggregate calls and field references
// with bound nodes that read the current group's running state.

// maxGroupKeyFields caps the typed composite group key.
const maxGroupKeyFields = 3

// groupKey is a comparable composite key over at most maxGroupKeyFields
// typed values — no fmt round-trip, no per-insert allocation.
type groupKey struct {
	n uint8
	v [maxGroupKeyFields]Val
}

// ring is a growable circular buffer (FIFO).
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		grown := make([]T, maxInt(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)%len(r.buf)] }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// expEntry is one retained record in the statement-level expiry FIFO: the
// group it belongs to plus its event time. Records expire in insertion
// order, exactly like the generic window's front-pruning.
type expEntry struct {
	t time.Duration
	g *incGroup
}

// mdq is a monotonic deque for sliding-window min/max: amortized O(1) per
// insert and expiry. Entries are expired by record sequence number.
type dqEnt struct {
	seq uint64
	v   float64
}

type mdq struct {
	buf  []dqEnt
	head int
}

func (d *mdq) len() int     { return len(d.buf) - d.head }
func (d *mdq) front() dqEnt { return d.buf[d.head] }
func (d *mdq) popFront() {
	d.head++
	if d.head > 64 && d.head > len(d.buf)/2 {
		d.buf = append(d.buf[:0], d.buf[d.head:]...)
		d.head = 0
	}
}

// pushMin maintains an increasing deque: front is the window minimum.
func (d *mdq) pushMin(seq uint64, v float64) {
	for len(d.buf) > d.head && d.buf[len(d.buf)-1].v >= v {
		d.buf = d.buf[:len(d.buf)-1]
	}
	d.buf = append(d.buf, dqEnt{seq, v})
}

// pushMax maintains a decreasing deque: front is the window maximum.
func (d *mdq) pushMax(seq uint64, v float64) {
	for len(d.buf) > d.head && d.buf[len(d.buf)-1].v <= v {
		d.buf = d.buf[:len(d.buf)-1]
	}
	d.buf = append(d.buf, dqEnt{seq, v})
}

// expire drops deque entries belonging to records at or before seq.
func (d *mdq) expire(seq uint64) {
	for d.len() > 0 && d.front().seq <= seq {
		d.popFront()
	}
}

// statNeed flags which running statistics a captured field must maintain.
type statNeed struct {
	sum   bool // sum/avg
	min   bool
	max   bool
	first bool
}

// fieldStats is the per-group running state for one captured field. n and
// bad mirror the generic aggregate loop: n counts live non-null numeric
// values, bad counts live non-null non-numeric ones (whose presence makes
// numeric aggregates error, exactly like the generic evaluator).
type fieldStats struct {
	n, bad int
	sum    float64
	runMin float64 // keepall windows only (no expiry)
	runMax float64
	first  Val // keepall windows only
	dqMin  mdq // expiring windows only
	dqMax  mdq
}

// aggPlan is one planned aggregate call.
type aggPlan struct {
	fn      string
	star    bool
	statIdx int // index into per-group stats / recIdx (-1 for count(*) and last)
	fldIdx  int // index into evFields for the argument (-1 for count(*))
}

// selSource tells EachRow how to produce one output column without boxing.
type selKind uint8

const (
	srcField selKind = iota // repVals[idx]
	srcAgg                  // aggs[idx]
	srcExpr                 // selBound[i] generic eval, then valOf
)

type selSource struct {
	kind selKind
	idx  int
}

// incGroup is the running state of one surviving group.
type incGroup struct {
	key      groupKey
	firstSeq uint64 // keepall: creation seq; windowed: seqs front
	live     int
	repVals  []Val // latest event's captured fields (the generic "representative")
	seqs     ring[uint64]
	recs     ring[Val] // flattened: one Val per recIdx field per record
	stats    []fieldStats
}

// incState is a statement's incremental plan plus runtime state.
type incState struct {
	s *Statement

	evFields []string // fields captured per event
	groupIdx []int    // group-by keys, as indices into evFields
	recIdx   []int    // per-record retained fields (aggregate inputs), into evFields
	needs    []statNeed
	aggs     []aggPlan
	selSrc   []selSource
	selBound []Expr // rewritten select expressions (Row projection)
	having   Expr   // rewritten having, aliases substituted at compile time
	pred     predNode

	groups map[groupKey]*incGroup
	expiry ring[expEntry]
	seq    uint64
	live   int
	cur    *incGroup // group under evaluation, read by bound nodes

	scratch     []Val
	grpScratch  []*incGroup
	colsScratch []Val
}

func (st *incState) windowed() bool {
	return st.s.query.Window.Kind != WindowKeepAll
}

// --- planner ---

// planIncremental returns an incState when the query fits the fast path,
// nil to fall back to the generic evaluator.
func planIncremental(s *Statement) *incState {
	q := s.query
	if len(q.OrderBy) > 0 {
		return nil
	}
	grouped := len(q.GroupBy) > 0
	hasAgg := q.Having != nil
	for _, it := range q.Select {
		if it.Expr.hasAggregate() {
			hasAgg = true
		}
	}
	if !grouped && !hasAgg {
		return nil // row-per-event: rows must be retained anyway
	}
	if len(q.GroupBy) > maxGroupKeyFields {
		return nil
	}
	st := &incState{s: s, groups: make(map[groupKey]*incGroup)}
	for _, g := range q.GroupBy {
		f, ok := g.(*fieldExpr)
		if !ok {
			return nil
		}
		st.groupIdx = append(st.groupIdx, st.fieldIndex(f.name))
	}
	aliases := make(map[string]Expr, len(q.Select))
	for _, it := range q.Select {
		if _, dup := aliases[it.Alias]; !dup {
			aliases[it.Alias] = it.Expr
		}
	}
	for _, it := range q.Select {
		bound, ok := st.rewrite(it.Expr, nil)
		if !ok {
			return nil
		}
		st.selBound = append(st.selBound, bound)
		st.selSrc = append(st.selSrc, st.sourceOf(bound))
	}
	if q.Having != nil {
		bound, ok := st.rewrite(q.Having, aliases)
		if !ok {
			return nil
		}
		st.having = bound
	}
	if q.Where != nil {
		st.pred = compilePred(q.Where) // nil is fine: generic eval per event
	}
	st.scratch = make([]Val, len(st.evFields))
	st.colsScratch = make([]Val, len(st.selSrc))
	return st
}

// fieldIndex interns a captured field name.
func (st *incState) fieldIndex(name string) int {
	for i, f := range st.evFields {
		if f == name {
			return i
		}
	}
	st.evFields = append(st.evFields, name)
	return len(st.evFields) - 1
}

// recFieldIndex interns a per-record retained field, returning its stats
// slot.
func (st *incState) recFieldIndex(name string) int {
	fi := st.fieldIndex(name)
	for i, ri := range st.recIdx {
		if ri == fi {
			return i
		}
	}
	st.recIdx = append(st.recIdx, fi)
	st.needs = append(st.needs, statNeed{})
	return len(st.recIdx) - 1
}

// rewrite maps a parsed expression onto bound nodes reading group state.
// aliases is non-nil only for the having clause, mirroring the generic
// evaluator's alias-aware substitution (and, like it, substituted select
// expressions are not themselves re-substituted).
func (st *incState) rewrite(e Expr, aliases map[string]Expr) (Expr, bool) {
	switch x := e.(type) {
	case *litExpr:
		return x, true
	case *fieldExpr:
		if aliases != nil {
			if sel, ok := aliases[x.name]; ok {
				return st.rewrite(sel, nil)
			}
		}
		return &boundField{st: st, idx: st.fieldIndex(x.name), name: x.name}, true
	case *aggExpr:
		ai, ok := st.addAgg(x)
		if !ok {
			return nil, false
		}
		return &boundAgg{st: st, idx: ai, src: x}, true
	case *unaryExpr:
		sub, ok := st.rewrite(x.sub, aliases)
		if !ok {
			return nil, false
		}
		return &unaryExpr{op: x.op, sub: sub}, true
	case *binaryExpr:
		l, ok := st.rewrite(x.left, aliases)
		if !ok {
			return nil, false
		}
		r, ok := st.rewrite(x.right, aliases)
		if !ok {
			return nil, false
		}
		return &binaryExpr{op: x.op, left: l, right: r}, true
	}
	return nil, false
}

// addAgg plans one aggregate call, deduplicating identical ones.
func (st *incState) addAgg(x *aggExpr) (int, bool) {
	argName := ""
	if !x.star {
		f, ok := x.arg.(*fieldExpr)
		if !ok {
			return 0, false
		}
		argName = f.name
	}
	for i, ap := range st.aggs {
		if ap.fn == x.fn && ap.star == x.star && (ap.fldIdx == -1 && x.star ||
			ap.fldIdx >= 0 && !x.star && st.evFields[ap.fldIdx] == argName) {
			return i, true
		}
	}
	ap := aggPlan{fn: x.fn, star: x.star, statIdx: -1, fldIdx: -1}
	if !x.star {
		ap.fldIdx = st.fieldIndex(argName)
		switch x.fn {
		case "count", "sum", "avg", "min", "max", "first":
			ap.statIdx = st.recFieldIndex(argName)
			need := &st.needs[ap.statIdx]
			switch x.fn {
			case "sum", "avg":
				need.sum = true
			case "min":
				need.min = true
			case "max":
				need.max = true
			case "first":
				need.first = true
			}
		case "last":
			// resolved from repVals
		default:
			return 0, false
		}
	} else if x.fn != "count" {
		return 0, false
	}
	st.aggs = append(st.aggs, ap)
	return len(st.aggs) - 1, true
}

// sourceOf classifies a bound select expression for EachRow's typed output.
func (st *incState) sourceOf(bound Expr) selSource {
	switch x := bound.(type) {
	case *boundField:
		return selSource{kind: srcField, idx: x.idx}
	case *boundAgg:
		return selSource{kind: srcAgg, idx: x.idx}
	}
	return selSource{kind: srcExpr, idx: len(st.selBound) - 1}
}

// --- bound expression nodes ---

type boundField struct {
	st   *incState
	idx  int
	name string
}

func (b *boundField) eval(*Event, []*Event) (any, error) {
	return b.st.cur.repVals[b.idx].box(), nil
}
func (b *boundField) hasAggregate() bool { return false }
func (b *boundField) text() string       { return b.name }

type boundAgg struct {
	st  *incState
	idx int
	src *aggExpr
}

func (b *boundAgg) eval(*Event, []*Event) (any, error) {
	v, err := b.st.aggValue(b.st.cur, b.idx)
	if err != nil {
		return nil, err
	}
	return v.box(), nil
}
func (b *boundAgg) hasAggregate() bool { return true }
func (b *boundAgg) text() string       { return b.src.text() }

// --- runtime: insert, expiry, evaluation ---

func (st *incState) insert(ev *Event) error {
	if st.s.query.Where != nil {
		keep, err := st.evalWhere(ev)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	st.pruneTime()
	for i, f := range st.evFields {
		st.scratch[i] = ev.fieldVal(f)
	}
	var key groupKey
	key.n = uint8(len(st.groupIdx))
	for i, gi := range st.groupIdx {
		key.v[i] = st.scratch[gi]
	}
	g := st.groups[key]
	created := g == nil
	if created {
		g = &incGroup{
			key:      key,
			firstSeq: st.seq,
			repVals:  make([]Val, len(st.evFields)),
			stats:    make([]fieldStats, len(st.recIdx)),
		}
		st.groups[key] = g
	}
	seq := st.seq
	st.seq++
	copy(g.repVals, st.scratch)
	g.live++
	st.live++
	windowed := st.windowed()
	if windowed {
		g.seqs.push(seq)
		for _, fi := range st.recIdx {
			g.recs.push(st.scratch[fi])
		}
		st.expiry.push(expEntry{t: ev.Time, g: g})
	}
	for j, fi := range st.recIdx {
		v := st.scratch[fi]
		fs := &g.stats[j]
		if created && st.needs[j].first {
			fs.first = v // first record's value, null included (generic parity)
		}
		if v.IsNull() {
			continue
		}
		f, numeric := v.numeric()
		if !numeric {
			fs.bad++
			continue
		}
		fs.n++
		if st.needs[j].sum {
			fs.sum += f
		}
		if windowed {
			if st.needs[j].min {
				fs.dqMin.pushMin(seq, f)
			}
			if st.needs[j].max {
				fs.dqMax.pushMax(seq, f)
			}
		} else {
			if fs.n == 1 {
				fs.runMin, fs.runMax = f, f
			} else {
				if f < fs.runMin {
					fs.runMin = f
				}
				if f > fs.runMax {
					fs.runMax = f
				}
			}
		}
	}
	if w := st.s.query.Window; w.Kind == WindowLength && st.live > w.N {
		e := st.expiry.pop()
		st.expireFront(e.g)
	}
	return nil
}

// evalWhere applies the where clause to one event: the typed predicate when
// compiled and the event is schema-built, the generic evaluator otherwise.
func (st *incState) evalWhere(ev *Event) (bool, error) {
	if st.pred != nil && ev.schema != nil {
		keep, err := st.pred.test(ev)
		if err != nil {
			return false, fmt.Errorf("cep: where clause: %w", err)
		}
		return keep, nil
	}
	v, err := st.s.query.Where.eval(ev, nil)
	if err != nil {
		return false, fmt.Errorf("cep: where clause: %w", err)
	}
	keep, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("cep: where clause is not boolean")
	}
	return keep, nil
}

// pruneTime expires records older than the time window, front-first in
// insertion order — the same policy as the generic window.
func (st *incState) pruneTime() {
	w := st.s.query.Window
	if w.Kind != WindowTime {
		return
	}
	cutoff := st.s.engine.clock() - w.Dur
	for st.expiry.len() > 0 && st.expiry.at(0).t < cutoff {
		e := st.expiry.pop()
		st.expireFront(e.g)
	}
}

// expireFront removes the group's oldest record from its running state.
func (st *incState) expireFront(g *incGroup) {
	seq := g.seqs.pop()
	for j := range st.recIdx {
		v := g.recs.pop()
		fs := &g.stats[j]
		if v.IsNull() {
			continue
		}
		f, numeric := v.numeric()
		if !numeric {
			fs.bad--
			continue
		}
		fs.n--
		if st.needs[j].sum {
			fs.sum -= f
		}
	}
	for j := range st.recIdx {
		if st.needs[j].min {
			g.stats[j].dqMin.expire(seq)
		}
		if st.needs[j].max {
			g.stats[j].dqMax.expire(seq)
		}
	}
	g.live--
	st.live--
	if g.live == 0 {
		delete(st.groups, g.key)
	}
}

// aggValue resolves one planned aggregate against a group's running state,
// with the generic evaluator's null and type-error semantics.
func (st *incState) aggValue(g *incGroup, idx int) (Val, error) {
	ap := st.aggs[idx]
	if ap.star {
		return NumVal(float64(g.live)), nil
	}
	switch ap.fn {
	case "last":
		return g.repVals[ap.fldIdx], nil
	case "first":
		if st.windowed() {
			return g.recs.at(ap.statIdx), nil
		}
		return g.stats[ap.statIdx].first, nil
	}
	fs := &g.stats[ap.statIdx]
	if fs.bad > 0 {
		return Val{}, fmt.Errorf("cep: %s over non-numeric field", ap.fn)
	}
	switch ap.fn {
	case "count":
		return NumVal(float64(fs.n)), nil
	case "sum":
		return NumVal(fs.sum), nil
	case "avg":
		if fs.n == 0 {
			return Val{}, nil
		}
		return NumVal(fs.sum / float64(fs.n)), nil
	case "min":
		if st.windowed() {
			if fs.dqMin.len() == 0 {
				return Val{}, nil
			}
			return NumVal(fs.dqMin.front().v), nil
		}
		if fs.n == 0 {
			return Val{}, nil
		}
		return NumVal(fs.runMin), nil
	case "max":
		if st.windowed() {
			if fs.dqMax.len() == 0 {
				return Val{}, nil
			}
			return NumVal(fs.dqMax.front().v), nil
		}
		if fs.n == 0 {
			return Val{}, nil
		}
		return NumVal(fs.runMax), nil
	}
	return Val{}, fmt.Errorf("cep: unknown aggregate %q", ap.fn)
}

// first() reads the group's oldest retained record. recs.at(statIdx) works
// because the oldest record's fields occupy the ring's first stride.

// surviving collects live groups ordered by the sequence of their oldest
// surviving record — exactly the generic evaluator's "order groups first
// appeared in the current window".
func (st *incState) surviving() []*incGroup {
	st.grpScratch = st.grpScratch[:0]
	for _, g := range st.groups {
		if st.windowed() {
			g.firstSeq = g.seqs.at(0)
		}
		st.grpScratch = append(st.grpScratch, g)
	}
	sort.Slice(st.grpScratch, func(a, b int) bool {
		return st.grpScratch[a].firstSeq < st.grpScratch[b].firstSeq
	})
	return st.grpScratch
}

// checkHaving evaluates the bound having clause for st.cur.
func (st *incState) checkHaving() (bool, error) {
	if st.having == nil {
		return true, nil
	}
	v, err := st.having.eval(nil, nil)
	if err != nil {
		return false, fmt.Errorf("cep: having clause: %w", err)
	}
	pass, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("cep: having clause is not boolean")
	}
	return pass, nil
}

// rows is the incremental Rows() evaluation: O(groups log groups).
func (st *incState) rows() ([]Row, error) {
	st.pruneTime()
	if st.live == 0 {
		return nil, nil
	}
	q := st.s.query
	var out []Row
	for _, g := range st.surviving() {
		st.cur = g
		pass, err := st.checkHaving()
		if err != nil {
			return nil, err
		}
		if !pass {
			continue
		}
		row := make(Row, len(q.Select))
		for i, it := range q.Select {
			v, err := st.selBound[i].eval(nil, nil)
			if err != nil {
				return nil, err
			}
			row[it.Alias] = v
		}
		out = append(out, row)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	return out, nil
}

// each is the incremental EachRow evaluation: typed columns, no boxing for
// field and aggregate outputs.
func (st *incState) each(fn func(cols []Val)) error {
	st.pruneTime()
	if st.live == 0 {
		return nil
	}
	q := st.s.query
	emitted := 0
	for _, g := range st.surviving() {
		st.cur = g
		pass, err := st.checkHaving()
		if err != nil {
			return err
		}
		if !pass {
			continue
		}
		for i, src := range st.selSrc {
			switch src.kind {
			case srcField:
				st.colsScratch[i] = g.repVals[src.idx]
			case srcAgg:
				v, err := st.aggValue(g, src.idx)
				if err != nil {
					return err
				}
				st.colsScratch[i] = v
			default:
				v, err := st.selBound[i].eval(nil, nil)
				if err != nil {
					return err
				}
				st.colsScratch[i] = valOf(v)
			}
		}
		fn(st.colsScratch)
		emitted++
		if q.Limit > 0 && emitted == q.Limit {
			break
		}
	}
	return nil
}

// windowSize returns the number of live retained records after pruning.
func (st *incState) windowSize() int {
	st.pruneTime()
	return st.live
}

// reset releases all runtime state (statement closed).
func (st *incState) reset() {
	st.groups = make(map[groupKey]*incGroup)
	st.expiry = ring[expEntry]{}
	st.live = 0
	st.cur = nil
	st.grpScratch = nil
}
