package netsim

import (
	"testing"

	"erms/internal/sim"
	"erms/internal/topology"
)

// BenchmarkFlowChurn measures the cost of the max-min reallocation under a
// steady add/complete churn of flows — the simulator's hottest loop.
func BenchmarkFlowChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		fb := New(e, topo)
		n := topo.NumNodes()
		for k := 0; k < 200; k++ {
			src := topology.NodeID(k % n)
			dst := topology.NodeID((k + 7) % n)
			fb.StartFlow(topo.ReadPath(src, dst), 16*float64(topology.MB), 0, nil)
		}
		e.Run()
	}
}

// BenchmarkManyConcurrentFlows stresses a single admission burst.
func BenchmarkManyConcurrentFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		fb := New(e, topo)
		n := topo.NumNodes()
		for k := 0; k < 500; k++ {
			src := topology.NodeID(k % n)
			dst := topology.NodeID((k*5 + 1) % n)
			if src == dst {
				dst = topology.NodeID((int(dst) + 1) % n)
			}
			fb.StartFlow(topo.ReadPath(src, dst), float64(topology.MB), 0, nil)
		}
		e.Run()
	}
}
