package netsim

import (
	"time"

	"erms/internal/sim"
)

// TokenBucket is a deterministic byte-budget limiter over virtual time:
// tokens accrue at rate bytes/sec up to burst, and Take debits a request's
// cost before letting it proceed. Waiters are served strictly FIFO, with
// refills computed lazily from the sim clock and wake-ups scheduled at the
// exact instant the head waiter's deficit fills — no polling, no
// wall-clock, so two same-seed runs drain identically. The repair pipeline
// puts one in front of its replica copies to give recovery traffic a
// bandwidth budget instead of the whole fabric.
type TokenBucket struct {
	clock   sim.Clock
	rate    float64 // tokens (bytes) per second
	burst   float64 // bucket capacity
	tokens  float64
	last    time.Duration // sim time of the last refill
	waiters []bucketWaiter
	armed   bool // a wake-up for the head waiter is scheduled
}

type bucketWaiter struct {
	cost  float64
	ready func()
}

// NewTokenBucket builds a bucket that starts full. rate must be positive;
// burst <= 0 defaults to one second's worth of tokens.
func NewTokenBucket(clock sim.Clock, rate, burst float64) *TokenBucket {
	if rate <= 0 {
		panic("netsim: token bucket rate must be positive")
	}
	if burst <= 0 {
		burst = rate
	}
	return &TokenBucket{
		clock:  clock,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   clock.Now(),
	}
}

// Take requests cost tokens and calls ready (on a fresh event) once they
// are debited. Requests larger than the burst are clamped to it — they
// drain the bucket completely rather than waiting forever. FIFO order is
// strict: a small request behind a large one waits its turn.
func (tb *TokenBucket) Take(cost float64, ready func()) {
	if cost > tb.burst {
		cost = tb.burst
	}
	if cost < 0 {
		cost = 0
	}
	tb.waiters = append(tb.waiters, bucketWaiter{cost: cost, ready: ready})
	tb.drain()
}

// Pending returns the number of requests waiting for tokens.
func (tb *TokenBucket) Pending() int { return len(tb.waiters) }

// Rate returns the bucket's fill rate in bytes/sec.
func (tb *TokenBucket) Rate() float64 { return tb.rate }

// refill accrues tokens for the time elapsed since the last refill.
func (tb *TokenBucket) refill() {
	now := tb.clock.Now()
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
}

// drain serves waiters from the head while tokens last, then arms a single
// wake-up for the moment the head's deficit fills.
func (tb *TokenBucket) drain() {
	tb.refill()
	for len(tb.waiters) > 0 && tb.tokens >= tb.waiters[0].cost {
		w := tb.waiters[0]
		tb.waiters = tb.waiters[1:]
		tb.tokens -= w.cost
		if w.ready != nil {
			tb.clock.Schedule(0, w.ready)
		}
	}
	if len(tb.waiters) == 0 || tb.armed {
		return
	}
	deficit := tb.waiters[0].cost - tb.tokens
	wait := time.Duration(deficit / tb.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	tb.armed = true
	tb.clock.Schedule(wait, func() {
		tb.armed = false
		tb.drain()
	})
}
