package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

const mb = float64(topology.MB)

func newFabric(t *testing.T) (*sim.Engine, *topology.Topology, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{
		Racks:        2,
		NodesPerRack: []int{3, 3},
		DiskBW:       80 * mb,
		NICBW:        125 * mb,
		RackUplinkBW: 250 * mb,
	})
	return e, topo, New(e, topo)
}

func TestSingleFlowDiskLimited(t *testing.T) {
	e, topo, fb := newFabric(t)
	var doneAt time.Duration
	// Local read: only the disk (80 MB/s) constrains; 160 MB takes 2 s.
	fb.StartFlow(topo.ReadPath(0, 0), 160*mb, 0, func(*Flow) { doneAt = e.Now() })
	e.Run()
	want := 2 * time.Second
	if diff := (doneAt - want).Abs(); diff > time.Millisecond {
		t.Fatalf("doneAt = %v, want ~%v", doneAt, want)
	}
}

func TestRemoteReadDiskStillBottleneck(t *testing.T) {
	e, topo, fb := newFabric(t)
	var doneAt time.Duration
	// Remote same-rack read: disk 80 < NIC 125, so still 80 MB/s.
	fb.StartFlow(topo.ReadPath(0, 1), 80*mb, 0, func(*Flow) { doneAt = e.Now() })
	e.Run()
	if diff := (doneAt - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("doneAt = %v, want ~1s", doneAt)
	}
}

func TestFairShareOnSharedDisk(t *testing.T) {
	e, topo, fb := newFabric(t)
	var done []time.Duration
	// Two readers on node0's disk: each gets 40 MB/s; 80 MB each takes 2 s.
	for i := 0; i < 2; i++ {
		dst := topology.NodeID(i + 1)
		fb.StartFlow(topo.ReadPath(0, dst), 80*mb, 0, func(*Flow) {
			done = append(done, e.Now())
		})
	}
	e.Run()
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	for _, d := range done {
		if diff := (d - 2*time.Second).Abs(); diff > time.Millisecond {
			t.Fatalf("doneAt = %v, want ~2s", d)
		}
	}
}

func TestShortFlowFreesBandwidth(t *testing.T) {
	e, topo, fb := newFabric(t)
	var longDone time.Duration
	// Long flow: 120 MB. Short flow: 40 MB. Shared 80 MB/s disk.
	// Phase 1 (both active, 40 MB/s each) ends when short finishes at t=1s,
	// long has 80 MB left; phase 2 at 80 MB/s finishes at t=2s.
	fb.StartFlow(topo.ReadPath(0, 1), 120*mb, 0, func(*Flow) { longDone = e.Now() })
	fb.StartFlow(topo.ReadPath(0, 2), 40*mb, 0, nil)
	e.Run()
	if diff := (longDone - 2*time.Second).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("long flow done at %v, want ~2s", longDone)
	}
}

func TestCrossRackUplinkContention(t *testing.T) {
	e, topo, fb := newFabric(t)
	// 5 cross-rack readers from 5 distinct rack-0 sources to distinct rack-1
	// clients: each source disk allows 80 MB/s but the 250 MB/s rack uplink
	// caps the aggregate; fair share = 50 MB/s each... only 3 nodes per rack,
	// so use 3 sources with 2 flows each: 6 flows, uplink share ~41.7 MB/s,
	// disks allow 40 MB/s per flow (2 per disk) -> disks bind at 40.
	var rates []float64
	var flows []*Flow
	srcs := topo.NodesInRack(0)
	dsts := topo.NodesInRack(1)
	for i := 0; i < 6; i++ {
		f := fb.StartFlow(topo.ReadPath(srcs[i%3], dsts[i%3]), 400*mb, 0, nil)
		flows = append(flows, f)
	}
	for _, f := range flows {
		rates = append(rates, f.Rate())
	}
	for _, r := range rates {
		if math.Abs(r-40*mb) > mb/100 {
			t.Fatalf("rate = %.1f MB/s, want 40 (disk-bound)", r/mb)
		}
	}
	e.Run()
}

func TestUplinkBindsWhenDisksAreFast(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{
		Racks:        2,
		NodesPerRack: []int{3, 3},
		DiskBW:       1000 * mb, // fast disks so the uplink is the bottleneck
		NICBW:        1000 * mb,
		RackUplinkBW: 250 * mb,
	})
	fb := New(e, topo)
	srcs := topo.NodesInRack(0)
	dsts := topo.NodesInRack(1)
	var flows []*Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, fb.StartFlow(topo.ReadPath(srcs[i%3], dsts[(i+1)%3]), 100*mb, 0, nil))
	}
	sum := 0.0
	for _, f := range flows {
		sum += f.Rate()
	}
	if math.Abs(sum-250*mb) > mb {
		t.Fatalf("aggregate cross-rack rate %.1f MB/s, want 250", sum/mb)
	}
	e.Run()
}

func TestPerFlowCap(t *testing.T) {
	e, topo, fb := newFabric(t)
	f := fb.StartFlow(topo.ReadPath(0, 1), 100*mb, 10*mb, nil)
	if math.Abs(f.Rate()-10*mb) > 1 {
		t.Fatalf("capped rate = %.1f MB/s, want 10", f.Rate()/mb)
	}
	var doneAt time.Duration
	f2 := fb.StartFlow(topo.ReadPath(0, 2), 70*mb, 0, func(*Flow) { doneAt = e.Now() })
	// Uncapped flow should get the disk's remaining 70 MB/s.
	if math.Abs(f2.Rate()-70*mb) > mb/100 {
		t.Fatalf("uncapped rate = %.1f MB/s, want 70", f2.Rate()/mb)
	}
	e.Run()
	if diff := (doneAt - time.Second).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("uncapped flow done at %v, want ~1s", doneAt)
	}
}

func TestCancelStopsCallbackAndFreesShare(t *testing.T) {
	e, topo, fb := newFabric(t)
	canceledFired := false
	f1 := fb.StartFlow(topo.ReadPath(0, 1), 800*mb, 0, func(*Flow) { canceledFired = true })
	var doneAt time.Duration
	fb.StartFlow(topo.ReadPath(0, 2), 40*mb, 0, func(*Flow) { doneAt = e.Now() })
	e.Schedule(500*time.Millisecond, func() { fb.Cancel(f1) })
	e.Run()
	if canceledFired {
		t.Fatal("canceled flow's callback fired")
	}
	if !f1.Canceled() {
		t.Fatal("flow not marked canceled")
	}
	// 0.5 s at 40 MB/s = 20 MB done, then 20 MB at 80 MB/s = 0.25 s more.
	want := 750 * time.Millisecond
	if diff := (doneAt - want).Abs(); diff > 2*time.Millisecond {
		t.Fatalf("survivor done at %v, want ~%v", doneAt, want)
	}
	fb.Cancel(f1) // idempotent
}

func TestProgressTracksBytes(t *testing.T) {
	e, topo, fb := newFabric(t)
	f := fb.StartFlow(topo.ReadPath(0, 1), 80*mb, 0, nil)
	e.Schedule(500*time.Millisecond, func() {
		rem := fb.Progress(f)
		if math.Abs(rem-40*mb) > mb/100 {
			t.Errorf("remaining = %.1f MB at 0.5s, want 40", rem/mb)
		}
	})
	e.Run()
	if fb.Progress(f) != 0 || !f.Done() {
		t.Fatal("flow should be drained and done")
	}
}

func TestAccounting(t *testing.T) {
	e, topo, fb := newFabric(t)
	fb.StartFlow(topo.ReadPath(0, 1), 64*mb, 0, nil)
	fb.StartFlow(topo.ReadPath(2, 2), 64*mb, 0, nil)
	e.Run()
	if math.Abs(fb.BytesMoved-128*mb) > 1 {
		t.Fatalf("BytesMoved = %.1f MB, want 128", fb.BytesMoved/mb)
	}
	disk0 := topo.Node(0).Disk
	if math.Abs(fb.LinkBytes(disk0)-64*mb) > 1 {
		t.Fatalf("disk0 bytes = %.1f MB, want 64", fb.LinkBytes(disk0)/mb)
	}
	if fb.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after drain", fb.ActiveFlows())
	}
}

func TestLinkUtilization(t *testing.T) {
	_, topo, fb := newFabric(t)
	fb.StartFlow(topo.ReadPath(0, 1), 100*mb, 0, nil)
	u := fb.LinkUtilization(topo.Node(0).Disk)
	if math.Abs(u-1.0) > 0.01 {
		t.Fatalf("disk utilization = %.2f, want ~1", u)
	}
	if fb.LinkUtilization(topo.Node(2).Disk) != 0 {
		t.Fatal("idle disk should be at 0 utilization")
	}
}

func TestStartFlowValidation(t *testing.T) {
	_, topo, fb := newFabric(t)
	mustPanic(t, func() { fb.StartFlow(nil, 10, 0, nil) })
	mustPanic(t, func() { fb.StartFlow(topo.ReadPath(0, 1), 0, 0, nil) })
	mustPanic(t, func() { fb.StartFlow(topo.ReadPath(0, 1), -5, 0, nil) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// Property: work conservation — N equal flows through one shared disk finish
// in N * (bytes/diskBW) seconds regardless of N.
func TestQuickWorkConservation(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		e := sim.NewEngine()
		topo := topology.New(topology.Config{Racks: 1, NodesPerRack: []int{10}})
		fb := New(e, topo)
		var last time.Duration
		for i := 0; i < n; i++ {
			dst := topology.NodeID((i + 1) % 10)
			fb.StartFlow(topo.ReadPath(0, dst), 80*mb, 0, func(*Flow) {
				if e.Now() > last {
					last = e.Now()
				}
			})
		}
		e.Run()
		want := time.Duration(n) * time.Second
		return (last - want).Abs() < 5*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: no link is ever allocated beyond its capacity.
func TestQuickCapacityRespected(t *testing.T) {
	f := func(pairs []uint8) bool {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{Racks: 3, NodeCount: 9})
		fb := New(e, topo)
		n := topo.NumNodes()
		for _, p := range pairs {
			src := topology.NodeID(int(p) % n)
			dst := topology.NodeID(int(p/16) % n)
			fb.StartFlow(topo.ReadPath(src, dst), 10*mb, 0, nil)
		}
		// Check every link's aggregate right after admission.
		for _, l := range topo.Links {
			used := fb.LinkUtilization(l.ID)
			if used > 1.0001 {
				return false
			}
		}
		e.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: byte accounting matches the sum of flow sizes exactly (within
// float tolerance) once everything drains.
func TestQuickByteAccounting(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{Racks: 2, NodeCount: 6})
		fb := New(e, topo)
		var total float64
		for i, s := range sizes {
			bytes := float64(int(s)+1) * mb
			total += bytes
			src := topology.NodeID(i % 6)
			dst := topology.NodeID((i + 1) % 6)
			fb.StartFlow(topo.ReadPath(src, dst), bytes, 0, nil)
		}
		e.Run()
		return math.Abs(fb.BytesMoved-total) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
