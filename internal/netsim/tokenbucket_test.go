package netsim

import (
	"testing"
	"time"

	"erms/internal/sim"
)

// TestTokenBucketImmediateWithinBurst: a full bucket serves requests up to
// the burst without advancing time.
func TestTokenBucketImmediateWithinBurst(t *testing.T) {
	e := sim.NewEngine()
	tb := NewTokenBucket(e, 100, 1000)
	fired := []int{}
	tb.Take(400, func() { fired = append(fired, 1) })
	tb.Take(600, func() { fired = append(fired, 2) })
	e.RunFor(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("full bucket should serve both instantly in order, got %v", fired)
	}
	if tb.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", tb.Pending())
	}
}

// TestTokenBucketRefillTiming: once drained, the next request proceeds at
// exactly deficit/rate seconds of virtual time.
func TestTokenBucketRefillTiming(t *testing.T) {
	e := sim.NewEngine()
	tb := NewTokenBucket(e, 100, 100) // 100 B/s, 100 B burst
	tb.Take(100, nil)                 // drains the bucket at t=0
	var at time.Duration = -1
	tb.Take(50, func() { at = e.Now() })
	e.RunFor(time.Second)
	if at != 500*time.Millisecond {
		t.Fatalf("50B at 100B/s from empty should fire at 500ms, got %v", at)
	}
}

// TestTokenBucketFIFO: a small request queued behind a large one waits its
// turn even though its own cost is already affordable.
func TestTokenBucketFIFO(t *testing.T) {
	e := sim.NewEngine()
	tb := NewTokenBucket(e, 100, 100)
	tb.Take(100, nil) // drain
	var bigAt, smallAt time.Duration = -1, -1
	tb.Take(100, func() { bigAt = e.Now() })
	tb.Take(1, func() { smallAt = e.Now() })
	e.RunFor(2 * time.Second)
	if bigAt < 0 || smallAt < 0 {
		t.Fatalf("waiters never fired: big=%v small=%v", bigAt, smallAt)
	}
	if smallAt < bigAt {
		t.Fatalf("FIFO violated: small fired at %v before big at %v", smallAt, bigAt)
	}
}

// TestTokenBucketClampsOversizedRequests: a request larger than the burst
// drains the bucket rather than waiting forever.
func TestTokenBucketClampsOversizedRequests(t *testing.T) {
	e := sim.NewEngine()
	tb := NewTokenBucket(e, 100, 100)
	done := false
	tb.Take(1e9, func() { done = true })
	e.RunFor(time.Second)
	if !done {
		t.Fatal("oversized request should be clamped to burst and proceed")
	}
}

// TestTokenBucketDeterminism: two identical schedules drain with identical
// timestamps.
func TestTokenBucketDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine()
		tb := NewTokenBucket(e, 64, 128)
		var stamps []time.Duration
		for i := 0; i < 10; i++ {
			tb.Take(40, func() { stamps = append(stamps, e.Now()) })
		}
		e.RunFor(10 * time.Second)
		return stamps
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("not all waiters fired: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at waiter %d: %v vs %v", i, a[i], b[i])
		}
	}
}
