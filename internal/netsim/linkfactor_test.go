package netsim

import (
	"testing"
	"time"
)

// TestSetLinkFactorSlowsActiveFlow: degrading the disk mid-transfer
// stretches the completion time exactly as the bandwidth math predicts.
func TestSetLinkFactorSlowsActiveFlow(t *testing.T) {
	e, topo, fb := newFabric(t)
	disk := topo.Node(0).Disk
	var doneAt time.Duration
	// Local read at 80 MB/s; 160 MB would take 2 s untouched.
	fb.StartFlow(topo.ReadPath(0, 0), 160*mb, 0, func(*Flow) { doneAt = e.Now() })
	// After 1 s (80 MB moved), halve the disk: the remaining 80 MB runs at
	// 40 MB/s and takes 2 s more — total 3 s.
	e.Schedule(time.Second, func() { fb.SetLinkFactor(disk, 0.5) })
	e.Run()
	want := 3 * time.Second
	if diff := (doneAt - want).Abs(); diff > time.Millisecond {
		t.Fatalf("doneAt = %v, want ~%v", doneAt, want)
	}
	if got := fb.LinkFactor(disk); got != 0.5 {
		t.Fatalf("LinkFactor = %v", got)
	}
}

// TestSetLinkFactorComposesFromNominal: factors replace each other against
// the nominal capacity rather than compounding, and restoring to 1 returns
// the link to its configured bandwidth.
func TestSetLinkFactorComposesFromNominal(t *testing.T) {
	e, topo, fb := newFabric(t)
	disk := topo.Node(0).Disk
	fb.SetLinkFactor(disk, 0.5)
	fb.SetLinkFactor(disk, 0.25) // 0.25 × nominal, NOT 0.25 × 0.5
	fb.SetLinkFactor(disk, 1)

	var doneAt time.Duration
	fb.StartFlow(topo.ReadPath(0, 0), 80*mb, 0, func(*Flow) { doneAt = e.Now() })
	e.Run()
	// Back at the nominal 80 MB/s, 80 MB takes exactly 1 s.
	if diff := (doneAt - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("doneAt after restore = %v, want ~1s", doneAt)
	}
}

// TestSetLinkFactorRebalancesCompetingFlows: slowing one node's NIC frees
// shared uplink bandwidth for a competitor (max-min reallocation happens
// at the factor change, not lazily).
func TestSetLinkFactorRebalancesCompetingFlows(t *testing.T) {
	e, topo, fb := newFabric(t)
	// Two cross-rack reads share the 250 MB/s uplink; each is disk-limited
	// at 80 MB/s, so the uplink is not the bottleneck. Slow reader A's
	// source disk to 10%: A crawls at 8 MB/s, B stays at 80 MB/s.
	diskA := topo.Node(0).Disk
	var doneA, doneB time.Duration
	fb.StartFlow(topo.ReadPath(0, 3), 160*mb, 0, func(*Flow) { doneA = e.Now() })
	fb.StartFlow(topo.ReadPath(1, 4), 160*mb, 0, func(*Flow) { doneB = e.Now() })
	e.Schedule(time.Second, func() { fb.SetLinkFactor(diskA, 0.1) })
	e.Run()
	// B: 160 MB at 80 MB/s = 2 s, unaffected.
	if diff := (doneB - 2*time.Second).Abs(); diff > 10*time.Millisecond {
		t.Fatalf("unaffected flow doneAt = %v, want ~2s", doneB)
	}
	// A: 80 MB in the first second, then 80 MB at 8 MB/s = 10 s more.
	want := 11 * time.Second
	if diff := (doneA - want).Abs(); diff > 50*time.Millisecond {
		t.Fatalf("slowed flow doneAt = %v, want ~%v", doneA, want)
	}
}

// TestSetLinkFactorPanicsOnNonPositive: a zero factor would wedge flows
// forever; the fabric rejects it loudly.
func TestSetLinkFactorPanicsOnNonPositive(t *testing.T) {
	_, topo, fb := newFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 accepted")
		}
	}()
	fb.SetLinkFactor(topo.Node(0).Disk, 0)
}
