// Package netsim is a flow-level network/disk simulator.
//
// Transfers (block reads, replica copies, parity writes) are modeled as
// fluid flows over a set of capacity-limited links. Whenever the flow set
// changes, the fabric recomputes a max-min fair allocation (progressive
// filling, honoring per-flow rate caps) and schedules the next flow
// completion. This captures the contention effects the ERMS paper measures:
// a datanode's disk and NIC saturate as concurrent readers pile onto a hot
// replica, and rack uplinks throttle remote reads.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"erms/internal/metrics"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/trace"
)

// Flow is one in-flight transfer.
type Flow struct {
	id        int64
	path      []topology.LinkID
	remaining float64 // bytes left
	rate      float64 // bytes/s under the current allocation
	maxRate   float64 // per-flow cap; 0 means unlimited
	start     time.Duration
	onDone    func(f *Flow)
	fabric    *Fabric
	done      bool
	canceled  bool
	span      trace.SpanID // "net.flow" span, 0 when tracing is off
}

// Span returns the flow's trace span ID (0 when tracing is disabled).
func (f *Flow) Span() trace.SpanID { return f.span }

// ID returns the flow's unique identifier.
func (f *Flow) ID() int64 { return f.id }

// Rate returns the currently allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left as of the last allocation instant; call
// Fabric.Progress for an up-to-the-instant value.
func (f *Flow) Remaining() float64 { return f.remaining }

// Start returns the virtual time the flow was admitted.
func (f *Flow) Start() time.Duration { return f.start }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Canceled reports whether the flow was canceled before completion.
func (f *Flow) Canceled() bool { return f.canceled }

// Fabric owns the link table and the active flow set.
type Fabric struct {
	clock sim.Clock
	links []topology.Link
	// flows holds the active flows in ascending id order: ids are assigned
	// monotonically on admission and removal preserves order, so the slice
	// is always sorted and every order-sensitive loop can range over it
	// directly instead of sorting a map's keys.
	flows []*Flow
	// linkFlows[l] holds the active flows whose path crosses link l, in
	// ascending id order — the per-link index that makes utilization
	// queries proportional to the link's own population.
	linkFlows [][]*Flow
	nextID    int64
	lastCalc  time.Duration
	nextDone  *sim.Event

	// Persistent scratch for computeRates, indexed by LinkID; reused
	// across allocations so the hot path stays allocation-free.
	crResidual []float64
	crActive   []int
	crSeen     []bool
	crTouched  []topology.LinkID
	crFrozen   []bool

	// BytesMoved accumulates total bytes delivered, for network-overhead
	// accounting in experiments.
	BytesMoved float64
	// bytesPerLink accumulates delivered bytes per link.
	bytesPerLink []float64
	// baseCap remembers each link's nominal capacity so degradation
	// factors compose from the original value, not from each other.
	baseCap []float64
	// factor is the current degradation multiplier per link (1 = healthy).
	factor []float64
	// tracer records a "net.flow" span per transfer; nil disables tracing.
	tracer *trace.Tracer
}

// SetTracer installs a span tracer: each admitted flow records a
// "net.flow" span under the ambient span, closed when the last byte lands
// (or marked canceled on Cancel). Nil disables tracing.
func (fb *Fabric) SetTracer(tr *trace.Tracer) { fb.tracer = tr }

// RegisterMetrics registers the fabric's transfer accounting into a
// metrics registry.
func (fb *Fabric) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("net_bytes_moved_total", func() float64 { return fb.BytesMoved })
	r.GaugeFunc("net_active_flows", func() float64 { return float64(len(fb.flows)) })
	r.GaugeFunc("net_flows_admitted_total", func() float64 { return float64(fb.nextID) })
}

// New creates a fabric over the topology's link table.
func New(clock sim.Clock, topo *topology.Topology) *Fabric {
	links := make([]topology.Link, len(topo.Links))
	copy(links, topo.Links)
	base := make([]float64, len(links))
	factor := make([]float64, len(links))
	for i, l := range links {
		base[i] = l.Capacity
		factor[i] = 1
	}
	return &Fabric{
		clock:        clock,
		links:        links,
		linkFlows:    make([][]*Flow, len(links)),
		bytesPerLink: make([]float64, len(links)),
		baseCap:      base,
		factor:       factor,
		crResidual:   make([]float64, len(links)),
		crActive:     make([]int, len(links)),
		crSeen:       make([]bool, len(links)),
	}
}

// SetLinkFactor scales link id's capacity to factor × its nominal value —
// the chaos harness's slow-disk / slow-NIC / congested-uplink fault.
// In-flight flows are settled at their old rates and re-fair-shared under
// the new capacity. Factor 1 restores the link; factors compose from the
// nominal capacity, not the current one. Panics on factor <= 0 (a dead
// link is a partition or crash, not a slow link).
func (fb *Fabric) SetLinkFactor(id topology.LinkID, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("netsim: link factor %v must be positive", factor))
	}
	if fb.factor[id] == factor {
		return
	}
	fb.settle()
	fb.factor[id] = factor
	fb.links[id].Capacity = fb.baseCap[id] * factor
	fb.reallocate()
}

// LinkFactor returns the current degradation multiplier for link id.
func (fb *Fabric) LinkFactor(id topology.LinkID) float64 { return fb.factor[id] }

// ActiveFlows returns the number of in-flight flows.
func (fb *Fabric) ActiveFlows() int { return len(fb.flows) }

// LinkBytes returns the total bytes that have crossed link id.
func (fb *Fabric) LinkBytes(id topology.LinkID) float64 { return fb.bytesPerLink[id] }

// LinkUtilization returns the instantaneous utilization (allocated rate /
// capacity) of link id. The per-link index keeps this proportional to the
// link's own flow population; summation stays in flow-id order, so the
// float arithmetic matches a global ordered scan bit for bit.
func (fb *Fabric) LinkUtilization(id topology.LinkID) float64 {
	var used float64
	for _, f := range fb.linkFlows[id] {
		used += f.rate
	}
	c := fb.links[id].Capacity
	if c <= 0 {
		return 0
	}
	return used / c
}

// StartFlow admits a transfer of bytes over path. maxRate of 0 means no
// per-flow cap. onDone fires (in a fresh event) when the last byte lands;
// it receives the completed flow. StartFlow panics on an empty path or
// non-positive size, which indicate modeling bugs.
func (fb *Fabric) StartFlow(path []topology.LinkID, bytes float64, maxRate float64, onDone func(f *Flow)) *Flow {
	if len(path) == 0 {
		panic("netsim: empty flow path")
	}
	if bytes <= 0 {
		panic(fmt.Sprintf("netsim: flow size %v must be positive", bytes))
	}
	fb.settle()
	f := &Flow{
		id:        fb.nextID,
		path:      append([]topology.LinkID(nil), path...),
		remaining: bytes,
		maxRate:   maxRate,
		start:     fb.clock.Now(),
		onDone:    onDone,
		fabric:    fb,
	}
	fb.nextID++
	fb.flows = append(fb.flows, f) // ids are monotonic, so append keeps id order
	for _, l := range f.path {
		lf := fb.linkFlows[l]
		if n := len(lf); n > 0 && lf[n-1] == f {
			continue // a path may revisit a link; index it once
		}
		fb.linkFlows[l] = append(lf, f)
	}
	if tr := fb.tracer; tr.Enabled() {
		f.span = tr.Begin("net.flow", tr.Current())
		tr.SetAttrInt(f.span, "bytes", int64(bytes))
	}
	fb.reallocate()
	return f
}

// Cancel aborts an in-flight flow; its completion callback never fires.
// Canceling a finished or already-canceled flow is a no-op.
func (fb *Fabric) Cancel(f *Flow) {
	if f == nil || f.done || f.canceled {
		return
	}
	fb.settle()
	f.canceled = true
	fb.removeFlow(f)
	fb.tracer.SetAttr(f.span, "canceled", "true")
	fb.tracer.End(f.span)
	fb.reallocate()
}

// removeFlow drops f from the global flow slice and every per-link index,
// preserving ascending id order in each.
func (fb *Fabric) removeFlow(f *Flow) {
	fb.flows = deleteByID(fb.flows, f.id)
	for _, l := range f.path {
		fb.linkFlows[l] = deleteByID(fb.linkFlows[l], f.id)
	}
}

// deleteByID removes the flow with the given id from an id-sorted slice,
// keeping order. Missing ids are a no-op (a path that revisits a link is
// indexed once but visited twice on removal).
func deleteByID(s []*Flow, id int64) []*Flow {
	i := sort.Search(len(s), func(i int) bool { return s[i].id >= id })
	if i == len(s) || s[i].id != id {
		return s
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	return s[:len(s)-1]
}

// Progress returns the bytes remaining for f right now.
func (fb *Fabric) Progress(f *Flow) float64 {
	if f.done {
		return 0
	}
	elapsed := (fb.clock.Now() - fb.lastCalc).Seconds()
	rem := f.remaining - f.rate*elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ordered returns the active flows in ascending id order. The flow slice
// maintains that invariant, so this is a view, not a sort; callers must not
// mutate the returned slice.
func (fb *Fabric) ordered() []*Flow { return fb.flows }

// settle advances every active flow's remaining bytes to the current
// instant, attributing the moved bytes to accounting.
func (fb *Fabric) settle() {
	now := fb.clock.Now()
	elapsed := (now - fb.lastCalc).Seconds()
	if elapsed > 0 {
		for _, f := range fb.ordered() {
			moved := f.rate * elapsed
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			fb.BytesMoved += moved
			for _, l := range f.path {
				fb.bytesPerLink[l] += moved
			}
		}
	}
	fb.lastCalc = now
}

// reallocate recomputes the max-min fair rates and schedules the next
// completion event.
func (fb *Fabric) reallocate() {
	if fb.nextDone != nil {
		fb.clock.Cancel(fb.nextDone)
		fb.nextDone = nil
	}
	if len(fb.flows) == 0 {
		return
	}
	fb.computeRates()

	// Next completion: the flow with the smallest remaining/rate.
	var soonest *Flow
	var eta float64 = math.Inf(1)
	for _, f := range fb.ordered() {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < eta {
			eta = t
			soonest = f
		}
	}
	if soonest == nil {
		// All flows starved (zero-capacity links): leave them pending; a
		// later topology change would need to call reallocate again. This
		// should not happen with sane configs.
		return
	}
	// Round the ETA *up* to the clock's nanosecond granularity. Rounding
	// down would fire the completion event a hair early, find bytes still
	// remaining, and reschedule at the same instant forever.
	delay := time.Duration(math.Ceil(eta * 1e9))
	if delay < 0 {
		delay = 0
	}
	fb.nextDone = fb.clock.Schedule(delay, fb.completeDue)
}

// completeDue fires when the earliest flow(s) finish: it settles progress,
// completes every flow that has (numerically) drained, and reallocates.
func (fb *Fabric) completeDue() {
	fb.nextDone = nil
	fb.settle()
	var finished []*Flow // in id order, so completion callbacks are too
	for _, f := range fb.ordered() {
		// A flow is done when what remains is less than it can move in one
		// clock tick (1 ns) — the clock cannot resolve anything smaller —
		// plus a fixed epsilon for float rounding.
		epsilon := 1e-6 + f.rate*2e-9
		if f.remaining <= epsilon {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		f.remaining = 0
		f.done = true
		fb.removeFlow(f)
		fb.tracer.End(f.span)
	}
	fb.reallocate()
	for _, f := range finished {
		if cb := f.onDone; cb != nil {
			f.onDone = nil
			cb(f)
		}
	}
}

// computeRates runs progressive filling: repeatedly find the tightest
// constraint (a link's equal share among its unfrozen flows, or a flow's own
// cap), freeze the implicated flows at that rate, and continue until every
// flow is frozen.
//
// Link state lives in persistent dense arrays indexed by LinkID (plus a
// sorted touched-link list), and frozen is positional over the id-ordered
// flow slice, so the hot path allocates nothing — while every loop visits
// links and flows in exactly the order the original map-based version did,
// keeping the float arithmetic bit-identical.
func (fb *Fabric) computeRates() {
	flows := fb.flows // ascending id: fixed visit order keeps the float math reproducible
	residual := fb.crResidual
	nActive := fb.crActive
	seen := fb.crSeen
	touched := fb.crTouched[:0]
	if cap(fb.crFrozen) < len(flows) {
		fb.crFrozen = make([]bool, len(flows))
	}
	frozen := fb.crFrozen[:len(flows)]
	for i := range frozen {
		frozen[i] = false
	}
	for _, f := range flows {
		f.rate = 0
		for _, l := range f.path {
			if !seen[l] {
				seen[l] = true
				residual[l] = fb.links[l].Capacity
				nActive[l] = 0
				touched = append(touched, l)
			}
			nActive[l]++
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	remaining := len(flows)
	for remaining > 0 {
		// Tightest link share among links with unfrozen flows.
		share := math.Inf(1)
		for _, id := range touched {
			if nActive[id] > 0 {
				s := residual[id] / float64(nActive[id])
				if s < share {
					share = s
				}
			}
		}
		// A flow cap can bind before the link share does.
		capBind := math.Inf(1)
		for i, f := range flows {
			if frozen[i] || f.maxRate <= 0 {
				continue
			}
			if f.maxRate < capBind {
				capBind = f.maxRate
			}
		}
		rate := share
		capLimited := false
		if capBind < share {
			rate = capBind
			capLimited = true
		}
		if math.IsInf(rate, 1) {
			// No constraints at all (flows on infinite links with no caps):
			// should not happen; freeze at a huge rate to guarantee progress.
			rate = math.MaxFloat64 / 4
		}
		// Freeze the binding flows.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			bind := false
			if capLimited {
				bind = f.maxRate > 0 && f.maxRate <= rate
			} else {
				for _, l := range f.path {
					if residual[l]/float64(nActive[l]) <= rate+1e-12 {
						bind = true
						break
					}
				}
				if !bind && f.maxRate > 0 && f.maxRate <= rate {
					bind = true
				}
			}
			if !bind {
				continue
			}
			r := rate
			if f.maxRate > 0 && f.maxRate < r {
				r = f.maxRate
			}
			f.rate = r
			frozen[i] = true
			remaining--
			for _, l := range f.path {
				residual[l] -= r
				if residual[l] < 0 {
					residual[l] = 0
				}
				nActive[l]--
			}
		}
	}
	for _, id := range touched {
		seen[id] = false
	}
	fb.crTouched = touched[:0]
}
