package workload

import (
	"time"

	"erms/internal/hdfs"
	"erms/internal/mapred"
	"erms/internal/sim"
	"erms/internal/topology"
)

// Preload creates the trace's files in the cluster at their creation times
// (files with CreateAt == 0 exist before the replay starts). Files are
// written by a deterministic writer derived from their index, spreading
// first replicas over the cluster. Replication uses the cluster default.
func Preload(engine *sim.Engine, h *hdfs.Cluster, t *Trace) {
	for i, f := range t.Files {
		f := f
		writer := topology.NodeID(i % h.NumDatanodes())
		create := func() {
			// Ignore duplicate errors: a re-run over the same cluster keeps
			// the original file.
			_, _ = h.CreateFile(f.Path, f.Size, 0, writer)
		}
		if f.CreateAt <= 0 {
			create()
		} else {
			engine.At(f.CreateAt, create)
		}
	}
}

// ReplayMapReduce submits the trace's jobs to the MapReduce runtime at
// their trace times. onDone (optional) observes each finished job.
func ReplayMapReduce(engine *sim.Engine, mr *mapred.Cluster, t *Trace, onDone func(*mapred.Job)) {
	if onDone != nil {
		mr.OnJobDone(onDone)
	}
	for _, js := range t.Jobs {
		js := js
		engine.At(js.Submit, func() {
			j := &mapred.Job{
				Name:         js.Name,
				File:         js.File,
				ComputePerMB: js.Compute,
			}
			// Missing input (file created later than this access due to a
			// hand-edited trace) is skipped rather than fatal.
			_ = mr.Submit(j)
		})
	}
}

// ReplayReads issues the trace's jobs as direct whole-file client reads
// (no MapReduce layer), as the paper does for the system-metric
// experiments ("we directly read data from HDFS instead of by Map/Reduce
// framework"). onDone observes each completed read.
func ReplayReads(engine *sim.Engine, h *hdfs.Cluster, t *Trace, onDone func(*hdfs.ReadResult)) {
	n := h.NumDatanodes()
	for _, js := range t.Jobs {
		js := js
		engine.At(js.Submit, func() {
			client := topology.NodeID(js.Client % n)
			h.ReadFile(client, js.File, onDone)
		})
	}
}

// Horizon returns a virtual-time horizon safely beyond the trace end, for
// RunUntil calls (trace duration plus slack for stragglers).
func (t *Trace) Horizon(slack time.Duration) time.Duration {
	return t.Duration + slack
}
