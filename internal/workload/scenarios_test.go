package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"erms/internal/topology"
)

// TestScenarioGoldenDeterminism: every scenario generator must be a pure
// function of its seed — same seed, twice in-process, byte-identical JSON
// (the swimgen golden property, extended to the scenario suite). Different
// seeds must differ, guarding against a generator that ignores its seed.
func TestScenarioGoldenDeterminism(t *testing.T) {
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			render := func(seed int64) []byte {
				tr, err := SynthesizeScenario(name, seed, time.Hour)
				if err != nil {
					t.Fatalf("SynthesizeScenario(%q): %v", name, err)
				}
				var buf bytes.Buffer
				if err := tr.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := render(7), render(7)
			if !bytes.Equal(a, b) {
				t.Fatalf("scenario %q: same seed produced different traces", name)
			}
			if bytes.Equal(a, render(8)) {
				t.Fatalf("scenario %q: different seeds produced identical traces", name)
			}
		})
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if _, err := SynthesizeScenario("nope", 1, time.Hour); err == nil {
		t.Fatal("expected error for unknown scenario name")
	}
}

// TestScenarioTenantShape: every job carries a tenant tag, files live under
// per-tenant prefixes, and the configured arrival shares are roughly
// honored (ads should dominate batch).
func TestScenarioTenantShape(t *testing.T) {
	tr := SynthesizeMultiTenant(TenantConfig{Seed: 3, Duration: 2 * time.Hour})
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs synthesized")
	}
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		if j.Tenant == "" {
			t.Fatalf("job %s has no tenant tag", j.Name)
		}
		if !strings.HasPrefix(j.File, "/tenant/"+j.Tenant+"/") {
			t.Fatalf("job %s reads %s outside its tenant's namespace", j.Name, j.File)
		}
		counts[j.Tenant]++
	}
	if counts["ads"] <= counts["batch"] {
		t.Fatalf("arrival shares not honored: ads=%d batch=%d", counts["ads"], counts["batch"])
	}
}

// TestScenarioFlashCrowdShape: the viral file exists from t=0, no job reads
// it before the spike, and a dense crowd reads it after.
func TestScenarioFlashCrowdShape(t *testing.T) {
	cfg := FlashConfig{Seed: 5, Duration: 2 * time.Hour}
	cfg.applyDefaults()
	tr := SynthesizeFlashCrowd(cfg)
	found := false
	for _, f := range tr.Files {
		if f.Path == ViralPath {
			found = true
			if f.CreateAt != 0 {
				t.Fatalf("viral file must exist from t=0, created at %v", f.CreateAt)
			}
		}
	}
	if !found {
		t.Fatalf("trace has no %s", ViralPath)
	}
	viral := 0
	for _, j := range tr.Jobs {
		if j.File != ViralPath {
			continue
		}
		viral++
		if j.Submit < cfg.SpikeAt {
			t.Fatalf("viral read at %v before spike at %v", j.Submit, cfg.SpikeAt)
		}
	}
	if viral < 100 {
		t.Fatalf("flash crowd too thin: %d viral reads", viral)
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatalf("jobs out of order at %d", i)
		}
	}
}

// TestScenarioPartialShape: every job is a ranged read inside its file, and
// head slices are hotter than tail slices.
func TestScenarioPartialShape(t *testing.T) {
	cfg := PartialConfig{Seed: 9, Duration: 2 * time.Hour}
	cfg.applyDefaults()
	tr := SynthesizePartialRead(cfg)
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs synthesized")
	}
	head, tail := 0, 0
	for _, j := range tr.Jobs {
		if j.Length != cfg.ReadLength {
			t.Fatalf("job %s length %v, want %v", j.Name, j.Length, cfg.ReadLength)
		}
		if j.Offset < 0 || j.Offset+j.Length > cfg.FileSize {
			t.Fatalf("job %s range [%v,%v) outside file of %v bytes",
				j.Name, j.Offset, j.Offset+j.Length, cfg.FileSize)
		}
		if j.Offset < cfg.FileSize/2 {
			head++
		} else {
			tail++
		}
	}
	if head <= tail {
		t.Fatalf("read positions not head-skewed: head=%d tail=%d", head, tail)
	}
}

// TestScenarioDiurnalShape: the diurnal trace's arrival rate must actually
// swing — peak-phase thirds see far more jobs than trough phases.
func TestScenarioDiurnalShape(t *testing.T) {
	d := 2 * time.Hour
	tr := SynthesizeDiurnal(11, d)
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs synthesized")
	}
	// One full cycle spans d/3; bucket arrivals into sixths (half-cycles).
	buckets := make([]int, 6)
	for _, j := range tr.Jobs {
		i := int(float64(j.Submit) / float64(d) * 6)
		if i >= 6 {
			i = 5
		}
		buckets[i]++
	}
	max, min := buckets[0], buckets[0]
	for _, b := range buckets {
		if b > max {
			max = b
		}
		if b < min {
			min = b
		}
	}
	if min == 0 {
		min = 1
	}
	if float64(max)/float64(min) < 2 {
		t.Fatalf("diurnal swing too flat: buckets %v", buckets)
	}
}

// TestScenarioCSVRoundTrip: scenario traces survive the widened CSV format
// with tenant and range fields intact, and plain traces keep 5-field rows.
func TestScenarioCSVRoundTrip(t *testing.T) {
	tr := SynthesizeMultiTenant(TenantConfig{Seed: 2, Duration: 30 * time.Minute})
	tr.Jobs[0].Offset = 64 * topology.MB
	tr.Jobs[0].Length = 16 * topology.MB
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tenant,offset_mb,length_mb") {
		t.Fatal("scenario CSV missing extended JOBS header")
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count changed: %d vs %d", len(tr.Jobs), len(back.Jobs))
	}
	for i := range tr.Jobs {
		if back.Jobs[i].Tenant != tr.Jobs[i].Tenant ||
			back.Jobs[i].Offset != tr.Jobs[i].Offset ||
			back.Jobs[i].Length != tr.Jobs[i].Length {
			t.Fatalf("job %d scenario fields changed: %+v vs %+v", i, tr.Jobs[i], back.Jobs[i])
		}
	}
	plain := Synthesize(Config{Seed: 1, Duration: 20 * time.Minute, NumFiles: 6})
	buf.Reset()
	if err := plain.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "tenant") {
		t.Fatal("plain trace should keep the classic 5-field JOBS layout")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: got %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single dominant share: got %v, want 0.25", got)
	}
	if got := JainFairness(nil); got != 1 {
		t.Fatalf("empty shares: got %v, want 1", got)
	}
}
