package workload

import (
	"testing"
	"time"
)

func BenchmarkSynthesize(b *testing.B) {
	cfg := Config{Seed: 1, Duration: 6 * time.Hour, NumFiles: 60}
	for i := 0; i < b.N; i++ {
		Synthesize(cfg)
	}
}

func BenchmarkAccessCounts(b *testing.B) {
	tr := Synthesize(Config{Seed: 1, Duration: 6 * time.Hour, NumFiles: 60})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AccessCounts()
	}
}
