package workload

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/mapred"
	"erms/internal/sim"
	"erms/internal/topology"
)

func small() Config {
	return Config{
		Seed:             42,
		Duration:         time.Hour,
		NumFiles:         20,
		MeanInterarrival: 20 * time.Second,
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(small())
	b := Synthesize(small())
	if len(a.Jobs) != len(b.Jobs) || len(a.Files) != len(b.Files) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c := small()
	c.Seed = 43
	if x := Synthesize(c); len(x.Jobs) == len(a.Jobs) {
		same := true
		for i := range x.Jobs {
			if x.Jobs[i] != a.Jobs[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	tr := Synthesize(small())
	if len(tr.Files) != 20 {
		t.Fatalf("files = %d", len(tr.Files))
	}
	if len(tr.Jobs) < 50 { // ~180 expected at 20s inter-arrival over 1h
		t.Fatalf("jobs = %d, want >= 50", len(tr.Jobs))
	}
	// Jobs sorted by submit time, within the duration, referencing created
	// files.
	created := map[string]time.Duration{}
	for _, f := range tr.Files {
		created[f.Path] = f.CreateAt
		if f.Size < 64*topology.MB || f.Size > 4*topology.GB {
			t.Fatalf("file size %v out of bounds", f.Size)
		}
	}
	for i, j := range tr.Jobs {
		if j.Submit >= tr.Duration || j.Submit < 0 {
			t.Fatalf("job %d at %v outside trace", i, j.Submit)
		}
		if i > 0 && j.Submit < tr.Jobs[i-1].Submit {
			t.Fatal("jobs out of order")
		}
		at, ok := created[j.File]
		if !ok {
			t.Fatalf("job references unknown file %q", j.File)
		}
		if at > j.Submit {
			t.Fatalf("job %d accesses %q before creation", i, j.File)
		}
	}
}

func TestHeavyTailedPopularity(t *testing.T) {
	cfg := small()
	cfg.Duration = 4 * time.Hour
	tr := Synthesize(cfg)
	skew := tr.GiniSkew()
	if skew < 0.3 {
		t.Fatalf("workload not heavy-tailed: gini = %.2f", skew)
	}
	counts := tr.AccessCounts()
	if counts[0].Count <= counts[len(counts)-1].Count {
		t.Fatal("counts not descending")
	}
}

func TestFreshFilesGetHot(t *testing.T) {
	// A file created mid-trace should receive a burst of accesses soon
	// after creation relative to long after: popularity decays with age.
	cfg := Config{Seed: 7, Duration: 6 * time.Hour, NumFiles: 30,
		MeanInterarrival: 10 * time.Second, PopularityHalfLife: 30 * time.Minute}
	tr := Synthesize(cfg)
	early, late := 0, 0
	for _, f := range tr.Files {
		if f.CreateAt == 0 {
			continue
		}
		for _, j := range tr.Jobs {
			if j.File != f.Path {
				continue
			}
			age := j.Submit - f.CreateAt
			if age < time.Hour {
				early++
			} else if age > 2*time.Hour {
				late++
			}
		}
	}
	if early <= late {
		t.Fatalf("popularity did not decay: early=%d late=%d", early, late)
	}
}

func TestAccessCDFMonotone(t *testing.T) {
	tr := Synthesize(small())
	xs, ps := tr.AccessCDF()
	if len(xs) == 0 {
		t.Fatal("empty CDF")
	}
	if !sort.Float64sAreSorted(xs) || !sort.Float64sAreSorted(ps) {
		t.Fatal("CDF not monotone")
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("CDF must end at 1, got %v", ps[len(ps)-1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Synthesize(small())
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) || len(back.Files) != len(tr.Files) {
		t.Fatal("round trip lost records")
	}
	if back.Jobs[0] != tr.Jobs[0] || back.Files[0] != tr.Files[0] {
		t.Fatal("round trip corrupted records")
	}
	if _, err := ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPreloadAndReplayMapReduce(t *testing.T) {
	cfg := Config{Seed: 5, Duration: 30 * time.Minute, NumFiles: 8,
		MeanInterarrival: time.Minute, MaxFileSize: 256 * topology.MB}
	tr := Synthesize(cfg)
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	mr := mapred.New(h, 2, mapred.NewFIFO())
	Preload(e, h, tr)
	var doneJobs []*mapred.Job
	ReplayMapReduce(e, mr, tr, func(j *mapred.Job) { doneJobs = append(doneJobs, j) })
	e.RunUntil(tr.Horizon(time.Hour))
	if h.Files() != len(tr.Files) {
		t.Fatalf("files preloaded = %d, want %d", h.Files(), len(tr.Files))
	}
	if len(doneJobs) != len(tr.Jobs) {
		t.Fatalf("jobs finished = %d of %d", len(doneJobs), len(tr.Jobs))
	}
	for _, j := range doneJobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
	}
}

func TestReplayDirectReads(t *testing.T) {
	cfg := Config{Seed: 9, Duration: 20 * time.Minute, NumFiles: 5,
		MeanInterarrival: time.Minute, MaxFileSize: 128 * topology.MB}
	tr := Synthesize(cfg)
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	Preload(e, h, tr)
	var done int
	ReplayReads(e, h, tr, func(r *hdfs.ReadResult) {
		if r.Err != nil {
			t.Errorf("read %s: %v", r.Path, r.Err)
		}
		done++
	})
	e.RunUntil(tr.Horizon(time.Hour))
	if done != len(tr.Jobs) {
		t.Fatalf("reads finished = %d of %d", done, len(tr.Jobs))
	}
}

func TestDiurnalModulationShapesArrivals(t *testing.T) {
	cfg := Config{
		Seed:             21,
		Duration:         4 * time.Hour,
		NumFiles:         10,
		MeanInterarrival: 5 * time.Second,
		DiurnalAmplitude: 0.9,
		DiurnalPeriod:    4 * time.Hour, // one full cycle over the trace
	}
	tr := Synthesize(cfg)
	// Peak quarter (centered on P/4) vs trough quarter (centered on 3P/4).
	peak, trough := 0, 0
	for _, j := range tr.Jobs {
		frac := float64(j.Submit) / float64(cfg.DiurnalPeriod)
		switch {
		case frac >= 0.125 && frac < 0.375:
			peak++
		case frac >= 0.625 && frac < 0.875:
			trough++
		}
	}
	if peak < 3*trough {
		t.Fatalf("diurnal shape weak: peak=%d trough=%d", peak, trough)
	}
	// Flat traces stay flat.
	flat := Synthesize(Config{Seed: 21, Duration: 4 * time.Hour, NumFiles: 10,
		MeanInterarrival: 5 * time.Second})
	p2, t2 := 0, 0
	for _, j := range flat.Jobs {
		frac := j.Submit.Hours() / 4
		switch {
		case frac >= 0.125 && frac < 0.375:
			p2++
		case frac >= 0.625 && frac < 0.875:
			t2++
		}
	}
	if p2 > 2*t2 || t2 > 2*p2 {
		t.Fatalf("flat trace skewed: %d vs %d", p2, t2)
	}
}
