package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := Synthesize(small())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Files) != len(tr.Files) || len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("lost records: %d/%d files, %d/%d jobs",
			len(back.Files), len(tr.Files), len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Files {
		a, b := tr.Files[i], back.Files[i]
		if a.Path != b.Path || a.Size != b.Size || a.Rank != b.Rank {
			t.Fatalf("file %d: %+v != %+v", i, a, b)
		}
		if d := a.CreateAt - b.CreateAt; d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("file %d create time drifted %v", i, d)
		}
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.Name != b.Name || a.File != b.File || a.Client != b.Client || a.Compute != b.Compute {
			t.Fatalf("job %d: %+v != %+v", i, a, b)
		}
		if d := a.Submit - b.Submit; d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("job %d submit drifted %v", i, d)
		}
	}
	if back.Duration < tr.Jobs[len(tr.Jobs)-1].Submit {
		t.Fatal("inferred duration before last job")
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"path,size\n/x,3\n",                   // data before section marker
		"FILES\nheader\n/x,notanumber,0,1\n",  // bad number
		"JOBS\nheader\nj,1.0,/x,zero,8\n",     // bad client
		"FILES\npath,size_mb,create_at_s\n\n", // empty trace (header only)
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestCSVSectionsReadableByHumans(t *testing.T) {
	tr := Synthesize(Config{Seed: 1, Duration: 10 * time.Minute, NumFiles: 3,
		MeanInterarrival: time.Minute})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "FILES\n") || !strings.Contains(s, "\nJOBS\n") {
		t.Fatalf("sections missing:\n%s", s)
	}
	if !strings.Contains(s, "path,size_mb,create_at_s,rank") {
		t.Fatal("files header missing")
	}
}

func TestCSVReplayable(t *testing.T) {
	tr := Synthesize(Config{Seed: 4, Duration: 15 * time.Minute, NumFiles: 4,
		MeanInterarrival: time.Minute, MaxFileSize: 128 * 1 << 20})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The re-read trace must replay cleanly.
	if back.GiniSkew() != tr.GiniSkew() {
		t.Fatal("access statistics changed through CSV")
	}
}
