package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"erms/internal/topology"
)

// CSV layout: two sections, each introduced by a one-cell marker row
// ("FILES" / "JOBS") followed by a header row — easy to inspect in a
// spreadsheet and to generate from real SWIM trace tooling.
//
//	FILES
//	path,size_mb,create_at_s,rank
//	/data/f000,256,0,4
//	JOBS
//	name,submit_s,file,client,compute_ms_per_mb
//	job0001,12.5,/data/f000,3,8
//
// Scenario traces (tenant tags or ranged reads) extend JOBS rows with three
// more columns — tenant,offset_mb,length_mb — and the decoder accepts either
// width, so plain SWIM-style traces stay readable by old tooling:
//
//	JOBS
//	name,submit_s,file,client,compute_ms_per_mb,tenant,offset_mb,length_mb
//	job0001,12.5,/data/f000,3,8,ads,64,16

// WriteCSV serializes the trace in the sectioned CSV layout.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(rec ...string) {
		// csv.Writer defers errors to Flush; collect there.
		_ = cw.Write(rec)
	}
	write("FILES")
	write("path", "size_mb", "create_at_s", "rank")
	for _, f := range t.Files {
		write(f.Path,
			strconv.FormatFloat(f.Size/topology.MB, 'f', -1, 64),
			strconv.FormatFloat(f.CreateAt.Seconds(), 'f', 3, 64),
			strconv.Itoa(f.Rank))
	}
	write("JOBS")
	// Scenario fields widen every row (uniform width keeps spreadsheets
	// sane); plain traces keep the classic 5-column layout.
	scenario := false
	for _, j := range t.Jobs {
		if j.Tenant != "" || j.Offset != 0 || j.Length != 0 {
			scenario = true
			break
		}
	}
	if scenario {
		write("name", "submit_s", "file", "client", "compute_ms_per_mb", "tenant", "offset_mb", "length_mb")
	} else {
		write("name", "submit_s", "file", "client", "compute_ms_per_mb")
	}
	for _, j := range t.Jobs {
		rec := []string{j.Name,
			strconv.FormatFloat(j.Submit.Seconds(), 'f', 3, 64),
			j.File,
			strconv.Itoa(j.Client),
			strconv.FormatFloat(float64(j.Compute)/float64(time.Millisecond), 'f', -1, 64)}
		if scenario {
			rec = append(rec, j.Tenant,
				strconv.FormatFloat(j.Offset/topology.MB, 'f', -1, 64),
				strconv.FormatFloat(j.Length/topology.MB, 'f', -1, 64))
		}
		write(rec...)
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the sectioned CSV layout back into a Trace. Duration is
// inferred as the last event time rounded up to the next minute.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	tr := &Trace{}
	section := ""
	headerSeen := false
	var last time.Duration
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv: %w", err)
		}
		if len(rec) == 1 && (rec[0] == "FILES" || rec[0] == "JOBS") {
			section = rec[0]
			headerSeen = false
			continue
		}
		if !headerSeen {
			headerSeen = true // skip the header row
			continue
		}
		switch section {
		case "FILES":
			if len(rec) != 4 {
				return nil, fmt.Errorf("workload: csv: FILES row needs 4 fields, got %d", len(rec))
			}
			sizeMB, err1 := strconv.ParseFloat(rec[1], 64)
			createS, err2 := strconv.ParseFloat(rec[2], 64)
			rank, err3 := strconv.Atoi(rec[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("workload: csv: bad FILES row %v", rec)
			}
			f := FileSpec{
				Path:     rec[0],
				Size:     sizeMB * topology.MB,
				CreateAt: time.Duration(createS * float64(time.Second)),
				Rank:     rank,
			}
			tr.Files = append(tr.Files, f)
			if f.CreateAt > last {
				last = f.CreateAt
			}
		case "JOBS":
			if len(rec) != 5 && len(rec) != 8 {
				return nil, fmt.Errorf("workload: csv: JOBS row needs 5 or 8 fields, got %d", len(rec))
			}
			submitS, err1 := strconv.ParseFloat(rec[1], 64)
			client, err2 := strconv.Atoi(rec[3])
			computeMS, err3 := strconv.ParseFloat(rec[4], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("workload: csv: bad JOBS row %v", rec)
			}
			j := JobSpec{
				Name:    rec[0],
				Submit:  time.Duration(submitS * float64(time.Second)),
				File:    rec[2],
				Client:  client,
				Compute: time.Duration(computeMS * float64(time.Millisecond)),
			}
			if len(rec) == 8 {
				offMB, err4 := strconv.ParseFloat(rec[6], 64)
				lenMB, err5 := strconv.ParseFloat(rec[7], 64)
				if err4 != nil || err5 != nil {
					return nil, fmt.Errorf("workload: csv: bad JOBS row %v", rec)
				}
				j.Tenant = rec[5]
				j.Offset = offMB * topology.MB
				j.Length = lenMB * topology.MB
			}
			tr.Jobs = append(tr.Jobs, j)
			if j.Submit > last {
				last = j.Submit
			}
		default:
			return nil, fmt.Errorf("workload: csv: data before a section marker: %v", rec)
		}
	}
	if len(tr.Files) == 0 && len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("workload: csv: empty trace")
	}
	tr.Duration = last.Truncate(time.Minute) + time.Minute
	return tr, nil
}
