// Package workload synthesizes and replays MapReduce/HDFS workloads with
// the statistical shape of the Facebook production trace the paper drives
// through SWIM: heavy-tailed file popularity, lognormal-ish job
// inter-arrivals, a file catalog that grows over time, and popularity that
// spikes at creation and decays with age — producing the hot → cooled →
// normal → cold lifecycle ERMS exploits.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"erms/internal/metrics"
	"erms/internal/topology"
)

// FileSpec describes one dataset file in the trace.
type FileSpec struct {
	Path     string        `json:"path"`
	Size     float64       `json:"size"` // bytes
	CreateAt time.Duration `json:"createAt"`
	Rank     int           `json:"rank"` // popularity rank (0 = hottest at birth)
}

// JobSpec is one synthesized job: a read of File submitted at Submit
// (either a MapReduce job over the file or a direct client read).
type JobSpec struct {
	Submit  time.Duration `json:"submit"`
	File    string        `json:"file"`
	Name    string        `json:"name"`
	Client  int           `json:"client"`  // suggested client node
	Compute time.Duration `json:"compute"` // per-MB map compute
	// Tenant tags the job for multi-tenant scenarios ("" = untenanted).
	Tenant string `json:"tenant,omitempty"`
	// Offset/Length make the job a byte-ranged read (hdfs.ReadRange) instead
	// of a whole-file access. Length 0 means whole file; Length > 0 reads
	// [Offset, Offset+Length) only.
	Offset float64 `json:"offset,omitempty"`
	Length float64 `json:"length,omitempty"`
}

// Trace is a complete synthetic workload.
type Trace struct {
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration"`
	Files    []FileSpec    `json:"files"`
	Jobs     []JobSpec     `json:"jobs"`
}

// Config tunes synthesis. Zero values take defaults chosen to mirror the
// paper's experiment scale (hours of trace over an 18-node cluster).
type Config struct {
	Seed     int64
	Duration time.Duration // default 6h
	// Files in the catalog; a third exist at t=0, the rest are created
	// uniformly over the first 2/3 of the trace. Default 60.
	NumFiles int
	// MeanInterarrival between job submissions; default 40s.
	MeanInterarrival time.Duration
	// ZipfSkew of base popularity; default 1.1 (heavy-tailed).
	ZipfSkew float64
	// PopularityHalfLife is the age at which a file's access propensity
	// halves; default 90 min. This produces the hot→cooled→cold lifecycle.
	PopularityHalfLife time.Duration
	// Clients is the number of client nodes to spread jobs over; default 18.
	Clients int
	// MinFileSize/MaxFileSize bound the lognormal-ish size draw; defaults
	// 64 MB / 4 GB.
	MinFileSize float64
	MaxFileSize float64
	// ComputePerMB for synthesized MapReduce jobs; default 8ms.
	ComputePerMB time.Duration
	// DiurnalAmplitude in [0,1) modulates the arrival rate sinusoidally —
	// production clusters breathe with the workday. 0 (default) keeps a
	// homogeneous Poisson process; 0.8 swings between 5x and 0.2/0.18…
	// of the mean rate across a DiurnalPeriod.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation cycle; default 24h.
	DiurnalPeriod time.Duration
}

func (c *Config) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 6 * time.Hour
	}
	if c.NumFiles <= 0 {
		c.NumFiles = 60
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 40 * time.Second
	}
	if c.ZipfSkew <= 0 {
		c.ZipfSkew = 1.1
	}
	if c.PopularityHalfLife <= 0 {
		c.PopularityHalfLife = 90 * time.Minute
	}
	if c.Clients <= 0 {
		c.Clients = 18
	}
	if c.MinFileSize <= 0 {
		c.MinFileSize = 64 * topology.MB
	}
	if c.MaxFileSize <= 0 {
		c.MaxFileSize = 4 * topology.GB
	}
	if c.ComputePerMB <= 0 {
		c.ComputePerMB = 8 * time.Millisecond
	}
	if c.DiurnalAmplitude < 0 {
		c.DiurnalAmplitude = 0
	}
	if c.DiurnalAmplitude >= 1 {
		c.DiurnalAmplitude = 0.99
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 24 * time.Hour
	}
}

// Synthesize builds a deterministic trace from cfg.
func Synthesize(cfg Config) *Trace {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Seed: cfg.Seed, Duration: cfg.Duration}

	// File catalog: sizes lognormal-ish (median near 256 MB), clamped.
	for i := 0; i < cfg.NumFiles; i++ {
		size := 256 * topology.MB * math.Exp(rng.NormFloat64()*1.2)
		if size < cfg.MinFileSize {
			size = cfg.MinFileSize
		}
		if size > cfg.MaxFileSize {
			size = cfg.MaxFileSize
		}
		var createAt time.Duration
		if i >= cfg.NumFiles/3 {
			createAt = time.Duration(rng.Float64() * float64(cfg.Duration) * 2 / 3)
		}
		tr.Files = append(tr.Files, FileSpec{
			Path:     fmt.Sprintf("/data/f%03d", i),
			Size:     math.Round(size/topology.MB) * topology.MB,
			CreateAt: createAt,
			Rank:     i, // assigned before shuffle of weights below
		})
	}
	// Popularity ranks permuted so creation order and popularity decorrelate
	// (fresh files are boosted by the decay term instead).
	perm := rng.Perm(cfg.NumFiles)
	for i := range tr.Files {
		tr.Files[i].Rank = perm[i]
	}
	sort.Slice(tr.Files, func(i, j int) bool { return tr.Files[i].CreateAt < tr.Files[j].CreateAt })

	// Base weights: Zipf over rank.
	baseW := make([]float64, cfg.NumFiles)
	for i, f := range tr.Files {
		baseW[i] = 1 / math.Pow(float64(f.Rank+1), cfg.ZipfSkew)
	}
	lambda := math.Ln2 / cfg.PopularityHalfLife.Seconds()

	// Job arrivals: a Poisson process, optionally inhomogeneous (diurnal
	// modulation) via Lewis thinning: draw candidates at the peak rate and
	// accept each with probability rate(t)/peak.
	peakBoost := 1 + cfg.DiurnalAmplitude
	rateAt := func(t time.Duration) float64 {
		if cfg.DiurnalAmplitude == 0 {
			return 1
		}
		phase := 2 * math.Pi * float64(t) / float64(cfg.DiurnalPeriod)
		return 1 + cfg.DiurnalAmplitude*math.Sin(phase)
	}
	now := time.Duration(0)
	jobID := 0
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival) / peakBoost)
		now += gap
		if now >= cfg.Duration {
			break
		}
		if cfg.DiurnalAmplitude > 0 && rng.Float64() > rateAt(now)/peakBoost {
			continue // thinned out: off-peak instant
		}
		// Weighted pick over files that exist, with exponential age decay.
		total := 0.0
		weights := make([]float64, len(tr.Files))
		for i, f := range tr.Files {
			if f.CreateAt > now {
				continue
			}
			age := (now - f.CreateAt).Seconds()
			w := baseW[i] * math.Exp(-lambda*age)
			weights[i] = w
			total += w
		}
		if total <= 0 {
			continue
		}
		u := rng.Float64() * total
		pick := 0
		for i, w := range weights {
			u -= w
			if u <= 0 {
				pick = i
				break
			}
		}
		jobID++
		tr.Jobs = append(tr.Jobs, JobSpec{
			Submit:  now,
			File:    tr.Files[pick].Path,
			Name:    fmt.Sprintf("job%04d", jobID),
			Client:  rng.Intn(cfg.Clients),
			Compute: cfg.ComputePerMB,
		})
	}
	return tr
}

// AccessCDF returns the cumulative distribution of job submission times —
// the paper's Figure 4 ("the cumulative distribution function of the data
// at the time they are accessed").
func (t *Trace) AccessCDF() (times []float64, cdf []float64) {
	var s metrics.Sample
	for _, j := range t.Jobs {
		s.Add(j.Submit.Hours())
	}
	return s.CDF()
}

// AccessCounts returns per-file access totals, descending.
type FileCount struct {
	Path  string
	Count int
}

// AccessCounts tallies accesses per file, most popular first.
func (t *Trace) AccessCounts() []FileCount {
	m := map[string]int{}
	for _, j := range t.Jobs {
		m[j.File]++
	}
	out := make([]FileCount, 0, len(m))
	for p, n := range m {
		out = append(out, FileCount{p, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// GiniSkew computes a simple skew statistic over per-file access counts
// (0 = uniform, →1 = fully concentrated); used to assert the workload is
// heavy-tailed as the paper claims.
func (t *Trace) GiniSkew() float64 {
	counts := t.AccessCounts()
	if len(counts) < 2 {
		return 0
	}
	n := len(counts)
	vals := make([]float64, n)
	for i, c := range counts {
		vals[n-1-i] = float64(c.Count) // ascending
	}
	var cum, totalCum, total float64
	for _, v := range vals {
		total += v
	}
	for _, v := range vals {
		cum += v
		totalCum += cum
	}
	if total == 0 {
		return 0
	}
	// Gini = 1 - 2*B where B is area under Lorenz curve.
	b := totalCum / (float64(n) * total)
	return 1 - 2*b + 1/float64(n)
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return &t, nil
}
