package workload

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeTrace: the JSON and CSV trace decoders must never panic, and
// anything either accepts must survive an encode→decode round trip — JSON
// exactly (numbers round-trip), CSV up to its fixed-precision time fields
// (so the re-encoded form must stay decodable with the same shape).
func FuzzDecodeTrace(f *testing.F) {
	tr := Synthesize(Config{Seed: 1, Duration: 20 * time.Minute, NumFiles: 6})
	var jb, cb bytes.Buffer
	if err := tr.WriteJSON(&jb); err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteCSV(&cb); err != nil {
		f.Fatal(err)
	}
	f.Add(jb.Bytes())
	f.Add(cb.Bytes())
	f.Add([]byte(`{"seed":1,"duration":60000000000}`))
	f.Add([]byte(`{"files":[{"path":"/x","size":1e300}]}`))
	f.Add([]byte("FILES\npath,size_mb,create_at_s,rank\n/x,256,0,1\n"))
	f.Add([]byte("JOBS\nname,submit_s,file,client,compute_ms_per_mb\nj,NaN,/x,0,8\n"))
	f.Add([]byte("/x,1,2,3\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := ReadJSON(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := tr.WriteJSON(&out); err != nil {
				// JSON has no NaN/Inf literals, so every decoded trace
				// must re-encode.
				t.Fatalf("re-encoding decoded JSON trace: %v", err)
			}
			back, err := ReadJSON(&out)
			if err != nil {
				t.Fatalf("re-decoding encoded JSON trace: %v", err)
			}
			if !reflect.DeepEqual(tr, back) {
				t.Fatalf("JSON round trip changed the trace:\n%+v\nvs\n%+v", tr, back)
			}
		}
		if tr, err := ReadCSV(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := tr.WriteCSV(&out); err != nil {
				t.Fatalf("re-encoding decoded CSV trace: %v", err)
			}
			back, err := ReadCSV(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding encoded CSV trace: %v", err)
			}
			if len(back.Files) != len(tr.Files) || len(back.Jobs) != len(tr.Jobs) {
				t.Fatalf("CSV round trip changed counts: %d/%d files, %d/%d jobs",
					len(tr.Files), len(back.Files), len(tr.Jobs), len(back.Jobs))
			}
			for i := range tr.Files {
				if back.Files[i].Path != tr.Files[i].Path || back.Files[i].Rank != tr.Files[i].Rank {
					t.Fatalf("CSV round trip changed file %d: %+v vs %+v", i, tr.Files[i], back.Files[i])
				}
			}
			for i := range tr.Jobs {
				if back.Jobs[i].Name != tr.Jobs[i].Name || back.Jobs[i].File != tr.Jobs[i].File ||
					back.Jobs[i].Client != tr.Jobs[i].Client {
					t.Fatalf("CSV round trip changed job %d: %+v vs %+v", i, tr.Jobs[i], back.Jobs[i])
				}
			}
		}
	})
}
