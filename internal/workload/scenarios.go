package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

// This file synthesizes the production-shaped scenarios beyond the SWIM
// batch trace: multi-tenant Zipf mixes, diurnal commission/drain cycles, a
// flash crowd (cold file going viral mid-run), and partial/ranged reads.
// Each generator is deterministic: the same seed yields a byte-identical
// trace, which the golden tests and the figures invariance gate depend on.

// ScenarioNames lists the canonical scenario generators in display order.
func ScenarioNames() []string {
	return []string{"tenant", "diurnal", "flashcrowd", "partial"}
}

// SynthesizeScenario builds the canonical trace for a named scenario at the
// given seed and duration — the single entry point the experiments grid,
// figures, and the chaos storms share so they all exercise the same shapes.
func SynthesizeScenario(name string, seed int64, d time.Duration) (*Trace, error) {
	switch name {
	case "tenant":
		return SynthesizeMultiTenant(TenantConfig{Seed: seed, Duration: d}), nil
	case "diurnal":
		return SynthesizeDiurnal(seed, d), nil
	case "flashcrowd":
		return SynthesizeFlashCrowd(FlashConfig{Seed: seed, Duration: d}), nil
	case "partial":
		return SynthesizePartialRead(PartialConfig{Seed: seed, Duration: d}), nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (want one of %v)", name, ScenarioNames())
}

// Tenant describes one tenant in a multi-tenant mix.
type Tenant struct {
	Name     string
	Files    int     // catalog size under /tenant/<name>/
	Share    float64 // fraction of job arrivals (normalized over tenants)
	ZipfSkew float64 // within-tenant popularity skew
}

// TenantConfig tunes SynthesizeMultiTenant. Zero values take defaults: three
// tenants with contrasting skew — a small hot interactive set, a mid-size
// analytics set, and a wide flat batch set — sharing one cluster.
type TenantConfig struct {
	Seed             int64
	Duration         time.Duration // default 2h
	MeanInterarrival time.Duration // default 5s (judge-visible intensity)
	Clients          int           // default 18
	MinFileSize      float64       // default 64 MB
	MaxFileSize      float64       // default 1 GB
	ComputePerMB     time.Duration // default 8ms
	Tenants          []Tenant      // default ads/etl/batch mix
}

func (c *TenantConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 3 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 18
	}
	if c.MinFileSize <= 0 {
		c.MinFileSize = 64 * topology.MB
	}
	if c.MaxFileSize <= 0 {
		c.MaxFileSize = topology.GB
	}
	if c.ComputePerMB <= 0 {
		c.ComputePerMB = 8 * time.Millisecond
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []Tenant{
			{Name: "ads", Files: 8, Share: 0.5, ZipfSkew: 1.6},
			{Name: "etl", Files: 16, Share: 0.3, ZipfSkew: 1.1},
			{Name: "batch", Files: 24, Share: 0.2, ZipfSkew: 0.4},
		}
	}
}

// SynthesizeMultiTenant builds a trace where several tenants with different
// popularity skews and arrival shares contend for one cluster. Every job is
// tagged with its tenant so replay can attribute throughput per tenant and
// the isolation oracle can check no tenant is starved.
func SynthesizeMultiTenant(cfg TenantConfig) *Trace {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Seed: cfg.Seed, Duration: cfg.Duration}

	// Per-tenant catalogs, all present at t=0 (the contention is the story
	// here, not catalog growth).
	catalog := make([][]int, len(cfg.Tenants)) // tenant -> indices into tr.Files
	for ti, tn := range cfg.Tenants {
		for i := 0; i < tn.Files; i++ {
			size := 128 * topology.MB * math.Exp(rng.NormFloat64())
			if size < cfg.MinFileSize {
				size = cfg.MinFileSize
			}
			if size > cfg.MaxFileSize {
				size = cfg.MaxFileSize
			}
			catalog[ti] = append(catalog[ti], len(tr.Files))
			tr.Files = append(tr.Files, FileSpec{
				Path: fmt.Sprintf("/tenant/%s/f%03d", tn.Name, i),
				Size: math.Round(size/topology.MB) * topology.MB,
				Rank: i,
			})
		}
	}

	shareTotal := 0.0
	for _, tn := range cfg.Tenants {
		shareTotal += tn.Share
	}
	now := time.Duration(0)
	jobID := 0
	for {
		now += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		if now >= cfg.Duration {
			break
		}
		// Pick the tenant by arrival share, then the file by that tenant's
		// own Zipf skew.
		u := rng.Float64() * shareTotal
		ti := 0
		for i, tn := range cfg.Tenants {
			u -= tn.Share
			if u <= 0 {
				ti = i
				break
			}
		}
		tn := cfg.Tenants[ti]
		total := 0.0
		weights := make([]float64, len(catalog[ti]))
		for i := range catalog[ti] {
			weights[i] = 1 / math.Pow(float64(i+1), tn.ZipfSkew)
			total += weights[i]
		}
		u = rng.Float64() * total
		pick := 0
		for i, w := range weights {
			u -= w
			if u <= 0 {
				pick = i
				break
			}
		}
		jobID++
		tr.Jobs = append(tr.Jobs, JobSpec{
			Submit:  now,
			File:    tr.Files[catalog[ti][pick]].Path,
			Name:    fmt.Sprintf("job%04d", jobID),
			Client:  rng.Intn(cfg.Clients),
			Compute: cfg.ComputePerMB,
			Tenant:  tn.Name,
		})
	}
	return tr
}

// SynthesizeDiurnal builds a trace whose arrival rate swings hard between
// peak and trough several times over the run — the load shape that drives
// the standby commission/drain cycle repeatedly rather than once. It is the
// base synthesizer with a high amplitude and a period short enough that a
// 2h run sees three full day/night cycles.
func SynthesizeDiurnal(seed int64, d time.Duration) *Trace {
	if d <= 0 {
		d = 2 * time.Hour
	}
	return Synthesize(Config{
		Seed:             seed,
		Duration:         d,
		NumFiles:         36,
		MeanInterarrival: 4 * time.Second,
		DiurnalAmplitude: 0.9,
		DiurnalPeriod:    d / 3,
		MaxFileSize:      topology.GB,
	})
}

// FlashConfig tunes SynthesizeFlashCrowd.
type FlashConfig struct {
	Seed     int64
	Duration time.Duration // default 2h
	// SpikeAt is when the cold file goes viral; default 40% into the run
	// (late enough that the judge has seen it idle).
	SpikeAt time.Duration
	// SpikeDuration is how long the crowd lasts; default 25% of the run.
	SpikeDuration time.Duration
	// SpikeInterarrival is the mean gap between viral reads during the
	// burst; default 1.5s — far above the hot threshold.
	SpikeInterarrival time.Duration
	// ViralSize is the viral file's size; default 256 MB.
	ViralSize float64
	// Background tunes the ambient workload (seed/duration are overridden).
	Background Config
}

// ViralPath is the file that goes viral in the flash-crowd scenario.
const ViralPath = "/viral/clip"

func (c *FlashConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.SpikeAt <= 0 {
		c.SpikeAt = c.Duration * 2 / 5
	}
	if c.SpikeDuration <= 0 {
		c.SpikeDuration = c.Duration / 4
	}
	if c.SpikeInterarrival <= 0 {
		c.SpikeInterarrival = 1500 * time.Millisecond
	}
	if c.ViralSize <= 0 {
		c.ViralSize = 256 * topology.MB
	}
}

// SynthesizeFlashCrowd builds an ambient trace plus a cold file (ViralPath,
// present from t=0, untouched) that suddenly draws a dense read crowd at
// SpikeAt. The judge's reaction time — first viral read to replica-add
// completion — is the scenario's headline metric.
func SynthesizeFlashCrowd(cfg FlashConfig) *Trace {
	cfg.applyDefaults()
	bg := cfg.Background
	bg.Seed = cfg.Seed
	bg.Duration = cfg.Duration
	if bg.NumFiles <= 0 {
		bg.NumFiles = 24
	}
	if bg.MeanInterarrival <= 0 {
		bg.MeanInterarrival = 20 * time.Second
	}
	if bg.MaxFileSize <= 0 {
		bg.MaxFileSize = topology.GB
	}
	tr := Synthesize(bg)

	// The viral file exists from the start, cold: no background job touches
	// /viral/, so every pre-spike judge pass sees it idle.
	tr.Files = append(tr.Files, FileSpec{Path: ViralPath, Size: cfg.ViralSize, Rank: len(tr.Files)})

	// The crowd: a dedicated RNG stream (offset seed) so the burst shape
	// does not perturb the ambient trace.
	crng := rand.New(rand.NewSource(cfg.Seed ^ 0x666c617368)) // "flash"
	now := cfg.SpikeAt
	end := cfg.SpikeAt + cfg.SpikeDuration
	if end > cfg.Duration {
		end = cfg.Duration
	}
	vid := 0
	for {
		now += time.Duration(crng.ExpFloat64() * float64(cfg.SpikeInterarrival))
		if now >= end {
			break
		}
		vid++
		tr.Jobs = append(tr.Jobs, JobSpec{
			Submit:  now,
			File:    ViralPath,
			Name:    fmt.Sprintf("viral%04d", vid),
			Client:  crng.Intn(18),
			Compute: 8 * time.Millisecond,
			Tenant:  "crowd",
		})
	}
	// Merge burst into the ambient timeline; stable sort keeps equal-time
	// ordering deterministic.
	sort.SliceStable(tr.Jobs, func(i, j int) bool { return tr.Jobs[i].Submit < tr.Jobs[j].Submit })
	return tr
}

// PartialConfig tunes SynthesizePartialRead.
type PartialConfig struct {
	Seed             int64
	Duration         time.Duration // default 2h
	NumFiles         int           // default 4 (half hot-head, half scan)
	FileSize         float64       // default 256 MB (4 blocks at 64 MB)
	ReadLength       float64       // bytes per pread; default 16 MB
	MeanInterarrival time.Duration // default 600ms (block heat must build)
	Clients          int           // default 18
	// HeadSkew is the Zipf skew over read positions within hot-head files;
	// default 1.6, concentrating heat on the first block so formula (2)
	// fires there. Scan files draw positions uniformly, spreading moderate
	// heat over every block so formula (3) fires instead.
	HeadSkew float64
}

func (c *PartialConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Hour
	}
	if c.NumFiles <= 0 {
		c.NumFiles = 4
	}
	if c.FileSize <= 0 {
		c.FileSize = 256 * topology.MB
	}
	if c.ReadLength <= 0 {
		c.ReadLength = 16 * topology.MB
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 600 * time.Millisecond
	}
	if c.Clients <= 0 {
		c.Clients = 18
	}
	if c.HeadSkew <= 0 {
		c.HeadSkew = 1.6
	}
}

// SynthesizePartialRead builds an index-lookup-shaped trace: multi-block
// files served entirely by byte-ranged reads. File-level open counts stay
// at zero (preads are not opens), so only the block-level judge axes can
// see the heat — and the two file classes light them up separately:
// hot-head files (/index/headNN) draw positions Zipf-skewed onto the first
// block, pushing one block past M_M (formula 2), while scan files
// (/index/scanNN) draw positions uniformly, lifting every block past M_m
// without any single block crossing M_M (formula 3 via ε).
func SynthesizePartialRead(cfg PartialConfig) *Trace {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Seed: cfg.Seed, Duration: cfg.Duration}
	nHead := (cfg.NumFiles + 1) / 2
	for i := 0; i < cfg.NumFiles; i++ {
		path := fmt.Sprintf("/index/head%02d", i)
		if i >= nHead {
			path = fmt.Sprintf("/index/scan%02d", i-nHead)
		}
		tr.Files = append(tr.Files, FileSpec{Path: path, Size: cfg.FileSize, Rank: i})
	}
	slots := int(cfg.FileSize / cfg.ReadLength)
	if slots < 1 {
		slots = 1
	}
	headW := make([]float64, slots)
	headTotal := 0.0
	for i := range headW {
		headW[i] = 1 / math.Pow(float64(i+1), cfg.HeadSkew)
		headTotal += headW[i]
	}
	now := time.Duration(0)
	jobID := 0
	for {
		now += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		if now >= cfg.Duration {
			break
		}
		fi := rng.Intn(cfg.NumFiles)
		slot := 0
		if fi < nHead {
			u := rng.Float64() * headTotal
			for i, w := range headW {
				u -= w
				if u <= 0 {
					slot = i
					break
				}
			}
		} else {
			slot = rng.Intn(slots)
		}
		jobID++
		tr.Jobs = append(tr.Jobs, JobSpec{
			Submit:  now,
			File:    tr.Files[fi].Path,
			Name:    fmt.Sprintf("pread%04d", jobID),
			Client:  rng.Intn(cfg.Clients),
			Compute: 0,
			Offset:  float64(slot) * cfg.ReadLength,
			Length:  cfg.ReadLength,
		})
	}
	return tr
}

// ReplayScenario issues the trace's jobs as direct client reads, honoring
// ranged-read jobs (Length > 0 → hdfs.ReadRange, else a whole-file read).
// onDone observes each completed read together with the job that issued it,
// so callers can attribute results per tenant.
func ReplayScenario(engine *sim.Engine, h *hdfs.Cluster, t *Trace, onDone func(JobSpec, *hdfs.ReadResult)) {
	n := h.NumDatanodes()
	for _, js := range t.Jobs {
		js := js
		engine.At(js.Submit, func() {
			client := topology.NodeID(js.Client % n)
			cb := func(r *hdfs.ReadResult) {
				if onDone != nil {
					onDone(js, r)
				}
			}
			if js.Length > 0 {
				h.ReadRange(client, js.File, js.Offset, js.Length, cb)
			} else {
				h.ReadFile(client, js.File, cb)
			}
		})
	}
}

// TenantBytes sums bytes read per tenant from replay results — feed it the
// accumulated (JobSpec, ReadResult) pairs and pass the shares to
// JainFairness for an isolation score.
func TenantBytes(pairs map[string]float64) (names []string, shares []float64) {
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		shares = append(shares, pairs[name])
	}
	return names, shares
}

// JainFairness computes Jain's fairness index over the given shares:
// (Σx)² / (n·Σx²), 1.0 when perfectly equal, →1/n when one share dominates.
func JainFairness(shares []float64) float64 {
	if len(shares) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range shares {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sq)
}
