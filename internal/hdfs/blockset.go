package hdfs

import "math/bits"

// blockSet is a dense bitset over BlockIDs. Block IDs are minted
// sequentially from zero and never reused, so a bitmap beats a hash set
// on every axis that matters here: membership and insert are single-word
// operations, iteration is ascending (deterministic, unlike map order),
// and rebuilding a node's block set from a million checkpoint replicas
// costs bit-ORs instead of the map inserts that used to dominate restore.
// The zero value is an empty set.
type blockSet struct {
	bits []uint64
	n    int
}

// Has reports whether b is in the set.
func (s *blockSet) Has(b BlockID) bool {
	w := uint64(b) >> 6
	return w < uint64(len(s.bits)) && s.bits[w]>>(uint64(b)&63)&1 != 0
}

// Add inserts b, growing the bitmap geometrically as the block space
// grows so a sequence of Adds stays amortized O(1).
func (s *blockSet) Add(b BlockID) {
	w := int(uint64(b) >> 6)
	if w >= len(s.bits) {
		grown := make([]uint64, max(w+1, 2*len(s.bits)))
		copy(grown, s.bits)
		s.bits = grown
	}
	mask := uint64(1) << (uint64(b) & 63)
	if s.bits[w]&mask == 0 {
		s.bits[w] |= mask
		s.n++
	}
}

// Remove deletes b if present.
func (s *blockSet) Remove(b BlockID) {
	w := uint64(b) >> 6
	if w >= uint64(len(s.bits)) {
		return
	}
	mask := uint64(1) << (uint64(b) & 63)
	if s.bits[w]&mask != 0 {
		s.bits[w] &^= mask
		s.n--
	}
}

// Len returns the number of members.
func (s *blockSet) Len() int { return s.n }

// Each calls fn for every member in ascending BlockID order. fn must not
// grow the set; removing members (including the one being visited) is
// safe because Remove never reallocates the bitmap.
func (s *blockSet) Each(fn func(BlockID)) {
	for w, word := range s.bits {
		for word != 0 {
			fn(BlockID(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}
