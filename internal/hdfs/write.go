package hdfs

import (
	"fmt"
	"time"

	"erms/internal/auditlog"
	"erms/internal/netsim"
	"erms/internal/topology"
)

// WriteResult summarizes a completed pipelined file write.
type WriteResult struct {
	Path   string
	Client topology.NodeID
	Bytes  float64
	Start  time.Duration
	End    time.Duration
	Err    error
}

// Duration returns the virtual time the write took.
func (w *WriteResult) Duration() time.Duration { return w.End - w.Start }

// ThroughputMBps returns the achieved write throughput in MB/s.
func (w *WriteResult) ThroughputMBps() float64 {
	d := w.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return w.Bytes / topology.MB / d
}

// WriteFile creates a file by streaming its blocks through an HDFS write
// pipeline: each block's bytes flow client → replica1 → replica2 → … with
// every hop's NIC and disk on the path, so a write runs at the speed of
// the pipeline's slowest link and cross-rack topology costs what it
// should. Blocks are written sequentially, as DFSOutputStream does.
// Unlike CreateFile (which materializes data instantly for experiment
// setup), WriteFile occupies the cluster for the transfer's real duration.
func (c *Cluster) WriteFile(client topology.NodeID, path string, size float64, repl int, done func(*WriteResult)) {
	res := &WriteResult{Path: path, Client: client, Start: c.clock.Now()}
	fail := func(err error) {
		res.Err = err
		res.End = c.clock.Now()
		if done != nil {
			c.clock.Schedule(0, func() { done(res) })
		}
	}
	if err := c.writable(); err != nil {
		fail(err)
		return
	}
	if _, ok := c.files[path]; ok {
		fail(fmt.Errorf("hdfs: file %q exists", path))
		return
	}
	if size <= 0 {
		fail(fmt.Errorf("hdfs: file size must be positive"))
		return
	}
	if repl <= 0 {
		repl = c.cfg.DefaultReplication
	}
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: c.clientIP(client), Cmd: auditlog.CmdCreate, Src: path,
	})
	f := &INode{
		Path:       path,
		Size:       size,
		TargetRepl: repl,
		CreatedAt:  c.clock.Now(),
	}
	c.registerFile(f)
	nBlocks := int(size / c.cfg.BlockSize)
	if float64(nBlocks)*c.cfg.BlockSize < size {
		nBlocks++
	}
	var writeBlock func(i int)
	writeBlock = func(i int) {
		if i >= nBlocks {
			res.Bytes = size
			res.End = c.clock.Now()
			if done != nil {
				done(res)
			}
			return
		}
		bs := c.cfg.BlockSize
		if i == nBlocks-1 {
			bs = size - float64(nBlocks-1)*c.cfg.BlockSize
		}
		b := &Block{ID: c.nextBlock, File: path, Index: i, Size: bs, fileID: f.id}
		c.addBlock(b)
		f.Blocks = append(f.Blocks, b.ID)
		targets := c.placement.ChooseTargets(c, b, repl, DatanodeID(client), nil)
		if len(targets) == 0 {
			fail(fmt.Errorf("hdfs: no targets for block %d of %q", b.ID, path))
			return
		}
		path2 := c.pipelinePath(client, targets)
		c.fabric.StartFlow(path2, bs, 0, func(*netsim.Flow) {
			for _, t := range targets {
				if d := c.datanodes[t]; d.State != StateDown && !d.crashed {
					c.attachReplica(b, t)
				}
			}
			if len(c.replicas[b.ID]) == 0 {
				fail(fmt.Errorf("hdfs: every pipeline node died writing block %d", b.ID))
				return
			}
			writeBlock(i + 1)
		})
	}
	writeBlock(0)
}

// pipelinePath assembles the ordered, de-duplicated link set a pipelined
// block write crosses: the client's egress (when the writer is a cluster
// node), then for each pipeline stage the inter-node network hops, the
// receiver's ingress NIC and its disk, and the forwarder's egress NIC.
// External writers (client < 0) enter through the first target's rack
// downlink.
func (c *Cluster) pipelinePath(client topology.NodeID, targets []DatanodeID) []topology.LinkID {
	var links []topology.LinkID
	seen := map[topology.LinkID]bool{}
	add := func(ids ...topology.LinkID) {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				links = append(links, id)
			}
		}
	}
	prev := client
	for idx, t := range targets {
		tn := topology.NodeID(t)
		node := c.topo.Node(tn)
		switch {
		case prev < 0:
			// External entry: core → rack → node.
			add(c.topo.RackDownlink(node.Rack), node.NICIn)
		case prev == tn:
			// Local write: disk only (added below).
		default:
			pn := c.topo.Node(prev)
			add(pn.NICOut)
			if pn.Rack != node.Rack {
				add(c.topo.RackUplink(pn.Rack), c.topo.RackDownlink(node.Rack))
			}
			add(node.NICIn)
		}
		add(node.Disk)
		prev = tn
		_ = idx
	}
	return links
}
