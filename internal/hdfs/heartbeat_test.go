package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// newHeartbeatCluster builds a cluster with heartbeat failure detection on
// short test timeouts: 3s interval, 30s stale, 2m dead.
func newHeartbeatCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{
		Topology: topo,
		Heartbeat: HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  2 * time.Minute,
		},
	})
	return e, c
}

// TestHeartbeatDelayedDetection pins the crash → stale → dead timeline: a
// crashed node's replicas stay credited (and no repair traffic moves)
// until DeadTimeout, the node turns stale at StaleTimeout, and only the
// dead declaration releases the replicas and triggers re-replication.
func TestHeartbeatDelayedDetection(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	f, _ := c.CreateFile("/a", 192*mb, 3, 0)
	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()
	bid := f.Blocks[0]
	victim := c.Replicas(bid)[0]

	e.At(1*time.Second, func() { c.Kill(victim) })

	// Before StaleTimeout: the namenode suspects nothing.
	e.RunUntil(25 * time.Second)
	d := c.Datanode(victim)
	if d.Stale || d.State != StateActive {
		t.Fatalf("node already distrusted before StaleTimeout: stale=%v state=%s", d.Stale, d.State)
	}
	if got := len(c.Replicas(bid)); got != 3 {
		t.Fatalf("replicas released early: %d", got)
	}
	if c.Metrics().ReplicasAdded != 0 {
		t.Fatal("repair traffic before StaleTimeout")
	}

	// Past StaleTimeout: stale, but replicas still credited, still no
	// repair (HDFS does not re-replicate for staleness).
	e.RunUntil(40 * time.Second)
	if !c.Datanode(victim).Stale {
		t.Fatal("node not stale past StaleTimeout")
	}
	if got := c.StaleNodes(); len(got) != 1 || got[0] != victim {
		t.Fatalf("StaleNodes = %v", got)
	}
	if got := len(c.Replicas(bid)); got != 3 {
		t.Fatalf("stale released replicas: %d", got)
	}
	if c.Metrics().ReplicasAdded != 0 {
		t.Fatal("repair traffic for a merely-stale node")
	}

	// Past DeadTimeout: declared dead, replicas released, monitor heals.
	e.RunUntil(6 * time.Minute)
	if got := c.Datanode(victim).State; got != StateDown {
		t.Fatalf("state past DeadTimeout = %s", got)
	}
	if c.Metrics().StaleTransitions == 0 {
		t.Fatal("stale transition not counted")
	}
	for _, b := range f.Blocks {
		reps := c.Replicas(b)
		if len(reps) != 3 {
			t.Fatalf("block %d not healed: %v", b, reps)
		}
		for _, r := range reps {
			if r == victim {
				t.Fatalf("block %d still credited to the dead node", b)
			}
		}
	}
	checkConsistency(t, c)
}

// TestPartitionHealedBeforeDeadTimeoutCostsNothing is the tentpole's core
// guarantee: a rack partition that heals inside DeadTimeout causes zero
// re-replication — the nodes rejoin with their blocks intact.
func TestPartitionHealedBeforeDeadTimeoutCostsNothing(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	f, _ := c.CreateFile("/a", 320*mb, 3, 0)
	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()

	e.At(10*time.Second, func() { c.PartitionRack(0) })
	e.At(70*time.Second, func() { c.HealRack(0) }) // 60s < 2m DeadTimeout

	e.RunUntil(10 * time.Minute)
	if c.Metrics().ReplicasAdded != 0 {
		t.Fatalf("healed partition cost %d replica copies", c.Metrics().ReplicasAdded)
	}
	if got := c.UnderReplicated(); len(got) != 0 {
		t.Fatalf("blocks under-replicated after heal: %v", got)
	}
	for _, d := range c.Datanodes() {
		if d.State == StateDown || d.Stale {
			t.Fatalf("%s still down/stale after heal", d.Name)
		}
	}
	for _, bid := range f.Blocks {
		if len(c.Replicas(bid)) != 3 {
			t.Fatalf("block %d lost replicas: %v", bid, c.Replicas(bid))
		}
	}
	checkConsistency(t, c)
}

// TestPartitionBeyondDeadTimeout pins the other side: a partition that
// outlives DeadTimeout converges to the same state as crashing the rack —
// its nodes are declared dead and their blocks re-replicate elsewhere.
func TestPartitionBeyondDeadTimeout(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	f, _ := c.CreateFile("/a", 320*mb, 3, 0)
	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()

	e.At(5*time.Second, func() { c.PartitionRack(0) })
	e.RunUntil(15 * time.Minute)

	rack0 := c.Topology().NodesInRack(0)
	for _, n := range rack0 {
		if got := c.Datanode(DatanodeID(n)).State; got != StateDown {
			t.Fatalf("partitioned node %d is %s, want down", n, got)
		}
	}
	for _, bid := range f.Blocks {
		reps := c.Replicas(bid)
		if len(reps) != 3 {
			t.Fatalf("block %d not healed: %v", bid, reps)
		}
		for _, r := range reps {
			if c.Topology().Rack(topology.NodeID(r)) == 0 {
				t.Fatalf("block %d still credited inside the dead rack", bid)
			}
		}
	}
	checkConsistency(t, c)
}

// TestPartitionAbortsCrossingFlows: reads served from a rack that gets cut
// off retry transparently on replicas outside it.
func TestPartitionAbortsCrossingFlows(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	c.CreateFile("/a", 256*mb, 3, 0)
	var res *ReadResult
	c.ReadFile(ExternalClient, "/a", func(r *ReadResult) { res = r })
	e.Schedule(300*time.Millisecond, func() { c.PartitionRack(0) })
	e.RunUntil(5 * time.Minute)
	if res == nil {
		t.Fatal("read never completed")
	}
	if res.Err != nil {
		t.Fatalf("read should fail over out of the partitioned rack: %v", res.Err)
	}
}

// TestStaleReplicaAvoidedForReads: the replica selector prefers any fresh
// replica over a stale one, but still uses the stale one as a last resort.
func TestStaleReplicaAvoidedForReads(t *testing.T) {
	_, c := newHeartbeatCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 2, 0)
	bid := f.Blocks[0]
	reps := c.Replicas(bid)
	stale, fresh := reps[0], reps[1]
	c.Datanode(stale).Stale = true

	got, _, ok := c.selectReplica(ExternalClient, bid, nil)
	if !ok || got != fresh {
		t.Fatalf("selector chose %d, want fresh %d", got, fresh)
	}
	// Last resort: with the fresh copy excluded, the stale one serves.
	got, _, ok = c.selectReplica(ExternalClient, bid, map[DatanodeID]bool{fresh: true})
	if !ok || got != stale {
		t.Fatalf("stale last resort: got %d ok=%v", got, ok)
	}
}

// TestRestartOfCrashedNodeBeforeDeadTimeout: restarting a crashed node the
// namenode has not yet declared dead first releases its old replicas
// (fresh disk), then rejoins it empty and active.
func TestRestartOfCrashedNodeBeforeDeadTimeout(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	f, _ := c.CreateFile("/a", 128*mb, 3, 0)
	bid := f.Blocks[0]
	victim := c.Replicas(bid)[0]
	downs := 0
	ups := 0
	c.OnDatanodeDown(func(DatanodeID) { downs++ })
	c.OnDatanodeUp(func(DatanodeID) { ups++ })

	e.At(1*time.Second, func() { c.Kill(victim) })
	e.At(5*time.Second, func() { c.Restart(victim) })
	e.RunUntil(10 * time.Second)

	d := c.Datanode(victim)
	if d.State != StateActive || d.Crashed() || d.Stale {
		t.Fatalf("restarted node: state=%s crashed=%v stale=%v", d.State, d.Crashed(), d.Stale)
	}
	if d.NumBlocks() != 0 {
		t.Fatalf("restarted node kept %d blocks", d.NumBlocks())
	}
	if downs != 1 || ups != 1 {
		t.Fatalf("down/up notifications = %d/%d, want 1/1", downs, ups)
	}
	if got := len(c.Replicas(bid)); got != 2 {
		t.Fatalf("replicas after restart = %d, want 2 (old copy wiped)", got)
	}
	checkConsistency(t, c)
}

// TestKillMidDecommissionAborts pins the finishDrain fix: a node killed
// while decommissioning must NOT finish the retirement (which would
// resurrect it as Decommissioned); the decommission reports an error and
// the node stays down.
func TestKillMidDecommissionAborts(t *testing.T) {
	e, c := newCluster(t) // heartbeats off: Kill declares dead instantly
	c.CreateFile("/a", 256*mb, 3, 0)
	victim := c.Replicas(c.File("/a").Blocks[0])[0]
	var err error
	done := false
	c.Decommission(victim, func(e2 error) { err = e2; done = true })
	e.Schedule(500*time.Millisecond, func() { c.Kill(victim) })
	e.Run()
	if !done {
		t.Fatal("decommission callback never fired")
	}
	if err == nil {
		t.Fatal("decommission of a node killed mid-drain must error")
	}
	if got := c.Datanode(victim).State; got != StateDown {
		t.Fatalf("killed node resurrected as %s", got)
	}
	checkConsistency(t, c)
}

// TestRestartMidDecommissionAborts: killing and restarting a node while
// its drain is in flight leaves it Active (the restart wins) and the
// decommission aborts with an error instead of retiring the live node.
func TestRestartMidDecommissionAborts(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 256*mb, 3, 0)
	victim := c.Replicas(c.File("/a").Blocks[0])[0]
	var err error
	done := false
	c.Decommission(victim, func(e2 error) { err = e2; done = true })
	e.Schedule(500*time.Millisecond, func() {
		c.Kill(victim)
		c.Restart(victim)
	})
	e.Run()
	if !done {
		t.Fatal("decommission callback never fired")
	}
	if err == nil {
		t.Fatal("decommission interrupted by restart must error")
	}
	if got := c.Datanode(victim).State; got != StateActive {
		t.Fatalf("restarted node is %s, want active", got)
	}
	checkConsistency(t, c)
}

// TestCrashedNodeRejectsDecommission: a crashed (but not yet declared
// dead) node cannot start decommissioning.
func TestCrashedNodeRejectsDecommission(t *testing.T) {
	e, c := newHeartbeatCluster(t)
	c.CreateFile("/a", 64*mb, 2, 0)
	victim := c.Replicas(c.File("/a").Blocks[0])[0]
	c.Kill(victim)
	var err error
	done := false
	c.Decommission(victim, func(e2 error) { err = e2; done = true })
	e.RunUntil(time.Minute)
	if !done || err == nil {
		t.Fatalf("decommission of a crashed node should fail (done=%v err=%v)", done, err)
	}
}
