package hdfs

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/auditlog"
	"erms/internal/erasure"
	"erms/internal/sim"
)

// CorruptReplica flips the stored copy of block id on dn to a corrupt
// state — silent bit rot. Nothing happens until the corruption is
// *detected*: a client read's checksum fails, the background scrubber
// verifies the block, or the node rejoins from a partition and its block
// report is reconciled.
func (c *Cluster) CorruptReplica(id BlockID, dn DatanodeID) error {
	b := c.Block(id)
	if b == nil {
		return fmt.Errorf("hdfs: no such block %d", id)
	}
	d := c.datanodes[dn]
	if !d.blocks.Has(id) {
		return fmt.Errorf("hdfs: %s holds no replica of block %d", d.Name, id)
	}
	d.corrupt[id] = true
	return nil
}

// reportCorrupt is the namenode's corrupt-replica handler. If the block
// has another clean copy — or is erasure-protected — the bad replica is
// quarantined (dropped from the block map, so re-replication or stripe
// reconstruction restores redundancy) and OnCorruptReplica fires. The
// last copy of an unprotected block is kept (its undamaged bytes may be
// partially salvageable, as the real namenode does) and reported exactly
// once.
func (c *Cluster) reportCorrupt(b *Block, dn DatanodeID) {
	d := c.datanodes[dn]
	if !d.corrupt[b.ID] || !d.blocks.Has(b.ID) {
		return
	}
	clean := 0
	for _, r := range c.replicas[b.ID] {
		if r != dn && !c.datanodes[r].corrupt[b.ID] {
			clean++
		}
	}
	f := c.fileOf(b)
	protected := f != nil && f.Encoded
	if clean > 0 || protected || len(c.replicas[b.ID]) > 1 {
		c.metrics.CorruptDetected++
		c.metrics.CorruptBytes += b.Size
		c.detachReplica(b, dn) // clears the corrupt flag with the replica
		for _, fn := range c.onCorrupt {
			fn(b.ID, dn)
		}
		return
	}
	if !d.reported[b.ID] {
		d.reported[b.ID] = true
		c.jlog(auditlog.Entry{Op: auditlog.OpReported, Block: int64(b.ID), Node: int(dn)})
		c.metrics.CorruptDetected++
		c.metrics.CorruptBytes += b.Size
		for _, fn := range c.onCorrupt {
			fn(b.ID, dn)
		}
	}
}

// ScrubConfig tunes the background block scrubber (HDFS's
// DataBlockScanner: every datanode re-verifies its replicas on a rolling
// schedule; we model one cluster-wide scanner for determinism).
type ScrubConfig struct {
	// Period between scrub passes; default 30s.
	Period time.Duration
	// BlocksPerScan bounds how many blocks one pass verifies; the cursor
	// carries over so the whole block space is covered every
	// ceil(blocks/BlocksPerScan) passes. Default 50.
	BlocksPerScan int
}

// ScanRate returns blocks verified per second of virtual time.
func (s ScrubConfig) ScanRate() float64 {
	p := s.Period
	if p <= 0 {
		p = 30 * time.Second
	}
	n := s.BlocksPerScan
	if n <= 0 {
		n = 50
	}
	return float64(n) / p.Seconds()
}

// StartScrubber runs the verification scanner until the returned stop
// function is called. Each pass walks BlocksPerScan blocks in sorted-ID
// order from a persistent cursor: plain blocks have each replica's
// checksum re-read; encoded stripes are verified with the real
// Reed–Solomon codec (erasure.Verify) over deterministic synthetic shard
// contents. Detected corruption routes through reportCorrupt, so
// quarantine and OnCorruptReplica behave exactly as for read-detected
// corruption.
func (c *Cluster) StartScrubber(cfg ScrubConfig) func() {
	if cfg.Period <= 0 {
		cfg.Period = 30 * time.Second
	}
	if cfg.BlocksPerScan <= 0 {
		cfg.BlocksPerScan = 50
	}
	t := sim.NewTicker(c.clock, cfg.Period, func(time.Duration) {
		c.scrubPass(cfg.BlocksPerScan)
	})
	return t.Stop
}

// scrubPass verifies the next n live blocks in ID order, wrapping around.
// The cursor walks the dense block slice (skipping deleted entries) so a
// pass costs the blocks visited, not a rebuild and sort of the whole ID
// space.
func (c *Cluster) scrubPass(n int) {
	if c.liveBlocks == 0 {
		return
	}
	if n > c.liveBlocks {
		n = c.liveBlocks
	}
	pos := c.scrubCursor
	if pos >= len(c.blocks) {
		pos = 0
	}
	for visited := 0; visited < n; {
		if pos >= len(c.blocks) {
			pos = 0
		}
		if b := c.blocks[pos]; b != nil {
			c.scrubBlock(b.ID)
			visited++
		}
		pos++
	}
	c.scrubCursor = pos % len(c.blocks)
}

// scrubBlock verifies one block's replicas.
func (c *Cluster) scrubBlock(bid BlockID) {
	b := c.blocks[bid]
	if b == nil {
		return
	}
	reps := c.replicas[bid]
	if len(reps) == 0 {
		return
	}
	c.metrics.ReplicasScrubbed += len(reps)
	f := c.fileOf(b)
	if f != nil && f.Encoded {
		c.scrubStripe(f, b)
		return
	}
	for _, dn := range append([]DatanodeID(nil), reps...) {
		if c.datanodes[dn].corrupt[bid] {
			c.reportCorrupt(b, dn)
		}
	}
}

// scrubStripe verifies the erasure stripe containing b by running the
// actual RS codec over synthetic shard contents: each member's clean
// bytes are a deterministic pattern of its block ID, stored parity is the
// codec's encoding of the clean data, and members flagged corrupt get
// their first byte perturbed — so Verify fails exactly when a member has
// rotted, and the flagged members are then quarantined. Stripes with a
// missing member (no live replica) skip Verify — that is a repair
// problem, not a scrub problem — but still surface flagged members.
func (c *Cluster) scrubStripe(f *INode, b *Block) {
	data, parity, ok := c.stripeOf(f, b.ID)
	if !ok {
		return
	}
	flagged := c.flaggedMembers(append(append([]BlockID{}, data...), parity...))
	codec, err := erasure.NewCodec(len(data), len(parity))
	if err == nil && c.stripeFullyLive(data, parity) {
		const shardLen = 16
		shards := make([][]byte, 0, len(data)+len(parity))
		cleanData := make([][]byte, 0, len(data))
		for _, bid := range data {
			cleanData = append(cleanData, shardPattern(bid, shardLen))
		}
		storedParity, perr := codec.Encode(cleanData)
		if perr == nil {
			for i, bid := range data {
				shards = append(shards, perturbIfCorrupt(c, bid, cleanData[i]))
			}
			for i, bid := range parity {
				shards = append(shards, perturbIfCorrupt(c, bid, storedParity[i]))
			}
			if verified, verr := codec.Verify(shards); verr == nil && verified {
				return // codec agrees: stripe is clean
			}
		}
	}
	// Verification failed (or could not run): quarantine flagged members.
	for _, fl := range flagged {
		c.reportCorrupt(c.blocks[fl.bid], fl.dn)
	}
}

type flaggedReplica struct {
	bid BlockID
	dn  DatanodeID
}

// flaggedMembers lists (block, node) pairs in the member set whose stored
// copy is flagged corrupt, in deterministic order.
func (c *Cluster) flaggedMembers(members []BlockID) []flaggedReplica {
	var out []flaggedReplica
	for _, bid := range members {
		for _, dn := range c.replicas[bid] {
			if c.datanodes[dn].corrupt[bid] {
				out = append(out, flaggedReplica{bid, dn})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].bid != out[j].bid {
			return out[i].bid < out[j].bid
		}
		return out[i].dn < out[j].dn
	})
	return out
}

// stripeFullyLive reports whether every stripe member has a replica —
// Verify needs all K+M shards present.
func (c *Cluster) stripeFullyLive(data, parity []BlockID) bool {
	for _, bid := range append(append([]BlockID{}, data...), parity...) {
		if len(c.replicas[bid]) == 0 {
			return false
		}
	}
	return true
}

// shardPattern derives a block's deterministic synthetic contents.
func shardPattern(bid BlockID, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int64(bid)*31 + int64(i)*7 + 3)
	}
	return out
}

// perturbIfCorrupt returns the clean shard, or a bit-flipped copy when any
// replica of the member is flagged corrupt (single-replica members after
// encoding, so "any" is "the" in practice).
func perturbIfCorrupt(c *Cluster, bid BlockID, clean []byte) []byte {
	corrupt := false
	for _, dn := range c.replicas[bid] {
		if c.datanodes[dn].corrupt[bid] {
			corrupt = true
			break
		}
	}
	if !corrupt {
		return clean
	}
	bad := append([]byte(nil), clean...)
	bad[0] ^= 0xff
	return bad
}
