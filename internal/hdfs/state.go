package hdfs

import (
	"fmt"
	"sort"

	"erms/internal/auditlog"
	"erms/internal/netsim"
)

// admit grants a serving session on d, queuing when the node is at its
// session limit ("when the number of sessions has reached its upper bound,
// the connection requests ... will be blocked"). abort fires instead of
// start if the node leaves service while the request is still queued.
func (c *Cluster) admit(d *Datanode, start, abort func()) *pendingSession {
	p := &pendingSession{start: start, abort: abort}
	if d.sessions < d.MaxSessions && d.canServe() {
		d.sessions++
		start()
		return p
	}
	d.waiting = append(d.waiting, p)
	return p
}

// release frees a session and admits the next waiter.
func (c *Cluster) release(d *Datanode) {
	d.sessions--
	for len(d.waiting) > 0 && d.sessions < d.MaxSessions && d.canServe() {
		p := d.waiting[0]
		d.waiting = d.waiting[1:]
		if p.canceled {
			continue
		}
		d.sessions++
		p.start()
	}
}

// Commission switches a standby datanode to active (ERMS "could start
// standby nodes"). Queued admissions drain immediately.
func (c *Cluster) Commission(id DatanodeID) {
	d := c.datanodes[id]
	if d.State != StateStandby {
		return
	}
	d.State = StateActive
	d.activeSince = c.clock.Now()
	d.lastHeartbeat = c.clock.Now()
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateActive)})
	if sp := c.tracer.Instant("hdfs.commission", c.tracer.Current()); sp != 0 {
		c.tracer.SetAttr(sp, "node", d.Name)
	}
	for len(d.waiting) > 0 && d.sessions < d.MaxSessions {
		p := d.waiting[0]
		d.waiting = d.waiting[1:]
		if p.canceled {
			continue
		}
		d.sessions++
		p.start()
	}
	for _, fn := range c.onNodeUp {
		fn(id)
	}
}

// ToStandby powers a node down to standby for energy saving ("after all
// data in a standby node are removed, ERMS could shut down that node").
// The caller is responsible for draining replicas first; replicas still on
// the node simply become unavailable until it is commissioned again.
func (c *Cluster) ToStandby(id DatanodeID) {
	d := c.datanodes[id]
	if d.State != StateActive {
		return
	}
	d.ActiveTime += c.clock.Now() - d.activeSince
	d.State = StateStandby
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateStandby)})
	if sp := c.tracer.Instant("hdfs.standby", c.tracer.Current()); sp != 0 {
		c.tracer.SetAttr(sp, "node", d.Name)
	}
	c.abortServing(d)
	c.abortWaiting(d)
}

// Kill crashes a datanode's process: in-flight transfers it serves abort
// (reads retry elsewhere) and queued admissions fail. With heartbeats
// disabled the namenode notices instantly — replicas are released and
// OnDatanodeDown fires now. With heartbeats enabled the namenode keeps
// counting the node's replicas as live until it misses heartbeats long
// enough to go stale and then dead (declareDead).
func (c *Cluster) Kill(id DatanodeID) {
	d := c.datanodes[id]
	if d.State == StateDown || d.crashed {
		return
	}
	if !c.cfg.Heartbeat.Enabled {
		c.declareDead(id)
		return
	}
	if d.State == StateActive {
		d.ActiveTime += c.clock.Now() - d.activeSince
	}
	d.crashed = true
	c.reindexNode(d)
	c.abortServing(d)
	c.abortWaiting(d)
}

// Decommission gracefully drains a datanode: it keeps serving reads while
// every replica it holds is copied to other nodes, then leaves service as
// StateDecommissioned. done(err) fires when the drain completes; err
// reports blocks that could not be re-homed (they stay on the node and the
// node stays decommissioning). This is the admin workflow whose
// commission/decommission events the paper detects through Condor
// ClassAds.
func (c *Cluster) Decommission(id DatanodeID, done func(error)) {
	d := c.datanodes[id]
	if d.State != StateActive || d.crashed {
		c.finish(done, fmt.Errorf("hdfs: %s is %s, not active", d.Name, d.State))
		return
	}
	d.ActiveTime += c.clock.Now() - d.activeSince
	d.State = StateDecommissioning
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateDecommissioning)})
	blocks := make([]BlockID, 0, d.blocks.Len())
	d.blocks.Each(func(bid BlockID) { blocks = append(blocks, bid) }) // ascending
	outstanding := 0
	var firstErr error
	finishDrain := func() {
		// The node may have left StateDecommissioning while the drain was
		// in flight — killed, or restarted after a kill. Finishing the
		// retirement then would resurrect a dead node (or wipe a live
		// one's accounting), so the decommission aborts instead.
		if d.State != StateDecommissioning {
			c.finish(done, fmt.Errorf("hdfs: decommission of %s aborted: node is %s", d.Name, d.State))
			return
		}
		if firstErr != nil {
			c.finish(done, firstErr)
			return
		}
		// Copies landed everywhere: drop this node's replicas and retire it.
		for _, bid := range blocks {
			if d.HasBlock(bid) {
				c.detachReplica(c.blocks[bid], id)
			}
		}
		d.State = StateDecommissioned
		c.reindexNode(d)
		c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateDecommissioned)})
		c.abortServing(d)
		c.abortWaiting(d)
		c.finish(done, nil)
	}
	complete := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 {
			finishDrain()
		}
	}
	for _, bid := range blocks {
		b := c.blocks[bid]
		targets := c.placement.ChooseTargets(c, b, 1, -1, map[DatanodeID]bool{id: true})
		if len(targets) == 0 {
			if firstErr == nil {
				firstErr = fmt.Errorf("hdfs: no target to drain block %d off %s", bid, d.Name)
			}
			continue
		}
		outstanding++
		c.AddReplica(bid, targets[0], complete)
	}
	if outstanding == 0 {
		finishDrain()
	}
}

// Restart brings a dead node back empty (fresh disk), active. A crashed
// node the namenode has not yet declared dead (heartbeat mode) is declared
// dead first — its replicas release and OnDatanodeDown fires — then the
// fresh process registers and OnDatanodeUp fires.
func (c *Cluster) Restart(id DatanodeID) {
	d := c.datanodes[id]
	if d.crashed && d.State != StateDown {
		c.declareDead(id)
	}
	if d.State != StateDown {
		return
	}
	d.blocks = blockSet{}
	d.corrupt = make(map[BlockID]bool)
	d.reported = make(map[BlockID]bool)
	d.Used = 0
	d.sessions = 0
	d.waiting = nil
	d.crashed = false
	d.stalled = false
	d.Stale = false
	d.State = StateActive
	d.activeSince = c.clock.Now()
	d.lastHeartbeat = c.clock.Now()
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateActive), Flag: true})
	for _, fn := range c.onNodeUp {
		fn(id)
	}
}

// abortServing cancels every flow served from d and fires the registered
// abort handlers (which retry reads on other replicas). Handlers fire in
// deterministic flow-ID order.
func (c *Cluster) abortServing(d *Datanode) {
	if len(d.activeFlows) == 0 {
		return
	}
	flows := d.activeFlows
	d.activeFlows = make(map[*netsim.Flow]*flowHandle)
	ordered := make([]*netsim.Flow, 0, len(flows))
	for f := range flows {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID() < ordered[j].ID() })
	for _, f := range ordered {
		c.fabric.Cancel(f)
	}
	for _, f := range ordered {
		flows[f].abort()
	}
}

// abortWaiting fails every queued admission on d (the node left service).
func (c *Cluster) abortWaiting(d *Datanode) {
	waiting := d.waiting
	d.waiting = nil
	for _, p := range waiting {
		if !p.canceled && p.abort != nil {
			p.abort()
		}
	}
}
