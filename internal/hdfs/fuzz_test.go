package hdfs

import (
	"bytes"
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// fuzzSeedCheckpoint builds a small real checkpoint to seed the corpus.
func fuzzSeedCheckpoint() []byte {
	e := sim.NewEngine()
	c := New(e, Config{Topology: topology.New(topology.Config{})})
	c.CreateFile("/a", 200*mb, 3, -1)
	c.CreateFile("/b", 64*mb, 1, -1)
	e.RunUntil(30 * time.Second)
	c.Kill(3)
	c.ToStandby(5)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeCheckpoint: RestoreCheckpoint must never panic on arbitrary
// bytes, and must be all-or-nothing — either it errors and the cluster is
// untouched (still pristine), or it succeeds into a state that passes
// ConsistencyErrors and re-encodes to the identical byte stream.
func FuzzDecodeCheckpoint(f *testing.F) {
	seed := fuzzSeedCheckpoint()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(checkpointMagic)+4])
	f.Add([]byte("ERMSCKP1"))
	f.Add([]byte("not a checkpoint"))
	f.Add([]byte{})
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		e := sim.NewEngine()
		c := New(e, Config{Topology: topology.New(topology.Config{})})
		if err := c.RestoreCheckpoint(bytes.NewReader(data)); err != nil {
			if c.Files() != 0 || c.LiveBlocks() != 0 || c.nextBlock != 0 {
				t.Fatalf("failed restore left state behind: %d files, %d blocks", c.Files(), c.LiveBlocks())
			}
			return
		}
		if errs := c.ConsistencyErrors(); errs != nil {
			t.Fatalf("accepted checkpoint is inconsistent: %v", errs)
		}
		var out bytes.Buffer
		if err := c.WriteCheckpoint(&out); err != nil {
			t.Fatalf("re-encoding accepted checkpoint: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted checkpoint does not re-encode canonically (%d vs %d bytes)",
				out.Len(), len(data))
		}
	})
}
