package hdfs

import (
	"sort"
	"time"

	"erms/internal/auditlog"
	"erms/internal/netsim"
	"erms/internal/topology"
)

// HeartbeatConfig tunes the heartbeat failure detector. When Enabled, the
// namenode learns of node death only by missing heartbeats: a silent node
// becomes Stale after StaleTimeout (reads avoid it, writes exclude it) and
// dead after DeadTimeout (OnDatanodeDown fires and its replicas are
// released for re-replication). A node that resumes heartbeating before
// DeadTimeout — e.g. its rack partition heals — rejoins with its blocks
// intact; corrupt replicas found in its re-registration block report are
// quarantined.
//
// The timeouts mirror HDFS: dfs.namenode.stale.datanode.interval (30s
// default) and the 2*recheck+10*heartbeat dead interval (10m30s in 0.20's
// successors; we round to 10m).
type HeartbeatConfig struct {
	// Enabled turns the detector on. Off (the default), Kill declares the
	// node dead instantly — the legacy behaviour.
	Enabled bool
	// Interval between heartbeats; default 3s.
	Interval time.Duration
	// StaleTimeout before a silent node is marked stale; default 30s.
	StaleTimeout time.Duration
	// DeadTimeout before a silent node is declared dead; default 10m.
	DeadTimeout time.Duration
}

func (h *HeartbeatConfig) applyDefaults() {
	if h.Interval <= 0 {
		h.Interval = 3 * time.Second
	}
	if h.StaleTimeout <= 0 {
		h.StaleTimeout = 30 * time.Second
	}
	if h.DeadTimeout <= 0 {
		h.DeadTimeout = 10 * time.Minute
	}
}

// heartbeatTick is the namenode's monitor pass: record heartbeats from
// reachable live nodes, and age out silent ones to stale then dead.
// Datanodes are visited in ID order so runs are deterministic.
func (c *Cluster) heartbeatTick(now time.Duration) {
	hb := c.cfg.Heartbeat
	for _, d := range c.datanodes {
		switch d.State {
		case StateStandby, StateDown, StateDecommissioned:
			continue
		}
		if !d.crashed && !d.stalled && !c.partitioned[c.topo.Rack(topology.NodeID(d.ID))] {
			d.lastHeartbeat = now
			if d.Stale {
				d.Stale = false
				c.reindexNode(d)
				c.jlog(auditlog.Entry{Op: auditlog.OpNodeStale, Node: int(d.ID), Flag: false})
				c.reconcileRejoin(d)
			}
			continue
		}
		age := now - d.lastHeartbeat
		switch {
		case age >= hb.DeadTimeout:
			c.declareDead(d.ID)
		case age >= hb.StaleTimeout && !d.Stale:
			d.Stale = true
			c.metrics.StaleTransitions++
			c.reindexNode(d)
			c.jlog(auditlog.Entry{Op: auditlog.OpNodeStale, Node: int(d.ID), Flag: true})
		}
	}
}

// reconcileRejoin handles a stale node resuming heartbeats: its blocks are
// still in the namenode's map (it was never declared dead), but the block
// report it sends on rejoin surfaces replicas that went bad while it was
// unreachable — those are quarantined now.
func (c *Cluster) reconcileRejoin(d *Datanode) {
	if len(d.corrupt) == 0 {
		return
	}
	ids := make([]BlockID, 0, len(d.corrupt))
	for bid := range d.corrupt {
		ids = append(ids, bid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, bid := range ids {
		if b := c.blocks[bid]; b != nil {
			c.reportCorrupt(b, d.ID)
		}
	}
}

// declareDead performs the namenode side of node death: the node leaves
// service, its in-flight transfers abort (retrying elsewhere), its
// replicas drop out of the block map, and OnDatanodeDown fires. With
// heartbeats enabled this runs DeadTimeout after the last heartbeat; with
// them disabled, Kill calls it directly.
func (c *Cluster) declareDead(id DatanodeID) {
	d := c.datanodes[id]
	if d.State == StateDown {
		return
	}
	if d.State == StateActive && !d.crashed {
		d.ActiveTime += c.clock.Now() - d.activeSince
	}
	d.State = StateDown
	d.Stale = false
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpNodeState, Node: int(id), State: int(StateDown)})
	c.abortServing(d)
	c.abortWaiting(d)
	// Drop its replicas from the block map (space bookkeeping stays — the
	// disk is gone with the node, but Used on a dead node is irrelevant).
	d.blocks.Each(func(bid BlockID) {
		c.detachReplica(c.blocks[bid], id)
	})
	// Re-evaluate safe mode before repair decisions fire: in a correlated
	// failure the guard must trip mid-cascade so the remaining deaths defer
	// their re-replication instead of scheduling a repair storm.
	c.evalSafeMode(c.clock.Now())
	for _, fn := range c.onDeadNode {
		fn(id)
	}
}

// PartitionRack cuts rack r off from the rest of the cluster and from
// external clients. Flows crossing the cut abort immediately (reads retry
// on reachable replicas); intra-rack traffic keeps working. With
// heartbeats enabled the rack's nodes stop heartbeating and age to stale,
// then dead; healing before DeadTimeout rejoins them with blocks intact.
func (c *Cluster) PartitionRack(r int) {
	if c.partitioned[r] {
		return
	}
	c.partitioned[r] = true
	c.abortCrossing(r)
}

// HealRack reconnects a partitioned rack. Nodes that were not yet declared
// dead resume heartbeating on the next tick and shed their stale flag;
// nodes already declared dead stay down until restarted.
func (c *Cluster) HealRack(r int) {
	delete(c.partitioned, r)
}

// RackPartitioned reports whether rack r is currently cut off.
func (c *Cluster) RackPartitioned(r int) bool { return c.partitioned[r] }

// NodeUnreachable reports whether the datanode sits in a partitioned rack
// (the namenode and everything outside the rack cannot talk to it).
func (c *Cluster) NodeUnreachable(id DatanodeID) bool {
	if len(c.partitioned) == 0 {
		return false
	}
	return c.partitioned[c.topo.Rack(topology.NodeID(id))]
}

// reachable reports whether endpoints a and b can exchange traffic given
// the current rack partitions. Negative IDs are external clients, which
// partitioned racks cannot reach; nodes inside the same rack always reach
// each other (the top-of-rack switch still works).
func (c *Cluster) reachable(a, b topology.NodeID) bool {
	if len(c.partitioned) == 0 {
		return true
	}
	ra, rb := -1, -1
	if a >= 0 && int(a) < c.topo.NumNodes() {
		ra = c.topo.Rack(a)
	}
	if b >= 0 && int(b) < c.topo.NumNodes() {
		rb = c.topo.Rack(b)
	}
	if ra >= 0 && ra == rb {
		return true
	}
	if ra >= 0 && c.partitioned[ra] {
		return false
	}
	if rb >= 0 && c.partitioned[rb] {
		return false
	}
	return true
}

// abortCrossing cancels every tracked flow with exactly one endpoint in
// rack r — the transfers a fresh partition severs. Handlers fire in
// deterministic flow-ID order.
func (c *Cluster) abortCrossing(r int) {
	type victim struct {
		d *Datanode
		f *netsim.Flow
		h *flowHandle
	}
	var victims []victim
	for _, d := range c.datanodes {
		inside := c.topo.Rack(topology.NodeID(d.ID)) == r
		for f, h := range d.activeFlows {
			peerInside := h.peer >= 0 && int(h.peer) < c.topo.NumNodes() &&
				c.topo.Rack(h.peer) == r
			if inside != peerInside {
				victims = append(victims, victim{d, f, h})
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].f.ID() < victims[j].f.ID() })
	for _, v := range victims {
		delete(v.d.activeFlows, v.f)
		c.fabric.Cancel(v.f)
	}
	for _, v := range victims {
		v.h.abort()
	}
}

// StaleNodes lists datanodes currently marked stale, in ID order.
func (c *Cluster) StaleNodes() []DatanodeID {
	var out []DatanodeID
	for _, d := range c.datanodes {
		if d.Stale {
			out = append(out, d.ID)
		}
	}
	return out
}

// UnrecoverableBlocks lists blocks that are gone for good as of now: no
// live replica and either no erasure protection or too few surviving
// stripe members to reconstruct. A block whose only copies are all flagged
// corrupt counts too. The durability experiments treat a nonzero result as
// data loss.
func (c *Cluster) UnrecoverableBlocks() []BlockID {
	var out []BlockID
	for _, b := range c.blocks {
		if b == nil || c.blockRecoverable(b) {
			continue
		}
		out = append(out, b.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockRecoverable reports whether at least one clean path to the block's
// bytes still exists: a non-corrupt replica, or >= k live stripe members
// of its erasure group.
func (c *Cluster) blockRecoverable(b *Block) bool {
	for _, dn := range c.replicas[b.ID] {
		if !c.datanodes[dn].corrupt[b.ID] {
			return true
		}
	}
	f := c.fileOf(b)
	if f == nil || !f.Encoded {
		return false
	}
	data, parity, ok := c.stripeOf(f, b.ID)
	if !ok {
		return false
	}
	k := len(data)
	live := 0
	for _, member := range append(append([]BlockID{}, data...), parity...) {
		if member == b.ID {
			continue
		}
		for _, dn := range c.replicas[member] {
			if !c.datanodes[dn].corrupt[member] {
				live++
				break
			}
		}
	}
	return live >= k
}
