package hdfs

import (
	"testing"
	"time"
)

// TestReadDetectsCorruptReplica: a client read that lands on a corrupt
// replica counts a checksum failure, quarantines the copy, and retries
// transparently on a clean one.
func TestReadDetectsCorruptReplica(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 3, 0)
	bid := f.Blocks[0]
	// Corrupt exactly the copy the selector will pick first, so the read is
	// guaranteed to trip the checksum and fail over.
	victim, _, ok := c.selectReplica(ExternalClient, bid, nil)
	if !ok {
		t.Fatal("no replica selectable")
	}
	if err := c.CorruptReplica(bid, victim); err != nil {
		t.Fatal(err)
	}
	var res *ReadResult
	c.ReadFile(ExternalClient, "/a", func(r *ReadResult) { res = r })
	e.RunUntil(30 * time.Minute)
	if res == nil {
		t.Fatal("read never completed")
	}
	if res.Err != nil {
		t.Fatalf("read should recover on a clean replica: %v", res.Err)
	}
	m := c.Metrics()
	if m.ChecksumFailures == 0 {
		t.Fatal("checksum failure not counted")
	}
	if m.CorruptDetected == 0 {
		t.Fatal("read-path detection not counted")
	}
	// Once detected, the bad copy must be gone from the block map.
	for _, r := range c.Replicas(bid) {
		if c.Datanode(r).CorruptBlock(bid) {
			t.Fatalf("corrupt replica on %d still credited", r)
		}
	}
	checkConsistency(t, c)
}

// TestScrubberDetectsPlainCorruption: the background scrubber finds a
// silently corrupted replica of a plain (un-encoded) block, quarantines
// it, and fires OnCorruptReplica so the manager can re-replicate.
func TestScrubberDetectsPlainCorruption(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 128*mb, 3, 0)
	bid := f.Blocks[0]
	victim := c.Replicas(bid)[0]
	if err := c.CorruptReplica(bid, victim); err != nil {
		t.Fatal(err)
	}

	var gotBlock BlockID
	var gotNode DatanodeID
	fired := 0
	c.OnCorruptReplica(func(b BlockID, dn DatanodeID) { fired++; gotBlock = b; gotNode = dn })

	stop := c.StartScrubber(ScrubConfig{Period: 10 * time.Second, BlocksPerScan: 100})
	defer stop()
	e.RunUntil(time.Minute)

	if fired != 1 {
		t.Fatalf("OnCorruptReplica fired %d times, want 1", fired)
	}
	if gotBlock != bid || gotNode != victim {
		t.Fatalf("corruption reported as (%d,%d), want (%d,%d)", gotBlock, gotNode, bid, victim)
	}
	if c.Metrics().CorruptDetected != 1 {
		t.Fatalf("CorruptDetected = %d", c.Metrics().CorruptDetected)
	}
	if got := len(c.Replicas(bid)); got != 2 {
		t.Fatalf("corrupt copy not quarantined: %d replicas", got)
	}
	for _, r := range c.Replicas(bid) {
		if r == victim {
			t.Fatal("victim still holds the block")
		}
	}
	checkConsistency(t, c)
}

// TestScrubberDetectsEncodedCorruption: corruption inside an erasure-coded
// stripe is caught by the codec's verify pass even though no plain replica
// comparison is possible.
func TestScrubberDetectsEncodedCorruption(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 256*mb, 3, 0)
	encErr := error(nil)
	encDone := false
	c.EncodeFile("/a", 4, 2, func(err error) { encErr = err; encDone = true })
	e.RunUntil(30 * time.Minute)
	if !encDone || encErr != nil {
		t.Fatalf("encode: done=%v err=%v", encDone, encErr)
	}
	f = c.File("/a")
	if !f.Encoded || len(f.Parity) == 0 {
		t.Fatal("file not encoded")
	}
	bid := f.Blocks[0]
	reps := c.Replicas(bid)
	if len(reps) == 0 {
		t.Fatal("encoded block has no replica")
	}
	if err := c.CorruptReplica(bid, reps[0]); err != nil {
		t.Fatal(err)
	}

	fired := 0
	c.OnCorruptReplica(func(BlockID, DatanodeID) { fired++ })
	stop := c.StartScrubber(ScrubConfig{Period: 10 * time.Second, BlocksPerScan: 200})
	defer stop()
	e.RunFor(2 * time.Minute)

	if fired == 0 {
		t.Fatal("scrubber missed corruption in an encoded stripe")
	}
	if c.Metrics().CorruptDetected == 0 {
		t.Fatal("CorruptDetected not counted for stripe corruption")
	}
	checkConsistency(t, c)
}

// TestLastCopyCorruptionNotDropped: when the corrupt replica is the only
// copy and the block is not erasure-protected, quarantining it would turn
// silent corruption into immediate data loss — the cluster must keep the
// copy and report it exactly once, no matter how many scrub passes see it.
func TestLastCopyCorruptionNotDropped(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 1, 0)
	bid := f.Blocks[0]
	only := c.Replicas(bid)[0]
	if err := c.CorruptReplica(bid, only); err != nil {
		t.Fatal(err)
	}
	fired := 0
	c.OnCorruptReplica(func(BlockID, DatanodeID) { fired++ })
	stop := c.StartScrubber(ScrubConfig{Period: 5 * time.Second, BlocksPerScan: 100})
	defer stop()
	e.RunUntil(time.Minute)

	if got := len(c.Replicas(bid)); got != 1 {
		t.Fatalf("last corrupt copy was dropped: %d replicas", got)
	}
	if c.Replicas(bid)[0] != only {
		t.Fatal("last copy moved off its holder")
	}
	if fired != 1 {
		t.Fatalf("OnCorruptReplica fired %d times, want exactly 1 (report-once)", fired)
	}
	if c.Metrics().CorruptDetected != 1 {
		t.Fatalf("CorruptDetected = %d, want 1", c.Metrics().CorruptDetected)
	}
	checkConsistency(t, c)
}

// TestCorruptReplicaValidation: corruption injection rejects unknown
// blocks and non-holders.
func TestCorruptReplicaValidation(t *testing.T) {
	_, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 2, 0)
	bid := f.Blocks[0]
	if err := c.CorruptReplica(BlockID(99999), 0); err == nil {
		t.Fatal("unknown block accepted")
	}
	holders := map[DatanodeID]bool{}
	for _, r := range c.Replicas(bid) {
		holders[r] = true
	}
	for _, d := range c.Datanodes() {
		if !holders[d.ID] {
			if err := c.CorruptReplica(bid, d.ID); err == nil {
				t.Fatal("non-holder accepted")
			}
			break
		}
	}
}

// TestScrubberScanRate: config arithmetic used in DESIGN.md §7.
func TestScrubberScanRate(t *testing.T) {
	cfg := ScrubConfig{Period: 30 * time.Second, BlocksPerScan: 50}
	want := 50.0 / 30.0
	if got := cfg.ScanRate(); got != want {
		t.Fatalf("ScanRate = %v, want %v", got, want)
	}
}
