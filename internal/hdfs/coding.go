package hdfs

import (
	"fmt"

	"erms/internal/auditlog"
	"erms/internal/erasure"
	"erms/internal/netsim"
	"erms/internal/topology"
)

// EncodeFile erasure-codes a cold file: its data blocks are grouped into
// stripes of up to k, each stripe gains m parity blocks (placed by the
// installed policy, which for ERMS picks the active node holding the
// fewest blocks of the file), and once all parities land the file's data
// replication drops to one ("a replication factor of one and four coding
// parities"). The encode streams every data block to an encoder node and
// the parities from it to their targets, so it costs real cluster
// bandwidth; done(err) fires when the file is fully converted.
func (c *Cluster) EncodeFile(path string, k, m int, done func(error)) {
	if c.tracer.Enabled() {
		sp := c.tracer.Begin("hdfs.encode", c.tracer.Current())
		c.tracer.SetAttr(sp, "path", path)
		c.tracer.SetAttrInt(sp, "k", int64(k))
		c.tracer.SetAttrInt(sp, "m", int64(m))
		inner := done
		done = func(err error) {
			if err != nil {
				c.tracer.SetAttr(sp, "error", err.Error())
			}
			c.tracer.End(sp)
			if inner != nil {
				inner(err)
			}
		}
		prev := c.tracer.Push(sp)
		defer c.tracer.Pop(prev)
	}
	if err := c.writable(); err != nil {
		c.finish(done, err)
		return
	}
	f := c.files[path]
	if f == nil {
		c.finish(done, fmt.Errorf("hdfs: no such file %q", path))
		return
	}
	if f.Encoded {
		c.finish(done, fmt.Errorf("hdfs: %q is already encoded", path))
		return
	}
	if k <= 0 || m <= 0 {
		c.finish(done, fmt.Errorf("hdfs: invalid stripe RS(%d,%d)", k, m))
		return
	}
	// Validate geometry early — the real codec would be built per stripe.
	if _, err := erasure.NewCodec(k, m); err != nil {
		c.finish(done, err)
		return
	}
	f.EncodeK, f.EncodeM = k, m
	c.jlog(auditlog.Entry{Op: auditlog.OpEncodeGeom, File: f.id, K: k, M: m})
	stripes := (len(f.Blocks) + k - 1) / k
	outstanding := 0
	var firstErr error
	launched := false
	complete := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		outstanding--
		if outstanding == 0 && launched {
			c.finishEncode(f, firstErr, done)
		}
	}
	for s := 0; s < stripes; s++ {
		lo := s * k
		hi := lo + k
		if hi > len(f.Blocks) {
			hi = len(f.Blocks)
		}
		stripe := f.Blocks[lo:hi]
		// Parities of one stripe must land on distinct nodes (they are
		// shards of the same codeword); targets chosen in this burst are
		// excluded for the stripe's remaining parities.
		exclude := map[DatanodeID]bool{}
		for p := 0; p < m; p++ {
			pb := &Block{
				ID:     c.nextBlock,
				File:   path,
				Index:  len(f.Blocks) + s*m + p,
				Size:   c.cfg.BlockSize,
				Parity: true,
				Group:  s,
				fileID: f.id,
			}
			c.addBlock(pb)
			f.Parity = append(f.Parity, pb.ID)
			targets := c.placement.ChooseTargets(c, pb, 1, -1, exclude)
			if len(targets) == 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("hdfs: no target for parity of %q", path)
				}
				continue
			}
			exclude[targets[0]] = true
			outstanding++
			c.writeParity(stripe, pb, targets[0], complete)
		}
	}
	launched = true
	if outstanding == 0 {
		c.finish(done, firstErr)
	}
}

// writeParity streams the stripe's data blocks to the parity target (the
// encoder runs there) and accounts the parity write on its disk.
func (c *Cluster) writeParity(stripe []BlockID, pb *Block, target DatanodeID, done func(error)) {
	td := c.datanodes[target]
	if td.UncommittedFree() < pb.Size {
		c.finish(done, fmt.Errorf("hdfs: %s out of space for parity", td.Name))
		return
	}
	// Read each stripe block from its least-loaded replica to the encoder.
	remaining := len(stripe)
	var firstErr error
	if remaining == 0 {
		c.finish(done, fmt.Errorf("hdfs: empty stripe"))
		return
	}
	for _, bid := range stripe {
		b := c.blocks[bid]
		src, ok := c.chooseSource(bid, target, true)
		if !ok {
			remaining--
			if firstErr == nil {
				firstErr = fmt.Errorf("hdfs: no source for block %d during encode", bid)
			}
			continue
		}
		sd := c.datanodes[src]
		path := c.topo.ReadPath(topology.NodeID(src), topology.NodeID(target))
		flow := c.fabric.StartFlow(path, b.Size, 0, func(f *netsim.Flow) {
			delete(sd.activeFlows, f)
			remaining--
			if remaining == 0 {
				c.commitParity(pb, target, firstErr, done)
			}
		})
		sd.activeFlows[flow] = &flowHandle{peer: topology.NodeID(target), abort: func() {
			remaining--
			if firstErr == nil {
				firstErr = fmt.Errorf("hdfs: source died during encode of %q", pb.File)
			}
			if remaining == 0 {
				c.commitParity(pb, target, firstErr, done)
			}
		}}
	}
	if remaining == 0 {
		c.finish(done, firstErr)
	}
}

func (c *Cluster) commitParity(pb *Block, target DatanodeID, err error, done func(error)) {
	if err != nil {
		c.finish(done, err)
		return
	}
	td := c.datanodes[target]
	if td.State == StateDown || td.crashed {
		c.finish(done, fmt.Errorf("hdfs: parity target %s died", td.Name))
		return
	}
	// Local parity write: consumes the encoder's disk for one block.
	flow := c.fabric.StartFlow([]topology.LinkID{c.topo.Node(topology.NodeID(target)).Disk},
		pb.Size, 0, func(*netsim.Flow) {
			if c.Block(pb.ID) != pb {
				c.finish(done, fmt.Errorf("hdfs: parity block %d deleted during write", pb.ID))
				return
			}
			c.attachReplica(pb, target)
			c.finish(done, nil)
		})
	_ = flow
}

// KeeperChooser is an optional placement-policy extension: when a file is
// encoded down to one replica per block, ChooseKeeper picks which replica
// survives. stripeLoad counts stripe members (kept data + parity) already
// resident per node; keeping members on distinct nodes preserves the
// code's full failure tolerance.
type KeeperChooser interface {
	ChooseKeeper(c *Cluster, b *Block, stripeLoad map[DatanodeID]int) (DatanodeID, bool)
}

// finishEncode drops data replication to one replica per block and marks
// the file encoded. The surviving replica of each block is chosen
// stripe-aware: RS(k,m) only tolerates m lost *shards*, so two stripe
// members sharing a disk would turn one node failure into two shard
// losses.
func (c *Cluster) finishEncode(f *INode, err error, done func(error)) {
	if err != nil {
		c.finish(done, err)
		return
	}
	k := f.EncodeK
	if k <= 0 {
		k = len(f.Blocks)
	}
	keeperPolicy, _ := c.placement.(KeeperChooser)
	stripes := (len(f.Blocks) + k - 1) / k
	for s := 0; s < stripes; s++ {
		lo, hi := s*k, (s+1)*k
		if hi > len(f.Blocks) {
			hi = len(f.Blocks)
		}
		// Seed the per-node stripe census with this stripe's parities.
		load := map[DatanodeID]int{}
		for _, pid := range f.Parity {
			if c.blocks[pid].Group != s {
				continue
			}
			for _, r := range c.replicas[pid] {
				load[r]++
			}
		}
		for _, bid := range f.Blocks[lo:hi] {
			b := c.blocks[bid]
			var keeper DatanodeID
			ok := false
			if keeperPolicy != nil {
				keeper, ok = keeperPolicy.ChooseKeeper(c, b, load)
			}
			if !ok {
				keeper, ok = c.defaultKeeper(b, load)
			}
			if !ok {
				continue
			}
			for _, dn := range append([]DatanodeID(nil), c.replicas[bid]...) {
				if dn == keeper {
					continue
				}
				if e := c.RemoveReplica(bid, dn); e != nil {
					break
				}
			}
			load[keeper]++
		}
	}
	f.Encoded = true
	c.jlog(auditlog.Entry{Op: auditlog.OpEncodeDone, File: f.id})
	c.reassessFile(f)
	c.metrics.FilesEncoded++
	c.finish(done, nil)
}

// defaultKeeper keeps the replica whose node hosts the fewest stripe
// members (then the lightest node, then the smallest ID).
func (c *Cluster) defaultKeeper(b *Block, stripeLoad map[DatanodeID]int) (DatanodeID, bool) {
	var best DatanodeID = -1
	bestKey := [3]int{1 << 30, 1 << 30, 1 << 30}
	for _, r := range c.replicas[b.ID] {
		d := c.datanodes[r]
		if d.State == StateDown || d.crashed || d.corrupt[b.ID] {
			continue
		}
		key := [3]int{stripeLoad[r], d.PlacementLoad(), int(r)}
		if best < 0 || less3(key, bestKey) {
			best, bestKey = r, key
		}
	}
	return best, best >= 0
}

// stripeOf returns the data and parity block IDs of the stripe containing
// block bid (data or parity). Parity blocks carry their stripe in Group;
// data blocks derive it from their index.
func (c *Cluster) stripeOf(f *INode, bid BlockID) (data, parity []BlockID, ok bool) {
	b := c.Block(bid)
	if b == nil {
		return nil, nil, false
	}
	if len(f.Parity) == 0 || len(f.Blocks) == 0 || f.EncodeK <= 0 {
		return nil, nil, false
	}
	k := f.EncodeK
	group := b.Group
	if !b.Parity {
		group = b.Index / k
	}
	lo, hi := group*k, (group+1)*k
	if hi > len(f.Blocks) {
		hi = len(f.Blocks)
	}
	if lo >= hi {
		return nil, nil, false
	}
	data = f.Blocks[lo:hi]
	for _, pid := range f.Parity {
		if c.blocks[pid].Group == group {
			parity = append(parity, pid)
		}
	}
	return data, parity, true
}

// ReconstructBlock rebuilds a lost data block of an encoded file from its
// surviving stripe members, placing the rebuilt block on a policy-chosen
// node. done(err) fires when the block is live again.
func (c *Cluster) ReconstructBlock(bid BlockID, done func(error)) {
	b := c.Block(bid)
	if b == nil {
		c.finish(done, fmt.Errorf("hdfs: no such block %d", bid))
		return
	}
	f := c.fileOf(b)
	if f == nil || !f.Encoded {
		c.finish(done, fmt.Errorf("hdfs: block %d is not erasure-protected", bid))
		return
	}
	if len(c.replicas[bid]) > 0 {
		c.finish(done, nil) // nothing lost
		return
	}
	data, parity, ok := c.stripeOf(f, bid)
	if !ok {
		c.finish(done, fmt.Errorf("hdfs: no stripe for block %d", bid))
		return
	}
	// Need k live members of the stripe (any mix of data+parity), each
	// with at least one clean, servable replica.
	k := len(data)
	var sources []BlockID
	for _, cand := range append(append([]BlockID{}, data...), parity...) {
		if cand == bid {
			continue
		}
		if c.hasCleanReplica(cand) {
			sources = append(sources, cand)
		}
		if len(sources) == k {
			break
		}
	}
	if len(sources) < k {
		c.finish(done, fmt.Errorf("hdfs: stripe of block %d has only %d of %d members live",
			bid, len(sources), k))
		return
	}
	targets := c.placement.ChooseTargets(c, b, 1, -1, nil)
	if len(targets) == 0 {
		c.finish(done, fmt.Errorf("hdfs: no target to rebuild block %d", bid))
		return
	}
	target := targets[0]
	// Stream the k sources to the rebuild target, then a local disk write.
	remaining := len(sources)
	var firstErr error
	for _, sid := range sources {
		sb := c.blocks[sid]
		src, ok := c.chooseSource(sid, target, true)
		if !ok {
			remaining--
			if firstErr == nil {
				firstErr = fmt.Errorf("hdfs: lost source %d mid-rebuild", sid)
			}
			continue
		}
		sd := c.datanodes[src]
		path := c.topo.ReadPath(topology.NodeID(src), topology.NodeID(target))
		flow := c.fabric.StartFlow(path, sb.Size, 0, func(fl *netsim.Flow) {
			delete(sd.activeFlows, fl)
			remaining--
			if remaining == 0 {
				c.commitRebuild(b, target, firstErr, done)
			}
		})
		sd.activeFlows[flow] = &flowHandle{peer: topology.NodeID(target), abort: func() {
			remaining--
			if firstErr == nil {
				firstErr = fmt.Errorf("hdfs: source died during rebuild")
			}
			if remaining == 0 {
				c.commitRebuild(b, target, firstErr, done)
			}
		}}
	}
	if remaining == 0 {
		c.finish(done, firstErr)
	}
}

func (c *Cluster) commitRebuild(b *Block, target DatanodeID, err error, done func(error)) {
	if err != nil {
		c.finish(done, err)
		return
	}
	td := c.datanodes[target]
	if td.State == StateDown || td.crashed || td.UncommittedFree() < b.Size {
		c.finish(done, fmt.Errorf("hdfs: rebuild target %s unusable", td.Name))
		return
	}
	c.fabric.StartFlow([]topology.LinkID{c.topo.Node(topology.NodeID(target)).Disk},
		b.Size, 0, func(*netsim.Flow) {
			if c.Block(b.ID) != b {
				c.finish(done, fmt.Errorf("hdfs: block %d deleted during rebuild", b.ID))
				return
			}
			c.attachReplica(b, target)
			c.metrics.BlocksRebuilt++
			c.finish(done, nil)
		})
}

// hasCleanReplica reports whether at least one replica of the block is on
// a live, non-crashed node and not flagged corrupt.
func (c *Cluster) hasCleanReplica(id BlockID) bool {
	for _, dn := range c.replicas[id] {
		d := c.datanodes[dn]
		if d.State != StateDown && !d.crashed && !d.corrupt[id] {
			return true
		}
	}
	return false
}

// CancelEncoding rolls back a failed, partial encode: parity blocks are
// dropped and the stripe geometry cleared, leaving the file plain. It is
// a no-op on files whose encode completed (Encoded is set).
func (c *Cluster) CancelEncoding(path string) error {
	f := c.files[path]
	if f == nil {
		return fmt.Errorf("hdfs: no such file %q", path)
	}
	if f.Encoded {
		return fmt.Errorf("hdfs: %q is fully encoded; use DecodeFile", path)
	}
	for _, pid := range f.Parity {
		pb := c.blocks[pid]
		for _, dn := range append([]DatanodeID(nil), c.replicas[pid]...) {
			c.detachReplica(pb, dn)
		}
		c.dropBlock(pid)
	}
	f.Parity = nil
	f.EncodeK, f.EncodeM = 0, 0
	c.jlog(auditlog.Entry{Op: auditlog.OpClearGeom, File: f.id})
	return nil
}

// DecodeFile restores an encoded file to plain replication n: every block
// is re-replicated to n and the parities are dropped.
func (c *Cluster) DecodeFile(path string, n int, done func(error)) {
	if c.tracer.Enabled() {
		sp := c.tracer.Begin("hdfs.decode", c.tracer.Current())
		c.tracer.SetAttr(sp, "path", path)
		inner := done
		done = func(err error) {
			if err != nil {
				c.tracer.SetAttr(sp, "error", err.Error())
			}
			c.tracer.End(sp)
			if inner != nil {
				inner(err)
			}
		}
		prev := c.tracer.Push(sp)
		defer c.tracer.Pop(prev)
	}
	if err := c.writable(); err != nil {
		c.finish(done, err)
		return
	}
	f := c.files[path]
	if f == nil {
		c.finish(done, fmt.Errorf("hdfs: no such file %q", path))
		return
	}
	if !f.Encoded {
		c.finish(done, fmt.Errorf("hdfs: %q is not encoded", path))
		return
	}
	f.Encoded = false
	c.jlog(auditlog.Entry{Op: auditlog.OpDecodeStart, File: f.id})
	for _, pid := range f.Parity {
		pb := c.blocks[pid]
		for _, dn := range append([]DatanodeID(nil), c.replicas[pid]...) {
			c.detachReplica(pb, dn)
		}
		c.dropBlock(pid)
	}
	f.Parity = nil
	c.reassessFile(f)
	c.SetReplication(path, n, WholeAtOnce, done)
}
