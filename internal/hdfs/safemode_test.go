package hdfs

import (
	"errors"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/sim"
	"erms/internal/topology"
)

// newSafeModeCluster builds a heartbeat cluster with the safe-mode guard
// on: nodes go stale at 30s and dead at 2m, the guard trips when fewer
// than 3/4 of the datanodes are live, and exit needs a 1-minute dwell.
func newSafeModeCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{
		Topology: topo,
		Heartbeat: HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  2 * time.Minute,
		},
		SafeMode: SafeModeConfig{
			Enabled:       true,
			NodeThreshold: 0.75,
			Dwell:         time.Minute,
			CheckInterval: 3 * time.Second,
		},
	})
	return e, c
}

// TestSafeModeThresholdEntryAndDwellExit pins the guard's state machine:
// losing a third of the cluster trips it, recovery alone does not clear it
// until the thresholds have held for the full dwell.
func TestSafeModeThresholdEntryAndDwellExit(t *testing.T) {
	e, c := newSafeModeCluster(t)
	for _, p := range []string{"/sm/a", "/sm/b"} {
		if _, err := c.CreateFile(p, 192*mb, 3, -1); err != nil {
			t.Fatal(err)
		}
	}
	// Rack 0 dies whole: 6 of 18 nodes, LiveNodeFraction 0.667 < 0.75.
	victims := c.Topology().NodesInRack(0)
	e.At(1*time.Second, func() {
		for _, n := range victims {
			c.Kill(DatanodeID(n))
		}
	})

	// Crashed nodes go silent; staleness alone must trip the guard well
	// before the dead declarations (the point of the NodeThreshold).
	e.RunUntil(45 * time.Second)
	if !c.InSafeMode() {
		t.Fatal("guard not tripped by mass staleness")
	}
	if got := c.Metrics().SafeModeEntries; got != 1 {
		t.Fatalf("SafeModeEntries = %d, want 1", got)
	}

	// Past DeadTimeout the nodes are Down; still unhealthy, still in.
	e.RunUntil(4 * time.Minute)
	if !c.InSafeMode() {
		t.Fatal("guard dropped while a third of the cluster is dead")
	}
	if frac := c.LiveNodeFraction(); frac >= 0.75 {
		t.Fatalf("LiveNodeFraction = %v with rack 0 dead", frac)
	}

	// Rack 0 comes back at 5m. The thresholds are met immediately, but the
	// guard must hold for the dwell before exiting.
	e.At(5*time.Minute, func() {
		for _, n := range victims {
			c.Restart(DatanodeID(n))
		}
	})
	e.RunUntil(5*time.Minute + 50*time.Second)
	if !c.InSafeMode() {
		t.Fatal("guard exited before the dwell elapsed")
	}
	e.RunUntil(6*time.Minute + 30*time.Second)
	if c.InSafeMode() {
		t.Fatal("guard still on after thresholds held for the dwell")
	}
	if m := c.Metrics(); m.SafeModeEntries != 1 || m.SafeModeExits != 1 {
		t.Fatalf("entries/exits = %d/%d, want 1/1", m.SafeModeEntries, m.SafeModeExits)
	}
	checkConsistency(t, c)
}

// TestSafeModeManualEntryGatesMutations: dfsadmin-style manual safe mode
// rejects every namespace mutation with ErrSafeMode, ignores the automatic
// monitor (the cluster is perfectly healthy), and only LeaveSafeMode
// clears it.
func TestSafeModeManualEntryGatesMutations(t *testing.T) {
	e, c := newSafeModeCluster(t)
	if _, err := c.CreateFile("/pre", 64*mb, 3, -1); err != nil {
		t.Fatal(err)
	}
	c.EnterSafeMode()

	if _, err := c.CreateFile("/during", 64*mb, 3, -1); !errors.Is(err, ErrSafeMode) {
		t.Fatalf("CreateFile in safe mode: err = %v, want ErrSafeMode", err)
	}
	if err := c.DeleteFile("/pre"); !errors.Is(err, ErrSafeMode) {
		t.Fatalf("DeleteFile in safe mode: err = %v, want ErrSafeMode", err)
	}
	if err := c.Rename("/pre", "/post"); !errors.Is(err, ErrSafeMode) {
		t.Fatalf("Rename in safe mode: err = %v, want ErrSafeMode", err)
	}
	if got := c.Metrics().SafeModeRejections; got != 3 {
		t.Fatalf("SafeModeRejections = %d, want 3", got)
	}

	// A healthy cluster and many monitor ticks later, a manual entry still
	// holds — the automatic exit path must not touch it.
	e.RunUntil(10 * time.Minute)
	if !c.InSafeMode() {
		t.Fatal("monitor auto-exited a manual safe-mode entry")
	}

	c.LeaveSafeMode()
	if c.InSafeMode() {
		t.Fatal("LeaveSafeMode did not exit")
	}
	if _, err := c.CreateFile("/during", 64*mb, 3, -1); err != nil {
		t.Fatalf("CreateFile after leave: %v", err)
	}
	checkConsistency(t, c)
}

// TestFencingOutranksSafeMode: once the shared journal's epoch moves past
// this namenode's (a standby won the writer election), every mutation is
// ErrFenced — even in safe mode, which is checked second — until the node
// re-adopts the journal epoch.
func TestFencingOutranksSafeMode(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{
		Topology: topology.New(topology.Config{}),
		SafeMode: SafeModeConfig{Enabled: true},
	})
	c.SetJournal(auditlog.NewJournal())
	if _, err := c.CreateFile("/a", 64*mb, 3, -1); err != nil {
		t.Fatal(err)
	}
	if c.Fenced() {
		t.Fatal("writer fenced against its own journal")
	}

	// Standby promotion elsewhere bumps the shared journal's epoch.
	c.Journal().BumpEpoch()
	if !c.Fenced() {
		t.Fatal("epoch bump did not fence the stale writer")
	}
	if _, err := c.CreateFile("/b", 64*mb, 3, -1); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced CreateFile: err = %v, want ErrFenced", err)
	}
	c.EnterSafeMode()
	if err := c.DeleteFile("/a"); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced+safemode DeleteFile: err = %v, want ErrFenced (fencing first)", err)
	}
	if got := c.Metrics().FencedWritesRejected; got != 2 {
		t.Fatalf("FencedWritesRejected = %d, want 2", got)
	}

	// Winning the election back: adopt the journal epoch, leave safe mode.
	c.AdoptEpoch()
	c.LeaveSafeMode()
	if c.Fenced() {
		t.Fatal("still fenced after AdoptEpoch")
	}
	if _, err := c.CreateFile("/b", 64*mb, 3, -1); err != nil {
		t.Fatalf("CreateFile after re-election: %v", err)
	}
	if got := c.Metrics().FencedWritesApplied; got != 0 {
		t.Fatalf("FencedWritesApplied = %d — a fenced mutation reached the journal", got)
	}
}

// TestFlappingNodeDoesNotDoubleReleaseReplicas drives one node through a
// stale → heartbeat → stale → dead cycle. The rejoin must re-credit
// nothing (the replicas were never released) and the eventual death must
// release each replica exactly once — a double release would corrupt the
// under-replication bookkeeping that repair scheduling keys off.
func TestFlappingNodeDoesNotDoubleReleaseReplicas(t *testing.T) {
	e, c := newSafeModeCluster(t)
	f, err := c.CreateFile("/flap", 192*mb, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Replicas(f.Blocks[0])[0]
	heldBlocks := []BlockID{}
	for _, bid := range f.Blocks {
		if c.Datanode(victim).HasBlock(bid) {
			heldBlocks = append(heldBlocks, bid)
		}
	}
	if len(heldBlocks) == 0 {
		t.Fatal("victim holds nothing")
	}

	e.At(1*time.Second, func() { c.StallNode(victim, true) })
	e.RunUntil(40 * time.Second)
	if !c.Datanode(victim).Stale {
		t.Fatal("victim not stale after first flap")
	}
	if got := len(c.Replicas(f.Blocks[0])); got != 3 {
		t.Fatalf("staleness released replicas: %d", got)
	}

	// Heartbeats resume: the node rejoins, stale clears, nothing moves.
	e.At(41*time.Second, func() { c.StallNode(victim, false) })
	e.RunUntil(50 * time.Second)
	if c.Datanode(victim).Stale {
		t.Fatal("victim still stale after heartbeats resumed")
	}
	if got := len(c.Replicas(f.Blocks[0])); got != 3 {
		t.Fatalf("rejoin changed replica count: %d", got)
	}
	if got := len(c.UnderReplicated()); got != 0 {
		t.Fatalf("flap left %d blocks marked under-replicated", got)
	}

	// Second flap runs to death. lastHeartbeat was refreshed by the rejoin,
	// so the dead clock restarts from the second stall.
	e.At(55*time.Second, func() { c.StallNode(victim, true) })
	e.RunUntil(2 * time.Minute)
	if got := c.Datanode(victim).State; got != StateActive {
		t.Fatalf("dead clock did not restart on rejoin: state %s at 2m", got)
	}
	e.RunUntil(4 * time.Minute)
	if got := c.Datanode(victim).State; got != StateDown {
		t.Fatalf("victim not dead: %s", got)
	}
	if got := c.Metrics().StaleTransitions; got != 2 {
		t.Fatalf("StaleTransitions = %d, want 2", got)
	}
	for _, bid := range heldBlocks {
		reps := c.Replicas(bid)
		if len(reps) != 2 {
			t.Fatalf("block %d has %d replicas after single death, want 2", bid, len(reps))
		}
		for _, r := range reps {
			if r == victim {
				t.Fatalf("block %d still credited to the dead node", bid)
			}
		}
	}
	if got := len(c.UnderReplicated()); got != len(heldBlocks) {
		t.Fatalf("under-replicated set = %d blocks, want %d", got, len(heldBlocks))
	}
	// Nothing further may release again: the sets must be stable.
	e.RunUntil(6 * time.Minute)
	if got := len(c.UnderReplicated()); got != len(heldBlocks) {
		t.Fatalf("under-replicated set drifted to %d after death settled", got)
	}
	checkConsistency(t, c)
}
