package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// Failure-injection tests: the cluster must stay consistent and make
// progress when nodes die at the worst moments.

func TestKillSourceDuringReplication(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 256*mb, 2, 0)
	var err error
	done := false
	c.SetReplication("/a", 4, WholeAtOnce, func(e2 error) { err = e2; done = true })
	// Kill one source mid-burst: transfers sourced there must retry from
	// the surviving replica.
	e.Schedule(1500*time.Millisecond, func() { c.Kill(c.Replicas(f.Blocks[0])[0]) })
	e.Run()
	if !done {
		t.Fatal("replication never completed")
	}
	if err != nil {
		t.Fatalf("replication failed despite a live source: %v", err)
	}
	checkConsistency(t, c)
	for _, bid := range f.Blocks {
		if got := len(c.Replicas(bid)); got < 3 {
			// The dead node's own replica is gone; the grow added 2 new
			// ones on live nodes at minimum.
			t.Fatalf("block %d has %d replicas", bid, got)
		}
	}
}

func TestKillTargetDuringReplication(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 1, 0)
	bid := c.File("/a").Blocks[0]
	// Pick the target the policy will use and kill it mid-copy.
	targets := c.PlacementPolicy().ChooseTargets(c, c.Block(bid), 1, -1, nil)
	if len(targets) != 1 {
		t.Fatal("no target")
	}
	var err error
	done := false
	c.AddReplica(bid, targets[0], func(e2 error) { err = e2; done = true })
	e.Schedule(1200*time.Millisecond, func() { c.Kill(targets[0]) })
	e.Run()
	if !done {
		t.Fatal("AddReplica never completed")
	}
	if err == nil {
		t.Fatal("copy to a dead target should fail")
	}
	checkConsistency(t, c)
	if len(c.Replicas(bid)) != 1 {
		t.Fatalf("replicas = %v", c.Replicas(bid))
	}
}

func TestKillEncoderSourceDuringEncode(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/cold", 320*mb, 3, 0)
	var err error
	done := false
	c.EncodeFile("/cold", 5, 2, func(e2 error) { err = e2; done = true })
	e.Schedule(500*time.Millisecond, func() {
		c.Kill(c.Replicas(f.Blocks[0])[0])
	})
	e.Run()
	if !done {
		t.Fatal("encode never completed")
	}
	// Either outcome is acceptable (fail cleanly or succeed from other
	// replicas), but the namespace must stay consistent either way.
	_ = err
	checkConsistency(t, c)
}

func TestCascadingFailuresWithMonitor(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 320*mb, 3, 0)
	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()
	// Kill three nodes 30 s apart; triplication + re-replication must keep
	// every block alive.
	victims := map[DatanodeID]bool{}
	for i, bid := range f.Blocks[:3] {
		reps := c.Replicas(bid)
		for _, r := range reps {
			if !victims[r] {
				victims[r] = true
				r := r
				e.Schedule(time.Duration(i+1)*30*time.Second, func() { c.Kill(r) })
				break
			}
		}
	}
	e.RunUntil(10 * time.Minute)
	for _, bid := range f.Blocks {
		if len(c.Replicas(bid)) != 3 {
			t.Fatalf("block %d not healed: %v", bid, c.Replicas(bid))
		}
	}
	checkConsistency(t, c)
}

func TestCapacityExhaustion(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo, NodeCapacity: 200 * mb})
	// 200 MB per node x 18 = 3.6 GB raw; a 512 MB file at 3x wants 1.5 GB —
	// fine. A second one at 8x would not fit.
	if _, err := c.CreateFile("/a", 512*mb, 3, -1); err != nil {
		t.Fatal(err)
	}
	var err error
	done := false
	c.SetReplication("/a", 18, WholeAtOnce, func(e2 error) { err = e2; done = true })
	e.Run()
	if !done {
		t.Fatal("setrep never completed")
	}
	if err == nil {
		t.Fatal("over-capacity replication should report an error")
	}
	checkConsistency(t, c)
	// Every node must stay within capacity.
	for _, d := range c.Datanodes() {
		if d.Used > d.Capacity {
			t.Fatalf("%s over capacity: %v > %v", d.Name, d.Used, d.Capacity)
		}
	}
}

func TestReadDuringMassFailure(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 640*mb, 3, 0)
	results := 0
	failures := 0
	for i := 0; i < 10; i++ {
		c.ReadFileAt(topology.NodeID(i), "/a", i, func(r *ReadResult) {
			results++
			if r.Err != nil {
				failures++
			}
		})
	}
	// Kill a third of the cluster during the reads.
	for i := 0; i < 6; i++ {
		id := DatanodeID(i * 3)
		e.Schedule(time.Duration(200+i*150)*time.Millisecond, func() { c.Kill(id) })
	}
	e.Run()
	if results != 10 {
		t.Fatalf("only %d of 10 reads called back", results)
	}
	// With 3x replication across 3 racks, most reads should survive six
	// node deaths; all callbacks must fire regardless.
	if failures == 10 {
		t.Fatal("every read failed; retry path broken")
	}
	checkConsistency(t, c)
}

func TestStandbyTransitionDuringRead(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 128*mb, 2, 0)
	var res *ReadResult
	c.ReadFile(9, "/a", func(r *ReadResult) { res = r })
	// Push the serving node to standby mid-read: the read must fail over.
	e.Schedule(300*time.Millisecond, func() {
		for _, r := range c.Replicas(c.File("/a").Blocks[0]) {
			c.ToStandby(r)
			break
		}
	})
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("read should survive standby transition: %+v", res)
	}
}
