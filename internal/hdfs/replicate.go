package hdfs

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/auditlog"
	"erms/internal/netsim"
	"erms/internal/sim"
	"erms/internal/topology"
)

// chooseSource picks the replica to copy from: least busy first (serving
// sessions plus outbound AND inbound transfers — a node mid-way through
// receiving a repair copy is a busy disk, not an idle source), then a node
// in the target's rack (cheaper transfer), then smallest ID. Load comes
// first so a burst of copies fans out across source disks instead of
// hammering one replica. Standby holders can serve replication even though
// they do not serve client reads (the node is powered for the transfer).
//
// allowLocal permits the target node itself as the source (a node-local
// disk read). Re-replicating a block to a node already holding it is
// meaningless, so AddReplica passes false — but encode and rebuild read
// *other* blocks of a stripe to the target, and the target holding the
// only clean copy of one of them must not doom the operation.
func (c *Cluster) chooseSource(id BlockID, target DatanodeID, allowLocal bool) (DatanodeID, bool) {
	var best DatanodeID = -1
	bestKey := [3]int{1 << 30, 99, 1 << 30}
	for _, r := range c.replicas[id] {
		d := c.datanodes[r]
		if d.State == StateDown || d.crashed || (r == target && !allowLocal) {
			continue
		}
		// Never copy from a corrupt replica (it would propagate the rot) or
		// across a partition the transfer cannot cross.
		if d.corrupt[id] || !c.reachable(topology.NodeID(r), topology.NodeID(target)) {
			continue
		}
		rackTier := 1
		if c.topo.SameRack(topology.NodeID(r), topology.NodeID(target)) {
			rackTier = 0
		}
		key := [3]int{d.sessions + d.xferOut + d.xferIn, rackTier, int(r)}
		if best < 0 || less3(key, bestKey) {
			best, bestKey = r, key
		}
	}
	return best, best >= 0
}

func less3(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// AddReplica copies block id onto target, calling done(err) when the
// transfer lands. The copy streams disk-to-disk over the fabric.
func (c *Cluster) AddReplica(id BlockID, target DatanodeID, done func(error)) {
	c.AddReplicaLimited(id, target, 0, done)
}

// AddReplicaLimited is AddReplica with a per-flow rate cap in bytes/sec
// (0 = unlimited). The repair pipeline uses it to keep recovery traffic
// inside its bandwidth budget; the cap survives mid-copy retries.
func (c *Cluster) AddReplicaLimited(id BlockID, target DatanodeID, maxRate float64, done func(error)) {
	parentSpan := c.tracer.Current()
	sp := c.tracer.Begin("hdfs.replica_add", parentSpan)
	c.tracer.SetAttrInt(sp, "block", int64(id))
	c.tracer.SetAttrInt(sp, "target", int64(target))
	fail := func(err error) {
		if c.tracer.Enabled() {
			c.tracer.SetAttr(sp, "error", err.Error())
			c.tracer.End(sp)
		}
		c.finish(done, err)
	}
	b := c.Block(id)
	if b == nil {
		fail(fmt.Errorf("hdfs: no such block %d", id))
		return
	}
	td := c.datanodes[target]
	if td.State == StateDown || td.crashed {
		fail(fmt.Errorf("hdfs: target %s is down", td.Name))
		return
	}
	if c.NodeUnreachable(target) {
		fail(fmt.Errorf("hdfs: target %s is unreachable (partitioned)", td.Name))
		return
	}
	if td.HasBlock(id) {
		fail(fmt.Errorf("hdfs: %s already holds block %d", td.Name, id))
		return
	}
	if td.UncommittedFree() < b.Size {
		fail(fmt.Errorf("hdfs: %s is out of space", td.Name))
		return
	}
	// The transfer starts after the command reaches the datanode on its
	// next heartbeat; the source is chosen then, so freshly landed
	// replicas can serve later transfers.
	td.pendingAdds++
	td.pendingBytes += b.Size
	c.reindexNode(td)
	settled := false
	settle := func() {
		if !settled {
			settled = true
			td.pendingAdds--
			td.pendingBytes -= b.Size
			c.reindexNode(td)
		}
	}
	c.clock.Schedule(c.cfg.ReplCommandLatency, func() {
		if td.State == StateDown || td.crashed || c.NodeUnreachable(target) {
			settle()
			fail(fmt.Errorf("hdfs: target %s died before copy", td.Name))
			return
		}
		if c.Block(id) != b { // file deleted while the command was in flight
			settle()
			fail(fmt.Errorf("hdfs: block %d deleted before copy", id))
			return
		}
		if td.HasBlock(id) {
			settle()
			c.tracer.End(sp)
			c.finish(done, nil)
			return
		}
		src, ok := c.chooseSource(id, target, false)
		if !ok {
			settle()
			fail(fmt.Errorf("hdfs: no live source for block %d", id))
			return
		}
		sd := c.datanodes[src]
		sd.xferOut++
		td.xferIn++
		c.tracer.SetAttrInt(sp, "source", int64(src))
		path := c.topo.TransferPath(topology.NodeID(src), topology.NodeID(target))
		prev := c.tracer.Push(sp)
		flow := c.fabric.StartFlow(path, b.Size, maxRate, func(f *netsim.Flow) {
			delete(sd.activeFlows, f)
			sd.xferOut--
			td.xferIn--
			settle()
			if td.State == StateDown || td.crashed {
				fail(fmt.Errorf("hdfs: target %s died during copy", td.Name))
				return
			}
			if c.Block(id) != b {
				fail(fmt.Errorf("hdfs: block %d deleted during copy", id))
				return
			}
			c.attachReplica(b, target)
			c.metrics.ReplicasAdded++
			c.metrics.ReplicationMB += b.Size / topology.MB
			c.tracer.End(sp)
			c.finish(done, nil)
		})
		c.tracer.Pop(prev)
		// Source death (or a partition cutting the transfer) mid-copy
		// retries from another source, keeping the rate cap.
		sd.activeFlows[flow] = &flowHandle{peer: topology.NodeID(target), abort: func() {
			sd.xferOut--
			td.xferIn--
			settle()
			c.tracer.SetAttr(sp, "error", "copy aborted; retrying")
			c.tracer.End(sp)
			p := c.tracer.Push(parentSpan)
			c.AddReplicaLimited(id, target, maxRate, done)
			c.tracer.Pop(p)
		}}
	})
}

// finish defers a completion callback to a fresh event so callers never
// re-enter cluster state mid-operation.
func (c *Cluster) finish(done func(error), err error) {
	if done == nil {
		return
	}
	c.clock.Schedule(0, func() { done(err) })
}

// RemoveReplica drops the replica of id on target (metadata-only; freeing
// space is instantaneous).
func (c *Cluster) RemoveReplica(id BlockID, target DatanodeID) error {
	b := c.Block(id)
	if b == nil {
		return fmt.Errorf("hdfs: no such block %d", id)
	}
	if !c.datanodes[target].HasBlock(id) {
		return fmt.Errorf("hdfs: %s holds no replica of block %d", c.datanodes[target].Name, id)
	}
	if len(c.replicas[id]) == 1 {
		return fmt.Errorf("hdfs: refusing to remove the last replica of block %d", id)
	}
	c.detachReplica(b, target)
	c.metrics.ReplicasRemoved++
	return nil
}

// ReplicationMode selects how SetReplication grows a file's replica count
// (the paper's Figure 7 compares the two).
type ReplicationMode int

const (
	// WholeAtOnce launches all needed copies of each block concurrently,
	// straight to the final factor ("increasing the replica directly to the
	// optimal one").
	WholeAtOnce ReplicationMode = iota
	// OneByOne raises the factor a step at a time, waiting for each full
	// round before starting the next.
	OneByOne
)

func (m ReplicationMode) String() string {
	if m == WholeAtOnce {
		return "whole"
	}
	return "one-by-one"
}

// SetReplication changes a file's replica count to n, adding (in the given
// mode) or removing replicas. done(err) fires when the file reaches the
// target. Placement uses the installed policy; removals consult
// ChooseExcess.
func (c *Cluster) SetReplication(path string, n int, mode ReplicationMode, done func(error)) {
	if c.tracer.Enabled() {
		sp := c.tracer.Begin("hdfs.set_replication", c.tracer.Current())
		c.tracer.SetAttr(sp, "path", path)
		c.tracer.SetAttrInt(sp, "target", int64(n))
		inner := done
		done = func(err error) {
			if err != nil {
				c.tracer.SetAttr(sp, "error", err.Error())
			}
			c.tracer.End(sp)
			if inner != nil {
				inner(err)
			}
		}
		prev := c.tracer.Push(sp)
		defer c.tracer.Pop(prev)
	}
	if err := c.writable(); err != nil {
		c.finish(done, err)
		return
	}
	f := c.files[path]
	if f == nil {
		c.finish(done, fmt.Errorf("hdfs: no such file %q", path))
		return
	}
	if n <= 0 {
		c.finish(done, fmt.Errorf("hdfs: replication must be positive"))
		return
	}
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: "10.0.0.1", Cmd: auditlog.CmdSetRepl, Src: path,
	})
	f.TargetRepl = n
	c.jlog(auditlog.Entry{Op: auditlog.OpSetTarget, File: f.id, Target: n})
	c.reassessFile(f)
	cur := c.ReplicationOf(path)
	switch {
	case n == cur:
		c.finish(done, nil)
	case n < cur:
		// Shrink: metadata-only, immediate.
		var firstErr error
		for _, bid := range f.Blocks {
			for len(c.replicas[bid]) > n {
				victim, ok := c.placement.ChooseExcess(c, c.blocks[bid])
				if !ok {
					break
				}
				if err := c.RemoveReplica(bid, victim); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					break
				}
			}
		}
		c.finish(done, firstErr)
	default:
		c.grow(f, n, mode, done)
	}
}

// grow raises every block of f to n replicas.
func (c *Cluster) grow(f *INode, n int, mode ReplicationMode, done func(error)) {
	// Capture the ambient span (the set_replication span when tracing) so
	// one-by-one rounds launched from completion callbacks still parent
	// their copies correctly.
	ambient := c.tracer.Current()
	var step func(round int)
	copyRound := func(target int, next func(error)) {
		prev := c.tracer.Push(ambient)
		defer c.tracer.Pop(prev)
		// One round: bring every block up to `target` replicas, all copies
		// in flight concurrently.
		outstanding := 0
		var firstErr error
		finished := false
		complete := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			outstanding--
			if outstanding == 0 && finished {
				next(firstErr)
			}
		}
		for _, bid := range f.Blocks {
			need := target - len(c.replicas[bid])
			if need <= 0 {
				continue
			}
			b := c.blocks[bid]
			targets := c.placement.ChooseTargets(c, b, need, -1, nil)
			if len(targets) < need && firstErr == nil {
				firstErr = fmt.Errorf("hdfs: only %d of %d targets for block %d", len(targets), need, bid)
			}
			for _, t := range targets {
				outstanding++
				c.AddReplica(bid, t, complete)
			}
		}
		finished = true
		if outstanding == 0 {
			c.finish(next, firstErr)
		}
	}
	switch mode {
	case WholeAtOnce:
		copyRound(n, func(err error) {
			if done != nil {
				done(err)
			}
		})
	case OneByOne:
		step = func(target int) {
			if target > n {
				if done != nil {
					done(nil)
				}
				return
			}
			copyRound(target, func(err error) {
				if err != nil {
					if done != nil {
						done(err)
					}
					return
				}
				step(target + 1)
			})
		}
		step(c.ReplicationOf(f.Path) + 1)
	}
}

// UnderReplicated lists blocks whose live replica count is below their
// file's target (parity blocks target 1 replica). The set is maintained
// incrementally at every replica and target mutation, so this costs
// O(degraded blocks), not O(block space).
//
// Ordering contract: the result is always sorted ascending by BlockID.
// The repair pipeline's priority queue admits blocks in (tier, BlockID)
// order, so this ordering is load-bearing for determinism — two same-seed
// runs must enumerate identical sequences. The sort below guarantees that
// regardless of underSet's map iteration order; a regression test pins it.
func (c *Cluster) UnderReplicated() []BlockID {
	out := make([]BlockID, 0, len(c.underSet))
	for bid := range c.underSet {
		out = append(out, bid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StartReplicationMonitor runs a namenode re-replication scan every period:
// under-replicated blocks get one new replica per scan (vanilla HDFS
// behaviour; ERMS routes the same work through Condor jobs instead).
// Returns a stop function.
func (c *Cluster) StartReplicationMonitor(period time.Duration) func() {
	inFlight := map[BlockID]bool{}
	t := sim.NewTicker(c.clock, period, func(time.Duration) {
		for _, bid := range c.UnderReplicated() {
			if inFlight[bid] {
				continue
			}
			b := c.blocks[bid]
			if len(c.replicas[bid]) == 0 {
				continue // lost block; erasure recovery may still help
			}
			targets := c.placement.ChooseTargets(c, b, 1, -1, nil)
			if len(targets) == 0 {
				continue
			}
			inFlight[bid] = true
			bid := bid
			c.AddReplica(bid, targets[0], func(error) { delete(inFlight, bid) })
		}
	})
	return t.Stop
}
