package hdfs

import (
	"fmt"
	"testing"

	"erms/internal/sim"
	"erms/internal/topology"
)

func benchCluster(b *testing.B) (*sim.Engine, *Cluster) {
	b.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	return e, New(e, Config{Topology: topo})
}

// BenchmarkConcurrentReads measures the full read path — replica
// selection, session admission, flow simulation — for a burst of clients.
func BenchmarkConcurrentReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, c := benchCluster(b)
		if _, err := c.CreateFile("/f", 1024*mb, 3, 0); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			c.ReadFileAt(ExternalClient, "/f", k, nil)
		}
		e.Run()
	}
}

// BenchmarkSetReplicationWhole measures the grow machinery.
func BenchmarkSetReplicationWhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, c := benchCluster(b)
		if _, err := c.CreateFile("/f", 512*mb, 3, -1); err != nil {
			b.Fatal(err)
		}
		c.SetReplication("/f", 8, WholeAtOnce, nil)
		e.Run()
	}
}

// BenchmarkEncodeDecode measures the erasure lifecycle on the cluster.
func BenchmarkEncodeDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, c := benchCluster(b)
		if _, err := c.CreateFile("/f", 640*mb, 3, -1); err != nil {
			b.Fatal(err)
		}
		c.EncodeFile("/f", 10, 4, func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			c.DecodeFile("/f", 3, nil)
		})
		e.Run()
	}
}

// BenchmarkPlacementChoice isolates target selection on a loaded cluster.
func BenchmarkPlacementChoice(b *testing.B) {
	_, c := benchCluster(b)
	for i := 0; i < 50; i++ {
		if _, err := c.CreateFile(fmt.Sprintf("/f%02d", i), 256*mb, 3, -1); err != nil {
			b.Fatal(err)
		}
	}
	blk := c.File("/f00").Blocks[0]
	p := c.PlacementPolicy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ChooseTargets(c, c.Block(blk), 3, -1, nil)
	}
}
