package hdfs

import (
	"fmt"
	"sort"
)

// ConsistencyErrors cross-checks every incremental index the cluster
// maintains against a from-scratch recomputation of the same state. It is
// the safety net for the O(1) bookkeeping added for the 1,000-datanode
// scale work: any drift between an index and the ground truth it caches
// shows up here as a human-readable complaint. An empty result means the
// namenode state is internally consistent. The invariant suite calls this
// continuously during randomized chaos runs; it is deliberately O(cluster)
// and not meant for hot paths.
func (c *Cluster) ConsistencyErrors() []string {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	// --- Block space: dense slices, live count, ID discipline.
	if len(c.blocks) != len(c.replicas) {
		fail("blocks/replicas length mismatch: %d vs %d", len(c.blocks), len(c.replicas))
	}
	if int(c.nextBlock) != len(c.blocks) {
		fail("nextBlock %d != len(blocks) %d", c.nextBlock, len(c.blocks))
	}
	live := 0
	for i, b := range c.blocks {
		if b == nil {
			if i < len(c.replicas) && c.replicas[i] != nil {
				fail("deleted block %d still has replicas %v", i, c.replicas[i])
			}
			continue
		}
		live++
		if int(b.ID) != i {
			fail("block at slot %d carries ID %d", i, b.ID)
		}
		seen := map[DatanodeID]bool{}
		for _, r := range c.replicas[i] {
			if r < 0 || int(r) >= len(c.datanodes) {
				fail("block %d replica on out-of-range node %d", b.ID, r)
				continue
			}
			if seen[r] {
				fail("block %d has duplicate replica on node %d", b.ID, r)
			}
			seen[r] = true
			d := c.datanodes[r]
			if !d.blocks.Has(b.ID) {
				fail("block %d listed on %s but absent from its block set", b.ID, d.Name)
			}
			if d.State == StateDown {
				fail("block %d has replica on down node %s", b.ID, d.Name)
			}
		}
	}
	if live != c.liveBlocks {
		fail("liveBlocks %d != recount %d", c.liveBlocks, live)
	}

	// --- Per-datanode books: block set membership, space, non-negativity.
	for _, d := range c.datanodes {
		var used float64
		d.blocks.Each(func(bid BlockID) {
			b := c.Block(bid)
			if b == nil {
				fail("%s holds deleted block %d", d.Name, bid)
				return
			}
			used += b.Size
			found := false
			for _, r := range c.replicas[bid] {
				if r == d.ID {
					found = true
					break
				}
			}
			if !found {
				fail("%s holds block %d not listed in replicas", d.Name, bid)
			}
		})
		if diff := used - d.Used; diff > 1e-6 || diff < -1e-6 {
			fail("%s Used %.1f != sum of block sizes %.1f", d.Name, d.Used, used)
		}
		if d.pendingAdds < 0 || d.pendingBytes < 0 {
			fail("%s negative pending bookkeeping: adds=%d bytes=%.1f", d.Name, d.pendingAdds, d.pendingBytes)
		}
		if d.sessions < 0 {
			fail("%s negative session count %d", d.Name, d.sessions)
		}
	}

	// --- Under-replication set vs recomputation.
	want := map[BlockID]struct{}{}
	for _, b := range c.blocks {
		if b == nil {
			continue
		}
		if len(c.replicas[b.ID]) < c.replTarget(b) {
			want[b.ID] = struct{}{}
		}
	}
	for bid := range want {
		if _, ok := c.underSet[bid]; !ok {
			fail("block %d under-replicated but missing from underSet", bid)
		}
	}
	for bid := range c.underSet {
		if _, ok := want[bid]; !ok {
			fail("block %d in underSet but not under-replicated", bid)
		}
	}

	// --- Placement load index vs per-node eligibility and load.
	indexed := 0
	for _, d := range c.datanodes {
		if d.inIdx != d.Eligible() {
			fail("%s index membership %v != Eligible() %v", d.Name, d.inIdx, d.Eligible())
			continue
		}
		if !d.inIdx {
			continue
		}
		indexed++
		if d.idxLoad != d.PlacementLoad() {
			fail("%s indexed at load %d but PlacementLoad is %d", d.Name, d.idxLoad, d.PlacementLoad())
			continue
		}
		if d.idxLoad >= len(c.loadIdx) || !c.loadIdx[d.idxLoad].has(int(d.ID)) {
			fail("%s missing from load bucket %d", d.Name, d.idxLoad)
		}
	}
	total := 0
	for l := range c.loadIdx {
		total += c.loadIdx[l].count
	}
	if total != indexed {
		fail("load index holds %d nodes but %d are eligible", total, indexed)
	}

	// --- File table vs interned IDs.
	for p, f := range c.files {
		if f.id < 0 || f.id >= len(c.fileByID) || c.fileByID[f.id] != f {
			fail("file %q has broken intern id %d", p, f.id)
			continue
		}
		for _, bid := range append(append([]BlockID{}, f.Blocks...), f.Parity...) {
			b := c.Block(bid)
			if b == nil {
				fail("file %q references deleted block %d", p, bid)
				continue
			}
			if c.fileOf(b) != f {
				fail("block %d of %q resolves to the wrong file", bid, p)
			}
		}
	}
	for id, f := range c.fileByID {
		if f == nil {
			continue
		}
		if c.files[f.Path] != f {
			fail("fileByID[%d] (%q) not reachable via files map", id, f.Path)
		}
	}

	// --- Candidate order: the load index must reproduce the reference
	// scan's (PlacementLoad, ID) order exactly. Probe with a zero-size
	// block no node holds.
	probe := &Block{ID: c.nextBlock, fileID: -1}
	var fast []DatanodeID
	c.scanEligible(probe, nil, func(id DatanodeID) bool {
		fast = append(fast, id)
		return false
	})
	slow := eligible(c, probe, nil, StateActive)
	if len(fast) != len(slow) {
		fail("scanEligible found %d candidates, reference scan %d", len(fast), len(slow))
	} else {
		for i := range fast {
			if fast[i] != slow[i] {
				fail("candidate order diverges at %d: index says %d, reference %d", i, fast[i], slow[i])
				break
			}
		}
	}

	sort.Strings(errs)
	return errs
}
