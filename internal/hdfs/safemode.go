package hdfs

import (
	"errors"
	"time"

	"erms/internal/auditlog"
)

// Safe mode is the namenode's degradation guard, modeled on HDFS's
// dfs.safemode.threshold.pct: when block availability or the live-node
// fraction drops below threshold — or right after a checkpoint restore,
// before the cluster's health is known — the namenode stops accepting
// namespace mutations and the manager defers re-replication decisions. A
// transient partition then heals for free instead of triggering a mass
// repair storm; exit requires the thresholds to hold for a dwell period.
//
// Safe mode is detector state, like heartbeat staleness: it is never
// journaled, checkpointed, or folded into StateDigest, and SafeModeConfig
// is excluded from the checkpoint config digest so a guard-enabled primary
// and a plain shadow interoperate.

// ErrSafeMode is returned by namespace mutations while the namenode is in
// safe mode. Callers should back off and retry after the cluster heals.
var ErrSafeMode = errors.New("hdfs: namenode is in safe mode")

// ErrFenced is returned by namespace mutations when this namenode's writer
// epoch is behind the journal's — a standby was promoted and this instance
// is a fenced zombie whose late writes must not interleave.
var ErrFenced = errors.New("hdfs: namenode is fenced (stale journal epoch)")

// SafeModeConfig tunes the safe-mode guard.
type SafeModeConfig struct {
	// Enabled turns the guard on. Off by default: mutations are never
	// rejected and restore does not enter safe mode.
	Enabled bool
	// ReplicaThreshold is the minimum fraction of live blocks that must
	// have at least one live replica (HDFS dfs.safemode.threshold.pct).
	// Default 0.999.
	ReplicaThreshold float64
	// NodeThreshold is the minimum fraction of registered (non-standby,
	// non-decommissioned) datanodes that must be live and heartbeating.
	// Default 0.5.
	NodeThreshold float64
	// Dwell is how long both thresholds must hold before safe mode exits
	// (HDFS dfs.namenode.safemode.extension). Default 30s.
	Dwell time.Duration
	// CheckInterval paces the safe-mode monitor ticker. Default 3s.
	CheckInterval time.Duration
}

func (s *SafeModeConfig) applyDefaults() {
	if s.ReplicaThreshold <= 0 {
		s.ReplicaThreshold = 0.999
	}
	if s.NodeThreshold <= 0 {
		s.NodeThreshold = 0.5
	}
	if s.Dwell <= 0 {
		s.Dwell = 30 * time.Second
	}
	if s.CheckInterval <= 0 {
		s.CheckInterval = 3 * time.Second
	}
}

// InSafeMode reports whether the namenode is currently in safe mode.
func (c *Cluster) InSafeMode() bool { return c.safeMode }

// writable is the shared mutation gate: fencing is checked first (a fenced
// writer must reject everything, safe or not), then safe mode.
func (c *Cluster) writable() error {
	if c.Fenced() {
		c.metrics.FencedWritesRejected++
		return ErrFenced
	}
	if c.safeMode {
		c.metrics.SafeModeRejections++
		return ErrSafeMode
	}
	return nil
}

// BlockAvailability returns the fraction of live blocks with at least one
// live replica (1.0 on an empty namespace). Blocks with zero replicas are
// a subset of the under-replicated set, so this never rescans the block
// space.
func (c *Cluster) BlockAvailability() float64 {
	if c.liveBlocks == 0 {
		return 1
	}
	missing := 0
	for bid := range c.underSet {
		if len(c.replicas[bid]) == 0 {
			missing++
		}
	}
	return float64(c.liveBlocks-missing) / float64(c.liveBlocks)
}

// LiveNodeFraction returns the fraction of registered datanodes (neither
// standby nor decommissioned) that are live: serving state, not stale, and
// not declared dead.
func (c *Cluster) LiveNodeFraction() float64 {
	registered, live := 0, 0
	for _, d := range c.datanodes {
		switch d.State {
		case StateStandby, StateDecommissioned:
			continue
		}
		registered++
		if d.State.serves() && !d.Stale {
			live++
		}
	}
	if registered == 0 {
		return 1
	}
	return float64(live) / float64(registered)
}

// safeModeHealthy reports whether both thresholds currently hold.
func (c *Cluster) safeModeHealthy() bool {
	sm := c.cfg.SafeMode
	return c.BlockAvailability() >= sm.ReplicaThreshold &&
		c.LiveNodeFraction() >= sm.NodeThreshold
}

// safeModeTick is the safe-mode monitor pass (runs every CheckInterval).
func (c *Cluster) safeModeTick(now time.Duration) { c.evalSafeMode(now) }

// evalSafeMode runs the safe-mode state machine: enter as soon as a
// threshold is breached, leave once both thresholds have held for Dwell.
// declareDead calls it synchronously so mass failures trip the guard
// before repair decisions fire, not a tick later.
func (c *Cluster) evalSafeMode(now time.Duration) {
	if !c.cfg.SafeMode.Enabled {
		return
	}
	healthy := c.safeModeHealthy()
	if !c.safeMode {
		if !healthy {
			c.enterSafeMode("threshold")
		}
		return
	}
	if c.safeModeManual {
		return // only LeaveSafeMode exits a manual entry
	}
	if !healthy {
		c.healthySince = -1
		return
	}
	if c.healthySince < 0 {
		c.healthySince = now
		return
	}
	if now-c.healthySince >= c.cfg.SafeMode.Dwell {
		c.exitSafeMode()
	}
}

// EnterSafeMode puts the namenode in safe mode until LeaveSafeMode is
// called (the dfsadmin -safemode enter workflow); the automatic monitor
// will not exit it.
func (c *Cluster) EnterSafeMode() {
	c.safeModeManual = true
	c.enterSafeMode("manual")
}

// LeaveSafeMode exits safe mode unconditionally (dfsadmin -safemode leave).
func (c *Cluster) LeaveSafeMode() {
	c.safeModeManual = false
	if c.safeMode {
		c.exitSafeMode()
	}
}

// enterSafeMode flips the guard on, once, and fans out to audit, trace,
// metrics, and subscribers.
func (c *Cluster) enterSafeMode(reason string) {
	if c.safeMode {
		return
	}
	c.safeMode = true
	c.healthySince = -1
	c.metrics.SafeModeEntries++
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hdfs",
		IP: "10.0.0.1", Cmd: auditlog.CmdSafeMode, Src: "/enter/" + reason,
	})
	if sp := c.tracer.Instant("hdfs.safemode.enter", c.tracer.Current()); sp != 0 {
		c.tracer.SetAttr(sp, "reason", reason)
	}
	for _, fn := range c.onSafeMode {
		fn(true)
	}
}

// exitSafeMode flips the guard off and fans out.
func (c *Cluster) exitSafeMode() {
	if !c.safeMode {
		return
	}
	c.safeMode = false
	c.healthySince = -1
	c.metrics.SafeModeExits++
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hdfs",
		IP: "10.0.0.1", Cmd: auditlog.CmdSafeMode, Src: "/leave",
	})
	c.tracer.Instant("hdfs.safemode.leave", c.tracer.Current())
	for _, fn := range c.onSafeMode {
		fn(false)
	}
}

// StallNode suppresses (or restores) a datanode's heartbeats without
// touching its data plane — the node keeps serving, but the namenode ages
// it toward stale and eventually dead. The chaos flapping fault uses it to
// drive stale→rejoin→stale cycles that must not release replicas.
func (c *Cluster) StallNode(id DatanodeID, stalled bool) {
	c.datanodes[id].stalled = stalled
}

// Stalled reports whether the node's heartbeats are suppressed via StallNode.
func (d *Datanode) Stalled() bool { return d.stalled }

// Epoch returns this namenode's writer epoch.
func (c *Cluster) Epoch() uint64 { return c.epoch }

// Fenced reports whether this namenode has lost the writer role: a journal
// is attached and its epoch has moved past ours (a standby was promoted).
func (c *Cluster) Fenced() bool {
	return c.journal != nil && c.journal.Epoch() != c.epoch
}

// AdoptEpoch re-aligns the writer epoch with the attached journal's — the
// moment this namenode (re)wins the writer election. A no-op without a
// journal.
func (c *Cluster) AdoptEpoch() {
	if c.journal != nil {
		c.epoch = c.journal.Epoch()
	}
}
