package hdfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// resumeEvent is one scripted workload action at an absolute virtual time.
// The same event list drives both the uninterrupted run and the
// checkpoint-restore-resume run, so any divergence is the format's fault.
type resumeEvent struct {
	at   time.Duration
	kind int // 0 create, 1 read, 2 setrepl, 3 delete, 4 kill, 5 restart
	path string
	node int
	repl int
	size float64
}

const (
	resumeHorizon = 30 * time.Minute
	resumeCut     = 15 * time.Minute
	resumeNodes   = 15
)

// resumeWorkload generates a seed-deterministic event script. Nothing is
// scheduled in the three minutes before the cut, so every read and replica
// copy has drained by then and the cut lands on a quiescent cluster —
// checkpoints capture durable state only, exactly like a real namenode.
func resumeWorkload(seed int64) []resumeEvent {
	rng := rand.New(rand.NewSource(seed))
	var evs []resumeEvent
	nFiles := 8 + rng.Intn(5)
	for i := 0; i < nFiles; i++ {
		evs = append(evs, resumeEvent{
			kind: 0,
			path: fmt.Sprintf("/rs/f%02d", i),
			size: (64 + float64(rng.Intn(192))) * mb,
			repl: 2 + rng.Intn(2),
		})
	}
	randAt := func() time.Duration {
		for {
			at := time.Duration(1 + rng.Int63n(int64(resumeHorizon-4*time.Minute))) // leave drain room at the end
			if at < resumeCut-3*time.Minute || at > resumeCut {
				return at
			}
		}
	}
	for i := 0; i < 120; i++ {
		at := randAt()
		p := fmt.Sprintf("/rs/f%02d", rng.Intn(nFiles))
		switch rng.Intn(12) {
		case 0:
			evs = append(evs, resumeEvent{at: at, kind: 0,
				path: fmt.Sprintf("/rs/n%03d", i), size: (64 + float64(rng.Intn(128))) * mb,
				repl: 2 + rng.Intn(2)})
		case 1:
			evs = append(evs, resumeEvent{at: at, kind: 2, path: p, repl: 2 + rng.Intn(4)})
		case 2:
			if rng.Intn(3) == 0 {
				evs = append(evs, resumeEvent{at: at, kind: 3, path: p})
			}
		case 3:
			// Kill a low-numbered node and restart it two minutes later;
			// the pair may straddle the cut (node down at checkpoint time).
			n := 1 + rng.Intn(5)
			evs = append(evs, resumeEvent{at: at, kind: 4, node: n},
				resumeEvent{at: at + 2*time.Minute, kind: 5, node: n})
		default:
			evs = append(evs, resumeEvent{at: at, kind: 1, path: p, node: rng.Intn(resumeNodes)})
		}
	}
	return evs
}

// applyResumeEvents schedules the events with at > from onto the cluster.
// Guards make events idempotent against earlier deletes and double kills,
// and both runs share the guards, so behavior stays identical.
func applyResumeEvents(e *sim.Engine, c *Cluster, evs []resumeEvent, from time.Duration) {
	now := e.Now()
	for _, ev := range evs {
		ev := ev
		if ev.at <= from {
			continue
		}
		e.Schedule(ev.at-now, func() {
			switch ev.kind {
			case 0:
				if c.File(ev.path) == nil {
					_, _ = c.CreateFile(ev.path, ev.size, ev.repl, -1)
				}
			case 1:
				if c.File(ev.path) != nil {
					c.ReadFile(topology.NodeID(ev.node), ev.path, nil)
				}
			case 2:
				if c.File(ev.path) != nil {
					c.SetReplication(ev.path, ev.repl, WholeAtOnce, nil)
				}
			case 3:
				if c.File(ev.path) != nil {
					_ = c.DeleteFile(ev.path)
				}
			case 4:
				if d := c.Datanode(DatanodeID(ev.node)); d != nil && d.State == StateActive && !d.Crashed() {
					c.Kill(DatanodeID(ev.node))
				}
			case 5:
				if d := c.Datanode(DatanodeID(ev.node)); d != nil && (d.State == StateDown || d.Crashed()) {
					c.Restart(DatanodeID(ev.node))
				}
			}
		})
	}
}

func newResumeCluster() (*sim.Engine, *Cluster) {
	e := sim.NewEngine()
	c := New(e, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: resumeNodes})})
	return e, c
}

// endState folds everything observable about a finished run into
// comparable bytes: the canonical checkpoint encoding plus the metrics.
func endState(t *testing.T, c *Cluster) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("end-state encode: %v", err)
	}
	return fmt.Sprintf("%+v", c.Metrics()), buf.Bytes()
}

// TestCheckpointResumeEquivalence is the property test for the resume
// story: across 10 storm seeds, running a workload straight through must
// be indistinguishable — byte-identical end-of-run state and metrics —
// from checkpointing at a quiescent mid-point, restoring into a fresh
// cluster, and resuming the remaining workload there.
func TestCheckpointResumeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			evs := resumeWorkload(seed)

			// Uninterrupted run: everything scheduled up front.
			eA, cA := newResumeCluster()
			applyResumeEvents(eA, cA, evs, -1)
			eA.RunUntil(resumeHorizon)
			wantMetrics, wantBytes := endState(t, cA)

			// Interrupted run: pre-cut events only, checkpoint at the cut.
			eB, cB := newResumeCluster()
			applyResumeEvents(eB, cB, evs, -1)
			eB.RunUntil(resumeCut)
			if n := cB.ActiveReads(); n != 0 {
				t.Fatalf("cut is not quiescent: %d active reads (widen the workload gap)", n)
			}
			for _, d := range cB.Datanodes() {
				if d.PendingAdds() != 0 {
					t.Fatalf("cut is not quiescent: %s has %d pending replica adds", d.Name, d.PendingAdds())
				}
			}
			var ckpt bytes.Buffer
			if err := cB.WriteCheckpoint(&ckpt); err != nil {
				t.Fatal(err)
			}

			// Resume: fresh cluster, restore, schedule the remaining tail.
			eC, cC := newResumeCluster()
			if err := cC.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			applyResumeEvents(eC, cC, evs, resumeCut)
			eC.RunUntil(resumeHorizon)

			gotMetrics, gotBytes := endState(t, cC)
			if gotMetrics != wantMetrics {
				t.Errorf("metrics diverged after resume:\n straight: %s\n resumed:  %s", wantMetrics, gotMetrics)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Errorf("end state diverged after resume: %d vs %d canonical bytes (digest %#x vs %#x)",
					len(gotBytes), len(wantBytes), cC.StateDigest(), cA.StateDigest())
			}
			if errs := cC.ConsistencyErrors(); errs != nil {
				t.Errorf("resumed cluster inconsistent: %v", errs)
			}
		})
	}
}
