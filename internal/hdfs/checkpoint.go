package hdfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"time"

	"erms/internal/netsim"
)

// Checkpoint format. The namenode's durable metadata serializes to a
// versioned, deterministic byte stream — the simulator's fsimage. Derived
// indexes (underSet, loadIdx, pathsCache, the per-datanode block sets and
// Used gauges, the file intern table's map side) are rebuilt on load, never
// serialized: they are pure functions of the durable state, and rebuilding
// them is both smaller on the wire and a free cross-check against
// ConsistencyErrors. Transient flow state (sessions, queued admissions,
// in-flight reads and replica copies) is deliberately NOT checkpointed:
// a standby namenode taking over mid-flight loses those the same way the
// real one does, and clients retry. Read metrics are normalized at encode
// time (in-flight reads are un-counted) so the conservation invariant
// "started == completed + failed + active" holds in the restored world and
// a restored cluster re-encodes to byte-identical output.
//
// Versioning rules: CheckpointVersion bumps on ANY change to the byte
// layout or to the semantics of a serialized field. Decoders reject
// versions they do not know — no silent best-effort parsing. The trailing
// FNV-1a checksum covers every preceding byte, so truncation and bit rot
// fail loudly before any state is touched.
const (
	checkpointMagic = "ERMSCKP1"
	// CheckpointVersion identifies the current checkpoint byte layout.
	CheckpointVersion = 1
)

const (
	maxCkptSlots  = 1 << 28 // decoder sanity bounds (pre-allocation caps)
	maxCkptString = 1 << 20
)

// ckptWriter accumulates the stream while hashing it.
type ckptWriter struct {
	w   *bufio.Writer
	h   hash.Hash64
	buf [binary.MaxVarintLen64]byte
}

func (cw *ckptWriter) uvarint(v uint64) {
	n := binary.PutUvarint(cw.buf[:], v)
	cw.w.Write(cw.buf[:n])
}

func (cw *ckptWriter) varint(v int64) {
	n := binary.PutVarint(cw.buf[:], v)
	cw.w.Write(cw.buf[:n])
}

func (cw *ckptWriter) f64(v float64) { cw.uvarint(math.Float64bits(v)) }

func (cw *ckptWriter) boolv(v bool) {
	if v {
		cw.uvarint(1)
	} else {
		cw.uvarint(0)
	}
}

func (cw *ckptWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	cw.w.WriteString(s)
}

func (cw *ckptWriter) fixed64(v uint64) {
	binary.LittleEndian.PutUint64(cw.buf[:8], v)
	cw.w.Write(cw.buf[:8])
}

// ConfigDigest fingerprints the cluster parameters a checkpoint depends
// on: block geometry, capacities, session limits, command latency, and the
// physical topology (rack count and every node's rack). A checkpoint only
// restores into a cluster with the same digest. Heartbeat tuning and the
// initial standby set are excluded on purpose: they shape *future* events,
// not the meaning of serialized state, so a verification shadow can run
// with heartbeats off and still accept the checkpoint.
func (c *Cluster) ConfigDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u(math.Float64bits(c.cfg.BlockSize))
	u(uint64(c.cfg.DefaultReplication))
	u(math.Float64bits(c.cfg.NodeCapacity))
	u(uint64(c.cfg.MaxSessionsPerNode))
	u(uint64(c.cfg.ReplCommandLatency))
	u(uint64(c.topo.NumRacks()))
	u(uint64(c.topo.NumNodes()))
	for _, n := range c.topo.Nodes {
		u(uint64(n.Rack))
	}
	return h.Sum64()
}

// StateDigest fingerprints the namenode's durable, journal-replayable
// metadata: the namespace (interned file table with gaps), the block map,
// every block's ordered replica list, and each datanode's lifecycle state,
// stale flag, and reported-corrupt set. It deliberately EXCLUDES silent
// ground truth the namenode cannot observe (corrupt flags, crashed
// processes) and heartbeat-clock bookkeeping (lastHeartbeat, activeSince,
// ActiveTime): a standby rebuilt from checkpoint + journal matches the
// live namenode on everything the digest covers, which is exactly the
// state that decides placement, replication, and reads.
func (c *Cluster) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	s := func(v string) {
		u(uint64(len(v)))
		io.WriteString(h, v)
	}
	u(uint64(c.nextBlock))
	u(uint64(len(c.fileByID)))
	for _, f := range c.fileByID {
		if f == nil {
			u(0)
			continue
		}
		u(1)
		s(f.Path)
		u(math.Float64bits(f.Size))
		u(uint64(f.CreatedAt))
		u(uint64(f.TargetRepl))
		if f.Encoded {
			u(1)
		} else {
			u(0)
		}
		u(uint64(f.EncodeK))
		u(uint64(f.EncodeM))
		u(uint64(len(f.Blocks)))
		for _, bid := range f.Blocks {
			u(uint64(bid))
		}
		u(uint64(len(f.Parity)))
		for _, bid := range f.Parity {
			u(uint64(bid))
		}
	}
	for id, b := range c.blocks {
		if b == nil {
			continue
		}
		u(uint64(id))
		u(uint64(len(c.replicas[id])))
		for _, dn := range c.replicas[id] {
			u(uint64(dn))
		}
	}
	for _, d := range c.datanodes {
		u(uint64(d.State))
		if d.Stale {
			u(1)
		} else {
			u(0)
		}
		u(uint64(len(d.reported)))
		for _, bid := range sortedBlockIDs(d.reported) {
			u(uint64(bid))
		}
	}
	return h.Sum64()
}

func sortedBlockIDs(m map[BlockID]bool) []BlockID {
	if len(m) == 0 {
		return nil
	}
	out := make([]BlockID, 0, len(m))
	for bid := range m {
		out = append(out, bid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteCheckpoint serializes the namenode's durable state to w in the
// versioned checkpoint format. The output is deterministic: the same state
// always produces the same bytes, and a cluster restored from them
// re-encodes to the identical stream. The cluster is not mutated.
func (c *Cluster) WriteCheckpoint(w io.Writer) error {
	h := fnv.New64a()
	cw := &ckptWriter{w: bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16), h: h}

	// Header.
	cw.w.WriteString(checkpointMagic)
	cw.uvarint(CheckpointVersion)
	cw.fixed64(c.ConfigDigest())
	cw.uvarint(uint64(c.clock.Now()))
	cw.uvarint(c.journalPos())
	cw.uvarint(uint64(c.nextBlock))
	cw.uvarint(uint64(len(c.fileByID)))
	cw.uvarint(uint64(len(c.datanodes)))

	// Files, in intern order with explicit gaps, so restored intern IDs —
	// which the journal references — are identical. Blocks are NOT
	// serialized: every block is reconstructible from its file's metadata
	// (IDs in list order, sizes from the file size and block geometry).
	for _, f := range c.fileByID {
		if f == nil {
			cw.boolv(false)
			continue
		}
		cw.boolv(true)
		cw.str(f.Path)
		cw.f64(f.Size)
		cw.varint(int64(f.CreatedAt))
		cw.uvarint(uint64(f.TargetRepl))
		cw.boolv(f.Encoded)
		cw.uvarint(uint64(f.EncodeK))
		cw.uvarint(uint64(f.EncodeM))
		writeIDList(cw, f.Blocks)
		writeIDList(cw, f.Parity)
	}

	// Replica lists for live blocks, ascending block ID. List order is
	// load-bearing (read selection and excess-replica choice walk it), so
	// it is serialized exactly, not canonicalized.
	for id, b := range c.blocks {
		if b == nil {
			continue
		}
		reps := c.replicas[id]
		cw.uvarint(uint64(len(reps)))
		for _, dn := range reps {
			cw.uvarint(uint64(dn))
		}
	}

	// Datanode durable state. Capacity and MaxSessions come from config
	// (covered by the digest); block sets and Used are rebuilt from the
	// replica lists above; session/flow state is transient by design.
	for _, d := range c.datanodes {
		cw.uvarint(uint64(d.State))
		cw.boolv(d.Stale)
		cw.boolv(d.crashed)
		cw.varint(int64(d.lastHeartbeat))
		cw.varint(int64(d.activeSince))
		cw.varint(int64(d.ActiveTime))
		writeIDList(cw, sortedBlockIDs(d.corrupt))
		writeIDList(cw, sortedBlockIDs(d.reported))
	}

	// Cluster-wide odds and ends.
	parts := make([]int, 0, len(c.partitioned))
	for r := range c.partitioned {
		parts = append(parts, r)
	}
	sort.Ints(parts)
	cw.uvarint(uint64(len(parts)))
	for _, r := range parts {
		cw.uvarint(uint64(r))
	}
	cw.uvarint(uint64(c.scrubCursor))

	// Metrics, normalized: in-flight reads are not part of the restored
	// world, so they are un-counted from ReadsStarted.
	m := c.metrics
	m.ReadsStarted -= c.activeReads
	for _, v := range m.ints() {
		cw.varint(int64(v))
	}
	for _, v := range m.floats() {
		cw.f64(v)
	}

	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("hdfs: checkpoint write: %w", err)
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("hdfs: checkpoint write: %w", err)
	}
	return nil
}

// writeIDList delta-encodes an ascending block ID list (file block lists
// and the sorted corrupt/reported sets are ascending by construction).
func writeIDList(cw *ckptWriter, ids []BlockID) {
	cw.uvarint(uint64(len(ids)))
	prev := int64(0)
	for _, id := range ids {
		cw.varint(int64(id) - prev)
		prev = int64(id)
	}
}

// journalPos returns the sequence number of the first journal entry NOT
// reflected in the current state: the attached journal's next sequence, or
// the position carried over from the checkpoint this cluster was restored
// from (so re-encoding a restored cluster is byte-identical).
func (c *Cluster) journalPos() uint64 {
	if c.journal != nil {
		return c.journal.NextSeq()
	}
	return c.ckptJournalSeq
}

// RestoredJournalSeq returns the journal position recorded in the last
// checkpoint this cluster restored (zero if none): replaying a journal
// tail from this sequence number brings the cluster up to date.
func (c *Cluster) RestoredJournalSeq() uint64 { return c.ckptJournalSeq }

// ints lists the integer metric fields in a fixed serialization order.
// Adding a Metrics field requires extending this list (and bumping
// CheckpointVersion).
func (m *Metrics) ints() []int {
	return []int{
		m.ReadsStarted, m.ReadsCompleted, m.ReadsFailed,
		m.BlockReads, m.NodeLocalReads, m.RackLocalReads, m.RemoteReads,
		m.ReplicasAdded, m.ReplicasRemoved,
		m.FilesEncoded, m.BlocksRebuilt,
		m.StaleTransitions, m.ReplicasScrubbed, m.CorruptDetected, m.ChecksumFailures,
	}
}

func (m *Metrics) setInts(v []int) {
	m.ReadsStarted, m.ReadsCompleted, m.ReadsFailed = v[0], v[1], v[2]
	m.BlockReads, m.NodeLocalReads, m.RackLocalReads, m.RemoteReads = v[3], v[4], v[5], v[6]
	m.ReplicasAdded, m.ReplicasRemoved = v[7], v[8]
	m.FilesEncoded, m.BlocksRebuilt = v[9], v[10]
	m.StaleTransitions, m.ReplicasScrubbed, m.CorruptDetected, m.ChecksumFailures = v[11], v[12], v[13], v[14]
}

func (m *Metrics) floats() []float64 {
	return []float64{m.BytesRead, m.ReplicationMB, m.CorruptBytes}
}

func (m *Metrics) setFloats(v []float64) {
	m.BytesRead, m.ReplicationMB, m.CorruptBytes = v[0], v[1], v[2]
}

// ckptNode is a decoded datanode record, pre-commit.
type ckptNode struct {
	state         NodeState
	stale         bool
	crashed       bool
	lastHeartbeat time.Duration
	activeSince   time.Duration
	activeTime    time.Duration
	corrupt       []BlockID
	reported      []BlockID
}

// ckptState is a fully decoded, fully validated checkpoint, ready to
// commit. Nothing touches the live cluster until decoding and validation
// have both succeeded — a corrupt stream can never half-restore.
type ckptState struct {
	now         time.Duration
	journalSeq  uint64
	nextBlock   BlockID
	inodes      []INode           // cap-fixed arena; fileByID points into it
	fileByID    []*INode          // nil entries are intern-table gaps
	files       map[string]*INode // namespace map, adopted by commit as-is
	live        int               // owned-block count, sizes the commit arena
	replicas    [][]DatanodeID
	nodes       []ckptNode
	partitioned []int
	scrubCursor int
	metrics     Metrics
}

// RestoreCheckpoint rebuilds the cluster from a checkpoint stream. The
// cluster must be pristine (freshly built with an equivalent Config: same
// ConfigDigest, no files, no blocks) and its engine must not have advanced
// past the checkpoint's capture time. Restore is all-or-nothing: any
// decode or validation error leaves the cluster untouched. On success the
// engine has advanced to the capture time, every derived index is rebuilt,
// and ConsistencyErrors() is nil by construction — the restored cluster is
// structurally identical to the one that wrote the checkpoint.
func (c *Cluster) RestoreCheckpoint(r io.Reader) error {
	if len(c.files) > 0 || c.nextBlock > 0 || c.liveBlocks > 0 {
		return fmt.Errorf("hdfs: restore requires a pristine cluster (have %d files, %d blocks)",
			len(c.files), c.liveBlocks)
	}
	st, err := c.decodeCheckpoint(r)
	if err != nil {
		return err
	}
	if c.clock.Now() > st.now {
		return fmt.Errorf("hdfs: engine already at %v, past checkpoint time %v", c.clock.Now(), st.now)
	}
	// Advance the clock first: pending housekeeping events (the heartbeat
	// ticker) fire over the still-pristine cluster, which keeps them
	// harmless AND keeps the ticker in the same absolute phase as a
	// cluster that ran the interval for real.
	c.clock.RunUntil(st.now)
	c.commitCheckpoint(st)
	// A freshly restored namenode does not yet know the cluster's health
	// (HDFS starts in safe mode until block reports arrive): when the guard
	// is enabled, enter safe mode now and let the monitor exit it once the
	// thresholds hold for the dwell period.
	if c.cfg.SafeMode.Enabled {
		c.enterSafeMode("restore")
	}
	return nil
}

// RestoreCheckpointInPlace is RestoreCheckpoint for a replacement namenode
// built on an engine that has already run past the capture time — the
// per-shard failover path, where every shard shares one cluster-wide
// engine that kept running while this shard's snapshot aged. The clock is
// never rewound: state is adopted as of the capture time and the journal
// tail replay brings it forward. All other restore rules (pristine
// cluster, config digest, all-or-nothing) are unchanged.
func (c *Cluster) RestoreCheckpointInPlace(r io.Reader) error {
	if len(c.files) > 0 || c.nextBlock > 0 || c.liveBlocks > 0 {
		return fmt.Errorf("hdfs: restore requires a pristine cluster (have %d files, %d blocks)",
			len(c.files), c.liveBlocks)
	}
	st, err := c.decodeCheckpoint(r)
	if err != nil {
		return err
	}
	if c.clock.Now() < st.now {
		c.clock.RunUntil(st.now)
	}
	c.commitCheckpoint(st)
	if c.cfg.SafeMode.Enabled {
		c.enterSafeMode("restore")
	}
	return nil
}

// decodeCheckpoint parses and validates a checkpoint stream without
// touching cluster state. The whole stream is read up front so the
// trailing checksum is verified before a single field is trusted.
func (c *Cluster) decodeCheckpoint(r io.Reader) (*ckptState, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("hdfs: checkpoint read: %w", err)
	}
	if len(data) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("hdfs: checkpoint too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := binary.LittleEndian.Uint64(trailer), h.Sum64(); got != want {
		return nil, fmt.Errorf("hdfs: checkpoint checksum mismatch (%#x != %#x)", got, want)
	}
	if string(payload[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("hdfs: bad checkpoint magic %q", payload[:len(checkpointMagic)])
	}
	d := &ckptDecoder{data: payload[len(checkpointMagic):]}
	// One blob copy backs every decoded string: a million per-path
	// allocations otherwise show up in both malloc and GC mark time.
	d.blob = string(d.data)

	if v := d.uvarint("version"); d.err == nil && v != CheckpointVersion {
		return nil, fmt.Errorf("hdfs: unsupported checkpoint version %d (want %d)", v, CheckpointVersion)
	}
	var cfgDigest [8]byte
	d.bytes("config digest", cfgDigest[:])
	if d.err == nil {
		if got, want := binary.LittleEndian.Uint64(cfgDigest[:]), c.ConfigDigest(); got != want {
			return nil, fmt.Errorf("hdfs: checkpoint config digest %#x does not match cluster %#x", got, want)
		}
	}
	st := &ckptState{}
	st.now = time.Duration(d.uvarint("capture time"))
	st.journalSeq = d.uvarint("journal seq")
	st.nextBlock = BlockID(d.uvarint("nextBlock"))
	nSlots := d.uvarint("file slots")
	nNodes := d.uvarint("datanodes")
	if d.err != nil {
		return nil, d.err
	}
	if nSlots > maxCkptSlots || st.nextBlock > maxCkptSlots {
		return nil, fmt.Errorf("hdfs: implausible checkpoint sizes (%d file slots, %d blocks)", nSlots, st.nextBlock)
	}
	if int(nNodes) != len(c.datanodes) {
		return nil, fmt.Errorf("hdfs: checkpoint has %d datanodes, cluster has %d", nNodes, len(c.datanodes))
	}

	// Files. Block ownership is tracked so every live block has exactly
	// one owner and block IDs stay in range. The INode arena, namespace
	// map, and slot table are built directly here — the map doubles as
	// duplicate-path detection, and commit adopts all three wholesale.
	// Pre-allocation is bounded by the payload size so a forged header
	// can't balloon memory; the bound also fixes the arena's capacity
	// (every present slot costs at least one payload byte, so appends can
	// never exceed it), which keeps handed-out *INode pointers stable.
	owner := make([]int32, st.nextBlock) // 0 = unowned; slot+1 otherwise
	capHint := min(int(nSlots), len(payload))
	st.inodes = make([]INode, 0, capHint)
	st.fileByID = make([]*INode, 0, capHint)
	st.files = make(map[string]*INode, min(capHint, len(payload)/8))
	liveBlocks := 0
	for i := uint64(0); i < nSlots && d.err == nil; i++ {
		if !d.boolv("slot presence") {
			st.fileByID = append(st.fileByID, nil)
			continue
		}
		slot := len(st.fileByID)
		st.inodes = append(st.inodes, INode{
			Path:       d.str("file path"),
			Size:       d.f64("file size"),
			CreatedAt:  time.Duration(d.varint("createdAt")),
			TargetRepl: int(d.uvarint("target repl")),
			Encoded:    d.boolv("encoded"),
			EncodeK:    int(d.uvarint("encodeK")),
			EncodeM:    int(d.uvarint("encodeM")),
			Blocks:     d.idList("block list", st.nextBlock),
			Parity:     d.idList("parity list", st.nextBlock),
			id:         slot,
		})
		f := &st.inodes[len(st.inodes)-1]
		if d.err != nil {
			return nil, d.err
		}
		// Insert-then-check-growth detects duplicates with a single map
		// operation; on error the whole staged state is discarded anyway.
		before := len(st.files)
		st.files[f.Path] = f
		if f.Path == "" || len(st.files) == before {
			return nil, fmt.Errorf("hdfs: checkpoint slot %d: empty or duplicate path %q", slot, f.Path)
		}
		if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
			return nil, fmt.Errorf("hdfs: checkpoint file %q: bad size %v", f.Path, f.Size)
		}
		if f.TargetRepl < 1 || f.CreatedAt < 0 || f.EncodeK < 0 || f.EncodeM < 0 {
			return nil, fmt.Errorf("hdfs: checkpoint file %q: bad metadata (target=%d createdAt=%v k=%d m=%d)",
				f.Path, f.TargetRepl, f.CreatedAt, f.EncodeK, f.EncodeM)
		}
		// A file mid-write (WriteFile mints blocks as pipeline flows land)
		// may have fewer blocks than its final size implies, never more.
		if want := blockCount(f.Size, c.cfg.BlockSize); len(f.Blocks) > want {
			return nil, fmt.Errorf("hdfs: checkpoint file %q: %d blocks for size %.0f (max %d)",
				f.Path, len(f.Blocks), f.Size, want)
		}
		if len(f.Parity) > 0 && (f.EncodeK <= 0 || f.EncodeM <= 0) {
			return nil, fmt.Errorf("hdfs: checkpoint file %q: parity blocks without stripe geometry", f.Path)
		}
		if f.Encoded && f.EncodeK <= 0 {
			return nil, fmt.Errorf("hdfs: checkpoint file %q: encoded without geometry", f.Path)
		}
		for _, ids := range [2][]BlockID{f.Blocks, f.Parity} {
			for _, bid := range ids {
				if owner[bid] != 0 {
					return nil, fmt.Errorf("hdfs: checkpoint block %d claimed by two files", bid)
				}
				owner[bid] = int32(slot) + 1
				liveBlocks++
			}
		}
		st.fileByID = append(st.fileByID, f)
	}
	if d.err != nil {
		return nil, d.err
	}

	// Replica lists, one per live (owned) block in ascending ID order.
	// Duplicate detection uses a generation-stamped array instead of a
	// per-block map, and the lists carve a shared slab: at a million blocks
	// the per-block map alone dominated the whole restore.
	st.live = liveBlocks
	st.replicas = make([][]DatanodeID, st.nextBlock)
	seenGen := make([]uint64, len(c.datanodes))
	var gen uint64
	var slab []DatanodeID
	for bid := BlockID(0); bid < st.nextBlock; bid++ {
		if owner[bid] == 0 {
			continue
		}
		n := d.uvarint("replica count")
		if d.err != nil {
			return nil, d.err
		}
		if n > nNodes {
			return nil, fmt.Errorf("hdfs: checkpoint block %d: %d replicas on a %d-node cluster", bid, n, nNodes)
		}
		gen++
		if uint64(len(slab)) < n {
			slab = make([]DatanodeID, max(1<<16, int(n)))
		}
		reps := slab[:n:n]
		slab = slab[n:]
		for j := uint64(0); j < n; j++ {
			dn := DatanodeID(d.uvarint("replica node"))
			if d.err != nil {
				return nil, d.err
			}
			if int(dn) >= len(c.datanodes) || seenGen[dn] == gen {
				return nil, fmt.Errorf("hdfs: checkpoint block %d: bad or duplicate replica node %d", bid, dn)
			}
			seenGen[dn] = gen
			reps[j] = dn
		}
		st.replicas[bid] = reps
	}

	// Datanodes. Holdings are validated against the replica lists directly:
	// a per-node count answers the down-node check, and the corrupt/reported
	// sets are small, so membership scans the (short) replica list itself
	// rather than materializing per-node block maps.
	heldCount := make([]int, len(c.datanodes))
	for _, reps := range st.replicas {
		for _, dn := range reps {
			heldCount[dn]++
		}
	}
	holds := func(dn int, bid BlockID) bool {
		for _, r := range st.replicas[bid] {
			if int(r) == dn {
				return true
			}
		}
		return false
	}
	st.nodes = make([]ckptNode, len(c.datanodes))
	for i := range st.nodes {
		n := &st.nodes[i]
		n.state = NodeState(d.uvarint("node state"))
		n.stale = d.boolv("stale")
		n.crashed = d.boolv("crashed")
		n.lastHeartbeat = time.Duration(d.varint("lastHeartbeat"))
		n.activeSince = time.Duration(d.varint("activeSince"))
		n.activeTime = time.Duration(d.varint("activeTime"))
		n.corrupt = d.idList("corrupt set", st.nextBlock)
		n.reported = d.idList("reported set", st.nextBlock)
		if d.err != nil {
			return nil, d.err
		}
		if n.state < StateActive || n.state > StateDecommissioned {
			return nil, fmt.Errorf("hdfs: checkpoint node %d: unknown state %d", i, n.state)
		}
		if n.state == StateDown && heldCount[i] > 0 {
			return nil, fmt.Errorf("hdfs: checkpoint node %d: down but holds %d replicas", i, heldCount[i])
		}
		for _, set := range [][]BlockID{n.corrupt, n.reported} {
			for _, bid := range set {
				if !holds(i, bid) {
					return nil, fmt.Errorf("hdfs: checkpoint node %d: flags block %d it does not hold", i, bid)
				}
			}
		}
	}

	// Cluster odds and ends.
	nParts := d.uvarint("partition count")
	if d.err != nil {
		return nil, d.err
	}
	if nParts > uint64(c.topo.NumRacks()) {
		return nil, fmt.Errorf("hdfs: checkpoint partitions %d racks of %d", nParts, c.topo.NumRacks())
	}
	for i := uint64(0); i < nParts; i++ {
		rk := int(d.uvarint("partitioned rack"))
		if d.err != nil {
			return nil, d.err
		}
		if rk < 0 || rk >= c.topo.NumRacks() {
			return nil, fmt.Errorf("hdfs: checkpoint partitions unknown rack %d", rk)
		}
		st.partitioned = append(st.partitioned, rk)
	}
	st.scrubCursor = int(d.uvarint("scrub cursor"))
	if d.err == nil {
		bad := st.scrubCursor < 0
		if st.nextBlock > 0 {
			bad = bad || st.scrubCursor >= int(st.nextBlock)
		} else {
			bad = bad || st.scrubCursor != 0
		}
		if bad {
			return nil, fmt.Errorf("hdfs: checkpoint scrub cursor %d out of range", st.scrubCursor)
		}
	}

	ints := make([]int, len(st.metrics.ints()))
	for i := range ints {
		ints[i] = int(d.varint("metric"))
		if d.err == nil && ints[i] < 0 {
			return nil, fmt.Errorf("hdfs: checkpoint metric %d is negative", i)
		}
	}
	floats := make([]float64, len(st.metrics.floats()))
	for i := range floats {
		floats[i] = d.f64("metric")
		if d.err == nil && (floats[i] < 0 || math.IsNaN(floats[i])) {
			return nil, fmt.Errorf("hdfs: checkpoint float metric %d is invalid", i)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	st.metrics.setInts(ints)
	st.metrics.setFloats(floats)
	if st.metrics.ReadsStarted != st.metrics.ReadsCompleted+st.metrics.ReadsFailed {
		return nil, fmt.Errorf("hdfs: checkpoint read metrics do not balance (%d != %d + %d)",
			st.metrics.ReadsStarted, st.metrics.ReadsCompleted, st.metrics.ReadsFailed)
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("hdfs: checkpoint has %d trailing bytes", d.rem())
	}
	return st, nil
}

// blockCount returns how many blocks a file of the given size splits into.
func blockCount(size, blockSize float64) int {
	n := int(size / blockSize)
	if float64(n)*blockSize < size {
		n++
	}
	return n
}

// commitCheckpoint applies a validated checkpoint, rebuilding every
// derived index from the durable state.
func (c *Cluster) commitCheckpoint(st *ckptState) {
	c.nextBlock = st.nextBlock
	c.ckptJournalSeq = st.journalSeq
	c.blocks = make([]*Block, st.nextBlock)
	c.replicas = st.replicas
	c.readCounts = make([]int64, st.nextBlock)
	c.liveBlocks = 0
	c.files = st.files
	c.fileByID = st.fileByID
	c.pathsCache = nil

	// Reconstruct every Block from its file: data block sizes follow from
	// the file size and block geometry, parities are whole blocks whose
	// stripe group is their position in the parity list. Blocks come out
	// of one cap-fixed arena — a million individual allocations is a
	// third of restore time, and the full slice guarantees append never
	// relocates a handed-out pointer.
	blockArena := make([]Block, 0, st.live)
	newBlock := func(b Block) *Block {
		blockArena = append(blockArena, b)
		return &blockArena[len(blockArena)-1]
	}
	for slot, f := range st.fileByID {
		if f == nil {
			continue
		}
		// Data block sizes follow from the file size: full blocks except
		// the file's FINAL block, which carries the remainder. A mid-write
		// file's minted blocks are all full-size (the remainder block is
		// minted last), so indexing against the final count is right for
		// partial files too.
		want := blockCount(f.Size, c.cfg.BlockSize)
		for i, bid := range f.Blocks {
			bs := c.cfg.BlockSize
			if i == want-1 {
				bs = f.Size - float64(want-1)*c.cfg.BlockSize
			}
			c.blocks[bid] = newBlock(Block{ID: bid, File: f.Path, Index: i, Size: bs, fileID: slot})
			c.liveBlocks++
		}
		n := len(f.Blocks)
		for p, bid := range f.Parity {
			c.blocks[bid] = newBlock(Block{
				ID: bid, File: f.Path, Index: n + p, Size: c.cfg.BlockSize,
				Parity: true, Group: p / max(f.EncodeM, 1), fileID: slot,
			})
			c.liveBlocks++
		}
	}

	// Datanodes: durable fields from the checkpoint, block sets and Used
	// rebuilt from the replica lists, transient flow state reset. Every
	// node's bitmap is carved full-width from one slab so the replica
	// fill below never grows a bitmap (growth copies dominated restore).
	words := int(uint64(st.nextBlock)>>6) + 1
	bitSlab := make([]uint64, len(c.datanodes)*words)
	for i, d := range c.datanodes {
		n := &st.nodes[i]
		d.State = n.state
		d.Stale = n.stale
		d.crashed = n.crashed
		d.lastHeartbeat = n.lastHeartbeat
		d.activeSince = n.activeSince
		d.ActiveTime = n.activeTime
		d.Used = 0
		d.sessions = 0
		d.xferOut = 0
		d.pendingAdds = 0
		d.pendingBytes = 0
		d.waiting = nil
		d.activeFlows = make(map[*netsim.Flow]*flowHandle)
		d.blocks = blockSet{bits: bitSlab[i*words : (i+1)*words : (i+1)*words]}
		d.corrupt = make(map[BlockID]bool, len(n.corrupt))
		for _, bid := range n.corrupt {
			d.corrupt[bid] = true
		}
		d.reported = make(map[BlockID]bool, len(n.reported))
		for _, bid := range n.reported {
			d.reported[bid] = true
		}
	}
	for bid, reps := range c.replicas {
		b := c.blocks[bid]
		for _, dn := range reps {
			d := c.datanodes[dn]
			d.blocks.Add(b.ID)
			d.Used += b.Size
		}
	}

	// Derived indexes: placement load index and under-replication set.
	c.loadIdx = nil
	c.idxMin = 0
	for _, d := range c.datanodes {
		d.inIdx = false
		c.reindexNode(d)
	}
	c.underSet = make(map[BlockID]struct{})
	for _, b := range c.blocks {
		if b != nil {
			c.reassessBlock(b)
		}
	}

	c.partitioned = make(map[int]bool, len(st.partitioned))
	for _, r := range st.partitioned {
		c.partitioned[r] = true
	}
	c.scrubCursor = st.scrubCursor
	c.metrics = st.metrics
	c.activeReads = 0
}

// ckptDecoder reads checkpoint fields from an in-memory payload, folding
// errors so call sites stay linear. It indexes the payload slice directly
// — a reader interface in this loop costs two dynamic calls per varint,
// which dominates at a million blocks.
type ckptDecoder struct {
	data   []byte
	blob   string // one string copy of data; str returns windows of it
	off    int
	err    error
	idSlab []BlockID // chunked backing store for idList results
}

func (d *ckptDecoder) rem() int { return len(d.data) - d.off }

func (d *ckptDecoder) fail(what string, err error) {
	if d.err == nil {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		d.err = fmt.Errorf("hdfs: checkpoint decode %s: %w", what, err)
	}
}

func (d *ckptDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what, varintErr(n))
		return 0
	}
	d.off += n
	return v
}

func (d *ckptDecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail(what, varintErr(n))
		return 0
	}
	d.off += n
	return v
}

func varintErr(n int) error {
	if n < 0 {
		return fmt.Errorf("varint overflow")
	}
	return io.ErrUnexpectedEOF
}

func (d *ckptDecoder) f64(what string) float64 { return math.Float64frombits(d.uvarint(what)) }

func (d *ckptDecoder) boolv(what string) bool {
	v := d.uvarint(what)
	if d.err == nil && v > 1 {
		d.fail(what, fmt.Errorf("bad bool %d", v))
	}
	return v == 1
}

func (d *ckptDecoder) str(what string) string {
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if n > maxCkptString {
		d.fail(what, fmt.Errorf("length %d too large", n))
		return ""
	}
	if uint64(d.rem()) < n {
		d.fail(what, io.ErrUnexpectedEOF)
		return ""
	}
	s := d.blob[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}

func (d *ckptDecoder) bytes(what string, b []byte) {
	if d.err != nil {
		return
	}
	if d.rem() < len(b) {
		d.fail(what, io.ErrUnexpectedEOF)
		return
	}
	copy(b, d.data[d.off:d.off+len(b)])
	d.off += len(b)
}

// idList reads a delta-encoded, strictly ascending block ID list whose
// members must lie in [0, limit).
func (d *ckptDecoder) idList(what string, limit BlockID) []BlockID {
	n := d.uvarint(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(limit) {
		d.fail(what, fmt.Errorf("%d IDs with only %d blocks", n, limit))
		return nil
	}
	// Lists carve windows from a shared slab: a million per-file block
	// lists allocated individually is measurable at restore time.
	if uint64(len(d.idSlab)) < n {
		d.idSlab = make([]BlockID, max(1<<16, int(n)))
	}
	out := d.idSlab[:0:n]
	d.idSlab = d.idSlab[n:]
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		delta := d.varint(what)
		if d.err != nil {
			return nil
		}
		if i > 0 && delta <= 0 {
			d.fail(what, fmt.Errorf("IDs not strictly ascending after %d", prev))
			return nil
		}
		v := prev + delta
		if v < 0 || v >= int64(limit) {
			d.fail(what, fmt.Errorf("ID %d out of range [0,%d)", v, limit))
			return nil
		}
		out = append(out, BlockID(v))
		prev = v
	}
	return out
}
