package hdfs

import (
	"erms/internal/netsim"
	"erms/internal/topology"
)

// StartDiskLoad occupies part of a datanode's disk with `streams` steady
// synthetic read streams, each capped at rate bytes/s. It models the
// foreground work a busy active node performs outside the experiment (the
// paper: "standby nodes might be better than active nodes when the active
// nodes are heavily used"). Each stream holds one serving session so
// replica selection sees the node as loaded. The returned stop function
// releases the sessions and cancels the flows.
func (c *Cluster) StartDiskLoad(id DatanodeID, streams int, rate float64) (stop func()) {
	d := c.datanodes[id]
	stopped := false
	var flows []*netsim.Flow
	path := []topology.LinkID{c.topo.Node(topology.NodeID(id)).Disk}
	const chunk = 64 * topology.MB
	var launch func(slot int)
	launch = func(slot int) {
		if stopped || d.State == StateDown {
			return
		}
		f := c.fabric.StartFlow(path, chunk, rate, func(*netsim.Flow) {
			launch(slot)
		})
		if slot < len(flows) {
			flows[slot] = f
		} else {
			flows = append(flows, f)
		}
	}
	for i := 0; i < streams; i++ {
		d.sessions++
		launch(i)
	}
	return func() {
		if stopped {
			return
		}
		stopped = true
		for _, f := range flows {
			c.fabric.Cancel(f)
		}
		for i := 0; i < streams; i++ {
			c.release(d)
		}
	}
}
