package hdfs

import (
	"sort"

	"erms/internal/topology"
)

// Policy is the pluggable replica placement interface (HDFS lets
// administrators "implement their own replica placement strategy").
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ChooseTargets picks count datanodes to host new replicas of b,
	// excluding nodes in exclude and nodes already holding the block.
	// writer is the creating client's node (-1 when remote/unknown). It
	// may return fewer than count when the cluster cannot satisfy the
	// request.
	ChooseTargets(c *Cluster, b *Block, count int, writer DatanodeID, exclude map[DatanodeID]bool) []DatanodeID
	// ChooseExcess picks the replica of b to delete when shrinking.
	ChooseExcess(c *Cluster, b *Block) (DatanodeID, bool)
}

// DefaultPolicy is HDFS's rack-aware strategy: first replica on the writer
// (or a random active node), second on a node in a different rack, third on
// a different node in the second's rack, and further replicas spread over
// active nodes with the fewest blocks. Only Active nodes are eligible.
type DefaultPolicy struct{}

// NewDefaultPolicy returns the rack-aware default.
func NewDefaultPolicy() *DefaultPolicy { return &DefaultPolicy{} }

// Name implements Policy.
func (p *DefaultPolicy) Name() string { return "default-rack-aware" }

// eligible lists active nodes with room for the block, not already
// replicas, not excluded — sorted by (blocks held, ID) so choice is
// deterministic and load-spreading. The hot path (pick, via scanEligible)
// reproduces this order from the load index without the full scan; this
// reference implementation remains as the oracle ConsistencyErrors checks
// the index against.
func eligible(c *Cluster, b *Block, exclude map[DatanodeID]bool, states ...NodeState) []DatanodeID {
	okState := map[NodeState]bool{}
	for _, s := range states {
		okState[s] = true
	}
	holder := map[DatanodeID]bool{}
	for _, r := range c.Replicas(b.ID) {
		holder[r] = true
	}
	var out []DatanodeID
	for _, d := range c.datanodes {
		if !okState[d.State] || holder[d.ID] || exclude[d.ID] {
			continue
		}
		// Stale, crashed, or partitioned nodes do not receive writes: the
		// namenode either distrusts them (stale) or cannot reach them.
		if d.Stale || d.crashed || c.NodeUnreachable(d.ID) {
			continue
		}
		if d.UncommittedFree() < b.Size {
			continue
		}
		out = append(out, d.ID)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := c.datanodes[out[i]], c.datanodes[out[j]]
		if di.PlacementLoad() != dj.PlacementLoad() {
			return di.PlacementLoad() < dj.PlacementLoad()
		}
		return out[i] < out[j]
	})
	return out
}

// ChooseTargets implements Policy.
func (p *DefaultPolicy) ChooseTargets(c *Cluster, b *Block, count int, writer DatanodeID, exclude map[DatanodeID]bool) []DatanodeID {
	var chosen []DatanodeID
	taken := map[DatanodeID]bool{}
	for k := range exclude {
		taken[k] = true
	}
	existing := c.replicas[b.ID]
	// Racks covered by existing replicas plus picks so far. When a repair
	// finds the survivors huddled in a single rack (the cross-rack copy was
	// the one that died), the slot heuristics below must not co-locate the
	// new replica with them — one rack outage would erase the block.
	rackSpan := map[int]bool{}
	for _, r := range existing {
		rackSpan[c.topo.Rack(topology.NodeID(r))] = true
	}
	add := func(id DatanodeID) {
		chosen = append(chosen, id)
		taken[id] = true
		rackSpan[c.topo.Rack(topology.NodeID(id))] = true
	}
	pick := func(pred func(DatanodeID) bool) (DatanodeID, bool) {
		var found DatanodeID = -1
		c.scanEligible(b, taken, func(id DatanodeID) bool {
			if pred == nil || pred(id) {
				found = id
				return true
			}
			return false
		})
		if found < 0 {
			return 0, false
		}
		return found, true
	}

	// Rack of the "first" replica for rack-awareness decisions.
	firstRack := -1
	rackOf := func(id DatanodeID) int { return c.topo.Rack(topology.NodeID(id)) }
	if len(existing) > 0 {
		firstRack = rackOf(existing[0])
	}

	for len(chosen) < count {
		slot := len(existing) + len(chosen)
		var id DatanodeID
		var ok bool
		switch slot {
		case 0:
			// Writer-local if possible.
			if writer >= 0 && int(writer) < len(c.datanodes) {
				d := c.datanodes[writer]
				if d.Eligible() && !c.NodeUnreachable(writer) && !taken[writer] &&
					d.Free() >= b.Size && !d.HasBlock(b.ID) {
					id, ok = writer, true
				}
			}
			if !ok {
				id, ok = pick(nil)
			}
			if ok {
				firstRack = rackOf(id)
			}
		case 1:
			// Different rack from the first replica.
			id, ok = pick(func(n DatanodeID) bool { return rackOf(n) != firstRack })
			if !ok {
				id, ok = pick(nil)
			}
		case 2:
			// Same rack as the second replica, different node — unless the
			// replicas so far all share one rack (a re-replication whose
			// survivors lost their cross-rack copy): then restore rack
			// diversity first, as HDFS's replication monitor does.
			if len(rackSpan) < 2 {
				id, ok = pick(func(n DatanodeID) bool { return !rackSpan[rackOf(n)] })
			}
			if !ok {
				secondRack := -1
				if len(existing) > 1 {
					secondRack = rackOf(existing[1])
				} else if len(chosen) > 0 {
					secondRack = rackOf(chosen[len(chosen)-1])
				}
				id, ok = pick(func(n DatanodeID) bool { return rackOf(n) == secondRack })
			}
			if !ok {
				id, ok = pick(nil)
			}
		default:
			if len(rackSpan) < 2 {
				id, ok = pick(func(n DatanodeID) bool { return !rackSpan[rackOf(n)] })
			}
			if !ok {
				id, ok = pick(nil)
			}
		}
		if !ok {
			break
		}
		add(id)
	}
	return chosen
}

// ChooseExcess implements Policy: pick the replica whose loss costs the
// least. Corrupt replicas go first, then replicas on nodes that are not
// currently serving (crashed or partitioned but not yet declared dead),
// then clean replicas in racks that still hold another clean copy — so a
// shrink never collapses a block into a single rack, or worse, keeps only
// unreadable copies, while healthy ones exist. Within a class the node
// holding the most blocks loses (load shedding), tie-break by ID, so the
// choice stays deterministic.
func (p *DefaultPolicy) ChooseExcess(c *Cluster, b *Block) (DatanodeID, bool) {
	reps := c.replicas[b.ID]
	if len(reps) == 0 {
		return 0, false
	}
	// A replica is readable only from a serving, un-crashed, non-stale,
	// reachable node holding a clean copy.
	readable := func(id DatanodeID) bool {
		d := c.datanodes[id]
		return !d.CorruptBlock(b.ID) && d.State.serves() && !d.crashed &&
			!d.Stale && !c.NodeUnreachable(id)
	}
	// Racks counted over clean, reachable replicas only: a rack whose other
	// copy is corrupt does not really hold a second copy.
	rackHealthy := map[int]int{}
	for _, r := range reps {
		if readable(r) {
			rackHealthy[c.topo.Rack(topology.NodeID(r))]++
		}
	}
	class := func(id DatanodeID) int {
		switch {
		case c.datanodes[id].CorruptBlock(b.ID):
			return 3
		case !readable(id):
			return 2
		case rackHealthy[c.topo.Rack(topology.NodeID(id))] >= 2:
			return 1
		}
		return 0
	}
	best, bestClass := reps[0], class(reps[0])
	for _, r := range reps[1:] {
		cl := class(r)
		if cl < bestClass {
			continue
		}
		db, dr := c.datanodes[best], c.datanodes[r]
		if cl > bestClass || dr.NumBlocks() > db.NumBlocks() ||
			(dr.NumBlocks() == db.NumBlocks() && r > best) {
			best, bestClass = r, cl
		}
	}
	return best, true
}
