package hdfs

import (
	"math"
	"sort"
)

// BalancerReport summarizes one balancer run.
type BalancerReport struct {
	// MovesDone is the number of block replicas relocated.
	MovesDone int
	// MovesFailed counts moves that could not complete.
	MovesFailed int
	// BytesMoved is the replication traffic the balancing cost.
	BytesMoved float64
	// SpreadBefore/SpreadAfter are the max-min utilization gaps across
	// active nodes (fractions of capacity).
	SpreadBefore, SpreadAfter float64
}

// UtilizationSpread returns the max-min utilization gap over active nodes.
func (c *Cluster) UtilizationSpread() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, d := range c.datanodes {
		if d.State != StateActive || d.Capacity <= 0 {
			continue
		}
		u := d.Used / d.Capacity
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return max - min
}

// Balance runs the HDFS balancer: block replicas move from over-utilized
// to under-utilized active nodes until every node sits within `threshold`
// (a fraction of capacity) of the cluster mean, or no productive move
// remains. Moves are real copy-then-delete transfers that consume disk
// and network bandwidth — the cost ERMS's standby-first deletion policy
// is designed to avoid. done receives the report when the cluster settles.
func (c *Cluster) Balance(threshold float64, maxConcurrent int, done func(BalancerReport)) {
	if threshold <= 0 {
		threshold = 0.1
	}
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	report := &BalancerReport{SpreadBefore: c.UtilizationSpread()}
	inFlight := 0
	finished := false
	moving := map[BlockID]bool{} // blocks with a move in flight
	var pump func()

	finish := func() {
		if finished {
			return
		}
		finished = true
		report.SpreadAfter = c.UtilizationSpread()
		if done != nil {
			done(*report)
		}
	}

	mean := func() float64 {
		var sum float64
		n := 0
		for _, d := range c.datanodes {
			if d.State == StateActive && d.Capacity > 0 {
				sum += d.Used / d.Capacity
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	// planMove picks the most over-utilized source, the most
	// under-utilized eligible target, and a block to shift between them.
	planMove := func() (BlockID, DatanodeID, DatanodeID, bool) {
		avg := mean()
		var nodes []*Datanode
		for _, d := range c.datanodes {
			if d.State == StateActive && d.Capacity > 0 {
				nodes = append(nodes, d)
			}
		}
		sort.Slice(nodes, func(i, j int) bool {
			ui := nodes[i].Used / nodes[i].Capacity
			uj := nodes[j].Used / nodes[j].Capacity
			if ui != uj {
				return ui > uj
			}
			return nodes[i].ID < nodes[j].ID
		})
		for _, src := range nodes {
			if src.Used/src.Capacity <= avg+threshold {
				break // sorted: nobody further is over
			}
			// Candidate blocks on src; Each is ascending, so deterministic.
			blocks := make([]BlockID, 0, src.blocks.Len())
			src.blocks.Each(func(bid BlockID) { blocks = append(blocks, bid) })
			for t := len(nodes) - 1; t >= 0; t-- {
				dst := nodes[t]
				if dst.Used/dst.Capacity >= avg-threshold {
					break // sorted: nobody further is under
				}
				for _, bid := range blocks {
					b := c.blocks[bid]
					if moving[bid] || dst.HasBlock(bid) || dst.UncommittedFree() < b.Size {
						continue
					}
					// Moving must actually narrow the gap.
					if src.Used/src.Capacity-b.Size/src.Capacity < avg-threshold {
						continue
					}
					return bid, src.ID, dst.ID, true
				}
			}
		}
		return 0, 0, 0, false
	}

	pump = func() {
		for inFlight < maxConcurrent {
			bid, src, dst, ok := planMove()
			if !ok {
				break
			}
			inFlight++
			moving[bid] = true
			b := c.blocks[bid]
			c.moveReplica(bid, src, dst, func(err error) {
				inFlight--
				delete(moving, bid)
				if err != nil {
					report.MovesFailed++
				} else {
					report.MovesDone++
					report.BytesMoved += b.Size
				}
				pump()
			})
		}
		if inFlight == 0 {
			finish()
		}
	}
	pump()
}

// moveReplica copies block bid to dst and then removes it from src.
func (c *Cluster) moveReplica(bid BlockID, src, dst DatanodeID, done func(error)) {
	c.AddReplica(bid, dst, func(err error) {
		if err != nil {
			done(err)
			return
		}
		done(c.RemoveReplica(bid, src))
	})
}
