package hdfs

import (
	"fmt"
	"sort"

	"erms/internal/auditlog"
)

// Federation support: the namenode side of cross-shard moves. A move's
// protocol markers (intent, commit, tombstone) are journaled in the
// source shard's journal through AppendMarker; both the live path and
// journal replay maintain the pending-move table, so a standby promoted
// from checkpoint+tail knows which moves were in flight and whether each
// must roll back (intent only) or roll forward (committed). The markers
// mutate no namespace state — the move's visible effects are ordinary
// journaled operations (create at the destination's staging path, rename
// to publish, delete at the source).

// MoveRecord is one open cross-shard move, keyed by (Src, Dst).
type MoveRecord struct {
	Src  string // path in this (source) shard
	Dst  string // final path in the destination shard
	Peer int    // destination shard index
	// Committed marks the move past its commit point: the copy exists at
	// the destination staging path and recovery must roll forward.
	Committed bool
}

func moveKey(src, dst string) string { return src + "\x00" + dst }

// AppendMarker journals a federation protocol marker and updates the
// pending-move table. Markers flow through the same fencing/safe-mode
// gate as namespace mutations — a fenced ex-primary must not advance a
// cross-shard protocol — and require an attached journal, since a marker
// that cannot be made durable protects nothing.
func (c *Cluster) AppendMarker(e auditlog.Entry) error {
	switch e.Op {
	case auditlog.OpFedMoveIntent, auditlog.OpFedMoveCommit, auditlog.OpFedMoveTombstone:
	default:
		return fmt.Errorf("hdfs: %s is not a protocol marker", e.Op)
	}
	if e.Path == "" || e.Dst == "" {
		return fmt.Errorf("hdfs: marker %s needs both src and dst paths", e.Op)
	}
	if err := c.writable(); err != nil {
		return err
	}
	if c.journal == nil {
		return fmt.Errorf("hdfs: marker %s needs a journal (EnableJournal)", e.Op)
	}
	c.jlog(e)
	c.applyMoveMarker(e)
	return nil
}

// applyMoveMarker folds one marker into the pending-move table. Shared by
// the live path (AppendMarker) and journal replay; replay may see a
// commit whose intent predates the checkpoint — the commit alone carries
// enough to roll forward, so it opens the record as already committed.
func (c *Cluster) applyMoveMarker(e auditlog.Entry) {
	key := moveKey(e.Path, e.Dst)
	switch e.Op {
	case auditlog.OpFedMoveIntent:
		if c.fedMoves == nil {
			c.fedMoves = make(map[string]*MoveRecord)
		}
		c.fedMoves[key] = &MoveRecord{Src: e.Path, Dst: e.Dst, Peer: e.Node}
	case auditlog.OpFedMoveCommit:
		if rec, ok := c.fedMoves[key]; ok {
			rec.Committed = true
			return
		}
		if c.fedMoves == nil {
			c.fedMoves = make(map[string]*MoveRecord)
		}
		c.fedMoves[key] = &MoveRecord{Src: e.Path, Dst: e.Dst, Peer: e.Node, Committed: true}
	case auditlog.OpFedMoveTombstone:
		delete(c.fedMoves, key)
	}
}

// PendingMoves returns the open cross-shard moves in deterministic
// (Src, Dst) order. Empty between protocol runs; non-empty only when a
// move is mid-flight or a crash left one unresolved.
func (c *Cluster) PendingMoves() []MoveRecord {
	if len(c.fedMoves) == 0 {
		return nil
	}
	out := make([]MoveRecord, 0, len(c.fedMoves))
	for _, rec := range c.fedMoves {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Add returns the field-wise sum of two metrics snapshots — the federated
// facade's cluster-wide view across per-shard block pools.
func (m Metrics) Add(o Metrics) Metrics {
	m.ReadsStarted += o.ReadsStarted
	m.ReadsCompleted += o.ReadsCompleted
	m.ReadsFailed += o.ReadsFailed
	m.BytesRead += o.BytesRead
	m.BlockReads += o.BlockReads
	m.NodeLocalReads += o.NodeLocalReads
	m.RackLocalReads += o.RackLocalReads
	m.RemoteReads += o.RemoteReads
	m.RangedReads += o.RangedReads
	m.PartialBlockReads += o.PartialBlockReads
	m.RangedBytesRead += o.RangedBytesRead
	m.ReplicasAdded += o.ReplicasAdded
	m.ReplicasRemoved += o.ReplicasRemoved
	m.ReplicationMB += o.ReplicationMB
	m.FilesEncoded += o.FilesEncoded
	m.BlocksRebuilt += o.BlocksRebuilt
	m.StaleTransitions += o.StaleTransitions
	m.ReplicasScrubbed += o.ReplicasScrubbed
	m.CorruptDetected += o.CorruptDetected
	m.ChecksumFailures += o.ChecksumFailures
	m.CorruptBytes += o.CorruptBytes
	m.SafeModeEntries += o.SafeModeEntries
	m.SafeModeExits += o.SafeModeExits
	m.SafeModeRejections += o.SafeModeRejections
	m.FencedWritesRejected += o.FencedWritesRejected
	m.FencedWritesApplied += o.FencedWritesApplied
	return m
}
