package hdfs

import (
	"sort"
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// TestUnderReplicatedOrderContract pins the documented ordering contract:
// UnderReplicated returns blocks ascending by BlockID, identically on
// every call and identically across same-seed runs. The repair pipeline's
// (tier, BlockID) admission order — and with it every downstream transfer
// schedule — is built on this.
func TestUnderReplicatedOrderContract(t *testing.T) {
	run := func() []BlockID {
		e := sim.NewEngine()
		c := New(e, Config{Topology: topology.New(topology.Config{})})
		for i, p := range []string{"/u/a", "/u/b", "/u/c", "/u/d", "/u/e"} {
			if _, err := c.CreateFile(p, 192*mb, 2+i%3, -1); err != nil {
				t.Fatal(err)
			}
		}
		// Two node deaths damage an interleaved, non-contiguous set of
		// blocks — the case where map-iteration order would leak if the
		// contract were ever broken.
		c.Kill(3)
		c.Kill(11)
		e.RunUntil(time.Second)
		return c.UnderReplicated()
	}

	a := run()
	if len(a) == 0 {
		t.Fatal("no under-replicated blocks after two node deaths")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatalf("UnderReplicated not ascending by BlockID: %v", a)
	}
	b := run()
	if len(a) != len(b) {
		t.Fatalf("same-seed runs disagree on damage: %d vs %d blocks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at index %d: %v vs %v", i, a, b)
		}
	}
}

// TestChooseSourceTieBreakOrder pins the source-selection key, most
// significant first: transfer load (sessions + outbound + INBOUND — a node
// mid-way through receiving a copy is a busy disk, not an idle source),
// then rack proximity to the target, then smallest ID.
func TestChooseSourceTieBreakOrder(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo})
	f, err := c.CreateFile("/src", 64*mb, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	bid := f.Blocks[0]
	reps := c.Replicas(bid)
	// Default placement: slots 1 and 2 share a rack, slot 0 sits elsewhere.
	r0, r1, r2 := reps[0], reps[1], reps[2]
	if !topo.SameRack(topology.NodeID(r1), topology.NodeID(r2)) ||
		topo.SameRack(topology.NodeID(r0), topology.NodeID(r1)) {
		t.Fatalf("placement precondition broken: replicas %v", reps)
	}
	low, high := r1, r2
	if high < low {
		low, high = high, low
	}
	// Target: a non-holder in the same rack as replicas 1 and 2.
	var target DatanodeID = -1
	for _, d := range c.Datanodes() {
		if !d.HasBlock(bid) && topo.SameRack(topology.NodeID(d.ID), topology.NodeID(r1)) {
			target = d.ID
			break
		}
	}
	if target < 0 {
		t.Fatal("no same-rack non-holder available as target")
	}

	// All idle: rack proximity wins, then smallest ID among the two
	// same-rack holders.
	if got, ok := c.chooseSource(bid, target, false); !ok || got != low {
		t.Fatalf("idle cluster: source = %v, want same-rack low ID %v", got, low)
	}

	// The preferred source starts receiving a transfer: xferIn alone must
	// disqualify it in favor of the equally-near idle holder.
	c.datanodes[low].xferIn++
	if got, ok := c.chooseSource(bid, target, false); !ok || got != high {
		t.Fatalf("busy-in low: source = %v, want other same-rack holder %v", got, high)
	}

	// Both same-rack holders busy: load outranks rack proximity, so the
	// idle remote replica wins.
	c.datanodes[high].xferIn++
	if got, ok := c.chooseSource(bid, target, false); !ok || got != r0 {
		t.Fatalf("same-rack busy: source = %v, want idle remote %v", got, r0)
	}

	// Load all equal again: rack proximity reasserts itself over ID.
	c.datanodes[r0].xferOut++
	if got, ok := c.chooseSource(bid, target, false); !ok || got != low {
		t.Fatalf("uniform load: source = %v, want same-rack low ID %v", got, low)
	}

	c.datanodes[low].xferIn--
	c.datanodes[high].xferIn--
	c.datanodes[r0].xferOut--
}

// TestRereplicationRestoresRackDiversity is the regression test for the
// placement fix this storm suite exposed: when a block's cross-rack
// replica dies and the survivors huddle in one rack, re-replication must
// place the new copy in a different rack — the slot heuristics alone would
// co-locate it and leave the block one rack outage from extinction.
func TestRereplicationRestoresRackDiversity(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo})
	// Writer-local slot 0 on node 0; slots 1 and 2 land together in some
	// other rack. Killing node 0 leaves every block single-rack.
	f, err := c.CreateFile("/div", 192*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rackSpan := func(bid BlockID) int {
		racks := map[int]bool{}
		for _, r := range c.Replicas(bid) {
			racks[topo.Rack(topology.NodeID(r))] = true
		}
		return len(racks)
	}
	for _, bid := range f.Blocks {
		if got := rackSpan(bid); got < 2 {
			t.Fatalf("block %d not rack-diverse at creation: span %d", bid, got)
		}
	}
	c.Kill(0)
	for _, bid := range f.Blocks {
		if got := rackSpan(bid); got != 1 {
			t.Fatalf("scenario precondition: block %d survivors span %d racks, want 1", bid, got)
		}
	}

	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()
	e.RunUntil(10 * time.Minute)
	for _, bid := range f.Blocks {
		if got := len(c.Replicas(bid)); got != 3 {
			t.Fatalf("block %d not healed: %d replicas", bid, got)
		}
		if got := rackSpan(bid); got < 2 {
			t.Fatalf("block %d repaired into a single rack: replicas %v", bid, c.Replicas(bid))
		}
	}
	checkConsistency(t, c)
}
