package hdfs

import (
	"fmt"
	"time"

	"erms/internal/auditlog"
	"erms/internal/netsim"
	"erms/internal/topology"
)

// ExternalClient denotes a reader outside the cluster (an application
// server). External reads have no locality preference: the replica is
// chosen purely by load, and the flow exits through the source's rack
// uplink.
const ExternalClient topology.NodeID = -1

// Locality classifies where a block read was served from.
type Locality int

// Locality levels.
const (
	NodeLocal Locality = iota
	RackLocal
	Remote
)

func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	}
	return "remote"
}

// ReadResult summarizes a completed file read.
type ReadResult struct {
	Path      string
	Client    topology.NodeID
	Bytes     float64
	Start     time.Duration
	End       time.Duration
	Err       error
	NodeLocal int // block reads served node-locally
	RackLocal int
	Remote    int
	// Offset/Length describe the requested byte range for ReadRange
	// results (Length 0 means a whole-file read).
	Offset float64
	Length float64
}

// Duration returns the wall (virtual) time the read took.
func (r *ReadResult) Duration() time.Duration { return r.End - r.Start }

// ThroughputMBps returns achieved read throughput in MB/s.
func (r *ReadResult) ThroughputMBps() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return r.Bytes / topology.MB / d
}

// ReadFile streams the whole file to the client node, reading blocks
// sequentially as HDFS clients do: for each block the namenode's replica
// list is consulted, the closest available replica is chosen (node-local,
// then rack-local, then least-loaded remote), the datanode admits the
// session (queuing when at its session limit), and the transfer runs on
// the fabric. done receives the result when the last block lands (or on
// unrecoverable failure). An audit open record is emitted at the start.
func (c *Cluster) ReadFile(client topology.NodeID, path string, done func(*ReadResult)) {
	c.ReadFileAt(client, path, 0, done)
}

// ReadFileAt is ReadFile starting from block index `start` and wrapping
// around (all blocks are still read exactly once). Concurrent benchmark
// readers use distinct starting offsets so they do not march through the
// file in lockstep — mirroring steady-state production readers that are
// naturally desynchronized.
func (c *Cluster) ReadFileAt(client topology.NodeID, path string, start int, done func(*ReadResult)) {
	f := c.files[path]
	res := &ReadResult{Path: path, Client: client, Start: c.clock.Now()}
	if f == nil {
		c.audit.Append(auditlog.Record{
			Time: c.clock.Now(), Allowed: false, UGI: "hadoop",
			IP: c.clientIP(client), Cmd: auditlog.CmdOpen, Src: path,
		})
		res.Err = fmt.Errorf("hdfs: no such file %q", path)
		res.End = c.clock.Now()
		if done != nil {
			done(res)
		}
		return
	}
	span := c.tracer.Begin("hdfs.read", c.tracer.Current())
	c.tracer.SetAttr(span, "path", path)
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: c.clientIP(client), Cmd: auditlog.CmdOpen, Src: path,
	})
	c.metrics.ReadsStarted++
	c.activeReads++
	blocks := f.Blocks
	if start > 0 && len(blocks) > 0 {
		start = start % len(blocks)
		rotated := make([]BlockID, 0, len(blocks))
		rotated = append(rotated, blocks[start:]...)
		rotated = append(rotated, blocks[:start]...)
		blocks = rotated
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(blocks) {
			res.End = c.clock.Now()
			c.activeReads--
			c.metrics.ReadsCompleted++
			c.metrics.BytesRead += res.Bytes
			c.tracer.End(span)
			if done != nil {
				done(res)
			}
			return
		}
		prev := c.tracer.Push(span)
		c.readBlock(client, blocks[i], 0, 0, func(bytes float64, loc Locality, err error) {
			if err != nil {
				res.Err = err
				res.End = c.clock.Now()
				c.activeReads--
				c.metrics.ReadsFailed++
				c.tracer.SetAttr(span, "error", "read failed")
				c.tracer.End(span)
				if done != nil {
					done(res)
				}
				return
			}
			res.Bytes += bytes
			switch loc {
			case NodeLocal:
				res.NodeLocal++
			case RackLocal:
				res.RackLocal++
			default:
				res.Remote++
			}
			step(i + 1)
		})
		c.tracer.Pop(prev)
	}
	step(0)
}

// ReadBlock reads a single block to the client node (used by MapReduce map
// tasks, which read exactly one block).
func (c *Cluster) ReadBlock(client topology.NodeID, id BlockID, done func(bytes float64, loc Locality, err error)) {
	c.readBlock(client, id, 0, 0, done)
}

// ReadRange streams the byte range [offset, offset+length) of path to the
// client — the positioned-read (pread) path real HDFS clients use for index
// lookups and columnar scans. Only the blocks covering the range are read,
// and each covered block streams only the overlapping bytes, so a ranged
// read of a block's head costs a fraction of a whole-block transfer. The
// audit log records cmd=pread, not open: the Data Judge's file-level count
// (formula 1) sees nothing, while the per-block read stream still feeds the
// block-level axes (formulas 2–3). length <= 0 means "to end of file";
// the range is clamped to the file size.
func (c *Cluster) ReadRange(client topology.NodeID, path string, offset, length float64, done func(*ReadResult)) {
	f := c.files[path]
	res := &ReadResult{Path: path, Client: client, Start: c.clock.Now(), Offset: offset, Length: length}
	fail := func(err error) {
		res.Err = err
		res.End = c.clock.Now()
		if done != nil {
			done(res)
		}
	}
	if f == nil {
		c.audit.Append(auditlog.Record{
			Time: c.clock.Now(), Allowed: false, UGI: "hadoop",
			IP: c.clientIP(client), Cmd: auditlog.CmdPread, Src: path,
		})
		fail(fmt.Errorf("hdfs: no such file %q", path))
		return
	}
	if offset < 0 || offset >= f.Size {
		c.audit.Append(auditlog.Record{
			Time: c.clock.Now(), Allowed: false, UGI: "hadoop",
			IP: c.clientIP(client), Cmd: auditlog.CmdPread, Src: path,
		})
		fail(fmt.Errorf("hdfs: pread offset %.0f out of range for %q (size %.0f)", offset, path, f.Size))
		return
	}
	end := f.Size
	if length > 0 && offset+length < end {
		end = offset + length
	}
	res.Length = end - offset
	// Map the byte range onto the covering blocks: walk the block list
	// accumulating sizes and record how many bytes of each block overlap.
	type span struct {
		id    BlockID
		bytes float64
	}
	var spans []span
	pos := 0.0
	for _, id := range f.Blocks {
		b := c.Block(id)
		if b == nil {
			continue
		}
		lo, hi := pos, pos+b.Size
		pos = hi
		if hi <= offset {
			continue
		}
		if lo >= end {
			break
		}
		from, to := lo, hi
		if offset > from {
			from = offset
		}
		if end < to {
			to = end
		}
		if to > from {
			spans = append(spans, span{id, to - from})
		}
	}
	sp := c.tracer.Begin("hdfs.pread", c.tracer.Current())
	c.tracer.SetAttr(sp, "path", path)
	c.tracer.SetAttrInt(sp, "offset", int64(offset))
	c.tracer.SetAttrInt(sp, "length", int64(res.Length))
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: c.clientIP(client), Cmd: auditlog.CmdPread, Src: path,
	})
	c.metrics.ReadsStarted++
	c.metrics.RangedReads++
	c.activeReads++
	var step func(i int)
	step = func(i int) {
		if i >= len(spans) {
			res.End = c.clock.Now()
			c.activeReads--
			c.metrics.ReadsCompleted++
			c.metrics.BytesRead += res.Bytes
			c.metrics.RangedBytesRead += res.Bytes
			c.tracer.End(sp)
			if done != nil {
				done(res)
			}
			return
		}
		prev := c.tracer.Push(sp)
		c.readBlock(client, spans[i].id, spans[i].bytes, 0, func(bytes float64, loc Locality, err error) {
			if err != nil {
				res.Err = err
				res.End = c.clock.Now()
				c.activeReads--
				c.metrics.ReadsFailed++
				c.tracer.SetAttr(sp, "error", "pread failed")
				c.tracer.End(sp)
				if done != nil {
					done(res)
				}
				return
			}
			res.Bytes += bytes
			switch loc {
			case NodeLocal:
				res.NodeLocal++
			case RackLocal:
				res.RackLocal++
			default:
				res.Remote++
			}
			step(i + 1)
		})
		c.tracer.Pop(prev)
	}
	step(0)
}

// Transfer streams raw bytes from src to dst over the fabric — shuffle
// traffic, log shipping, anything that moves data between cluster nodes
// without touching the block map. A same-node transfer costs one disk
// pass. done may be nil.
func (c *Cluster) Transfer(src, dst topology.NodeID, bytes float64, done func()) {
	if bytes <= 0 {
		if done != nil {
			c.clock.Schedule(0, func() { done() })
		}
		return
	}
	c.fabric.StartFlow(c.topo.ReadPath(src, dst), bytes, 0, func(*netsim.Flow) {
		if done != nil {
			done()
		}
	})
}

const maxReadRetries = 3

// selectReplica picks the serving datanode for a block read: node-local
// first, then rack-local, then remote; within a tier the node with the
// fewest active sessions (then total queue, then smallest ID) wins. Only
// nodes whose process is up and reachable from the client serve; stale
// nodes (missed heartbeats) are avoided — chosen only when no fresh
// replica exists, mirroring HDFS's avoid-stale-datanode read path.
func (c *Cluster) selectReplica(client topology.NodeID, id BlockID, exclude map[DatanodeID]bool) (DatanodeID, Locality, bool) {
	var best DatanodeID = -1
	bestTier := 99 // locality tier + staleness penalty, for ordering
	bestBase := 2  // locality tier alone, for reporting
	bestLoad := 0
	for _, r := range c.replicas[id] {
		d := c.datanodes[r]
		if !d.canServe() || exclude[r] || !c.reachable(topology.NodeID(r), client) {
			continue
		}
		base := 2
		if client >= 0 {
			if topology.NodeID(r) == client {
				base = 0
			} else if c.topo.SameRack(topology.NodeID(r), client) {
				base = 1
			}
		}
		tier := base
		if d.Stale {
			tier += 10
		}
		load := d.sessions + len(d.waiting)
		if best < 0 || tier < bestTier || (tier == bestTier && load < bestLoad) ||
			(tier == bestTier && load == bestLoad && r < best) {
			best, bestTier, bestBase, bestLoad = r, tier, base, load
		}
	}
	if best < 0 {
		return 0, Remote, false
	}
	loc := Remote
	switch bestBase {
	case 0:
		loc = NodeLocal
	case 1:
		loc = RackLocal
	}
	return best, loc, true
}

// readBlock streams a block (or, when 0 < amount < block size, just a slice
// of it) from the best replica to the client. amount <= 0 means the whole
// block. Every call — partial or not — counts one block read: session
// admission, locality accounting, and the BlockReadEvent fan-out are
// per-read, matching how a datanode serves a pread.
func (c *Cluster) readBlock(client topology.NodeID, id BlockID, amount float64, attempt int, done func(float64, Locality, error)) {
	sp := c.tracer.Begin("hdfs.block_read", c.tracer.Current())
	c.tracer.SetAttrInt(sp, "block", int64(id))
	if attempt > 0 {
		c.tracer.SetAttrInt(sp, "attempt", int64(attempt))
	}
	b := c.Block(id)
	if b == nil {
		c.tracer.SetAttr(sp, "error", "no such block")
		c.tracer.End(sp)
		done(0, Remote, fmt.Errorf("hdfs: no such block %d", id))
		return
	}
	src, loc, ok := c.selectReplica(client, id, nil)
	if !ok {
		c.tracer.SetAttr(sp, "error", "no live replica")
		c.tracer.End(sp)
		done(0, Remote, fmt.Errorf("hdfs: block %d of %q has no live replica", id, b.File))
		return
	}
	c.tracer.SetAttrInt(sp, "datanode", int64(src))
	d := c.datanodes[src]
	retry := func() {
		if attempt+1 >= maxReadRetries {
			done(0, loc, fmt.Errorf("hdfs: read of block %d failed after %d attempts", id, attempt+1))
			return
		}
		c.readBlock(client, id, amount, attempt+1, done)
	}
	stream := b.Size
	if amount > 0 && amount < b.Size {
		stream = amount
	}
	c.admit(d, func() {
		// Session granted; stream the block (or the requested slice of it).
		c.metrics.BlockReads++
		if stream < b.Size {
			c.metrics.PartialBlockReads++
		}
		if int(id) < len(c.readCounts) {
			c.readCounts[id]++
		}
		switch loc {
		case NodeLocal:
			c.metrics.NodeLocalReads++
		case RackLocal:
			c.metrics.RackLocalReads++
		default:
			c.metrics.RemoteReads++
		}
		ev := BlockReadEvent{
			Time: c.clock.Now(), Path: b.File, Block: id, Datanode: src, Client: client,
			Bytes: stream,
		}
		for _, fn := range c.onBlockRead {
			fn(ev)
		}
		var path []topology.LinkID
		if client < 0 {
			path = c.topo.ExternalPath(topology.NodeID(src))
		} else {
			path = c.topo.ReadPath(topology.NodeID(src), client)
		}
		prev := c.tracer.Push(sp)
		flow := c.fabric.StartFlow(path, stream, 0, func(f *netsim.Flow) {
			delete(d.activeFlows, f)
			c.release(d)
			// Client-side checksum: a corrupt replica streams fine but
			// fails verification on arrival; the read reports it (namenode
			// quarantines the copy) and retries elsewhere.
			if d.corrupt[id] {
				c.metrics.ChecksumFailures++
				c.reportCorrupt(b, src)
				c.tracer.SetAttr(sp, "error", "checksum")
				c.tracer.End(sp)
				retry()
				return
			}
			c.tracer.End(sp)
			done(stream, loc, nil)
		})
		c.tracer.Pop(prev)
		// Register an abort handler so that if the serving node dies the
		// read retries on another replica (the killer cancels the flow and
		// invokes this).
		d.activeFlows[flow] = &flowHandle{peer: client, abort: func() {
			c.release(d)
			c.tracer.SetAttr(sp, "error", "aborted")
			c.tracer.End(sp)
			retry()
		}}
	}, func() {
		c.tracer.SetAttr(sp, "error", "admission aborted")
		c.tracer.End(sp)
		retry()
	})
}
