package hdfs

import (
	"fmt"
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// TestDeleteDuringRepairDiscardsLandingCopy pins the fix for a crash the
// federation rename storm surfaced: DeleteFile drops a file's blocks while
// a repair copy is still in flight, and the copy's completion must discard
// the landed bytes rather than attach them. Attaching would leave the
// target's block set holding an ID whose block-map entry is nil — the next
// declareDead walk dereferences exactly that entry. The delete is injected
// at several offsets so it lands before the copy command dispatches (the
// default ReplCommandLatency is 1s), mid-transfer (a 128 MB block takes
// ~1s at the 125 MB/s NIC rate, so 1.5s is inside the flow), and after
// the copy already landed.
func TestDeleteDuringRepairDiscardsLandingCopy(t *testing.T) {
	for _, delay := range []time.Duration{0, 500 * time.Millisecond, 1500 * time.Millisecond, 3 * time.Second} {
		t.Run(fmt.Sprint(delay), func(t *testing.T) {
			e := sim.NewEngine()
			c := New(e, Config{Topology: topology.New(topology.Config{})})
			f, err := c.CreateFile("/race/f", 128*mb, 2, -1)
			if err != nil {
				t.Fatal(err)
			}
			bid := f.Blocks[0]
			var target DatanodeID = -1
			for _, d := range c.Datanodes() {
				if !d.HasBlock(bid) {
					target = d.ID
					break
				}
			}
			if target < 0 {
				t.Fatal("no free target for the repair copy")
			}
			fired := false
			var copyErr error
			c.AddReplica(bid, target, func(err error) { fired, copyErr = true, err })
			e.Schedule(delay, func() {
				if derr := c.DeleteFile("/race/f"); derr != nil {
					t.Errorf("delete: %v", derr)
				}
			})
			e.RunUntil(time.Minute)
			if !fired {
				t.Fatal("repair completion callback never fired")
			}
			// Whether the delete beat the copy (copyErr reports the dead
			// block) or the copy landed first and the delete detached it,
			// no node may still hold the ID afterwards.
			for _, d := range c.Datanodes() {
				if d.HasBlock(bid) {
					t.Fatalf("%s still holds block %d of a deleted file (copy err: %v)", d.Name, bid, copyErr)
				}
			}
			// The storm's crash signature: killing nodes walks every block
			// set through declareDead, dereferencing each ID's map entry.
			for _, d := range c.Datanodes() {
				c.Kill(d.ID)
			}
			e.RunUntil(2 * time.Minute)
		})
	}
}
