package hdfs

import (
	"fmt"

	"erms/internal/auditlog"
)

// Write-ahead journal integration. When a Journal is attached, every
// durable namenode mutation — the exact state StateDigest covers — emits
// one typed entry at its mutation chokepoint (registerFile, addBlock,
// attachReplica, ...), never at the API surface, so every internal path
// (unwind, drain, heartbeat death) is journaled for free. ReplayJournal
// applies entries through the same internal mutators with re-emission
// suppressed, which makes replay idempotent where the mutators are
// (attach/detach guard on membership) and strictly validated where they
// are not (file intern IDs and block IDs must arrive in sequence).
//
// The journal deliberately does NOT record what the namenode cannot know:
// silent replica corruption (CorruptReplica), crashed-but-undeclared
// processes, or heartbeat clock bookkeeping. A replayed standby therefore
// matches the live cluster on StateDigest — not on ground-truth corruption
// or on metrics counters, which accumulate only where events actually ran.

// SetJournal attaches a write-ahead journal; every subsequent durable
// mutation appends a typed entry. Attach before the first mutation — the
// journal does not backfill. The cluster adopts the journal's writer epoch
// (see Fenced): a freshly attached journal makes this namenode the
// legitimate writer.
func (c *Cluster) SetJournal(j *auditlog.Journal) {
	c.journal = j
	if j != nil {
		c.epoch = j.Epoch()
	}
}

// Journal returns the attached write-ahead journal, or nil.
func (c *Cluster) Journal() *auditlog.Journal { return c.journal }

// jlog stamps and appends a journal entry, unless no journal is attached
// or the cluster is replaying one (replay must not re-emit).
func (c *Cluster) jlog(e auditlog.Entry) {
	if c.journal == nil || c.replaying {
		return
	}
	// Tripwire, not a gate: mutations are rejected at the API surface when
	// the writer is fenced, so reaching this point fenced means a stale
	// writer interleaved a mutation into the shared journal — the
	// split-brain the epoch invariant oracle asserts never happens.
	if c.Fenced() {
		c.metrics.FencedWritesApplied++
	}
	e.Time = c.clock.Now()
	c.journal.Append(e)
}

// ReplayJournal applies a journal tail to a cluster restored from the
// checkpoint the tail follows. Entries are applied in order through the
// same internal mutators the live cluster used; afterwards every derived
// index is rebuilt. The first entry must match the checkpoint's recorded
// journal position (RestoredJournalSeq) so a tail can never be applied to
// the wrong base state; replay stops with an error on the first entry
// that fails validation.
func (c *Cluster) ReplayJournal(entries []auditlog.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if c.ckptJournalSeq != 0 && entries[0].Seq != c.ckptJournalSeq {
		return fmt.Errorf("hdfs: journal tail starts at seq %d, checkpoint expects %d",
			entries[0].Seq, c.ckptJournalSeq)
	}
	c.replaying = true
	defer func() { c.replaying = false }()
	prev := entries[0].Seq - 1
	for _, e := range entries {
		if e.Seq != prev+1 {
			return fmt.Errorf("hdfs: journal gap: entry %d follows %d", e.Seq, prev)
		}
		prev = e.Seq
		if err := c.applyEntry(e); err != nil {
			return fmt.Errorf("hdfs: replay seq %d (%s): %w", e.Seq, e.Op, err)
		}
	}
	c.ckptJournalSeq = prev + 1

	// Rebuild derived state wholesale: replay applied durable mutations
	// through mutators that maintain indexes incrementally, but node
	// state changes (OpNodeState/OpNodeStale) adjust eligibility without
	// the surrounding live-path bookkeeping, so re-derive everything.
	c.loadIdx = nil
	c.idxMin = 0
	for _, d := range c.datanodes {
		d.inIdx = false
		c.reindexNode(d)
	}
	c.underSet = make(map[BlockID]struct{})
	for _, b := range c.blocks {
		if b != nil {
			c.reassessBlock(b)
		}
	}
	c.pathsCache = nil
	return nil
}

// applyEntry applies one journal entry to namenode state.
func (c *Cluster) applyEntry(e auditlog.Entry) error {
	switch e.Op {
	case auditlog.OpFileAdd:
		if e.File != len(c.fileByID) {
			return fmt.Errorf("intern ID %d, cluster at %d", e.File, len(c.fileByID))
		}
		if _, ok := c.files[e.Path]; ok || e.Path == "" {
			return fmt.Errorf("bad or duplicate path %q", e.Path)
		}
		f := &INode{
			Path:       e.Path,
			Size:       e.Size,
			TargetRepl: e.Target,
			CreatedAt:  e.Time,
		}
		c.registerFile(f)

	case auditlog.OpFileDrop:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		for _, ids := range [][]BlockID{f.Blocks, f.Parity} {
			for _, bid := range ids {
				if c.blocks[bid] != nil {
					return fmt.Errorf("file %q dropped with live block %d", f.Path, bid)
				}
			}
		}
		delete(c.files, f.Path)
		c.fileByID[f.id] = nil
		c.pathsCache = nil

	case auditlog.OpRename:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		if _, ok := c.files[e.Dst]; ok || e.Dst == "" {
			return fmt.Errorf("bad or occupied destination %q", e.Dst)
		}
		delete(c.files, f.Path)
		f.Path = e.Dst
		c.files[e.Dst] = f
		c.pathsCache = nil
		for _, ids := range [][]BlockID{f.Blocks, f.Parity} {
			for _, bid := range ids {
				c.blocks[bid].File = e.Dst
			}
		}

	case auditlog.OpSetTarget:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		if e.Target < 1 {
			return fmt.Errorf("target %d", e.Target)
		}
		f.TargetRepl = e.Target

	case auditlog.OpEncodeGeom:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		if e.K <= 0 || e.M <= 0 {
			return fmt.Errorf("geometry %d+%d", e.K, e.M)
		}
		f.EncodeK, f.EncodeM = e.K, e.M

	case auditlog.OpEncodeDone:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		f.Encoded = true

	case auditlog.OpDecodeStart:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		f.Encoded = false

	case auditlog.OpClearGeom:
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		f.EncodeK, f.EncodeM = 0, 0
		f.Parity = nil

	case auditlog.OpBlockAdd:
		if BlockID(e.Block) != c.nextBlock {
			return fmt.Errorf("block %d minted out of sequence (next %d)", e.Block, c.nextBlock)
		}
		f, err := c.fileEntry(e)
		if err != nil {
			return err
		}
		b := &Block{
			ID: BlockID(e.Block), File: f.Path, Index: e.Index, Size: e.Size,
			Parity: e.Flag, Group: e.Group, fileID: f.id,
		}
		c.addBlock(b)
		if b.Parity {
			f.Parity = append(f.Parity, b.ID)
		} else {
			f.Blocks = append(f.Blocks, b.ID)
		}

	case auditlog.OpBlockDrop:
		bid := BlockID(e.Block)
		if bid < 0 || int(bid) >= len(c.blocks) || c.blocks[bid] == nil {
			return fmt.Errorf("unknown block %d", e.Block)
		}
		b := c.blocks[bid]
		if len(c.replicas[bid]) > 0 {
			return fmt.Errorf("block %d dropped with %d replicas attached", bid, len(c.replicas[bid]))
		}
		// The live paths drop a block's owning slice wholesale (file
		// delete, parity clear) after dropping its blocks; replay removes
		// the ID eagerly so intermediate state stays self-consistent.
		if f := c.fileByID[b.fileID]; f != nil {
			f.Blocks = removeID(f.Blocks, bid)
			f.Parity = removeID(f.Parity, bid)
		}
		c.dropBlock(bid)

	case auditlog.OpReplicaAdd, auditlog.OpReplicaDrop:
		bid := BlockID(e.Block)
		if bid < 0 || int(bid) >= len(c.blocks) || c.blocks[bid] == nil {
			return fmt.Errorf("unknown block %d", e.Block)
		}
		if e.Node < 0 || e.Node >= len(c.datanodes) {
			return fmt.Errorf("unknown node %d", e.Node)
		}
		if e.Op == auditlog.OpReplicaAdd {
			c.attachReplica(c.blocks[bid], DatanodeID(e.Node))
		} else {
			c.detachReplica(c.blocks[bid], DatanodeID(e.Node))
		}

	case auditlog.OpNodeState:
		if e.Node < 0 || e.Node >= len(c.datanodes) {
			return fmt.Errorf("unknown node %d", e.Node)
		}
		s := NodeState(e.State)
		if s < StateActive || s > StateDecommissioned {
			return fmt.Errorf("unknown state %d", e.State)
		}
		d := c.datanodes[e.Node]
		d.State = s
		if s == StateActive {
			// The journal does not carry energy bookkeeping, and the
			// checkpoint's activeSince predates intervals ActiveTime has
			// already absorbed. Re-stamping the activation keeps the
			// uptime invariant (ActiveTime + open interval <= now); the
			// gap between the real transition and replay time is simply
			// not billed as active.
			d.activeSince = c.clock.Now()
			d.lastHeartbeat = c.clock.Now()
		}
		if s == StateDown {
			// Mirrors declareDead: staleness ends at death. The crashed
			// flag is ground truth the journal does not carry; it stays
			// whatever the checkpoint said until a fresh restart.
			d.Stale = false
		}
		if e.Flag { // fresh restart: wipe the previous incarnation
			d.Stale = false
			d.crashed = false
			d.blocks = blockSet{}
			d.corrupt = make(map[BlockID]bool)
			d.reported = make(map[BlockID]bool)
			d.Used = 0
		}

	case auditlog.OpNodeStale:
		if e.Node < 0 || e.Node >= len(c.datanodes) {
			return fmt.Errorf("unknown node %d", e.Node)
		}
		c.datanodes[e.Node].Stale = e.Flag

	case auditlog.OpReported:
		bid := BlockID(e.Block)
		if bid < 0 || int(bid) >= len(c.blocks) || c.blocks[bid] == nil {
			return fmt.Errorf("unknown block %d", e.Block)
		}
		if e.Node < 0 || e.Node >= len(c.datanodes) {
			return fmt.Errorf("unknown node %d", e.Node)
		}
		d := c.datanodes[e.Node]
		if !d.blocks.Has(bid) {
			return fmt.Errorf("node %d reported block %d it does not hold", e.Node, bid)
		}
		d.reported[bid] = true

	case auditlog.OpFedMoveIntent, auditlog.OpFedMoveCommit, auditlog.OpFedMoveTombstone:
		// Protocol markers: no namespace mutation, but the pending-move
		// table is durable protocol state a promoted standby resolves from.
		if e.Path == "" || e.Dst == "" {
			return fmt.Errorf("marker %s without src/dst", e.Op)
		}
		c.applyMoveMarker(e)

	default:
		return fmt.Errorf("unknown op %d", e.Op)
	}
	return nil
}

// fileEntry resolves an entry's file intern ID to a live INode.
func (c *Cluster) fileEntry(e auditlog.Entry) (*INode, error) {
	if e.File < 0 || e.File >= len(c.fileByID) || c.fileByID[e.File] == nil {
		return nil, fmt.Errorf("unknown file intern ID %d", e.File)
	}
	return c.fileByID[e.File], nil
}

func removeID(ids []BlockID, bid BlockID) []BlockID {
	for i, v := range ids {
		if v == bid {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
