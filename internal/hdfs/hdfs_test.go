package hdfs

import (
	"strings"
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

const (
	mb = float64(topology.MB)
	gb = float64(topology.GB)
)

func newCluster(t *testing.T, standby ...DatanodeID) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{}) // 18 nodes, 3 racks
	c := New(e, Config{
		Topology:         topo,
		StandbyNodes:     standby,
		KeepAuditRecords: true,
	})
	return e, c
}

func TestCreateFileSplitsBlocks(t *testing.T) {
	_, c := newCluster(t)
	f, err := c.CreateFile("/data/a", 200*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 { // 64+64+64+8
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	last := c.Block(f.Blocks[3])
	if last.Size != 8*mb {
		t.Fatalf("last block size = %v MB", last.Size/mb)
	}
	if c.Files() != 1 || c.File("/data/a") == nil {
		t.Fatal("file not registered")
	}
	if got := c.TotalUsed(); got != 3*200*mb {
		t.Fatalf("TotalUsed = %v MB, want 600", got/mb)
	}
}

func TestCreateFileValidation(t *testing.T) {
	_, c := newCluster(t)
	if _, err := c.CreateFile("/a", 0, 3, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := c.CreateFile("/a", mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("/a", mb, 3, 0); err == nil {
		t.Fatal("duplicate path accepted")
	}
}

func TestDefaultPlacementRackAware(t *testing.T) {
	_, c := newCluster(t)
	f, err := c.CreateFile("/data/a", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	reps := c.Replicas(f.Blocks[0])
	if len(reps) != 3 {
		t.Fatalf("replicas = %v", reps)
	}
	if reps[0] != 0 {
		t.Fatalf("first replica should be writer-local, got %v", reps)
	}
	topo := c.Topology()
	r0 := topo.Rack(topology.NodeID(reps[0]))
	r1 := topo.Rack(topology.NodeID(reps[1]))
	r2 := topo.Rack(topology.NodeID(reps[2]))
	if r1 == r0 {
		t.Fatalf("second replica in writer's rack: racks %d %d %d", r0, r1, r2)
	}
	if r2 != r1 {
		t.Fatalf("third replica should share the second's rack: racks %d %d %d", r0, r1, r2)
	}
	if reps[1] == reps[2] {
		t.Fatal("second and third replica on the same node")
	}
	// Exactly two racks used — the paper's default policy.
	racks := map[int]bool{r0: true, r1: true, r2: true}
	if len(racks) != 2 {
		t.Fatalf("replicas span %d racks, want 2", len(racks))
	}
}

func TestPlacementAvoidsStandbyAndFullNodes(t *testing.T) {
	_, c := newCluster(t, 10, 11, 12, 13, 14, 15, 16, 17)
	f, err := c.CreateFile("/a", 64*mb, 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Replicas(f.Blocks[0]) {
		if c.Datanode(r).State != StateActive {
			t.Fatalf("replica placed on non-active node %d", r)
		}
	}
}

func TestLocalReadIsDiskSpeed(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 160*mb, 3, 0)
	var res *ReadResult
	c.ReadFile(0, "/a", func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	// 160 MB at 80 MB/s disk = 2 s; all blocks node-local (writer-local
	// first replica).
	if res.NodeLocal != len(c.File("/a").Blocks) {
		t.Fatalf("node-local = %d", res.NodeLocal)
	}
	if d := res.Duration(); (d - 2*time.Second).Abs() > 50*time.Millisecond {
		t.Fatalf("duration = %v, want ~2s", d)
	}
	if tp := res.ThroughputMBps(); tp < 75 || tp > 85 {
		t.Fatalf("throughput = %.1f MB/s", tp)
	}
}

func TestRemoteReadLocalityCounters(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 1, 0) // single replica on node 0 (rack 0)
	var res *ReadResult
	// Client on a node in another rack.
	var remoteClient topology.NodeID
	for _, n := range c.Topology().Nodes {
		if n.Rack != 0 {
			remoteClient = n.ID
			break
		}
	}
	c.ReadFile(remoteClient, "/a", func(r *ReadResult) { res = r })
	e.Run()
	if res.Remote != 1 || res.NodeLocal != 0 || res.RackLocal != 0 {
		t.Fatalf("locality = %+v", res)
	}
	m := c.Metrics()
	if m.RemoteReads != 1 || m.BlockReads != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestReadMissingFile(t *testing.T) {
	e, c := newCluster(t)
	var res *ReadResult
	c.ReadFile(0, "/nope", func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err == nil {
		t.Fatal("missing file read should error")
	}
	// Audit shows a denied open.
	found := false
	for _, r := range c.Audit().Records() {
		if r.Src == "/nope" && !r.Allowed {
			found = true
		}
	}
	if !found {
		t.Fatal("denied audit record missing")
	}
}

func TestConcurrentReadersShareReplicas(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/hot", 64*mb, 3, 0)
	// 6 readers, all in rack 2 where no replica lives: every replica is
	// remote, so selection is purely load-balanced — two readers per
	// serving disk.
	var results []*ReadResult
	clients := []topology.NodeID{12, 13, 14, 15, 16, 17}
	for _, cl := range clients {
		c.ReadFile(cl, "/hot", func(r *ReadResult) { results = append(results, r) })
	}
	e.Run()
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		// 2 readers per 80 MB/s disk -> 40 MB/s each -> 1.6 s for 64 MB.
		if d := r.Duration(); (d - 1600*time.Millisecond).Abs() > 100*time.Millisecond {
			t.Fatalf("duration = %v, want ~1.6s", d)
		}
	}
}

func TestSessionLimitQueues(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo, MaxSessionsPerNode: 1})
	c.CreateFile("/a", 64*mb, 1, 0)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		c.ReadFile(topology.NodeID(i+1), "/a", func(r *ReadResult) {
			done = append(done, r.End)
		})
	}
	dn := c.Datanode(0)
	if dn.Sessions() != 1 || dn.QueueLen() != 2 {
		t.Fatalf("sessions=%d queue=%d", dn.Sessions(), dn.QueueLen())
	}
	e.Run()
	// Serialized at 80 MB/s: 0.8, 1.6, 2.4 s.
	want := []time.Duration{800 * time.Millisecond, 1600 * time.Millisecond, 2400 * time.Millisecond}
	for i := range want {
		if (done[i] - want[i]).Abs() > 50*time.Millisecond {
			t.Fatalf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
}

func TestSetReplicationGrowAndShrink(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 128*mb, 2, 0)
	var err error
	doneAt := time.Duration(0)
	c.SetReplication("/a", 5, WholeAtOnce, func(e2 error) { err = e2; doneAt = e.Now() })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if doneAt == 0 {
		t.Fatal("done never fired")
	}
	if got := c.ReplicationOf("/a"); got != 5 {
		t.Fatalf("replication = %d, want 5", got)
	}
	if c.Metrics().ReplicasAdded != 6 { // 2 blocks x 3 new replicas
		t.Fatalf("ReplicasAdded = %d", c.Metrics().ReplicasAdded)
	}
	c.SetReplication("/a", 2, WholeAtOnce, func(e2 error) { err = e2 })
	e.Run()
	if err != nil || c.ReplicationOf("/a") != 2 {
		t.Fatalf("shrink: err=%v repl=%d", err, c.ReplicationOf("/a"))
	}
	if c.Metrics().ReplicasRemoved != 6 {
		t.Fatalf("ReplicasRemoved = %d", c.Metrics().ReplicasRemoved)
	}
}

func TestWholeAtOnceFasterThanOneByOne(t *testing.T) {
	run := func(mode ReplicationMode) time.Duration {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		c := New(e, Config{Topology: topo})
		c.CreateFile("/a", 512*mb, 3, 0)
		var doneAt time.Duration
		c.SetReplication("/a", 6, mode, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			doneAt = e.Now()
		})
		e.Run()
		return doneAt
	}
	whole := run(WholeAtOnce)
	oneByOne := run(OneByOne)
	if whole >= oneByOne {
		t.Fatalf("whole=%v should beat one-by-one=%v", whole, oneByOne)
	}
}

func TestRemoveLastReplicaRefused(t *testing.T) {
	_, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 1, 0)
	bid := f.Blocks[0]
	if err := c.RemoveReplica(bid, c.Replicas(bid)[0]); err == nil {
		t.Fatal("removed last replica")
	}
}

func TestKillRetriesInFlightReads(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 3, 0)
	var res *ReadResult
	c.ReadFile(0, "/a", func(r *ReadResult) { res = r })
	// Kill the serving node (node 0, the local replica) mid-read.
	e.Schedule(200*time.Millisecond, func() { c.Kill(0) })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("read should survive node death via retry: %+v", res)
	}
	if res.NodeLocal != 0 {
		t.Fatal("retried read cannot be node-local (node is dead)")
	}
}

func TestKillAllReplicasFailsRead(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 1, 0)
	c.Kill(c.Replicas(f.Blocks[0])[0])
	var res *ReadResult
	c.ReadFile(5, "/a", func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err == nil {
		t.Fatal("read of lost block should fail")
	}
	if c.Metrics().ReadsFailed != 1 {
		t.Fatalf("ReadsFailed = %d", c.Metrics().ReadsFailed)
	}
}

func TestReplicationMonitorHeals(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 3, 0)
	stop := c.StartReplicationMonitor(5 * time.Second)
	defer stop()
	victim := c.Replicas(f.Blocks[0])[0]
	c.Kill(victim)
	if len(c.UnderReplicated()) != 1 {
		t.Fatalf("under-replicated = %v", c.UnderReplicated())
	}
	e.RunUntil(30 * time.Second)
	if got := len(c.Replicas(f.Blocks[0])); got != 3 {
		t.Fatalf("replicas after heal = %d, want 3", got)
	}
	if len(c.UnderReplicated()) != 0 {
		t.Fatal("still under-replicated after monitor ran")
	}
}

func TestStandbyDoesNotServeReads(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 2, 0)
	// Move one replica's node to standby; reads must come from the other.
	reps := c.Replicas(f.Blocks[0])
	second := reps[1]
	c.Datanode(second).State = StateStandby // direct for test setup
	var res *ReadResult
	c.ReadFile(topology.NodeID(second), "/a", func(r *ReadResult) { res = r })
	e.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.NodeLocal != 0 {
		t.Fatal("standby node served a read")
	}
}

func TestCommissionAndEnergyAccounting(t *testing.T) {
	e, c := newCluster(t, 17)
	d := c.Datanode(17)
	if d.State != StateStandby {
		t.Fatal("node 17 should start standby")
	}
	e.Schedule(10*time.Second, func() { c.Commission(17) })
	e.Schedule(25*time.Second, func() { c.ToStandby(17) })
	e.Schedule(30*time.Second, func() {})
	e.Run()
	if d.ActiveTime != 15*time.Second {
		t.Fatalf("ActiveTime = %v, want 15s", d.ActiveTime)
	}
	if d.State != StateStandby {
		t.Fatalf("state = %v", d.State)
	}
	// Commission of a non-standby node is a no-op.
	c.Commission(17)
	c.Commission(0)
}

func TestDeleteFileFreesSpace(t *testing.T) {
	_, c := newCluster(t)
	c.CreateFile("/a", 128*mb, 3, 0)
	if err := c.DeleteFile("/a"); err != nil {
		t.Fatal(err)
	}
	if c.TotalUsed() != 0 {
		t.Fatalf("TotalUsed = %v after delete", c.TotalUsed())
	}
	if err := c.DeleteFile("/a"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestEncodeFileReducesStorage(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/cold", 640*mb, 3, 0) // 10 blocks
	before := c.TotalUsed()
	var err error
	c.EncodeFile("/cold", 10, 4, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := c.File("/cold")
	if !f.Encoded || len(f.Parity) != 4 {
		t.Fatalf("encoded=%v parity=%d", f.Encoded, len(f.Parity))
	}
	after := c.TotalUsed()
	// 3x640 MB = 1920 before; after: 640 + 4*64 = 896.
	if after >= before {
		t.Fatalf("storage did not shrink: %v -> %v MB", before/mb, after/mb)
	}
	want := 640*mb + 4*64*mb
	if after != want {
		t.Fatalf("after = %v MB, want %v", after/mb, want/mb)
	}
	for _, bid := range f.Blocks {
		if len(c.Replicas(bid)) != 1 {
			t.Fatalf("data block %d has %d replicas, want 1", bid, len(c.Replicas(bid)))
		}
	}
	if c.Metrics().FilesEncoded != 1 {
		t.Fatal("FilesEncoded counter")
	}
}

func TestEncodeValidation(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 3, 0)
	var errs []error
	c.EncodeFile("/nope", 10, 4, func(err error) { errs = append(errs, err) })
	c.EncodeFile("/a", 0, 4, func(err error) { errs = append(errs, err) })
	e.Run()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	var err1, err2 error
	c.EncodeFile("/a", 10, 4, func(err error) { err1 = err })
	e.Run()
	c.EncodeFile("/a", 10, 4, func(err error) { err2 = err })
	e.Run()
	if err1 != nil {
		t.Fatal(err1)
	}
	if err2 == nil {
		t.Fatal("double encode accepted")
	}
}

func TestReconstructLostBlock(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/cold", 320*mb, 3, 0) // 5 blocks
	var err error
	c.EncodeFile("/cold", 5, 2, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the single replica of block 0.
	bid := f.Blocks[0]
	c.Kill(c.Replicas(bid)[0])
	if len(c.Replicas(bid)) != 0 {
		t.Fatal("replica should be lost")
	}
	c.ReconstructBlock(bid, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Replicas(bid)) != 1 {
		t.Fatalf("block not rebuilt: %v", c.Replicas(bid))
	}
	if c.Metrics().BlocksRebuilt != 1 {
		t.Fatal("BlocksRebuilt counter")
	}
}

func TestReconstructNeedsKSurvivors(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/cold", 192*mb, 3, 0) // 3 blocks
	var err error
	c.EncodeFile("/cold", 3, 1, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Lose two stripe members: only 2 of 4 remain, k=3 -> unrecoverable.
	c.Kill(c.Replicas(f.Blocks[0])[0])
	var gone []DatanodeID
	for _, bid := range f.Blocks[1:] {
		if reps := c.Replicas(bid); len(reps) > 0 {
			gone = append(gone, reps[0])
		}
	}
	if len(gone) > 0 {
		c.Kill(gone[0])
	}
	c.ReconstructBlock(f.Blocks[0], func(e2 error) { err = e2 })
	e.Run()
	if err == nil && len(c.Replicas(f.Blocks[1]))+len(c.Replicas(f.Blocks[0])) < 2 {
		t.Fatal("reconstruction should fail with too few survivors")
	}
}

func TestDecodeFileRestoresReplication(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/cold", 320*mb, 3, 0)
	var err error
	c.EncodeFile("/cold", 5, 2, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.DecodeFile("/cold", 3, func(e2 error) { err = e2 })
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := c.File("/cold")
	if f.Encoded || len(f.Parity) != 0 {
		t.Fatalf("decode left state: encoded=%v parity=%d", f.Encoded, len(f.Parity))
	}
	if got := c.ReplicationOf("/cold"); got != 3 {
		t.Fatalf("replication = %d", got)
	}
}

func TestAuditTrail(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 3, 0)
	c.ReadFile(1, "/a", nil)
	c.SetReplication("/a", 4, WholeAtOnce, nil)
	e.Run()
	c.DeleteFile("/a")
	var cmds []string
	for _, r := range c.Audit().Records() {
		cmds = append(cmds, string(r.Cmd))
	}
	want := "create open setReplication delete"
	if strings.Join(cmds, " ") != want {
		t.Fatalf("audit = %v, want %q", cmds, want)
	}
}

func TestOnBlockReadEvents(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 128*mb, 3, 0)
	var events []BlockReadEvent
	c.OnBlockRead(func(ev BlockReadEvent) { events = append(events, ev) })
	c.ReadFile(2, "/a", nil)
	e.Run()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 (one per block)", len(events))
	}
	if events[0].Path != "/a" || events[0].Client != 2 {
		t.Fatalf("event = %+v", events[0])
	}
}

func TestRestartBringsNodeBackEmpty(t *testing.T) {
	_, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 3, 0)
	victim := c.Replicas(f.Blocks[0])[0]
	c.Kill(victim)
	c.Restart(victim)
	d := c.Datanode(victim)
	if d.State != StateActive || d.NumBlocks() != 0 || d.Used != 0 {
		t.Fatalf("restarted node state: %+v", d)
	}
}

func TestNodeStateStrings(t *testing.T) {
	for s, want := range map[NodeState]string{
		StateActive: "active", StateStandby: "standby", StateDown: "down",
		NodeState(9): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %q", s, s.String())
		}
	}
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" ||
		Remote.String() != "remote" {
		t.Fatal("locality strings")
	}
	if WholeAtOnce.String() != "whole" || OneByOne.String() != "one-by-one" {
		t.Fatal("mode strings")
	}
}

// Invariant: after arbitrary grow/shrink sequences, every block's replica
// list is consistent with datanode block sets and usage accounting.
func TestReplicaInvariants(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 256*mb, 2, 0)
	seq := []int{5, 1, 3, 2, 6, 1}
	var step func(i int)
	step = func(i int) {
		if i >= len(seq) {
			return
		}
		c.SetReplication("/a", seq[i], WholeAtOnce, func(err error) {
			if err != nil {
				t.Errorf("step %d: %v", i, err)
			}
			step(i + 1)
		})
	}
	step(0)
	e.Run()
	checkConsistency(t, c)
	if got := c.ReplicationOf("/a"); got != 1 {
		t.Fatalf("final replication = %d", got)
	}
}

func checkConsistency(t *testing.T, c *Cluster) {
	t.Helper()
	for _, msg := range c.ConsistencyErrors() {
		t.Errorf("consistency: %s", msg)
	}
	// Every replica entry matches the datanode's block set and no
	// duplicates exist.
	for i, reps := range c.replicas {
		bid := BlockID(i)
		seen := map[DatanodeID]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("block %d has duplicate replica on %d", bid, r)
			}
			seen[r] = true
			if !c.Datanode(r).HasBlock(bid) {
				t.Fatalf("block %d replica on %d not in node's set", bid, r)
			}
		}
	}
	for _, d := range c.Datanodes() {
		var used float64
		d.blocks.Each(func(bid BlockID) {
			used += c.Block(bid).Size
			found := false
			for _, r := range c.replicas[bid] {
				if r == d.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d holds unregistered block %d", d.ID, bid)
			}
		})
		if diff := used - d.Used; diff > 1 || diff < -1 {
			t.Fatalf("node %d usage %v != computed %v", d.ID, d.Used, used)
		}
	}
}

func TestRenameMovesNamespaceOnly(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/old", 128*mb, 3, 0)
	f := c.File("/old")
	replicasBefore := append([]DatanodeID(nil), c.Replicas(f.Blocks[0])...)
	if err := c.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if c.File("/old") != nil || c.File("/new") == nil {
		t.Fatal("namespace not updated")
	}
	if c.File("/new").Path != "/new" || c.Block(f.Blocks[0]).File != "/new" {
		t.Fatal("inode/block paths not updated")
	}
	for i, r := range c.Replicas(f.Blocks[0]) {
		if r != replicasBefore[i] {
			t.Fatal("rename moved replicas")
		}
	}
	var res *ReadResult
	c.ReadFile(2, "/new", func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("read after rename: %+v", res)
	}
	// Audit trail carries both paths.
	found := false
	for _, rec := range c.Audit().Records() {
		if rec.Cmd == "rename" && rec.Src == "/old" && rec.Dst == "/new" {
			found = true
		}
	}
	if !found {
		t.Fatal("rename not audited")
	}
}

func TestRenameErrors(t *testing.T) {
	_, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 3, 0)
	c.CreateFile("/b", 64*mb, 3, 0)
	if err := c.Rename("/nope", "/x"); err == nil {
		t.Fatal("renamed a missing file")
	}
	if err := c.Rename("/a", "/b"); err == nil {
		t.Fatal("rename clobbered an existing file")
	}
}
