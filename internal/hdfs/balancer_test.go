package hdfs

import (
	"testing"

	"erms/internal/sim"
	"erms/internal/topology"
)

// skewedCluster builds a small-capacity cluster with all data piled onto
// writer node 0.
func skewedCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{
		Topology:     topo,
		NodeCapacity: 4 * 1024 * mb, // 4 GB nodes so utilization is visible
	})
	// 30 single-replica files of 128 MB, all written by node 0: node 0
	// carries ~3.75 GB (94%), everyone else 0.
	for i := 0; i < 30; i++ {
		if _, err := c.CreateFile("/skew/"+string(rune('a'+i)), 128*mb, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	return e, c
}

func TestBalancerNarrowsSpread(t *testing.T) {
	e, c := skewedCluster(t)
	before := c.UtilizationSpread()
	if before < 0.5 {
		t.Fatalf("setup not skewed: spread = %v", before)
	}
	var rep BalancerReport
	done := false
	c.Balance(0.05, 4, func(r BalancerReport) { rep = r; done = true })
	e.Run()
	if !done {
		t.Fatal("balancer never finished")
	}
	if rep.SpreadBefore != before {
		t.Fatalf("report before = %v, want %v", rep.SpreadBefore, before)
	}
	if rep.SpreadAfter >= rep.SpreadBefore/2 {
		t.Fatalf("spread barely narrowed: %v -> %v", rep.SpreadBefore, rep.SpreadAfter)
	}
	if rep.MovesDone == 0 || rep.BytesMoved == 0 {
		t.Fatalf("no moves recorded: %+v", rep)
	}
	if rep.MovesFailed != 0 {
		t.Fatalf("moves failed: %+v", rep)
	}
	checkConsistency(t, c)
	// Replica counts unchanged: moves relocate, never add or drop.
	for _, p := range c.FilePaths() {
		if got := c.ReplicationOf(p); got != 1 {
			t.Fatalf("%s replication = %d after balancing", p, got)
		}
	}
}

func TestBalancedClusterIsANoop(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo, NodeCapacity: 4 * 1024 * mb})
	// Spread-writer files: already balanced.
	for i := 0; i < 18; i++ {
		if _, err := c.CreateFile("/f"+string(rune('a'+i)), 128*mb, 1,
			topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	var rep BalancerReport
	c.Balance(0.1, 4, func(r BalancerReport) { rep = r })
	e.Run()
	if rep.MovesDone != 0 {
		t.Fatalf("balancer moved %d blocks on a balanced cluster", rep.MovesDone)
	}
}

func TestUtilizationSpreadIgnoresInactiveNodes(t *testing.T) {
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo, NodeCapacity: 1024 * mb,
		StandbyNodes: []DatanodeID{17}})
	c.CreateFile("/f", 512*mb, 1, 0)
	s1 := c.UtilizationSpread()
	c.Kill(16)
	s2 := c.UtilizationSpread()
	if s1 != s2 {
		t.Fatalf("dead/standby nodes should not affect spread: %v vs %v", s1, s2)
	}
	if s1 <= 0 {
		t.Fatal("spread should be positive with node 0 loaded")
	}
}

func TestBalancerRespectsThreshold(t *testing.T) {
	e, c := skewedCluster(t)
	var loose, _ignored BalancerReport
	c.Balance(0.5, 4, func(r BalancerReport) { loose = r })
	e.Run()
	_ = _ignored
	// With a huge threshold nothing is out of band except the extreme
	// writer node; the balancer stops as soon as it re-enters the band,
	// moving far fewer blocks than a tight run would.
	if loose.MovesDone > 15 {
		t.Fatalf("loose threshold moved %d blocks", loose.MovesDone)
	}
	if loose.SpreadAfter > loose.SpreadBefore {
		t.Fatal("balancing made things worse")
	}
}
