package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

func TestDecommissionDrainsAndRetires(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 256*mb, 3, 0)
	c.CreateFile("/b", 128*mb, 3, 0)
	victim := DatanodeID(0) // writer node: holds every first replica
	held := c.Datanode(victim).NumBlocks()
	if held == 0 {
		t.Fatal("setup: victim holds nothing")
	}
	var err error
	done := false
	c.Decommission(victim, func(e2 error) { err = e2; done = true })
	if got := c.Datanode(victim).State; got != StateDecommissioning {
		t.Fatalf("state during drain = %v", got)
	}
	e.Run()
	if !done || err != nil {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	d := c.Datanode(victim)
	if d.State != StateDecommissioned {
		t.Fatalf("state = %v", d.State)
	}
	if d.NumBlocks() != 0 {
		t.Fatalf("node still holds %d blocks", d.NumBlocks())
	}
	// No block lost replication.
	for _, p := range []string{"/a", "/b"} {
		for _, bid := range c.File(p).Blocks {
			if got := len(c.Replicas(bid)); got != 3 {
				t.Fatalf("%s block %d has %d replicas", p, bid, got)
			}
			for _, r := range c.Replicas(bid) {
				if r == victim {
					t.Fatalf("block %d still maps to the retired node", bid)
				}
			}
		}
	}
	checkConsistency(t, c)
}

func TestDecommissioningNodeStillServes(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 1, 0) // only replica on node 0
	var res *ReadResult
	c.Decommission(0, nil)
	// Read while the drain is in flight: the decommissioning node must
	// still serve (it is the only holder).
	c.ReadFile(5, "/a", func(r *ReadResult) { res = r })
	e.RunUntil(30 * time.Second)
	if res == nil || res.Err != nil {
		t.Fatalf("read during drain failed: %+v", res)
	}
	e.Run()
	if c.Datanode(0).State != StateDecommissioned {
		t.Fatal("drain never finished")
	}
}

func TestDecommissionRequiresActive(t *testing.T) {
	e, c := newCluster(t, 17)
	var err error
	c.Decommission(17, func(e2 error) { err = e2 }) // standby node
	e.Run()
	if err == nil {
		t.Fatal("decommissioning a standby node should fail")
	}
}

func TestDecommissionWithNoTargetsReportsError(t *testing.T) {
	// A 3-node cluster with 3x replication: nowhere to drain to.
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: 3})
	c := New(e, Config{Topology: topo})
	c.CreateFile("/a", 64*mb, 3, 0)
	var err error
	done := false
	c.Decommission(0, func(e2 error) { err = e2; done = true })
	e.Run()
	if !done || err == nil {
		t.Fatalf("expected drain error: done=%v err=%v", done, err)
	}
	if c.Datanode(0).State != StateDecommissioning {
		t.Fatal("node should stay decommissioning when the drain stalls")
	}
	// Data is still fully available through the stuck node.
	var res *ReadResult
	c.ReadFile(1, "/a", func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("read failed: %+v", res)
	}
}

func TestDecommissionedNodeGetsNoNewReplicas(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 2, 0)
	var derr error
	c.Decommission(5, func(e2 error) { derr = e2 })
	e.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	var rerr error
	c.SetReplication("/a", 10, WholeAtOnce, func(e2 error) { rerr = e2 })
	e.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, r := range c.Replicas(c.File("/a").Blocks[0]) {
		if r == 5 {
			t.Fatal("retired node received a replica")
		}
	}
}
