package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

func TestClusterAccessors(t *testing.T) {
	e, c := newCluster(t, 16, 17)
	if c.Clock() != sim.Clock(e) || c.Fabric() == nil || c.Topology() == nil {
		t.Fatal("accessors nil")
	}
	if c.NumDatanodes() != 18 {
		t.Fatalf("NumDatanodes = %d", c.NumDatanodes())
	}
	if got := c.Config(); got.DefaultReplication != 3 || got.BlockSize != 64*mb {
		t.Fatalf("Config = %+v", got)
	}
	if len(c.Active()) != 16 || len(c.Standby()) != 2 {
		t.Fatalf("active/standby = %d/%d", len(c.Active()), len(c.Standby()))
	}
	if c.ActiveReads() != 0 {
		t.Fatal("no reads yet")
	}
	p := NewDefaultPolicy()
	c.SetPlacementPolicy(p)
	if c.PlacementPolicy() != p || p.Name() != "default-rack-aware" {
		t.Fatal("placement policy accessors")
	}
	var downs []DatanodeID
	c.OnDatanodeDown(func(id DatanodeID) { downs = append(downs, id) })
	c.Kill(3)
	if len(downs) != 1 || downs[0] != 3 {
		t.Fatalf("down callbacks = %v", downs)
	}
}

func TestActiveReadsGauge(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 128*mb, 3, 0)
	c.ReadFile(1, "/a", nil)
	c.ReadFile(2, "/a", nil)
	if c.ActiveReads() != 2 {
		t.Fatalf("ActiveReads = %d", c.ActiveReads())
	}
	e.Run()
	if c.ActiveReads() != 0 {
		t.Fatal("reads still counted after drain")
	}
}

func TestDatanodeGauges(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 1, 0)
	d := c.Datanode(0)
	if d.PendingAdds() != 0 {
		t.Fatal("pending adds at rest")
	}
	c.AddReplica(c.File("/a").Blocks[0], 5, nil)
	if c.Datanode(5).PendingAdds() != 1 {
		t.Fatalf("PendingAdds = %d during copy", c.Datanode(5).PendingAdds())
	}
	if c.Datanode(5).UncommittedFree() >= c.Datanode(5).Free() {
		t.Fatal("pending bytes not reserved")
	}
	e.Run()
	if c.Datanode(5).PendingAdds() != 0 {
		t.Fatal("pending adds not settled")
	}
	if got := d.OpenActiveInterval(e.Now()); got != e.Now() {
		t.Fatalf("OpenActiveInterval = %v", got)
	}
	c.ToStandby(0)
	if d.OpenActiveInterval(e.Now()) != 0 {
		t.Fatal("standby node has open interval")
	}
}

func TestStartDiskLoadOccupiesDisk(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/a", 64*mb, 1, 0)
	// Two capped streams on node 0's disk slow a local read.
	var plain, loaded time.Duration
	c.ReadFile(0, "/a", func(r *ReadResult) { plain = r.Duration() })
	e.Run()
	stop := c.StartDiskLoad(0, 2, 30*mb)
	if c.Datanode(0).Sessions() != 2 {
		t.Fatalf("sessions = %d with disk load", c.Datanode(0).Sessions())
	}
	c.ReadFile(0, "/a", func(r *ReadResult) { loaded = r.Duration() })
	e.RunFor(time.Minute)
	if loaded <= plain {
		t.Fatalf("disk load had no effect: %v vs %v", loaded, plain)
	}
	stop()
	stop() // idempotent
	if c.Datanode(0).Sessions() != 0 {
		t.Fatalf("sessions = %d after stop", c.Datanode(0).Sessions())
	}
}

func TestTransferMovesBytes(t *testing.T) {
	e, c := newCluster(t)
	doneAt := time.Duration(0)
	c.Transfer(0, 9, 80*mb, func() { doneAt = e.Now() })
	called := false
	c.Transfer(3, 3, 0, func() { called = true }) // zero bytes: immediate
	e.Run()
	if doneAt <= 0 {
		t.Fatal("transfer never completed")
	}
	if !called {
		t.Fatal("zero-byte transfer callback missing")
	}
	// 80 MB cross nodes: bounded below by a disk pass (1 s).
	if doneAt < time.Second-10*time.Millisecond {
		t.Fatalf("transfer finished impossibly fast: %v", doneAt)
	}
}

func TestReadBlockDirect(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 3, 0)
	var gotBytes float64
	var gotLoc Locality
	c.ReadBlock(0, f.Blocks[0], func(b float64, loc Locality, err error) {
		if err != nil {
			t.Error(err)
		}
		gotBytes, gotLoc = b, loc
	})
	e.Run()
	if gotBytes != 64*mb || gotLoc != NodeLocal {
		t.Fatalf("bytes=%v loc=%v", gotBytes, gotLoc)
	}
	var badErr error
	c.ReadBlock(0, BlockID(9999), func(_ float64, _ Locality, err error) { badErr = err })
	e.Run()
	if badErr == nil {
		t.Fatal("missing block accepted")
	}
}

func TestAddReplicaErrorPaths(t *testing.T) {
	e, c := newCluster(t)
	f, _ := c.CreateFile("/a", 64*mb, 2, 0)
	bid := f.Blocks[0]
	errs := map[string]error{}
	collect := func(name string) func(error) {
		return func(err error) { errs[name] = err }
	}
	c.AddReplica(BlockID(777), 5, collect("missing block"))
	holder := c.Replicas(bid)[0]
	c.AddReplica(bid, holder, collect("already holds"))
	c.Kill(9)
	c.AddReplica(bid, 9, collect("dead target"))
	e.Run()
	for name, err := range errs {
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Lost-source error: kill all replicas then try to copy.
	for _, r := range append([]DatanodeID(nil), c.Replicas(bid)...) {
		c.Kill(r)
	}
	var srcErr error
	c.AddReplica(bid, 10, func(err error) { srcErr = err })
	e.Run()
	if srcErr == nil {
		t.Fatal("copy without live source accepted")
	}
}

func TestReconstructErrorPaths(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/plain", 64*mb, 3, 0)
	errs := map[string]error{}
	c.ReconstructBlock(BlockID(555), func(err error) { errs["missing"] = err })
	c.ReconstructBlock(c.File("/plain").Blocks[0], func(err error) { errs["unencoded"] = err })
	e.Run()
	for name, err := range errs {
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Reconstructing a block that is not lost is a no-op success.
	c.CreateFile("/cold", 320*mb, 3, 0)
	var encErr error
	c.EncodeFile("/cold", 5, 2, func(err error) { encErr = err })
	e.Run()
	if encErr != nil {
		t.Fatal(encErr)
	}
	var ok error = fmt_errorSentinel
	c.ReconstructBlock(c.File("/cold").Blocks[0], func(err error) { ok = err })
	e.Run()
	if ok != nil {
		t.Fatalf("healthy block reconstruct: %v", ok)
	}
}

var fmt_errorSentinel = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "callback never ran" }

func TestWriterHintOutOfRange(t *testing.T) {
	_, c := newCluster(t)
	if _, err := c.CreateFile("/a", 64*mb, 3, topology.NodeID(999)); err != nil {
		t.Fatal(err) // out-of-range hint degrades to no hint
	}
}
