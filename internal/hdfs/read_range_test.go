package hdfs

import (
	"testing"

	"erms/internal/auditlog"
	"erms/internal/topology"
)

// TestReadRangeBlockMapping: a ranged read touches exactly the blocks that
// overlap the range, streams only the overlapping bytes, and delivers the
// clamped range length.
func TestReadRangeBlockMapping(t *testing.T) {
	e, c := newCluster(t)
	f, err := c.CreateFile("/data/a", 200*mb, 3, 0) // blocks 64+64+64+8
	if err != nil {
		t.Fatal(err)
	}
	var events []BlockReadEvent
	c.OnBlockRead(func(ev BlockReadEvent) { events = append(events, ev) })
	var res *ReadResult
	// [32 MB, 96 MB): the back half of block 0 and the front half of block 1.
	c.ReadRange(1, "/data/a", 32*mb, 64*mb, func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("read did not complete cleanly: %+v", res)
	}
	if res.Bytes != 64*mb {
		t.Fatalf("bytes = %v MB, want 64", res.Bytes/mb)
	}
	if len(events) != 2 {
		t.Fatalf("block reads = %d, want 2", len(events))
	}
	if events[0].Block != f.Blocks[0] || events[1].Block != f.Blocks[1] {
		t.Fatalf("wrong blocks read: %+v", events)
	}
	if events[0].Bytes != 32*mb || events[1].Bytes != 32*mb {
		t.Fatalf("partial byte counts wrong: %v, %v", events[0].Bytes/mb, events[1].Bytes/mb)
	}
	m := c.Metrics()
	if m.RangedReads != 1 || m.PartialBlockReads != 2 {
		t.Fatalf("ranged=%d partial=%d, want 1/2", m.RangedReads, m.PartialBlockReads)
	}
	if m.RangedBytesRead != 64*mb {
		t.Fatalf("RangedBytesRead = %v MB, want 64", m.RangedBytesRead/mb)
	}
	if m.ReadsStarted != 1 || m.ReadsCompleted != 1 {
		t.Fatalf("reads started/completed = %d/%d, want 1/1", m.ReadsStarted, m.ReadsCompleted)
	}
	if got := m.NodeLocalReads + m.RackLocalReads + m.RemoteReads; got != m.BlockReads {
		t.Fatalf("locality counters (%d) != BlockReads (%d)", got, m.BlockReads)
	}
}

// TestReadRangeClamping: length past EOF clamps, length <= 0 means to-end,
// a whole-block span is not a partial read, and bad offsets fail.
func TestReadRangeClamping(t *testing.T) {
	e, c := newCluster(t)
	if _, err := c.CreateFile("/data/a", 200*mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	var res *ReadResult
	c.ReadRange(1, "/data/a", 192*mb, 64*mb, func(r *ReadResult) { res = r })
	e.Run()
	if res.Err != nil || res.Bytes != 8*mb {
		t.Fatalf("clamped read: bytes=%v MB err=%v, want 8/nil", res.Bytes/mb, res.Err)
	}
	if res.Length != 8*mb {
		t.Fatalf("clamped Length = %v MB, want 8", res.Length/mb)
	}

	res = nil
	c.ReadRange(1, "/data/a", 64*mb, 0, func(r *ReadResult) { res = r })
	e.Run()
	if res.Err != nil || res.Bytes != 136*mb {
		t.Fatalf("to-end read: bytes=%v MB err=%v, want 136/nil", res.Bytes/mb, res.Err)
	}

	// A range exactly covering block 1 streams it whole: no partial count.
	before := c.Metrics().PartialBlockReads
	res = nil
	c.ReadRange(1, "/data/a", 64*mb, 64*mb, func(r *ReadResult) { res = r })
	e.Run()
	if res.Err != nil || res.Bytes != 64*mb {
		t.Fatalf("aligned read: %+v", res)
	}
	if got := c.Metrics().PartialBlockReads; got != before {
		t.Fatalf("aligned whole-block span counted as partial: %d -> %d", before, got)
	}

	res = nil
	c.ReadRange(1, "/data/a", 200*mb, mb, func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err == nil {
		t.Fatal("offset at EOF should fail")
	}
	res = nil
	c.ReadRange(1, "/nope", 0, mb, func(r *ReadResult) { res = r })
	e.Run()
	if res == nil || res.Err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestReadRangeAuditsPread: ranged reads log cmd=pread, never cmd=open —
// the property that keeps formula (1) blind to them.
func TestReadRangeAuditsPread(t *testing.T) {
	e, c := newCluster(t)
	if _, err := c.CreateFile("/data/a", 200*mb, 3, 0); err != nil {
		t.Fatal(err)
	}
	base := len(c.Audit().Records())
	c.ReadRange(1, "/data/a", 0, 16*mb, nil)
	c.ReadRange(ExternalClient, "/nope", 0, mb, nil)
	e.Run()
	recs := c.Audit().Records()[base:]
	if len(recs) != 2 {
		t.Fatalf("audit records = %d, want 2", len(recs))
	}
	if recs[0].Cmd != auditlog.CmdPread || !recs[0].Allowed || recs[0].Src != "/data/a" {
		t.Fatalf("good pread audited wrong: %+v", recs[0])
	}
	if recs[1].Cmd != auditlog.CmdPread || recs[1].Allowed {
		t.Fatalf("failed pread audited wrong: %+v", recs[1])
	}
	for _, r := range recs {
		if r.Cmd == auditlog.CmdOpen {
			t.Fatal("ranged read must not audit as open")
		}
	}
}

// TestReadRangePerBlockCounts: the per-block read tally counts every block
// read — whole-file and ranged alike — and survives file deletion cleanly.
func TestReadRangePerBlockCounts(t *testing.T) {
	e, c := newCluster(t)
	f, err := c.CreateFile("/data/a", 200*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.ReadRange(1, "/data/a", 0, 16*mb, nil)
	c.ReadRange(2, "/data/a", 0, 16*mb, nil)
	c.ReadFile(3, "/data/a", nil)
	e.Run()
	if got := c.BlockReadCount(f.Blocks[0]); got != 3 {
		t.Fatalf("block 0 reads = %d, want 3 (2 preads + 1 full)", got)
	}
	if got := c.BlockReadCount(f.Blocks[3]); got != 1 {
		t.Fatalf("block 3 reads = %d, want 1 (full read only)", got)
	}
	if got := c.FileBlockReads("/data/a"); got != 6 {
		t.Fatalf("file block reads = %d, want 6", got)
	}
	if err := c.DeleteFile("/data/a"); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := c.BlockReadCount(f.Blocks[0]); got != 0 {
		t.Fatalf("deleted block still has read count %d", got)
	}
}

// TestReadRangeFailover: a ranged read whose serving replica dies mid-flow
// retries on another replica and still completes with the right bytes.
func TestReadRangeFailover(t *testing.T) {
	e, c := newCluster(t)
	f, err := c.CreateFile("/data/a", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	reps := c.Replicas(f.Blocks[0])
	var res *ReadResult
	// Client far from the writer so the chosen replica is predictable
	// enough; kill whichever node serves first.
	var served DatanodeID = -1
	c.OnBlockRead(func(ev BlockReadEvent) {
		if served < 0 {
			served = ev.Datanode
		}
	})
	c.ReadRange(topology.NodeID(reps[0]), "/data/a", 16*mb, 16*mb, func(r *ReadResult) { res = r })
	e.RunUntil(e.Now() + 1)
	if served < 0 {
		t.Fatal("no block read started")
	}
	c.Kill(served)
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("ranged read did not survive replica death: %+v", res)
	}
	if res.Bytes != 16*mb {
		t.Fatalf("bytes = %v MB, want 16", res.Bytes/mb)
	}
}
