package hdfs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/sim"
	"erms/internal/topology"
)

func ckptConfig() Config {
	return Config{
		Topology:     topology.New(topology.Config{}), // 18 nodes, 3 racks
		StandbyNodes: []DatanodeID{16, 17},
		Heartbeat: HeartbeatConfig{
			Enabled:      true,
			Interval:     3 * time.Second,
			StaleTimeout: 30 * time.Second,
			DeadTimeout:  2 * time.Minute,
		},
	}
}

// busyCluster drives a cluster through every durable-state feature the
// checkpoint serializes: plain and encoded files, renames, deletes,
// replication changes, node lifecycle transitions (kill/dead/restart,
// standby/commission, decommission), corruption reports, a rack
// partition, and a file still mid-write at the end.
func busyCluster(t *testing.T, withJournal bool) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, ckptConfig())
	if withJournal {
		c.SetJournal(auditlog.NewJournal())
	}

	mustCreate := func(path string, size float64, repl int) {
		t.Helper()
		if _, err := c.CreateFile(path, size, repl, -1); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
	}
	mustCreate("/data/a", 200*mb, 3)
	mustCreate("/data/b", 64*mb, 1)
	mustCreate("/data/c", 320*mb, 2)
	mustCreate("/data/d", 128*mb, 3)
	e.RunUntil(10 * time.Second)

	c.SetReplication("/data/a", 4, WholeAtOnce, nil)
	if err := c.Rename("/data/d", "/data/d2"); err != nil {
		t.Fatal(err)
	}
	c.ReadFile(2, "/data/a", nil)
	e.RunUntil(20 * time.Second)

	c.EncodeFile("/data/c", 2, 1, func(err error) {
		if err != nil {
			t.Errorf("encode: %v", err)
		}
	})
	e.RunUntil(40 * time.Second)

	// Crash a node and let the heartbeat detector walk it through stale
	// and dead; re-replication repairs the lost copies.
	c.Kill(4)
	e.RunUntil(40*time.Second + 2*time.Minute + 10*time.Second)
	c.Restart(4)

	// Corrupt the single replica of a fresh single-copy file; the failed
	// read flags it reported (last copy is kept, not quarantined).
	mustCreate("/data/r1", 64*mb, 1)
	b := c.File("/data/r1").Blocks[0]
	if len(c.Replicas(b)) != 1 {
		t.Fatalf("replicas of /data/r1 = %v", c.Replicas(b))
	}
	if err := c.CorruptReplica(b, c.Replicas(b)[0]); err != nil {
		t.Fatal(err)
	}
	c.ReadFile(1, "/data/r1", nil)
	e.RunUntil(3 * time.Minute)

	c.Commission(16)
	c.ToStandby(2)
	c.Decommission(7, nil)
	if err := c.DeleteFile("/data/d2"); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(4 * time.Minute)

	c.PartitionRack(2)
	// Leave a write in flight so the checkpoint carries a partial file.
	c.WriteFile(3, "/data/w", 256*mb, 3, nil)
	e.RunUntil(4*time.Minute + 2*time.Second)
	return e, c
}

func restoreFrom(t *testing.T, data []byte) (*sim.Engine, *Cluster, error) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, ckptConfig())
	err := c.RestoreCheckpoint(bytes.NewReader(data))
	return e, c, err
}

func TestCheckpointRoundTrip(t *testing.T) {
	e, c := busyCluster(t, false)
	if errs := c.ConsistencyErrors(); errs != nil {
		t.Fatalf("live cluster inconsistent: %v", errs)
	}
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	e2, c2, err := restoreFrom(t, buf.Bytes())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if errs := c2.ConsistencyErrors(); errs != nil {
		t.Fatalf("restored cluster inconsistent: %v", errs)
	}
	if e2.Now() != e.Now() {
		t.Fatalf("restored engine at %v, want %v", e2.Now(), e.Now())
	}
	if got, want := c2.StateDigest(), c.StateDigest(); got != want {
		t.Fatalf("state digest %#x != live %#x", got, want)
	}

	// The strongest equivalence check: the restored cluster re-encodes to
	// the identical byte stream.
	var buf2 bytes.Buffer
	if err := c2.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoded checkpoint differs (%d vs %d bytes)", buf.Len(), buf2.Len())
	}

	// Spot checks on reconstructed state the digest already covers, plus
	// ground truth it does not.
	if c2.Files() != c.Files() || c2.LiveBlocks() != c.LiveBlocks() {
		t.Fatalf("files/blocks %d/%d, want %d/%d", c2.Files(), c2.LiveBlocks(), c.Files(), c.LiveBlocks())
	}
	if c2.TotalUsed() != c.TotalUsed() {
		t.Fatalf("TotalUsed %v != %v", c2.TotalUsed(), c.TotalUsed())
	}
	if !reflect.DeepEqual(c2.UnderReplicated(), c.UnderReplicated()) {
		t.Fatalf("UnderReplicated %v != %v", c2.UnderReplicated(), c.UnderReplicated())
	}
	if !reflect.DeepEqual(c2.StaleNodes(), c.StaleNodes()) {
		t.Fatalf("StaleNodes %v != %v", c2.StaleNodes(), c.StaleNodes())
	}
	if !c2.RackPartitioned(2) {
		t.Fatal("rack partition not restored")
	}
	if got, want := c2.Metrics(), c.Metrics(); got.ReplicasAdded != want.ReplicasAdded ||
		got.CorruptDetected != want.CorruptDetected {
		t.Fatalf("metrics drifted: %+v vs %+v", got, want)
	}
	for _, d := range []DatanodeID{0, 4, 16, 2} {
		if c2.Datanode(d).State != c.Datanode(d).State {
			t.Fatalf("node %d state %v != %v", d, c2.Datanode(d).State, c.Datanode(d).State)
		}
	}
	// The restored cluster keeps running: the in-flight write is gone
	// (transient), but the namespace still accepts work.
	if _, err := c2.CreateFile("/post/restore", 64*mb, 3, -1); err != nil {
		t.Fatalf("create after restore: %v", err)
	}
	e2.RunUntil(e2.Now() + 30*time.Second)
	if errs := c2.ConsistencyErrors(); errs != nil {
		t.Fatalf("restored cluster broke after resuming: %v", errs)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	_, c := busyCluster(t, false)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	assertPristine := func(c2 *Cluster, what string) {
		t.Helper()
		if c2.Files() != 0 || c2.LiveBlocks() != 0 {
			t.Fatalf("%s half-restored: %d files, %d blocks", what, c2.Files(), c2.LiveBlocks())
		}
	}
	for cut := 0; cut < len(good); cut += 997 {
		_, c2, err := restoreFrom(t, good[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d restored without error", cut, len(good))
		}
		assertPristine(c2, fmt.Sprintf("truncation at %d", cut))
	}
	for i := 0; i < len(good); i += 1009 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		_, c2, err := restoreFrom(t, bad)
		if err == nil {
			t.Fatalf("bit flip at %d restored without error", i)
		}
		assertPristine(c2, fmt.Sprintf("bit flip at %d", i))
	}
	if _, c2, err := restoreFrom(t, []byte("definitely not a checkpoint")); err == nil {
		t.Fatal("garbage restored without error")
	} else {
		assertPristine(c2, "garbage")
	}
}

func TestRestoreGuards(t *testing.T) {
	_, c := busyCluster(t, false)
	var buf bytes.Buffer
	if err := c.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Non-pristine target.
	if err := c.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "pristine") {
		t.Fatalf("restore into busy cluster: %v", err)
	}

	// Config mismatch.
	e2 := sim.NewEngine()
	cfg := ckptConfig()
	cfg.DefaultReplication = 5
	c2 := New(e2, cfg)
	if err := c2.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "config digest") {
		t.Fatalf("restore across configs: %v", err)
	}

	// Engine already past the capture time.
	e3 := sim.NewEngine()
	c3 := New(e3, ckptConfig())
	e3.RunUntil(time.Hour)
	if err := c3.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "past checkpoint time") {
		t.Fatalf("restore into advanced engine: %v", err)
	}

	// Version drift.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(checkpointMagic)] = CheckpointVersion + 1 // single-byte uvarint
	if _, _, err := restoreFrom(t, bad); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		// The checksum catches the edit; a well-formed future version
		// would fail the explicit version check instead.
		t.Fatalf("version edit: %v", err)
	}
}

// TestJournalReplayEquivalence is the failover contract: a standby built
// from a mid-storm checkpoint plus the journal tail matches the live
// namenode's durable state exactly, even though the checkpoint was taken
// with transfers, reads, a decommission drain, and a write all in flight.
func TestJournalReplayEquivalence(t *testing.T) {
	e, c := busyCluster(t, true)

	// Snapshot mid-run state: checkpoint bytes + the journal position.
	var ckpt bytes.Buffer
	if err := c.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	seq := c.Journal().NextSeq()

	// The live cluster keeps going: partition heals, more churn.
	c.HealRack(2)
	c.SetReplication("/data/b", 2, OneByOne, nil)
	c.ReadFile(9, "/data/a", nil)
	e.RunUntil(6 * time.Minute)
	c.DecodeFile("/data/c", 2, nil)
	c.Kill(10)
	e.RunUntil(9 * time.Minute)
	if errs := c.ConsistencyErrors(); errs != nil {
		t.Fatalf("live cluster inconsistent: %v", errs)
	}

	// Standby: restore the checkpoint, replay the tail.
	_, c2, err := restoreFrom(t, ckpt.Bytes())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if c2.RestoredJournalSeq() != seq {
		t.Fatalf("restored journal seq %d, want %d", c2.RestoredJournalSeq(), seq)
	}
	tail := c.Journal().Tail(seq)
	if tail == nil {
		t.Fatal("journal tail unavailable")
	}
	if err := c2.ReplayJournal(tail); err != nil {
		t.Fatal(err)
	}
	if errs := c2.ConsistencyErrors(); errs != nil {
		t.Fatalf("replayed standby inconsistent: %v", errs)
	}
	if got, want := c2.StateDigest(), c.StateDigest(); got != want {
		t.Fatalf("standby digest %#x != live %#x after replay of %d entries", got, want, len(tail))
	}
}

func TestReplayJournalValidation(t *testing.T) {
	_, c := busyCluster(t, true)
	var ckpt bytes.Buffer
	if err := c.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	seq := c.Journal().NextSeq()

	// Wrong starting sequence.
	_, c2, err := restoreFrom(t, ckpt.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ReplayJournal([]auditlog.Entry{{Seq: seq + 3, Op: auditlog.OpSetTarget}}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint expects") {
		t.Fatalf("tail offset mismatch: %v", err)
	}

	// Gap inside the tail.
	if err := c2.ReplayJournal([]auditlog.Entry{
		{Seq: seq, Op: auditlog.OpNodeStale, Node: 0, Flag: true},
		{Seq: seq + 2, Op: auditlog.OpNodeStale, Node: 0, Flag: false},
	}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped tail: %v", err)
	}

	// Semantically invalid entries stop replay with an error.
	for _, bad := range []auditlog.Entry{
		{Op: auditlog.OpFileAdd, Path: "/data/a", File: 99999},      // wrong intern ID
		{Op: auditlog.OpBlockAdd, Block: 5},                         // out-of-sequence block
		{Op: auditlog.OpReplicaAdd, Block: 1 << 40, Node: 0},        // unknown block
		{Op: auditlog.OpNodeState, Node: 99, State: int(StateDown)}, // unknown node
		{Op: auditlog.OpNodeState, Node: 0, State: 42},              // unknown state
	} {
		_, c3, err := restoreFrom(t, ckpt.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		bad.Seq = seq
		if err := c3.ReplayJournal([]auditlog.Entry{bad}); err == nil {
			t.Fatalf("entry %+v replayed without error", bad)
		}
	}
}

func TestStateDigestSensitivity(t *testing.T) {
	_, c := busyCluster(t, false)
	base := c.StateDigest()
	if c.StateDigest() != base {
		t.Fatal("digest not stable")
	}
	if err := c.Rename("/data/a", "/data/a2"); err != nil {
		t.Fatal(err)
	}
	if c.StateDigest() == base {
		t.Fatal("digest blind to rename")
	}
	if err := c.Rename("/data/a2", "/data/a"); err != nil {
		t.Fatal(err)
	}
	if c.StateDigest() != base {
		t.Fatal("digest not restored by inverse rename")
	}
}
