package hdfs

import (
	"testing"

	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/trace"
)

// TestTracedOperationSpans: with a tracer installed, the replication and
// coding entry points must produce spans (including error annotations) and
// still behave identically — the tracing preamble wraps, never replaces,
// the operation.
func TestTracedOperationSpans(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{Topology: topology.New(topology.Config{})})
	tr := trace.New(e.Now)
	c.SetTracer(tr)
	if c.Tracer() != tr {
		t.Fatal("tracer not installed")
	}

	if _, err := c.CreateFile("/t", 640*mb, 3, -1); err != nil {
		t.Fatal(err)
	}
	e.Run()

	// Error paths, all annotated on their spans.
	errs := map[string]error{}
	record := func(name string) func(error) {
		return func(err error) { errs[name] = err }
	}
	c.SetReplication("/missing", 4, WholeAtOnce, record("missing"))
	c.SetReplication("/t", 0, WholeAtOnce, record("zero"))
	c.DecodeFile("/missing", 3, record("decode-missing"))
	c.DecodeFile("/t", 3, record("decode-plain"))
	e.Run()
	for name, err := range errs {
		if err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}

	// Grow one-by-one, shrink, then a full encode/decode cycle.
	c.SetReplication("/t", 5, OneByOne, record("grow"))
	e.Run()
	if got := c.ReplicationOf("/t"); got != 5 {
		t.Fatalf("grow: replication %d, want 5", got)
	}
	c.SetReplication("/t", 2, WholeAtOnce, record("shrink"))
	e.Run()
	if got := c.ReplicationOf("/t"); got != 2 {
		t.Fatalf("shrink: replication %d, want 2", got)
	}
	c.EncodeFile("/t", 10, 4, record("encode"))
	e.Run()
	if !c.File("/t").Encoded {
		t.Fatal("file not encoded")
	}
	c.DecodeFile("/t", 3, record("decode"))
	e.Run()
	if c.File("/t").Encoded {
		t.Fatal("file still encoded after decode")
	}
	if got := c.ReplicationOf("/t"); got != 3 {
		t.Fatalf("decode: replication %d, want 3", got)
	}
	for _, name := range []string{"grow", "shrink", "encode", "decode"} {
		if err, ok := errs[name]; !ok || err != nil {
			t.Errorf("%s: done(%v), want done(nil)", name, err)
		}
	}

	if tr.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	for _, msg := range c.ConsistencyErrors() {
		t.Errorf("consistency: %s", msg)
	}
}
