package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

// These tests pin the shrink victim order the degraded storms depend on: a
// SetReplication decrease must shed corrupt and unreachable replicas before
// clean ones, and must not collapse a block's survivors into a single rack.
// The bug they guard against: a judge-cooled shrink during an outage keeping
// only unreadable copies, turning a routine decrease into data loss.

func replicaSet(c *Cluster, b BlockID) map[DatanodeID]bool {
	s := map[DatanodeID]bool{}
	for _, r := range c.Replicas(b) {
		s[r] = true
	}
	return s
}

func TestShrinkShedsCorruptReplicaFirst(t *testing.T) {
	_, c := newCluster(t)
	f, err := c.CreateFile("/x", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	victim := c.Replicas(b)[0]
	if err := c.CorruptReplica(b, victim); err != nil {
		t.Fatal(err)
	}
	c.SetReplication("/x", 2, WholeAtOnce, nil)
	left := replicaSet(c, b)
	if len(left) != 2 {
		t.Fatalf("replicas = %d, want 2", len(left))
	}
	if left[victim] {
		t.Fatalf("shrink kept the corrupt replica on node %d over a clean one", victim)
	}
}

func TestShrinkShedsCrashedNodeReplicaFirst(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{
		Topology:  topology.New(topology.Config{}),
		Heartbeat: HeartbeatConfig{Enabled: true, DeadTimeout: 2 * time.Minute},
	})
	f, err := c.CreateFile("/x", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	victim := c.Replicas(b)[0]
	// Crash the node but stay inside DeadTimeout: its replica is still in
	// the block map, just unreadable — exactly what the shrink should shed.
	c.Kill(victim)
	c.SetReplication("/x", 2, WholeAtOnce, nil)
	left := replicaSet(c, b)
	if len(left) != 2 {
		t.Fatalf("replicas = %d, want 2", len(left))
	}
	if left[victim] {
		t.Fatalf("shrink kept the replica on crashed node %d over a live one", victim)
	}
}

func TestShrinkPreservesRackDiversity(t *testing.T) {
	_, c := newCluster(t)
	f, err := c.CreateFile("/x", 64*mb, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	c.SetReplication("/x", 6, WholeAtOnce, nil)
	c.Clock().(*sim.Engine).Run()
	if got := len(c.Replicas(b)); got != 6 {
		t.Fatalf("grow: replicas = %d, want 6", got)
	}
	c.SetReplication("/x", 2, WholeAtOnce, nil)
	racks := map[int]bool{}
	for _, r := range c.Replicas(b) {
		racks[c.topo.Rack(topology.NodeID(r))] = true
	}
	if len(racks) < 2 {
		t.Fatalf("shrink to 2 collapsed the block into one rack: %v", c.Replicas(b))
	}
}
