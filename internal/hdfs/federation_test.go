package hdfs

import (
	"bytes"
	"errors"
	"testing"

	"erms/internal/auditlog"
	"erms/internal/sim"
	"erms/internal/topology"
)

func fedCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{Racks: 3, NodeCount: 9})
	c := New(e, Config{Topology: topo})
	c.SetJournal(auditlog.NewJournal())
	return e, c
}

func TestAppendMarkerMaintainsPendingMoves(t *testing.T) {
	_, c := fedCluster(t)
	intent := auditlog.Entry{Op: auditlog.OpFedMoveIntent, Path: "/a", Dst: "/b", Node: 2}
	if err := c.AppendMarker(intent); err != nil {
		t.Fatalf("intent: %v", err)
	}
	pm := c.PendingMoves()
	if len(pm) != 1 || pm[0].Src != "/a" || pm[0].Dst != "/b" || pm[0].Peer != 2 || pm[0].Committed {
		t.Fatalf("after intent: %+v", pm)
	}
	if err := c.AppendMarker(auditlog.Entry{Op: auditlog.OpFedMoveCommit, Path: "/a", Dst: "/b", Node: 2}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if pm = c.PendingMoves(); len(pm) != 1 || !pm[0].Committed {
		t.Fatalf("after commit: %+v", pm)
	}
	if err := c.AppendMarker(auditlog.Entry{Op: auditlog.OpFedMoveTombstone, Path: "/a", Dst: "/b", Node: 2, Flag: true}); err != nil {
		t.Fatalf("tombstone: %v", err)
	}
	if pm = c.PendingMoves(); pm != nil {
		t.Fatalf("after tombstone: %+v", pm)
	}
	// Markers landed in the journal like any durable fact.
	if got := c.Journal().Len(); got != 3 {
		t.Fatalf("journal has %d entries, want 3", got)
	}
}

func TestAppendMarkerRejections(t *testing.T) {
	_, c := fedCluster(t)
	if err := c.AppendMarker(auditlog.Entry{Op: auditlog.OpFileAdd, Path: "/a", Dst: "/b"}); err == nil {
		t.Error("non-marker op accepted")
	}
	if err := c.AppendMarker(auditlog.Entry{Op: auditlog.OpFedMoveIntent, Path: "/a"}); err == nil {
		t.Error("marker without dst accepted")
	}
	// A fenced writer must not advance a protocol.
	c.Journal().BumpEpoch()
	err := c.AppendMarker(auditlog.Entry{Op: auditlog.OpFedMoveIntent, Path: "/a", Dst: "/b"})
	if !errors.Is(err, ErrFenced) {
		t.Errorf("fenced marker: %v, want ErrFenced", err)
	}
	// No journal, no marker.
	e2 := sim.NewEngine()
	c2 := New(e2, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c2.AppendMarker(auditlog.Entry{Op: auditlog.OpFedMoveIntent, Path: "/a", Dst: "/b"}); err == nil {
		t.Error("journal-less marker accepted")
	}
}

// TestMarkerReplayRebuildsPendingMoves is the recovery story: a standby
// restored from checkpoint+tail must know which moves were in flight.
func TestMarkerReplayRebuildsPendingMoves(t *testing.T) {
	_, c := fedCluster(t)
	if _, err := c.CreateFile("/keep", 64, 2, -1); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := c.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	ckptSeq := c.Journal().NextSeq()
	// Two moves open after the checkpoint: one intent-only, one committed.
	for _, e := range []auditlog.Entry{
		{Op: auditlog.OpFedMoveIntent, Path: "/keep", Dst: "/other/keep", Node: 1},
		{Op: auditlog.OpFedMoveIntent, Path: "/gone", Dst: "/other/gone", Node: 1},
		{Op: auditlog.OpFedMoveCommit, Path: "/gone", Dst: "/other/gone", Node: 1},
	} {
		if err := c.AppendMarker(e); err != nil {
			t.Fatal(err)
		}
	}

	e2 := sim.NewEngine()
	c2 := New(e2, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := c2.ReplayJournal(c.Journal().Tail(ckptSeq)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	pm := c2.PendingMoves()
	if len(pm) != 2 {
		t.Fatalf("replayed pending moves: %+v", pm)
	}
	// Deterministic (Src, Dst) order: /gone before /keep.
	if pm[0].Src != "/gone" || !pm[0].Committed {
		t.Errorf("pm[0] = %+v, want committed /gone", pm[0])
	}
	if pm[1].Src != "/keep" || pm[1].Committed {
		t.Errorf("pm[1] = %+v, want intent-only /keep", pm[1])
	}
	// A commit whose intent predates the retained tail still opens a
	// committed record — the commit alone is enough to roll forward.
	e3 := sim.NewEngine()
	c3 := New(e3, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c3.ReplayJournal([]auditlog.Entry{
		{Seq: 1, Op: auditlog.OpFedMoveCommit, Path: "/x", Dst: "/y", Node: 1},
	}); err != nil {
		t.Fatalf("orphan commit replay: %v", err)
	}
	if pm := c3.PendingMoves(); len(pm) != 1 || !pm[0].Committed {
		t.Fatalf("orphan commit: %+v", pm)
	}
	// Malformed markers are rejected, not guessed at.
	e4 := sim.NewEngine()
	c4 := New(e4, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c4.ReplayJournal([]auditlog.Entry{
		{Seq: 1, Op: auditlog.OpFedMoveIntent, Path: "/x"},
	}); err == nil {
		t.Fatal("marker without dst replayed without error")
	}
}

func TestRestoreCheckpointInPlace(t *testing.T) {
	e, c := fedCluster(t)
	if _, err := c.CreateFile("/f", 128, 3, -1); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := c.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	// Engine races ahead of the capture time — the shared-engine failover
	// situation RestoreCheckpoint rejects.
	e.RunFor(1 << 40)
	c2 := New(e, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c2.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("RestoreCheckpoint should reject an engine past capture time")
	}
	c3 := New(e, Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	if err := c3.RestoreCheckpointInPlace(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("in-place restore: %v", err)
	}
	if c3.StateDigest() != c.StateDigest() {
		t.Error("in-place restore digest mismatch")
	}
	if errs := c3.ConsistencyErrors(); errs != nil {
		t.Errorf("in-place restore consistency: %v", errs)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{ReadsStarted: 1, BytesRead: 2.5, FencedWritesApplied: 1}
	b := Metrics{ReadsStarted: 2, BytesRead: 0.5, SafeModeEntries: 3}
	got := a.Add(b)
	if got.ReadsStarted != 3 || got.BytesRead != 3 || got.FencedWritesApplied != 1 || got.SafeModeEntries != 3 {
		t.Fatalf("Add: %+v", got)
	}
	if (Metrics{}).Add(Metrics{}) != (Metrics{}) {
		t.Error("zero + zero != zero")
	}
}
