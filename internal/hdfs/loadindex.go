package hdfs

// This file holds the two incremental indexes that keep namenode-side scans
// off the hot path at the 1,000-datanode / 1M-file scale:
//
//   - the placement load index (loadIdx): eligible datanodes bucketed by
//     PlacementLoad, each bucket a bitset iterated in ascending node ID —
//     reproducing exactly the (load, ID) order the old per-call sort
//     produced, without visiting every node per placement;
//   - the under-replication set (underSet): maintained at every replica or
//     target mutation, so UnderReplicated() is proportional to the number
//     of degraded blocks, not the block space.

import "math/bits"

// nodeSet is a bitset over datanode IDs with a population count. Insert and
// remove are O(1); iteration is ascending-ID via word scans.
type nodeSet struct {
	words []uint64
	count int
}

func (s *nodeSet) add(id int) {
	w := id >> 6
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	bit := uint64(1) << uint(id&63)
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.count++
	}
}

func (s *nodeSet) remove(id int) {
	w := id >> 6
	if w >= len(s.words) {
		return
	}
	bit := uint64(1) << uint(id&63)
	if s.words[w]&bit != 0 {
		s.words[w] &^= bit
		s.count--
	}
}

func (s *nodeSet) has(id int) bool {
	w := id >> 6
	return w < len(s.words) && s.words[w]&(uint64(1)<<uint(id&63)) != 0
}

// each visits members in ascending ID order until visit returns true;
// it reports whether the iteration was stopped early.
func (s *nodeSet) each(visit func(id int) bool) bool {
	for w, word := range s.words {
		for word != 0 {
			id := w<<6 + bits.TrailingZeros64(word)
			if visit(id) {
				return true
			}
			word &= word - 1
		}
	}
	return false
}

// reindexNode re-registers d in the placement load index after anything
// that can change its eligibility (state, staleness, crash) or its
// PlacementLoad (block count, pending adds). Callers are the replica
// chokepoints (attach/detach), AddReplica's pending bookkeeping, every
// node state transition, and heartbeat stale flips.
func (c *Cluster) reindexNode(d *Datanode) {
	want := d.Eligible()
	load := d.PlacementLoad()
	if d.inIdx {
		if want && d.idxLoad == load {
			return
		}
		c.loadIdx[d.idxLoad].remove(int(d.ID))
		d.inIdx = false
	}
	if !want {
		return
	}
	for len(c.loadIdx) <= load {
		c.loadIdx = append(c.loadIdx, nodeSet{})
	}
	c.loadIdx[load].add(int(d.ID))
	d.idxLoad = load
	d.inIdx = true
	if load < c.idxMin {
		c.idxMin = load
	}
}

// scanEligible visits placement candidates for b in (PlacementLoad, ID)
// order, applying the same per-query filters the old full scan used:
// already-holding nodes, the caller's exclusion set, partitioned nodes, and
// nodes without uncommitted room for the block. Eligibility (active, not
// stale, not crashed) is the index's membership invariant. visit returns
// true to stop early.
func (c *Cluster) scanEligible(b *Block, exclude map[DatanodeID]bool, visit func(DatanodeID) bool) {
	for l := c.idxMin; l < len(c.loadIdx); l++ {
		s := &c.loadIdx[l]
		if s.count == 0 {
			if l == c.idxMin {
				c.idxMin++ // lazily skip leading empty buckets next time
			}
			continue
		}
		stopped := s.each(func(n int) bool {
			id := DatanodeID(n)
			d := c.datanodes[id]
			if d.blocks.Has(b.ID) || exclude[id] {
				return false
			}
			if c.NodeUnreachable(id) || d.UncommittedFree() < b.Size {
				return false
			}
			return visit(id)
		})
		if stopped {
			return
		}
	}
}

// replTarget returns the replica count a block must hold to leave the
// under-replicated set: 1 for parity blocks, orphans, and blocks of
// encoded files; the file's TargetRepl otherwise.
func (c *Cluster) replTarget(b *Block) int {
	if b.Parity {
		return 1
	}
	f := c.fileOf(b)
	if f == nil || f.Encoded {
		return 1
	}
	return f.TargetRepl
}

// reassessBlock updates b's membership in the under-replicated set.
func (c *Cluster) reassessBlock(b *Block) {
	if len(c.replicas[b.ID]) < c.replTarget(b) {
		c.underSet[b.ID] = struct{}{}
	} else {
		delete(c.underSet, b.ID)
	}
}

// reassessFile re-derives under-replication for every data block of f;
// called when the file-level target changes (SetReplication, encode,
// decode) rather than a single block's replica count.
func (c *Cluster) reassessFile(f *INode) {
	for _, bid := range f.Blocks {
		if b := c.blocks[bid]; b != nil {
			c.reassessBlock(b)
		}
	}
}
