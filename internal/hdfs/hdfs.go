// Package hdfs is a discrete-event model of the Hadoop Distributed File
// System as the ERMS paper uses it: a namenode (namespace + block map +
// pluggable replica placement), datanodes with finite disk bandwidth,
// session limits and capacities, a client read path with replica selection
// and retry, a replication engine for adding/removing replicas, erasure
// coding of cold files, datanode failure with re-replication, and audit
// log emission.
//
// All I/O is simulated as flows on a netsim.Fabric, so contention (many
// readers piling onto a hot replica, rack uplink saturation) emerges from
// the model rather than being scripted.
package hdfs

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/auditlog"
	"erms/internal/metrics"
	"erms/internal/netsim"
	"erms/internal/sim"
	"erms/internal/topology"
	"erms/internal/trace"
)

// BlockID identifies a block cluster-wide.
type BlockID int64

// DatanodeID indexes a datanode; it equals the topology.NodeID the
// datanode runs on.
type DatanodeID int

// NodeState is a datanode's availability state. Active and Standby
// implement the paper's Active/Standby storage model; vanilla HDFS marks
// every node Active.
type NodeState int

// Datanode states.
const (
	// StateActive nodes serve reads and receive default-policy replicas.
	StateActive NodeState = iota
	// StateStandby nodes are powered off; ERMS commissions them to absorb
	// hot-data replicas. They hold data but serve nothing while standby.
	StateStandby
	// StateDown nodes have failed; their replicas are lost until
	// re-replicated.
	StateDown
	// StateDecommissioning nodes are being drained: they keep serving
	// reads and replication sources but receive no new replicas.
	StateDecommissioning
	// StateDecommissioned nodes have been fully drained and removed from
	// service.
	StateDecommissioned
)

func (s NodeState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateStandby:
		return "standby"
	case StateDown:
		return "down"
	case StateDecommissioning:
		return "decommissioning"
	case StateDecommissioned:
		return "decommissioned"
	}
	return "unknown"
}

// serves reports whether a node in this state answers client reads.
func (s NodeState) serves() bool {
	return s == StateActive || s == StateDecommissioning
}

// Block is one block of a file (data or erasure parity).
type Block struct {
	ID     BlockID
	File   string
	Index  int
	Size   float64
	Parity bool
	Group  int // stripe group for erasure coding
	// fileID interns the owning file: hot paths resolve the INode through
	// Cluster.fileOf instead of a string map lookup on File.
	fileID int
}

// INode is a file's namespace entry.
type INode struct {
	Path       string
	Size       float64
	Blocks     []BlockID
	Parity     []BlockID
	TargetRepl int
	Encoded    bool
	CreatedAt  time.Duration
	// EncodeK/EncodeM record the stripe geometry once Encoded.
	EncodeK, EncodeM int
	// id is the interned file index into Cluster.fileByID; it survives
	// renames and is never reused.
	id int
}

// Datanode models one storage server.
type Datanode struct {
	ID           DatanodeID
	Name         string
	State        NodeState
	Capacity     float64
	Used         float64
	MaxSessions  int
	sessions     int
	xferOut      int     // outbound replication transfers in flight
	xferIn       int     // inbound replication transfers in flight
	pendingAdds  int     // inbound replicas scheduled but not yet landed
	pendingBytes float64 // bytes those pending replicas will occupy
	waiting      []*pendingSession
	blocks       blockSet
	// activeFlows tracks flows being served *from* this node so they can be
	// killed with it (or with the network path to their peer).
	activeFlows map[*netsim.Flow]*flowHandle
	// activeUptime accumulates time spent non-standby, for energy
	// accounting.
	activeSince time.Duration
	ActiveTime  time.Duration

	// Stale marks a node that has missed heartbeats for StaleTimeout:
	// reads deprioritize it and writes exclude it, but its replicas still
	// count as live (HDFS stale-node semantics). Cleared when heartbeats
	// resume or the node is declared dead.
	Stale bool
	// crashed means the node's process is gone but, under the heartbeat
	// model, the namenode has not noticed yet. With heartbeats disabled
	// death is declared instantly and crashed is never observable.
	crashed bool
	// stalled suppresses the node's heartbeats without touching its data
	// plane: the process is alive and serving, but the namenode stops
	// hearing from it (GC pause, control-plane congestion). The chaos
	// node-flapping fault toggles it to drive stale→rejoin→stale cycles.
	stalled bool
	// lastHeartbeat is the virtual time of the last heartbeat the
	// namenode received from this node.
	lastHeartbeat time.Duration
	// corrupt flags replicas whose on-disk bytes have rotted; invisible
	// until a read checksum fails or the scrubber verifies the block.
	corrupt map[BlockID]bool
	// reported tracks corrupt replicas already surfaced once but kept
	// because they are the block's last copy.
	reported map[BlockID]bool

	// idxLoad/inIdx track the node's registration in the cluster's
	// placement load index (see Cluster.reindexNode).
	idxLoad int
	inIdx   bool
}

// flowHandle is the per-flow record a datanode keeps for transfers it
// serves: how to abort the transfer, and the other endpoint (for cutting
// flows that cross a fresh rack partition). peer < 0 means an external
// client.
type flowHandle struct {
	abort func()
	peer  topology.NodeID
}

type pendingSession struct {
	start    func()
	abort    func()
	canceled bool
}

// Sessions returns the number of in-flight serving sessions.
func (d *Datanode) Sessions() int { return d.sessions }

// QueueLen returns the number of admissions waiting for a session slot.
func (d *Datanode) QueueLen() int { return len(d.waiting) }

// HasBlock reports whether the datanode stores a replica of b.
func (d *Datanode) HasBlock(b BlockID) bool { return d.blocks.Has(b) }

// NumBlocks returns the number of replicas the node stores.
func (d *Datanode) NumBlocks() int { return d.blocks.Len() }

// PendingAdds returns inbound replica copies scheduled but not landed.
// Placement policies add it to NumBlocks so a burst of concurrent
// placements (whole-at-once replication) spreads instead of piling onto
// the momentarily-emptiest node.
func (d *Datanode) PendingAdds() int { return d.pendingAdds }

// PlacementLoad is the load metric placement policies sort by.
func (d *Datanode) PlacementLoad() int { return d.blocks.Len() + d.pendingAdds }

// Free returns remaining capacity in bytes.
func (d *Datanode) Free() float64 { return d.Capacity - d.Used }

// UncommittedFree returns capacity not yet spoken for: free space minus
// the bytes of replica copies already in flight toward this node.
// Admission checks use it so a burst of concurrent copies cannot
// oversubscribe a disk.
func (d *Datanode) UncommittedFree() float64 { return d.Capacity - d.Used - d.pendingBytes }

// OpenActiveInterval returns how long the node has been active since its
// last state transition (zero when it is not currently active). Together
// with ActiveTime it gives total uptime for energy accounting. A crashed
// node still carries StateActive until the heartbeat detector declares it
// dead, but Kill already closed its interval — its process is not running,
// so no interval is open.
func (d *Datanode) OpenActiveInterval(now time.Duration) time.Duration {
	if d.State != StateActive || d.crashed {
		return 0
	}
	return now - d.activeSince
}

// Crashed reports whether the node's process is dead but the namenode has
// not yet declared it (heartbeat mode only).
func (d *Datanode) Crashed() bool { return d.crashed }

// Eligible reports whether the node can receive new replicas: active, not
// stale, and (as far as the namenode knows) alive.
func (d *Datanode) Eligible() bool {
	return d.State == StateActive && !d.Stale && !d.crashed
}

// canServe reports whether the node answers reads right now: its state
// serves and its process is actually up.
func (d *Datanode) canServe() bool { return d.State.serves() && !d.crashed }

// CorruptBlock reports whether this node's replica of b is flagged corrupt.
func (d *Datanode) CorruptBlock(b BlockID) bool { return d.corrupt[b] }

// NumCorrupt returns the number of corrupt replicas currently on the node.
func (d *Datanode) NumCorrupt() int { return len(d.corrupt) }

// Config sizes the simulated HDFS cluster.
type Config struct {
	Topology *topology.Topology // required
	// BlockSize defaults to 64 MB (the paper's Hadoop 0.20 default).
	BlockSize float64
	// DefaultReplication defaults to 3.
	DefaultReplication int
	// NodeCapacity defaults to 250 GB per datanode.
	NodeCapacity float64
	// MaxSessionsPerNode bounds concurrent serving sessions per datanode
	// ("a datanode can simultaneously support a limited number of
	// sessions"); excess requests queue. Defaults to 64.
	MaxSessionsPerNode int
	// ReplCommandLatency models the delay before a datanode acts on a
	// replication command (commands piggyback on heartbeats in HDFS).
	// Defaults to 1s. Each SetReplication round pays it once, which is why
	// raising the factor one step at a time loses to going straight to the
	// target (the paper's Figure 7).
	ReplCommandLatency time.Duration
	// StandbyNodes marks these datanodes standby at start (ERMS model).
	StandbyNodes []DatanodeID
	// KeepAuditRecords retains audit records in memory (tests/trace export).
	KeepAuditRecords bool
	// Heartbeat enables the heartbeat failure detector. When disabled
	// (default), Kill notifies the manager instantly — the pre-heartbeat
	// behaviour most unit tests rely on.
	Heartbeat HeartbeatConfig
	// SafeMode enables the namenode safe-mode degradation guard. Off by
	// default; like Heartbeat it is detector tuning, excluded from the
	// checkpoint config digest.
	SafeMode SafeModeConfig
}

func (c *Config) applyDefaults() {
	c.Heartbeat.applyDefaults()
	c.SafeMode.applyDefaults()
	if c.BlockSize <= 0 {
		c.BlockSize = 64 * topology.MB
	}
	if c.DefaultReplication <= 0 {
		c.DefaultReplication = 3
	}
	if c.NodeCapacity <= 0 {
		c.NodeCapacity = 250 * topology.GB
	}
	if c.MaxSessionsPerNode <= 0 {
		c.MaxSessionsPerNode = 64
	}
	if c.ReplCommandLatency <= 0 {
		c.ReplCommandLatency = time.Second
	}
}

// Metrics aggregates cluster-wide counters.
type Metrics struct {
	ReadsStarted   int
	ReadsCompleted int
	ReadsFailed    int
	BytesRead      float64
	BlockReads     int
	NodeLocalReads int // block reads served from the client's node
	RackLocalReads int // served from the client's rack
	RemoteReads    int // served across racks
	// Ranged-read accounting (ReadRange). Ranged reads also count in the
	// Reads*/BlockReads totals above; these split out the partial-read
	// traffic. Transient stats, like the safe-mode counters: not
	// checkpointed.
	RangedReads       int     // ReadRange calls started
	PartialBlockReads int     // block reads that streamed less than the block
	RangedBytesRead   float64 // bytes served to ranged readers
	ReplicasAdded     int
	ReplicasRemoved   int
	ReplicationMB     float64 // bytes moved by replication, in MB
	FilesEncoded      int
	BlocksRebuilt     int
	// Failure-model counters (heartbeat + scrubber).
	StaleTransitions int     // nodes that crossed the stale threshold
	ReplicasScrubbed int     // replicas the background scrubber verified
	CorruptDetected  int     // corrupt replicas surfaced (scrub or read)
	ChecksumFailures int     // client reads that hit a corrupt replica
	CorruptBytes     float64 // bytes of corrupt replicas quarantined
	// Degradation counters (safe mode + epoch fencing).
	SafeModeEntries      int // times the namenode entered safe mode
	SafeModeExits        int // times it left safe mode
	SafeModeRejections   int // mutations rejected with ErrSafeMode
	FencedWritesRejected int // mutations rejected with ErrFenced
	// FencedWritesApplied counts journal entries appended while the writer
	// was fenced — the split-brain interleaving the gates exist to prevent.
	// It must stay zero; the epoch invariant oracle asserts that.
	FencedWritesApplied int
}

// BlockReadEvent describes one served block read; ERMS feeds these into the
// CEP engine alongside the file-level audit log.
type BlockReadEvent struct {
	Time     time.Duration
	Path     string
	Block    BlockID
	Datanode DatanodeID
	Client   topology.NodeID
	// Bytes is how much of the block this read streams — less than the
	// block size for ranged (partial) reads.
	Bytes float64
}

// Cluster is the simulated HDFS deployment: namenode state plus datanodes.
type Cluster struct {
	clock  sim.Clock
	topo   *topology.Topology
	fabric *netsim.Fabric
	cfg    Config

	files      map[string]*INode
	fileByID   []*INode // interned files, indexed by INode.id; nil after delete
	pathsCache []string // sorted FilePaths memo; nil after namespace changes
	// blocks and replicas are dense slices indexed by BlockID (IDs are
	// assigned monotonically and never reused); a nil blocks entry marks a
	// deleted block. liveBlocks counts the non-nil entries.
	blocks     []*Block
	replicas   [][]DatanodeID
	liveBlocks int
	datanodes  []*Datanode
	nextBlock  BlockID

	// readCounts is the per-block read tally (dense, indexed by BlockID,
	// grown with the block map). Partial reads count like whole ones: the
	// tally is access heat, not byte volume. Transient stats — reset by
	// restore, never checkpointed.
	readCounts []int64

	// underSet holds the blocks currently below their replication target,
	// maintained incrementally at every replica/target mutation so
	// UnderReplicated never rescans the block space.
	underSet map[BlockID]struct{}

	// loadIdx buckets placement-eligible datanodes by PlacementLoad; each
	// bucket is a bitset over node IDs, so candidate selection walks nodes
	// in exactly the (load, ID) order the old linear scan sorted into.
	// idxMin is a lazily-advanced lower bound on the first occupied bucket.
	loadIdx []nodeSet
	idxMin  int

	placement Policy
	audit     *auditlog.Log
	metrics   Metrics

	// journal, when attached, receives a typed write-ahead record for
	// every durable namenode mutation; replaying stands a failover twin
	// up from a checkpoint. replaying suppresses re-emission while the
	// journal's own entries are being applied. ckptJournalSeq carries the
	// journal position of the checkpoint this cluster restored from.
	journal        *auditlog.Journal
	replaying      bool
	ckptJournalSeq uint64

	// fedMoves is the pending cross-shard move table (see federation.go):
	// one record per open move whose source is this shard, maintained by
	// both the live marker path and journal replay. Nil when this cluster
	// has never sourced a move.
	fedMoves map[string]*MoveRecord

	// epoch is this namenode's writer epoch. It is legitimate only while it
	// matches the attached journal's epoch; a standby promotion bumps the
	// journal's epoch, fencing this writer (see Fenced). Transient election
	// state: not checkpointed, not part of StateDigest.
	epoch uint64

	// Safe-mode state (see safemode.go). Transient detector output, never
	// checkpointed or digested.
	safeMode       bool
	safeModeManual bool          // entered via EnterSafeMode; only LeaveSafeMode exits
	healthySince   time.Duration // when thresholds were last re-met (-1: unhealthy)
	onSafeMode     []func(bool)

	// partitioned racks are cut off from the rest of the cluster (and
	// from external clients); intra-rack traffic still works.
	partitioned map[int]bool
	scrubCursor int

	activeReads int
	onBlockRead []func(BlockReadEvent)
	onDeadNode  []func(DatanodeID)
	onNodeUp    []func(DatanodeID)
	onCorrupt   []func(BlockID, DatanodeID)

	// tracer records hdfs.* spans (reads, replica copies, encode/decode,
	// commission/standby instants); nil disables tracing.
	tracer *trace.Tracer
}

// New builds a cluster with one datanode per topology node. All of the
// cluster's timers — heartbeats, the safe-mode monitor, the scrubber,
// replication command latency — schedule through clock, the seam that
// lets the same cluster run on pure simulated time or paced against a
// wall clock in service mode.
func New(clock sim.Clock, cfg Config) *Cluster {
	if cfg.Topology == nil {
		panic("hdfs: Config.Topology is required")
	}
	cfg.applyDefaults()
	c := &Cluster{
		clock:       clock,
		topo:        cfg.Topology,
		fabric:      netsim.New(clock, cfg.Topology),
		cfg:         cfg,
		files:       make(map[string]*INode),
		underSet:    make(map[BlockID]struct{}),
		partitioned: make(map[int]bool),
		audit:       auditlog.NewLog(cfg.KeepAuditRecords),
	}
	c.placement = NewDefaultPolicy()
	standby := map[DatanodeID]bool{}
	for _, id := range cfg.StandbyNodes {
		standby[id] = true
	}
	for _, n := range cfg.Topology.Nodes {
		d := &Datanode{
			ID:          DatanodeID(n.ID),
			Name:        n.Name,
			Capacity:    cfg.NodeCapacity,
			MaxSessions: cfg.MaxSessionsPerNode,
			activeFlows: make(map[*netsim.Flow]*flowHandle),
			corrupt:     make(map[BlockID]bool),
			reported:    make(map[BlockID]bool),
		}
		if standby[d.ID] {
			d.State = StateStandby
		}
		c.datanodes = append(c.datanodes, d)
		c.reindexNode(d)
	}
	if cfg.Heartbeat.Enabled {
		sim.NewTicker(clock, c.cfg.Heartbeat.Interval, c.heartbeatTick)
	}
	c.epoch = 1
	c.healthySince = -1
	if cfg.SafeMode.Enabled {
		sim.NewTicker(clock, c.cfg.SafeMode.CheckInterval, c.safeModeTick)
	}
	return c
}

// Clock returns the scheduling clock the cluster runs on — the seam every
// timer goes through (see sim.Clock).
func (c *Cluster) Clock() sim.Clock { return c.clock }

// Topology returns the physical layout.
func (c *Cluster) Topology() *topology.Topology { return c.topo }

// Fabric returns the network simulator (for experiments inspecting link
// usage).
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// Config returns the cluster configuration (with defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// Audit returns the audit log.
func (c *Cluster) Audit() *auditlog.Log { return c.audit }

// Metrics returns a snapshot of the counters.
func (c *Cluster) Metrics() Metrics { return c.metrics }

// SetTracer installs a span tracer on the cluster and its network fabric.
// Call it before wiring consumers (the ERMS manager reads it via Tracer).
// Nil disables tracing with zero overhead.
func (c *Cluster) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	c.fabric.SetTracer(tr)
}

// Tracer returns the installed tracer (nil when tracing is disabled).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// RegisterMetrics registers the cluster's counters (and the fabric's)
// into a metrics registry as snapshot-time gauges.
func (c *Cluster) RegisterMetrics(r *metrics.Registry) {
	m := &c.metrics
	r.GaugeFunc("hdfs_reads_started_total", func() float64 { return float64(m.ReadsStarted) })
	r.GaugeFunc("hdfs_reads_completed_total", func() float64 { return float64(m.ReadsCompleted) })
	r.GaugeFunc("hdfs_reads_failed_total", func() float64 { return float64(m.ReadsFailed) })
	r.GaugeFunc("hdfs_bytes_read_total", func() float64 { return m.BytesRead })
	r.GaugeFunc("hdfs_block_reads_total", func() float64 { return float64(m.BlockReads) })
	r.GaugeFunc("hdfs_node_local_reads_total", func() float64 { return float64(m.NodeLocalReads) })
	r.GaugeFunc("hdfs_rack_local_reads_total", func() float64 { return float64(m.RackLocalReads) })
	r.GaugeFunc("hdfs_remote_reads_total", func() float64 { return float64(m.RemoteReads) })
	r.GaugeFunc("hdfs_ranged_reads_total", func() float64 { return float64(m.RangedReads) })
	r.GaugeFunc("hdfs_partial_block_reads_total", func() float64 { return float64(m.PartialBlockReads) })
	r.GaugeFunc("hdfs_ranged_bytes_read_total", func() float64 { return m.RangedBytesRead })
	r.GaugeFunc("hdfs_replicas_added_total", func() float64 { return float64(m.ReplicasAdded) })
	r.GaugeFunc("hdfs_replicas_removed_total", func() float64 { return float64(m.ReplicasRemoved) })
	r.GaugeFunc("hdfs_replication_mb_total", func() float64 { return m.ReplicationMB })
	r.GaugeFunc("hdfs_files_encoded_total", func() float64 { return float64(m.FilesEncoded) })
	r.GaugeFunc("hdfs_blocks_rebuilt_total", func() float64 { return float64(m.BlocksRebuilt) })
	r.GaugeFunc("hdfs_checksum_failures_total", func() float64 { return float64(m.ChecksumFailures) })
	r.GaugeFunc("hdfs_corrupt_detected_total", func() float64 { return float64(m.CorruptDetected) })
	r.GaugeFunc("hdfs_safemode_entries_total", func() float64 { return float64(m.SafeModeEntries) })
	r.GaugeFunc("hdfs_safemode_exits_total", func() float64 { return float64(m.SafeModeExits) })
	r.GaugeFunc("hdfs_safemode_rejections_total", func() float64 { return float64(m.SafeModeRejections) })
	r.GaugeFunc("hdfs_fenced_writes_rejected_total", func() float64 { return float64(m.FencedWritesRejected) })
	r.GaugeFunc("hdfs_fenced_writes_applied_total", func() float64 { return float64(m.FencedWritesApplied) })
	r.GaugeFunc("hdfs_safemode_active", func() float64 {
		if c.safeMode {
			return 1
		}
		return 0
	})
	r.GaugeFunc("hdfs_active_reads", func() float64 { return float64(c.activeReads) })
	r.GaugeFunc("hdfs_files", func() float64 { return float64(len(c.files)) })
	r.GaugeFunc("hdfs_bytes_stored", c.TotalUsed)
	r.GaugeFunc("hdfs_active_nodes", func() float64 { return float64(len(c.Active())) })
	r.GaugeFunc("hdfs_standby_nodes", func() float64 { return float64(len(c.Standby())) })
	c.fabric.RegisterMetrics(r)
}

// SetPlacementPolicy installs a pluggable replica placement policy (the
// paper: "we implement a pluggable replica placement strategy for HDFS").
func (c *Cluster) SetPlacementPolicy(p Policy) { c.placement = p }

// PlacementPolicy returns the installed policy.
func (c *Cluster) PlacementPolicy() Policy { return c.placement }

// Datanode returns the datanode with the given ID.
func (c *Cluster) Datanode(id DatanodeID) *Datanode { return c.datanodes[id] }

// Datanodes returns all datanodes (index == DatanodeID).
func (c *Cluster) Datanodes() []*Datanode { return c.datanodes }

// NumDatanodes returns the cluster size.
func (c *Cluster) NumDatanodes() int { return len(c.datanodes) }

// ActiveDatanodes lists datanodes in the given state.
func (c *Cluster) inState(s NodeState) []DatanodeID {
	var out []DatanodeID
	for _, d := range c.datanodes {
		if d.State == s {
			out = append(out, d.ID)
		}
	}
	return out
}

// Active returns the active datanode IDs.
func (c *Cluster) Active() []DatanodeID { return c.inState(StateActive) }

// Standby returns the standby datanode IDs.
func (c *Cluster) Standby() []DatanodeID { return c.inState(StateStandby) }

// File returns the INode for path, or nil.
func (c *Cluster) File(path string) *INode { return c.files[path] }

// FilePaths returns every file path in the namespace, sorted. The slice is
// memoized until the namespace changes — the judge calls this every pass —
// so callers must not mutate it.
func (c *Cluster) FilePaths() []string {
	if c.pathsCache == nil {
		c.pathsCache = make([]string, 0, len(c.files))
		for p := range c.files {
			c.pathsCache = append(c.pathsCache, p)
		}
		sort.Strings(c.pathsCache)
	}
	return c.pathsCache
}

// Files returns the number of files.
func (c *Cluster) Files() int { return len(c.files) }

// Block returns block metadata (nil for unknown or deleted blocks).
func (c *Cluster) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(c.blocks) {
		return nil
	}
	return c.blocks[id]
}

// Replicas returns the datanodes holding block id (do not mutate).
func (c *Cluster) Replicas(id BlockID) []DatanodeID {
	if id < 0 || int(id) >= len(c.replicas) {
		return nil
	}
	return c.replicas[id]
}

// LiveBlocks returns the number of blocks currently in the block map.
func (c *Cluster) LiveBlocks() int { return c.liveBlocks }

// BlockReadCount returns how many reads block id has served since the
// cluster (or its restore) started — ranged reads count like whole-block
// ones. Zero for unknown or deleted blocks.
func (c *Cluster) BlockReadCount(id BlockID) int64 {
	if id < 0 || int(id) >= len(c.readCounts) {
		return 0
	}
	return c.readCounts[id]
}

// FileBlockReads sums the per-block read tallies of a file's data blocks —
// the read-accounting view the partial-read scenarios assert against.
func (c *Cluster) FileBlockReads(path string) int64 {
	f := c.files[path]
	if f == nil {
		return 0
	}
	var sum int64
	for _, bid := range f.Blocks {
		sum += c.BlockReadCount(bid)
	}
	return sum
}

// fileOf resolves a block's owning file through the interned file table
// (nil once the file is deleted).
func (c *Cluster) fileOf(b *Block) *INode {
	if b.fileID < 0 || b.fileID >= len(c.fileByID) {
		return nil
	}
	return c.fileByID[b.fileID]
}

// registerFile interns f and installs it in the namespace.
func (c *Cluster) registerFile(f *INode) {
	f.id = len(c.fileByID)
	c.fileByID = append(c.fileByID, f)
	c.files[f.Path] = f
	c.pathsCache = nil
	c.jlog(auditlog.Entry{Op: auditlog.OpFileAdd, Path: f.Path, File: f.id,
		Size: f.Size, Target: f.TargetRepl})
}

// addBlock registers a freshly minted block (its ID must be the next in
// sequence) in the dense block map.
func (c *Cluster) addBlock(b *Block) {
	if b.ID != c.nextBlock {
		panic(fmt.Sprintf("hdfs: block %d minted out of sequence (next %d)", b.ID, c.nextBlock))
	}
	c.nextBlock++
	c.blocks = append(c.blocks, b)
	c.replicas = append(c.replicas, nil)
	c.readCounts = append(c.readCounts, 0)
	c.liveBlocks++
	c.reassessBlock(b)
	c.jlog(auditlog.Entry{Op: auditlog.OpBlockAdd, Block: int64(b.ID), File: b.fileID,
		Size: b.Size, Index: b.Index, Flag: b.Parity, Group: b.Group})
}

// dropBlock removes a block whose replicas have already been detached.
func (c *Cluster) dropBlock(id BlockID) {
	if c.blocks[id] == nil {
		return
	}
	c.blocks[id] = nil
	c.replicas[id] = nil
	c.readCounts[id] = 0
	c.liveBlocks--
	delete(c.underSet, id)
	c.jlog(auditlog.Entry{Op: auditlog.OpBlockDrop, Block: int64(id)})
}

// ReplicationOf returns the current replica count of a file's first block
// (files keep uniform replication in this model), or 0 for unknown paths.
func (c *Cluster) ReplicationOf(path string) int {
	f := c.files[path]
	if f == nil || len(f.Blocks) == 0 {
		return 0
	}
	return len(c.replicas[f.Blocks[0]])
}

// TotalUsed returns bytes stored across all datanodes (Figure 5's storage
// utilization).
func (c *Cluster) TotalUsed() float64 {
	var sum float64
	for _, d := range c.datanodes {
		sum += d.Used
	}
	return sum
}

// ActiveReads returns the number of file reads in flight; ERMS's idle probe
// uses it.
func (c *Cluster) ActiveReads() int { return c.activeReads }

// OnBlockRead registers a callback fired when a block read completes
// admission and begins streaming (ERMS's CEP feed).
func (c *Cluster) OnBlockRead(fn func(BlockReadEvent)) {
	c.onBlockRead = append(c.onBlockRead, fn)
}

// OnDatanodeDown registers a callback fired when a datanode dies — with
// heartbeats enabled, that is when DeadTimeout expires, not when the
// process crashes.
func (c *Cluster) OnDatanodeDown(fn func(DatanodeID)) {
	c.onDeadNode = append(c.onDeadNode, fn)
}

// OnDatanodeUp registers a callback fired when a datanode (re)joins
// service: Restart of a dead node or Commission of a standby one. The
// manager uses it to refresh ads and retry repairs that previously found
// no target.
func (c *Cluster) OnDatanodeUp(fn func(DatanodeID)) {
	c.onNodeUp = append(c.onNodeUp, fn)
}

// OnCorruptReplica registers a callback fired when a corrupt replica is
// detected (by the scrubber or a failed read checksum). The replica has
// already been quarantined when the callback runs, unless it was the
// block's last copy.
func (c *Cluster) OnCorruptReplica(fn func(BlockID, DatanodeID)) {
	c.onCorrupt = append(c.onCorrupt, fn)
}

// OnSafeMode registers a callback fired on every safe-mode transition; the
// argument is true on entry, false on exit. The manager uses exit to
// release repair decisions deferred while the namenode was degraded.
func (c *Cluster) OnSafeMode(fn func(bool)) {
	c.onSafeMode = append(c.onSafeMode, fn)
}

// clientIP fabricates a stable client address for audit records. Negative
// node IDs (no locality hint) map to the namenode's address.
func (c *Cluster) clientIP(n topology.NodeID) string {
	if n < 0 || int(n) >= c.topo.NumNodes() {
		return "10.0.0.1"
	}
	return fmt.Sprintf("10.%d.0.%d", c.topo.Rack(n), int(n))
}

// CreateFile installs a file of the given size with replication repl
// (0 means the cluster default), placing replicas with the current policy.
// Creation is instantaneous (bootstrap); use it to preload datasets. The
// writer hint places the first replica on that node per HDFS semantics
// (pass -1 for no locality hint).
func (c *Cluster) CreateFile(path string, size float64, repl int, writer topology.NodeID) (*INode, error) {
	if err := c.writable(); err != nil {
		return nil, err
	}
	if _, ok := c.files[path]; ok {
		return nil, fmt.Errorf("hdfs: file %q exists", path)
	}
	if size <= 0 {
		return nil, fmt.Errorf("hdfs: file size must be positive")
	}
	if repl <= 0 {
		repl = c.cfg.DefaultReplication
	}
	f := &INode{
		Path:       path,
		Size:       size,
		TargetRepl: repl,
		CreatedAt:  c.clock.Now(),
	}
	c.registerFile(f)
	nBlocks := int(size / c.cfg.BlockSize)
	if float64(nBlocks)*c.cfg.BlockSize < size {
		nBlocks++
	}
	for i := 0; i < nBlocks; i++ {
		bs := c.cfg.BlockSize
		if i == nBlocks-1 {
			bs = size - float64(nBlocks-1)*c.cfg.BlockSize
		}
		b := &Block{ID: c.nextBlock, File: path, Index: i, Size: bs, fileID: f.id}
		c.addBlock(b)
		f.Blocks = append(f.Blocks, b.ID)
		targets := c.placement.ChooseTargets(c, b, repl, DatanodeID(writer), nil)
		if len(targets) == 0 {
			c.unwindCreate(f)
			return nil, fmt.Errorf("hdfs: no targets for block %d of %q", b.ID, path)
		}
		for _, t := range targets {
			c.attachReplica(b, t)
		}
	}
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: c.clientIP(writer), Cmd: auditlog.CmdCreate, Src: path,
	})
	return f, nil
}

// unwindCreate rolls back a partially built CreateFile so a placement
// failure does not leak orphan blocks into the block map.
func (c *Cluster) unwindCreate(f *INode) {
	for _, bid := range f.Blocks {
		b := c.blocks[bid]
		for _, dn := range append([]DatanodeID(nil), c.replicas[bid]...) {
			c.detachReplica(b, dn)
		}
		c.dropBlock(bid)
	}
	delete(c.files, f.Path)
	c.fileByID[f.id] = nil
	c.pathsCache = nil
	c.jlog(auditlog.Entry{Op: auditlog.OpFileDrop, File: f.id, Path: f.Path})
}

// DeleteFile removes a file and frees its replicas.
func (c *Cluster) DeleteFile(path string) error {
	if err := c.writable(); err != nil {
		return err
	}
	f := c.files[path]
	if f == nil {
		return fmt.Errorf("hdfs: no such file %q", path)
	}
	for _, ids := range [][]BlockID{f.Blocks, f.Parity} {
		for _, bid := range ids {
			b := c.blocks[bid]
			for _, dn := range append([]DatanodeID(nil), c.replicas[bid]...) {
				c.detachReplica(b, dn)
			}
			c.dropBlock(bid)
		}
	}
	delete(c.files, path)
	c.fileByID[f.id] = nil
	c.pathsCache = nil
	c.jlog(auditlog.Entry{Op: auditlog.OpFileDrop, File: f.id, Path: path})
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: "10.0.0.1", Cmd: auditlog.CmdDelete, Src: path,
	})
	return nil
}

// Rename moves a file to a new path. Like the real namenode operation it
// is metadata-only and instantaneous; blocks stay where they are. The
// audit log records cmd=rename with both paths so downstream consumers
// (the ERMS judge migrates its per-file heat state) can follow the move.
func (c *Cluster) Rename(src, dst string) error {
	if err := c.writable(); err != nil {
		return err
	}
	f := c.files[src]
	if f == nil {
		return fmt.Errorf("hdfs: no such file %q", src)
	}
	if _, ok := c.files[dst]; ok {
		return fmt.Errorf("hdfs: destination %q exists", dst)
	}
	delete(c.files, src)
	f.Path = dst
	c.files[dst] = f
	c.pathsCache = nil
	for _, ids := range [][]BlockID{f.Blocks, f.Parity} {
		for _, bid := range ids {
			c.blocks[bid].File = dst
		}
	}
	c.jlog(auditlog.Entry{Op: auditlog.OpRename, File: f.id, Path: src, Dst: dst})
	c.audit.Append(auditlog.Record{
		Time: c.clock.Now(), Allowed: true, UGI: "hadoop",
		IP: "10.0.0.1", Cmd: auditlog.CmdRename, Src: src, Dst: dst,
	})
	return nil
}

// attachReplica registers a replica on dn (metadata + space). A freshly
// landed copy is pristine, so any corruption flag from a previous
// incarnation of the replica is cleared.
func (c *Cluster) attachReplica(b *Block, dn DatanodeID) {
	// A copy can land after its file was deleted: block IDs are never
	// reused, so pointer identity against the block map is exact. The
	// landed bytes belong to a dead block — discard them, exactly as a
	// real datanode invalidates an unknown block on its next report.
	// Attaching instead would leave the node's block set pointing at a
	// nil block-map entry, which the next declareDead walk dereferences.
	if c.blocks[b.ID] != b {
		return
	}
	d := c.datanodes[dn]
	if d.blocks.Has(b.ID) {
		return
	}
	d.blocks.Add(b.ID)
	d.Used += b.Size
	delete(d.corrupt, b.ID)
	delete(d.reported, b.ID)
	c.replicas[b.ID] = append(c.replicas[b.ID], dn)
	c.reassessBlock(b)
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpReplicaAdd, Block: int64(b.ID), Node: int(dn)})
}

// detachReplica removes a replica from dn.
func (c *Cluster) detachReplica(b *Block, dn DatanodeID) {
	d := c.datanodes[dn]
	if !d.blocks.Has(b.ID) {
		return
	}
	d.blocks.Remove(b.ID)
	d.Used -= b.Size
	delete(d.corrupt, b.ID)
	delete(d.reported, b.ID)
	reps := c.replicas[b.ID]
	for i, r := range reps {
		if r == dn {
			c.replicas[b.ID] = append(reps[:i], reps[i+1:]...)
			break
		}
	}
	c.reassessBlock(b)
	c.reindexNode(d)
	c.jlog(auditlog.Entry{Op: auditlog.OpReplicaDrop, Block: int64(b.ID), Node: int(dn)})
}
