package hdfs

import (
	"testing"
	"time"

	"erms/internal/sim"
	"erms/internal/topology"
)

func TestWriteFileCreatesReplicatedBlocks(t *testing.T) {
	e, c := newCluster(t)
	var res *WriteResult
	c.WriteFile(0, "/w", 192*mb, 3, func(r *WriteResult) { res = r })
	e.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("write: %+v", res)
	}
	f := c.File("/w")
	if f == nil || len(f.Blocks) != 3 {
		t.Fatalf("blocks = %v", f)
	}
	for _, bid := range f.Blocks {
		if len(c.Replicas(bid)) != 3 {
			t.Fatalf("block %d has %d replicas", bid, len(c.Replicas(bid)))
		}
	}
	if c.TotalUsed() != 3*192*mb {
		t.Fatalf("used = %v MB", c.TotalUsed()/mb)
	}
	if res.Bytes != 192*mb || res.ThroughputMBps() <= 0 {
		t.Fatalf("result: %+v", res)
	}
	checkConsistency(t, c)
}

func TestWriteSlowerThanLocalRead(t *testing.T) {
	// A pipelined triplicated write touches three disks and crosses racks,
	// so it cannot beat a node-local single-replica read of the same size.
	e, c := newCluster(t)
	var wr *WriteResult
	c.WriteFile(0, "/w", 128*mb, 3, func(r *WriteResult) { wr = r })
	e.Run()
	c.CreateFile("/r", 128*mb, 1, 5)
	var rd *ReadResult
	c.ReadFile(5, "/r", func(r *ReadResult) { rd = r })
	e.Run()
	if wr.Duration() < rd.Duration() {
		t.Fatalf("write %v faster than local read %v", wr.Duration(), rd.Duration())
	}
}

func TestWriteValidation(t *testing.T) {
	e, c := newCluster(t)
	c.CreateFile("/exists", 64*mb, 3, 0)
	var errs []error
	c.WriteFile(0, "/exists", 64*mb, 3, func(r *WriteResult) { errs = append(errs, r.Err) })
	c.WriteFile(0, "/zero", 0, 3, func(r *WriteResult) { errs = append(errs, r.Err) })
	e.Run()
	if len(errs) != 2 || errs[0] == nil || errs[1] == nil {
		t.Fatalf("errs = %v", errs)
	}
}

func TestExternalWriter(t *testing.T) {
	e, c := newCluster(t)
	var res *WriteResult
	c.WriteFile(ExternalClient, "/up", 64*mb, 3, func(r *WriteResult) { res = r })
	e.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := c.ReplicationOf("/up"); got != 3 {
		t.Fatalf("replication = %d", got)
	}
}

func TestWriteAuditsCreate(t *testing.T) {
	e, c := newCluster(t)
	c.WriteFile(1, "/w", 64*mb, 2, nil)
	e.Run()
	recs := c.Audit().Records()
	if len(recs) == 0 || recs[0].Cmd != "create" || recs[0].Src != "/w" {
		t.Fatalf("audit = %v", recs)
	}
}

func TestConcurrentWritesContend(t *testing.T) {
	// Two writers into the same pipeline head share its disk: slower than
	// one writer alone.
	solo := func() time.Duration {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		c := New(e, Config{Topology: topo})
		var d time.Duration
		c.WriteFile(0, "/a", 256*mb, 3, func(r *WriteResult) { d = r.Duration() })
		e.Run()
		return d
	}()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	c := New(e, Config{Topology: topo})
	var d1 time.Duration
	c.WriteFile(0, "/a", 256*mb, 3, func(r *WriteResult) { d1 = r.Duration() })
	c.WriteFile(0, "/b", 256*mb, 3, nil)
	e.Run()
	if d1 <= solo {
		t.Fatalf("contended write %v not slower than solo %v", d1, solo)
	}
}

func TestPipelinePathHasNoDuplicateLinks(t *testing.T) {
	_, c := newCluster(t)
	b := &Block{ID: c.nextBlock, File: "/x", Size: 64 * mb, fileID: -1}
	c.addBlock(b)
	defer c.dropBlock(b.ID)
	for _, client := range []topology.NodeID{ExternalClient, 0, 7} {
		targets := []DatanodeID{0, 6, 7}
		path := c.pipelinePath(client, targets)
		seen := map[topology.LinkID]bool{}
		for _, l := range path {
			if seen[l] {
				t.Fatalf("duplicate link %d in pipeline path for client %d", l, client)
			}
			seen[l] = true
		}
		if len(path) == 0 {
			t.Fatal("empty pipeline path")
		}
	}
}
