// Package sweep runs many independent, individually deterministic
// simulations concurrently and merges their results in a stable order.
//
// Every ERMS experiment is a single-threaded discrete-event simulation:
// one run is deterministic by construction, but multi-run workloads —
// every figure behind `figures -fig all`, the 25-seed invariant storm,
// threshold grids — are embarrassingly parallel across runs. The sweep
// engine is the one place that parallelism lives: a worker pool executes
// cells (each building its own system, never sharing simulator state) and
// results are merged in submission order, so the merged output is
// byte-identical regardless of worker count or OS scheduling. That is the
// repo's determinism contract extended across cores; see DESIGN.md §11
// for what package state may and may not exist to keep it true.
//
// Wall-clock and heap measurements are recorded per cell but deliberately
// kept out of Merged output — timing is the one thing that legitimately
// varies between runs, so it travels on the side (TimingTable).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"erms/internal/metrics"
)

// Task is one sweep cell: a named, self-contained unit of work. Run must
// build all of its own state (engine, cluster, workload) — cells execute
// concurrently and may share nothing mutable. The returned string is the
// cell's contribution to the merged output; it must depend only on the
// cell's inputs, never on wall-clock time or scheduling.
type Task struct {
	Name string
	Run  func(ctx context.Context) (string, error)
}

// Result is one cell's outcome. Index is the submission position — the
// merge key that keeps output stable under any scheduling.
type Result struct {
	Index  int
	Name   string
	Output string
	Err    error
	// Skipped marks cells that never ran: the context was canceled (or a
	// FailFast error occurred) before a worker picked them up. Err holds
	// the cancellation cause.
	Skipped bool
	// Wall is the cell's wall-clock run time. Not part of Merged output.
	Wall time.Duration
	// HeapBytes is the process-wide live heap (runtime.MemStats.HeapAlloc)
	// sampled when the cell finished — a per-cell peak proxy at
	// Parallel=1, indicative only when cells share the process. Not part
	// of Merged output.
	HeapBytes uint64
}

// Options tunes a sweep run.
type Options struct {
	// Parallel is the worker count; <= 0 means runtime.NumCPU().
	Parallel int
	// FailFast cancels the remaining grid on the first cell error. The
	// default (collect-all) runs every cell and reports every error.
	// Note that under FailFast the set of cells that got to run depends
	// on scheduling, so merged output is only worker-count-invariant for
	// clean runs; collect-all keeps it invariant even with (deterministic)
	// per-cell errors.
	FailFast bool
}

// Run executes the tasks on a worker pool and returns one Result per task,
// in submission order. The returned error is nil when every cell
// succeeded; otherwise it is the first error in submission order (which,
// because results are merged by index, is itself deterministic under
// collect-all). Cancelling ctx stops the sweep at cell granularity: cells
// already running finish, unstarted cells come back Skipped.
func Run(ctx context.Context, opts Options, tasks []Task) ([]Result, error) {
	results := make([]Result, len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				t := tasks[i]
				r := Result{Index: i, Name: t.Name}
				if err := ctx.Err(); err != nil {
					r.Err, r.Skipped = err, true
					results[i] = r
					continue
				}
				start := time.Now()
				r.Output, r.Err = t.Run(ctx)
				r.Wall = time.Since(start)
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				r.HeapBytes = ms.HeapAlloc
				results[i] = r
				if r.Err != nil && opts.FailFast {
					cancel()
				}
			}
		}()
	}
	for i := range tasks {
		indexes <- i
	}
	close(indexes)
	wg.Wait()

	for i := range results {
		if err := results[i].Err; err != nil {
			if results[i].Skipped {
				return results, fmt.Errorf("sweep: cell %q skipped: %w", results[i].Name, err)
			}
			return results, fmt.Errorf("sweep: cell %q: %w", results[i].Name, err)
		}
	}
	return results, nil
}

// Merged concatenates cell outputs in submission order — the
// deterministic, worker-count-invariant view of a sweep. Cells that
// errored contribute a stable one-line marker instead of output; skipped
// cells contribute a skip marker (only reachable under FailFast or
// external cancellation).
func Merged(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		switch {
		case r.Skipped:
			fmt.Fprintf(&b, "%s: skipped\n", r.Name)
		case r.Err != nil:
			fmt.Fprintf(&b, "%s: error: %v\n", r.Name, r.Err)
		default:
			b.WriteString(r.Output)
		}
	}
	return b.String()
}

// TimingTable renders the per-cell wall-clock and heap measurements —
// the side channel that is allowed to vary run to run. The footer rows
// give the serial-equivalent total (sum of cell walls) and the critical
// path (the slowest cell): sum/max bounds the speedup any worker count
// can achieve on this grid.
func TimingTable(results []Result) *metrics.Table {
	t := &metrics.Table{
		Title:   "Sweep timing (not part of merged output)",
		Columns: []string{"cell", "wall_s", "heap_MB"},
	}
	var sum, max time.Duration
	for _, r := range results {
		status := ""
		if r.Skipped {
			status = " [skipped]"
		} else if r.Err != nil {
			status = " [error]"
		}
		t.AddRowValues(r.Name+status, r.Wall.Seconds(), float64(r.HeapBytes)/(1<<20))
		sum += r.Wall
		if r.Wall > max {
			max = r.Wall
		}
	}
	t.AddRowValues("total (serial-equivalent)", sum.Seconds(), "")
	t.AddRowValues("critical path (slowest cell)", max.Seconds(), "")
	return t
}
