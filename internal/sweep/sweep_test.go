package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMergeOrderUnderShuffledCompletion is the heart of the contract:
// cells finish in a scrambled order (later cells sleep less), yet Merged
// output is exactly submission order.
func TestMergeOrderUnderShuffledCompletion(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewSource(7))
	sleeps := make([]time.Duration, n)
	for i := range sleeps {
		sleeps[i] = time.Duration(rng.Intn(20)) * time.Millisecond
	}
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("cell%02d", i),
			Run: func(ctx context.Context) (string, error) {
				time.Sleep(sleeps[i])
				return fmt.Sprintf("out%02d\n", i), nil
			},
		}
	}
	results, err := Run(context.Background(), Options{Parallel: 8}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "out%02d\n", i)
	}
	if got := Merged(results); got != want.String() {
		t.Errorf("merged output out of order:\n%s", got)
	}
	for i, r := range results {
		if r.Index != i || r.Name != fmt.Sprintf("cell%02d", i) {
			t.Errorf("result %d misplaced: %+v", i, r)
		}
		if r.Wall < 0 || r.Err != nil || r.Skipped {
			t.Errorf("result %d unexpected state: %+v", i, r)
		}
	}
}

// TestWorkerCountInvariance runs the same grid at -parallel 1 and
// -parallel 8 and asserts byte-identical merged output (the golden this
// repo's `make sweep` runs under -race).
func TestWorkerCountInvariance(t *testing.T) {
	g := Grid{
		Seeds: []int64{1, 2, 3},
		Axes: []Axis{
			{Name: "tau_M", Values: []float64{8, 4}},
			{Name: "eps", Values: []float64{0.25, 0.75}},
		},
	}
	// The cell body is deterministic but stateful: a seeded PRNG walk
	// whose result depends on every input.
	body := func(ctx context.Context, p Point) (string, error) {
		rng := rand.New(rand.NewSource(p.Seed + int64(p.Values[0]*1000) + int64(p.Values[1]*7)))
		sum := 0
		for i := 0; i < 1000; i++ {
			sum += rng.Intn(100)
		}
		return fmt.Sprintf("seed=%d tau=%g eps=%g sum=%d\n", p.Seed, p.Values[0], p.Values[1], sum), nil
	}
	var outs []string
	for _, par := range []int{1, 8} {
		results, err := Run(context.Background(), Options{Parallel: par}, g.Tasks(body))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, Merged(results))
	}
	if outs[0] != outs[1] {
		t.Errorf("merged output differs between -parallel 1 and -parallel 8:\n--- 1:\n%s--- 8:\n%s", outs[0], outs[1])
	}
	if !strings.HasPrefix(outs[0], "seed=1 tau=8 eps=0.25") {
		t.Errorf("first cell not in canonical grid order:\n%s", outs[0])
	}
}

// TestCollectAllRunsEverything: with the default policy every cell runs
// even when early ones fail, the first error (in submission order) is
// returned, and failing cells leave a stable marker in Merged output.
func TestCollectAllRunsEverything(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	tasks := make([]Task, 10)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("cell%d", i),
			Run: func(ctx context.Context) (string, error) {
				ran.Add(1)
				if i%3 == 1 { // cells 1, 4, 7 fail
					return "", boom
				}
				return fmt.Sprintf("ok%d\n", i), nil
			},
		}
	}
	results, err := Run(context.Background(), Options{Parallel: 4}, tasks)
	if !errors.Is(err, boom) || err == nil || !strings.Contains(err.Error(), "cell1") {
		t.Errorf("want first error from cell1, got %v", err)
	}
	if ran.Load() != 10 {
		t.Errorf("collect-all ran %d/10 cells", ran.Load())
	}
	m := Merged(results)
	if !strings.Contains(m, "cell4: error: boom\n") || !strings.Contains(m, "ok9\n") {
		t.Errorf("merged output missing markers:\n%s", m)
	}
}

// TestFailFastSkipsRemaining: a failing cell cancels the rest of the grid;
// unstarted cells come back Skipped with the cancellation as cause.
func TestFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	tasks := make([]Task, 50)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("cell%d", i),
			Run: func(ctx context.Context) (string, error) {
				ran.Add(1)
				if i == 0 {
					return "", boom
				}
				time.Sleep(time.Millisecond)
				return "ok\n", nil
			},
		}
	}
	results, err := Run(context.Background(), Options{Parallel: 2, FailFast: true}, tasks)
	if !errors.Is(err, boom) {
		t.Errorf("want boom, got %v", err)
	}
	if n := ran.Load(); n == 50 {
		t.Error("fail-fast still ran every cell")
	}
	skipped := 0
	for _, r := range results {
		if r.Skipped {
			skipped++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("skipped cell %s has cause %v", r.Name, r.Err)
			}
		}
	}
	if skipped == 0 {
		t.Error("no cells were skipped")
	}
}

// TestCancellationMidGrid: canceling the context stops the sweep at cell
// granularity and Run reports the context error.
func TestCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	tasks := make([]Task, 20)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("cell%d", i),
			Run: func(ctx context.Context) (string, error) {
				if i == 0 {
					started <- struct{}{}
					<-ctx.Done() // simulate a cell that observes cancellation
					return "", ctx.Err()
				}
				time.Sleep(2 * time.Millisecond)
				return "ok\n", nil
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := Run(ctx, Options{Parallel: 2}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
	skipped := 0
	for _, r := range results {
		if r.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("cancellation mid-grid skipped nothing")
	}
}

// TestGridCanonicalOrder pins the expansion order: seed-major, last axis
// fastest — the submission (hence merge) order documented in DESIGN.md.
func TestGridCanonicalOrder(t *testing.T) {
	g := Grid{
		Seeds: []int64{1, 2},
		Axes: []Axis{
			{Name: "a", Values: []float64{10, 20}},
			{Name: "b", Values: []float64{1, 2, 3}},
		},
	}
	if g.Size() != 12 {
		t.Fatalf("size = %d, want 12", g.Size())
	}
	points := g.Points()
	if len(points) != 12 {
		t.Fatalf("points = %d, want 12", len(points))
	}
	want := []string{
		"seed=1 a=10 b=1", "seed=1 a=10 b=2", "seed=1 a=10 b=3",
		"seed=1 a=20 b=1", "seed=1 a=20 b=2", "seed=1 a=20 b=3",
		"seed=2 a=10 b=1", "seed=2 a=10 b=2", "seed=2 a=10 b=3",
		"seed=2 a=20 b=1", "seed=2 a=20 b=2", "seed=2 a=20 b=3",
	}
	for i, p := range points {
		if got := g.Label(p); got != want[i] {
			t.Errorf("point %d label = %q, want %q", i, got, want[i])
		}
	}
	if v, ok := g.Value(points[4], "b"); !ok || v != 2 {
		t.Errorf("Value(b) = %v, %v", v, ok)
	}
	if _, ok := g.Value(points[0], "nope"); ok {
		t.Error("Value on unknown axis reported ok")
	}
}

// TestGridWithoutSeeds: a config-only grid omits the seed from labels and
// still expands.
func TestGridWithoutSeeds(t *testing.T) {
	g := Grid{Axes: []Axis{{Name: "r", Values: []float64{2, 4}}}}
	points := g.Points()
	if len(points) != 2 || g.Size() != 2 {
		t.Fatalf("points = %d size = %d, want 2", len(points), g.Size())
	}
	if got := g.Label(points[1]); got != "r=4" {
		t.Errorf("label = %q", got)
	}
	empty := Grid{}
	if pts := empty.Points(); len(pts) != 1 || empty.Label(pts[0]) != "cell" {
		t.Errorf("empty grid points = %v", pts)
	}
}

// TestGridEmptyAxisPanics: grids are static declarations; an empty axis is
// a programming error.
func TestGridEmptyAxisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty axis")
		}
	}()
	Grid{Axes: []Axis{{Name: "x"}}}.Points()
}

// TestTimingTable: measurements render, markers appear, and footer rows
// carry the serial-equivalent and critical-path totals.
func TestTimingTable(t *testing.T) {
	results := []Result{
		{Name: "a", Wall: 100 * time.Millisecond, HeapBytes: 4 << 20},
		{Name: "b", Wall: 300 * time.Millisecond, Err: errors.New("x")},
		{Name: "c", Skipped: true, Err: context.Canceled},
	}
	out := TimingTable(results).String()
	for _, want := range []string{"a", "b [error]", "c [skipped]", "total (serial-equivalent)", "critical path (slowest cell)", "0.4000", "0.3000"} {
		if !strings.Contains(out, want) {
			t.Errorf("timing table missing %q:\n%s", want, out)
		}
	}
}

// TestRunDefaults: zero Options pick NumCPU workers and an empty task list
// is a no-op.
func TestRunDefaults(t *testing.T) {
	if rs, err := Run(context.Background(), Options{}, nil); err != nil || len(rs) != 0 {
		t.Errorf("empty run: %v %v", rs, err)
	}
	rs, err := Run(context.Background(), Options{}, []Task{{
		Name: "only",
		Run:  func(context.Context) (string, error) { return "x", nil },
	}})
	if err != nil || len(rs) != 1 || rs[0].Output != "x" || rs[0].HeapBytes == 0 {
		t.Errorf("single run: %+v %v", rs, err)
	}
}
