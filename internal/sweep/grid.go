package sweep

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Axis is one swept configuration knob: a name (used in cell labels) and
// the values it takes. Grids are static declarations, so an axis with no
// values is a programming error (Points panics).
type Axis struct {
	Name   string
	Values []float64
}

// Grid is a sweep specification: the cartesian product of Seeds and every
// Axis. A nil/empty Seeds means one implicit seed-less row (Point.Seed 0,
// omitted from labels) — for grids that sweep only configuration.
type Grid struct {
	Seeds []int64
	Axes  []Axis
}

// Point is one cell of a grid: a seed plus one value per axis (parallel
// to Grid.Axes).
type Point struct {
	Seed    int64
	Values  []float64
	hasSeed bool
}

// Size returns the number of cells the grid expands to.
func (g Grid) Size() int {
	n := len(g.Seeds)
	if n == 0 {
		n = 1
	}
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Points expands the grid in its canonical order: seed-major, then each
// axis in declaration order with the last axis varying fastest (odometer
// order). The order is part of the determinism contract — it is the
// submission order, hence the merge order.
func (g Grid) Points() []Point {
	for _, a := range g.Axes {
		if len(a.Values) == 0 {
			panic(fmt.Sprintf("sweep: axis %q has no values", a.Name))
		}
	}
	seeds := g.Seeds
	hasSeed := true
	if len(seeds) == 0 {
		seeds = []int64{0}
		hasSeed = false
	}
	points := make([]Point, 0, g.Size())
	counters := make([]int, len(g.Axes))
	for _, seed := range seeds {
		for i := range counters {
			counters[i] = 0
		}
		for {
			vals := make([]float64, len(g.Axes))
			for i, a := range g.Axes {
				vals[i] = a.Values[counters[i]]
			}
			points = append(points, Point{Seed: seed, Values: vals, hasSeed: hasSeed})
			// Advance the odometer, last axis fastest.
			i := len(counters) - 1
			for ; i >= 0; i-- {
				counters[i]++
				if counters[i] < len(g.Axes[i].Values) {
					break
				}
				counters[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return points
}

// Label renders a point as "seed=3 tau_M=8 eps=0.5" using the grid's axis
// names — the cell name used in merged output and timing tables.
func (g Grid) Label(p Point) string {
	var parts []string
	if p.hasSeed {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	for i, a := range g.Axes {
		if i < len(p.Values) {
			parts = append(parts, a.Name+"="+strconv.FormatFloat(p.Values[i], 'g', -1, 64))
		}
	}
	if len(parts) == 0 {
		return "cell"
	}
	return strings.Join(parts, " ")
}

// Value returns the point's value on the named axis (or ok=false when the
// grid has no such axis) — so cell bodies can read knobs by name instead
// of positionally.
func (g Grid) Value(p Point, axis string) (v float64, ok bool) {
	for i, a := range g.Axes {
		if a.Name == axis && i < len(p.Values) {
			return p.Values[i], true
		}
	}
	return 0, false
}

// Tasks expands the grid into sweep tasks, one per point in canonical
// order, each running the given cell body.
func (g Grid) Tasks(run func(ctx context.Context, p Point) (string, error)) []Task {
	points := g.Points()
	tasks := make([]Task, len(points))
	for i, p := range points {
		p := p
		tasks[i] = Task{
			Name: g.Label(p),
			Run:  func(ctx context.Context) (string, error) { return run(ctx, p) },
		}
	}
	return tasks
}
