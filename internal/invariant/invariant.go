// Package invariant holds global-state oracles for the simulator: facts
// that must hold at every instant of every run, regardless of workload or
// chaos schedule. The scale work (1,000 datanodes / 1M files) replaced
// namenode-side linear scans with incremental indexes; these oracles are
// the safety net that catches index drift, leaked bookkeeping, or
// physically impossible states the unit tests would never construct.
//
// The checks are grouped into independent oracles so a failure names the
// subsystem that broke:
//
//   - storage: the cluster's own index cross-check (ConsistencyErrors)
//     plus replica-count bounds per block and file;
//   - durability: no block is unrecoverable (skippable for runs whose
//     chaos schedule legitimately destroys data);
//   - energy: the standby pool's activity books balance — pooled uptime
//     never exceeds wall clock and saved node-hours are non-negative;
//   - condor: scheduler slot accounting never leaks — machine slots,
//     running counts, job-state partition, and outcome stats agree;
//   - metrics: the read and storage counters tie out against HDFS state;
//   - safemode: the guard's entry/exit books balance and a probe mutation
//     bounces while it is up — safe mode never loses acknowledged data;
//   - epoch: journal-epoch fencing holds — entry epochs are monotone, the
//     writer never runs ahead of the journal, and no fenced write was
//     applied (exactly one unfenced writer per epoch);
//   - repair: the repair pipeline's concurrency never exceeds its
//     cluster-wide or per-node caps;
//   - restore (opt-in): a shadow cluster rebuilt from a checkpoint — and,
//     under a Watcher with a journal attached, from a baseline checkpoint
//     plus journal-tail replay — matches the live namenode exactly.
//
// Check runs every applicable oracle once; Watch re-runs them on a sim
// ticker for continuous checking during randomized runs.
package invariant

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"erms/internal/condor"
	"erms/internal/core"
	"erms/internal/hdfs"
	"erms/internal/sim"
)

// Target names the system under check. Cluster is required; Manager is
// optional (vanilla runs have none) and brings the energy and condor
// oracles with it.
type Target struct {
	Cluster *hdfs.Cluster
	Manager *core.Manager
	// AllowDataLoss skips the durability oracle for chaos schedules that
	// intentionally destroy every copy of a block.
	AllowDataLoss bool
	// MaxReplication, when positive, bounds every plain file's replication
	// target (the judge's τ-derived clamp). Zero skips the bound.
	MaxReplication int
	// CheckRestore enables the restore-equivalence oracle: at every check
	// the cluster is checkpointed, restored into a shadow cluster, and the
	// shadow must match the live state digest, pass consistency, and
	// re-encode to the identical bytes. When the cluster also carries a
	// journal, the Watcher additionally replays the tail since its baseline
	// checkpoint each tick and compares digests — the failover story
	// verified continuously. Requires NewShadow.
	CheckRestore bool
	// NewShadow builds an empty cluster on the given engine with the same
	// durable configuration as Cluster (the checkpoint's config digest
	// enforces it). Required when CheckRestore is set.
	NewShadow func(*sim.Engine) *hdfs.Cluster
}

// Check runs every applicable oracle once and returns the violations,
// sorted. Empty means the state is sound.
func Check(t Target) []string {
	var errs []string
	errs = append(errs, checkStorage(t)...)
	if !t.AllowDataLoss {
		errs = append(errs, checkDurability(t)...)
	}
	errs = append(errs, checkMetrics(t)...)
	errs = append(errs, checkSafeMode(t)...)
	errs = append(errs, checkEpoch(t)...)
	if t.CheckRestore {
		errs = append(errs, checkRestore(t)...)
	}
	if t.Manager != nil {
		errs = append(errs, checkEnergy(t)...)
		errs = append(errs, checkCondor(t)...)
		errs = append(errs, checkRepairCaps(t)...)
	}
	sort.Strings(errs)
	return errs
}

// checkSafeMode asserts the safe-mode guard's books balance and that it
// actually guards: entries and exits alternate (their difference is the
// current state), and while the guard is up a probe mutation must bounce
// with ErrSafeMode leaving the namespace untouched — acknowledged data is
// never lost to a mutation that slipped through.
func checkSafeMode(t Target) []string {
	var errs []string
	c := t.Cluster
	m := c.Metrics()
	if m.SafeModeExits > m.SafeModeEntries {
		errs = append(errs, fmt.Sprintf("safemode: %d exits exceed %d entries", m.SafeModeExits, m.SafeModeEntries))
	}
	open := m.SafeModeEntries - m.SafeModeExits
	if open != 0 && open != 1 {
		errs = append(errs, fmt.Sprintf("safemode: %d entries - %d exits = %d, want 0 or 1",
			m.SafeModeEntries, m.SafeModeExits, open))
	}
	if inSM := c.InSafeMode(); inSM != (open == 1) {
		errs = append(errs, fmt.Sprintf("safemode: InSafeMode()=%v but entry/exit counters say %v", inSM, open == 1))
	}
	if c.InSafeMode() {
		before := len(c.FilePaths())
		_, err := c.CreateFile("/invariant/safemode-probe", 1, 1, -1)
		if !errors.Is(err, hdfs.ErrSafeMode) {
			errs = append(errs, fmt.Sprintf("safemode: probe create in safe mode returned %v, want ErrSafeMode", err))
		}
		if after := len(c.FilePaths()); after != before {
			errs = append(errs, fmt.Sprintf("safemode: probe create mutated the namespace (%d -> %d files)", before, after))
		}
	}
	return errs
}

// checkEpoch asserts the journal-epoch fence: the writer's epoch never
// runs ahead of the journal's, journaled entries carry non-decreasing
// epochs bounded by the journal's current one, and no fenced write was
// ever applied ("exactly one unfenced writer per epoch").
func checkEpoch(t Target) []string {
	var errs []string
	c := t.Cluster
	if n := c.Metrics().FencedWritesApplied; n != 0 {
		errs = append(errs, fmt.Sprintf("epoch: %d fenced writes were applied to durable state", n))
	}
	j := c.Journal()
	if j == nil {
		return errs
	}
	if c.Epoch() > j.Epoch() {
		errs = append(errs, fmt.Sprintf("epoch: cluster epoch %d ahead of journal epoch %d", c.Epoch(), j.Epoch()))
	}
	prev := uint64(0)
	for _, e := range j.Entries() {
		if e.Epoch < prev {
			errs = append(errs, fmt.Sprintf("epoch: journal seq %d epoch %d decreased from %d", e.Seq, e.Epoch, prev))
			break
		}
		prev = e.Epoch
	}
	if prev > j.Epoch() {
		errs = append(errs, fmt.Sprintf("epoch: journaled epoch %d exceeds journal epoch %d", prev, j.Epoch()))
	}
	return errs
}

// checkRepairCaps asserts the repair pipeline's throttles actually bound
// it: active repair jobs within the cluster-wide cap, per-node inbound
// copies within the per-node cap, and the manager's own cap tripwire
// untripped.
func checkRepairCaps(t Target) []string {
	var errs []string
	m := t.Manager
	caps := m.RepairCaps()
	if caps.MaxStreams > 0 && m.ActiveRepairJobs() > caps.MaxStreams {
		errs = append(errs, fmt.Sprintf("repair: %d active repair jobs exceed MaxStreams %d",
			m.ActiveRepairJobs(), caps.MaxStreams))
	}
	if lim := caps.MaxStreamsPerNode; lim > 0 {
		for id, n := range m.NodeRepairStreams() {
			if n > lim {
				errs = append(errs, fmt.Sprintf("repair: node %d has %d inbound repair copies, cap %d", id, n, lim))
			}
		}
	}
	if n := m.CapViolations(); n != 0 {
		errs = append(errs, fmt.Sprintf("repair: per-node cap tripwire fired %d times", n))
	}
	if s := m.ActiveRepairStreams(); s < 0 {
		errs = append(errs, fmt.Sprintf("repair: active stream count %d went negative", s))
	}
	return errs
}

// checkStorage wraps the cluster's internal index cross-check and adds the
// externally-stated replication bounds: every block's live replica count
// within [0, nodes], every plain file's target within [1, max].
func checkStorage(t Target) []string {
	c := t.Cluster
	errs := c.ConsistencyErrors()
	nodes := c.NumDatanodes()
	for _, path := range c.FilePaths() {
		f := c.File(path)
		if f == nil {
			continue
		}
		if !f.Encoded {
			if f.TargetRepl < 1 {
				errs = append(errs, fmt.Sprintf("file %q has target replication %d < 1", path, f.TargetRepl))
			}
			if t.MaxReplication > 0 && f.TargetRepl > t.MaxReplication {
				errs = append(errs, fmt.Sprintf("file %q target replication %d exceeds max %d",
					path, f.TargetRepl, t.MaxReplication))
			}
		}
		for _, bid := range append(append([]hdfs.BlockID{}, f.Blocks...), f.Parity...) {
			if n := len(c.Replicas(bid)); n > nodes {
				errs = append(errs, fmt.Sprintf("block %d has %d replicas on a %d-node cluster", bid, n, nodes))
			}
		}
	}
	return errs
}

// checkDurability asserts no block has lost every path to its bytes: each
// needs a clean replica or enough live stripe members to reconstruct.
func checkDurability(t Target) []string {
	var errs []string
	for _, bid := range t.Cluster.UnrecoverableBlocks() {
		errs = append(errs, fmt.Sprintf("block %d is unrecoverable: no clean replica or stripe path", bid))
	}
	return errs
}

// checkEnergy balances the standby pool's activity books.
func checkEnergy(t Target) []string {
	var errs []string
	now := t.Cluster.Clock().Now()
	rep := t.Manager.Energy()
	if rep.PoolActiveTime < 0 || rep.PoolActiveTime > rep.AllActiveTime {
		errs = append(errs, fmt.Sprintf("energy: pooled uptime %s outside [0, %s]",
			rep.PoolActiveTime, rep.AllActiveTime))
	}
	if want := time.Duration(rep.PoolNodes) * now; rep.AllActiveTime != want {
		errs = append(errs, fmt.Sprintf("energy: always-on baseline %s != %d nodes x %s",
			rep.AllActiveTime, rep.PoolNodes, now))
	}
	if rep.SavedNodeHours < 0 {
		errs = append(errs, fmt.Sprintf("energy: negative saved node-hours %.3f", rep.SavedNodeHours))
	}
	for _, d := range t.Cluster.Datanodes() {
		up := d.ActiveTime + d.OpenActiveInterval(now)
		if up < 0 || up > now {
			errs = append(errs, fmt.Sprintf("energy: %s active time %s outside [0, %s]", d.Name, up, now))
		}
	}
	return errs
}

// checkCondor asserts the scheduler never leaks a slot or loses a job:
// machine busy counts, the running gauge, the job-state partition, and the
// outcome stats must all describe the same world.
func checkCondor(t Target) []string {
	var errs []string
	s := t.Manager.Scheduler()
	busy := 0
	for _, m := range s.Machines() {
		free := m.Free()
		if free < 0 || free > m.Slots {
			errs = append(errs, fmt.Sprintf("condor: machine %s free slots %d outside [0, %d]",
				m.Name, free, m.Slots))
		}
		busy += m.Slots - free
	}
	if busy != s.Running() {
		errs = append(errs, fmt.Sprintf("condor: %d busy slots but %d jobs running", busy, s.Running()))
	}
	jobs := s.Jobs()
	byState := map[condor.State]int{}
	for _, j := range jobs {
		byState[j.State]++
	}
	if byState[condor.StateRunning] != s.Running() {
		errs = append(errs, fmt.Sprintf("condor: %d jobs in StateRunning but Running()=%d",
			byState[condor.StateRunning], s.Running()))
	}
	if byState[condor.StatePending] != s.Pending() {
		errs = append(errs, fmt.Sprintf("condor: %d jobs in StatePending but Pending()=%d",
			byState[condor.StatePending], s.Pending()))
	}
	st := s.Stats()
	if st.Submitted != len(jobs) {
		errs = append(errs, fmt.Sprintf("condor: %d submissions logged but %d jobs known", st.Submitted, len(jobs)))
	}
	terminal := byState[condor.StateCompleted] + byState[condor.StateFailed] +
		byState[condor.StateRolledBack] + byState[condor.StateAborted]
	if terminal+s.Pending()+s.Running() != len(jobs) {
		errs = append(errs, fmt.Sprintf("condor: job states do not partition: %d terminal + %d pending + %d running != %d jobs",
			terminal, s.Pending(), s.Running(), len(jobs)))
	}
	if st.Completed != byState[condor.StateCompleted] {
		errs = append(errs, fmt.Sprintf("condor: stats say %d completed, states say %d",
			st.Completed, byState[condor.StateCompleted]))
	}
	if st.Aborted != byState[condor.StateAborted] {
		errs = append(errs, fmt.Sprintf("condor: stats say %d aborted, states say %d",
			st.Aborted, byState[condor.StateAborted]))
	}
	// EventFail fires for every finally-failed job, including those whose
	// rollback then moved them to StateRolledBack.
	if st.Failed != byState[condor.StateFailed]+byState[condor.StateRolledBack] {
		errs = append(errs, fmt.Sprintf("condor: stats say %d failed, states say %d failed + %d rolled back",
			st.Failed, byState[condor.StateFailed], byState[condor.StateRolledBack]))
	}
	return errs
}

// checkRestore round-trips the live cluster through the checkpoint format:
// a shadow cluster restored from a fresh checkpoint must carry the same
// state digest, pass its own consistency sweep, and re-encode to the
// identical bytes. Any drift means the format silently loses or invents
// state — exactly the bug class a failover would surface at the worst time.
func checkRestore(t Target) []string {
	if t.NewShadow == nil {
		return []string{"restore: CheckRestore set but NewShadow is nil"}
	}
	var buf bytes.Buffer
	if err := t.Cluster.WriteCheckpoint(&buf); err != nil {
		return []string{fmt.Sprintf("restore: checkpoint failed: %v", err)}
	}
	shadow := t.NewShadow(sim.NewEngine())
	if err := shadow.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		return []string{fmt.Sprintf("restore: shadow restore failed: %v", err)}
	}
	var errs []string
	if got, want := shadow.StateDigest(), t.Cluster.StateDigest(); got != want {
		errs = append(errs, fmt.Sprintf("restore: shadow digest %#x != live %#x", got, want))
	}
	for _, e := range shadow.ConsistencyErrors() {
		errs = append(errs, "restore: shadow inconsistent: "+e)
	}
	var again bytes.Buffer
	if err := shadow.WriteCheckpoint(&again); err != nil {
		errs = append(errs, fmt.Sprintf("restore: shadow re-encode failed: %v", err))
	} else if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		errs = append(errs, "restore: shadow re-encode is not byte-identical to the checkpoint it loaded")
	}
	return errs
}

// checkMetrics ties the cluster's counters to its actual state.
func checkMetrics(t Target) []string {
	var errs []string
	c := t.Cluster
	m := c.Metrics()
	if m.ReadsStarted != m.ReadsCompleted+m.ReadsFailed+c.ActiveReads() {
		errs = append(errs, fmt.Sprintf("metrics: %d reads started != %d completed + %d failed + %d active",
			m.ReadsStarted, m.ReadsCompleted, m.ReadsFailed, c.ActiveReads()))
	}
	if m.BlockReads != m.NodeLocalReads+m.RackLocalReads+m.RemoteReads {
		errs = append(errs, fmt.Sprintf("metrics: %d block reads != %d node-local + %d rack-local + %d remote",
			m.BlockReads, m.NodeLocalReads, m.RackLocalReads, m.RemoteReads))
	}
	var stored float64
	for _, path := range c.FilePaths() {
		f := c.File(path)
		for _, bid := range append(append([]hdfs.BlockID{}, f.Blocks...), f.Parity...) {
			if b := c.Block(bid); b != nil {
				stored += float64(len(c.Replicas(bid))) * b.Size
			}
		}
	}
	if diff := stored - c.TotalUsed(); diff > 1e-3 || diff < -1e-3 {
		errs = append(errs, fmt.Sprintf("metrics: stored bytes %.1f != sum over replicas %.1f",
			c.TotalUsed(), stored))
	}
	return errs
}

// Violation is one oracle failure observed by a Watcher, stamped with the
// virtual time it was seen.
type Violation struct {
	At  time.Duration
	Msg string
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.At, v.Msg) }

// Watcher re-checks a target on a fixed virtual-time period for the life
// of a run, accumulating violations instead of stopping at the first.
type Watcher struct {
	target Target
	ticker *sim.Ticker
	seen   map[string]bool
	viols  []Violation
	checks int
	// Baseline checkpoint for the journal-replay oracle: taken once when
	// the watch starts, replayed forward every tick.
	baseCkpt []byte
	baseSeq  uint64
}

// Watch starts continuous checking of t on the engine every period
// (default 30s). Each distinct violation message is recorded once, at the
// first tick it appears. Call Stop before reading results, or let the run
// end (the ticker dies with the event queue).
//
// When t.CheckRestore is set and the cluster carries a journal, the
// watcher also takes a baseline checkpoint now and, at every tick,
// rebuilds a shadow from baseline + journal tail — asserting that a
// standby commissioned at any instant of the run would match the live
// namenode exactly.
func Watch(e *sim.Engine, period time.Duration, t Target) *Watcher {
	if period <= 0 {
		period = 30 * time.Second
	}
	w := &Watcher{target: t, seen: map[string]bool{}}
	if t.CheckRestore && t.NewShadow != nil && t.Cluster.Journal() != nil {
		var buf bytes.Buffer
		if err := t.Cluster.WriteCheckpoint(&buf); err == nil {
			w.baseCkpt = buf.Bytes()
			w.baseSeq = t.Cluster.Journal().NextSeq()
		}
	}
	w.ticker = sim.NewTicker(e, period, func(now time.Duration) {
		w.sweep(now)
	})
	return w
}

// sweep runs one full oracle pass, recording each distinct violation once.
func (w *Watcher) sweep(now time.Duration) {
	w.checks++
	msgs := Check(w.target)
	if w.baseCkpt != nil {
		msgs = append(msgs, w.checkReplay()...)
	}
	for _, msg := range msgs {
		if !w.seen[msg] {
			w.seen[msg] = true
			w.viols = append(w.viols, Violation{At: now, Msg: msg})
		}
	}
}

// checkReplay rebuilds a shadow from the watch's baseline checkpoint plus
// the journal tail written since, and compares it to the live cluster —
// the standby-commission path exercised at the current instant.
func (w *Watcher) checkReplay() []string {
	tail := w.target.Cluster.Journal().Tail(w.baseSeq)
	if tail == nil {
		return []string{fmt.Sprintf("replay: journal tail from seq %d unavailable (truncated past the watch baseline)", w.baseSeq)}
	}
	shadow := w.target.NewShadow(sim.NewEngine())
	if err := shadow.RestoreCheckpoint(bytes.NewReader(w.baseCkpt)); err != nil {
		return []string{fmt.Sprintf("replay: baseline restore failed: %v", err)}
	}
	if err := shadow.ReplayJournal(tail); err != nil {
		return []string{fmt.Sprintf("replay: journal replay failed after %d entries: %v", len(tail), err)}
	}
	var errs []string
	if got, want := shadow.StateDigest(), w.target.Cluster.StateDigest(); got != want {
		errs = append(errs, fmt.Sprintf("replay: shadow digest %#x != live %#x after %d-entry tail", got, want, len(tail)))
	}
	for _, e := range shadow.ConsistencyErrors() {
		errs = append(errs, "replay: shadow inconsistent: "+e)
	}
	return errs
}

// Stop halts the periodic checking and runs one final check so end-state
// violations are never missed.
func (w *Watcher) Stop() {
	w.ticker.Stop()
	w.sweep(w.target.Cluster.Clock().Now())
}

// Violations returns every distinct violation observed, in first-seen
// order.
func (w *Watcher) Violations() []Violation { return w.viols }

// Checks returns how many oracle sweeps have run.
func (w *Watcher) Checks() int { return w.checks }
