package invariant_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/core"
	"erms/internal/experiments"
	"erms/internal/hdfs"
	"erms/internal/invariant"
	"erms/internal/sim"
	"erms/internal/sweep"
	"erms/internal/topology"
)

// stormSeed narrows the storm grid to one seed for reproduction:
//
//	go test ./internal/invariant/ -run TestRandomizedWorkloadStorm -storm-seed=7 -v
var stormSeed = flag.Int64("storm-seed", 0, "run a single storm seed instead of the full grid")

// TestRandomizedWorkloadStorm is the property suite: 25 seeds, each a
// random workload (creates, reads, replication changes, deletes) crossed
// with a random failure storm (kills with later restarts, spaced so
// re-replication can keep up and no block legitimately loses every copy),
// with every oracle checked continuously. The seeds fan out across cores
// on the sweep engine — each cell is its own deterministic simulation —
// and any violation reports the seed and the exact reproduction command.
func TestRandomizedWorkloadStorm(t *testing.T) {
	var seeds []int64
	if *stormSeed != 0 {
		seeds = []int64{*stormSeed}
	} else {
		for s := int64(1); s <= 25; s++ {
			seeds = append(seeds, s)
		}
	}
	grid := sweep.Grid{Seeds: seeds}
	points := grid.Points()
	type outcome struct {
		checks     int
		violations []invariant.Violation
	}
	outcomes := make([]outcome, len(points))
	tasks := make([]sweep.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = sweep.Task{
			Name: grid.Label(p),
			Run: func(ctx context.Context) (string, error) {
				checks, viols, err := runStorm(p.Seed)
				if err != nil {
					return "", err
				}
				outcomes[i] = outcome{checks: checks, violations: viols}
				return fmt.Sprintf("seed=%d: %d sweeps, %d violations\n",
					p.Seed, checks, len(viols)), nil
			},
		}
	}
	results, err := sweep.Run(context.Background(), sweep.Options{}, tasks)
	if err != nil {
		t.Fatalf("storm grid: %v", err)
	}
	t.Logf("storm grid:\n%s", sweep.Merged(results))
	for i, p := range points {
		o := outcomes[i]
		if o.checks < 10 {
			t.Errorf("seed %d: watcher ran only %d sweeps", p.Seed, o.checks)
		}
		for _, v := range o.violations {
			t.Errorf("seed %d: %s", p.Seed, v)
		}
		if len(o.violations) > 0 || o.checks < 10 {
			t.Logf("reproduce: go test ./internal/invariant/ -run TestRandomizedWorkloadStorm -storm-seed=%d -v", p.Seed)
		}
	}
}

// runStorm executes one seed's workload-plus-failure storm and returns the
// oracle outcome. It asserts nothing itself so the sweep engine can run
// many seeds concurrently; the caller turns violations into test failures.
func runStorm(seed int64) (checks int, violations []invariant.Violation, err error) {
	rng := rand.New(rand.NewSource(seed))

	// Mix deployments: most seeds exercise the full ERMS stack (judge,
	// condor, energy pool); every fifth runs vanilla HDFS so the oracles
	// also guard the baseline paths.
	var tb *experiments.Testbed
	var total int
	vanilla := seed%5 == 0
	if vanilla {
		total = 12 + rng.Intn(8)
		tb = experiments.NewVanilla(total)
	} else {
		active, standby := 12+rng.Intn(6), 3+rng.Intn(4)
		total = active + standby
		tb = experiments.NewERMS(active, standby, core.Thresholds{}, 2*time.Minute)
	}
	c, e := tb.Cluster, tb.Engine
	// Journal every mutation so the watcher's replay oracle re-commissions
	// a standby from baseline + tail at every tick.
	c.SetJournal(auditlog.NewJournal())

	target := invariant.Target{
		Cluster:        c,
		Manager:        tb.Manager,
		MaxReplication: core.DefaultThresholds().MaxReplication,
		// Vanilla HDFS has no repair agent: repeated kills legitimately
		// erode replicas, so only the ERMS runs assert durability.
		AllowDataLoss: vanilla,
		CheckRestore:  true,
		NewShadow: func(e2 *sim.Engine) *hdfs.Cluster {
			return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: total})})
		},
	}
	w := invariant.Watch(e, 15*time.Second, target)

	// Workload: a namespace of small files, then random reads, target
	// changes, and deletes across half an hour of virtual time.
	nFiles := 20 + rng.Intn(20)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/storm/f%02d", i)
		size := (32 + float64(rng.Intn(192))) * experiments.MB
		if _, cerr := c.CreateFile(p, size, 3, -1); cerr != nil {
			return 0, nil, fmt.Errorf("seed %d: create %s: %w", seed, p, cerr)
		}
		paths = append(paths, p)
	}
	horizon := 30 * time.Minute
	for i := 0; i < 150; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)))
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(10) {
		case 0: // replication target change: >= 2 so one dead node can
			// never hold the last copy, and within the judge's clamp
			n := 2 + rng.Intn(4)
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.SetReplication(p, n, hdfs.WholeAtOnce, nil)
				}
			})
		case 1: // delete (at most a few land; most paths keep existing)
			if rng.Intn(4) == 0 {
				e.Schedule(at, func() {
					if c.File(p) != nil {
						_ = c.DeleteFile(p)
					}
				})
			}
		default: // read from a random client node
			client := topology.NodeID(rng.Intn(c.NumDatanodes()))
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.ReadFile(client, p, nil)
				}
			})
		}
	}

	// Storm: sequential kill/restart pairs, each node down for under a
	// minute and kills spaced two minutes apart — far longer than repair
	// needs, so durability must hold throughout.
	at := time.Duration(rng.Int63n(int64(2 * time.Minute)))
	for at < horizon-3*time.Minute {
		id := hdfs.DatanodeID(rng.Intn(c.NumDatanodes()))
		down := 15*time.Second + time.Duration(rng.Int63n(int64(45*time.Second)))
		killAt, restartAt := at, at+down
		e.Schedule(killAt, func() { c.Kill(id) })
		e.Schedule(restartAt, func() { c.Restart(id) })
		at = restartAt + 2*time.Minute + time.Duration(rng.Int63n(int64(time.Minute)))
	}

	e.RunUntil(horizon)
	if tb.Manager != nil {
		tb.Manager.Stop()
	}
	w.Stop()
	return w.Checks(), w.Violations(), nil
}

// TestRestoreOracle exercises the restore-equivalence oracle standalone:
// a healthy cluster passes both the round-trip and replay checks, and the
// misconfigurations the oracle guards against are reported, not fatal.
func TestRestoreOracle(t *testing.T) {
	tb := experiments.NewVanilla(9)
	c, e := tb.Cluster, tb.Engine
	c.SetJournal(auditlog.NewJournal())
	shadow := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	}
	w := invariant.Watch(e, 30*time.Second, invariant.Target{
		Cluster: c, CheckRestore: true, NewShadow: shadow,
	})
	for i := 0; i < 4; i++ {
		if _, err := c.CreateFile(fmt.Sprintf("/r/f%d", i), 96*experiments.MB, 3, -1); err != nil {
			t.Fatal(err)
		}
	}
	e.Schedule(time.Minute, func() { c.SetReplication("/r/f0", 4, hdfs.WholeAtOnce, nil) })
	e.Schedule(2*time.Minute, func() { _ = c.DeleteFile("/r/f3") })
	e.RunUntil(5 * time.Minute)
	w.Stop()
	if viols := w.Violations(); len(viols) != 0 {
		t.Fatalf("healthy run reported: %v", viols)
	}
	if w.Checks() < 5 {
		t.Fatalf("watcher ran only %d sweeps", w.Checks())
	}

	// CheckRestore without a shadow factory is a reported misuse.
	if errs := invariant.Check(invariant.Target{Cluster: c, CheckRestore: true}); len(errs) != 1 {
		t.Fatalf("missing NewShadow reported %v", errs)
	}
	// A shadow factory with the wrong durable config fails the restore.
	wrong := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 12})})
	}
	errs := invariant.Check(invariant.Target{Cluster: c, CheckRestore: true, NewShadow: wrong})
	if len(errs) != 1 {
		t.Fatalf("mismatched shadow reported %v", errs)
	}
}

// TestWatcherCatchesDataLoss proves the oracle actually fires: a
// single-replica file whose only holder dies (no repair possible) must
// surface as a durability violation — recorded once, not once per sweep —
// and both the ticker path and the final Stop sweep must report it.
func TestWatcherCatchesDataLoss(t *testing.T) {
	tb := experiments.NewVanilla(6)
	c, e := tb.Cluster, tb.Engine
	if _, err := c.CreateFile("/v", 64*experiments.MB, 1, -1); err != nil {
		t.Fatal(err)
	}
	w := invariant.Watch(e, 0, invariant.Target{Cluster: c}) // 0 → default period
	holder := c.Replicas(c.File("/v").Blocks[0])[0]
	e.Schedule(time.Minute, func() { c.Kill(holder) })
	e.RunUntil(5 * time.Minute)
	w.Stop()

	viols := w.Violations()
	if len(viols) == 0 {
		t.Fatal("lost block produced no violation")
	}
	for _, v := range viols {
		if v.String() == "" || v.At == 0 {
			t.Errorf("malformed violation %+v", v)
		}
	}
	msgs := map[string]int{}
	for _, v := range viols {
		msgs[v.Msg]++
	}
	for m, n := range msgs {
		if n > 1 {
			t.Errorf("violation recorded %d times: %s", n, m)
		}
	}
	if direct := invariant.Check(invariant.Target{Cluster: c}); len(direct) == 0 {
		t.Error("direct Check missed the lost block")
	}
	if none := invariant.Check(invariant.Target{Cluster: c, AllowDataLoss: true}); len(none) != 0 {
		t.Errorf("AllowDataLoss still reported: %v", none)
	}
}
