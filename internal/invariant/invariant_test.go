package invariant_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"erms/internal/auditlog"
	"erms/internal/chaos"
	"erms/internal/core"
	"erms/internal/experiments"
	"erms/internal/hdfs"
	"erms/internal/invariant"
	"erms/internal/sim"
	"erms/internal/sweep"
	"erms/internal/topology"
	"erms/internal/workload"
)

// stormScenario picks the production-shaped backdrop for a storm seed:
// every third seed replays a scenario trace (rotating through the suite)
// instead of the inline random read mix, so the oracles also hold under
// tenant contention, diurnal swings, flash crowds, and pread-only traffic.
// Vanilla seeds keep the random mix: the scenarios exist to exercise the
// judge and the ranged-read path under failures.
func stormScenario(seed int64, vanilla bool) string {
	if vanilla || seed%3 != 0 {
		return ""
	}
	names := workload.ScenarioNames()
	return names[int(seed/3)%len(names)]
}

// stormSeed narrows the storm grid to one seed for reproduction:
//
//	go test ./internal/invariant/ -run TestRandomizedWorkloadStorm -storm-seed=7 -v
var stormSeed = flag.Int64("storm-seed", 0, "run a single storm seed instead of the full grid")

// TestRandomizedWorkloadStorm is the property suite: 25 seeds, each a
// random workload (creates, reads, replication changes, deletes) crossed
// with a random failure storm (kills with later restarts, spaced so
// re-replication can keep up and no block legitimately loses every copy),
// with every oracle checked continuously. The seeds fan out across cores
// on the sweep engine — each cell is its own deterministic simulation —
// and any violation reports the seed and the exact reproduction command.
func TestRandomizedWorkloadStorm(t *testing.T) {
	var seeds []int64
	if *stormSeed != 0 {
		seeds = []int64{*stormSeed}
	} else {
		for s := int64(1); s <= 25; s++ {
			seeds = append(seeds, s)
		}
	}
	grid := sweep.Grid{Seeds: seeds}
	points := grid.Points()
	type outcome struct {
		checks     int
		violations []invariant.Violation
	}
	outcomes := make([]outcome, len(points))
	tasks := make([]sweep.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = sweep.Task{
			Name: grid.Label(p),
			Run: func(ctx context.Context) (string, error) {
				checks, viols, err := runStorm(p.Seed)
				if err != nil {
					return "", err
				}
				outcomes[i] = outcome{checks: checks, violations: viols}
				return fmt.Sprintf("seed=%d: %d sweeps, %d violations\n",
					p.Seed, checks, len(viols)), nil
			},
		}
	}
	results, err := sweep.Run(context.Background(), sweep.Options{}, tasks)
	if err != nil {
		t.Fatalf("storm grid: %v", err)
	}
	t.Logf("storm grid:\n%s", sweep.Merged(results))
	for i, p := range points {
		o := outcomes[i]
		if o.checks < 10 {
			t.Errorf("seed %d: watcher ran only %d sweeps", p.Seed, o.checks)
		}
		for _, v := range o.violations {
			t.Errorf("seed %d: %s", p.Seed, v)
		}
		if len(o.violations) > 0 || o.checks < 10 {
			t.Logf("reproduce: go test ./internal/invariant/ -run TestRandomizedWorkloadStorm -storm-seed=%d -v", p.Seed)
		}
	}
}

// runStorm executes one seed's workload-plus-failure storm and returns the
// oracle outcome. It asserts nothing itself so the sweep engine can run
// many seeds concurrently; the caller turns violations into test failures.
func runStorm(seed int64) (checks int, violations []invariant.Violation, err error) {
	rng := rand.New(rand.NewSource(seed))

	// Mix deployments: most seeds exercise the full ERMS stack (judge,
	// condor, energy pool); every fifth runs vanilla HDFS so the oracles
	// also guard the baseline paths.
	var tb *experiments.Testbed
	var total int
	vanilla := seed%5 == 0
	if vanilla {
		total = 12 + rng.Intn(8)
		tb = experiments.NewVanilla(total)
	} else {
		active, standby := 12+rng.Intn(6), 3+rng.Intn(4)
		total = active + standby
		tb = experiments.NewERMS(active, standby, core.Thresholds{}, 2*time.Minute)
	}
	c, e := tb.Cluster, tb.Engine
	// Journal every mutation so the watcher's replay oracle re-commissions
	// a standby from baseline + tail at every tick.
	c.SetJournal(auditlog.NewJournal())

	target := invariant.Target{
		Cluster:        c,
		Manager:        tb.Manager,
		MaxReplication: core.DefaultThresholds().MaxReplication,
		// Vanilla HDFS has no repair agent: repeated kills legitimately
		// erode replicas, so only the ERMS runs assert durability.
		AllowDataLoss: vanilla,
		CheckRestore:  true,
		NewShadow: func(e2 *sim.Engine) *hdfs.Cluster {
			return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: total})})
		},
	}
	w := invariant.Watch(e, 15*time.Second, target)

	// Workload: a namespace of small files, then random reads, target
	// changes, and deletes across half an hour of virtual time.
	nFiles := 20 + rng.Intn(20)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/storm/f%02d", i)
		size := (32 + float64(rng.Intn(192))) * experiments.MB
		if _, cerr := c.CreateFile(p, size, 3, -1); cerr != nil {
			return 0, nil, fmt.Errorf("seed %d: create %s: %w", seed, p, cerr)
		}
		paths = append(paths, p)
	}
	horizon := 30 * time.Minute
	// Scenario backdrop: selected seeds overlay a production-shaped trace —
	// tenant Zipf mixes, diurnal swings, a flash crowd, or pure preads — on
	// top of the random churn, so the durability/consistency oracles also
	// hold while the judge is reacting to realistic traffic.
	if scn := stormScenario(seed, vanilla); scn != "" {
		trace, serr := workload.SynthesizeScenario(scn, seed, horizon-5*time.Minute)
		if serr != nil {
			return 0, nil, fmt.Errorf("seed %d: scenario %s: %w", seed, scn, serr)
		}
		workload.Preload(e, c, trace)
		workload.ReplayScenario(e, c, trace, nil)
	}
	for i := 0; i < 150; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)))
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(10) {
		case 0: // replication target change: >= 2 so one dead node can
			// never hold the last copy, and within the judge's clamp
			n := 2 + rng.Intn(4)
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.SetReplication(p, n, hdfs.WholeAtOnce, nil)
				}
			})
		case 1: // delete (at most a few land; most paths keep existing)
			if rng.Intn(4) == 0 {
				e.Schedule(at, func() {
					if c.File(p) != nil {
						_ = c.DeleteFile(p)
					}
				})
			}
		default: // read from a random client node
			client := topology.NodeID(rng.Intn(c.NumDatanodes()))
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.ReadFile(client, p, nil)
				}
			})
		}
	}

	// Storm: sequential kill/restart pairs, each node down for under a
	// minute and kills spaced two minutes apart — far longer than repair
	// needs, so durability must hold throughout.
	at := time.Duration(rng.Int63n(int64(2 * time.Minute)))
	for at < horizon-3*time.Minute {
		id := hdfs.DatanodeID(rng.Intn(c.NumDatanodes()))
		down := 15*time.Second + time.Duration(rng.Int63n(int64(45*time.Second)))
		killAt, restartAt := at, at+down
		e.Schedule(killAt, func() { c.Kill(id) })
		e.Schedule(restartAt, func() { c.Restart(id) })
		at = restartAt + 2*time.Minute + time.Duration(rng.Int63n(int64(time.Minute)))
	}

	e.RunUntil(horizon)
	if tb.Manager != nil {
		tb.Manager.Stop()
	}
	w.Stop()
	return w.Checks(), w.Violations(), nil
}

// TestRestoreOracle exercises the restore-equivalence oracle standalone:
// a healthy cluster passes both the round-trip and replay checks, and the
// misconfigurations the oracle guards against are reported, not fatal.
func TestRestoreOracle(t *testing.T) {
	tb := experiments.NewVanilla(9)
	c, e := tb.Cluster, tb.Engine
	c.SetJournal(auditlog.NewJournal())
	shadow := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 9})})
	}
	w := invariant.Watch(e, 30*time.Second, invariant.Target{
		Cluster: c, CheckRestore: true, NewShadow: shadow,
	})
	for i := 0; i < 4; i++ {
		if _, err := c.CreateFile(fmt.Sprintf("/r/f%d", i), 96*experiments.MB, 3, -1); err != nil {
			t.Fatal(err)
		}
	}
	e.Schedule(time.Minute, func() { c.SetReplication("/r/f0", 4, hdfs.WholeAtOnce, nil) })
	e.Schedule(2*time.Minute, func() { _ = c.DeleteFile("/r/f3") })
	e.RunUntil(5 * time.Minute)
	w.Stop()
	if viols := w.Violations(); len(viols) != 0 {
		t.Fatalf("healthy run reported: %v", viols)
	}
	if w.Checks() < 5 {
		t.Fatalf("watcher ran only %d sweeps", w.Checks())
	}

	// CheckRestore without a shadow factory is a reported misuse.
	if errs := invariant.Check(invariant.Target{Cluster: c, CheckRestore: true}); len(errs) != 1 {
		t.Fatalf("missing NewShadow reported %v", errs)
	}
	// A shadow factory with the wrong durable config fails the restore.
	wrong := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: 3, NodeCount: 12})})
	}
	errs := invariant.Check(invariant.Target{Cluster: c, CheckRestore: true, NewShadow: wrong})
	if len(errs) != 1 {
		t.Fatalf("mismatched shadow reported %v", errs)
	}
}

// TestWatcherCatchesDataLoss proves the oracle actually fires: a
// single-replica file whose only holder dies (no repair possible) must
// surface as a durability violation — recorded once, not once per sweep —
// and both the ticker path and the final Stop sweep must report it.
func TestWatcherCatchesDataLoss(t *testing.T) {
	tb := experiments.NewVanilla(6)
	c, e := tb.Cluster, tb.Engine
	if _, err := c.CreateFile("/v", 64*experiments.MB, 1, -1); err != nil {
		t.Fatal(err)
	}
	w := invariant.Watch(e, 0, invariant.Target{Cluster: c}) // 0 → default period
	holder := c.Replicas(c.File("/v").Blocks[0])[0]
	e.Schedule(time.Minute, func() { c.Kill(holder) })
	e.RunUntil(5 * time.Minute)
	w.Stop()

	viols := w.Violations()
	if len(viols) == 0 {
		t.Fatal("lost block produced no violation")
	}
	for _, v := range viols {
		if v.String() == "" || v.At == 0 {
			t.Errorf("malformed violation %+v", v)
		}
	}
	msgs := map[string]int{}
	for _, v := range viols {
		msgs[v.Msg]++
	}
	for m, n := range msgs {
		if n > 1 {
			t.Errorf("violation recorded %d times: %s", n, m)
		}
	}
	if direct := invariant.Check(invariant.Target{Cluster: c}); len(direct) == 0 {
		t.Error("direct Check missed the lost block")
	}
	if none := invariant.Check(invariant.Target{Cluster: c, AllowDataLoss: true}); len(none) != 0 {
		t.Errorf("AllowDataLoss still reported: %v", none)
	}
}

// TestDegradedStormSuite is the correlated-failure property suite: 25
// seeds, each crossing a foreground workload with node-crash windows,
// heartbeat flapping, silent corruption, and two zombie-primary drills in
// the first half of the run, then a correlated whole-rack outage long
// enough for the namenode to declare the rack dead — tripping safe mode —
// followed by the power coming back. Heartbeats, safe mode, journal-epoch
// fencing, and the throttled repair pipeline are all on, and every oracle
// (including the safemode/epoch/repair-cap ones) is checked continuously.
// The crash and outage windows are temporally disjoint by construction:
// with two-rack placement a rack outage can take 2 of 3 replicas, so an
// overlapping crash could legitimately kill the last copy, which is a
// different (allowed-loss) experiment.
func TestDegradedStormSuite(t *testing.T) {
	var seeds []int64
	if *stormSeed != 0 {
		seeds = []int64{*stormSeed}
	} else {
		for s := int64(1); s <= 25; s++ {
			seeds = append(seeds, s)
		}
	}
	grid := sweep.Grid{Seeds: seeds}
	points := grid.Points()
	outcomes := make([]degradedOutcome, len(points))
	tasks := make([]sweep.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = sweep.Task{
			Name: grid.Label(p),
			Run: func(ctx context.Context) (string, error) {
				o, err := runDegradedStorm(p.Seed)
				if err != nil {
					return "", err
				}
				outcomes[i] = o
				return fmt.Sprintf("seed=%d: %d sweeps, %d violations, safemode %d/%d, deferred %d, throttled %d, fenced %d\n",
					p.Seed, o.checks, len(o.violations), o.safeModeEntries, o.safeModeExits,
					o.deferred, o.throttled, o.fencedRejected), nil
			},
		}
	}
	results, err := sweep.Run(context.Background(), sweep.Options{}, tasks)
	if err != nil {
		t.Fatalf("degraded storm grid: %v", err)
	}
	t.Logf("degraded storm grid:\n%s", sweep.Merged(results))
	for i, p := range points {
		o := outcomes[i]
		bad := false
		fail := func(format string, args ...any) {
			t.Errorf("seed %d: %s", p.Seed, fmt.Sprintf(format, args...))
			bad = true
		}
		for _, v := range o.violations {
			fail("%s", v)
		}
		if o.checks < 10 {
			fail("watcher ran only %d sweeps", o.checks)
		}
		if o.safeModeEntries < 1 || o.safeModeExits < 1 {
			fail("safe mode entered %d / exited %d times, want >= 1 each", o.safeModeEntries, o.safeModeExits)
		}
		if o.inSafeMode {
			fail("still in safe mode at the horizon")
		}
		if o.deferred < 1 {
			fail("no repairs were deferred during safe mode (deferred=%d)", o.deferred)
		}
		if o.throttled < 1 {
			fail("no repairs were throttled by the stream cap (throttled=%d)", o.throttled)
		}
		if o.zombies != 2 {
			fail("%d zombie-primary drills applied, want 2", o.zombies)
		}
		if o.fencedRejected != 2*o.zombies {
			fail("%d fenced writes rejected, want %d (2 per zombie)", o.fencedRejected, 2*o.zombies)
		}
		if o.fencedApplied != 0 {
			fail("%d fenced writes applied, want 0", o.fencedApplied)
		}
		if o.recoverableLost != 0 {
			fail("%d recoverable blocks lost across failovers, want 0", o.recoverableLost)
		}
		if o.failoverErrs != 0 {
			fail("%d failovers errored or diverged", o.failoverErrs)
		}
		if bad {
			t.Logf("reproduce: go test ./internal/invariant/ -run TestDegradedStormSuite -storm-seed=%d -v", p.Seed)
		}
	}
}

type degradedOutcome struct {
	checks          int
	violations      []invariant.Violation
	safeModeEntries int
	safeModeExits   int
	inSafeMode      bool
	deferred        int
	throttled       int
	zombies         int
	fencedRejected  int
	fencedApplied   int
	recoverableLost int
	failoverErrs    int
}

// shiftPlan offsets every event of a plan by delta, so independently
// generated storm phases can be composed on one timeline.
func shiftPlan(p *chaos.Plan, delta time.Duration) *chaos.Plan {
	out := &chaos.Plan{Events: make([]chaos.Event, len(p.Events))}
	copy(out.Events, p.Events)
	for i := range out.Events {
		out.Events[i].At += delta
	}
	return out
}

// runDegradedStorm executes one seed of the degraded suite.
func runDegradedStorm(seed int64) (degradedOutcome, error) {
	rng := rand.New(rand.NewSource(seed))
	const nodes, racks = 18, 3
	e := sim.NewEngine()
	mk := func(e2 *sim.Engine) *hdfs.Cluster {
		return hdfs.New(e2, hdfs.Config{Topology: topology.New(topology.Config{Racks: racks, NodeCount: nodes})})
	}
	c := hdfs.New(e, hdfs.Config{
		Topology:  topology.New(topology.Config{Racks: racks, NodeCount: nodes}),
		Heartbeat: hdfs.HeartbeatConfig{Enabled: true, DeadTimeout: 2 * time.Minute},
		SafeMode:  hdfs.SafeModeConfig{Enabled: true, NodeThreshold: 0.75, Dwell: time.Minute},
	})
	c.SetJournal(auditlog.NewJournal())
	m := core.New(c, core.Config{
		Thresholds:  core.Thresholds{},
		JudgePeriod: 2 * time.Minute,
		Repair:      core.RepairConfig{MaxStreams: 4, MaxStreamsPerNode: 2},
		Scrub:       hdfs.ScrubConfig{Period: time.Minute},
	})
	fo, err := chaos.NewFailover(chaos.FailoverConfig{
		Engine: e, Cluster: c, NewStandby: mk, Interval: 5 * time.Minute,
	})
	if err != nil {
		return degradedOutcome{}, fmt.Errorf("seed %d: failover: %w", seed, err)
	}
	w := invariant.Watch(e, 15*time.Second, invariant.Target{
		Cluster: c, Manager: m,
		MaxReplication: core.DefaultThresholds().MaxReplication,
		CheckRestore:   true, NewShadow: mk,
	})

	// Workload: two-block files plus a read mix across the half hour.
	const horizon = 30 * time.Minute
	nFiles := 10 + rng.Intn(6)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/deg/f%02d", i)
		if _, cerr := c.CreateFile(p, 256*experiments.MB, 3, -1); cerr != nil {
			return degradedOutcome{}, fmt.Errorf("seed %d: create %s: %w", seed, p, cerr)
		}
		paths = append(paths, p)
	}
	for i := 0; i < 80; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)))
		p := paths[rng.Intn(len(paths))]
		client := topology.NodeID(rng.Intn(nodes))
		e.Schedule(at, func() {
			if c.File(p) != nil {
				c.ReadFile(client, p, nil)
			}
		})
	}
	// Scenario backdrop: every other seed layers a production-shaped trace
	// over the degraded cluster, so safe mode, throttled repair, and fencing
	// are exercised while tenants contend and preads hammer single blocks —
	// not only under the uniform read mix above. Reads that land inside the
	// rack outage are expected to fail; no outcome assertion counts them.
	if seed%2 == 0 {
		names := workload.ScenarioNames()
		scn := names[int(seed/2)%len(names)]
		trace, serr := workload.SynthesizeScenario(scn, seed, horizon-5*time.Minute)
		if serr != nil {
			return degradedOutcome{}, fmt.Errorf("seed %d: scenario %s: %w", seed, scn, serr)
		}
		workload.Preload(e, c, trace)
		workload.ReplayScenario(e, c, trace, nil)
	}

	// Phase 1 ([0, ~13m]): crashes shorter than the dead timeout, heartbeat
	// flapping, silent corruption, and two zombie-primary drills.
	var all []hdfs.DatanodeID
	for _, d := range c.Datanodes() {
		all = append(all, d.ID)
	}
	phase1 := chaos.Storm(chaos.StormConfig{
		Seed: seed, Duration: 12 * time.Minute, Nodes: all,
		Crashes: 3, Downtime: 90 * time.Second, MaxConcurrentDown: 1,
		Corruptions: 2, FlapNodes: 2, ZombiePrimaries: 2,
	})
	// Phase 2 (from 18m, disjoint from every phase-1 window): one correlated
	// rack outage lasting well past the dead timeout, then power-on.
	phase2 := shiftPlan(chaos.Storm(chaos.StormConfig{
		Seed: seed + 7919, Duration: time.Minute, Racks: []int{0, 1, 2},
		RackOutages: 1, RackOutageFor: 4 * time.Minute,
	}), 18*time.Minute)
	plan := &chaos.Plan{
		Events:   append(append([]chaos.Event{}, phase1.Events...), phase2.Events...),
		Failover: fo,
	}
	rep := plan.Schedule(e, c)

	e.RunUntil(horizon)
	m.Stop()
	fo.Stop()
	w.Stop()

	hm := c.Metrics()
	st := m.Stats()
	o := degradedOutcome{
		checks:          w.Checks(),
		violations:      w.Violations(),
		safeModeEntries: hm.SafeModeEntries,
		safeModeExits:   hm.SafeModeExits,
		inSafeMode:      c.InSafeMode(),
		deferred:        st.RepairsDeferred,
		throttled:       st.RepairsThrottled,
		zombies:         rep.PerKind["zombie-primary"],
		fencedApplied:   hm.FencedWritesApplied,
	}
	for _, r := range fo.Results() {
		o.recoverableLost += r.RecoverableLost
		o.fencedRejected += r.FencedRejected
		o.fencedApplied += r.FencedApplied
		if r.Err != nil || !r.DigestMatch || !r.ConsistencyOK {
			o.failoverErrs++
		}
	}
	return o, nil
}
