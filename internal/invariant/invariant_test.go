package invariant_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"erms/internal/core"
	"erms/internal/experiments"
	"erms/internal/hdfs"
	"erms/internal/invariant"
	"erms/internal/topology"
)

// TestRandomizedWorkloadStorm is the property suite: 25 seeds, each a
// random workload (creates, reads, replication changes, deletes) crossed
// with a random failure storm (kills with later restarts, spaced so
// re-replication can keep up and no block legitimately loses every copy),
// with every oracle checked continuously. Any violation reports the seed
// and the exact reproduction command.
func TestRandomizedWorkloadStorm(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runStorm(t, seed)
		})
	}
}

func runStorm(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	// Mix deployments: most seeds exercise the full ERMS stack (judge,
	// condor, energy pool); every fifth runs vanilla HDFS so the oracles
	// also guard the baseline paths.
	var tb *experiments.Testbed
	vanilla := seed%5 == 0
	if vanilla {
		tb = experiments.NewVanilla(12 + rng.Intn(8))
	} else {
		tb = experiments.NewERMS(12+rng.Intn(6), 3+rng.Intn(4), core.Thresholds{}, 2*time.Minute)
	}
	c, e := tb.Cluster, tb.Engine

	target := invariant.Target{
		Cluster:        c,
		Manager:        tb.Manager,
		MaxReplication: core.DefaultThresholds().MaxReplication,
		// Vanilla HDFS has no repair agent: repeated kills legitimately
		// erode replicas, so only the ERMS runs assert durability.
		AllowDataLoss: vanilla,
	}
	w := invariant.Watch(e, 15*time.Second, target)

	// Workload: a namespace of small files, then random reads, target
	// changes, and deletes across half an hour of virtual time.
	nFiles := 20 + rng.Intn(20)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/storm/f%02d", i)
		size := (32 + float64(rng.Intn(192))) * experiments.MB
		if _, err := c.CreateFile(p, size, 3, -1); err != nil {
			t.Fatalf("seed %d: create %s: %v", seed, p, err)
		}
		paths = append(paths, p)
	}
	horizon := 30 * time.Minute
	for i := 0; i < 150; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)))
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(10) {
		case 0: // replication target change: >= 2 so one dead node can
			// never hold the last copy, and within the judge's clamp
			n := 2 + rng.Intn(4)
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.SetReplication(p, n, hdfs.WholeAtOnce, nil)
				}
			})
		case 1: // delete (at most a few land; most paths keep existing)
			if rng.Intn(4) == 0 {
				e.Schedule(at, func() {
					if c.File(p) != nil {
						_ = c.DeleteFile(p)
					}
				})
			}
		default: // read from a random client node
			client := topology.NodeID(rng.Intn(c.NumDatanodes()))
			e.Schedule(at, func() {
				if c.File(p) != nil {
					c.ReadFile(client, p, nil)
				}
			})
		}
	}

	// Storm: sequential kill/restart pairs, each node down for under a
	// minute and kills spaced two minutes apart — far longer than repair
	// needs, so durability must hold throughout.
	at := time.Duration(rng.Int63n(int64(2 * time.Minute)))
	for at < horizon-3*time.Minute {
		id := hdfs.DatanodeID(rng.Intn(c.NumDatanodes()))
		down := 15*time.Second + time.Duration(rng.Int63n(int64(45*time.Second)))
		killAt, restartAt := at, at+down
		e.Schedule(killAt, func() { c.Kill(id) })
		e.Schedule(restartAt, func() { c.Restart(id) })
		at = restartAt + 2*time.Minute + time.Duration(rng.Int63n(int64(time.Minute)))
	}

	e.RunUntil(horizon)
	if tb.Manager != nil {
		tb.Manager.Stop()
	}
	w.Stop()

	if w.Checks() < 10 {
		t.Fatalf("seed %d: watcher ran only %d sweeps", seed, w.Checks())
	}
	for _, v := range w.Violations() {
		t.Errorf("seed %d: %s", seed, v)
	}
	if t.Failed() {
		t.Logf("reproduce: go test ./internal/invariant/ -run 'TestRandomizedWorkloadStorm/seed=%d' -v", seed)
	}
}

// TestWatcherCatchesDataLoss proves the oracle actually fires: a
// single-replica file whose only holder dies (no repair possible) must
// surface as a durability violation — recorded once, not once per sweep —
// and both the ticker path and the final Stop sweep must report it.
func TestWatcherCatchesDataLoss(t *testing.T) {
	tb := experiments.NewVanilla(6)
	c, e := tb.Cluster, tb.Engine
	if _, err := c.CreateFile("/v", 64*experiments.MB, 1, -1); err != nil {
		t.Fatal(err)
	}
	w := invariant.Watch(e, 0, invariant.Target{Cluster: c}) // 0 → default period
	holder := c.Replicas(c.File("/v").Blocks[0])[0]
	e.Schedule(time.Minute, func() { c.Kill(holder) })
	e.RunUntil(5 * time.Minute)
	w.Stop()

	viols := w.Violations()
	if len(viols) == 0 {
		t.Fatal("lost block produced no violation")
	}
	for _, v := range viols {
		if v.String() == "" || v.At == 0 {
			t.Errorf("malformed violation %+v", v)
		}
	}
	msgs := map[string]int{}
	for _, v := range viols {
		msgs[v.Msg]++
	}
	for m, n := range msgs {
		if n > 1 {
			t.Errorf("violation recorded %d times: %s", n, m)
		}
	}
	if direct := invariant.Check(invariant.Target{Cluster: c}); len(direct) == 0 {
		t.Error("direct Check missed the lost block")
	}
	if none := invariant.Check(invariant.Target{Cluster: c, AllowDataLoss: true}); len(none) != 0 {
		t.Errorf("AllowDataLoss still reported: %v", none)
	}
}
