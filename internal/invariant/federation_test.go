package invariant_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"erms"
	"erms/internal/invariant"
	"erms/internal/sweep"
)

// fakeShard is a Lister over a fixed path set.
type fakeShard []string

func (f fakeShard) FilePaths() []string { return f }

func TestCheckFederationOracle(t *testing.T) {
	owner := func(p string) int {
		if strings.HasPrefix(p, "/s1/") {
			return 1
		}
		return 0
	}
	exempt := func(p string) bool { return strings.HasPrefix(p, "/.fedmove/") }
	cases := []struct {
		name     string
		shards   []invariant.Lister
		expected map[string]bool
		want     int
		contains string
	}{
		{
			name:   "clean partition",
			shards: []invariant.Lister{fakeShard{"/a"}, fakeShard{"/s1/b"}},
		},
		{
			name:     "duplicate across shards",
			shards:   []invariant.Lister{fakeShard{"/a"}, fakeShard{"/a"}},
			want:     1,
			contains: "two shards",
		},
		{
			name:     "wrong owner",
			shards:   []invariant.Lister{fakeShard{"/s1/b"}, fakeShard{}},
			want:     1,
			contains: "router owns it to shard 1",
		},
		{
			name:   "staging paths exempt",
			shards: []invariant.Lister{fakeShard{}, fakeShard{"/.fedmove/s1/x", "/.fedmove/a"}},
		},
		{
			name:     "lost file",
			shards:   []invariant.Lister{fakeShard{}, fakeShard{}},
			expected: map[string]bool{"/a": true},
			want:     1,
			contains: "zero shards",
		},
		{
			name:     "resurrected file",
			shards:   []invariant.Lister{fakeShard{"/a"}, fakeShard{}},
			expected: map[string]bool{"/a": false},
			want:     1,
			contains: "resurrected",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := invariant.CheckFederation(invariant.FederationTarget{
				Shards: c.shards, Owner: owner, Exempt: exempt, Expected: c.expected,
			})
			if len(got) != c.want {
				t.Fatalf("violations = %v, want %d", got, c.want)
			}
			if c.want > 0 && !strings.Contains(got[0], c.contains) {
				t.Errorf("%q does not mention %q", got[0], c.contains)
			}
		})
	}
}

// TestCrossShardRenameStorm is the federation property suite: 25 seeds,
// each interleaving random cross-shard moves — many deliberately crashed
// between protocol steps, recovered through FailoverShard or a direct
// ResolveMoves — with creates, reads, deletes, global node kill/restart
// pairs, and per-shard snapshots, on a 4-shard system. After every
// recovery and at a steady cadence the cross-shard ownership oracle
// asserts no file is ever visible in two shards or zero shards, and each
// shard passes the single-namenode consistency/durability oracles.
func TestCrossShardRenameStorm(t *testing.T) {
	var seeds []int64
	if *stormSeed != 0 {
		seeds = []int64{*stormSeed}
	} else {
		for s := int64(1); s <= 25; s++ {
			seeds = append(seeds, s)
		}
	}
	grid := sweep.Grid{Seeds: seeds}
	points := grid.Points()
	type outcome struct {
		checks, moves, crashes int
		violations             []string
	}
	outcomes := make([]outcome, len(points))
	tasks := make([]sweep.Task, len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = sweep.Task{
			Name: grid.Label(p),
			Run: func(ctx context.Context) (string, error) {
				checks, moves, crashes, viols, err := runFedStorm(p.Seed)
				if err != nil {
					return "", err
				}
				outcomes[i] = outcome{checks: checks, moves: moves, crashes: crashes, violations: viols}
				return fmt.Sprintf("seed=%d: %d checks, %d moves (%d crashed), %d violations\n",
					p.Seed, checks, moves, crashes, len(viols)), nil
			},
		}
	}
	results, err := sweep.Run(context.Background(), sweep.Options{}, tasks)
	if err != nil {
		t.Fatalf("federated storm grid: %v", err)
	}
	t.Logf("federated storm grid:\n%s", sweep.Merged(results))
	totalMoves, totalCrashes := 0, 0
	for i, p := range points {
		o := outcomes[i]
		totalMoves += o.moves
		totalCrashes += o.crashes
		if o.checks < 10 {
			t.Errorf("seed %d: only %d oracle sweeps", p.Seed, o.checks)
		}
		for _, v := range o.violations {
			t.Errorf("seed %d: %s", p.Seed, v)
		}
		if len(o.violations) > 0 || o.checks < 10 {
			t.Logf("reproduce: go test ./internal/invariant/ -run TestCrossShardRenameStorm -storm-seed=%d -v", p.Seed)
		}
	}
	// The grid as a whole must actually exercise the crash paths.
	if len(seeds) > 1 && (totalMoves < 50 || totalCrashes < 20) {
		t.Errorf("grid ran %d moves / %d crashes; the storm is not stressing the protocol", totalMoves, totalCrashes)
	}
}

// runFedStorm executes one seed of the cross-shard storm on a 4-shard
// federation and returns the oracle outcome. Moves run atomically inside
// one event closure — protocol steps, the induced crash, and recovery —
// so the oracle never observes a half-stepped move from outside; the
// model map tracks what the workload believes exists (false = deleted,
// for resurrection checking).
func runFedStorm(seed int64) (checks, moves, crashes int, violations []string, err error) {
	rng := rand.New(rand.NewSource(seed))
	opts := erms.Options{Shards: 4, EnableJournal: true}
	vanilla := seed%5 == 0
	if vanilla {
		opts.DisableERMS = true
	}
	sys := erms.NewSystem(opts)
	e := sys.Engine()
	r := sys.Router()
	const horizon = 30 * time.Minute

	model := map[string]bool{}
	record := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	check := func() {
		checks++
		var shards []invariant.Lister
		for i := 0; i < sys.Shards(); i++ {
			shards = append(shards, sys.Shard(i).HDFS())
		}
		for _, v := range invariant.CheckFederation(invariant.FederationTarget{
			Shards: shards,
			Owner:  r.Shard,
			Exempt: func(p string) bool { return strings.HasPrefix(p, erms.MoveStagePrefix+"/") },
			// Copy: CheckFederation must not observe later mutations.
			Expected: model,
		}) {
			record("%s", v)
		}
		for i := 0; i < sys.Shards(); i++ {
			for _, v := range invariant.Check(invariant.Target{
				Cluster: sys.Shard(i).HDFS(),
				Manager: sys.Shard(i).Manager(),
				// Vanilla federations have no repair agent; kills legitimately
				// erode replicas there.
				AllowDataLoss: vanilla,
			}) {
				record("shard %d: %s", i, v)
			}
		}
	}

	nFiles := 16 + rng.Intn(12)
	paths := make([]string, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/fed/f%02d", i)
		size := (32 + float64(rng.Intn(128))) * erms.MB
		if cerr := sys.CreateFile(p, size); cerr != nil {
			return 0, 0, 0, nil, fmt.Errorf("seed %d: create %s: %w", seed, p, cerr)
		}
		model[p] = true
		paths = append(paths, p)
	}
	if serr := sys.SnapshotShards(); serr != nil {
		return 0, 0, 0, nil, fmt.Errorf("seed %d: snapshot: %w", seed, serr)
	}

	// doMove runs one cross-shard move, possibly crashing it between two
	// protocol steps and recovering via a shard failover or a direct
	// resolve; the model is updated to what the recovery contract promises
	// (rolled back before the commit marker, rolled forward from it on).
	moveSeq := 0
	doMove := func(src string, steps int, viaFailover, failDst bool) {
		if !model[src] {
			return
		}
		// Probe numbered destinations until one crosses shards. The suffix
		// must vary — appending one repeated character to an FNV-1a hash
		// walks h -> 3h (mod 4), which can never leave shards 0 or 2.
		var dst string
		for n := 0; ; n++ {
			dst = fmt.Sprintf("/fed/mv%03d-%d", moveSeq, n)
			if r.Shard(dst) != r.Shard(src) {
				break
			}
		}
		moveSeq++
		mv, merr := sys.StartMove(src, dst)
		if merr != nil {
			return // a concurrent delete won the race; nothing in flight
		}
		moves++
		done := 0
		for ; done < steps; done++ {
			if serr := mv.Step(); serr != nil {
				record("move %s -> %s step %d: %v", src, dst, done, serr)
				break
			}
		}
		if mv.Done() {
			model[src], model[dst] = false, true
			return
		}
		crashes++
		committed := done >= 3
		if viaFailover {
			idx := r.Shard(src)
			if failDst {
				idx = r.Shard(dst)
			}
			if ferr := sys.FailoverShard(idx); ferr != nil {
				record("failover shard %d mid-move: %v", idx, ferr)
				return
			}
		} else if _, rerr := sys.ResolveMoves(); rerr != nil {
			record("resolve %s -> %s: %v", src, dst, rerr)
			return
		}
		if committed {
			model[src], model[dst] = false, true
		}
		check()
	}

	newSeq := 0
	for i := 0; i < 110; i++ {
		at := time.Duration(rng.Int63n(int64(horizon - 4*time.Minute)))
		switch rng.Intn(12) {
		case 0, 1, 2: // cross-shard move; 1-4 steps crash it, 5 completes
			src := paths[rng.Intn(len(paths))]
			steps := 1 + rng.Intn(5)
			viaFailover, failDst := rng.Intn(2) == 0, rng.Intn(2) == 0
			e.Schedule(at, func() { doMove(src, steps, viaFailover, failDst) })
		case 3: // delete
			p := paths[rng.Intn(len(paths))]
			e.Schedule(at, func() {
				if model[p] {
					if derr := sys.Delete(p); derr == nil {
						model[p] = false
					}
				}
			})
		case 4: // create a fresh file
			p := fmt.Sprintf("/fed/n%03d", newSeq)
			newSeq++
			size := (32 + float64(rng.Intn(96))) * erms.MB
			e.Schedule(at, func() {
				if cerr := sys.CreateFile(p, size); cerr == nil {
					model[p] = true
				}
			})
		case 5: // refresh every shard's failover base
			e.Schedule(at, func() {
				if serr := sys.SnapshotShards(); serr != nil {
					record("snapshot: %v", serr)
				}
			})
		case 6: // fail over a quiescent shard (no move in flight)
			idx := rng.Intn(4)
			e.Schedule(at, func() {
				if ferr := sys.FailoverShard(idx); ferr != nil {
					record("failover shard %d: %v", idx, ferr)
				}
				check()
			})
		default: // read from a random client
			p := paths[rng.Intn(len(paths))]
			client := rng.Intn(18)
			e.Schedule(at, func() {
				if model[p] {
					sys.Read(client, p, nil)
				}
			})
		}
	}

	// Global kill/restart pairs, sequentially spaced so re-replication can
	// keep up (see TestRandomizedWorkloadStorm).
	at := time.Duration(rng.Int63n(int64(2 * time.Minute)))
	for at < horizon-3*time.Minute {
		id := rng.Intn(18)
		down := 15*time.Second + time.Duration(rng.Int63n(int64(45*time.Second)))
		killAt, restartAt := at, at+down
		e.Schedule(killAt, func() { sys.KillNode(id) })
		e.Schedule(restartAt, func() { sys.RestartNode(id) })
		at = restartAt + 2*time.Minute + time.Duration(rng.Int63n(int64(time.Minute)))
	}

	// Steady oracle cadence on top of the per-recovery checks.
	for tick := 2 * time.Minute; tick < horizon; tick += 2 * time.Minute {
		e.Schedule(tick, func() { check() })
	}

	e.RunUntil(horizon)
	sys.Stop()
	check()
	return checks, moves, crashes, violations, nil
}
