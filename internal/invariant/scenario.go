package invariant

import (
	"fmt"
	"time"

	"erms/internal/hdfs"
	"erms/internal/workload"
)

// Scenario oracles: cross-cutting properties of the production-shaped
// workloads — tenant isolation (no tenant starves while others are served)
// and flash-crowd reaction time (first hot read → replica-add completion).
// Both are accumulators the replay loop feeds; Check runs after the run.

// TenantIsolation accumulates per-tenant submitted and served traffic from
// a multi-tenant replay and checks no tenant was starved.
type TenantIsolation struct {
	submitted map[string]int
	served    map[string]int
	bytes     map[string]float64
	failed    map[string]int
}

// NewTenantIsolation returns an empty accumulator.
func NewTenantIsolation() *TenantIsolation {
	return &TenantIsolation{
		submitted: map[string]int{},
		served:    map[string]int{},
		bytes:     map[string]float64{},
		failed:    map[string]int{},
	}
}

// ObserveSubmit records a job entering the system.
func (ti *TenantIsolation) ObserveSubmit(js workload.JobSpec) {
	if js.Tenant != "" {
		ti.submitted[js.Tenant]++
	}
}

// ObserveDone records a completed (or failed) read for the job's tenant.
func (ti *TenantIsolation) ObserveDone(js workload.JobSpec, r *hdfs.ReadResult) {
	if js.Tenant == "" {
		return
	}
	if r != nil && r.Err == nil {
		ti.served[js.Tenant]++
		ti.bytes[js.Tenant] += r.Bytes
	} else {
		ti.failed[js.Tenant]++
	}
}

// Fairness returns Jain's index over per-tenant served bytes.
func (ti *TenantIsolation) Fairness() float64 {
	_, shares := workload.TenantBytes(ti.bytes)
	return workload.JainFairness(shares)
}

// BytesFor returns the bytes served to one tenant.
func (ti *TenantIsolation) BytesFor(tenant string) float64 { return ti.bytes[tenant] }

// Check verifies every tenant that submitted work was served at least
// minShare of its submissions (completion ratio, not byte share: a tenant
// of small files legitimately moves fewer bytes). It returns violations
// rather than failing, so storm harnesses can fold them into their own
// reporting.
func (ti *TenantIsolation) Check(minShare float64) []string {
	var out []string
	for tenant, n := range ti.submitted {
		if n == 0 {
			continue
		}
		done := ti.served[tenant] + ti.failed[tenant]
		if done == 0 {
			// Nothing resolved yet (run cut short): judged by Check callers
			// only after the replay horizon, so this is starvation.
			out = append(out, fmt.Sprintf("tenant %q: %d submitted, none resolved", tenant, n))
			continue
		}
		ratio := float64(ti.served[tenant]) / float64(n)
		if ratio < minShare {
			out = append(out, fmt.Sprintf("tenant %q: served %d/%d (%.0f%%) < %.0f%% floor",
				tenant, ti.served[tenant], n, ratio*100, minShare*100))
		}
	}
	return out
}

// Reaction tracks the flash-crowd headline metric: the time from the first
// read of the viral file to the moment the judge's replica increase lands.
type Reaction struct {
	Spike        time.Duration // when the crowd started (trace time)
	FirstRead    time.Duration // first viral read observed
	ReplicaAdded time.Duration // replication increase completed
	hasFirst     bool
	hasAdd       bool
}

// ObserveRead records a viral-file read; only the first one matters.
func (rx *Reaction) ObserveRead(at time.Duration) {
	if !rx.hasFirst {
		rx.FirstRead, rx.hasFirst = at, true
	}
}

// ObserveReplicaAdd records the completion of a replication increase on the
// viral file; only the first one (the judge's reaction) matters.
func (rx *Reaction) ObserveReplicaAdd(at time.Duration) {
	if !rx.hasAdd {
		rx.ReplicaAdded, rx.hasAdd = at, true
	}
}

// Reacted reports whether a replica add completed after a first read.
func (rx *Reaction) Reacted() bool { return rx.hasFirst && rx.hasAdd }

// Time returns the reaction time (first read → replica add) or -1 if the
// judge never reacted.
func (rx *Reaction) Time() time.Duration {
	if !rx.Reacted() {
		return -1
	}
	return rx.ReplicaAdded - rx.FirstRead
}

// Check verifies the judge reacted within max. Violations are returned, not
// fatal, matching TenantIsolation.
func (rx *Reaction) Check(max time.Duration) []string {
	if !rx.hasFirst {
		return []string{"flash crowd never read the viral file"}
	}
	if !rx.hasAdd {
		return []string{"judge never added a replica to the viral file"}
	}
	if got := rx.Time(); got < 0 || got > max {
		return []string{fmt.Sprintf("judge reaction took %v, budget %v", got, max)}
	}
	return nil
}
