package invariant

import (
	"fmt"
	"sort"
)

// FederationTarget names a federated shard set for the cross-shard
// ownership oracle.
type FederationTarget struct {
	// Shards are the per-shard namenode clusters, in shard-index order.
	Shards []Lister
	// Owner maps a path to its owning shard index (the system's router).
	Owner func(path string) int
	// Exempt marks protocol-internal paths (cross-shard move staging
	// files) that may legitimately live outside their router-assigned
	// shard while a move is in flight. Nil exempts nothing.
	Exempt func(path string) bool
	// Expected, when non-nil, is the model namespace: every path the
	// workload believes exists. The oracle then also reports files visible
	// in zero shards (lost) and files visible that the model deleted
	// (resurrected). Nil skips completeness checking.
	Expected map[string]bool
}

// Lister is the slice of the hdfs.Cluster surface the ownership oracle
// needs; taking an interface keeps the oracle testable with fakes.
type Lister interface {
	FilePaths() []string
}

// CheckFederation asserts cross-shard namespace ownership: every
// non-exempt path lives in exactly the shard the router assigns it, no
// path is visible in two shards, and — when a model namespace is given —
// no expected file is visible in zero shards. Violations are returned
// sorted; empty means the partition is sound.
func CheckFederation(t FederationTarget) []string {
	var errs []string
	seen := make(map[string]int, 256) // path -> first shard it appeared in
	for i, shard := range t.Shards {
		for _, p := range shard.FilePaths() {
			if t.Exempt != nil && t.Exempt(p) {
				continue
			}
			if prev, dup := seen[p]; dup {
				errs = append(errs, fmt.Sprintf(
					"federation: %q visible in two shards (%d and %d)", p, prev, i))
				continue
			}
			seen[p] = i
			if own := t.Owner(p); own != i {
				errs = append(errs, fmt.Sprintf(
					"federation: %q lives in shard %d but the router owns it to shard %d", p, i, own))
			}
			if t.Expected != nil && !t.Expected[p] {
				errs = append(errs, fmt.Sprintf(
					"federation: %q visible in shard %d but the model deleted it (resurrected)", p, i))
			}
		}
	}
	if t.Expected != nil {
		for p := range t.Expected {
			if !t.Expected[p] {
				continue
			}
			if _, ok := seen[p]; !ok {
				errs = append(errs, fmt.Sprintf(
					"federation: %q expected but visible in zero shards (lost)", p))
			}
		}
	}
	sort.Strings(errs)
	return errs
}
