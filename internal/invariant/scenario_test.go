package invariant

import (
	"errors"
	"strings"
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/workload"
)

var errFake = errors.New("fake read failure")

func TestScenarioTenantIsolationCheck(t *testing.T) {
	ti := NewTenantIsolation()
	ok := &hdfs.ReadResult{Bytes: 100}
	bad := &hdfs.ReadResult{Err: errFake}
	for i := 0; i < 10; i++ {
		js := workload.JobSpec{Tenant: "ads"}
		ti.ObserveSubmit(js)
		ti.ObserveDone(js, ok)
	}
	for i := 0; i < 10; i++ {
		js := workload.JobSpec{Tenant: "batch"}
		ti.ObserveSubmit(js)
		if i < 3 {
			ti.ObserveDone(js, ok)
		} else {
			ti.ObserveDone(js, bad)
		}
	}
	if v := ti.Check(0.3); len(v) != 0 {
		t.Fatalf("30%% floor should pass: %v", v)
	}
	v := ti.Check(0.9)
	if len(v) != 1 || !strings.Contains(v[0], "batch") {
		t.Fatalf("90%% floor should flag batch only: %v", v)
	}
	// Untenanted jobs are ignored entirely.
	ti.ObserveSubmit(workload.JobSpec{})
	ti.ObserveDone(workload.JobSpec{}, ok)
	if v := ti.Check(0.3); len(v) != 0 {
		t.Fatalf("untenanted job leaked into the check: %v", v)
	}
	if f := ti.Fairness(); f <= 0 || f > 1 {
		t.Fatalf("fairness out of range: %v", f)
	}
}

func TestScenarioTenantStarvation(t *testing.T) {
	ti := NewTenantIsolation()
	ti.ObserveSubmit(workload.JobSpec{Tenant: "etl"})
	v := ti.Check(0.1)
	if len(v) != 1 || !strings.Contains(v[0], "none resolved") {
		t.Fatalf("unresolved tenant should be a violation: %v", v)
	}
}

func TestScenarioReaction(t *testing.T) {
	var rx Reaction
	if v := rx.Check(time.Minute); len(v) != 1 || !strings.Contains(v[0], "never read") {
		t.Fatalf("no reads: %v", v)
	}
	rx.ObserveRead(10 * time.Second)
	rx.ObserveRead(12 * time.Second) // later reads must not move FirstRead
	if v := rx.Check(time.Minute); len(v) != 1 || !strings.Contains(v[0], "never added") {
		t.Fatalf("no replica add: %v", v)
	}
	rx.ObserveReplicaAdd(40 * time.Second)
	rx.ObserveReplicaAdd(50 * time.Second) // later adds must not move the mark
	if !rx.Reacted() || rx.Time() != 30*time.Second {
		t.Fatalf("reaction time = %v, want 30s", rx.Time())
	}
	if v := rx.Check(time.Minute); len(v) != 0 {
		t.Fatalf("30s within 1m budget: %v", v)
	}
	if v := rx.Check(20 * time.Second); len(v) != 1 || !strings.Contains(v[0], "budget") {
		t.Fatalf("30s past 20s budget should flag: %v", v)
	}
}
