// Package federation partitions the namenode namespace across shards.
//
// A Router deterministically maps every file path to the shard that owns
// it — its block map, under-replication set, journal epoch, and judge
// instance all live there. The hash function is pinned (FNV-1a 64,
// implemented locally rather than through hash/fnv so the layout can
// never drift with the standard library) and versioned: a checkpoint
// envelope records RouterVersion, and restore refuses a layout it does
// not know rather than silently re-homing files. Datanodes stay global;
// each shard sees the full topology and tracks only its own block pool
// on every node, exactly HDFS federation's block-pool model.
package federation

import (
	"encoding/binary"
	"fmt"
)

// RouterVersion pins the path→shard mapping. Any change to the hash
// function or its reduction to a shard index must bump this; decoders
// reject versions they do not know, because replaying a journal against
// a re-homed namespace would scatter files across the wrong shards.
const RouterVersion = 1

// FNV-1a 64 parameters, fixed by RouterVersion 1.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Router maps file paths to shard indexes. The zero value is invalid;
// use New.
type Router struct {
	shards int
}

// New returns a router over n shards (n < 1 is treated as 1).
func New(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{shards: n}
}

// Shards returns the shard count.
func (r Router) Shards() int { return r.shards }

// Shard returns the owning shard index for path, in [0, Shards()).
func (r Router) Shard(path string) int {
	if r.shards <= 1 {
		return 0
	}
	return int(Hash(path) % uint64(r.shards))
}

// Hash is the pinned RouterVersion-1 path hash (FNV-1a 64).
func Hash(path string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= fnvPrime64
	}
	return h
}

// Encode serializes the router for a checkpoint envelope: RouterVersion
// then the shard count, both uvarints.
func (r Router) Encode() []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, RouterVersion)
	buf = binary.AppendUvarint(buf, uint64(r.shards))
	return buf
}

// Decode parses an Encode result, returning the router and the number of
// bytes consumed. Unknown router versions and implausible shard counts
// are errors, never guesses.
func Decode(data []byte) (Router, int, error) {
	version, n := binary.Uvarint(data)
	if n <= 0 {
		return Router{}, 0, fmt.Errorf("federation: truncated router version")
	}
	if version != RouterVersion {
		return Router{}, 0, fmt.Errorf("federation: unsupported router version %d (want %d)", version, RouterVersion)
	}
	shards, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return Router{}, 0, fmt.Errorf("federation: truncated shard count")
	}
	if shards < 1 || shards > 1<<16 {
		return Router{}, 0, fmt.Errorf("federation: implausible shard count %d", shards)
	}
	return Router{shards: int(shards)}, n + m, nil
}
