package federation

import (
	"fmt"
	"testing"
)

// TestRouterPinned pins the RouterVersion-1 layout: these assignments are
// part of the on-disk contract (checkpoint envelopes record the router),
// so a hash change must fail here before it silently re-homes files.
func TestRouterPinned(t *testing.T) {
	r := New(4)
	want := map[string]int{
		"/data/logs":      int(Hash("/data/logs") % 4),
		"":                int(Hash("") % 4),
		"/a":              int(Hash("/a") % 4),
		"/tenant-3/f0017": int(Hash("/tenant-3/f0017") % 4),
	}
	for p, w := range want {
		if got := r.Shard(p); got != w {
			t.Errorf("Shard(%q) = %d, want %d", p, got, w)
		}
	}
	// The hash itself is pinned, not just self-consistent: FNV-1a 64 of
	// "/data/logs" computed independently.
	if got := Hash(""); got != 14695981039346656037 {
		t.Errorf("Hash(\"\") = %d, want the FNV-1a offset basis", got)
	}
	if Hash("/data/logs") == Hash("/data/logs2") {
		t.Error("distinct paths collided (astronomically unlikely for FNV-1a 64)")
	}
}

func TestRouterRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		r := New(n)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			// Vary the decimal suffix, not a (letter, digit) pair: FNV-1a
			// mod 2 reduces to the XOR of every byte's low bit, and
			// ('a'+i%26)^('0'+i%10) has constant parity across i.
			p := fmt.Sprintf("/spread/%03d", i)
			s := r.Shard(p)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%q) = %d out of range [0,%d)", p, s, n)
			}
			seen[s] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Errorf("%d shards: 200 paths all landed on one shard", n)
		}
	}
}

func TestRouterDegenerate(t *testing.T) {
	if New(0).Shards() != 1 || New(-3).Shards() != 1 {
		t.Error("n < 1 should clamp to a single shard")
	}
	if New(1).Shard("/anything") != 0 {
		t.Error("single shard must own every path")
	}
}

func TestRouterEncodeDecode(t *testing.T) {
	for _, n := range []int{1, 2, 4, 255, 1 << 16} {
		r := New(n)
		enc := r.Encode()
		got, used, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%d)): %v", n, err)
		}
		if used != len(enc) {
			t.Errorf("Decode consumed %d of %d bytes", used, len(enc))
		}
		if got.Shards() != n {
			t.Errorf("round trip: %d shards, want %d", got.Shards(), n)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, _, err := Decode([]byte{99}); err == nil {
		t.Error("unknown router version should be rejected")
	}
	if _, _, err := Decode([]byte{RouterVersion}); err == nil {
		t.Error("truncated shard count should be rejected")
	}
	if _, _, err := Decode(New(1 << 20).Encode()); err == nil {
		t.Error("implausible shard count should be rejected")
	}
}

// FuzzShardRouter asserts the property a checkpoint/restore cycle relies
// on: routing a path through an encode/decode round trip lands on the
// same shard, and every result stays in range.
func FuzzShardRouter(f *testing.F) {
	f.Add("/data/logs", 4)
	f.Add("", 1)
	f.Add("/.fedmove/data/logs", 2)
	f.Add("/deep/nested/path/with/unicode-\xc3\xa9", 16)
	f.Fuzz(func(t *testing.T, path string, shards int) {
		if shards < 1 || shards > 1<<16 {
			shards = 1 + (shards&0x7fffffff)%(1<<16)
		}
		r := New(shards)
		s := r.Shard(path)
		if s < 0 || s >= shards {
			t.Fatalf("Shard(%q) = %d out of range [0,%d)", path, s, shards)
		}
		restored, _, err := Decode(r.Encode())
		if err != nil {
			t.Fatalf("Decode(Encode): %v", err)
		}
		if got := restored.Shard(path); got != s {
			t.Fatalf("shard moved across encode/decode: %d -> %d", s, got)
		}
	})
}
