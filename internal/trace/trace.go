// Package trace records the ERMS control loop as a tree of spans on the
// simulation clock: a hot file's first access burst, the judge verdict
// that classified it, the Condor job negotiation, and every per-replica
// HDFS transfer are one linked tree, exportable as Chrome trace_event
// JSON (chrome://tracing, Perfetto) for inspection.
//
// Tracing is opt-in and costs nothing when off: every method is safe on a
// nil *Tracer and returns immediately without allocating, so instrumented
// hot paths (the judge pass, CEP evaluation) keep their allocs/op at
// zero-overhead when no tracer is installed.
//
// Because the simulation clock is virtual and every span is created from
// deterministic event code, two runs with the same seed produce
// byte-identical exports — the trace itself is a regression artifact.
//
// Span naming convention: "component.operation" — the category (Chrome
// track) is the part before the first dot. Current components: hdfs,
// judge, cep, condor, net, erms.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// SpanID identifies a span within one Tracer. Zero means "no span" and is
// a valid parent (a root span).
type SpanID int32

// Attr is one key/value annotation on a span. Values are stored as
// strings; use the typed Set*Attr helpers so formatting only happens when
// tracing is enabled.
type Attr struct {
	Key string
	Val string
}

// Span is one recorded operation. Start and End are virtual times; an
// instant span has End == Start. A span still open at export time is
// closed at the exporting clock's now.
type Span struct {
	ID      SpanID
	Parent  SpanID
	Name    string
	Start   time.Duration
	End     time.Duration
	Instant bool
	Attrs   []Attr
	open    bool
}

// Tracer records spans against a virtual clock. The zero value is not
// usable; construct with New. A nil *Tracer is the disabled tracer: every
// method is a no-op returning zero values.
//
// The tracer also keeps an ambient "current span" stack so instrumented
// code deep in a synchronous call chain can parent its spans correctly
// without every API threading a SpanID parameter. Asynchronous
// continuations (scheduled events, flow completions) must capture the
// SpanID explicitly and re-establish it with Push/Pop.
type Tracer struct {
	clock   func() time.Duration
	spans   []Span
	current SpanID
}

// New creates an enabled tracer reading timestamps from clock (typically
// the simulation engine's Now).
func New(clock func() time.Duration) *Tracer {
	if clock == nil {
		panic("trace: nil clock")
	}
	return &Tracer{clock: clock}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span named name under parent (0 for a root span, or
// t.Current() via the Ambient helper) and returns its ID.
func (t *Tracer) Begin(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	t.spans = append(t.spans, Span{
		ID:     SpanID(len(t.spans) + 1),
		Parent: parent,
		Name:   name,
		Start:  t.clock(),
		open:   true,
	})
	return SpanID(len(t.spans))
}

// End closes the span. Ending an unknown, instant, or already-ended span
// is a no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return
	}
	sp := &t.spans[id-1]
	if !sp.open {
		return
	}
	sp.open = false
	sp.End = t.clock()
}

// Instant records a zero-duration event under parent and returns its ID
// (so attributes can still be attached).
func (t *Tracer) Instant(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock()
	t.spans = append(t.spans, Span{
		ID:      SpanID(len(t.spans) + 1),
		Parent:  parent,
		Name:    name,
		Start:   now,
		End:     now,
		Instant: true,
	})
	return SpanID(len(t.spans))
}

// SetAttr attaches a string attribute to a span.
func (t *Tracer) SetAttr(id SpanID, key, val string) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return
	}
	sp := &t.spans[id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: val})
}

// SetAttrInt attaches an integer attribute; the value is only formatted
// when the tracer is enabled.
func (t *Tracer) SetAttrInt(id SpanID, key string, val int64) {
	if t == nil {
		return
	}
	t.SetAttr(id, key, strconv.FormatInt(val, 10))
}

// SetAttrFloat attaches a float attribute (compact %g formatting).
func (t *Tracer) SetAttrFloat(id SpanID, key string, val float64) {
	if t == nil {
		return
	}
	t.SetAttr(id, key, strconv.FormatFloat(val, 'g', -1, 64))
}

// Current returns the ambient span (0 when none, or tracing disabled).
func (t *Tracer) Current() SpanID {
	if t == nil {
		return 0
	}
	return t.current
}

// Push makes id the ambient span and returns the previous one, which the
// caller must restore with Pop when the synchronous section ends:
//
//	prev := tr.Push(span)
//	defer tr.Pop(prev)
func (t *Tracer) Push(id SpanID) SpanID {
	if t == nil {
		return 0
	}
	prev := t.current
	t.current = id
	return prev
}

// Pop restores the ambient span returned by the matching Push.
func (t *Tracer) Pop(prev SpanID) {
	if t == nil {
		return
	}
	t.current = prev
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the recorded spans in creation order. Open spans are
// reported with End == their Start; the slice is a snapshot copy.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].open {
			out[i].End = out[i].Start
		}
	}
	return out
}

// Span returns a snapshot of one span and whether it exists.
func (t *Tracer) Span(id SpanID) (Span, bool) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return Span{}, false
	}
	sp := t.spans[id-1]
	if sp.open {
		sp.End = sp.Start
	}
	return sp, true
}

// Attr returns the value of the named attribute on a span ("" when
// absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Category returns the component track a span belongs to: the part of its
// name before the first dot ("hdfs.replica_add" → "hdfs").
func (s Span) Category() string {
	for i := 0; i < len(s.Name); i++ {
		if s.Name[i] == '.' {
			return s.Name[:i]
		}
	}
	return s.Name
}

// WriteChromeTrace exports the spans as Chrome trace_event JSON (the
// "JSON array" format): load the file in chrome://tracing or
// https://ui.perfetto.dev. Each component (span name prefix) becomes one
// named thread; span/parent IDs ride in args so the tree is recoverable.
// Output is deterministic: spans in creation order, threads in first-seen
// order, attributes in insertion order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	// Assign a tid per category, in first-seen order.
	tids := map[string]int{}
	var cats []string
	for i := range t.spans {
		cat := t.spans[i].Category()
		if _, ok := tids[cat]; !ok {
			tids[cat] = len(cats) + 1
			cats = append(cats, cat)
		}
	}
	bw.WriteString("[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"erms"}}`)
	for _, cat := range cats {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tids[cat], quote(cat)))
	}
	for i := range t.spans {
		sp := t.spans[i]
		if sp.open {
			sp.End = t.clock()
		}
		var b []byte
		if sp.Instant {
			b = fmt.Appendf(nil, `{"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"name":%s,"cat":%s`,
				tids[sp.Category()], micros(sp.Start), quote(sp.Name), quote(sp.Category()))
		} else {
			b = fmt.Appendf(nil, `{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s`,
				tids[sp.Category()], micros(sp.Start), micros(sp.End-sp.Start),
				quote(sp.Name), quote(sp.Category()))
		}
		b = fmt.Appendf(b, `,"args":{"id":%d,"parent":%d`, sp.ID, sp.Parent)
		for _, a := range sp.Attrs {
			b = fmt.Appendf(b, `,%s:%s`, quote(a.Key), quote(a.Val))
		}
		b = append(b, "}}"...)
		emit(string(b))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// micros renders a duration as microseconds with nanosecond precision
// (Chrome trace ts/dur unit), with no exponent so output is stable.
func micros(d time.Duration) string {
	ns := d.Nanoseconds()
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
}

// quote renders a JSON string literal (keys and values are plain ASCII
// identifiers and paths in practice; control characters are escaped).
func quote(s string) string { return strconv.Quote(s) }

// Summary is an aggregate view of a trace: span counts and total time per
// span name, sorted by name. Used by the figures trace demo and tests.
type Summary struct {
	Name  string
	Count int
	Total time.Duration
}

// Summarize aggregates the recorded spans by name.
func (t *Tracer) Summarize() []Summary {
	if t == nil {
		return nil
	}
	byName := map[string]*Summary{}
	var names []string
	for _, sp := range t.Spans() {
		s := byName[sp.Name]
		if s == nil {
			s = &Summary{Name: sp.Name}
			byName[sp.Name] = s
			names = append(names, sp.Name)
		}
		s.Count++
		s.Total += sp.End - sp.Start
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}
