package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testClock() (func() time.Duration, *time.Duration) {
	now := new(time.Duration)
	return func() time.Duration { return *now }, now
}

func TestSpanTree(t *testing.T) {
	clock, now := testClock()
	tr := New(clock)

	root := tr.Begin("judge.pass", 0)
	*now = 10 * time.Millisecond
	child := tr.Begin("cep.eval", root)
	tr.SetAttr(child, "stmt", "files")
	*now = 15 * time.Millisecond
	tr.End(child)
	leaf := tr.Instant("judge.decision", root)
	tr.SetAttrInt(leaf, "target", 6)
	*now = 20 * time.Millisecond
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("len(spans) = %d, want 3", len(spans))
	}
	if spans[0].Name != "judge.pass" || spans[0].Parent != 0 {
		t.Errorf("root = %+v", spans[0])
	}
	if spans[0].End != 20*time.Millisecond {
		t.Errorf("root end = %v", spans[0].End)
	}
	if spans[1].Parent != root || spans[1].Attr("stmt") != "files" {
		t.Errorf("child = %+v", spans[1])
	}
	if !spans[2].Instant || spans[2].Attr("target") != "6" {
		t.Errorf("instant = %+v", spans[2])
	}
	if got := spans[1].Category(); got != "cep" {
		t.Errorf("category = %q", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Begin("x", 0)
	if id != 0 {
		t.Fatalf("nil Begin = %d", id)
	}
	tr.SetAttr(id, "k", "v")
	tr.SetAttrInt(id, "k", 1)
	tr.SetAttrFloat(id, "k", 1.5)
	tr.End(id)
	tr.Instant("y", 0)
	prev := tr.Push(7)
	if prev != 0 || tr.Current() != 0 {
		t.Fatal("nil Push/Current not inert")
	}
	tr.Pop(prev)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Summarize() != nil {
		t.Fatal("nil accessors not empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil export = %q", buf.String())
	}
}

func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.Begin("hot.path", tr.Current())
		tr.SetAttrInt(id, "n", 42)
		prev := tr.Push(id)
		tr.Pop(prev)
		tr.End(id)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per op", allocs)
	}
}

func TestAmbientStack(t *testing.T) {
	clock, _ := testClock()
	tr := New(clock)
	a := tr.Begin("a.x", 0)
	prev := tr.Push(a)
	if tr.Current() != a {
		t.Fatal("current != a")
	}
	b := tr.Begin("b.y", tr.Current())
	inner := tr.Push(b)
	if tr.Current() != b {
		t.Fatal("current != b")
	}
	tr.Pop(inner)
	if tr.Current() != a {
		t.Fatal("pop did not restore a")
	}
	tr.Pop(prev)
	if tr.Current() != 0 {
		t.Fatal("pop did not restore root")
	}
	sp, ok := tr.Span(b)
	if !ok || sp.Parent != a {
		t.Fatalf("span b = %+v, %v", sp, ok)
	}
}

func TestChromeExportIsValidJSONAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		clock, now := testClock()
		tr := New(clock)
		root := tr.Begin("judge.pass", 0)
		*now = 1500 * time.Nanosecond // fractional microseconds
		c := tr.Begin("hdfs.replica_add", root)
		tr.SetAttr(c, "path", `/data/"quoted"`)
		*now = 3 * time.Millisecond
		tr.End(c)
		tr.Instant("erms.commission", root)
		tr.End(root)
		tr.Begin("net.flow", c) // left open: exported with now as end
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical traces exported differently")
	}
	var events []map[string]any
	if err := json.Unmarshal(b1.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b1.String())
	}
	var spans, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
		case "X", "i":
			spans++
		}
	}
	if spans != 4 { // judge.pass, hdfs.replica_add, erms.commission, net.flow
		t.Fatalf("exported %d span events, want 4", spans)
	}
	if meta != 5 { // process_name + judge, hdfs, erms, net
		t.Fatalf("exported %d metadata events, want 5", meta)
	}
	if !strings.Contains(b1.String(), `"ts":1.500`) {
		t.Errorf("fractional microsecond timestamp not preserved:\n%s", b1.String())
	}
}

func TestSummarize(t *testing.T) {
	clock, now := testClock()
	tr := New(clock)
	a := tr.Begin("hdfs.read", 0)
	*now = 2 * time.Second
	tr.End(a)
	b := tr.Begin("hdfs.read", 0)
	*now = 3 * time.Second
	tr.End(b)
	tr.Instant("judge.decision", 0)

	sum := tr.Summarize()
	if len(sum) != 2 {
		t.Fatalf("summaries = %+v", sum)
	}
	if sum[0].Name != "hdfs.read" || sum[0].Count != 2 || sum[0].Total != 3*time.Second {
		t.Errorf("hdfs.read summary = %+v", sum[0])
	}
	if sum[1].Name != "judge.decision" || sum[1].Count != 1 {
		t.Errorf("judge.decision summary = %+v", sum[1])
	}
}
