package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("erms_decisions_total")
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v, want 3.5", c.Value())
	}
	if c.Int() != 3 {
		t.Fatalf("Int() = %d, want 3", c.Int())
	}
	if r.Counter("erms_decisions_total") != c {
		t.Fatal("second lookup should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestGaugeSetAddAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hdfs_active_reads")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
	n := 7.0
	r.GaugeFunc("hdfs_files", func() float64 { return n })
	if got := r.Gauge("hdfs_files").Value(); got != 7 {
		t.Fatalf("func gauge = %v, want 7", got)
	}
	n = 9
	if got := r.Gauge("hdfs_files").Value(); got != 9 {
		t.Fatalf("func gauge should re-evaluate, got %v", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("erms_time_to_repair_seconds")
	h.Observe(1)
	h.ObserveDuration(2 * time.Second)
	if h.N() != 2 || h.Mean() != 1.5 {
		t.Fatalf("n=%d mean=%v", h.N(), h.Mean())
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("name with a space should panic")
		}
	}()
	r.Counter("bad name")
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total")
	r.Gauge("aa")
	r.Histogram("mm_seconds")
	names := r.Names()
	want := []string{"aa", "mm_seconds", "zz_total"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a").Set(1.5)
	h := r.Histogram("c_seconds")
	h.Observe(1)
	h.Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `# TYPE a gauge
a 1.5
# TYPE b_total counter
b_total 2
# TYPE c_seconds summary
c_seconds{quantile="0.5"} 2
c_seconds{quantile="0.9"} 2.8
c_seconds{quantile="0.99"} 2.98
c_seconds_sum 4
c_seconds_count 2
`
	if out != want {
		t.Fatalf("snapshot mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// Satellite coverage: Quantile edge cases the generic tests skim over.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Sample
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
	var one Sample
	one.Add(42)
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %v, want 42", q, got)
		}
	}
	var s Sample
	s.Add(1)
	s.Add(9)
	if s.Quantile(0) != 1 || s.Quantile(-0.5) != 1 {
		t.Fatal("q<=0 should clamp to min")
	}
	if s.Quantile(1) != 9 || s.Quantile(1.5) != 9 {
		t.Fatal("q>=1 should clamp to max")
	}
	if got := s.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("median of {1,9} = %v, want 5", got)
	}
}

// Satellite coverage: TimeSeries.At boundary behavior at and around
// recorded points.
func TestTimeSeriesAtBoundaries(t *testing.T) {
	var empty TimeSeries
	if empty.At(time.Hour) != 0 {
		t.Fatal("empty series should read 0")
	}
	var ts TimeSeries
	ts.Add(2*time.Second, 5)
	ts.Add(2*time.Second, 6) // same-timestamp overwrite: later point wins
	ts.Add(4*time.Second, 7)
	if ts.At(2*time.Second-time.Nanosecond) != 0 {
		t.Fatal("just before the first point should read 0")
	}
	if ts.At(2*time.Second) != 6 {
		t.Fatalf("at a duplicated timestamp the latest value should win, got %v", ts.At(2*time.Second))
	}
	if ts.At(4*time.Second-time.Nanosecond) != 6 {
		t.Fatal("just before a point should read the previous step")
	}
	if ts.At(4*time.Second) != 7 || ts.At(time.Minute) != 7 {
		t.Fatal("at and past the last point should read its value")
	}
}
