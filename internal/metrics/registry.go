package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Registry is a named catalog of counters, gauges, and sim-time
// histograms that every subsystem registers into, replacing ad-hoc stats
// struct fields. It renders a Prometheus-style text snapshot for
// `ermsctl metrics` and CI artifacts.
//
// The simulation is single-goroutine, so the registry is unsynchronized;
// names follow Prometheus conventions (snake_case, `_total` suffix on
// counters, unit suffixes like `_seconds`).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	names    []string // registration order; sorted on export
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add accumulates delta (negative deltas panic: counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: counter %s decremented by %v", c.name, delta))
	}
	c.v += delta
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Int returns the current count truncated to int (counters in this
// codebase are integral event counts).
func (c *Counter) Int() int { return int(c.v) }

// Gauge is a point-in-time value: either set explicitly or computed by a
// callback at snapshot time (for values owned elsewhere, like a cluster's
// stale-node count).
type Gauge struct {
	name string
	v    float64
	fn   func() float64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the gauge reading (invoking the callback for func
// gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Histogram is a Sample registered under a name; its Prometheus rendering
// is a summary with p50/p90/p99 quantiles. Observations are plain
// float64s — for sim-time durations observe seconds.
type Histogram struct {
	name string
	Sample
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.Add(v) }

// ObserveDuration records a virtual-time duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Add(d.Seconds()) }

// Counter returns the counter registered under name, creating it on
// first use. Registering a name already held by another metric kind
// panics.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name)
	c := &Counter{name: name}
	r.counters[name] = c
	r.names = append(r.names, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.names = append(r.names, name)
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Re-registering a func gauge replaces its callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	g := r.Gauge(name)
	g.fn = fn
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name)
	h := &Histogram{name: name}
	r.hists[name] = h
	r.names = append(r.names, name)
	return h
}

func (r *Registry) checkFresh(name string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("metrics: %s already registered as a different kind", name))
	}
	if name == "" || strings.ContainsAny(name, " \t\n{}\"") {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	sort.Strings(out)
	return out
}

// WritePrometheus renders the registry as a Prometheus text-format
// snapshot: metrics sorted by name, counters as `# TYPE ... counter`,
// gauges as gauges, histograms as summaries with quantile labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.Names() {
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %s\n", name, name, formatValue(r.counters[name].Value()))
		case r.gauges[name] != nil:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatValue(r.gauges[name].Value()))
		case r.hists[name] != nil:
			h := r.hists[name]
			fmt.Fprintf(bw, "# TYPE %s summary\n", name)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(bw, "%s{quantile=%q} %s\n", name, trimFloat(q), formatValue(h.Quantile(q)))
			}
			fmt.Fprintf(bw, "%s_sum %s\n", name, formatValue(h.Mean()*float64(h.N())))
			fmt.Fprintf(bw, "%s_count %d\n", name, h.N())
		}
	}
	return bw.Flush()
}

func trimFloat(q float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", q), "0"), ".")
}

// formatValue renders a metric value the way Prometheus does: integers
// without a decimal point, everything else compactly (12 significant
// digits, enough for event counts and quantiles without binary-float
// noise like 2.8000000000000003).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return strconv.FormatFloat(v, 'g', 12, 64)
}
