package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("zero Mean should report 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 || m.Sum() != 6 {
		t.Fatalf("mean = %v n=%d sum=%v", m.Value(), m.N(), m.Sum())
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{5, 1, 3} {
		s.Add(v)
	}
	if s.N() != 3 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("stats wrong: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles")
	}
	if got := s.Quantile(0.25); math.Abs(got-2) > 1e-9 {
		t.Fatalf("q25 = %v, want 2 (interpolated)", got)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort
	if s.Min() != 1 {
		t.Fatal("sample did not re-sort after Add")
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 2, 3} {
		s.Add(v)
	}
	xs, ps := s.CDF()
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.25, 0.75, 1.0}
	if len(xs) != 3 {
		t.Fatalf("CDF points = %v %v", xs, ps)
	}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(ps[i]-wantP[i]) > 1e-9 {
			t.Fatalf("CDF = (%v,%v), want (%v,%v)", xs, ps, wantX, wantP)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(time.Second, 10)
	ts.Add(3*time.Second, 20)
	if ts.Len() != 2 {
		t.Fatal("len")
	}
	if ts.At(0) != 0 {
		t.Fatal("before first point should be 0")
	}
	if ts.At(time.Second) != 10 || ts.At(2*time.Second) != 10 {
		t.Fatal("step interpolation wrong")
	}
	if ts.At(5*time.Second) != 20 {
		t.Fatal("after last point")
	}
	if ts.Max() != 20 {
		t.Fatal("max")
	}
	var empty TimeSeries
	if empty.Max() != 0 {
		t.Fatal("empty max should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Fig X", Columns: []string{"replicas", "throughput"}}
	tb.AddRowValues(3, 45.678)
	tb.AddRowValues("hdr", "x")
	out := tb.String()
	if !strings.Contains(out, "# Fig X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "replicas") || !strings.Contains(out, "45.68") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		123.45: "123.5",
		4.5:    "4.50",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CDF is nondecreasing in both coordinates and ends at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		xs, ps := s.CDF()
		if !sort.Float64sAreSorted(xs) {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if ps[i] < ps[i-1] {
				return false
			}
		}
		return math.Abs(ps[len(ps)-1]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChartRender(t *testing.T) {
	ch := &Chart{
		Title:  "storage over time",
		XLabel: "hours",
		YLabel: "GB",
		Width:  40,
		Height: 8,
		Series: []Series{
			{Name: "vanilla", Xs: []float64{0, 1, 2, 3}, Ys: []float64{10, 20, 20, 20}, Mark: 'v'},
			{Name: "erms", Xs: []float64{0, 1, 2, 3}, Ys: []float64{10, 35, 20, 12}, Mark: 'e'},
		},
	}
	out := ch.Render()
	for _, want := range []string{"storage over time", "legend:", "v vanilla", "e erms",
		"x: hours  y: GB", "35", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Peak value appears on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "e") {
		t.Fatalf("peak mark not on top row:\n%s", out)
	}
}

func TestChartEdgeCases(t *testing.T) {
	empty := &Chart{Title: "t"}
	if !strings.Contains(empty.Render(), "(no data)") {
		t.Fatal("empty chart")
	}
	flat := &Chart{Series: []Series{{Name: "f", Xs: []float64{1, 1}, Ys: []float64{5, 5}}}}
	if out := flat.Render(); !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}
