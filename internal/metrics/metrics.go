// Package metrics provides the small statistics toolkit the experiments
// use: running means, CDFs, percentiles, time series sampled in virtual
// time, and plain-text table rendering for figure regeneration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean is a running mean with count.
type Mean struct {
	sum float64
	n   int
}

// Add accumulates one observation.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// Value returns the mean, or 0 with no observations.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the observation count.
func (m *Mean) N() int { return m.n }

// Sum returns the raw sum.
func (m *Mean) Sum() float64 { return m.sum }

// Sample is a collection of observations supporting quantiles.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	s.ensureSorted()
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	s.ensureSorted()
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[len(s.vals)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	s.ensureSorted()
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.vals[n-1]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CDF returns (x, F(x)) pairs at each distinct observation, suitable for
// plotting the paper's Figure 4.
func (s *Sample) CDF() (xs, ps []float64) {
	s.ensureSorted()
	n := len(s.vals)
	for i := 0; i < n; i++ {
		if i+1 < n && s.vals[i+1] == s.vals[i] {
			continue
		}
		xs = append(xs, s.vals[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// TimeSeries records (virtual time, value) points.
type TimeSeries struct {
	Times  []time.Duration
	Values []float64
}

// Add appends a point. Times should be nondecreasing.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// At returns the most recent value at or before t (step interpolation),
// or 0 if t precedes the first point.
func (ts *TimeSeries) At(t time.Duration) float64 {
	i := sort.Search(len(ts.Times), func(i int) bool { return ts.Times[i] > t })
	if i == 0 {
		return 0
	}
	return ts.Values[i-1]
}

// Max returns the largest recorded value.
func (ts *TimeSeries) Max() float64 {
	m := math.Inf(-1)
	for _, v := range ts.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Table is a labeled grid used to print figure data: one row per series
// point, one column per measured quantity.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowValues appends a row, formatting each value compactly.
func (t *Table) AddRowValues(vals ...any) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// FormatFloat renders a float compactly (4 significant-ish digits).
func FormatFloat(x float64) string {
	ax := math.Abs(x)
	switch {
	case x == math.Trunc(x) && ax < 1e7:
		return fmt.Sprintf("%.0f", x)
	case ax >= 100:
		return fmt.Sprintf("%.1f", x)
	case ax >= 1:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			for ; pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
