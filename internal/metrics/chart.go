package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of an ASCII chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
	Mark byte // the glyph drawn for this series ('*', '+', 'o', …)
}

// Chart renders series as a plain-text scatter/line chart — enough to see
// a figure's shape in a terminal without leaving the repository.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns; default 60
	Height int // plot area rows; default 16
	Series []Series
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.Xs {
			points++
			minX, maxX = math.Min(minX, s.Xs[i]), math.Max(maxX, s.Xs[i])
			minY, maxY = math.Min(minY, s.Ys[i]), math.Max(maxY, s.Ys[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		for i := range s.Xs {
			col := int((s.Xs[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Ys[i]-minY)/(maxY-minY)*float64(h-1))
			if row >= 0 && row < h && col >= 0 && col < w {
				grid[row][col] = mark
			}
		}
	}
	yHi := FormatFloat(maxY)
	yLo := FormatFloat(minY)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yHi, labelW)
		case h - 1:
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW),
		FormatFloat(minX),
		strings.Repeat(" ", maxInt(1, w-len(FormatFloat(minX))-len(FormatFloat(maxX)))),
		FormatFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s  y: %s\n", c.XLabel, c.YLabel)
	}
	if len(c.Series) > 1 {
		var legend []string
		for _, s := range c.Series {
			mark := s.Mark
			if mark == 0 {
				mark = '*'
			}
			legend = append(legend, fmt.Sprintf("%c %s", mark, s.Name))
		}
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "   "))
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
