package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// ERMS uses tickers for CEP window evaluation, Condor negotiation cycles,
// and datanode heartbeats. Tickers schedule through the Clock seam, so
// the same ticker drives heartbeats in a simulation and in service mode.
type Ticker struct {
	clock   Clock
	period  time.Duration
	fn      func(now time.Duration)
	next    *Event
	stopped bool
}

// NewTicker schedules fn every period, with the first firing one period from
// now. It panics if period is not positive.
func NewTicker(c Clock, period time.Duration, fn func(now time.Duration)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.clock.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.clock.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. Safe to call multiple times and from within
// the callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.clock.Cancel(t.next)
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
