package sim

import (
	"testing"
	"time"
)

// TestPendingExcludesCanceled pins the Pending fix: canceled events linger
// in the calendar until popped, but they must not count as pending.
func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	fired := 0
	a := e.Schedule(1*time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() { fired++ })
	e.Schedule(3*time.Second, func() { fired++ })
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}

	e.Cancel(a)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", got)
	}
	// Double-cancel must not double-count.
	e.Cancel(a)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", got)
	}

	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestPendingCancelAfterFire checks that canceling an already-fired event
// neither underflows the counter nor affects Pending.
func TestPendingCancelAfterFire(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1*time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	e.Step() // fires a
	e.Cancel(a)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestPendingCanceledDiscardedByPeek covers the other discard path: peek
// (via RunUntil/NextEventTime) drops canceled events from the calendar head
// and must keep the counter balanced.
func TestPendingCanceledDiscardedByPeek(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1*time.Second, func() {})
	e.Schedule(5*time.Second, func() {})
	e.Cancel(a)
	if at, ok := e.NextEventTime(); !ok || at != 5*time.Second {
		t.Fatalf("NextEventTime = %v, %v; want 5s, true", at, ok)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}
