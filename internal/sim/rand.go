package sim

import (
	"math"
	"math/rand"
)

// NewRand returns a seeded random source. Every stochastic component takes
// one of these explicitly so experiments are reproducible and independent
// components do not perturb each other's streams.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf draws ranks in [0, n) with a Zipf(s) distribution, rank 0 being the
// most popular. It is used for heavy-tailed file popularity: the paper's
// motivation is that "data access patterns in HDFS clusters are heavy-tailed".
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a Zipf distribution over n items with exponent s > 0.
// Small n keeps the precomputed CDF cheap; workloads use catalogs of a few
// thousand files.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Draw returns a rank in [0, len(cdf)).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
