package sim

import "time"

// Clock is the virtual-time scheduling seam between the engine and every
// subsystem that keeps timers: the network fabric, the Condor scheduler,
// the HDFS heartbeat/scrubber/safe-mode tickers, and the judge's CEP
// windows all schedule through this interface rather than through a
// concrete *Engine. *Engine implements Clock directly, so the sim path is
// byte-identical to scheduling on the engine itself (gated by
// TestClockSeamEquivalence); service mode reuses the same engine paced
// against a WallClock, so the subsystems never notice which mode they run
// in. Implementations are not required to be goroutine-safe — service
// mode serializes all access externally (see internal/server).
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Schedule runs fn after delay of virtual time; negative delays fire
	// immediately, after events already scheduled for the current instant.
	Schedule(delay time.Duration, fn func()) *Event
	// At runs fn at absolute virtual time t; scheduling in the past panics.
	At(t time.Duration, fn func()) *Event
	// AtBatch schedules many events in one calendar operation, preserving
	// slice order for same-instant firings.
	AtBatch(items []Timed) []*Event
	// Cancel prevents a scheduled event from firing.
	Cancel(ev *Event)
	// RunUntil executes events with timestamps <= t and advances the
	// virtual clock to exactly t (checkpoint restore realigns time with
	// this; ordinary subsystems never drive the clock themselves).
	RunUntil(t time.Duration)
}

// Engine implements Clock.
var _ Clock = (*Engine)(nil)

// WallClock abstracts the passage of real time for service mode — the
// Now()/After()/Sleep() seam. The engine stays the single scheduling
// authority in both modes; a WallClock only decides how fast the pacer
// lets virtual time advance. Real() is backed by package time for
// deployments; NewSimClock is backed by an Engine so the identical
// service-mode code path runs deterministically under test.
type WallClock interface {
	// Now returns the current wall time.
	Now() time.Time
	// After returns a channel that delivers the wall time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// realClock is the production WallClock, backed by package time.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// Real returns the WallClock backed by package time. Passing it as
// erms.Options.Clock puts a System in service mode: virtual time tracks
// wall time instead of being driven by RunFor.
func Real() WallClock { return realClock{} }

// simEpoch anchors SimClock wall times at a fixed instant so simulated
// wall-clock runs are reproducible byte for byte.
var simEpoch = time.Date(2012, time.September, 24, 0, 0, 0, 0, time.UTC)

// SimClock is a WallClock backed by a simulation Engine: wall time is the
// engine's virtual clock offset from a fixed epoch, After is an engine
// event, and Sleep runs the engine forward. It lets the whole service-mode
// stack — pacer, HTTP handlers, drain logic — run deterministically in a
// test, with the test advancing time explicitly through Advance. Not
// goroutine-safe: drive it from one goroutine, like the Engine itself.
type SimClock struct {
	engine *Engine
}

// NewSimClock returns a WallClock that reads (and advances) the given
// engine. Pass the same engine the System runs on to pin wall time to the
// simulation, or a private engine to model an independent wall clock.
func NewSimClock(e *Engine) *SimClock { return &SimClock{engine: e} }

// Now returns the simulated wall time: a fixed epoch plus the engine's
// virtual clock.
func (c *SimClock) Now() time.Time { return simEpoch.Add(c.engine.Now()) }

// After returns a channel delivered (buffered, non-blocking) when the
// engine's clock passes d from now.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.engine.Schedule(d, func() { ch <- c.Now() })
	return ch
}

// Sleep advances the engine by d, firing everything due in between.
func (c *SimClock) Sleep(d time.Duration) { c.engine.RunFor(d) }

// Advance is Sleep under the name tests read naturally.
func (c *SimClock) Advance(d time.Duration) { c.engine.RunFor(d) }
