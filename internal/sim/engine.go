// Package sim provides a deterministic discrete-event simulation kernel.
//
// All ERMS subsystems — the network fabric, HDFS, the Condor scheduler, the
// CEP engine — run on a single Engine. Virtual time is a time.Duration
// measured from the start of the simulation. Events scheduled for the same
// instant fire in scheduling order (FIFO), which together with seeded random
// sources makes every run byte-for-byte reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	index    int // heap index; -1 once removed
	canceled bool
	fn       func()
}

// Time returns the virtual time at which the event fires (or would have
// fired, if canceled).
func (e *Event) Time() time.Duration { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now      time.Duration
	queue    eventHeap
	seq      uint64
	running  bool
	fired    uint64
	canceled int // canceled events still sitting in the queue
}

// NewEngine returns an Engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for progress reporting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events currently scheduled. Canceled
// events waiting to be discarded from the calendar are not counted.
func (e *Engine) Pending() int { return e.queue.Len() - e.canceled }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero: the event fires at the current time, after all events already
// scheduled for that time.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error
// that indicates a broken model, so it panics.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Timed pairs an absolute firing time with a callback, for AtBatch.
type Timed struct {
	At time.Duration
	Fn func()
}

// AtBatch schedules many events in one calendar operation. Sequence numbers
// are assigned in slice order, so the firing order is identical to calling At
// for each element in turn; the heap is rebuilt once with heap.Init (O(n))
// instead of sifting per event (O(n log n)). Workload preloading at the
// million-file scale is the intended caller.
func (e *Engine) AtBatch(items []Timed) []*Event {
	evs := make([]*Event, len(items))
	for i, it := range items {
		if it.At < e.now {
			panic(fmt.Sprintf("sim: scheduling event at %v before now %v", it.At, e.now))
		}
		if it.Fn == nil {
			panic("sim: nil event callback")
		}
		ev := &Event{at: it.At, seq: e.seq, fn: it.Fn, index: len(e.queue)}
		e.seq++
		e.queue = append(e.queue, ev)
		evs[i] = ev
	}
	heap.Init(&e.queue)
	return evs
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. The event stays in the calendar and is
// discarded when popped, or swept out in bulk once canceled entries dominate
// the queue.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if !ev.canceled && ev.index >= 0 {
		e.canceled++ // still queued: it no longer counts as pending
	}
	ev.canceled = true
	ev.fn = nil
	e.maybeCompact()
}

// maybeCompact removes canceled events from the calendar once they make up
// more than half of a large queue. Pop order depends only on (at, seq), both
// immutable, so rebuilding the heap without the dead entries cannot change
// which live event fires next.
func (e *Engine) maybeCompact() {
	if len(e.queue) < 1024 || e.canceled*2 <= len(e.queue) {
		return
	}
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.canceled {
			ev.index = -1
			continue
		}
		ev.index = len(live)
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	e.canceled = 0
	heap.Init(&e.queue)
}

// Step executes the next event, advancing the clock to its timestamp. It
// returns false if the calendar is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			e.canceled--
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the calendar is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t. Events scheduled for later remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// RunFor runs the simulation for d of virtual time from the current instant.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

func (e *Engine) peek() *Event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
		e.canceled--
	}
	return nil
}

// NextEventTime returns the timestamp of the next pending event and true, or
// zero and false if the calendar is empty.
func (e *Engine) NextEventTime() (time.Duration, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// eventHeap orders events by (time, sequence) so same-time events fire in
// the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Seconds converts a float64 number of seconds into a time.Duration,
// saturating instead of overflowing for very large values.
func Seconds(s float64) time.Duration {
	if math.IsInf(s, 1) || s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	if s < 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// ToSeconds converts a duration to float64 seconds.
func ToSeconds(d time.Duration) float64 { return d.Seconds() }
