package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	victim := e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(time.Second, func() { e.Cancel(victim) })
	e.Run()
	if fired {
		t.Fatal("event fired despite cancellation by earlier event")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	e.Schedule(1*time.Second, func() { at = append(at, e.Now()) })
	e.Schedule(5*time.Second, func() { at = append(at, e.Now()) })
	e.RunUntil(3 * time.Second)
	if len(at) != 1 || at[0] != time.Second {
		t.Fatalf("events before horizon = %v, want [1s]", at)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
	e.Run()
	if len(at) != 2 || at[1] != 5*time.Second {
		t.Fatalf("events after = %v", at)
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(3*time.Second, func() { fired = true })
	e.RunUntil(3 * time.Second)
	if !fired {
		t.Fatal("event at horizon should fire")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("clock = %v, want 99ms", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty calendar reported a next event")
	}
	ev := e.Schedule(4*time.Second, func() {})
	e.Schedule(7*time.Second, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 4*time.Second {
		t.Fatalf("next = %v,%v want 4s,true", at, ok)
	}
	e.Cancel(ev)
	if at, ok := e.NextEventTime(); !ok || at != 7*time.Second {
		t.Fatalf("next after cancel = %v,%v want 7s,true", at, ok)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tk := NewTicker(e, time.Second, func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// stop from inside the callback
		}
	})
	e.Schedule(3500*time.Millisecond, func() { tk.Stop() })
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 firings", ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	tk.Stop() // idempotent
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, func(time.Duration) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Seconds(-1) != 0 {
		t.Fatalf("Seconds(-1) = %v, want 0", Seconds(-1))
	}
	if Seconds(1e300) <= 0 {
		t.Fatal("huge Seconds should saturate positive")
	}
	if got := ToSeconds(2500 * time.Millisecond); got != 2.5 {
		t.Fatalf("ToSeconds = %v", got)
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// order they were scheduled in.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes events beyond the horizon.
func TestQuickRunUntilHorizon(t *testing.T) {
	f := func(delays []uint16, horizon uint16) bool {
		e := NewEngine()
		h := time.Duration(horizon) * time.Millisecond
		ok := true
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			e.Schedule(at, func() {
				if e.Now() > h {
					ok = false
				}
			})
		}
		e.RunUntil(h)
		return ok && e.Now() == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1.1, 100)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		r := z.Draw()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of bounds", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/draws < 0.5 {
		t.Fatalf("top-10 share %.2f, want heavy tail > 0.5", float64(top10)/draws)
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(NewRand(42), 0.9, 50)
	b := NewZipf(NewRand(42), 0.9, 50)
	for i := 0; i < 100; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("same-seed zipf streams diverged")
		}
	}
}

// AtBatch must fire events in exactly the order sequential At calls would:
// same (time, seq) ordering, interleaved correctly with prior At events.
func TestAtBatchMatchesSequentialAt(t *testing.T) {
	delays := []uint16{7, 3, 3, 0, 9, 3, 7, 1, 0, 9, 5}
	run := func(batch bool) []int {
		e := NewEngine()
		var got []int
		// A few events scheduled the ordinary way first, so batch seqs
		// start mid-stream.
		for i := 0; i < 3; i++ {
			i := i
			e.Schedule(3*time.Millisecond, func() { got = append(got, -1-i) })
		}
		if batch {
			items := make([]Timed, len(delays))
			for i, d := range delays {
				i := i
				items[i] = Timed{At: time.Duration(d) * time.Millisecond,
					Fn: func() { got = append(got, i) }}
			}
			e.AtBatch(items)
		} else {
			for i, d := range delays {
				i := i
				e.At(time.Duration(d)*time.Millisecond, func() { got = append(got, i) })
			}
		}
		e.Run()
		return got
	}
	seq, bat := run(false), run(true)
	if len(seq) != len(bat) {
		t.Fatalf("lengths differ: %v vs %v", seq, bat)
	}
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("order diverged at %d: sequential %v, batch %v", i, seq, bat)
		}
	}
}

func TestAtBatchCancelable(t *testing.T) {
	e := NewEngine()
	fired := 0
	evs := e.AtBatch([]Timed{
		{At: time.Second, Fn: func() { fired++ }},
		{At: 2 * time.Second, Fn: func() { fired++ }},
	})
	e.Cancel(evs[0])
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (first canceled)", fired)
	}
}

func TestAtBatchPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("AtBatch in the past did not panic")
		}
	}()
	e.AtBatch([]Timed{{At: 0, Fn: func() {}}})
}

// Compaction kicks in when canceled events dominate a large queue; the
// surviving events must still fire in the same order, and Pending must
// stay consistent.
func TestCancelCompaction(t *testing.T) {
	e := NewEngine()
	var victims []*Event
	var got []int
	const n = 4096
	for i := 0; i < n; i++ {
		i := i
		ev := e.Schedule(time.Duration(i%97+1)*time.Millisecond, func() { got = append(got, i) })
		if i%4 != 0 {
			victims = append(victims, ev)
		}
	}
	for _, v := range victims {
		e.Cancel(v)
	}
	if want := n - len(victims); e.Pending() != want {
		t.Fatalf("Pending = %d, want %d", e.Pending(), want)
	}
	// The queue itself must have shrunk: compaction ran.
	if len(e.queue) >= n {
		t.Fatalf("queue len %d not compacted below %d", len(e.queue), n)
	}
	e.Run()
	if len(got) != n-len(victims) {
		t.Fatalf("fired %d events, want %d", len(got), n-len(victims))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		da, db := a%97, b%97
		if da > db || (da == db && a > b) {
			t.Fatalf("events out of (time, seq) order: %d before %d", a, b)
		}
	}
}

// Property: with random schedule/cancel interleavings, a compacting engine
// fires exactly the same sequence as the pre-compaction semantics (cancel
// marks the event; live events fire in (time, seq) order).
func TestQuickCancelCompactionOrder(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := NewEngine()
		type rec struct {
			idx int
			ev  *Event
		}
		var evs []rec
		var got []int
		for i, d := range delays {
			i := i
			ev := e.Schedule(time.Duration(d)*time.Millisecond, func() { got = append(got, i) })
			evs = append(evs, rec{i, ev})
		}
		var want []int
		canceled := map[int]bool{}
		for i, r := range evs {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(r.ev)
				canceled[r.idx] = true
			}
		}
		type key struct {
			at  uint16
			seq int
		}
		var keys []key
		for i, d := range delays {
			if !canceled[i] {
				keys = append(keys, key{d, i})
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].at != keys[b].at {
				return keys[a].at < keys[b].at
			}
			return keys[a].seq < keys[b].seq
		})
		for _, k := range keys {
			want = append(want, k.seq)
		}
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
