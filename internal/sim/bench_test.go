package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for k := 0; k < 1000; k++ {
			e.Schedule(time.Duration(k)*time.Millisecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkNestedEventChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var rec func()
		rec = func() {
			n++
			if n < 10000 {
				e.Schedule(time.Microsecond, rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		evs := make([]*Event, 0, 1000)
		for k := 0; k < 1000; k++ {
			evs = append(evs, e.Schedule(time.Duration(k)*time.Millisecond, func() {}))
		}
		for _, ev := range evs[:900] {
			e.Cancel(ev)
		}
		e.Run()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(NewRand(1), 1.1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}
