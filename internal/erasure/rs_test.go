package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms exhaustively over small sets and by sampling.
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
		if a != 0 {
			if gfMul(byte(a), gfInv(byte(a))) != 1 {
				t.Fatalf("a * a^-1 != 1 for %d", a)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("mul not commutative")
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatal("mul not associative")
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatal("mul not distributive over xor")
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatal("div not inverse of mul")
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFExpPow(t *testing.T) {
	if gfExpPow(0, 0) != 1 || gfExpPow(0, 5) != 0 {
		t.Fatal("0^n wrong")
	}
	for a := 1; a < 256; a++ {
		x := byte(1)
		for n := 0; n < 6; n++ {
			if gfExpPow(byte(a), n) != x {
				t.Fatalf("%d^%d wrong", a, n)
			}
			x = gfMul(x, byte(a))
		}
	}
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(0, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCodec(3, -1); err == nil {
		t.Fatal("m<0 accepted")
	}
	if _, err := NewCodec(200, 56); err == nil {
		t.Fatal("k+m>255 accepted")
	}
	if _, err := NewCodec(251, 4); err != nil {
		t.Fatal("k+m=255 rejected")
	}
}

func randShards(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range [][2]int{{1, 4}, {4, 2}, {10, 4}, {6, 3}} {
		c, err := NewCodec(cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		data := randShards(rng, c.K, 1024)
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(parity) != c.M {
			t.Fatalf("parity count = %d", len(parity))
		}
		all := append(append([][]byte{}, data...), parity...)
		ok, err := c.Verify(all)
		if err != nil || !ok {
			t.Fatalf("Verify = %v, %v", ok, err)
		}
		// Corrupt one byte: Verify must fail.
		all[0][10] ^= 0xFF
		ok, err = c.Verify(all)
		if err != nil || ok {
			t.Fatal("Verify accepted corrupted data")
		}
		all[0][10] ^= 0xFF
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := NewCodec(3, 2)
	if _, err := c.Encode(make([][]byte, 2)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	bad := [][]byte{make([]byte, 10), make([]byte, 10), make([]byte, 9)}
	if _, err := c.Encode(bad); err == nil {
		t.Fatal("ragged shards accepted")
	}
}

// TestReconstructAllErasurePatterns exhaustively erases every subset of up
// to M shards for a small code and verifies recovery.
func TestReconstructAllErasurePatterns(t *testing.T) {
	const k, m = 4, 3
	c, err := NewCodec(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := randShards(rng, k, 256)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > m {
			continue
		}
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte(nil), full[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("mask %b: shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := NewCodec(4, 2)
	shards := make([][]byte, 6)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	shards[2] = make([]byte, 8)
	err := c.Reconstruct(shards)
	if !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructValidation(t *testing.T) {
	c, _ := NewCodec(2, 1)
	if err := c.Reconstruct(make([][]byte, 2)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	ragged := [][]byte{make([]byte, 4), make([]byte, 5), nil}
	if err := c.Reconstruct(ragged); err == nil {
		t.Fatal("ragged shards accepted")
	}
}

func TestPaperColdConfig(t *testing.T) {
	// The paper: "a replication factor of one and four coding parities."
	// With a 10-block stripe that is RS(10,4): 1.4x storage vs 3x.
	c, err := NewCodec(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StorageOverhead(); got != 1.4 {
		t.Fatalf("overhead = %v, want 1.4", got)
	}
	// Losing any 4 shards must still recover.
	rng := rand.New(rand.NewSource(3))
	data := randShards(rng, 10, 64)
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	shards := make([][]byte, 14)
	for i := range shards {
		shards[i] = append([]byte(nil), full[i]...)
	}
	// Erase 4 data shards (worst case).
	shards[0], shards[3], shards[5], shards[9] = nil, nil, nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], full[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestSingleDataShardCode(t *testing.T) {
	// RS(1, 4): one replica plus four parities, each parity a copy-like
	// transform of the data. Any single survivor restores everything.
	c, err := NewCodec(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{[]byte("cold block contents")}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < 5; lost++ {
		shards := make([][]byte, 5)
		src := append([][]byte{data[0]}, parity...)
		// Keep only one shard (index `lost` is the survivor here).
		shards[lost] = append([]byte(nil), src[lost]...)
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("survivor %d: %v", lost, err)
		}
		if !bytes.Equal(shards[0], data[0]) {
			t.Fatalf("survivor %d: data mismatch", lost)
		}
	}
}

// Property: encode → erase random <= M shards → reconstruct → identical.
func TestQuickReconstruct(t *testing.T) {
	type params struct {
		Seed int64
		K, M uint8
	}
	f := func(p params) bool {
		k := int(p.K%8) + 1
		m := int(p.M%5) + 1
		c, err := NewCodec(k, m)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(p.Seed))
		data := randShards(rng, k, 128)
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		full := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = append([]byte(nil), full[i]...)
		}
		// Erase a random subset of size 1..m.
		erase := rng.Perm(k + m)[:1+rng.Intn(m)]
		for _, i := range erase {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: parity is linear — encoding the XOR of two datasets equals the
// XOR of their encodings.
func TestQuickLinearity(t *testing.T) {
	c, err := NewCodec(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randShards(rng, 5, 64)
		b := randShards(rng, 5, 64)
		xor := make([][]byte, 5)
		for i := range xor {
			xor[i] = make([]byte, 64)
			for j := range xor[i] {
				xor[i][j] = a[i][j] ^ b[i][j]
			}
		}
		pa, _ := c.Encode(a)
		pb, _ := c.Encode(b)
		px, _ := c.Encode(xor)
		for i := range px {
			for j := range px[i] {
				if px[i][j] != pa[i][j]^pb[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRS10_4(b *testing.B) {
	c, _ := NewCodec(10, 4)
	rng := rand.New(rand.NewSource(1))
	data := randShards(rng, 10, 1<<20)
	b.SetBytes(10 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS10_4(b *testing.B) {
	c, _ := NewCodec(10, 4)
	rng := rand.New(rand.NewSource(1))
	data := randShards(rng, 10, 1<<20)
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(10 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 14)
		copy(shards, full)
		shards[0], shards[1], shards[2], shards[3] = nil, nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
