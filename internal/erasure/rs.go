package erasure

import (
	"errors"
	"fmt"
)

// Codec is a systematic Reed–Solomon code with K data shards and M parity
// shards. Any K of the K+M shards reconstruct the original data.
type Codec struct {
	K, M int
	// parityRows is the M x K encoding matrix: parity p = sum_j rows[p][j]*data[j].
	parityRows [][]byte
}

// ErrTooFewShards is returned when fewer than K shards survive.
var ErrTooFewShards = errors.New("erasure: fewer than K shards available")

// NewCodec builds an RS(K, M) codec. The paper's cold-data configuration is
// K data blocks with M=4 parities. K+M must be at most 256 (field size).
func NewCodec(k, m int) (*Codec, error) {
	if k <= 0 || m < 0 {
		return nil, fmt.Errorf("erasure: invalid RS(%d,%d)", k, m)
	}
	// Evaluation points are alpha^r, distinct only for r in [0, 255), so
	// the code supports at most 255 total shards.
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: RS(%d,%d) exceeds GF(256) capacity", k, m)
	}
	c := &Codec{K: k, M: m}
	// Build a (k+m) x k Vandermonde matrix V with distinct evaluation
	// points x_r = alpha^r, then right-multiply by the inverse of its top
	// k x k block T: G = V * T^{-1}. The top of G becomes the identity
	// (systematic) and every k x k row-submatrix of G stays invertible
	// because every k x k row-submatrix of V is a square Vandermonde
	// matrix with distinct points. The bottom m rows of G are the parity
	// encoding matrix.
	rows := k + m
	v := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		v[r] = make([]byte, k)
		for cIdx := 0; cIdx < k; cIdx++ {
			v[r][cIdx] = gfExpPow(gfExp[r], cIdx)
		}
	}
	top := make([][]byte, k)
	for r := 0; r < k; r++ {
		top[r] = append([]byte(nil), v[r]...)
	}
	tinv, err := invertMatrix(top)
	if err != nil {
		return nil, err
	}
	c.parityRows = make([][]byte, m)
	for p := 0; p < m; p++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			var acc byte
			for cIdx := 0; cIdx < k; cIdx++ {
				acc ^= gfMul(v[k+p][cIdx], tinv[cIdx][j])
			}
			row[j] = acc
		}
		c.parityRows[p] = row
	}
	return c, nil
}

// Encode computes the M parity shards for the given K data shards. All data
// shards must be the same length. The returned parity shards have that same
// length.
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("erasure: got %d data shards, want %d", len(data), c.K)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("erasure: shard %d has size %d, want %d", i, len(d), size)
		}
	}
	parity := make([][]byte, c.M)
	for p := 0; p < c.M; p++ {
		parity[p] = make([]byte, size)
		for j := 0; j < c.K; j++ {
			mulSlice(c.parityRows[p][j], data[j], parity[p])
		}
	}
	return parity, nil
}

// Reconstruct fills in missing shards. shards has length K+M: indexes 0..K-1
// are data, K..K+M-1 are parity; nil entries are missing. On success every
// entry is populated in place. At least K entries must be non-nil.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.K+c.M {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.K+c.M)
	}
	present := 0
	size := -1
	for _, s := range shards {
		if s != nil {
			present++
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return errors.New("erasure: inconsistent shard sizes")
			}
		}
	}
	if present < c.K {
		return ErrTooFewShards
	}
	missingData := false
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			missingData = true
			break
		}
	}
	if missingData {
		if err := c.solveData(shards, size); err != nil {
			return err
		}
	}
	// Re-encode any missing parity from the (now complete) data.
	needParity := false
	for i := c.K; i < c.K+c.M; i++ {
		if shards[i] == nil {
			needParity = true
			break
		}
	}
	if needParity {
		parity, err := c.Encode(shards[:c.K])
		if err != nil {
			return err
		}
		for i := c.K; i < c.K+c.M; i++ {
			if shards[i] == nil {
				shards[i] = parity[i-c.K]
			}
		}
	}
	return nil
}

// solveData recovers the missing data shards by inverting the K x K matrix
// formed by the generator rows of K surviving shards.
func (c *Codec) solveData(shards [][]byte, size int) error {
	// Generator matrix G is [I; P] (K+M rows). Pick K surviving rows.
	rows := make([][]byte, 0, c.K)
	srcs := make([][]byte, 0, c.K)
	for i := 0; i < c.K+c.M && len(rows) < c.K; i++ {
		if shards[i] == nil {
			continue
		}
		var row []byte
		if i < c.K {
			row = make([]byte, c.K)
			row[i] = 1
		} else {
			row = append([]byte(nil), c.parityRows[i-c.K]...)
		}
		rows = append(rows, row)
		srcs = append(srcs, shards[i])
	}
	inv, err := invertMatrix(rows)
	if err != nil {
		return err
	}
	// data[j] = sum_i inv[j][i] * srcs[i]; only materialize missing ones.
	for j := 0; j < c.K; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		for i := 0; i < c.K; i++ {
			mulSlice(inv[j][i], srcs[i], out)
		}
		shards[j] = out
	}
	return nil
}

// invertMatrix returns the inverse of a square GF(256) matrix via
// Gauss–Jordan. The input is consumed.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular decode matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := m[col][col]; p != 1 {
			s := gfInv(p)
			for j := 0; j < n; j++ {
				m[col][j] = gfMul(m[col][j], s)
				inv[col][j] = gfMul(inv[col][j], s)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gfMul(f, m[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Verify recomputes parities from the data shards and reports whether they
// match the stored parity shards.
func (c *Codec) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.K+c.M {
		return false, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.K+c.M)
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("erasure: Verify requires all shards present")
		}
	}
	parity, err := c.Encode(shards[:c.K])
	if err != nil {
		return false, err
	}
	for p := 0; p < c.M; p++ {
		stored := shards[c.K+p]
		for i := range parity[p] {
			if parity[p][i] != stored[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// StorageOverhead returns the code's storage expansion factor relative to
// the raw data, e.g. RS(10,4) -> 1.4. ERMS contrasts this with 3x
// triplication for cold data.
func (c *Codec) StorageOverhead() float64 {
	return float64(c.K+c.M) / float64(c.K)
}
