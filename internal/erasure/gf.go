// Package erasure implements the Reed–Solomon erasure coding ERMS applies
// to cold data ("a replication factor of one and four coding parities").
//
// The codec is systematic: the k data shards are stored unmodified and m
// parity shards are appended, so ordinary reads never touch the decoder.
// Arithmetic is over GF(2^8) with the polynomial x^8+x^4+x^3+x^2+1
// (0x11D, the conventional Reed-Solomon polynomial, under which x is primitive), using log/exp tables.
package erasure

// gfPoly is the reduction polynomial for GF(2^8).
const gfPoly = 0x11D

var (
	gfExp [512]byte // exp table doubled to avoid mod-255 in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; a must be nonzero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExpPow returns a^n for field element a.
func gfExpPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	idx := (int(gfLog[a]) * n) % 255
	if idx < 0 {
		idx += 255
	}
	return gfExp[idx]
}

// mulSlice computes dst[i] ^= c * src[i] for all i (accumulating
// multiply-add, the inner loop of encoding).
func mulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// setMulSlice computes dst[i] = c * src[i].
func setMulSlice(c byte, src, dst []byte) {
	if c == 0 {
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = gfExp[logC+int(gfLog[s])]
		}
	}
}
