package mapred

import (
	"testing"
	"time"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

const mb = float64(topology.MB)

func newRuntime(t *testing.T, sched Scheduler) (*sim.Engine, *hdfs.Cluster, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	topo := topology.New(topology.Config{})
	h := hdfs.New(e, hdfs.Config{Topology: topo})
	return e, h, New(h, 2, sched)
}

func TestSubmitUnknownFile(t *testing.T) {
	_, _, mr := newRuntime(t, NewFIFO())
	if err := mr.Submit(&Job{Name: "j", File: "/nope"}); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestSingleJobRunsAllTasks(t *testing.T) {
	e, h, mr := newRuntime(t, NewFIFO())
	h.CreateFile("/in", 256*mb, 3, 0) // 4 blocks
	j := &Job{Name: "wordcount", File: "/in"}
	var finished *Job
	mr.OnJobDone(func(x *Job) { finished = x })
	if err := mr.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if finished == nil || !j.Done || j.Err != nil {
		t.Fatalf("job did not finish cleanly: %+v", j)
	}
	if j.Tasks() != 4 || j.NodeLocalTasks+j.RackLocalTasks+j.RemoteTasks != 4 {
		t.Fatalf("task accounting: %+v", j)
	}
	if j.BytesRead != 256*mb {
		t.Fatalf("bytes read = %v MB", j.BytesRead/mb)
	}
	if j.Duration() <= 0 || j.ReadThroughputMBps() <= 0 {
		t.Fatalf("metrics: dur=%v tp=%v", j.Duration(), j.ReadThroughputMBps())
	}
}

func TestComputeCostExtendsJob(t *testing.T) {
	run := func(compute time.Duration) time.Duration {
		e, h, mr := newRuntime(t, NewFIFO())
		h.CreateFile("/in", 128*mb, 3, 0)
		j := &Job{Name: "j", File: "/in", ComputePerMB: compute}
		mr.Submit(j)
		e.Run()
		return j.Duration()
	}
	fast := run(0)
	slow := run(10 * time.Millisecond) // 640ms extra per 64MB block
	if slow <= fast {
		t.Fatalf("compute cost had no effect: %v vs %v", fast, slow)
	}
}

func TestFIFOOrdersJobs(t *testing.T) {
	e, h, mr := newRuntime(t, NewFIFO())
	// Big cluster-wide file so job1 occupies all slots for a while.
	h.CreateFile("/big", 4*1024*mb, 3, 0)
	h.CreateFile("/small", 64*mb, 3, 0)
	j1 := &Job{Name: "first", File: "/big"}
	j2 := &Job{Name: "second", File: "/small"}
	mr.Submit(j1)
	mr.Submit(j2)
	e.Run()
	if !j1.Done || !j2.Done {
		t.Fatal("jobs incomplete")
	}
	// FIFO: the small job's task had to wait for free slots; under Fair it
	// would start almost immediately. With FIFO its start is delayed until
	// a slot frees from job1's first wave.
	if j2.StartTime == j2.SubmitTime {
		t.Fatal("FIFO let the second job start instantly despite saturated slots")
	}
}

func TestFairSharesSlots(t *testing.T) {
	e, h, mr := newRuntime(t, NewFair())
	h.CreateFile("/a", 2*1024*mb, 3, 0)
	h.CreateFile("/b", 2*1024*mb, 3, 0)
	ja := &Job{Name: "a", File: "/a"}
	jb := &Job{Name: "b", File: "/b"}
	mr.Submit(ja)
	mr.Submit(jb)
	// Shortly after start, both jobs should be running tasks concurrently.
	e.RunUntil(2 * time.Second)
	if ja.running == 0 || jb.running == 0 {
		t.Fatalf("fair scheduler not sharing: a=%d b=%d", ja.running, jb.running)
	}
	e.Run()
	if !ja.Done || !jb.Done {
		t.Fatal("jobs incomplete")
	}
}

func TestFairDelaySchedulingImprovesLocality(t *testing.T) {
	// Many single-block files on scattered nodes, two competing jobs per
	// scheduler run; Fair-with-delay should get at least as much locality
	// as Fair-without-delay (MaxSkips=0).
	run := func(skips int) float64 {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		h := hdfs.New(e, hdfs.Config{Topology: topo})
		f := &Fair{MaxSkips: skips}
		mr := New(h, 1, f)
		var jobs []*Job
		for i := 0; i < 6; i++ {
			path := "/in" + string(rune('a'+i))
			h.CreateFile(path, 192*mb, 3, topology.NodeID(i*3%18))
			j := &Job{Name: path, File: path, ComputePerMB: 5 * time.Millisecond}
			jobs = append(jobs, j)
			mr.Submit(j)
		}
		e.Run()
		local, total := 0, 0
		for _, j := range jobs {
			if !j.Done {
				t.Fatal("job incomplete")
			}
			local += j.NodeLocalTasks
			total += j.Tasks()
		}
		return float64(local) / float64(total)
	}
	noDelay := run(0)
	withDelay := run(6)
	if withDelay < noDelay {
		t.Fatalf("delay scheduling hurt locality: %.2f -> %.2f", noDelay, withDelay)
	}
}

func TestHigherReplicationImprovesLocality(t *testing.T) {
	run := func(repl int) float64 {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		h := hdfs.New(e, hdfs.Config{Topology: topo})
		mr := New(h, 2, NewFIFO())
		h.CreateFile("/in", 1024*mb, repl, 0)
		j := &Job{Name: "j", File: "/in"}
		mr.Submit(j)
		e.Run()
		return j.LocalityFraction()
	}
	lo := run(1)
	hi := run(9)
	if hi <= lo {
		t.Fatalf("locality did not improve with replication: r1=%.2f r9=%.2f", lo, hi)
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewFIFO().Name() != "FIFO" || NewFair().Name() != "Fair" {
		t.Fatal("names")
	}
}

func TestWeightsBiasFairShares(t *testing.T) {
	// MaxSkips=0 isolates the weighted-share policy from delay scheduling
	// (which deliberately lets a low-weight job with local data jump ahead).
	e, h, mr := newRuntime(t, &Fair{MaxSkips: 0})
	h.CreateFile("/a", 8192*mb, 3, 0) // 128 tasks each, so neither drains
	h.CreateFile("/b", 8192*mb, 3, 0)
	heavy := &Job{Name: "heavy", File: "/a", Weight: 4, ComputePerMB: 20 * time.Millisecond}
	light := &Job{Name: "light", File: "/b", Weight: 1, ComputePerMB: 20 * time.Millisecond}
	mr.Submit(heavy)
	mr.Submit(light)
	e.RunUntil(1 * time.Second) // before any task completes
	if heavy.running <= light.running {
		t.Fatalf("weights ignored: heavy=%d light=%d", heavy.running, light.running)
	}
	e.Run()
}

func TestRunningTasksGauge(t *testing.T) {
	e, h, mr := newRuntime(t, NewFIFO())
	h.CreateFile("/in", 512*mb, 3, 0)
	mr.Submit(&Job{Name: "j", File: "/in"})
	if mr.RunningTasks() == 0 {
		t.Fatal("no tasks launched at submit")
	}
	e.Run()
	if mr.RunningTasks() != 0 {
		t.Fatal("tasks still running after drain")
	}
	if len(mr.Jobs()) != 1 || mr.Scheduler().Name() != "FIFO" || mr.HDFS() == nil {
		t.Fatal("accessors")
	}
}

func TestReduceStageExtendsJobAndShuffles(t *testing.T) {
	run := func(reducers int) (*Job, time.Duration) {
		e, h, mr := newRuntime(t, NewFIFO())
		h.CreateFile("/in", 512*mb, 3, 0)
		j := &Job{Name: "agg", File: "/in", Reducers: reducers,
			ReducePerMB: 5 * time.Millisecond}
		if err := mr.Submit(j); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if !j.Done || j.Err != nil {
			t.Fatalf("job: %+v", j)
		}
		return j, j.Duration()
	}
	mapOnly, d0 := run(0)
	withReduce, d2 := run(2)
	if d2 <= d0 {
		t.Fatalf("reduce stage added no time: %v vs %v", d2, d0)
	}
	if mapOnly.ShuffledBytes != 0 {
		t.Fatal("map-only job shuffled data")
	}
	if withReduce.ShuffledBytes <= 0 {
		t.Fatal("reduce job shuffled nothing")
	}
	// Shuffle volume is bounded by selectivity% of the input.
	if withReduce.ShuffledBytes > 512*mb*withReduce.SelectivityPct/100 {
		t.Fatalf("shuffled %v MB, more than the map output", withReduce.ShuffledBytes/mb)
	}
}

func TestReduceDefaultsSelectivity(t *testing.T) {
	e, h, mr := newRuntime(t, NewFIFO())
	h.CreateFile("/in", 128*mb, 3, 0)
	j := &Job{Name: "j", File: "/in", Reducers: 1}
	mr.Submit(j)
	e.Run()
	if j.SelectivityPct != 20 {
		t.Fatalf("selectivity = %v, want default 20", j.SelectivityPct)
	}
	if !j.Done {
		t.Fatal("job incomplete")
	}
}

func TestShuffleVolumeIsMapOutputMinusLocal(t *testing.T) {
	run := func(reducers int) *Job {
		e, h, mr := newRuntime(t, NewFIFO())
		h.CreateFile("/in", 1024*mb, 3, 0)
		j := &Job{Name: "j", File: "/in", Reducers: reducers}
		mr.Submit(j)
		e.Run()
		if !j.Done || j.Err != nil {
			t.Fatalf("job: %+v", j)
		}
		return j
	}
	// Whatever the reducer count, the shuffle moves the map output minus
	// the reducer-local partitions: strictly positive, strictly below the
	// full map output, and at least half of it (partitions are spread over
	// many map nodes, so locality can only absorb a small share).
	for _, reducers := range []int{1, 4, 8} {
		j := run(reducers)
		output := j.BytesRead * j.SelectivityPct / 100
		if j.ShuffledBytes <= output/2 || j.ShuffledBytes >= output {
			t.Fatalf("reducers=%d: shuffled %v MB of %v MB map output",
				reducers, j.ShuffledBytes/mb, output/mb)
		}
	}
}

func TestSpeculativeExecutionRescuesStraggler(t *testing.T) {
	run := func(speculative bool) (*Job, time.Duration) {
		e, h, mr := newRuntime(t, NewFIFO())
		// Single-replica blocks all on node 0 so every task reads from it;
		// then throttle node 0's disk hard partway through, creating
		// stragglers whose reads crawl.
		h.CreateFile("/in", 512*mb, 3, -1)
		// Throttle the node serving the LAST block's primary replica after
		// the job is underway.
		j := &Job{Name: "j", File: "/in", Speculative: speculative}
		if err := mr.Submit(j); err != nil {
			t.Fatal(err)
		}
		// After most tasks finish, load one serving node's disk so any task
		// still reading from it crawls.
		e.Schedule(200*time.Millisecond, func() {
			h.StartDiskLoad(0, 8, 10*mb)
			h.StartDiskLoad(1, 8, 10*mb)
		})
		e.RunUntil(10 * time.Minute)
		if !j.Done {
			t.Fatalf("job incomplete (speculative=%v)", speculative)
		}
		return j, j.Duration()
	}
	_, plain := run(false)
	spec, specDur := run(true)
	if spec.SpeculativeLaunched == 0 {
		t.Fatal("no speculative attempts launched")
	}
	if specDur > plain {
		t.Fatalf("speculation made the job slower: %v vs %v", specDur, plain)
	}
	if spec.SpeculativeWon == 0 {
		t.Log("backups launched but primaries won; acceptable, still bounded")
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	e, h, mr := newRuntime(t, NewFIFO())
	h.CreateFile("/in", 256*mb, 3, 0)
	j := &Job{Name: "j", File: "/in"}
	mr.Submit(j)
	e.Run()
	if j.SpeculativeLaunched != 0 {
		t.Fatal("speculation ran without opt-in")
	}
}
