package mapred

import (
	"erms/internal/hdfs"
	"erms/internal/topology"
)

// FIFO is Hadoop's default scheduler: jobs run in submission order; within
// the head job, the most local pending task is chosen for each slot. Only
// when the head job has no pending tasks does the next job get slots.
type FIFO struct{}

// NewFIFO returns the FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Pick implements Scheduler.
func (f *FIFO) Pick(c *Cluster, node topology.NodeID, jobs []*Job) (*Job, hdfs.BlockID, bool) {
	for _, j := range jobs {
		if len(j.pending) == 0 {
			continue
		}
		bid, _ := c.bestBlockFor(j, node)
		return j, bid, true
	}
	return nil, 0, false
}

// Fair is the Hadoop Fair Scheduler with delay scheduling: slots go to the
// job with the smallest running/weight ratio, but a job whose turn arrives
// on a node holding none of its data may be skipped up to MaxSkips times in
// favor of a job with node-local work, trading "a small delay for tasks"
// for locality — exactly the behaviour Figure 3 observes.
type Fair struct {
	// MaxSkips bounds how many scheduling opportunities a job may decline
	// while waiting for a node-local slot. Default 4.
	MaxSkips int
	skips    map[int]int // job ID -> consecutive skips
}

// NewFair returns a Fair scheduler with the default skip bound.
func NewFair() *Fair { return &Fair{MaxSkips: 4, skips: make(map[int]int)} }

// Name implements Scheduler.
func (f *Fair) Name() string { return "Fair" }

// Pick implements Scheduler.
func (f *Fair) Pick(c *Cluster, node topology.NodeID, jobs []*Job) (*Job, hdfs.BlockID, bool) {
	if f.skips == nil {
		f.skips = make(map[int]int)
	}
	// Deficit order: fewest running tasks per weight first; FIFO tie-break.
	var order []*Job
	for _, j := range jobs {
		if len(j.pending) > 0 {
			order = append(order, j)
		}
	}
	if len(order) == 0 {
		return nil, 0, false
	}
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if deficit(order[k]) < deficit(order[i]) {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	// Delay scheduling: give the slot to the first job in deficit order
	// that has a node-local task; jobs passed over accumulate skips. A job
	// that has exhausted its skips takes the slot regardless of locality.
	for _, j := range order {
		bid, tier := c.bestBlockFor(j, node)
		if tier == 0 {
			f.skips[j.ID] = 0
			return j, bid, true
		}
		if f.skips[j.ID] >= f.MaxSkips {
			f.skips[j.ID] = 0
			return j, bid, true
		}
		f.skips[j.ID]++
	}
	// Every job is still within its delay budget: leave the slot idle this
	// round; a future completion or new job will re-dispatch.
	return nil, 0, false
}

func deficit(j *Job) float64 { return float64(j.running) / j.Weight }
