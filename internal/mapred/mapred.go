// Package mapred models the Hadoop MapReduce execution layer the paper's
// Figure 3 exercises: jobs decompose into map tasks (one per input block),
// tasktrackers expose a fixed number of map slots per node, and a pluggable
// scheduler (FIFO or Fair with delay scheduling) assigns tasks to free
// slots, preferring data-local execution. Each task reads its block through
// the simulated HDFS (contending for disks, NICs and sessions) and then
// computes for a configurable per-MB cost.
package mapred

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/hdfs"
	"erms/internal/topology"
)

// Job is one MapReduce job reading a single input file.
type Job struct {
	ID     int
	Name   string
	File   string
	Weight float64 // fair-share weight; default 1

	// ComputePerMB is map-side compute cost per input MB (beyond the read).
	ComputePerMB time.Duration

	// Reducers, when positive, adds a reduce stage: after the last map
	// task, each reducer fetches its shuffle partition (SelectivityPct% of
	// the input, split evenly) from the map nodes over the network, then
	// computes for ReducePerMB per fetched MB. Zero keeps the job map-only.
	Reducers int
	// SelectivityPct is the map output volume as a percentage of the input
	// (default 20 — typical aggregation jobs shrink their data).
	SelectivityPct float64
	// ReducePerMB is reduce-side compute cost per shuffled MB.
	ReducePerMB time.Duration

	SubmitTime time.Duration
	StartTime  time.Duration
	EndTime    time.Duration
	Done       bool
	Err        error

	// Speculative enables backup attempts for straggler tasks (Hadoop's
	// speculative execution): once a job is out of pending work, a task
	// that has run more than twice the job's mean task time gets a
	// duplicate attempt on another node; the first finisher wins.
	Speculative bool
	// SpeculativeLaunched counts backup attempts started.
	SpeculativeLaunched int
	// SpeculativeWon counts tasks whose backup finished first.
	SpeculativeWon int

	pending   []hdfs.BlockID
	running   int
	completed int
	total     int
	attempts  map[hdfs.BlockID]*taskAttempt
	taskSecs  float64 // summed completed-task durations
	// mapNodes records how much map output each node produced, feeding the
	// shuffle.
	mapNodes map[topology.NodeID]float64
	reducing int
	// ShuffledBytes totals the data moved by the shuffle.
	ShuffledBytes float64

	NodeLocalTasks int
	RackLocalTasks int
	RemoteTasks    int
	BytesRead      float64
	// ReadSeconds accumulates per-task read time, for read-throughput
	// metrics isolated from compute.
	ReadSeconds float64
}

// Duration returns the job's makespan (submit to finish).
func (j *Job) Duration() time.Duration { return j.EndTime - j.SubmitTime }

// LocalityFraction returns the fraction of tasks that ran node-local.
func (j *Job) LocalityFraction() float64 {
	if j.total == 0 {
		return 0
	}
	return float64(j.NodeLocalTasks) / float64(j.total)
}

// ReadThroughputMBps returns the job's aggregate read throughput: bytes
// read divided by time spent reading (summed across tasks).
func (j *Job) ReadThroughputMBps() float64 {
	if j.ReadSeconds <= 0 {
		return 0
	}
	return j.BytesRead / topology.MB / j.ReadSeconds
}

// Tasks returns the total task count.
func (j *Job) Tasks() int { return j.total }

// Scheduler picks the next task for a free map slot.
type Scheduler interface {
	Name() string
	// Pick returns the job whose task should run on node, and the chosen
	// block, or ok=false when no job wants the slot. jobs are the live
	// (incomplete) jobs in submission order.
	Pick(c *Cluster, node topology.NodeID, jobs []*Job) (*Job, hdfs.BlockID, bool)
}

// Cluster is the MapReduce runtime bound to a simulated HDFS cluster.
type Cluster struct {
	hdfs         *hdfs.Cluster
	slotsPerNode int
	sched        Scheduler
	free         map[topology.NodeID]int
	jobs         []*Job
	nextID       int
	onDone       []func(*Job)
	dispatching  bool
}

// New builds a MapReduce runtime with slotsPerNode map slots on every
// datanode (default 2, the Hadoop-era norm for dual-core nodes).
func New(h *hdfs.Cluster, slotsPerNode int, sched Scheduler) *Cluster {
	if slotsPerNode <= 0 {
		slotsPerNode = 2
	}
	if sched == nil {
		sched = NewFIFO()
	}
	c := &Cluster{hdfs: h, slotsPerNode: slotsPerNode, sched: sched,
		free: make(map[topology.NodeID]int)}
	for _, n := range h.Topology().Nodes {
		c.free[n.ID] = slotsPerNode
	}
	return c
}

// HDFS returns the underlying storage cluster.
func (c *Cluster) HDFS() *hdfs.Cluster { return c.hdfs }

// Scheduler returns the active scheduler.
func (c *Cluster) Scheduler() Scheduler { return c.sched }

// Jobs returns every submitted job.
func (c *Cluster) Jobs() []*Job { return c.jobs }

// OnJobDone registers a completion callback.
func (c *Cluster) OnJobDone(fn func(*Job)) { c.onDone = append(c.onDone, fn) }

// Submit queues a job; its map tasks are one per block of the input file.
func (c *Cluster) Submit(j *Job) error {
	f := c.hdfs.File(j.File)
	if f == nil {
		return fmt.Errorf("mapred: input %q does not exist", j.File)
	}
	if j.Weight <= 0 {
		j.Weight = 1
	}
	if j.Reducers > 0 && j.SelectivityPct <= 0 {
		j.SelectivityPct = 20
	}
	c.nextID++
	j.ID = c.nextID
	j.SubmitTime = c.hdfs.Clock().Now()
	j.pending = append([]hdfs.BlockID(nil), f.Blocks...)
	j.total = len(j.pending)
	j.mapNodes = make(map[topology.NodeID]float64)
	j.attempts = make(map[hdfs.BlockID]*taskAttempt)
	c.jobs = append(c.jobs, j)
	c.dispatch()
	return nil
}

// RunningTasks returns the number of map tasks executing now.
func (c *Cluster) RunningTasks() int {
	n := 0
	for _, j := range c.jobs {
		n += j.running
	}
	return n
}

// live returns incomplete jobs in submission order.
func (c *Cluster) live() []*Job {
	var out []*Job
	for _, j := range c.jobs {
		if !j.Done && (len(j.pending) > 0 || j.running > 0) {
			out = append(out, j)
		}
	}
	return out
}

// HasLocalTask reports whether job j has a pending task whose block has a
// replica on node (used by delay scheduling).
func (c *Cluster) HasLocalTask(j *Job, node topology.NodeID) bool {
	for _, bid := range j.pending {
		for _, r := range c.hdfs.Replicas(bid) {
			if topology.NodeID(r) == node && c.hdfs.Datanode(r).State == hdfs.StateActive {
				return true
			}
		}
	}
	return false
}

// bestBlockFor returns j's pending block with the best locality for node:
// node-local, then rack-local, then the first pending block.
func (c *Cluster) bestBlockFor(j *Job, node topology.NodeID) (hdfs.BlockID, int) {
	bestIdx := -1
	bestTier := 3
	for i, bid := range j.pending {
		tier := 2
		for _, r := range c.hdfs.Replicas(bid) {
			if c.hdfs.Datanode(r).State != hdfs.StateActive {
				continue
			}
			if topology.NodeID(r) == node {
				tier = 0
				break
			}
			if c.hdfs.Topology().SameRack(topology.NodeID(r), node) && tier > 1 {
				tier = 1
			}
		}
		if tier < bestTier {
			bestTier = tier
			bestIdx = i
		}
		if bestTier == 0 {
			break
		}
	}
	if bestIdx < 0 {
		return 0, 3
	}
	return j.pending[bestIdx], bestTier
}

// takeBlock removes bid from j's pending list.
func (j *Job) takeBlock(bid hdfs.BlockID) {
	for i, b := range j.pending {
		if b == bid {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			return
		}
	}
}

// dispatch assigns free slots until no scheduler makes progress. It guards
// against re-entry (task completions call it again).
func (c *Cluster) dispatch() {
	if c.dispatching {
		return
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()
	for {
		progress := false
		live := c.live()
		if len(live) == 0 {
			return
		}
		for _, n := range c.hdfs.Topology().Nodes {
			node := n.ID
			for c.free[node] > 0 {
				j, bid, ok := c.sched.Pick(c, node, c.live())
				if ok {
					c.launch(j, bid, node, false)
					progress = true
					continue
				}
				// No regular work for this slot: consider a speculative
				// backup for a straggler.
				if sj, sbid, sok := c.pickSpeculative(node); sok {
					c.launch(sj, sbid, node, true)
					progress = true
					continue
				}
				break
			}
		}
		if !progress {
			// Starvation guard: a delay-scheduling policy may decline every
			// slot hoping for locality. If nothing at all is running, force
			// the first pending task onto the first free slot so the
			// simulation always advances.
			if c.RunningTasks() == 0 {
				for _, n := range c.hdfs.Topology().Nodes {
					if c.free[n.ID] <= 0 {
						continue
					}
					for _, j := range c.live() {
						if len(j.pending) > 0 {
							bid, _ := c.bestBlockFor(j, n.ID)
							c.launch(j, bid, n.ID, false)
							progress = true
							break
						}
					}
					if progress {
						break
					}
				}
			}
			if !progress {
				return
			}
		}
	}
}

// taskAttempt tracks one block's execution (and its optional speculative
// backup).
type taskAttempt struct {
	start  time.Duration
	node   topology.NodeID // node running the primary attempt
	done   bool
	backup bool // a backup attempt has been launched
}

// launch runs one map task attempt on node: read the block, then compute.
// backup marks a speculative duplicate of an already-running task.
func (c *Cluster) launch(j *Job, bid hdfs.BlockID, node topology.NodeID, backup bool) {
	if j.StartTime == 0 && j.running == 0 && j.completed == 0 {
		j.StartTime = c.hdfs.Clock().Now()
	}
	att := j.attempts[bid]
	if backup {
		att.backup = true
		j.SpeculativeLaunched++
	} else {
		j.takeBlock(bid)
		att = &taskAttempt{start: c.hdfs.Clock().Now(), node: node}
		j.attempts[bid] = att
	}
	j.running++
	c.free[node]--
	readStart := c.hdfs.Clock().Now()
	c.hdfs.ReadBlock(node, bid, func(bytes float64, loc hdfs.Locality, err error) {
		if att.done {
			c.finishLoser(j, node)
			return
		}
		if err != nil {
			att.done = true
			c.finishTask(j, node, err)
			return
		}
		readSecs := (c.hdfs.Clock().Now() - readStart).Seconds()
		compute := time.Duration(float64(j.ComputePerMB) * bytes / topology.MB)
		c.hdfs.Clock().Schedule(compute, func() {
			if att.done {
				c.finishLoser(j, node)
				return
			}
			att.done = true
			// Winner's statistics only.
			j.BytesRead += bytes
			j.ReadSeconds += readSecs
			switch loc {
			case hdfs.NodeLocal:
				j.NodeLocalTasks++
			case hdfs.RackLocal:
				j.RackLocalTasks++
			default:
				j.RemoteTasks++
			}
			j.mapNodes[node] += bytes * j.SelectivityPct / 100
			j.taskSecs += (c.hdfs.Clock().Now() - att.start).Seconds()
			if backup {
				j.SpeculativeWon++
			}
			c.finishTask(j, node, nil)
		})
	})
}

// finishLoser retires the losing attempt of a task whose other attempt
// already won: the slot frees, nothing else is recorded.
func (c *Cluster) finishLoser(j *Job, node topology.NodeID) {
	j.running--
	c.free[node]++
	c.dispatch()
}

func (c *Cluster) finishTask(j *Job, node topology.NodeID, err error) {
	j.running--
	j.completed++
	c.free[node]++
	if err != nil && j.Err == nil {
		j.Err = err
	}
	if j.completed == j.total && len(j.pending) == 0 && !j.Done && j.reducing == 0 {
		if j.Reducers > 0 && j.Err == nil {
			c.startShuffle(j)
		} else {
			c.completeJob(j)
		}
	}
	c.dispatch()
	if j.Speculative && !j.Done && len(j.pending) == 0 {
		c.scheduleSpeculationCheck(j)
	}
}

// scheduleSpeculationCheck arms a dispatch at the instant the job's
// slowest running attempt crosses the 2x-mean straggler threshold, so a
// quiet cluster still notices stragglers.
func (c *Cluster) scheduleSpeculationCheck(j *Job) {
	mean := j.meanTaskSecs()
	if mean <= 0 {
		return
	}
	now := c.hdfs.Clock().Now()
	var earliest time.Duration = -1
	for _, att := range j.attempts {
		if att.done || att.backup {
			continue
		}
		at := att.start + time.Duration(2*mean*float64(time.Second))
		if earliest < 0 || at < earliest {
			earliest = at
		}
	}
	if earliest < 0 {
		return
	}
	delay := earliest - now + time.Millisecond
	if delay < 0 {
		delay = 0
	}
	c.hdfs.Clock().Schedule(delay, c.dispatch)
}

func (c *Cluster) completeJob(j *Job) {
	if j.Done {
		return
	}
	j.Done = true
	j.EndTime = c.hdfs.Clock().Now()
	for _, fn := range c.onDone {
		fn(j)
	}
	c.dispatch()
}

// meanTaskSecs returns the mean duration of the job's completed tasks
// (0 until one completes).
func (j *Job) meanTaskSecs() float64 {
	if j.completed == 0 {
		return 0
	}
	return j.taskSecs / float64(j.completed)
}

// pickSpeculative finds a straggler worth duplicating on node: the job has
// no pending work, the task's attempt has run more than twice the job's
// mean task time, no backup exists yet — and crucially, node holds another
// replica of the block, so the backup is guaranteed to read a different
// disk than the one the straggler is stuck on.
func (c *Cluster) pickSpeculative(node topology.NodeID) (*Job, hdfs.BlockID, bool) {
	now := c.hdfs.Clock().Now()
	d := c.hdfs.Datanode(hdfs.DatanodeID(node))
	if d.State != hdfs.StateActive {
		return nil, 0, false
	}
	for _, j := range c.live() {
		if !j.Speculative || len(j.pending) > 0 {
			continue
		}
		mean := j.meanTaskSecs()
		if mean <= 0 {
			continue
		}
		var blocks []hdfs.BlockID
		for bid := range j.attempts {
			blocks = append(blocks, bid)
		}
		sort.Slice(blocks, func(a, b int) bool { return blocks[a] < blocks[b] })
		for _, bid := range blocks {
			att := j.attempts[bid]
			if att.done || att.backup || att.node == node || !d.HasBlock(bid) {
				continue
			}
			if (now - att.start).Seconds() > 2*mean {
				return j, bid, true
			}
		}
	}
	return nil, 0, false
}

// startShuffle runs the reduce stage: each reducer (placed round-robin on
// active nodes) fetches its 1/R share of every map node's output over the
// network, then computes. Reducers run concurrently; the job finishes when
// the last one does.
func (c *Cluster) startShuffle(j *Job) {
	h := c.hdfs
	nodes := h.Active()
	if len(nodes) == 0 {
		j.Err = fmt.Errorf("mapred: no active nodes for reducers")
		c.completeJob(j)
		return
	}
	j.reducing = j.Reducers
	for r := 0; r < j.Reducers; r++ {
		reducer := topology.NodeID(nodes[r%len(nodes)])
		// Fetch this reducer's partition from every map node, in
		// deterministic node order.
		mapNodes := make([]topology.NodeID, 0, len(j.mapNodes))
		for node := range j.mapNodes {
			mapNodes = append(mapNodes, node)
		}
		sort.Slice(mapNodes, func(a, b int) bool { return mapNodes[a] < mapNodes[b] })
		var fetches int
		var fetched float64
		reducerDone := func() {
			compute := time.Duration(float64(j.ReducePerMB) * fetched / topology.MB)
			c.hdfs.Clock().Schedule(compute, func() {
				j.reducing--
				if j.reducing == 0 {
					c.completeJob(j)
				}
			})
		}
		for _, node := range mapNodes {
			part := j.mapNodes[node] / float64(j.Reducers)
			if part <= 0 {
				continue
			}
			fetched += part
			if node == reducer {
				continue // local partition needs no network fetch
			}
			fetches++
			j.ShuffledBytes += part
			h.Transfer(node, reducer, part, func() {
				fetches--
				if fetches == 0 {
					reducerDone()
				}
			})
		}
		if fetches == 0 {
			reducerDone()
		}
	}
}
