package mapred

import (
	"fmt"
	"testing"

	"erms/internal/hdfs"
	"erms/internal/sim"
	"erms/internal/topology"
)

func benchRun(b *testing.B, sched Scheduler) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		topo := topology.New(topology.Config{})
		h := hdfs.New(e, hdfs.Config{Topology: topo})
		mr := New(h, 2, sched)
		for j := 0; j < 8; j++ {
			path := fmt.Sprintf("/in%d", j)
			if _, err := h.CreateFile(path, 512*mb, 3, topology.NodeID(j*2)); err != nil {
				b.Fatal(err)
			}
			if err := mr.Submit(&Job{Name: path, File: path}); err != nil {
				b.Fatal(err)
			}
		}
		e.Run()
	}
}

func BenchmarkFIFOWorkload(b *testing.B) { benchRun(b, NewFIFO()) }
func BenchmarkFairWorkload(b *testing.B) { benchRun(b, NewFair()) }
