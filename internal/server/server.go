// Package server is the HTTP control plane for a running erms.System —
// the front door that turns the in-process reproduction into a
// deployable service. One Server wraps one System and exposes:
//
//	POST /v1/ops     workload ingestion: create/read/readrange/delete
//	                 batches, or a swimgen trace replayed from now
//	GET  /v1/status  cluster state (mirrors `ermsctl status -shards`)
//	GET  /metrics    the Prometheus-text metrics registry
//	GET  /v1/trace   Chrome trace_event JSON download (when tracing is on)
//	POST /v1/start   resume accepting ops after a drain
//	POST /v1/drain   stop accepting ops, keep serving state
//	POST /v1/stop    halt ERMS background activity and the pacer pump
//
// The engine stays the single scheduling authority: in service mode
// (erms.Options.Clock set) a pacer pump calls System.CatchUp so virtual
// time tracks the wall clock, and every handler catches up before it
// reads or mutates. All engine access is serialized by one mutex, so the
// System itself never needs to be goroutine-safe. Against a sim-clocked
// or pure-sim System the identical handlers run deterministically — how
// the handler tests and TestClockSeamEquivalence pin behaviour.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"erms"
	"erms/internal/core"
	"erms/internal/workload"
)

// State is the control plane's lifecycle phase, reported in /v1/status
// and steered by /v1/start, /v1/drain, and /v1/stop.
type State string

// The three lifecycle phases: Running accepts ops, Draining rejects new
// ops while background work finishes, Stopped has halted ERMS activity.
const (
	Running  State = "running"
	Draining State = "draining"
	Stopped  State = "stopped"
)

// Server serializes all access to one erms.System and serves the /v1 API.
type Server struct {
	mu  sync.Mutex
	sys *erms.System
	mux *http.ServeMux

	state       State
	opsAccepted int64
	opsFailed   int64

	pumpOn   bool
	quit     chan struct{}
	pumpDone chan struct{}
	wake     chan struct{}
}

// New wraps sys in a control plane. The server starts Running; call
// StartPump to pace a service-mode system against its wall clock.
func New(sys *erms.System) *Server {
	s := &Server{sys: sys, state: Running, wake: make(chan struct{}, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ops", s.handleOps)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/start", s.handleStart)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/stop", s.handleStop)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving the control-plane API.
func (s *Server) Handler() http.Handler { return s.mux }

// StartPump launches the pacer: a goroutine that keeps virtual time
// caught up with the system's wall clock so heartbeats, judge windows,
// and repairs fire on schedule even when no requests arrive. It errors
// unless the system was built in service mode (erms.Options.Clock).
func (s *Server) StartPump() error {
	if s.sys.Clock() == nil {
		return errors.New("server: pump requires a service-mode system (erms.Options.Clock)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pumpOn {
		return nil
	}
	s.pumpOn = true
	s.quit = make(chan struct{})
	s.pumpDone = make(chan struct{})
	go s.pump(s.quit, s.pumpDone)
	return nil
}

// StopPump halts the pacer goroutine and waits for it to exit, so the
// caller may touch the System directly afterwards (idempotent).
func (s *Server) StopPump() {
	s.mu.Lock()
	done := s.stopPumpLocked()
	s.mu.Unlock()
	if done != nil {
		<-done
	}
}

// stopPumpLocked signals the pump to quit and returns its done channel
// (nil if it was not running). The caller must release s.mu before
// waiting on it — the pump needs the mutex to finish its last iteration.
func (s *Server) stopPumpLocked() chan struct{} {
	if !s.pumpOn {
		return nil
	}
	s.pumpOn = false
	close(s.quit)
	return s.pumpDone
}

// pump is the pacer loop: catch virtual time up to the wall clock, then
// sleep until the next scheduled event is due (bounded so a long-idle
// calendar still re-checks periodically), a posted op wakes it, or the
// pump is stopped.
func (s *Server) pump(quit, done chan struct{}) {
	defer close(done)
	clk := s.sys.Clock()
	const maxIdle = 200 * time.Millisecond
	for {
		s.mu.Lock()
		now := s.sys.CatchUp()
		next, ok := s.sys.Engine().NextEventTime()
		s.mu.Unlock()
		wait := maxIdle
		if ok {
			if d := next - now; d < wait {
				wait = d
			}
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
		}
		select {
		case <-clk.After(wait):
		case <-s.wake:
		case <-quit:
			return
		}
	}
}

// poke nudges the pump so freshly scheduled work is paced immediately.
func (s *Server) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Op is one workload operation in a POST /v1/ops batch.
type Op struct {
	// Op selects the operation: "create", "read", "readrange", "delete".
	Op string `json:"op"`
	// Path is the file path the operation targets.
	Path string `json:"path"`
	// Client is the node the read is issued from (or the writer node for
	// create); defaults to node 0.
	Client int `json:"client,omitempty"`
	// SizeMB sizes a created file, in megabytes.
	SizeMB float64 `json:"size_mb,omitempty"`
	// Repl is the created file's replication factor (0 = cluster default).
	Repl int `json:"repl,omitempty"`
	// OffsetMB is a readrange's starting offset, in megabytes.
	OffsetMB float64 `json:"offset_mb,omitempty"`
	// LengthMB is a readrange's length in megabytes (0 = to end of file).
	LengthMB float64 `json:"length_mb,omitempty"`
}

// OpsRequest is the POST /v1/ops native batch body.
type OpsRequest struct {
	// Ops is applied in order, atomically validated first: a malformed
	// entry rejects the whole batch with 400 before anything runs.
	Ops []Op `json:"ops"`
}

// OpError reports one op that failed at apply time (for example a read
// of a path that does not exist). Validation errors never get this far.
type OpError struct {
	// Index is the op's position in the batch.
	Index int `json:"index"`
	// Error is the failure in text form.
	Error string `json:"error"`
}

// OpsResponse summarizes an accepted batch.
type OpsResponse struct {
	// Accepted counts ops applied (reads are applied when admitted; they
	// complete asynchronously as virtual time advances).
	Accepted int `json:"accepted"`
	// Failed counts ops that errored at apply time; Errors holds details.
	Failed int `json:"failed"`
	// NowSeconds is the virtual time after the batch was applied.
	NowSeconds float64 `json:"now_seconds"`
	// Errors details each failed op.
	Errors []OpError `json:"errors,omitempty"`
}

// TraceReplayResponse summarizes an accepted swimgen trace replay
// (POST /v1/ops?format=trace).
type TraceReplayResponse struct {
	// Files is the number of file creations scheduled.
	Files int `json:"files"`
	// Jobs is the number of reads scheduled.
	Jobs int `json:"jobs"`
	// HorizonSeconds is the trace's duration: the last scheduled
	// operation lands this far past NowSeconds.
	HorizonSeconds float64 `json:"horizon_seconds"`
	// NowSeconds is the virtual time the replay was anchored at.
	NowSeconds float64 `json:"now_seconds"`
}

// validateOps rejects a batch before any of it runs.
func validateOps(ops []Op) error {
	if len(ops) == 0 {
		return errors.New("empty batch: provide at least one op")
	}
	for i, op := range ops {
		switch op.Op {
		case "create":
			if op.SizeMB <= 0 {
				return fmt.Errorf("op %d: create needs size_mb > 0", i)
			}
		case "read", "delete":
		case "readrange":
			if op.OffsetMB < 0 || op.LengthMB < 0 {
				return fmt.Errorf("op %d: readrange offsets must be >= 0", i)
			}
		default:
			return fmt.Errorf("op %d: unknown op %q (want create|read|readrange|delete)", i, op.Op)
		}
		if op.Path == "" {
			return fmt.Errorf("op %d: missing path", i)
		}
		if op.Client < 0 {
			return fmt.Errorf("op %d: client must be >= 0", i)
		}
	}
	return nil
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	if strings.EqualFold(r.URL.Query().Get("format"), "trace") {
		s.handleTraceReplay(w, r)
		return
	}
	var req OpsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if err := validateOps(req.Ops); err != nil {
		httpError(w, http.StatusBadRequest, "invalid batch: %v", err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Running {
		httpError(w, http.StatusServiceUnavailable, "not accepting ops: control plane is %s", s.state)
		return
	}
	s.sys.CatchUp()
	resp := OpsResponse{}
	for i, op := range req.Ops {
		var err error
		switch op.Op {
		case "create":
			err = s.sys.CreateFileOn(op.Path, op.SizeMB*erms.MB, op.Repl, op.Client)
		case "read":
			s.sys.Read(op.Client, op.Path, nil)
		case "readrange":
			s.sys.ReadRange(op.Client, op.Path, op.OffsetMB*erms.MB, op.LengthMB*erms.MB, nil)
		case "delete":
			err = s.sys.Delete(op.Path)
		}
		if err != nil {
			resp.Failed++
			resp.Errors = append(resp.Errors, OpError{Index: i, Error: err.Error()})
		} else {
			resp.Accepted++
		}
	}
	s.opsAccepted += int64(resp.Accepted)
	s.opsFailed += int64(resp.Failed)
	resp.NowSeconds = s.sys.Now().Seconds()
	s.poke()
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceReplay ingests a swimgen trace (the workload.Trace JSON that
// `swimgen` writes) and schedules it relative to the current instant:
// file creations at now+CreateAt, jobs as whole-file or ranged reads at
// now+Submit. In service mode the pump then plays the trace out at real
// request rates.
func (s *Server) handleTraceReplay(w http.ResponseWriter, r *http.Request) {
	tr, err := workload.ReadJSON(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding swimgen trace: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != Running {
		httpError(w, http.StatusServiceUnavailable, "not accepting ops: control plane is %s", s.state)
		return
	}
	now := s.sys.CatchUp()
	engine := s.sys.Engine()
	for _, f := range tr.Files {
		f := f
		engine.At(now+f.CreateAt, func() {
			// Trace files land at the default replication; creation errors
			// (duplicate paths in a hand-edited trace) are tolerated, as in
			// workload.Preload.
			_ = s.sys.CreateFile(f.Path, f.Size)
		})
	}
	for _, j := range tr.Jobs {
		j := j
		engine.At(now+j.Submit, func() {
			if j.Length > 0 {
				s.sys.ReadRange(j.Client, j.File, j.Offset, j.Length, nil)
			} else {
				s.sys.Read(j.Client, j.File, nil)
			}
		})
	}
	s.opsAccepted += int64(len(tr.Files) + len(tr.Jobs))
	s.poke()
	writeJSON(w, http.StatusOK, TraceReplayResponse{
		Files:          len(tr.Files),
		Jobs:           len(tr.Jobs),
		HorizonSeconds: tr.Duration.Seconds(),
		NowSeconds:     now.Seconds(),
	})
}

// SafeModeStatus is the namenode safe-mode block of /v1/status.
type SafeModeStatus struct {
	// On reports whether mutations are currently rejected.
	On bool `json:"on"`
	// Entries / Exits / Rejections mirror the safe-mode counters.
	Entries    int `json:"entries"`
	Exits      int `json:"exits"`
	Rejections int `json:"rejections"`
}

// EpochStatus is the journal-fencing block of /v1/status.
type EpochStatus struct {
	// Writer is this namenode's writer epoch; Journal is the attached
	// journal's (0 when no journal is attached). The writer is fenced
	// when they disagree.
	Writer  uint64 `json:"writer"`
	Journal uint64 `json:"journal"`
	// Fenced reports whether this writer's mutations are being rejected.
	Fenced bool `json:"fenced"`
	// FencedWritesRejected counts mutations bounced with ErrFenced.
	FencedWritesRejected int `json:"fenced_writes_rejected"`
}

// AvailabilityStatus is the block/node availability pair the safe-mode
// thresholds watch.
type AvailabilityStatus struct {
	// Blocks is the fraction of blocks with at least one live replica.
	Blocks float64 `json:"blocks"`
	// Nodes is the fraction of datanodes currently live.
	Nodes float64 `json:"nodes"`
}

// RepairStatus is the prioritized-repair-pipeline block of /v1/status.
type RepairStatus struct {
	// Queues is the per-tier backlog depth, keyed by tier name in
	// admission-priority order.
	Queues map[string]int `json:"queues"`
	// ActiveJobs / ActiveStreams are the pipeline's current occupancy;
	// MaxStreams / MaxStreamsPerNode are its caps.
	ActiveJobs        int `json:"active_jobs"`
	ActiveStreams     int `json:"active_streams"`
	MaxStreams        int `json:"max_streams"`
	MaxStreamsPerNode int `json:"max_streams_per_node"`
}

// OpsStatus counts control-plane ingestion since boot.
type OpsStatus struct {
	// Accepted / Failed mirror OpsResponse accounting, summed over every
	// batch and trace replay.
	Accepted int64 `json:"accepted"`
	Failed   int64 `json:"failed"`
}

// ShardStatus is one row of the federation table in /v1/status.
type ShardStatus struct {
	// Shard is the shard index under the pinned hash router.
	Shard int `json:"shard"`
	// Epoch / JournalEpoch mirror EpochStatus for this shard.
	Epoch        uint64 `json:"epoch"`
	JournalEpoch uint64 `json:"journal_epoch"`
	// Files is the shard's namespace size.
	Files int `json:"files"`
	// SafeMode reports the shard's namenode safe-mode state.
	SafeMode bool `json:"safe_mode"`
	// RepairQueues is the shard's per-tier repair backlog.
	RepairQueues map[string]int `json:"repair_queues"`
}

// StatusResponse is the GET /v1/status body — the JSON twin of
// `ermsctl status -shards`.
type StatusResponse struct {
	// State is the control plane's lifecycle phase.
	State State `json:"state"`
	// Mode is "service" when the system is paced by a wall clock,
	// "simulation" when only explicit RunFor advances time.
	Mode string `json:"mode"`
	// NowSeconds is the current virtual time.
	NowSeconds float64 `json:"now_seconds"`
	// PendingEvents is the engine's live calendar size — what drain
	// watchers poll.
	PendingEvents int `json:"pending_events"`
	// Files / LiveBlocks / StorageUsedGB summarize the namespace (summed
	// across shards on a federated deployment).
	Files         int     `json:"files"`
	LiveBlocks    int     `json:"live_blocks"`
	StorageUsedGB float64 `json:"storage_used_gb"`
	// SafeMode, Availability, Epoch, and Repair describe shard 0 (the
	// facade's default namenode), mirroring `ermsctl status`; per-shard
	// rows follow in Shards.
	SafeMode     SafeModeStatus     `json:"safe_mode"`
	Availability AvailabilityStatus `json:"availability"`
	Epoch        EpochStatus        `json:"epoch"`
	Repair       *RepairStatus      `json:"repair,omitempty"`
	// Ops counts ingestion through this control plane.
	Ops OpsStatus `json:"ops"`
	// Shards holds one row per shard on a federated deployment (absent
	// on a classic single-namenode system).
	Shards []ShardStatus `json:"shards,omitempty"`
}

// tierQueues renders a manager's repair backlog with stable tier names.
func tierQueues(m *core.Manager) map[string]int {
	names := core.RepairTierNames()
	depths := m.RepairQueueDepths()
	out := make(map[string]int, len(names))
	for i, n := range names {
		out[n] = depths[i]
	}
	return out
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.CatchUp()
	sys := s.sys
	c := sys.HDFS()
	cm := sys.Metrics()
	mode := "simulation"
	if sys.Clock() != nil {
		mode = "service"
	}
	resp := StatusResponse{
		State:         s.state,
		Mode:          mode,
		NowSeconds:    sys.Now().Seconds(),
		PendingEvents: sys.Engine().Pending(),
		LiveBlocks:    c.LiveBlocks(),
		StorageUsedGB: sys.StorageUsed() / erms.GB,
		SafeMode: SafeModeStatus{
			On:         c.InSafeMode(),
			Entries:    cm.SafeModeEntries,
			Exits:      cm.SafeModeExits,
			Rejections: cm.SafeModeRejections,
		},
		Availability: AvailabilityStatus{Blocks: c.BlockAvailability(), Nodes: c.LiveNodeFraction()},
		Epoch:        EpochStatus{Writer: c.Epoch(), Fenced: c.Fenced(), FencedWritesRejected: cm.FencedWritesRejected},
		Ops:          OpsStatus{Accepted: s.opsAccepted, Failed: s.opsFailed},
	}
	if j := c.Journal(); j != nil {
		resp.Epoch.Journal = j.Epoch()
	}
	if m := sys.Manager(); m != nil {
		caps := m.RepairCaps()
		resp.Repair = &RepairStatus{
			Queues:            tierQueues(m),
			ActiveJobs:        m.ActiveRepairJobs(),
			ActiveStreams:     m.ActiveRepairStreams(),
			MaxStreams:        caps.MaxStreams,
			MaxStreamsPerNode: caps.MaxStreamsPerNode,
		}
	}
	if sys.Shards() > 1 {
		for i := 0; i < sys.Shards(); i++ {
			sh := sys.Shard(i)
			sc := sh.HDFS()
			row := ShardStatus{
				Shard:    i,
				Epoch:    sc.Epoch(),
				Files:    sc.Files(),
				SafeMode: sc.InSafeMode(),
			}
			if j := sc.Journal(); j != nil {
				row.JournalEpoch = j.Epoch()
			}
			if m := sh.Manager(); m != nil {
				row.RepairQueues = tierQueues(m)
			}
			resp.Files += sc.Files()
			resp.Shards = append(resp.Shards, row)
		}
	} else {
		resp.Files = c.Files()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.CatchUp()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.sys.Registry().WritePrometheus(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.CatchUp()
	tr := s.sys.Tracer()
	if tr == nil {
		httpError(w, http.StatusNotFound, "tracing is disabled: rebuild the system with EnableTrace (ermsd -trace)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="erms-trace.json"`)
	_ = tr.WriteChromeTrace(w)
}

// ControlResponse acknowledges a lifecycle transition.
type ControlResponse struct {
	// State is the phase after the transition.
	State State `json:"state"`
	// PendingEvents is the live calendar size at the transition — for a
	// drain, the backlog still to play out.
	PendingEvents int `json:"pending_events"`
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Stopped {
		httpError(w, http.StatusConflict, "cannot start: ERMS background activity was stopped; restart the process")
		return
	}
	s.state = Running
	s.poke()
	writeJSON(w, http.StatusOK, ControlResponse{State: s.state, PendingEvents: s.sys.Engine().Pending()})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Running {
		s.state = Draining
	}
	s.sys.CatchUp()
	writeJSON(w, http.StatusOK, ControlResponse{State: s.state, PendingEvents: s.sys.Engine().Pending()})
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var done chan struct{}
	if s.state != Stopped {
		s.sys.CatchUp()
		s.sys.Stop()
		s.state = Stopped
		done = s.stopPumpLocked()
	}
	resp := ControlResponse{State: s.state, PendingEvents: s.sys.Engine().Pending()}
	s.mu.Unlock()
	if done != nil {
		<-done
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
