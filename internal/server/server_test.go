package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"erms"
	"erms/internal/sim"
	"erms/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSystem builds a service-mode System on a simulated wall clock, so
// handler behaviour is fully deterministic: tests advance time by moving
// the wall and letting the handlers' CatchUp do the pacing, exactly as
// the pump would against a real clock.
func testSystem(t *testing.T, mutate func(*erms.Options)) (*Server, *sim.SimClock) {
	t.Helper()
	wall := sim.NewSimClock(sim.NewEngine())
	opts := erms.Options{Clock: wall}
	if mutate != nil {
		mutate(&opts)
	}
	sys := erms.NewSystem(opts)
	t.Cleanup(sys.Stop)
	return New(sys), wall
}

// do runs one request through the server's mux and returns the recorder.
func do(t *testing.T, s *Server, method, target string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func postOps(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	return do(t, s, http.MethodPost, "/v1/ops", body)
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func TestOpsRoundTrip(t *testing.T) {
	s, wall := testSystem(t, nil)

	w := postOps(t, s, `{"ops":[
		{"op":"create","path":"/srv/a","size_mb":192},
		{"op":"create","path":"/srv/b","size_mb":256,"repl":4,"client":2},
		{"op":"read","path":"/srv/a","client":5},
		{"op":"readrange","path":"/srv/b","client":1,"offset_mb":64,"length_mb":64},
		{"op":"delete","path":"/srv/a"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ops: got %d, body %s", w.Code, w.Body.String())
	}
	resp := decode[OpsResponse](t, w)
	if resp.Accepted != 5 || resp.Failed != 0 {
		t.Fatalf("want 5 accepted / 0 failed, got %+v", resp)
	}

	// Runtime failures (missing path) are per-op, not whole-batch.
	w = postOps(t, s, `{"ops":[{"op":"delete","path":"/srv/nope"},{"op":"read","path":"/srv/b"}]}`)
	resp = decode[OpsResponse](t, w)
	if w.Code != http.StatusOK || resp.Failed != 1 || resp.Accepted != 1 {
		t.Fatalf("mixed batch: code %d resp %+v", w.Code, resp)
	}
	if len(resp.Errors) != 1 || resp.Errors[0].Index != 0 {
		t.Fatalf("want error on op 0, got %+v", resp.Errors)
	}

	// Let the reads play out, then confirm the namespace through /v1/status.
	wall.Advance(time.Minute)
	st := decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if st.Files != 1 {
		t.Fatalf("want 1 file after create+create+delete, got %d", st.Files)
	}
	if st.Ops.Accepted != 6 || st.Ops.Failed != 1 {
		t.Fatalf("ops counters: %+v", st.Ops)
	}
	if st.NowSeconds < 60 {
		t.Fatalf("CatchUp did not pace virtual time: now=%v", st.NowSeconds)
	}
	if st.Mode != "service" || st.State != Running {
		t.Fatalf("mode/state: %q/%q", st.Mode, st.State)
	}
}

func TestOpsValidation(t *testing.T) {
	s, _ := testSystem(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"bad-json", `{"ops":[`},
		{"empty-batch", `{"ops":[]}`},
		{"no-ops-key", `{}`},
		{"unknown-op", `{"ops":[{"op":"rename","path":"/a"}]}`},
		{"missing-path", `{"ops":[{"op":"read"}]}`},
		{"create-no-size", `{"ops":[{"op":"create","path":"/a"}]}`},
		{"negative-client", `{"ops":[{"op":"read","path":"/a","client":-1}]}`},
		{"negative-offset", `{"ops":[{"op":"readrange","path":"/a","offset_mb":-1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postOps(t, s, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("want 400, got %d: %s", w.Code, w.Body.String())
			}
			if e := decode[map[string]string](t, w); e["error"] == "" {
				t.Fatalf("want error envelope, got %s", w.Body.String())
			}
		})
	}
	// Nothing from the rejected batches may have been applied.
	st := decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if st.Files != 0 || st.Ops.Accepted != 0 {
		t.Fatalf("rejected batches leaked state: %+v", st)
	}
}

// TestStatusGolden pins the full /v1/status JSON for a deterministic
// sim-clock deployment — field renames or accidental semantic drift
// against `ermsctl status` show up as a golden diff.
func TestStatusGolden(t *testing.T) {
	s, wall := testSystem(t, func(o *erms.Options) {
		o.EnableJournal = true
	})
	w := postOps(t, s, `{"ops":[
		{"op":"create","path":"/golden/a","size_mb":128},
		{"op":"create","path":"/golden/b","size_mb":512},
		{"op":"read","path":"/golden/a","client":3}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("seeding ops: %d %s", w.Code, w.Body.String())
	}
	wall.Advance(10 * time.Minute)

	got := do(t, s, http.MethodGet, "/v1/status", "").Body.Bytes()
	path := filepath.Join("testdata", "status.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("/v1/status drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, wall := testSystem(t, nil)
	postOps(t, s, `{"ops":[{"op":"create","path":"/m/a","size_mb":64}]}`)
	wall.Advance(time.Minute)

	w := do(t, s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{"hdfs_files", "# TYPE"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	// Tracing off → 404 with advice.
	s, _ := testSystem(t, nil)
	if w := do(t, s, http.MethodGet, "/v1/trace", ""); w.Code != http.StatusNotFound {
		t.Fatalf("trace without tracer: want 404, got %d", w.Code)
	}

	s, wall := testSystem(t, func(o *erms.Options) { o.EnableTrace = true })
	postOps(t, s, `{"ops":[{"op":"create","path":"/t/a","size_mb":64},{"op":"read","path":"/t/a"}]}`)
	wall.Advance(time.Minute)
	w := do(t, s, http.MethodGet, "/v1/trace", "")
	if w.Code != http.StatusOK {
		t.Fatalf("trace: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content type %q", ct)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a chrome-trace event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events despite workload")
	}
}

func TestLifecycle(t *testing.T) {
	s, _ := testSystem(t, nil)

	// Drain: state flips, ops bounce with 503, status still serves.
	cr := decode[ControlResponse](t, do(t, s, http.MethodPost, "/v1/drain", ""))
	if cr.State != Draining {
		t.Fatalf("drain: %+v", cr)
	}
	if w := postOps(t, s, `{"ops":[{"op":"create","path":"/x","size_mb":64}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ops while draining: want 503, got %d", w.Code)
	}
	if st := decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", "")); st.State != Draining {
		t.Fatalf("status while draining: %+v", st.State)
	}

	// Start resumes ingestion.
	cr = decode[ControlResponse](t, do(t, s, http.MethodPost, "/v1/start", ""))
	if cr.State != Running {
		t.Fatalf("start: %+v", cr)
	}
	if w := postOps(t, s, `{"ops":[{"op":"create","path":"/x","size_mb":64}]}`); w.Code != http.StatusOK {
		t.Fatalf("ops after restart: %d %s", w.Code, w.Body.String())
	}

	// Stop is terminal: ops bounce and start conflicts.
	cr = decode[ControlResponse](t, do(t, s, http.MethodPost, "/v1/stop", ""))
	if cr.State != Stopped {
		t.Fatalf("stop: %+v", cr)
	}
	if w := postOps(t, s, `{"ops":[{"op":"read","path":"/x"}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ops after stop: want 503, got %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/start", ""); w.Code != http.StatusConflict {
		t.Fatalf("start after stop: want 409, got %d", w.Code)
	}
}

// TestTraceReplay posts a swimgen-format trace and checks the whole
// workload is scheduled relative to ingestion time and plays out as the
// wall advances.
func TestTraceReplay(t *testing.T) {
	s, wall := testSystem(t, nil)
	// Anchor the replay away from t=0 to prove scheduling is relative.
	wall.Advance(time.Minute)
	do(t, s, http.MethodGet, "/v1/status", "") // CatchUp to the new wall time

	tr := &workload.Trace{
		Seed:     7,
		Duration: 10 * time.Minute,
		Files: []workload.FileSpec{
			{Path: "/replay/a", Size: 128 * erms.MB, CreateAt: 0},
			{Path: "/replay/b", Size: 64 * erms.MB, CreateAt: 30 * time.Second},
		},
		Jobs: []workload.JobSpec{
			{Submit: time.Minute, File: "/replay/a", Client: 4},
			{Submit: 2 * time.Minute, File: "/replay/b", Client: 9, Offset: 16 * erms.MB, Length: 16 * erms.MB},
		},
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/v1/ops?format=trace", buf.String())
	if w.Code != http.StatusOK {
		t.Fatalf("trace replay: %d %s", w.Code, w.Body.String())
	}
	rr := decode[TraceReplayResponse](t, w)
	if rr.Files != 2 || rr.Jobs != 2 {
		t.Fatalf("replay summary: %+v", rr)
	}
	if rr.NowSeconds < 60 {
		t.Fatalf("replay not anchored at current time: %+v", rr)
	}

	// Nothing exists yet; the first create lands only when time reaches it.
	st := decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if st.Files != 0 {
		t.Fatalf("replay applied eagerly: %d files", st.Files)
	}
	wall.Advance(10 * time.Second)
	st = decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if st.Files != 1 {
		t.Fatalf("want first create played, got %d files", st.Files)
	}
	wall.Advance(5 * time.Minute)
	st = decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if st.Files != 2 {
		t.Fatalf("want both creates played, got %d files", st.Files)
	}

	// Malformed trace body → 400.
	if w := do(t, s, http.MethodPost, "/v1/ops?format=trace", "not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace: want 400, got %d", w.Code)
	}
}

// TestFederatedStatus checks the per-shard rows mirror
// `ermsctl status -shards` on a federated deployment.
func TestFederatedStatus(t *testing.T) {
	s, wall := testSystem(t, func(o *erms.Options) {
		o.Shards = 2
		o.EnableJournal = true
	})
	w := postOps(t, s, `{"ops":[
		{"op":"create","path":"/fed/a","size_mb":64},
		{"op":"create","path":"/fed/b","size_mb":64},
		{"op":"create","path":"/fed/c","size_mb":64},
		{"op":"create","path":"/fed/d","size_mb":64}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("seeding: %d %s", w.Code, w.Body.String())
	}
	wall.Advance(time.Minute)
	st := decode[StatusResponse](t, do(t, s, http.MethodGet, "/v1/status", ""))
	if len(st.Shards) != 2 {
		t.Fatalf("want 2 shard rows, got %+v", st.Shards)
	}
	total := 0
	for i, row := range st.Shards {
		if row.Shard != i {
			t.Fatalf("shard row %d misnumbered: %+v", i, row)
		}
		if row.Epoch == 0 || row.JournalEpoch != row.Epoch {
			t.Fatalf("shard %d epochs: %+v", i, row)
		}
		if row.RepairQueues == nil {
			t.Fatalf("shard %d missing repair queues", i)
		}
		total += row.Files
	}
	if total != 4 || st.Files != 4 {
		t.Fatalf("files: shard sum %d, total %d", total, st.Files)
	}
}

// TestPumpSimClock runs the pacer against the simulated wall clock: a
// Start/StopPump cycle must be clean, and StartPump must refuse a
// sim-only system.
func TestPumpSimClock(t *testing.T) {
	simOnly := erms.NewSystem(erms.Options{})
	defer simOnly.Stop()
	if err := New(simOnly).StartPump(); err == nil {
		t.Fatal("pump on a sim-only system must refuse")
	}

	s, _ := testSystem(t, nil)
	if err := s.StartPump(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartPump(); err != nil {
		t.Fatalf("second StartPump must be a no-op: %v", err)
	}
	s.StopPump()
	s.StopPump() // idempotent
}
