package auditlog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleEntries() []Entry {
	return []Entry{
		{Op: OpFileAdd, Time: 5 * time.Second, Path: "/data/a", File: 0, Size: 256 << 20, Target: 3},
		{Op: OpBlockAdd, Time: 5 * time.Second, Block: 0, File: 0, Index: 0, Size: 64 << 20},
		{Op: OpReplicaAdd, Time: 6 * time.Second, Block: 0, Node: 4},
		{Op: OpBlockAdd, Time: 7 * time.Second, Block: 1, File: 0, Index: 4, Size: 64 << 20, Flag: true, Group: 1},
		{Op: OpRename, Time: 8 * time.Second, File: 0, Path: "/data/a", Dst: "/data/b"},
		{Op: OpSetTarget, Time: 9 * time.Second, File: 0, Target: 5},
		{Op: OpEncodeGeom, Time: 10 * time.Second, File: 0, K: 4, M: 2},
		{Op: OpNodeState, Time: 11 * time.Second, Node: 7, State: 3, Flag: true},
		{Op: OpNodeStale, Time: 12 * time.Second, Node: 7, Flag: true},
		{Op: OpReported, Time: 13 * time.Second, Block: 1, Node: 2},
		{Op: OpReplicaDrop, Time: 14 * time.Second, Block: 0, Node: 4},
		{Op: OpBlockDrop, Time: 15 * time.Second, Block: 1},
		{Op: OpFileDrop, Time: 16 * time.Second, File: 0, Path: "/data/b"},
	}
}

func TestJournalAppendSeqAndTail(t *testing.T) {
	j := NewJournal()
	if got := j.NextSeq(); got != 1 {
		t.Fatalf("fresh journal NextSeq = %d, want 1", got)
	}
	var notified []Entry
	j.Subscribe(func(e Entry) { notified = append(notified, e) })
	for _, e := range sampleEntries() {
		j.Append(e)
	}
	n := len(sampleEntries())
	if j.Len() != n || len(notified) != n {
		t.Fatalf("Len=%d notified=%d, want %d", j.Len(), len(notified), n)
	}
	for i, e := range j.Entries() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has Seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if got := j.Tail(1); len(got) != n {
		t.Fatalf("Tail(1) returned %d entries, want %d", len(got), n)
	}
	mid := uint64(5)
	tail := j.Tail(mid)
	if len(tail) != n-4 || tail[0].Seq != mid {
		t.Fatalf("Tail(%d): got %d entries starting at %d", mid, len(tail), tail[0].Seq)
	}
	if got := j.Tail(j.NextSeq()); got == nil || len(got) != 0 {
		t.Fatalf("Tail(NextSeq) = %v, want empty non-nil", got)
	}
}

func TestJournalTruncate(t *testing.T) {
	j := NewJournal()
	for _, e := range sampleEntries() {
		j.Append(e)
	}
	j.TruncateTo(6)
	if j.Len() != len(sampleEntries())-5 {
		t.Fatalf("after TruncateTo(6): Len=%d", j.Len())
	}
	if j.Tail(5) != nil {
		t.Fatal("Tail before truncation point should be nil (unavailable)")
	}
	tail := j.Tail(6)
	if len(tail) == 0 || tail[0].Seq != 6 {
		t.Fatalf("Tail(6) starts at %d", tail[0].Seq)
	}
	// Sequence numbering survives truncation.
	next := j.NextSeq()
	e := j.Append(Entry{Op: OpFileDrop})
	if e.Seq != next {
		t.Fatalf("post-truncate Append assigned Seq %d, want %d", e.Seq, next)
	}
}

func TestJournalEncodeDecodeRoundTrip(t *testing.T) {
	j := NewJournal()
	for _, e := range sampleEntries() {
		j.Append(e)
	}
	var buf bytes.Buffer
	if err := EncodeEntries(&buf, j.Entries()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEntries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != j.Len() {
		t.Fatalf("decoded %d entries, want %d", len(got), j.Len())
	}
	for i := range got {
		if got[i] != j.Entries()[i] {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], j.Entries()[i])
		}
	}
	// Empty journal round-trips too.
	buf.Reset()
	if err := EncodeEntries(&buf, nil); err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if got, err := DecodeEntries(bytes.NewReader(buf.Bytes())); err != nil || len(got) != 0 {
		t.Fatalf("decode empty: %v (%d entries)", err, len(got))
	}
}

func TestJournalDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal()
	for _, e := range sampleEntries() {
		j.Append(e)
	}
	if err := EncodeEntries(&buf, j.Entries()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.Bytes()

	for cut := 0; cut < len(good); cut += 7 {
		if _, err := DecodeEntries(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(good))
		}
	}
	for i := 0; i < len(good); i += 11 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		if _, err := DecodeEntries(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at %d decoded without error", i)
		}
	}
	if _, err := DecodeEntries(strings.NewReader("not a journal at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestJournalEntryString(t *testing.T) {
	for _, e := range sampleEntries() {
		if s := e.String(); s == "" || !strings.Contains(s, e.Op.String()) {
			t.Fatalf("String() for %v = %q", e.Op, s)
		}
	}
	if got := Op(0).String(); got != "op(0)" {
		t.Fatalf("invalid op String = %q", got)
	}
	if Op(0).Valid() || !OpFileAdd.Valid() || Op(200).Valid() {
		t.Fatal("Op.Valid misclassifies")
	}
}
