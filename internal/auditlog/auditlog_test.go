package auditlog

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() Record {
	return Record{
		Time:    90*time.Minute + 250*time.Millisecond,
		Allowed: true,
		UGI:     "hadoop",
		IP:      "10.1.2.3",
		Cmd:     CmdOpen,
		Src:     "/data/warehouse/part-0001",
	}
}

func TestFormatShape(t *testing.T) {
	line := sample().Format()
	for _, want := range []string{
		"2012-07-05 11:30:00,250",
		"INFO FSNamesystem.audit:",
		"allowed=true",
		"ugi=hadoop",
		"ip=/10.1.2.3",
		"cmd=open",
		"src=/data/warehouse/part-0001",
		"dst=null",
		"perm=null",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	recs := []Record{
		sample(),
		{Time: 0, Allowed: false, UGI: "alice", IP: "192.168.0.9", Cmd: CmdDelete, Src: "/tmp/x"},
		{Time: 48 * time.Hour, Allowed: true, UGI: "bob", IP: "10.0.0.1", Cmd: CmdRename,
			Src: "/a", Dst: "/b", Perm: "rw-r--r--"},
		{Time: 123 * time.Millisecond, Allowed: true, UGI: "u", IP: "1.2.3.4", Cmd: CmdSetRepl, Src: "/f"},
	}
	for _, r := range recs {
		got, err := Parse(r.Format())
		if err != nil {
			t.Fatalf("Parse(%q): %v", r.Format(), err)
		}
		if got != r {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"short",
		"2012-07-05 11:30:00,250 INFO something-else: cmd=open",
		"2012-07-05X11:30:00,250 INFO FSNamesystem.audit: cmd=open",
		"2012-07-05 11:30:00,2x0 INFO FSNamesystem.audit: cmd=open",
		"2012-07-05 11:30:00,250 INFO FSNamesystem.audit: allowed=true src=/x",
	} {
		if _, err := Parse(line); err == nil {
			t.Fatalf("Parse(%q) accepted", line)
		}
	}
}

func TestParseToleratesWhitespace(t *testing.T) {
	line := "   " + sample().Format() + "  "
	if _, err := Parse(line); err != nil {
		t.Fatal(err)
	}
}

func TestLogDispatchAndCount(t *testing.T) {
	l := NewLog(false)
	var got []Record
	l.Subscribe(func(r Record) { got = append(got, r) })
	order := []string{}
	l.Subscribe(func(Record) { order = append(order, "second") })
	l.Append(sample())
	l.Append(sample())
	if l.Count() != 2 || len(got) != 2 || len(order) != 2 {
		t.Fatalf("count=%d got=%d order=%d", l.Count(), len(got), len(order))
	}
	if l.Records() != nil {
		t.Fatal("non-keeping log retained records")
	}
}

func TestLogKeepAndDump(t *testing.T) {
	l := NewLog(true)
	l.Append(sample())
	r2 := sample()
	r2.Cmd = CmdCreate
	l.Append(r2)
	dump := l.Dump()
	recs, err := ParseAll(dump + "\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != sample() || recs[1] != r2 {
		t.Fatalf("ParseAll mismatch: %+v", recs)
	}
}

func TestParseAllPropagatesErrors(t *testing.T) {
	if _, err := ParseAll("not a log line"); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: Format/Parse round-trips for arbitrary printable paths, users
// and millisecond-aligned times.
func TestQuickRoundTrip(t *testing.T) {
	f := func(ms uint32, user, path uint16, allowed bool) bool {
		r := Record{
			Time:    time.Duration(ms) * time.Millisecond,
			Allowed: allowed,
			UGI:     "user" + strconvU(user),
			IP:      "10.0.0.1",
			Cmd:     CmdOpen,
			Src:     "/dir/file-" + strconvU(path),
		}
		got, err := Parse(r.Format())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func strconvU(v uint16) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%10]}, b...)
		v /= 10
	}
	return string(b)
}

func TestParseStreamSkipsForeignLines(t *testing.T) {
	l := NewLog(true)
	l.Append(sample())
	r2 := sample()
	r2.Cmd = CmdDelete
	l.Append(r2)
	mixed := "2012-07-05 11:00:00,000 INFO namenode.FSNamesystem: not an audit line\n" +
		l.Dump() +
		"garbage\n\n" +
		"2012-07-05 11:30:00,250 WARN something.else: ignored\n"
	var got []Record
	parsed, skipped, err := ParseStream(strings.NewReader(mixed), func(r Record) {
		got = append(got, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if parsed != 2 || len(got) != 2 {
		t.Fatalf("parsed = %d, got %d records", parsed, len(got))
	}
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	if got[0] != sample() || got[1] != r2 {
		t.Fatalf("records corrupted: %+v", got)
	}
}
