package auditlog

import (
	"bytes"
	"strings"
	"testing"
)

// The federation move markers were added after JournalVersion 2 shipped;
// they must encode/decode like any other op, render readably, and stay
// valid ops (version-2 decoders reject unknown ops, which is what makes
// additive extension safe).
func TestFedMoveMarkersRoundTrip(t *testing.T) {
	entries := []Entry{
		{Op: OpFedMoveIntent, Path: "/a/src", Dst: "/b/dst", Node: 3},
		{Op: OpFedMoveCommit, Path: "/a/src", Dst: "/b/dst", Node: 3},
		{Op: OpFedMoveTombstone, Path: "/a/src", Dst: "/b/dst", Node: 3, Flag: true},
	}
	j := NewJournal()
	for _, e := range entries {
		if !e.Op.Valid() {
			t.Fatalf("%s not Valid()", e.Op)
		}
		j.Append(e)
	}
	var buf bytes.Buffer
	if err := EncodeEntries(&buf, j.Entries()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeEntries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range got {
		if got[i] != j.Entries()[i] {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], j.Entries()[i])
		}
	}
}

func TestFedMoveMarkerStrings(t *testing.T) {
	cases := []struct {
		e    Entry
		want []string
	}{
		{Entry{Op: OpFedMoveIntent, Path: "/s", Dst: "/d", Node: 2},
			[]string{"fedMoveIntent", "/s -> /d", "shard=2"}},
		{Entry{Op: OpFedMoveCommit, Path: "/s", Dst: "/d", Node: 2},
			[]string{"fedMoveCommit", "/s -> /d"}},
		{Entry{Op: OpFedMoveTombstone, Path: "/s", Dst: "/d", Node: 2, Flag: true},
			[]string{"fedMoveTombstone", "forward=true"}},
		{Entry{Op: OpFedMoveTombstone, Path: "/s", Dst: "/d", Node: 2},
			[]string{"forward=false"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("%q missing %q", s, w)
			}
		}
	}
}
