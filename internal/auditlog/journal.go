package auditlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
	"time"
)

// The human-readable audit log (Record) is what the Data Judge consumes; it
// names files by path and deliberately omits block-level detail. Failover
// needs more: a journal of every namespace-changing operation, precise
// enough that replaying it against a checkpoint reconstructs the namenode's
// metadata bit for bit. Entry is that record — a typed write-ahead log
// entry, the second product of the same mutation chokepoints that feed the
// audit log.

// Op identifies the kind of namespace mutation a journal Entry records.
type Op uint8

// The journaled operations. Together they cover every field of namenode
// metadata that a checkpoint serializes; anything not expressible here
// (corruption ground truth, crash flags, heartbeat ages) is by design
// invisible to a standby and excluded from the replayable state digest.
const (
	opInvalid Op = iota
	// OpFileAdd interns a new INode: Path, Size, Target (replication),
	// File (the intern ID the live namenode assigned, for validation).
	// Time doubles as the file's creation stamp.
	OpFileAdd
	// OpFileDrop removes file File (Path kept for readability). Its blocks
	// are dropped by preceding OpBlockDrop entries.
	OpFileDrop
	// OpRename moves file File from Path to Dst.
	OpRename
	// OpSetTarget sets file File's target replication to Target.
	OpSetTarget
	// OpEncodeGeom records erasure geometry (K, M) chosen for file File.
	OpEncodeGeom
	// OpEncodeDone marks file File's encoding complete (Encoded=true).
	OpEncodeDone
	// OpDecodeStart clears file File's Encoded flag (geometry is kept,
	// matching DecodeFile).
	OpDecodeStart
	// OpClearGeom clears file File's erasure geometry (CancelEncoding).
	OpClearGeom
	// OpBlockAdd mints block Block for file File: Size, Index, and for
	// parity blocks Flag=true with stripe Group.
	OpBlockAdd
	// OpBlockDrop deletes block Block and removes it from its owner's
	// block or parity list.
	OpBlockDrop
	// OpReplicaAdd lands a replica of block Block on node Node.
	OpReplicaAdd
	// OpReplicaDrop removes block Block's replica from node Node.
	OpReplicaDrop
	// OpNodeState transitions node Node to lifecycle state State
	// (hdfs.NodeState numeric value). Flag marks a restart-style fresh
	// start that also wipes the node's reported-corrupt set.
	OpNodeState
	// OpNodeStale flips node Node's stale flag to Flag.
	OpNodeStale
	// OpReported records that node Node reported its last copy of block
	// Block corrupt (the keep-last-copy branch of corruption handling).
	OpReported
	// The federation move markers journal the cross-shard rename protocol
	// in the SOURCE shard's journal. They mutate no namespace state of
	// their own — replay validates them and tracks the pending-move table —
	// but they are durable protocol facts: a standby promoted mid-move uses
	// them to decide rollback (intent without commit) versus roll-forward
	// (commit without tombstone). Added after JournalVersion 2 shipped;
	// additive ops keep the wire format compatible because version-2
	// decoders already reject unknown ops loudly rather than guessing.
	//
	// OpFedMoveIntent opens a move of file Path (owned by this shard) to
	// Dst, whose owner is shard Node.
	OpFedMoveIntent
	// OpFedMoveCommit is the commit point of the move Path -> Dst: the
	// copy exists at the destination shard's staging path and the move
	// must now roll forward.
	OpFedMoveCommit
	// OpFedMoveTombstone closes the move Path -> Dst. Flag records how:
	// true = rolled forward (file now lives at Dst in shard Node), false =
	// rolled back (file stayed at Path).
	OpFedMoveTombstone
	opSentinel // one past the last valid op
)

var opNames = [...]string{
	OpFileAdd:     "fileAdd",
	OpFileDrop:    "fileDrop",
	OpRename:      "rename",
	OpSetTarget:   "setTarget",
	OpEncodeGeom:  "encodeGeom",
	OpEncodeDone:  "encodeDone",
	OpDecodeStart: "decodeStart",
	OpClearGeom:   "clearGeom",
	OpBlockAdd:    "blockAdd",
	OpBlockDrop:   "blockDrop",
	OpReplicaAdd:  "replicaAdd",
	OpReplicaDrop: "replicaDrop",
	OpNodeState:   "nodeState",
	OpNodeStale:   "nodeStale",
	OpReported:    "reported",

	OpFedMoveIntent:    "fedMoveIntent",
	OpFedMoveCommit:    "fedMoveCommit",
	OpFedMoveTombstone: "fedMoveTombstone",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a known operation.
func (o Op) Valid() bool { return o > opInvalid && o < opSentinel }

// Entry is one write-ahead journal record. Fields are a union across ops;
// each Op documents which it reads. Unused fields stay zero and cost one
// byte each on the wire.
type Entry struct {
	Seq    uint64        // assigned by Journal.Append; dense, starts at 1
	Epoch  uint64        // writer epoch that produced the entry (fencing)
	Time   time.Duration // virtual time of the mutation
	Op     Op
	Path   string  // file path (OpFileAdd, OpFileDrop, OpRename source)
	Dst    string  // rename destination
	File   int     // interned file ID
	Block  int64   // block ID
	Node   int     // datanode ID
	State  int     // node lifecycle state (OpNodeState)
	Target int     // replication target (OpFileAdd, OpSetTarget)
	K      int     // erasure data shards (OpEncodeGeom)
	M      int     // erasure parity shards (OpEncodeGeom)
	Index  int     // block index within its file (OpBlockAdd)
	Group  int     // parity stripe group (OpBlockAdd)
	Size   float64 // bytes (OpFileAdd file size, OpBlockAdd block size)
	Flag   bool    // op-specific: parity, stale, fresh-restart
}

// String renders the entry for debugging and journal dumps.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d e%d %s %s", e.Seq, e.Epoch, e.Time, e.Op)
	switch e.Op {
	case OpFileAdd:
		fmt.Fprintf(&b, " file=%d path=%s size=%.0f target=%d", e.File, e.Path, e.Size, e.Target)
	case OpFileDrop:
		fmt.Fprintf(&b, " file=%d path=%s", e.File, e.Path)
	case OpRename:
		fmt.Fprintf(&b, " file=%d %s -> %s", e.File, e.Path, e.Dst)
	case OpSetTarget:
		fmt.Fprintf(&b, " file=%d target=%d", e.File, e.Target)
	case OpEncodeGeom:
		fmt.Fprintf(&b, " file=%d k=%d m=%d", e.File, e.K, e.M)
	case OpEncodeDone, OpDecodeStart, OpClearGeom:
		fmt.Fprintf(&b, " file=%d", e.File)
	case OpBlockAdd:
		fmt.Fprintf(&b, " block=%d file=%d index=%d size=%.0f parity=%t group=%d",
			e.Block, e.File, e.Index, e.Size, e.Flag, e.Group)
	case OpBlockDrop:
		fmt.Fprintf(&b, " block=%d", e.Block)
	case OpReplicaAdd, OpReplicaDrop, OpReported:
		fmt.Fprintf(&b, " block=%d node=%d", e.Block, e.Node)
	case OpNodeState:
		fmt.Fprintf(&b, " node=%d state=%d fresh=%t", e.Node, e.State, e.Flag)
	case OpNodeStale:
		fmt.Fprintf(&b, " node=%d stale=%t", e.Node, e.Flag)
	case OpFedMoveIntent, OpFedMoveCommit:
		fmt.Fprintf(&b, " %s -> %s shard=%d", e.Path, e.Dst, e.Node)
	case OpFedMoveTombstone:
		fmt.Fprintf(&b, " %s -> %s shard=%d forward=%t", e.Path, e.Dst, e.Node, e.Flag)
	}
	return b.String()
}

// Journal accumulates entries in memory, stamping each with a dense
// sequence number. A checkpoint records the journal sequence at snapshot
// time; a standby restores the checkpoint and replays Tail(seq) to catch
// up — exactly the HDFS fsimage + edits model.
type Journal struct {
	entries []Entry
	start   uint64 // Seq of entries[0]; valid when len(entries) > 0
	next    uint64 // Seq the next Append will assign
	epoch   uint64 // current writer epoch; Append stamps it on every entry
	subs    []func(Entry)
}

// NewJournal returns an empty journal whose first entry will get Seq 1,
// at epoch 1.
func NewJournal() *Journal {
	return &Journal{next: 1, epoch: 1}
}

// NewJournalAt returns an empty journal whose first entry will get Seq
// seq. A promoted standby uses it to continue the failed namenode's
// sequence numbering after replaying its tail (and then SetEpoch/BumpEpoch
// to fence the old writer).
func NewJournalAt(seq uint64) *Journal {
	if seq == 0 {
		seq = 1
	}
	return &Journal{next: seq, epoch: 1}
}

// Epoch returns the journal's current writer epoch. The journal models the
// shared edit-log service (HDFS's quorum journal): whichever namenode's
// writer epoch matches the journal's is the legitimate writer; anyone
// behind is fenced.
func (j *Journal) Epoch() uint64 { return j.epoch }

// SetEpoch sets the writer epoch. Epochs never move backwards; lower
// values are ignored.
func (j *Journal) SetEpoch(e uint64) {
	if e > j.epoch {
		j.epoch = e
	}
}

// BumpEpoch advances the writer epoch by one — the fencing step of a
// standby promotion — and returns the new epoch. Entries appended by a
// writer still holding the old epoch are detectably stale.
func (j *Journal) BumpEpoch() uint64 {
	j.epoch++
	return j.epoch
}

// Append stamps e with the next sequence number and the current epoch,
// stores it, and notifies subscribers. The stamped entry is returned.
func (j *Journal) Append(e Entry) Entry {
	e.Seq = j.next
	e.Epoch = j.epoch
	j.next++
	if len(j.entries) == 0 {
		j.start = e.Seq
	}
	j.entries = append(j.entries, e)
	for _, fn := range j.subs {
		fn(e)
	}
	return e
}

// Subscribe registers fn to receive every future entry.
func (j *Journal) Subscribe(fn func(Entry)) { j.subs = append(j.subs, fn) }

// NextSeq returns the sequence number the next Append will assign. A
// checkpoint taken now pairs with Tail(NextSeq()) later.
func (j *Journal) NextSeq() uint64 { return j.next }

// Len returns the number of retained entries.
func (j *Journal) Len() int { return len(j.entries) }

// Entries returns the retained entries. The slice is shared; callers must
// not mutate it.
func (j *Journal) Entries() []Entry { return j.entries }

// Tail returns the retained entries with Seq >= from. It returns nil if
// entries before from were already truncated away and from predates the
// retained window's start — callers should treat that as "tail
// unavailable" and fall back to a full checkpoint. An empty (but non-nil)
// slice means the tail is valid and simply has nothing to replay.
func (j *Journal) Tail(from uint64) []Entry {
	if from < j.start {
		return nil
	}
	idx := int(from - j.start)
	if idx >= len(j.entries) {
		return []Entry{}
	}
	return j.entries[idx:]
}

// TruncateTo discards retained entries with Seq < upTo, bounding memory
// once a checkpoint has made them redundant. Sequence numbering continues
// unaffected, and the retained window's start advances to upTo even when
// everything is dropped — Tail(upTo) stays valid (and empty) afterwards.
func (j *Journal) TruncateTo(upTo uint64) {
	if upTo <= j.start {
		return
	}
	if upTo > j.next {
		upTo = j.next
	}
	drop := int(upTo - j.start)
	if drop >= len(j.entries) {
		j.entries = j.entries[:0]
		j.start = upTo
		return
	}
	kept := make([]Entry, len(j.entries)-drop)
	copy(kept, j.entries[drop:])
	j.entries = kept
	j.start = upTo
}

// Journal wire format: a magic/version header, a varint entry count, each
// entry's fields as varints (strings length-prefixed, floats as IEEE bits),
// and a trailing FNV-1a checksum of everything before it. The format shares
// its versioning discipline with the checkpoint: any change to entry
// semantics bumps JournalVersion, and decoders reject versions they do not
// know rather than guessing.
const (
	journalMagic = "ERMSJRNL"
	// JournalVersion 2 added the per-entry writer Epoch (journal-epoch
	// fencing); version 1 streams are rejected rather than guessed at.
	JournalVersion = 2
)

const (
	maxJournalEntries = 1 << 28 // decoder sanity bound
	maxJournalString  = 1 << 20
)

// EncodeEntries writes entries to w in the versioned journal format.
func EncodeEntries(w io.Writer, entries []Entry) error {
	h := fnv.New64a()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	writeVarint := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		bw.Write(buf[:n])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		bw.WriteString(s)
	}
	bw.WriteString(journalMagic)
	writeUvarint(JournalVersion)
	writeUvarint(uint64(len(entries)))
	for _, e := range entries {
		writeUvarint(e.Seq)
		writeUvarint(e.Epoch)
		writeVarint(int64(e.Time))
		writeUvarint(uint64(e.Op))
		writeString(e.Path)
		writeString(e.Dst)
		writeVarint(int64(e.File))
		writeVarint(e.Block)
		writeVarint(int64(e.Node))
		writeVarint(int64(e.State))
		writeVarint(int64(e.Target))
		writeVarint(int64(e.K))
		writeVarint(int64(e.M))
		writeVarint(int64(e.Index))
		writeVarint(int64(e.Group))
		writeUvarint(math.Float64bits(e.Size))
		flag := uint64(0)
		if e.Flag {
			flag = 1
		}
		writeUvarint(flag)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("auditlog: journal encode: %w", err)
	}
	// Checksum trailer, outside the hashed region.
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("auditlog: journal encode: %w", err)
	}
	return nil
}

// DecodeEntries reads a journal written by EncodeEntries. Corrupt or
// truncated input returns an error; on success the entries are exactly as
// encoded. The whole stream is read into memory first so the checksum can
// be verified before any field is trusted.
func DecodeEntries(r io.Reader) ([]Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("auditlog: journal decode: %w", err)
	}
	if len(data) < len(journalMagic)+8 {
		return nil, fmt.Errorf("auditlog: journal decode: input too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := binary.LittleEndian.Uint64(trailer), h.Sum64(); got != want {
		return nil, fmt.Errorf("auditlog: journal decode: checksum mismatch (%#x != %#x)", got, want)
	}
	br := bytes.NewReader(payload)
	fail := func(what string, err error) ([]Entry, error) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("auditlog: journal decode %s: %w", what, err)
	}
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fail("magic", err)
	}
	if string(magic) != journalMagic {
		return nil, fmt.Errorf("auditlog: journal decode: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fail("version", err)
	}
	if version != JournalVersion {
		return nil, fmt.Errorf("auditlog: journal decode: unsupported version %d (want %d)", version, JournalVersion)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fail("entry count", err)
	}
	if count > maxJournalEntries {
		return nil, fmt.Errorf("auditlog: journal decode: implausible entry count %d", count)
	}
	readString := func(what string) (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("auditlog: journal decode %s length: %w", what, err)
		}
		if n > maxJournalString {
			return "", fmt.Errorf("auditlog: journal decode: %s length %d too large", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("auditlog: journal decode %s: %w", what, err)
		}
		return string(b), nil
	}
	entries := make([]Entry, 0, min(int(count), 4096))
	for i := uint64(0); i < count; i++ {
		var e Entry
		var iv int64
		var uv uint64
		read := func(what string, dst *int64) bool {
			v, rerr := binary.ReadVarint(br)
			if rerr != nil {
				err = fmt.Errorf("auditlog: journal decode entry %d %s: %w", i, what, rerr)
				return false
			}
			*dst = v
			return true
		}
		if uv, err = binary.ReadUvarint(br); err != nil {
			return fail(fmt.Sprintf("entry %d seq", i), err)
		}
		e.Seq = uv
		if uv, err = binary.ReadUvarint(br); err != nil {
			return fail(fmt.Sprintf("entry %d epoch", i), err)
		}
		e.Epoch = uv
		if !read("time", &iv) {
			return nil, err
		}
		e.Time = time.Duration(iv)
		if uv, err = binary.ReadUvarint(br); err != nil {
			return fail(fmt.Sprintf("entry %d op", i), err)
		}
		e.Op = Op(uv)
		if !e.Op.Valid() {
			return nil, fmt.Errorf("auditlog: journal decode entry %d: unknown op %d", i, uv)
		}
		if e.Path, err = readString("path"); err != nil {
			return nil, err
		}
		if e.Dst, err = readString("dst"); err != nil {
			return nil, err
		}
		if !read("file", &iv) {
			return nil, err
		}
		e.File = int(iv)
		if !read("block", &e.Block) {
			return nil, err
		}
		if !read("node", &iv) {
			return nil, err
		}
		e.Node = int(iv)
		if !read("state", &iv) {
			return nil, err
		}
		e.State = int(iv)
		if !read("target", &iv) {
			return nil, err
		}
		e.Target = int(iv)
		if !read("k", &iv) {
			return nil, err
		}
		e.K = int(iv)
		if !read("m", &iv) {
			return nil, err
		}
		e.M = int(iv)
		if !read("index", &iv) {
			return nil, err
		}
		e.Index = int(iv)
		if !read("group", &iv) {
			return nil, err
		}
		e.Group = int(iv)
		if uv, err = binary.ReadUvarint(br); err != nil {
			return fail(fmt.Sprintf("entry %d size", i), err)
		}
		e.Size = math.Float64frombits(uv)
		if uv, err = binary.ReadUvarint(br); err != nil {
			return fail(fmt.Sprintf("entry %d flag", i), err)
		}
		if uv > 1 {
			return nil, fmt.Errorf("auditlog: journal decode entry %d: bad flag %d", i, uv)
		}
		e.Flag = uv == 1
		entries = append(entries, e)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("auditlog: journal decode: %d trailing bytes after %d entries", br.Len(), count)
	}
	return entries, nil
}
