// Package auditlog models the HDFS namenode audit log: the stream the ERMS
// Data Judge consumes. Records serialize to and parse from the real HDFS
// audit format
//
//	2012-07-05 10:00:00,123 INFO FSNamesystem.audit: allowed=true
//	ugi=user (auth:SIMPLE) ip=/10.0.0.7 cmd=open src=/data/f dst=null perm=null
//
// so the parser (the paper's "216-line log parser" reimplemented) would work
// against real logs too. In the simulation, producers append records and
// subscribers (the CEP feed) receive them synchronously in virtual time.
package auditlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Command is the audited HDFS operation.
type Command string

// The audited commands ERMS cares about. Open dominates: the Data Judge
// counts concurrent read accesses.
const (
	CmdOpen Command = "open"
	// CmdPread records a byte-ranged (positioned) read: the client touched
	// only part of the file, so the Data Judge must not count it as a
	// whole-file open — per-block heat comes from the block-read stream.
	CmdPread       Command = "pread"
	CmdCreate      Command = "create"
	CmdDelete      Command = "delete"
	CmdRename      Command = "rename"
	CmdSetRepl     Command = "setReplication"
	CmdListStatus  Command = "listStatus"
	CmdGetFileInfo Command = "getfileinfo"
	// CmdSafeMode records namenode safe-mode transitions (Src carries
	// /enter/<reason> or /leave).
	CmdSafeMode Command = "safemode"
)

// Record is one audit log line.
type Record struct {
	Time    time.Duration // virtual time since simulation start
	Allowed bool
	UGI     string  // user/group info
	IP      string  // client address
	Cmd     Command // operation
	Src     string  // source path
	Dst     string  // destination path ("" renders as null)
	Perm    string  // permission string ("" renders as null)
}

// epoch anchors virtual time zero for human-readable timestamps. The value
// is arbitrary but fixed so serialized logs are deterministic.
var epoch = time.Date(2012, time.July, 5, 10, 0, 0, 0, time.UTC)

// Format renders the record as an HDFS audit log line.
func (r Record) Format() string {
	wall := epoch.Add(r.Time)
	ms := wall.Nanosecond() / int(time.Millisecond)
	nullable := func(s string) string {
		if s == "" {
			return "null"
		}
		return s
	}
	return fmt.Sprintf("%s,%03d INFO FSNamesystem.audit: allowed=%t ugi=%s ip=/%s cmd=%s src=%s dst=%s perm=%s",
		wall.Format("2006-01-02 15:04:05"), ms, r.Allowed, r.UGI, r.IP,
		string(r.Cmd), nullable(r.Src), nullable(r.Dst), nullable(r.Perm))
}

// Parse decodes an HDFS audit log line back into a Record. It is the
// inverse of Format and also tolerates extra whitespace.
func Parse(line string) (Record, error) {
	var r Record
	line = strings.TrimSpace(line)
	// Timestamp: "2006-01-02 15:04:05,mmm".
	if len(line) < 23 {
		return r, fmt.Errorf("auditlog: line too short: %q", line)
	}
	stamp := line[:23]
	rest := line[23:]
	base := stamp[:19]
	msStr := stamp[20:23]
	if stamp[19] != ',' {
		return r, fmt.Errorf("auditlog: bad timestamp %q", stamp)
	}
	wall, err := time.ParseInLocation("2006-01-02 15:04:05", base, time.UTC)
	if err != nil {
		return r, fmt.Errorf("auditlog: bad timestamp %q: %v", stamp, err)
	}
	ms, err := strconv.Atoi(msStr)
	if err != nil {
		return r, fmt.Errorf("auditlog: bad milliseconds %q", msStr)
	}
	r.Time = wall.Add(time.Duration(ms) * time.Millisecond).Sub(epoch)
	// Guard the representable range: time.Time.Sub saturates on overflow,
	// which would yield a Time that no longer round-trips through Format.
	// Half a century on either side of the epoch is far beyond any
	// simulation or real log this package will meet.
	const maxSpan = 50 * 365 * 24 * time.Hour
	if r.Time > maxSpan || r.Time < -maxSpan {
		return r, fmt.Errorf("auditlog: timestamp %q out of range", stamp)
	}

	idx := strings.Index(rest, "FSNamesystem.audit:")
	if idx < 0 {
		return r, fmt.Errorf("auditlog: missing audit marker in %q", line)
	}
	fields := strings.Fields(rest[idx+len("FSNamesystem.audit:"):])
	kv := map[string]string{}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			continue
		}
		kv[f[:eq]] = f[eq+1:]
	}
	denull := func(s string) string {
		if s == "null" {
			return ""
		}
		return s
	}
	r.Allowed = kv["allowed"] == "true"
	r.UGI = kv["ugi"]
	r.IP = strings.TrimPrefix(kv["ip"], "/")
	r.Cmd = Command(kv["cmd"])
	r.Src = denull(kv["src"])
	r.Dst = denull(kv["dst"])
	r.Perm = denull(kv["perm"])
	if r.Cmd == "" {
		return r, fmt.Errorf("auditlog: missing cmd in %q", line)
	}
	return r, nil
}

// Log is an in-memory audit log with synchronous subscribers.
type Log struct {
	subs    []func(Record)
	count   int
	keep    bool
	records []Record
}

// NewLog returns an empty log. If keepRecords is true the log retains every
// record for later inspection or serialization (tests, trace export);
// otherwise it only dispatches to subscribers, keeping memory flat during
// long simulations.
func NewLog(keepRecords bool) *Log {
	return &Log{keep: keepRecords}
}

// Subscribe registers fn to receive every future record.
func (l *Log) Subscribe(fn func(Record)) { l.subs = append(l.subs, fn) }

// Append adds a record, dispatching to subscribers in registration order.
func (l *Log) Append(r Record) {
	l.count++
	if l.keep {
		l.records = append(l.records, r)
	}
	for _, fn := range l.subs {
		fn(r)
	}
}

// Count returns the number of records appended.
func (l *Log) Count() int { return l.count }

// Records returns retained records (nil unless keepRecords was set).
func (l *Log) Records() []Record { return l.records }

// Dump renders all retained records in HDFS audit format, one per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, r := range l.records {
		b.WriteString(r.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseAll parses a multi-line audit dump, skipping blank lines.
func ParseAll(dump string) ([]Record, error) {
	var out []Record
	for _, line := range strings.Split(dump, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ParseStream reads audit log lines from r and calls fn for every record
// that parses. Real namenode logs interleave audit lines with other log4j
// output, so lines that do not parse are counted and skipped rather than
// fatal. It returns how many records parsed, how many lines were skipped,
// and any I/O error.
func ParseStream(r io.Reader, fn func(Record)) (parsed, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, perr := Parse(line)
		if perr != nil {
			skipped++
			continue
		}
		parsed++
		fn(rec)
	}
	return parsed, skipped, sc.Err()
}
