package auditlog

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// re-format into a line it accepts again with identical content.
func FuzzParse(f *testing.F) {
	f.Add(sample().Format())
	f.Add("2012-07-05 10:00:00,000 INFO FSNamesystem.audit: allowed=true ugi=u ip=/1.2.3.4 cmd=open src=/x dst=null perm=null")
	f.Add("garbage")
	f.Add("")
	f.Add("2012-07-05 10:00:00,abc INFO FSNamesystem.audit: cmd=open")
	f.Add(strings.Repeat("x", 300))
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := Parse(line)
		if err != nil {
			return
		}
		back, err := Parse(rec.Format())
		if err != nil {
			t.Fatalf("reparse of formatted record failed: %v", err)
		}
		if back != rec {
			t.Fatalf("format/parse not idempotent: %+v vs %+v", rec, back)
		}
	})
}
