package auditlog

import (
	"bytes"
	"testing"
	"time"
)

// TestJournalEpochStamping: Append stamps the journal's current epoch, and
// a bump mid-stream shows up on subsequent entries only.
func TestJournalEpochStamping(t *testing.T) {
	j := NewJournal()
	if j.Epoch() != 1 {
		t.Fatalf("fresh journal epoch = %d, want 1", j.Epoch())
	}
	a := j.Append(Entry{Op: OpFileAdd, Path: "/a", Time: time.Second})
	if a.Epoch != 1 {
		t.Fatalf("entry epoch = %d, want 1", a.Epoch)
	}
	if got := j.BumpEpoch(); got != 2 {
		t.Fatalf("BumpEpoch = %d, want 2", got)
	}
	b := j.Append(Entry{Op: OpFileDrop, Path: "/a", Time: 2 * time.Second})
	if b.Epoch != 2 {
		t.Fatalf("post-bump entry epoch = %d, want 2", b.Epoch)
	}
	if j.Entries()[0].Epoch != 1 {
		t.Fatal("bump must not rewrite already-appended entries")
	}
}

// TestJournalSetEpochMonotonic: epochs never move backwards.
func TestJournalSetEpochMonotonic(t *testing.T) {
	j := NewJournal()
	j.SetEpoch(5)
	if j.Epoch() != 5 {
		t.Fatalf("SetEpoch(5): epoch = %d", j.Epoch())
	}
	j.SetEpoch(3)
	if j.Epoch() != 5 {
		t.Fatalf("SetEpoch must ignore lower values: epoch = %d, want 5", j.Epoch())
	}
	j.SetEpoch(5)
	if j.Epoch() != 5 {
		t.Fatalf("SetEpoch(same) changed epoch to %d", j.Epoch())
	}
}

// TestJournalEpochWireRoundTrip: nonzero epochs survive the versioned wire
// format.
func TestJournalEpochWireRoundTrip(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{Op: OpFileAdd, Path: "/a", File: 1, Size: 64, Target: 3})
	j.SetEpoch(7)
	j.Append(Entry{Op: OpReplicaAdd, Block: 9, Node: 2})
	j.BumpEpoch()
	j.Append(Entry{Op: OpFileDrop, Path: "/a", File: 1})

	var buf bytes.Buffer
	if err := EncodeEntries(&buf, j.Entries()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(got))
	}
	for i, want := range []uint64{1, 7, 8} {
		if got[i].Epoch != want {
			t.Errorf("entry %d epoch = %d, want %d", i, got[i].Epoch, want)
		}
	}
	for i := range got {
		if got[i] != j.Entries()[i] {
			t.Errorf("entry %d did not round-trip: %v vs %v", i, got[i], j.Entries()[i])
		}
	}
}
