package classad

import "testing"

func BenchmarkParseExpr(b *testing.B) {
	const src = `target.Rack == my.WantRack && target.State == "active" && target.FreeGB > 100`
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchmaking(b *testing.B) {
	job := NewClassAd().
		Set("WantRack", 2).
		Set("ImageSize", 4096).
		SetExprString("Requirements",
			`target.Rack == my.WantRack && target.Memory >= my.ImageSize`).
		SetExprString("Rank", "target.FreeGB")
	machines := make([]*ClassAd, 18)
	for i := range machines {
		machines[i] = NewClassAd().
			Set("Rack", i%3).
			Set("Memory", 8192).
			Set("FreeGB", 100+i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, rank := -1, -1.0
		for k, m := range machines {
			if !Match(job, m) {
				continue
			}
			if r := RankOf(job, m); r > rank {
				best, rank = k, r
			}
		}
		if best < 0 {
			b.Fatal("no match")
		}
	}
}
