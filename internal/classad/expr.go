package classad

import (
	"regexp"
	"strings"
)

// Expr is a ClassAd expression evaluated against a (my, target) ad pair.
type Expr interface {
	Eval(ctx *Context) Value
	String() string
}

// Context carries the evaluation scopes. Target may be nil (evaluating an
// ad on its own). Depth guards against reference cycles.
type Context struct {
	My     *ClassAd
	Target *ClassAd
	depth  int
}

const maxEvalDepth = 64

type litNode struct{ v Value }

func (n litNode) Eval(*Context) Value { return n.v }
func (n litNode) String() string      { return n.v.String() }

// attrNode is an attribute reference: bare, my.X, or target.X.
type attrNode struct {
	scope string // "", "my", or "target"
	name  string // lowercase
}

func (n attrNode) Eval(ctx *Context) Value {
	if ctx.depth >= maxEvalDepth {
		return ErrorVal
	}
	lookup := func(ad *ClassAd, other *ClassAd) (Value, bool) {
		if ad == nil {
			return Undefined, false
		}
		e, ok := ad.attrs[n.name]
		if !ok {
			return Undefined, false
		}
		sub := &Context{My: ad, Target: other, depth: ctx.depth + 1}
		return e.Eval(sub), true
	}
	switch n.scope {
	case "my":
		v, _ := lookup(ctx.My, ctx.Target)
		return v
	case "target":
		v, _ := lookup(ctx.Target, ctx.My)
		return v
	default:
		if v, ok := lookup(ctx.My, ctx.Target); ok {
			return v
		}
		if v, ok := lookup(ctx.Target, ctx.My); ok {
			return v
		}
		return Undefined
	}
}

func (n attrNode) String() string {
	if n.scope == "" {
		return n.name
	}
	return n.scope + "." + n.name
}

type unaryNode struct {
	op  string // "!" or "-"
	sub Expr
}

func (n unaryNode) Eval(ctx *Context) Value {
	v := n.sub.Eval(ctx)
	switch v.Kind {
	case KindUndefined, KindError:
		return v
	}
	switch n.op {
	case "!":
		if v.Kind == KindBool {
			return Boolean(!v.Bool)
		}
		return ErrorVal
	case "-":
		if f, ok := v.Number(); ok {
			return Num(-f)
		}
		return ErrorVal
	}
	return ErrorVal
}

func (n unaryNode) String() string { return n.op + n.sub.String() }

type binaryNode struct {
	op          string
	left, right Expr
}

func (n binaryNode) Eval(ctx *Context) Value {
	switch n.op {
	case "&&":
		l := n.left.Eval(ctx)
		if l.Kind == KindBool && !l.Bool {
			return False
		}
		r := n.right.Eval(ctx)
		if r.Kind == KindBool && !r.Bool {
			return False
		}
		return and3(l, r)
	case "||":
		l := n.left.Eval(ctx)
		if l.IsTrue() {
			return True
		}
		r := n.right.Eval(ctx)
		if r.IsTrue() {
			return True
		}
		return or3(l, r)
	case "=?=":
		return Boolean(n.left.Eval(ctx).SameAs(n.right.Eval(ctx)))
	case "=!=":
		return Boolean(!n.left.Eval(ctx).SameAs(n.right.Eval(ctx)))
	}
	l := n.left.Eval(ctx)
	r := n.right.Eval(ctx)
	if l.Kind == KindError || r.Kind == KindError {
		return ErrorVal
	}
	if l.Kind == KindUndefined || r.Kind == KindUndefined {
		return Undefined
	}
	switch n.op {
	case "==", "!=", "<", "<=", ">", ">=":
		return comparison(n.op, l, r)
	case "+", "-", "*", "/", "%":
		lf, ok1 := l.Number()
		rf, ok2 := r.Number()
		if !ok1 || !ok2 {
			if n.op == "+" && l.Kind == KindString && r.Kind == KindString {
				return Str(l.Str + r.Str)
			}
			return ErrorVal
		}
		switch n.op {
		case "+":
			return Num(lf + rf)
		case "-":
			return Num(lf - rf)
		case "*":
			return Num(lf * rf)
		case "/":
			if rf == 0 {
				return ErrorVal
			}
			return Num(lf / rf)
		case "%":
			if rf == 0 {
				return ErrorVal
			}
			return Num(float64(int64(lf) % int64(rf)))
		}
	}
	return ErrorVal
}

func (n binaryNode) String() string {
	return "(" + n.left.String() + " " + n.op + " " + n.right.String() + ")"
}

// and3 implements three-valued AND for operands that are not definite
// false (handled by the caller's short-circuit).
func and3(l, r Value) Value {
	lb, lok := boolish(l)
	rb, rok := boolish(r)
	if lok && rok {
		return Boolean(lb && rb)
	}
	if l.Kind == KindError || r.Kind == KindError {
		return ErrorVal
	}
	return Undefined
}

func or3(l, r Value) Value {
	lb, lok := boolish(l)
	rb, rok := boolish(r)
	if lok && rok {
		return Boolean(lb || rb)
	}
	if l.Kind == KindError || r.Kind == KindError {
		return ErrorVal
	}
	return Undefined
}

func boolish(v Value) (bool, bool) {
	if v.Kind == KindBool {
		return v.Bool, true
	}
	return false, false
}

func comparison(op string, l, r Value) Value {
	var cmp float64
	if lf, ok := l.Number(); ok {
		rf, ok2 := r.Number()
		if !ok2 {
			return ErrorVal
		}
		cmp = lf - rf
	} else if l.Kind == KindString && r.Kind == KindString {
		// Condor string comparison is case-insensitive.
		cmp = float64(strings.Compare(strings.ToLower(l.Str), strings.ToLower(r.Str)))
	} else {
		return ErrorVal
	}
	switch op {
	case "==":
		return Boolean(cmp == 0)
	case "!=":
		return Boolean(cmp != 0)
	case "<":
		return Boolean(cmp < 0)
	case "<=":
		return Boolean(cmp <= 0)
	case ">":
		return Boolean(cmp > 0)
	case ">=":
		return Boolean(cmp >= 0)
	}
	return ErrorVal
}

type ternaryNode struct{ cond, then, els Expr }

func (n ternaryNode) Eval(ctx *Context) Value {
	c := n.cond.Eval(ctx)
	switch c.Kind {
	case KindUndefined, KindError:
		return c
	case KindBool:
		if c.Bool {
			return n.then.Eval(ctx)
		}
		return n.els.Eval(ctx)
	}
	return ErrorVal
}

func (n ternaryNode) String() string {
	return "(" + n.cond.String() + " ? " + n.then.String() + " : " + n.els.String() + ")"
}

type listNode struct{ elems []Expr }

func (n listNode) Eval(ctx *Context) Value {
	vs := make([]Value, len(n.elems))
	for i, e := range n.elems {
		vs[i] = e.Eval(ctx)
	}
	return Value{Kind: KindList, List: vs}
}

func (n listNode) String() string {
	parts := make([]string, len(n.elems))
	for i, e := range n.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

type callNode struct {
	fn   string // lowercase
	args []Expr
}

func (n callNode) Eval(ctx *Context) Value {
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		args[i] = a.Eval(ctx)
	}
	switch n.fn {
	case "member":
		if len(args) != 2 || args[1].Kind != KindList {
			return ErrorVal
		}
		if args[0].Kind == KindUndefined {
			return Undefined
		}
		for _, e := range args[1].List {
			if eq := comparison("==", args[0], e); eq.IsTrue() {
				return True
			}
		}
		return False
	case "size":
		if len(args) != 1 {
			return ErrorVal
		}
		switch args[0].Kind {
		case KindList:
			return Num(float64(len(args[0].List)))
		case KindString:
			return Num(float64(len(args[0].Str)))
		}
		return ErrorVal
	case "strcat":
		var b strings.Builder
		for _, a := range args {
			switch a.Kind {
			case KindString:
				b.WriteString(a.Str)
			case KindNumber, KindBool:
				b.WriteString(a.String())
			default:
				return ErrorVal
			}
		}
		return Str(b.String())
	case "floor":
		if len(args) != 1 {
			return ErrorVal
		}
		if f, ok := args[0].Number(); ok {
			return Num(float64(int64(f)))
		}
		return ErrorVal
	case "ifthenelse":
		if len(args) != 3 {
			return ErrorVal
		}
		if args[0].Kind == KindBool {
			if args[0].Bool {
				return args[1]
			}
			return args[2]
		}
		return ErrorVal
	case "isundefined":
		if len(args) != 1 {
			return ErrorVal
		}
		return Boolean(args[0].Kind == KindUndefined)
	case "regexp":
		// regexp(pattern, target) — Condor's RE match builtin.
		if len(args) != 2 || args[0].Kind != KindString {
			return ErrorVal
		}
		if args[1].Kind == KindUndefined {
			return Undefined
		}
		if args[1].Kind != KindString {
			return ErrorVal
		}
		re, err := regexp.Compile(args[0].Str)
		if err != nil {
			return ErrorVal
		}
		return Boolean(re.MatchString(args[1].Str))
	case "stringlistmember":
		// stringListMember(item, "a,b,c") — membership in a comma list,
		// case-insensitively like Condor string comparison.
		if len(args) != 2 || args[0].Kind != KindString || args[1].Kind != KindString {
			return ErrorVal
		}
		for _, part := range strings.Split(args[1].Str, ",") {
			if strings.EqualFold(strings.TrimSpace(part), args[0].Str) {
				return True
			}
		}
		return False
	}
	return ErrorVal
}

func (n callNode) String() string {
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return n.fn + "(" + strings.Join(parts, ", ") + ")"
}
