package classad

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return NewClassAd().EvalExpr(e, nil)
}

func TestLiteralEval(t *testing.T) {
	cases := map[string]Value{
		"42":               Num(42),
		"3.5":              Num(3.5),
		`"hello"`:          Str("hello"),
		"true":             True,
		"false":            False,
		"undefined":        Undefined,
		"error":            ErrorVal,
		"{1, 2, 3}":        ListOf(Num(1), Num(2), Num(3)),
		"1 + 2 * 3":        Num(7),
		"(1 + 2) * 3":      Num(9),
		"10 / 4":           Num(2.5),
		"10 % 3":           Num(1),
		"-5 + 2":           Num(-3),
		"!true":            False,
		"2 < 3":            True,
		"2 >= 3":           False,
		`"a" == "A"`:       True, // Condor strings compare case-insensitively
		`"a" < "b"`:        True,
		`"x" + "y"`:        Str("xy"),
		"true && false":    False,
		"true || false":    True,
		"1 == 1 ? 10 : 20": Num(10),
		"false ? 10 : 20":  Num(20),
	}
	for src, want := range cases {
		if got := evalStr(t, src); !got.SameAs(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cases := map[string]Value{
		"undefined && true":       Undefined,
		"undefined && false":      False, // definite false dominates
		"false && undefined":      False,
		"undefined || true":       True, // definite true dominates
		"true || undefined":       True,
		"undefined || false":      Undefined,
		"undefined == 1":          Undefined,
		"undefined + 1":           Undefined,
		"error && false":          False,
		"error && true":           ErrorVal,
		"1/0":                     ErrorVal,
		"1/0 == 1":                ErrorVal,
		"undefined =?= undefined": True,
		"undefined =?= 1":         False,
		"1 =?= 1":                 True,
		`1 =?= "1"`:               False, // meta-equality is type-strict
		"1 =!= 2":                 True,
		"!undefined":              Undefined,
	}
	for src, want := range cases {
		if got := evalStr(t, src); !got.SameAs(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestBuiltinFunctions(t *testing.T) {
	cases := map[string]Value{
		`member("b", {"a", "b"})`:  True,
		`member("z", {"a", "b"})`:  False,
		`member(undefined, {"a"})`: Undefined,
		`member(1, 2)`:             ErrorVal,
		`size({1, 2, 3})`:          Num(3),
		`size("abcd")`:             Num(4),
		`size(5)`:                  ErrorVal,
		`strcat("a", "b", 3)`:      Str("ab3"),
		`floor(3.9)`:               Num(3),
		`ifthenelse(true, 1, 2)`:   Num(1),
		`ifthenelse(false, 1, 2)`:  Num(2),
		`isundefined(undefined)`:   True,
		`isundefined(3)`:           False,
		`nosuchfn(1)`:              ErrorVal,
	}
	for src, want := range cases {
		if got := evalStr(t, src); !got.SameAs(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestAttributeLookupAndScopes(t *testing.T) {
	machine := NewClassAd().
		Set("Name", "dn07").
		Set("Rack", 2).
		Set("State", "standby").
		Set("FreeGB", 120.0)
	job := NewClassAd().
		Set("WantRack", 2).
		SetExprString("Requirements", `target.Rack == my.WantRack && target.State == "standby"`)

	if !job.Eval(Requirements, machine).IsTrue() {
		t.Fatal("requirements should match")
	}
	machine.Set("State", "active")
	if job.Eval(Requirements, machine).IsTrue() {
		t.Fatal("requirements should fail after state change")
	}
	// Bare attribute resolves MY first, then TARGET.
	probe := MustParseExpr("FreeGB")
	if got := job.EvalExpr(probe, machine); !got.SameAs(Num(120)) {
		t.Fatalf("bare lookup fell through wrong: %v", got)
	}
	// Case-insensitivity.
	if got := machine.Eval("rack", nil); !got.SameAs(Num(2)) {
		t.Fatalf("case-insensitive lookup: %v", got)
	}
	// Missing -> undefined.
	if got := machine.Eval("nope", nil); got.Kind != KindUndefined {
		t.Fatalf("missing attr: %v", got)
	}
}

func TestAttributeChains(t *testing.T) {
	ad := NewClassAd().
		Set("a", 1).
		SetExprString("b", "a + 1").
		SetExprString("c", "b * 2")
	if got := ad.Eval("c", nil); !got.SameAs(Num(4)) {
		t.Fatalf("chained eval = %v", got)
	}
}

func TestCycleDetection(t *testing.T) {
	ad := NewClassAd().
		SetExprString("a", "b").
		SetExprString("b", "a")
	if got := ad.Eval("a", nil); got.Kind != KindError {
		t.Fatalf("cycle should evaluate to error, got %v", got)
	}
}

func TestMatchSymmetric(t *testing.T) {
	machine := NewClassAd().
		Set("Memory", 8192).
		SetExprString("Requirements", "target.ImageSize <= my.Memory")
	job := NewClassAd().
		Set("ImageSize", 4096).
		SetExprString("Requirements", "target.Memory >= 2048")
	if !Match(job, machine) {
		t.Fatal("should match")
	}
	job.Set("ImageSize", 100000)
	if Match(job, machine) {
		t.Fatal("machine requirements violated; should not match")
	}
	// Missing Requirements counts as unconstrained.
	free := NewClassAd()
	if !Match(free, NewClassAd()) {
		t.Fatal("unconstrained ads should match")
	}
}

func TestRank(t *testing.T) {
	job := NewClassAd().SetExprString("Rank", "target.FreeGB")
	m1 := NewClassAd().Set("FreeGB", 10)
	m2 := NewClassAd().Set("FreeGB", 50)
	if RankOf(job, m1) >= RankOf(job, m2) {
		t.Fatal("rank ordering wrong")
	}
	if RankOf(NewClassAd(), m1) != 0 {
		t.Fatal("missing rank should default to 0")
	}
}

func TestParseFullAd(t *testing.T) {
	ad, err := Parse(`[
		Name = "dn01";
		Rack = 1;
		Standby = true;
		Requirements = target.Rack == my.Rack;
		Tags = {"ssd", "fast"}
	]`)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Len() != 5 {
		t.Fatalf("Len = %d", ad.Len())
	}
	if !ad.Eval("Standby", nil).IsTrue() {
		t.Fatal("standby")
	}
	if got := ad.Eval("Tags", nil); got.Kind != KindList || len(got.List) != 2 {
		t.Fatalf("tags = %v", got)
	}
}

func TestParseAdErrors(t *testing.T) {
	for _, src := range []string{
		"noequals",
		"a = ",
		`a = "unterminated`,
		"a b = 3",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) accepted", src)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "{1,", "member(1,", "a ? 1", "1 @ 2", "my.",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Fatalf("ParseExpr(%q) accepted", src)
		}
	}
}

func TestAdStringRoundTrip(t *testing.T) {
	ad := NewClassAd().
		Set("Name", "dn01").
		Set("Rack", 3).
		SetExprString("Requirements", "target.Rack == 3")
	s := ad.String()
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if back.Len() != ad.Len() {
		t.Fatalf("round trip lost attributes: %q", s)
	}
	if !strings.Contains(s, "Name") {
		t.Fatalf("original spelling lost: %q", s)
	}
	machine := NewClassAd().Set("Rack", 3)
	if !back.Eval(Requirements, machine).IsTrue() {
		t.Fatal("reparsed requirements broken")
	}
}

func TestSetVariants(t *testing.T) {
	ad := NewClassAd().
		Set("i", 7).
		Set("i64", int64(8)).
		Set("f", 2.5).
		Set("b", true).
		Set("s", "x").
		Set("list", []string{"a", "b"}).
		Set("v", Num(1))
	if !ad.Eval("i", nil).SameAs(Num(7)) || !ad.Eval("i64", nil).SameAs(Num(8)) {
		t.Fatal("int set")
	}
	if got := ad.Eval("list", nil); got.Kind != KindList || len(got.List) != 2 {
		t.Fatal("list set")
	}
	ad.Delete("i")
	if ad.Has("i") {
		t.Fatal("delete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported type should panic")
		}
	}()
	ad.Set("bad", struct{}{})
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"undefined": Undefined,
		"error":     ErrorVal,
		"true":      True,
		"42":        Num(42),
		"2.5":       Num(2.5),
		`"s"`:       Str("s"),
		`{1, "a"}`:  ListOf(Num(1), Str("a")),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// Property: numeric arithmetic in ClassAds agrees with Go arithmetic.
func TestQuickArithmetic(t *testing.T) {
	f := func(a, b int16) bool {
		ad := NewClassAd().Set("a", float64(a)).Set("b", float64(b))
		sum := ad.EvalExpr(MustParseExpr("a + b"), nil)
		prod := ad.EvalExpr(MustParseExpr("a * b"), nil)
		return sum.SameAs(Num(float64(a)+float64(b))) &&
			prod.SameAs(Num(float64(a)*float64(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Match is symmetric in its definition — Match(a,b) == Match(b,a).
func TestQuickMatchSymmetry(t *testing.T) {
	f := func(x, y uint8, needX, needY uint8) bool {
		a := NewClassAd().Set("v", int(x)).
			SetExprString("Requirements", "target.v >= "+itoa(int(needX)))
		b := NewClassAd().Set("v", int(y)).
			SetExprString("Requirements", "target.v >= "+itoa(int(needY)))
		return Match(a, b) == Match(b, a) &&
			Match(a, b) == (int(y) >= int(needX) && int(x) >= int(needY))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestRegexpAndStringListBuiltins(t *testing.T) {
	cases := map[string]Value{
		`regexp("^dn[0-9]+$", "dn07")`:        True,
		`regexp("^dn[0-9]+$", "rack1")`:       False,
		`regexp("^dn", undefined)`:            Undefined,
		`regexp("[invalid", "x")`:             ErrorVal,
		`regexp(3, "x")`:                      ErrorVal,
		`stringListMember("ssd", "hdd,ssd")`:  True,
		`stringListMember("SSD", "hdd, ssd")`: True, // case-insensitive, trimmed
		`stringListMember("nvme", "hdd,ssd")`: False,
		`stringListMember(1, "a")`:            ErrorVal,
	}
	for src, want := range cases {
		if got := evalStr(t, src); !got.SameAs(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}
