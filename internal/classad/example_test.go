package classad_test

import (
	"fmt"

	"erms/internal/classad"
)

// Matching a replication job against datanode machine ads, as ERMS's
// Condor scheduler does.
func Example() {
	job := classad.NewClassAd().
		Set("WantStandby", true).
		SetExprString("Requirements",
			`target.Standby == my.WantStandby && target.FreeGB > 50`).
		SetExprString("Rank", "target.FreeGB")

	machines := []*classad.ClassAd{
		classad.NewClassAd().Set("Name", "dn03").Set("Standby", false).Set("FreeGB", 400),
		classad.NewClassAd().Set("Name", "dn11").Set("Standby", true).Set("FreeGB", 120),
		classad.NewClassAd().Set("Name", "dn12").Set("Standby", true).Set("FreeGB", 200),
	}
	bestRank := -1.0
	var best *classad.ClassAd
	for _, m := range machines {
		if !classad.Match(job, m) {
			continue
		}
		if r := classad.RankOf(job, m); r > bestRank {
			best, bestRank = m, r
		}
	}
	fmt.Println("placed on", best.Eval("Name", nil).Str)
	// Output:
	// placed on dn12
}
