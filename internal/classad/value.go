// Package classad implements the Condor ClassAd language: attribute sets
// whose values are lazily evaluated expressions, with the three-valued
// (undefined/error-propagating) semantics Condor matchmaking relies on.
//
// ERMS uses ClassAds the way the paper describes: machine ads advertise
// datanode characteristics (rack, active/standby state, free capacity,
// liveness), job ads carry Requirements and Rank expressions, and the
// negotiator matches jobs to machines by symmetric Requirements evaluation.
package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates Value.
type Kind int

// Value kinds. Undefined and Error are first-class: comparisons against
// Undefined yield Undefined, and matchmaking treats non-true Requirements
// as no-match, exactly like Condor.
const (
	KindUndefined Kind = iota
	KindError
	KindBool
	KindNumber
	KindString
	KindList
)

// Value is an evaluated ClassAd expression result.
type Value struct {
	Kind Kind
	Bool bool
	Num  float64
	Str  string
	List []Value
}

// Convenience constructors.
var (
	Undefined = Value{Kind: KindUndefined}
	ErrorVal  = Value{Kind: KindError}
	True      = Value{Kind: KindBool, Bool: true}
	False     = Value{Kind: KindBool, Bool: false}
)

// Num returns a numeric value.
func Num(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Boolean returns a bool value.
func Boolean(b bool) Value {
	if b {
		return True
	}
	return False
}

// ListOf returns a list value.
func ListOf(vs ...Value) Value { return Value{Kind: KindList, List: vs} }

// IsTrue reports whether the value is the boolean true (the only value that
// satisfies a Requirements clause).
func (v Value) IsTrue() bool { return v.Kind == KindBool && v.Bool }

// Number returns the numeric content and whether the value is numeric
// (bools coerce to 0/1 as in Condor).
func (v Value) Number() (float64, bool) {
	switch v.Kind {
	case KindNumber:
		return v.Num, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// String renders the value in ClassAd syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindUndefined:
		return "undefined"
	case KindError:
		return "error"
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNumber:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.Str)
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return fmt.Sprintf("unknown(%d)", v.Kind)
}

// SameAs is the meta-equality used by =?= : identical kind and content,
// with no undefined-propagation.
func (v Value) SameAs(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindUndefined, KindError:
		return true
	case KindBool:
		return v.Bool == o.Bool
	case KindNumber:
		return v.Num == o.Num
	case KindString:
		return v.Str == o.Str
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].SameAs(o.List[i]) {
				return false
			}
		}
		return true
	}
	return false
}
