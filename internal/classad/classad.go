package classad

import (
	"fmt"
	"sort"
	"strings"
)

// ClassAd is an attribute set. Attribute names are case-insensitive, as in
// Condor.
type ClassAd struct {
	attrs map[string]Expr
	names map[string]string // lowercase -> original spelling
}

// NewClassAd returns an empty ad.
func NewClassAd() *ClassAd {
	return &ClassAd{attrs: make(map[string]Expr), names: make(map[string]string)}
}

// Set assigns a literal value; v may be a string, bool, int, int64,
// float64, Value, or []string (becoming a list of strings).
func (ad *ClassAd) Set(name string, v any) *ClassAd {
	var val Value
	switch x := v.(type) {
	case Value:
		val = x
	case string:
		val = Str(x)
	case bool:
		val = Boolean(x)
	case int:
		val = Num(float64(x))
	case int64:
		val = Num(float64(x))
	case float64:
		val = Num(x)
	case []string:
		vs := make([]Value, len(x))
		for i, s := range x {
			vs[i] = Str(s)
		}
		val = ListOf(vs...)
	default:
		panic(fmt.Sprintf("classad: unsupported literal type %T", v))
	}
	return ad.SetExpr(name, litNode{v: val})
}

// SetExpr assigns an expression attribute.
func (ad *ClassAd) SetExpr(name string, e Expr) *ClassAd {
	key := strings.ToLower(name)
	ad.attrs[key] = e
	ad.names[key] = name
	return ad
}

// SetExprString parses src and assigns it; it panics on syntax errors (use
// for statically known expressions) .
func (ad *ClassAd) SetExprString(name, src string) *ClassAd {
	return ad.SetExpr(name, MustParseExpr(src))
}

// Delete removes an attribute.
func (ad *ClassAd) Delete(name string) {
	key := strings.ToLower(name)
	delete(ad.attrs, key)
	delete(ad.names, key)
}

// Has reports whether the attribute exists.
func (ad *ClassAd) Has(name string) bool {
	_, ok := ad.attrs[strings.ToLower(name)]
	return ok
}

// Len returns the attribute count.
func (ad *ClassAd) Len() int { return len(ad.attrs) }

// Eval evaluates the named attribute with this ad as MY and target as
// TARGET (target may be nil).
func (ad *ClassAd) Eval(name string, target *ClassAd) Value {
	e, ok := ad.attrs[strings.ToLower(name)]
	if !ok {
		return Undefined
	}
	return e.Eval(&Context{My: ad, Target: target})
}

// EvalExpr evaluates an arbitrary expression with this ad as MY.
func (ad *ClassAd) EvalExpr(e Expr, target *ClassAd) Value {
	return e.Eval(&Context{My: ad, Target: target})
}

// String renders the ad in ClassAd bracket syntax with attributes sorted
// for deterministic output.
func (ad *ClassAd) String() string {
	keys := make([]string, 0, len(ad.attrs))
	for k := range ad.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("[ ")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %s; ", ad.names[k], ad.attrs[k].String())
	}
	b.WriteString("]")
	return b.String()
}

// Requirements is the conventional attribute name for match constraints.
const Requirements = "Requirements"

// Rank is the conventional attribute name for match preference.
const Rank = "Rank"

// Match reports whether both ads' Requirements evaluate to true against
// each other (symmetric matchmaking, as the Condor negotiator does). A
// missing Requirements attribute counts as unconstrained (true).
func Match(a, b *ClassAd) bool {
	return matchOneWay(a, b) && matchOneWay(b, a)
}

func matchOneWay(my, target *ClassAd) bool {
	if !my.Has(Requirements) {
		return true
	}
	return my.Eval(Requirements, target).IsTrue()
}

// RankOf evaluates my's Rank against target, defaulting to 0 when absent or
// non-numeric. Higher is better.
func RankOf(my, target *ClassAd) float64 {
	v := my.Eval(Rank, target)
	if f, ok := v.Number(); ok {
		return f
	}
	return 0
}
