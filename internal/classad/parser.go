package classad

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type caToken struct {
	kind caTokKind
	text string
	num  float64
}

type caTokKind int

const (
	caEOF caTokKind = iota
	caIdent
	caNumber
	caString
	caOp
)

func caLex(src string) ([]caToken, error) {
	var toks []caToken
	pos := 0
	for pos < len(src) {
		c := rune(src[pos])
		switch {
		case unicode.IsSpace(c):
			pos++
		case asciiIdentStart(src[pos]):
			start := pos
			for pos < len(src) && asciiIdentPart(src[pos]) {
				pos++
			}
			toks = append(toks, caToken{kind: caIdent, text: src[start:pos]})
		case c >= '0' && c <= '9':
			start := pos
			for pos < len(src) && (src[pos] >= '0' && src[pos] <= '9' || src[pos] == '.') {
				pos++
			}
			// Scientific notation: 1e9, 2.5E-3, 1e+19 (Value.String renders
			// large numbers this way, so the lexer must read it back).
			if pos < len(src) && (src[pos] == 'e' || src[pos] == 'E') {
				mark := pos
				pos++
				if pos < len(src) && (src[pos] == '+' || src[pos] == '-') {
					pos++
				}
				if pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
					for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
						pos++
					}
				} else {
					pos = mark // bare 'e': an identifier follows, not an exponent
				}
			}
			num, err := strconv.ParseFloat(src[start:pos], 64)
			if err != nil {
				return nil, fmt.Errorf("classad: bad number %q", src[start:pos])
			}
			toks = append(toks, caToken{kind: caNumber, text: src[start:pos], num: num})
		case c == '"':
			pos++
			var b strings.Builder
			for pos < len(src) && src[pos] != '"' {
				if src[pos] == '\\' && pos+1 < len(src) {
					pos++
				}
				b.WriteByte(src[pos])
				pos++
			}
			if pos >= len(src) {
				return nil, fmt.Errorf("classad: unterminated string")
			}
			pos++
			toks = append(toks, caToken{kind: caString, text: b.String()})
		default:
			for _, op := range []string{"=?=", "=!=", "==", "!=", "<=", ">=", "&&", "||"} {
				if strings.HasPrefix(src[pos:], op) {
					toks = append(toks, caToken{kind: caOp, text: op})
					pos += len(op)
					goto next
				}
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', '[', ']',
				'{', '}', ',', ';', '.', '?', ':', '!':
				toks = append(toks, caToken{kind: caOp, text: string(c)})
				pos++
			default:
				return nil, fmt.Errorf("classad: unexpected character %q", string(c))
			}
		next:
		}
	}
	return append(toks, caToken{kind: caEOF}), nil
}

// Identifiers are ASCII-only (ClassAd attribute names are): byte-wise
// lexing of multi-byte UTF-8 letters would disagree with the UTF-8-aware
// case folding used for attribute lookup.
func asciiIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func asciiIdentPart(c byte) bool {
	return asciiIdentStart(c) || c >= '0' && c <= '9'
}

// validAttrName reports whether s is a legal attribute name (an ASCII
// identifier).
func validAttrName(s string) bool {
	if s == "" || !asciiIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !asciiIdentPart(s[i]) {
			return false
		}
	}
	return true
}

type caParser struct {
	toks []caToken
	pos  int
}

func (p *caParser) peek() caToken { return p.toks[p.pos] }

func (p *caParser) next() caToken {
	t := p.toks[p.pos]
	if t.kind != caEOF {
		p.pos++
	}
	return t
}

func (p *caParser) accept(op string) bool {
	if p.peek().kind == caOp && p.peek().text == op {
		p.pos++
		return true
	}
	return false
}

// ParseExpr parses a single ClassAd expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := caLex(src)
	if err != nil {
		return nil, err
	}
	p := &caParser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != caEOF {
		return nil, fmt.Errorf("classad: trailing input at %q", p.peek().text)
	}
	return e, nil
}

// MustParseExpr panics on parse errors; for statically known expressions.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// parseExpr := ternary
func (p *caParser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *caParser) parseTernary() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.accept(":") {
		return nil, fmt.Errorf("classad: expected ':' in ternary")
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return ternaryNode{cond: cond, then: then, els: els}, nil
}

func (p *caParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *caParser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *caParser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=?=", "=!=", "==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binaryNode{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *caParser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: op, left: left, right: right}
	}
}

func (p *caParser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binaryNode{op: op, left: left, right: right}
	}
}

func (p *caParser) parseUnary() (Expr, error) {
	if p.accept("!") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: "!", sub: sub}, nil
	}
	if p.accept("-") {
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: "-", sub: sub}, nil
	}
	return p.parsePrimary()
}

func (p *caParser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch tok.kind {
	case caNumber:
		p.next()
		return litNode{v: Num(tok.num)}, nil
	case caString:
		p.next()
		return litNode{v: Str(tok.text)}, nil
	case caIdent:
		name := strings.ToLower(tok.text)
		switch name {
		case "true":
			p.next()
			return litNode{v: True}, nil
		case "false":
			p.next()
			return litNode{v: False}, nil
		case "undefined":
			p.next()
			return litNode{v: Undefined}, nil
		case "error":
			p.next()
			return litNode{v: ErrorVal}, nil
		}
		p.next()
		// Function call?
		if p.peek().kind == caOp && p.peek().text == "(" {
			p.next()
			var args []Expr
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if !p.accept(",") {
						return nil, fmt.Errorf("classad: expected ',' or ')' in call")
					}
				}
			}
			return callNode{fn: name, args: args}, nil
		}
		// Scoped reference my.X / target.X?
		if (name == "my" || name == "target") && p.accept(".") {
			attr := p.next()
			if attr.kind != caIdent {
				return nil, fmt.Errorf("classad: expected attribute after %s.", name)
			}
			return attrNode{scope: name, name: strings.ToLower(attr.text)}, nil
		}
		return attrNode{name: name}, nil
	case caOp:
		switch tok.text {
		case "(":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.accept(")") {
				return nil, fmt.Errorf("classad: expected ')'")
			}
			return e, nil
		case "{":
			p.next()
			var elems []Expr
			if !p.accept("}") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					elems = append(elems, e)
					if p.accept("}") {
						break
					}
					if !p.accept(",") {
						return nil, fmt.Errorf("classad: expected ',' or '}' in list")
					}
				}
			}
			return listNode{elems: elems}, nil
		}
	}
	return nil, fmt.Errorf("classad: unexpected token %q", tok.text)
}

// Parse parses a full ClassAd in the "[ name = expr; ... ]" syntax (the
// brackets are optional; semicolons or newlines separate attributes).
func Parse(src string) (*ClassAd, error) {
	src = strings.TrimSpace(src)
	src = strings.TrimPrefix(src, "[")
	src = strings.TrimSuffix(src, "]")
	ad := NewClassAd()
	// Split on semicolons and newlines, but not inside strings/braces.
	for _, stmt := range splitStatements(src) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		eq := indexTopLevelEq(stmt)
		if eq < 0 {
			return nil, fmt.Errorf("classad: statement %q has no '='", stmt)
		}
		name := strings.TrimSpace(stmt[:eq])
		if !validAttrName(name) {
			return nil, fmt.Errorf("classad: bad attribute name %q", name)
		}
		e, err := ParseExpr(stmt[eq+1:])
		if err != nil {
			return nil, err
		}
		ad.SetExpr(name, e)
	}
	return ad, nil
}

func splitStatements(src string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '{' || c == '(' || c == '[':
			depth++
		case c == '}' || c == ')' || c == ']':
			depth--
		case (c == ';' || c == '\n') && depth == 0:
			out = append(out, src[start:i])
			start = i + 1
		}
	}
	return append(out, src[start:])
}

// indexTopLevelEq finds the first '=' that is an assignment (not ==, =?=,
// =!=, <=, >=, !=).
func indexTopLevelEq(s string) int {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		if c == '"' {
			inStr = true
			continue
		}
		if c != '=' {
			continue
		}
		if i > 0 && (s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '!' || s[i-1] == '=') {
			continue
		}
		if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '?' || s[i+1] == '!') {
			// ==, =?=, =!= are comparisons.
			i++
			continue
		}
		return i
	}
	return -1
}
