package classad

import "testing"

// FuzzParseExpr: the ClassAd expression parser must never panic, and any
// accepted expression must evaluate (to any Value, including error)
// without panicking, in and out of a matchmaking context.
func FuzzParseExpr(f *testing.F) {
	f.Add(`target.Rack == my.WantRack && target.State == "active"`)
	f.Add(`member("b", {"a", "b"}) ? 1 + 2 : size("xy")`)
	f.Add(`regexp("^dn[0-9]+$", Name)`)
	f.Add(`1 =?= "1"`)
	f.Add(`a % 0`)
	f.Add(``)
	f.Add(`((((`)
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		my := NewClassAd().Set("Name", "dn01").Set("WantRack", 1)
		target := NewClassAd().Set("Rack", 1).Set("State", "active")
		_ = my.EvalExpr(e, target)
		_ = my.EvalExpr(e, nil)
		// The canonical rendering must itself reparse.
		if _, err := ParseExpr(e.String()); err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", e.String(), err)
		}
	})
}

// FuzzParseAd: full-ad parsing must never panic and accepted ads must
// render and reparse.
func FuzzParseAd(f *testing.F) {
	f.Add(`[ Name = "dn01"; Rack = 1; Requirements = target.Rack == my.Rack ]`)
	f.Add(`a = 1`)
	f.Add(`x = {1, "two", true}`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		ad, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(ad.String()); err != nil {
			t.Fatalf("ad rendering %q does not reparse: %v", ad.String(), err)
		}
	})
}
