package condor

import (
	"errors"
	"testing"
	"time"

	"erms/internal/classad"
	"erms/internal/sim"
)

func machineAd(rack int, standby bool) *classad.ClassAd {
	return classad.NewClassAd().Set("Rack", rack).Set("Standby", standby)
}

func instantJob(name string, results *[]string) *Job {
	return &Job{
		Name: name,
		Run: func(m *Machine, done func(error)) {
			*results = append(*results, name+"@"+m.Name)
			done(nil)
		},
	}
}

func TestImmediateJobRunsWithoutWaitingForCycle(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	var got []string
	s.Submit(instantJob("j1", &got))
	e.RunUntil(time.Second) // far less than the negotiation period
	if len(got) != 1 || got[0] != "j1@m1" {
		t.Fatalf("got = %v", got)
	}
}

func TestIdleJobWaitsForIdleCluster(t *testing.T) {
	e := sim.NewEngine()
	idle := false
	s := New(e, Config{NegotiationPeriod: time.Second, IdleProbe: func() bool { return idle }})
	s.Advertise("m1", machineAd(0, false), 1)
	var got []string
	j := instantJob("encode", &got)
	j.Class = ClassIdle
	s.Submit(j)
	e.RunUntil(10 * time.Second)
	if len(got) != 0 {
		t.Fatal("idle job ran while cluster busy")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	idle = true
	e.RunUntil(12 * time.Second)
	if len(got) != 1 {
		t.Fatal("idle job did not run after cluster went idle")
	}
}

func TestImmediateBeforeIdleOrdering(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	var got []string
	// Single slot forces serialization; submit idle first, immediate second.
	s.Advertise("m1", machineAd(0, false), 1)
	idleJob := instantJob("idle", &got)
	idleJob.Class = ClassIdle
	// Delay both jobs' execution so ordering is observable: both pend until
	// the first negotiation tick.
	s.Stop() // replace ticker behaviour: submit while no machine? simpler:
	// re-create scheduler to keep ticker; instead use fresh engine below.
	e2 := sim.NewEngine()
	s2 := New(e2, Config{NegotiationPeriod: time.Second})
	got = nil
	idle2 := instantJob("idle", &got)
	idle2.Class = ClassIdle
	s2.Submit(idle2)
	s2.Submit(instantJob("imm", &got))
	s2.Advertise("m1", machineAd(0, false), 1) // machine appears after submit
	e2.RunUntil(5 * time.Second)
	if len(got) != 2 || got[0] != "imm@m1" {
		t.Fatalf("got = %v, want immediate first", got)
	}
}

func TestRequirementsRestrictPlacement(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("active1", machineAd(0, false), 1)
	s.Advertise("standby1", machineAd(1, true), 1)
	var got []string
	j := instantJob("replicate", &got)
	j.Ad = classad.NewClassAd().SetExprString("Requirements", "target.Standby == true")
	s.Submit(j)
	e.RunUntil(2 * time.Second)
	if len(got) != 1 || got[0] != "replicate@standby1" {
		t.Fatalf("got = %v", got)
	}
}

func TestRankPrefersBetterMachine(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("small", classad.NewClassAd().Set("FreeGB", 10), 1)
	s.Advertise("big", classad.NewClassAd().Set("FreeGB", 500), 1)
	var got []string
	j := instantJob("place", &got)
	j.Ad = classad.NewClassAd().SetExprString("Rank", "target.FreeGB")
	s.Submit(j)
	e.RunUntil(2 * time.Second)
	if len(got) != 1 || got[0] != "place@big" {
		t.Fatalf("got = %v", got)
	}
}

func TestSlotLimitsAndQueueing(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 2)
	var running, maxRunning int
	mkJob := func(name string) *Job {
		return &Job{
			Name: name,
			Run: func(m *Machine, done func(error)) {
				running++
				if running > maxRunning {
					maxRunning = running
				}
				e.Schedule(3*time.Second, func() {
					running--
					done(nil)
				})
			},
		}
	}
	for i := 0; i < 5; i++ {
		s.Submit(mkJob("j"))
	}
	e.RunUntil(30 * time.Second)
	if maxRunning != 2 {
		t.Fatalf("max concurrent = %d, want 2 (slot limit)", maxRunning)
	}
	if s.Stats().Completed != 5 {
		t.Fatalf("completed = %d", s.Stats().Completed)
	}
}

func TestFailureTriggersRollback(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 1)
	rolledBack := false
	j := &Job{
		Name:     "willfail",
		Run:      func(m *Machine, done func(error)) { done(errors.New("disk full")) },
		Rollback: func() { rolledBack = true },
	}
	s.Submit(j)
	e.RunUntil(2 * time.Second)
	if !rolledBack {
		t.Fatal("rollback did not run")
	}
	if j.State != StateRolledBack {
		t.Fatalf("state = %v", j.State)
	}
	st := s.Stats()
	if st.Failed != 1 || st.RolledBack != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailureWithoutRollbackStaysFailed(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 1)
	j := &Job{
		Name: "nofallback",
		Run:  func(m *Machine, done func(error)) { done(errors.New("boom")) },
	}
	s.Submit(j)
	e.RunUntil(2 * time.Second)
	if j.State != StateFailed || j.Err == nil {
		t.Fatalf("state = %v err = %v", j.State, j.Err)
	}
}

func TestDecommissionStopsPlacement(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 1)
	s.Decommission("m1")
	var got []string
	s.Submit(instantJob("j", &got))
	e.RunUntil(5 * time.Second)
	if len(got) != 0 {
		t.Fatal("job ran on decommissioned machine")
	}
	if len(s.Machines()) != 0 {
		t.Fatal("decommissioned machine still listed")
	}
	// Re-advertise brings it back.
	s.Advertise("m2", machineAd(0, false), 1)
	e.RunUntil(7 * time.Second)
	if len(got) != 1 {
		t.Fatal("pending job did not run after new machine appeared")
	}
}

func TestAbortPendingJob(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	var got []string
	j := s.Submit(instantJob("j", &got)) // no machines yet: stays pending
	if !s.Abort(j) {
		t.Fatal("abort failed")
	}
	s.Advertise("m1", machineAd(0, false), 1)
	e.RunUntil(5 * time.Second)
	if len(got) != 0 {
		t.Fatal("aborted job ran")
	}
	if s.Abort(j) {
		t.Fatal("double abort succeeded")
	}
	if s.Stats().Aborted != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestUserLogReplayAndOrder(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 1)
	var got []string
	s.Submit(instantJob("j1", &got))
	e.RunUntil(2 * time.Second)
	var kinds []EventKind
	s.Replay(func(ev LogEvent) { kinds = append(kinds, ev.Kind) })
	want := []EventKind{EventSubmit, EventExecute, EventTerminate}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if s.Log()[0].String() == "" {
		t.Fatal("log event should render")
	}
}

func TestFIFOWithinClass(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	var got []string
	for _, n := range []string{"a", "b", "c"} {
		s.Submit(instantJob(n, &got))
	}
	s.Advertise("m1", machineAd(0, false), 1)
	e.RunUntil(5 * time.Second)
	if len(got) != 3 || got[0] != "a@m1" || got[1] != "b@m1" || got[2] != "c@m1" {
		t.Fatalf("got = %v, want FIFO", got)
	}
}

func TestDoubleDonePanics(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Second})
	s.Advertise("m1", machineAd(0, false), 1)
	s.Submit(&Job{
		Name: "broken",
		Run: func(m *Machine, done func(error)) {
			done(nil)
			defer func() {
				if recover() == nil {
					t.Error("second done() did not panic")
				}
			}()
			done(nil)
		},
	})
	e.RunUntil(time.Second)
}

func TestSubmitWithoutRunPanics(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(&Job{Name: "empty"})
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StatePending: "pending", StateRunning: "running", StateCompleted: "completed",
		StateFailed: "failed", StateRolledBack: "rolled-back", StateAborted: "aborted",
		State(99): "unknown",
	} {
		if st.String() != want {
			t.Fatalf("State(%d) = %q", st, st.String())
		}
	}
	if ClassImmediate.String() != "immediate" || ClassIdle.String() != "idle" {
		t.Fatal("class strings")
	}
}

// TestResubmitFromNotifySurvivesNegotiation pins a negotiator re-entrancy
// fix: a job whose Notify submits follow-up work synchronously (the repair
// pipeline does this to drain its throttled queue) runs inside the
// negotiation loop when its own Run fails synchronously, and the follow-up
// submission used to be wiped by the post-loop queue rebuild — pending in
// byID but never queued, so it hung forever.
func TestResubmitFromNotifySurvivesNegotiation(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, Config{NegotiationPeriod: time.Hour})
	s.Advertise("m1", machineAd(0, false), 1)
	ran := false
	j := &Job{
		Name:  "failer",
		Class: ClassImmediate,
		Run:   func(m *Machine, done func(error)) { done(errors.New("no target")) },
		Notify: func(*Job) {
			s.Submit(&Job{
				Name:  "followup",
				Class: ClassImmediate,
				Run:   func(m *Machine, done func(error)) { ran = true; done(nil) },
			})
		},
	}
	s.Submit(j)
	e.RunUntil(time.Minute)
	if j.State != StateFailed {
		t.Fatalf("failer state = %v", j.State)
	}
	if !ran {
		t.Fatal("job submitted from Notify never ran")
	}
}
