package condor

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"erms/internal/classad"
	"erms/internal/sim"
)

// Property: under arbitrary interleavings of submissions (mixed classes,
// some failing, some aborted) the scheduler's books always balance and
// every machine's slot count returns to free.
func TestQuickBooksBalance(t *testing.T) {
	type op struct {
		Class    uint8 // even: immediate, odd: idle
		Fails    bool
		Abort    bool
		DelaySec uint8
	}
	f := func(ops []op, idleFlips uint8) bool {
		e := sim.NewEngine()
		idle := true
		s := New(e, Config{
			NegotiationPeriod: 2 * time.Second,
			IdleProbe:         func() bool { return idle },
		})
		machines := []*Machine{
			s.Advertise("m1", classad.NewClassAd().Set("Rack", 0), 2),
			s.Advertise("m2", classad.NewClassAd().Set("Rack", 1), 1),
		}
		// Idle flips partway through so idle-class jobs experience both
		// states.
		e.Schedule(time.Duration(idleFlips%20)*time.Second, func() { idle = !idle })
		e.Schedule(200*time.Second, func() { idle = true })
		var jobs []*Job
		for i, o := range ops {
			o := o
			class := ClassImmediate
			if o.Class%2 == 1 {
				class = ClassIdle
			}
			j := &Job{
				Name:  "j",
				Class: class,
				Run: func(m *Machine, done func(error)) {
					d := time.Duration(o.DelaySec%5) * time.Second
					e.Schedule(d, func() {
						if o.Fails {
							done(errors.New("boom"))
						} else {
							done(nil)
						}
					})
				},
				Rollback: func() {},
			}
			s.Submit(j)
			jobs = append(jobs, j)
			if o.Abort {
				s.Abort(j)
			}
			_ = i
		}
		e.RunUntil(400 * time.Second)
		s.Stop()
		e.Run()
		st := s.Stats()
		if st.Submitted != len(ops) {
			return false
		}
		if st.Submitted != st.Completed+st.Failed+st.Aborted+s.Pending() {
			return false
		}
		if s.Running() != 0 {
			return false
		}
		for _, m := range machines {
			if m.Free() != m.Slots {
				return false
			}
		}
		// Failed jobs with rollbacks are rolled back.
		for _, j := range jobs {
			if j.State == StateFailed {
				return false // rollback should have moved it on
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
