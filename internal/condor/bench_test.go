package condor

import (
	"testing"
	"time"

	"erms/internal/classad"
	"erms/internal/sim"
)

// BenchmarkNegotiationCycle measures matching a queue of jobs against a
// machine pool through full negotiation cycles.
func BenchmarkNegotiationCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		s := New(e, Config{NegotiationPeriod: time.Second})
		for m := 0; m < 18; m++ {
			s.Advertise("m"+string(rune('a'+m)),
				classad.NewClassAd().Set("Rack", m%3).Set("FreeGB", 100+m), 2)
		}
		for j := 0; j < 100; j++ {
			s.Submit(&Job{
				Name: "job",
				Ad: classad.NewClassAd().
					SetExprString("Requirements", "target.FreeGB > 50").
					SetExprString("Rank", "target.FreeGB"),
				Run: func(m *Machine, done func(error)) {
					e.Schedule(2*time.Second, func() { done(nil) })
				},
			})
		}
		e.RunUntil(5 * time.Minute)
		s.Stop()
		if s.Stats().Completed != 100 {
			b.Fatalf("completed %d", s.Stats().Completed)
		}
	}
}
